package batfish_test

import (
	"fmt"

	"repro/batfish"
)

// ExampleLoadText shows the minimal pipeline: parse two devices (one per
// dialect), compute the data plane, and ask a configuration question.
func ExampleLoadText() {
	snap := batfish.LoadText(map[string]string{
		"r1.cfg": `
hostname r1
interface eth0
 ip address 10.0.0.1 255.255.255.252
 ip access-group MISSING_ACL in
`,
		"r2.cfg": `
set system host-name r2
set interfaces ge-0/0/0 unit 0 family inet address 10.0.0.2/30
`,
	})
	fmt.Println("converged:", snap.DataPlane().Converged)
	for _, f := range snap.UndefinedReferences() {
		fmt.Println(f)
	}
	// Output:
	// converged: true
	// r1: undefined acl "MISSING_ACL" referenced at interface eth0 access-group in
}
