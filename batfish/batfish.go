// Package batfish is the public API of the library: a Go reimplementation
// of the Batfish network configuration analysis tool as described in
// "Lessons from the evolution of the Batfish configuration analysis tool"
// (SIGCOMM 2023).
//
// A Snapshot moves through the paper's four-stage pipeline:
//
//  1. configuration text is parsed into a vendor-independent model
//     (LoadDir / LoadText, supporting IOS-style and Junos-style dialects);
//  2. an imperative fixed-point simulation derives the data plane
//     (Snapshot.DataPlane) with graph-colored scheduling and logical
//     clocks for deterministic convergence;
//  3. a BDD-based dataflow analysis verifies forwarding behavior
//     (Snapshot.Reachability, Snapshot.MultipathConsistency, and the
//     lower-level Snapshot.Analysis);
//  4. violations are explained with contrasting positive/negative example
//     packets and annotated traceroutes.
//
// Beyond forwarding analysis, the deep configuration model supports the
// paper's Lesson 5 questions directly: UndefinedReferences,
// UnusedStructures, DuplicateIPs, NTPConsistency, BGPSessionStatus,
// TestFilter, and SearchFilter.
//
// Quick start:
//
//	snap, err := batfish.LoadDir("configs/")
//	if err != nil { ... }
//	for _, f := range snap.UndefinedReferences() {
//		fmt.Println(f)
//	}
//	for _, r := range snap.Reachability(batfish.ReachabilityParams{}) {
//		fmt.Printf("%s/%s: delivered=%v\n", r.Source.Device, r.Source.Iface, r.HasPositive)
//	}
//
// Snapshots run on a staged pipeline with a content-addressed artifact
// store: loading two snapshots that share device configs reuses the
// unchanged parsed models, and byte-identical snapshots dedupe all four
// stages. The edit-and-re-verify loop is incremental — derive a candidate
// change with Snapshot.Edit and diff it:
//
//	after := snap.Edit(map[string]string{"rtr1.cfg": newText})
//	for _, d := range snap.CompareWith(after) {
//		fmt.Printf("%s/%s broken=%v\n", d.Source.Device, d.Source.Iface, d.HasBroken)
//	}
//
// Only flows that can touch the edited device are re-analyzed; results
// are byte-identical to a full recomputation. CacheStats exposes the
// store's hit/miss/eviction counters and per-stage wall times.
package batfish

import (
	"context"

	"repro/internal/core"
	"repro/internal/dataplane"
	"repro/internal/diag"
	"repro/internal/netgen"
	"repro/internal/pipeline"
)

// Snapshot is one parsed network snapshot; see package core for the full
// method set (questions, data plane access, analyses).
type Snapshot = core.Snapshot

// Finding is one deterministic result row of a question.
type Finding = core.Finding

// FlowResult is the answer to a reachability question, with contrasted
// positive and negative examples (paper §4.4.3).
type FlowResult = core.FlowResult

// ReachabilityParams scope a reachability question; zero values get the
// paper's §4.4.2 default scoping.
type ReachabilityParams = core.ReachabilityParams

// DifferentialFlows reports flows broken or newly admitted by a change.
type DifferentialFlows = core.DifferentialFlows

// ServiceSpec names a service endpoint for the task-specific service
// queries (paper §4.4.1): ServiceReachable (availability, per intended
// client) and ServiceProtected (security, over all other locations).
type ServiceSpec = core.ServiceSpec

// ServiceReachableResult is one client's availability verdict.
type ServiceReachableResult = core.ServiceReachableResult

// ServiceExposure is one unintended access path to a protected service.
type ServiceExposure = core.ServiceExposure

// Options configure the control-plane simulation (schedule, iteration
// bounds, parallelism).
type Options = dataplane.Options

// Simulation schedules (paper §4.1.2).
const (
	ScheduleColored  = dataplane.ScheduleColored
	ScheduleLockstep = dataplane.ScheduleLockstep
)

// Diagnostic is one structured failure-containment record: a recovered
// panic, quarantined device, budget trip, cancellation, or detected
// non-convergence, naming the pipeline stage (and device) it happened at.
// Snapshot.Diags accumulates them; DiagSummary renders them for humans.
type Diagnostic = diag.Diagnostic

// Diagnostic kinds (see Snapshot.Diags).
const (
	KindPanic          = diag.KindPanic
	KindQuarantine     = diag.KindQuarantine
	KindBudget         = diag.KindBudget
	KindCancelled      = diag.KindCancelled
	KindNonConvergence = diag.KindNonConvergence
	KindError          = diag.KindError
)

// DiagSummary renders diagnostics as a compact per-kind count plus one
// line each (stacks elided).
func DiagSummary(ds []Diagnostic) string { return diag.Summary(ds) }

// LoadDir reads every configuration file in a directory as one device.
func LoadDir(dir string) (*Snapshot, error) { return core.LoadDir(dir) }

// LoadDirContext is LoadDir under a context: the context's deadline or
// cancellation bounds parsing and every later stage the snapshot runs.
// Expiry degrades the snapshot to partial results with cancellation
// diagnostics instead of blocking (see Snapshot.Diags, Snapshot.Cancelled).
func LoadDirContext(ctx context.Context, dir string) (*Snapshot, error) {
	return core.LoadDirWithContext(ctx, core.DefaultPipeline(), dir)
}

// LoadText parses configuration texts keyed by filename or hostname.
// The dialect (IOS-style vs Junos-style) is auto-detected per file.
func LoadText(texts map[string]string) *Snapshot { return core.LoadText(texts) }

// LoadGenerated wraps a synthetic network from the generator suite.
func LoadGenerated(snap *netgen.Snapshot) *Snapshot { return core.LoadGenerated(snap) }

// CacheStats reports the shared pipeline's artifact-store counters
// (hits, misses, evictions) and per-stage wall times split cold/warm.
func CacheStats() pipeline.Stats { return core.CacheStats() }
