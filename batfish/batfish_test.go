package batfish_test

import (
	"testing"

	"repro/batfish"
	"repro/internal/netgen"
)

// TestPublicAPI exercises the library exactly as a downstream user would:
// everything below goes through the exported façade only.
func TestPublicAPI(t *testing.T) {
	snap := batfish.LoadText(map[string]string{
		"r1.cfg": `
hostname r1
interface eth0
 ip address 10.0.0.1 255.255.255.252
 ip ospf area 0
interface lan0
 ip address 192.168.1.1 255.255.255.0
 ip ospf area 0
 ip ospf passive
router ospf 1
`,
		"r2.cfg": `
set system host-name r2
set interfaces ge-0/0/0 unit 0 family inet address 10.0.0.2/30
set protocols ospf area 0 interface ge-0/0/0
set interfaces lan0 unit 0 family inet address 192.168.9.1/24
set protocols ospf area 0 interface lan0 passive
`,
	})
	if len(snap.Warnings) != 0 {
		t.Fatalf("warnings: %v", snap.Warnings)
	}
	if dp := snap.DataPlane(); !dp.Converged {
		t.Fatalf("no convergence: %v", dp.Warnings)
	}
	if got := len(snap.Routes("r1")); got == 0 {
		t.Fatal("no routes at r1")
	}
	results := snap.Reachability(batfish.ReachabilityParams{})
	if len(results) != 2 {
		t.Fatalf("expected 2 host-facing sources, got %d", len(results))
	}
	for _, r := range results {
		if !r.HasPositive {
			t.Errorf("%v: nothing delivered", r.Source)
		}
	}
}

func TestPublicAPIGenerated(t *testing.T) {
	snap := batfish.LoadGenerated(netgen.Fabric(netgen.FabricParams{
		Name: "pub", Spines: 2, Pods: 1, AggPerPod: 2, TorPerPod: 2,
		HostNetsPerTor: 1, Multipath: true,
	}))
	if v := snap.MultipathConsistency(); len(v) != 0 {
		t.Errorf("clean fabric inconsistent: %v", v)
	}
	if fs := snap.BGPSessionStatus(); len(fs) == 0 {
		t.Error("no sessions")
	}
}

func TestScheduleConstantsExposed(t *testing.T) {
	var o batfish.Options
	o.Schedule = batfish.ScheduleLockstep
	if o.Schedule == batfish.ScheduleColored {
		t.Fatal("schedules must differ")
	}
}
