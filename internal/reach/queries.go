package reach

import (
	"sort"

	"repro/internal/bdd"
	"repro/internal/fwdgraph"
	"repro/internal/hdr"
)

// SourceLoc identifies a packet entry point.
type SourceLoc struct {
	Device string
	Iface  string
}

// Sources lists all interface source locations in the graph, sorted.
func (a *Analysis) Sources() []SourceLoc {
	var out []SourceLoc
	for _, n := range a.G.Nodes {
		if n.Kind == fwdgraph.KindSource {
			out = append(out, SourceLoc{Device: n.Node_, Iface: n.Extra})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Device != out[j].Device {
			return out[i].Device < out[j].Device
		}
		return out[i].Iface < out[j].Iface
	})
	return out
}

// ReachabilityResult reports, for one source location, the packet sets per
// disposition.
type ReachabilityResult struct {
	Source SourceLoc
	Sinks  map[string]bdd.Ref
}

// Reachability runs a forward analysis from one source over the given
// header space and classifies the outcome by disposition.
func (a *Analysis) Reachability(src SourceLoc, hs bdd.Ref) (ReachabilityResult, bool) {
	start, ok := a.SingleSource(src.Device, src.Iface, hs)
	if !ok {
		return ReachabilityResult{}, false
	}
	r := a.Forward(start)
	return ReachabilityResult{Source: src, Sinks: a.SinkSets(r)}, true
}

// AcceptedAt runs a forward analysis from all sources and returns, per
// device, the packet set that is accepted there.
func (a *Analysis) AcceptedAt(hs bdd.Ref) map[string]bdd.Ref {
	r := a.Forward(a.SourceSets(hs))
	out := make(map[string]bdd.Ref)
	for id, set := range r {
		n := a.G.Nodes[id]
		if set != bdd.False && n.Kind == fwdgraph.KindSink && n.Extra == fwdgraph.SinkAccepted {
			out[n.Node_] = a.Enc.ClearExt(set)
		}
	}
	return out
}

// DestReachability computes, via backward propagation from the accept sink
// of dstDevice, the set of packets at every source location that will be
// accepted at dstDevice (paper §4.2.3: reverse propagation "saves us from
// walking the edges that do not lie on the destination's forwarding
// tree").
func (a *Analysis) DestReachability(dstDevice string, hs bdd.Ref) map[SourceLoc]bdd.Ref {
	sinkID, ok := a.G.Lookup(fwdgraph.SinkName(fwdgraph.SinkAccepted, dstDevice))
	if !ok {
		return nil
	}
	sets := a.Backward(map[int]bdd.Ref{sinkID: hs})
	out := make(map[SourceLoc]bdd.Ref)
	f := a.Enc.F
	ext := bdd.True
	if a.Enc.L.ExtBits() > 0 {
		ext = a.Enc.ExtEq(0, a.Enc.L.ExtBits(), 0)
	}
	for id, set := range sets {
		n := a.G.Nodes[id]
		if n.Kind != fwdgraph.KindSource || set == bdd.False {
			continue
		}
		s := a.Enc.ClearExt(f.And(set, ext))
		if s != bdd.False {
			out[SourceLoc{Device: n.Node_, Iface: n.Extra}] = s
		}
	}
	return out
}

// DestReachabilityForward is the forward-propagation equivalent of
// DestReachability, kept as the ablation baseline for the reverse
// optimization benchmark. It runs one forward pass per source.
func (a *Analysis) DestReachabilityForward(dstDevice string, hs bdd.Ref) map[SourceLoc]bdd.Ref {
	sinkID, ok := a.G.Lookup(fwdgraph.SinkName(fwdgraph.SinkAccepted, dstDevice))
	if !ok {
		return nil
	}
	out := make(map[SourceLoc]bdd.Ref)
	for _, src := range a.Sources() {
		start, ok := a.SingleSource(src.Device, src.Iface, hs)
		if !ok {
			continue
		}
		r := a.Forward(start)
		if r[sinkID] != bdd.False {
			out[src] = a.Enc.ClearExt(r[sinkID])
		}
	}
	return out
}

// MultipathViolation describes a flow that is delivered on some paths and
// dropped on others — the multipath consistency query used as the
// verification benchmark in paper §6.1.
type MultipathViolation struct {
	Source  SourceLoc
	Packets bdd.Ref
	Example hdr.Packet
}

// MultipathConsistency checks every source location: a violation exists if
// some packet from that source can reach both a success sink and a failure
// sink (multipath divergence).
func (a *Analysis) MultipathConsistency(hs bdd.Ref) []MultipathViolation {
	f := a.Enc.F
	var out []MultipathViolation
	for _, src := range a.Sources() {
		res, ok := a.Reachability(src, hs)
		if !ok {
			continue
		}
		success, failure := Partition(res.Sinks, f)
		both := f.And(success, failure)
		if both == bdd.False {
			continue
		}
		ex, _ := a.Enc.PickPacket(both,
			a.Enc.FieldEq(hdr.Protocol, hdr.ProtoTCP),
			a.Enc.FieldGE(hdr.SrcPort, 1024))
		out = append(out, MultipathViolation{Source: src, Packets: both, Example: ex})
	}
	return out
}

// WaypointResult partitions delivered traffic by whether it traversed the
// waypoint device.
type WaypointResult struct {
	Through   bdd.Ref // delivered and traversed the waypoint
	Bypassing bdd.Ref // delivered without traversing it
}

// Waypoint answers "does traffic from src to dstDevice traverse waypoint?"
// using one extension bit that is set when the packet crosses the waypoint
// device (paper §4.2.3: the typical verification "requires only 1 bit").
func (a *Analysis) Waypoint(src SourceLoc, dstDevice, waypoint string, hs bdd.Ref) (WaypointResult, bool) {
	wpVar := a.Enc.L.ExtVar(fwdgraph.ZoneBits) // first waypoint bit
	// Instrument: edges into the waypoint's forwarding node(s) set the bit.
	saved := make(map[int][]int)
	for i := range a.edges {
		e := &a.edges[i]
		to := a.G.Nodes[e.To]
		if to.Kind == fwdgraph.KindFwd && to.Node_ == waypoint {
			saved[i] = e.SetBits
			e.SetBits = append(append([]int(nil), e.SetBits...), wpVar)
		}
	}
	defer func() {
		for i, bits := range saved {
			a.edges[i].SetBits = bits
		}
	}()

	start, ok := a.SingleSource(src.Device, src.Iface, hs)
	if !ok {
		return WaypointResult{}, false
	}
	r := a.Forward(start)
	f := a.Enc.F
	delivered := bdd.False
	for id, set := range r {
		n := a.G.Nodes[id]
		if set != bdd.False && n.Kind == fwdgraph.KindSink && SuccessSinks[n.Extra] && n.Node_ == dstDevice {
			delivered = f.Or(delivered, set)
		}
	}
	through := f.And(delivered, f.Var(wpVar))
	bypass := f.And(delivered, f.NVar(wpVar))
	return WaypointResult{
		Through:   a.Enc.ClearExt(through),
		Bypassing: a.Enc.ClearExt(bypass),
	}, true
}

// BidirResult reports bidirectional reachability.
type BidirResult struct {
	Forward bdd.Ref // forward flows delivered to the destination
	// RoundTrip is the set of forward flows whose return flow also
	// reaches back to the source device.
	RoundTrip bdd.Ref
}

// Bidirectional computes round-trip reachability from src to dstDevice:
// a forward pass collects delivered flows and the firewall sessions they
// install; the return pass (on swapped headers) then traverses stateful
// devices through the session fast path (paper §4.2.3).
func (a *Analysis) Bidirectional(src SourceLoc, dstDevice string, hs bdd.Ref) (BidirResult, bool) {
	f := a.Enc.F
	start, ok := a.SingleSource(src.Device, src.Iface, hs)
	if !ok {
		return BidirResult{}, false
	}
	fwd := a.Forward(start)

	// Sessions: flows that crossed each stateful device's forwarding node.
	fastPath := make(map[string]bdd.Ref)
	for id, set := range fwd {
		n := a.G.Nodes[id]
		if set == bdd.False || n.Kind != fwdgraph.KindFwd {
			continue
		}
		d := a.G.Device(n.Node_)
		if d == nil || !d.Stateful {
			continue
		}
		// The return fast path matches the swapped 5-tuple.
		fp := a.Enc.SwapSrcDst(a.Enc.ClearExt(set))
		fastPath[n.Node_] = f.Or(fastPath[n.Node_], fp)
	}

	// Delivered forward flows at the destination device.
	delivered := bdd.False
	for id, set := range fwd {
		n := a.G.Nodes[id]
		if set != bdd.False && n.Kind == fwdgraph.KindSink && SuccessSinks[n.Extra] && n.Node_ == dstDevice {
			delivered = f.Or(delivered, a.Enc.ClearExt(set))
		}
	}
	if delivered == bdd.False {
		return BidirResult{Forward: bdd.False, RoundTrip: bdd.False}, true
	}

	// Return pass: swapped flows injected at the destination device.
	ret := a.Enc.SwapSrcDst(delivered)
	if a.Enc.L.ExtBits() > 0 {
		ret = f.And(ret, a.Enc.ExtEq(0, a.Enc.L.ExtBits(), 0))
	}
	retStart := make(map[int]bdd.Ref)
	for id := range a.G.Nodes {
		n := a.G.Nodes[id]
		if n.Kind == fwdgraph.KindFwd && n.Node_ == dstDevice {
			retStart[id] = ret
		}
	}
	rev := a.forward(retStart, fastPath)

	// Return flows that arrive back at the source device.
	returned := bdd.False
	for id, set := range rev {
		n := a.G.Nodes[id]
		if set != bdd.False && n.Kind == fwdgraph.KindSink && SuccessSinks[n.Extra] && n.Node_ == src.Device {
			returned = f.Or(returned, a.Enc.ClearExt(set))
		}
	}
	// Map the returned set back to forward orientation.
	roundTrip := f.And(delivered, a.Enc.SwapSrcDst(returned))
	return BidirResult{Forward: delivered, RoundTrip: roundTrip}, true
}

// LoopResult reports packets that are stuck in a forwarding loop.
type LoopResult struct {
	Source  SourceLoc
	Packets bdd.Ref
	Example hdr.Packet
}

// DetectLoops finds packets that can never reach any sink: since every
// non-looping path ends in a disposition sink (accepted, delivered,
// denied, no-route, null-routed, exits), a packet with no sink-reaching
// path from its entry point necessarily cycles forever. Computed with one
// backward pass from all sinks — the complement at each source is the
// loop set.
func (a *Analysis) DetectLoops(hs bdd.Ref) []LoopResult {
	f := a.Enc.F
	if a.Enc.L.ExtBits() > 0 {
		hs = f.And(hs, a.Enc.ExtEq(0, a.Enc.L.ExtBits(), 0))
	}
	sinks := make(map[int]bdd.Ref)
	for id := range a.G.Nodes {
		if a.G.Nodes[id].Kind == fwdgraph.KindSink {
			sinks[id] = bdd.True
		}
	}
	reachesSink := a.Backward(sinks)
	var out []LoopResult
	for id := range a.G.Nodes {
		n := a.G.Nodes[id]
		if n.Kind != fwdgraph.KindSource {
			continue
		}
		looping := f.Diff(hs, reachesSink[id])
		if looping == bdd.False {
			continue
		}
		ex, _ := a.Enc.PickPacket(f.And(looping, bdd.True),
			a.Enc.FieldEq(hdr.Protocol, hdr.ProtoTCP))
		out = append(out, LoopResult{
			Source:  SourceLoc{Device: n.Node_, Iface: n.Extra},
			Packets: a.Enc.ClearExt(looping),
			Example: ex,
		})
	}
	return out
}
