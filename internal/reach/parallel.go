package reach

import (
	"runtime"
	"sync"

	"repro/internal/bdd"
	"repro/internal/dataplane"
	"repro/internal/fwdgraph"
	"repro/internal/hdr"
)

// QueryPool fans per-source reachability queries across replica analyses.
// BDD factories are not safe for concurrent use and refs never cross
// factories, so the pool holds one complete Graph+Analysis per worker
// (fwdgraph.BuildReplicas) and shards the source list across them. Every
// replica sees the same data plane, so per-source results are identical to
// the serial analysis; only factory-independent values (sources, concrete
// example packets) are returned across the pool boundary.
type QueryPool struct {
	workers []*Analysis
}

// NewQueryPool builds a pool of `workers` replica analyses (graph
// compression enabled, like New). workers <= 0 means GOMAXPROCS. Replica
// construction itself runs in parallel.
func NewQueryPool(dp *dataplane.Result, workers int) *QueryPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	graphs := fwdgraph.BuildReplicas(dp, workers)
	q := &QueryPool{workers: make([]*Analysis, len(graphs))}
	var wg sync.WaitGroup
	wg.Add(len(graphs))
	for i := range graphs {
		go func(i int) {
			defer wg.Done()
			q.workers[i] = New(graphs[i])
		}(i)
	}
	wg.Wait()
	return q
}

// Workers returns the number of replica analyses in the pool.
func (q *QueryPool) Workers() int { return len(q.workers) }

// Primary returns the pool's first replica. Gather rebases results into
// this replica's factory, so refs it returns are usable with
// Primary().Enc for further set algebra and example extraction.
func (q *QueryPool) Primary() *Analysis { return q.workers[0] }

// Gather runs query once per source location, fanned across the pool's
// replicas, and returns the per-source packet sets rebased into the
// Primary replica's factory (result order matches Sources()).
//
// Cross-factory transfer happens at a single batched rendezvous per
// worker after all queries complete: one bdd.Migrator per replica copies
// that replica's results into the primary factory, with the memo shared
// across the whole batch so subgraphs common to many sources migrate
// once. This is the only point where BDD structure crosses worker
// boundaries; during the query phase the replicas share nothing.
func (q *QueryPool) Gather(query func(a *Analysis, src SourceLoc) bdd.Ref) []bdd.Ref {
	srcs := q.workers[0].Sources()
	refs := make([]bdd.Ref, len(srcs))
	var wg sync.WaitGroup
	wg.Add(len(q.workers))
	for w := range q.workers {
		go func(w int) {
			defer wg.Done()
			a := q.workers[w]
			for i := w; i < len(srcs); i += len(q.workers) {
				refs[i] = query(a, srcs[i])
			}
		}(w)
	}
	wg.Wait()
	// Rendezvous: serial into the primary factory (it is single-threaded),
	// batched per worker so each replica's shared structure copies once.
	for w := 1; w < len(q.workers); w++ {
		m := bdd.NewMigrator(q.workers[w].Enc.F, q.workers[0].Enc.F)
		for i := w; i < len(srcs); i += len(q.workers) {
			refs[i] = m.Migrate(refs[i])
		}
	}
	return refs
}

// EachSource invokes fn once per source location, fanned across the
// replicas. slot is the source's index in the sorted Sources() order, so
// callers can write results into a pre-sized slice without locking. fn
// must treat the analysis as scoped to the call: any bdd.Ref it computes
// belongs to that replica's factory and must not escape into shared state.
func (q *QueryPool) EachSource(fn func(a *Analysis, src SourceLoc, slot int)) {
	srcs := q.workers[0].Sources()
	var wg sync.WaitGroup
	wg.Add(len(q.workers))
	for w := range q.workers {
		go func(w int) {
			defer wg.Done()
			a := q.workers[w]
			for i := w; i < len(srcs); i += len(q.workers) {
				fn(a, srcs[i], i)
			}
		}(w)
	}
	wg.Wait()
}

// MultipathConsistencySets is the pooled multipath-consistency query with
// the violating packet *sets* preserved: each source's "delivered on some
// path AND dropped on another" set is computed on a replica and rebased
// into Primary()'s factory at the Gather rendezvous, where the witness
// packets are then picked. Results match the serial
// Analysis.MultipathConsistency exactly — same sources, same sets, same
// examples — because every replica sees the same data plane and example
// selection runs on the rebased sets with the same preferences.
func (q *QueryPool) MultipathConsistencySets(hs func(enc *hdr.Enc) bdd.Ref) []MultipathViolation {
	// Per-replica header space, built once per worker before the fan-out
	// (read-only during Gather, so concurrent map reads are safe).
	spaces := make(map[*Analysis]bdd.Ref, len(q.workers))
	for _, a := range q.workers {
		spaces[a] = bdd.True
		if hs != nil {
			spaces[a] = hs(a.Enc)
		}
	}
	both := q.Gather(func(a *Analysis, src SourceLoc) bdd.Ref {
		res, ok := a.Reachability(src, spaces[a])
		if !ok {
			return bdd.False
		}
		success, failure := Partition(res.Sinks, a.Enc.F)
		return a.Enc.F.And(success, failure)
	})
	prim := q.Primary()
	srcs := prim.Sources()
	var out []MultipathViolation
	for i, b := range both {
		if b == bdd.False {
			continue
		}
		ex, _ := prim.Enc.PickPacket(b,
			prim.Enc.FieldEq(hdr.Protocol, hdr.ProtoTCP),
			prim.Enc.FieldGE(hdr.SrcPort, 1024))
		out = append(out, MultipathViolation{Source: srcs[i], Packets: b, Example: ex})
	}
	return out
}

// Violation is the factory-independent form of MultipathViolation: the
// packet-set BDD is replaced by a concrete witness packet so results can
// be merged across replicas.
type Violation struct {
	Source  SourceLoc
	Example hdr.Packet
}

// MultipathConsistency runs the multipath-consistency query (§6.1) with
// sources fanned across the pool. hs builds the header space against a
// replica's encoder (nil means all packets); it is called once per worker.
// Results are returned in sorted source order, matching the serial
// Analysis.MultipathConsistency.
func (q *QueryPool) MultipathConsistency(hs func(enc *hdr.Enc) bdd.Ref) []Violation {
	srcs := q.workers[0].Sources()
	found := make([]*Violation, len(srcs))
	spaces := make([]bdd.Ref, len(q.workers))
	for w, a := range q.workers {
		spaces[w] = bdd.True
		if hs != nil {
			spaces[w] = hs(a.Enc)
		}
	}
	var wg sync.WaitGroup
	wg.Add(len(q.workers))
	for w := range q.workers {
		go func(w int) {
			defer wg.Done()
			a := q.workers[w]
			f := a.Enc.F
			for i := w; i < len(srcs); i += len(q.workers) {
				res, ok := a.Reachability(srcs[i], spaces[w])
				if !ok {
					continue
				}
				success, failure := Partition(res.Sinks, f)
				both := f.And(success, failure)
				if both == bdd.False {
					continue
				}
				ex, _ := a.Enc.PickPacket(both,
					a.Enc.FieldEq(hdr.Protocol, hdr.ProtoTCP),
					a.Enc.FieldGE(hdr.SrcPort, 1024))
				found[i] = &Violation{Source: srcs[i], Example: ex}
			}
		}(w)
	}
	wg.Wait()
	out := make([]Violation, 0, len(srcs))
	for _, v := range found {
		if v != nil {
			out = append(out, *v)
		}
	}
	return out
}
