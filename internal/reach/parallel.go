package reach

import (
	"runtime"
	"sync"

	"repro/internal/bdd"
	"repro/internal/dataplane"
	"repro/internal/fwdgraph"
	"repro/internal/hdr"
)

// QueryPool fans per-source reachability queries across replica analyses.
// BDD factories are not safe for concurrent use and refs never cross
// factories, so the pool holds one complete Graph+Analysis per worker
// (fwdgraph.BuildReplicas) and shards the source list across them. Every
// replica sees the same data plane, so per-source results are identical to
// the serial analysis; only factory-independent values (sources, concrete
// example packets) are returned across the pool boundary.
type QueryPool struct {
	workers []*Analysis
}

// NewQueryPool builds a pool of `workers` replica analyses (graph
// compression enabled, like New). workers <= 0 means GOMAXPROCS. Replica
// construction itself runs in parallel.
func NewQueryPool(dp *dataplane.Result, workers int) *QueryPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	graphs := fwdgraph.BuildReplicas(dp, workers)
	q := &QueryPool{workers: make([]*Analysis, len(graphs))}
	var wg sync.WaitGroup
	wg.Add(len(graphs))
	for i := range graphs {
		go func(i int) {
			defer wg.Done()
			q.workers[i] = New(graphs[i])
		}(i)
	}
	wg.Wait()
	return q
}

// Workers returns the number of replica analyses in the pool.
func (q *QueryPool) Workers() int { return len(q.workers) }

// EachSource invokes fn once per source location, fanned across the
// replicas. slot is the source's index in the sorted Sources() order, so
// callers can write results into a pre-sized slice without locking. fn
// must treat the analysis as scoped to the call: any bdd.Ref it computes
// belongs to that replica's factory and must not escape into shared state.
func (q *QueryPool) EachSource(fn func(a *Analysis, src SourceLoc, slot int)) {
	srcs := q.workers[0].Sources()
	var wg sync.WaitGroup
	wg.Add(len(q.workers))
	for w := range q.workers {
		go func(w int) {
			defer wg.Done()
			a := q.workers[w]
			for i := w; i < len(srcs); i += len(q.workers) {
				fn(a, srcs[i], i)
			}
		}(w)
	}
	wg.Wait()
}

// Violation is the factory-independent form of MultipathViolation: the
// packet-set BDD is replaced by a concrete witness packet so results can
// be merged across replicas.
type Violation struct {
	Source  SourceLoc
	Example hdr.Packet
}

// MultipathConsistency runs the multipath-consistency query (§6.1) with
// sources fanned across the pool. hs builds the header space against a
// replica's encoder (nil means all packets); it is called once per worker.
// Results are returned in sorted source order, matching the serial
// Analysis.MultipathConsistency.
func (q *QueryPool) MultipathConsistency(hs func(enc *hdr.Enc) bdd.Ref) []Violation {
	srcs := q.workers[0].Sources()
	found := make([]*Violation, len(srcs))
	spaces := make([]bdd.Ref, len(q.workers))
	for w, a := range q.workers {
		spaces[w] = bdd.True
		if hs != nil {
			spaces[w] = hs(a.Enc)
		}
	}
	var wg sync.WaitGroup
	wg.Add(len(q.workers))
	for w := range q.workers {
		go func(w int) {
			defer wg.Done()
			a := q.workers[w]
			f := a.Enc.F
			for i := w; i < len(srcs); i += len(q.workers) {
				res, ok := a.Reachability(srcs[i], spaces[w])
				if !ok {
					continue
				}
				success, failure := Partition(res.Sinks, f)
				both := f.And(success, failure)
				if both == bdd.False {
					continue
				}
				ex, _ := a.Enc.PickPacket(both,
					a.Enc.FieldEq(hdr.Protocol, hdr.ProtoTCP),
					a.Enc.FieldGE(hdr.SrcPort, 1024))
				found[i] = &Violation{Source: srcs[i], Example: ex}
			}
		}(w)
	}
	wg.Wait()
	out := make([]Violation, 0, len(srcs))
	for _, v := range found {
		if v != nil {
			out = append(out, *v)
		}
	}
	return out
}
