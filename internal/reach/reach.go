// Package reach is the BDD-based data plane verification engine (paper
// §4.2): a dataflow analysis over the forwarding graph that computes, for
// every node, the set of packets that can reach it. On top of the core
// forward fixed point it implements the paper's extensions and
// optimizations — graph compression, backward propagation for
// single-destination queries, waypoint tracking, multipath-consistency
// checking, and bidirectional reachability through stateful devices.
package reach

import (
	"context"
	"sort"

	"repro/internal/bdd"
	"repro/internal/fwdgraph"
	"repro/internal/hdr"
)

// Options tune the analysis.
type Options struct {
	// Compress removes simple pass-through nodes before propagation
	// (paper §4.2.3 "graph compression"). On by default via New.
	Compress bool
}

// Analysis owns a (possibly compressed) view of the forwarding graph.
type Analysis struct {
	G     *fwdgraph.Graph
	Enc   *hdr.Enc
	edges []fwdgraph.Edge
	out   [][]int32
	in    [][]int32
	// origin maps compressed-away node ids to themselves; kept for sinks
	// and sources which are never compressed.

	ctx context.Context // nil means context.Background()

	// Cancelled latches when a fixed-point loop observed an expired
	// context and returned an under-approximate result.
	Cancelled bool
}

// WithContext attaches a context checked periodically inside the
// Forward/Backward fixed-point loops. When it expires the loop stops
// early: the returned sets are a sound under-approximation (every packet
// reported reachable truly is) and Cancelled is set. Returns the analysis
// for chaining.
func (a *Analysis) WithContext(ctx context.Context) *Analysis {
	a.ctx = ctx
	return a
}

// checkEvery is how many queue pops pass between context checks in the
// fixed-point loops — frequent enough for sub-millisecond cancellation
// latency, rare enough that the atomic load in ctx.Err is invisible.
const checkEvery = 64

func (a *Analysis) expired(pops int) bool {
	if a.ctx == nil || pops%checkEvery != 0 || a.ctx.Err() == nil {
		return false
	}
	a.Cancelled = true
	return true
}

// New builds an analysis with graph compression enabled.
func New(g *fwdgraph.Graph) *Analysis {
	return NewWithOptions(g, Options{Compress: true})
}

// NewWithOptions builds an analysis with explicit options.
func NewWithOptions(g *fwdgraph.Graph, opts Options) *Analysis {
	a := &Analysis{G: g, Enc: g.Enc}
	a.edges = append([]fwdgraph.Edge(nil), g.Edges...)
	if opts.Compress {
		a.compress()
	}
	a.reindex()
	return a
}

func (a *Analysis) reindex() {
	n := len(a.G.Nodes)
	a.out = make([][]int32, n)
	a.in = make([][]int32, n)
	for i := range a.edges {
		e := &a.edges[i]
		a.out[e.From] = append(a.out[e.From], int32(i))
		a.in[e.To] = append(a.in[e.To], int32(i))
	}
}

// EdgeCount returns the number of edges after compression.
func (a *Analysis) EdgeCount() int { return len(a.edges) }

// compress collapses pass-through nodes: a node with exactly one incoming
// and one outgoing edge, that is neither a source nor a sink, whose
// incoming edge is a pure label (no transformation or zone/waypoint
// effects), merges into a single edge with the conjoined label
// (paper §4.2.3: such nodes "only slow down the graph traversal").
func (a *Analysis) compress() {
	for {
		out := make([][]int32, len(a.G.Nodes))
		in := make([][]int32, len(a.G.Nodes))
		alive := make([]bool, len(a.edges))
		for i := range a.edges {
			alive[i] = true
			e := &a.edges[i]
			out[e.From] = append(out[e.From], int32(i))
			in[e.To] = append(in[e.To], int32(i))
		}
		changed := false
		touched := make([]bool, len(a.G.Nodes))
		for id := range a.G.Nodes {
			node := &a.G.Nodes[id]
			if node.Kind == fwdgraph.KindSource || node.Kind == fwdgraph.KindSink {
				continue
			}
			if touched[id] || len(in[id]) != 1 || len(out[id]) != 1 {
				continue
			}
			ei, eo := in[id][0], out[id][0]
			if !alive[ei] || !alive[eo] {
				continue
			}
			e1, e2 := a.edges[ei], a.edges[eo]
			if touched[e1.From] || touched[e2.To] {
				continue // adjacency stale within this sweep; next sweep
			}
			if e1.From == e2.To || e1.From == id {
				continue // avoid self loops
			}
			if !pureLabel(&e1) {
				continue
			}
			merged := e2
			merged.From = e1.From
			merged.Label = a.Enc.F.And(e1.Label, e2.Label)
			if e2.Raw != bdd.False {
				merged.Raw = a.Enc.F.And(e1.Label, e2.Raw)
			}
			a.edges[ei] = merged
			alive[eo] = false
			changed = true
			touched[e1.From] = true
			touched[e2.To] = true
			touched[id] = true
		}
		kept := a.edges[:0]
		for i := range a.edges {
			if alive[i] {
				kept = append(kept, a.edges[i])
			}
		}
		a.edges = kept
		if !changed {
			return
		}
	}
}

func pureLabel(e *fwdgraph.Edge) bool {
	return e.Tr == nil && e.ZoneSet == nil && !e.ClearZone && len(e.SetBits) == 0
}

// Forward runs the forward dataflow fixed point from the given start sets
// (node id -> packet set) and returns the reachable set per node. Sets only
// grow, unions are monotone, and the variable count is fixed, so the fixed
// point terminates even on cyclic graphs (forwarding loops).
func (a *Analysis) Forward(start map[int]bdd.Ref) []bdd.Ref {
	return a.forward(start, nil)
}

// forward optionally takes a per-device session fast-path map (device ->
// return-flow set) used by bidirectional analysis.
func (a *Analysis) forward(start map[int]bdd.Ref, fastPath map[string]bdd.Ref) []bdd.Ref {
	f := a.Enc.F
	reach := make([]bdd.Ref, len(a.G.Nodes))
	inQueue := make([]bool, len(a.G.Nodes))
	var queue []int
	push := func(n int) {
		if !inQueue[n] {
			inQueue[n] = true
			queue = append(queue, n)
		}
	}
	starts := make([]int, 0, len(start))
	for n := range start {
		starts = append(starts, n)
	}
	sort.Ints(starts)
	for _, n := range starts {
		reach[n] = f.Or(reach[n], start[n])
		push(n)
	}
	pops := 0
	for len(queue) > 0 {
		pops++
		if a.expired(pops) {
			return reach
		}
		n := queue[0]
		queue = queue[1:]
		inQueue[n] = false
		set := reach[n]
		if set == bdd.False {
			continue
		}
		for _, ei := range a.out[n] {
			e := &a.edges[ei]
			contribution := e.Apply(a.Enc, set)
			if fastPath != nil && e.Raw != bdd.False {
				if fp, ok := fastPath[a.G.Nodes[e.From].Node_]; ok && fp != bdd.False {
					// Session fast path: matching return traffic bypasses
					// the filter (Raw is the unfiltered label).
					bypass := f.And(f.And(set, fp), e.Raw)
					contribution = f.Or(contribution, bypass)
				}
			}
			if contribution == bdd.False {
				continue
			}
			next := f.Or(reach[e.To], contribution)
			if next != reach[e.To] {
				reach[e.To] = next
				push(e.To)
			}
		}
	}
	return reach
}

// Backward computes, for every node, the set of packets that — if present
// at that node — would eventually reach one of the given sink sets. For a
// single-destination query this walks only the destination's forwarding
// cone instead of the whole graph (paper §4.2.3 "single-destination
// reverse propagation").
func (a *Analysis) Backward(sinks map[int]bdd.Ref) []bdd.Ref {
	f := a.Enc.F
	sets := make([]bdd.Ref, len(a.G.Nodes))
	inQueue := make([]bool, len(a.G.Nodes))
	var queue []int
	push := func(n int) {
		if !inQueue[n] {
			inQueue[n] = true
			queue = append(queue, n)
		}
	}
	ns := make([]int, 0, len(sinks))
	for n := range sinks {
		ns = append(ns, n)
	}
	sort.Ints(ns)
	for _, n := range ns {
		sets[n] = f.Or(sets[n], sinks[n])
		push(n)
	}
	pops := 0
	for len(queue) > 0 {
		pops++
		if a.expired(pops) {
			return sets
		}
		n := queue[0]
		queue = queue[1:]
		inQueue[n] = false
		set := sets[n]
		if set == bdd.False {
			continue
		}
		for _, ei := range a.in[n] {
			e := &a.edges[ei]
			contribution := e.ApplyReverse(a.Enc, set)
			if contribution == bdd.False {
				continue
			}
			next := f.Or(sets[e.From], contribution)
			if next != sets[e.From] {
				sets[e.From] = next
				push(e.From)
			}
		}
	}
	return sets
}

// SourceSets builds the default start map: every interface source node
// carries the given header space, constrained to zone/waypoint bits = 0.
func (a *Analysis) SourceSets(hs bdd.Ref) map[int]bdd.Ref {
	f := a.Enc.F
	if a.Enc.L.ExtBits() > 0 {
		hs = f.And(hs, a.Enc.ExtEq(0, a.Enc.L.ExtBits(), 0))
	}
	start := make(map[int]bdd.Ref)
	for id := range a.G.Nodes {
		if a.G.Nodes[id].Kind == fwdgraph.KindSource {
			start[id] = hs
		}
	}
	return start
}

// SingleSource builds a start map for one interface source.
func (a *Analysis) SingleSource(device, iface string, hs bdd.Ref) (map[int]bdd.Ref, bool) {
	id, ok := a.G.Lookup(fwdgraph.SourceName(device, iface))
	if !ok {
		return nil, false
	}
	f := a.Enc.F
	if a.Enc.L.ExtBits() > 0 {
		hs = f.And(hs, a.Enc.ExtEq(0, a.Enc.L.ExtBits(), 0))
	}
	return map[int]bdd.Ref{id: hs}, true
}

// SinkSets groups reachable sets by sink kind, with zone/waypoint bits
// erased for presentation.
func (a *Analysis) SinkSets(reach []bdd.Ref) map[string]bdd.Ref {
	f := a.Enc.F
	out := make(map[string]bdd.Ref)
	for id, set := range reach {
		if set == bdd.False || a.G.Nodes[id].Kind != fwdgraph.KindSink {
			continue
		}
		kind := a.G.Nodes[id].Extra
		out[kind] = f.Or(out[kind], a.Enc.ClearExt(set))
	}
	return out
}

// SuccessSinks are the dispositions that count as "delivered".
var SuccessSinks = map[string]bool{
	fwdgraph.SinkAccepted:        true,
	fwdgraph.SinkExitsNetwork:    true,
	fwdgraph.SinkDeliveredToHost: true,
}

// Partition splits sink sets into delivered and failed packet sets.
func Partition(sinks map[string]bdd.Ref, f *bdd.Factory) (success, failure bdd.Ref) {
	success, failure = bdd.False, bdd.False
	for kind, set := range sinks {
		if SuccessSinks[kind] {
			success = f.Or(success, set)
		} else {
			failure = f.Or(failure, set)
		}
	}
	return success, failure
}
