package reach

import (
	"math/rand"
	"testing"

	"repro/internal/bdd"
	"repro/internal/config"
	"repro/internal/dataplane"
	"repro/internal/fwdgraph"
	"repro/internal/hdr"
	"repro/internal/ip4"
	"repro/internal/testnet"
	"repro/internal/traceroute"
)

func analyze(t *testing.T, net *config.Network) (*dataplane.Result, *Analysis) {
	t.Helper()
	dp := dataplane.Run(net, dataplane.Options{})
	if !dp.Converged {
		t.Fatalf("dataplane did not converge: %v", dp.Warnings)
	}
	return dp, New(fwdgraph.New(dp))
}

func TestReachabilityLine(t *testing.T) {
	_, a := analyze(t, testnet.Line3())
	enc := a.Enc
	hs := enc.FieldEq(hdr.Protocol, hdr.ProtoTCP)
	res, ok := a.Reachability(SourceLoc{Device: "r1", Iface: "lan0"}, hs)
	if !ok {
		t.Fatal("source not found")
	}
	toLan3 := enc.F.And(res.Sinks[fwdgraph.SinkDeliveredToHost],
		enc.Prefix(hdr.DstIP, ip4.MustParsePrefix("192.168.3.0/24")))
	if toLan3 == bdd.False {
		t.Error("TCP to r3's LAN should be delivered")
	}
	// Unroutable space lands in no-route.
	unroutable := enc.F.And(res.Sinks[fwdgraph.SinkNoRoute],
		enc.FieldEq(hdr.DstIP, uint32(ip4.MustParseAddr("8.8.8.8"))))
	if unroutable == bdd.False {
		t.Error("8.8.8.8 should be unroutable")
	}
}

func TestAcceptedAt(t *testing.T) {
	_, a := analyze(t, testnet.Line3())
	enc := a.Enc
	acc := a.AcceptedAt(bdd.True)
	r3set := acc["r3"]
	if r3set == bdd.False || r3set == 0 {
		t.Fatal("nothing accepted at r3")
	}
	// Packets to r3's own IP are accepted at r3.
	own := enc.FieldEq(hdr.DstIP, uint32(ip4.MustParseAddr("10.0.23.3")))
	if enc.F.And(r3set, own) == bdd.False {
		t.Error("r3's own IP not in accepted set")
	}
}

// TestDifferentialReachVsTraceroute is the §4.3.2 cross-validation in
// miniature: packets picked from every sink set must traceroute to the
// same disposition.
func TestDifferentialReachVsTraceroute(t *testing.T) {
	nets := map[string]*config.Network{
		"line":    testnet.Line3(),
		"diamond": testnet.Diamond(),
		"broken":  testnet.ECMPWithBrokenBranch(),
		"figure2": testnet.Figure2(),
		"ebgp":    testnet.EBGPChain(),
	}
	for name, net := range nets {
		t.Run(name, func(t *testing.T) {
			dp, a := analyze(t, net)
			tr := traceroute.New(dp)
			enc := a.Enc
			hs := bdd.True
			for _, src := range a.Sources() {
				res, _ := a.Reachability(src, hs)
				for sink, set := range res.Sinks {
					if set == bdd.False {
						continue
					}
					p, ok := enc.PickPacket(set,
						enc.FieldEq(hdr.Protocol, hdr.ProtoTCP),
						enc.FieldGE(hdr.SrcPort, 1024))
					if !ok {
						continue
					}
					d := dp.Network.Devices[src.Device]
					vrf := d.Interfaces[src.Iface].VRFOrDefault()
					traces := tr.Run(src.Device, vrf, src.Iface, p)
					found := false
					for _, trc := range traces {
						if string(trc.Disposition) == sink {
							found = true
						}
					}
					if !found {
						got := make([]traceroute.Disposition, len(traces))
						for i := range traces {
							got[i] = traces[i].Disposition
						}
						t.Errorf("%s/%s: reach says %s for %v, traceroute says %v",
							src.Device, src.Iface, sink, p, got)
					}
				}
			}
		})
	}
}

// TestDifferentialTracerouteVsReach checks the other direction (§4.3.2):
// random concrete packets traced to a disposition must be members of the
// corresponding symbolic sink set.
func TestDifferentialTracerouteVsReach(t *testing.T) {
	rnd := rand.New(rand.NewSource(99))
	for name, net := range map[string]*config.Network{
		"broken":  testnet.ECMPWithBrokenBranch(),
		"figure2": testnet.Figure2(),
	} {
		t.Run(name, func(t *testing.T) {
			dp, a := analyze(t, net)
			tr := traceroute.New(dp)
			enc := a.Enc
			for _, src := range a.Sources() {
				res, _ := a.Reachability(src, bdd.True)
				d := dp.Network.Devices[src.Device]
				vrf := d.Interfaces[src.Iface].VRFOrDefault()
				for i := 0; i < 40; i++ {
					p := hdr.Packet{
						SrcIP:    ip4.Addr(rnd.Uint32()),
						DstIP:    ip4.Addr(0x0a000000 | rnd.Uint32()&0x00ffffff),
						Protocol: []uint8{hdr.ProtoTCP, hdr.ProtoUDP}[rnd.Intn(2)],
						SrcPort:  uint16(rnd.Intn(65536)),
						DstPort:  uint16([]int{22, 80, 443}[rnd.Intn(3)]),
					}
					for _, trc := range tr.Run(src.Device, vrf, src.Iface, p) {
						if trc.Disposition == traceroute.Loop {
							continue // reach has no loop sink; loops never reach sinks
						}
						set := res.Sinks[string(trc.Disposition)]
						if enc.F.And(set, enc.PacketBDD(p)) == bdd.False {
							t.Errorf("%s/%s: traceroute %v -> %s, but packet not in symbolic set",
								src.Device, src.Iface, p, trc.Disposition)
						}
					}
				}
			}
		})
	}
}

func TestCompressionEquivalence(t *testing.T) {
	for name, net := range map[string]*config.Network{
		"line":    testnet.Line3(),
		"broken":  testnet.ECMPWithBrokenBranch(),
		"figure2": testnet.Figure2(),
	} {
		t.Run(name, func(t *testing.T) {
			dp := dataplane.Run(net, dataplane.Options{})
			g := fwdgraph.New(dp)
			plain := NewWithOptions(g, Options{Compress: false})
			comp := NewWithOptions(g, Options{Compress: true})
			if comp.EdgeCount() >= plain.EdgeCount() {
				t.Errorf("compression did not shrink graph: %d vs %d", comp.EdgeCount(), plain.EdgeCount())
			}
			for _, src := range plain.Sources() {
				r1, _ := plain.Reachability(src, bdd.True)
				r2, _ := comp.Reachability(src, bdd.True)
				for sink, set := range r1.Sinks {
					if r2.Sinks[sink] != set {
						t.Fatalf("%v sink %s differs under compression", src, sink)
					}
				}
				for sink := range r2.Sinks {
					if _, ok := r1.Sinks[sink]; !ok && r2.Sinks[sink] != bdd.False {
						t.Fatalf("%v sink %s appears only under compression", src, sink)
					}
				}
			}
		})
	}
}

func TestDestReachBackwardMatchesForward(t *testing.T) {
	_, a := analyze(t, testnet.Line3())
	hs := bdd.True
	back := a.DestReachability("r3", hs)
	fwd := a.DestReachabilityForward("r3", hs)
	if len(back) == 0 {
		t.Fatal("no sources reach r3")
	}
	if len(back) != len(fwd) {
		t.Fatalf("source sets differ: %d vs %d", len(back), len(fwd))
	}
	for src, set := range back {
		if fwd[src] != set {
			t.Errorf("backward and forward disagree for %v", src)
		}
	}
}

func TestFigure2SSHOnly(t *testing.T) {
	// Only ssh traffic to P3 makes it through R1.i3 (paper Figure 2a).
	_, a := analyze(t, testnet.Figure2())
	enc := a.Enc
	res, ok := a.Reachability(SourceLoc{Device: "r1", Iface: "i0"}, enc.FieldEq(hdr.Protocol, hdr.ProtoTCP))
	if !ok {
		t.Fatal("source missing")
	}
	toP3 := enc.Prefix(hdr.DstIP, ip4.MustParsePrefix("10.0.3.0/24"))
	delivered := enc.F.And(res.Sinks[fwdgraph.SinkDeliveredToHost], toP3)
	if delivered == bdd.False {
		t.Fatal("no TCP delivered to P3")
	}
	// All delivered P3 traffic is ssh.
	ssh := enc.FieldEq(hdr.DstPort, 22)
	if !enc.F.Implies(delivered, ssh) {
		t.Error("non-ssh traffic leaked through R1.i3's ACL")
	}
	// Non-ssh P3 traffic is denied-out at r1.
	deniedOut := enc.F.And(res.Sinks[fwdgraph.SinkDeniedOut], toP3)
	if enc.F.And(deniedOut, enc.FieldEq(hdr.DstPort, 80)) == bdd.False {
		t.Error("http to P3 should be denied-out")
	}
}

func TestMultipathConsistency(t *testing.T) {
	_, a := analyze(t, testnet.Diamond())
	if v := a.MultipathConsistency(bdd.True); len(v) != 0 {
		t.Errorf("clean diamond should have no violations, got %d", len(v))
	}
	_, a = analyze(t, testnet.ECMPWithBrokenBranch())
	enc := a.Enc
	vs := a.MultipathConsistency(enc.FieldEq(hdr.Protocol, hdr.ProtoTCP))
	if len(vs) == 0 {
		t.Fatal("broken branch should violate multipath consistency")
	}
	// The violating set must be HTTP (the filtered service).
	for _, v := range vs {
		if !enc.F.Implies(v.Packets, enc.FieldEq(hdr.DstPort, 80)) {
			t.Errorf("violation from %v not confined to HTTP", v.Source)
		}
		if v.Example.DstPort != 80 {
			t.Errorf("example packet should be HTTP: %v", v.Example)
		}
	}
}

func TestWaypoint(t *testing.T) {
	_, a := analyze(t, testnet.Line3())
	enc := a.Enc
	hs := enc.F.And(
		enc.Prefix(hdr.DstIP, ip4.MustParsePrefix("192.168.3.0/24")),
		enc.FieldEq(hdr.Protocol, hdr.ProtoTCP))
	res, ok := a.Waypoint(SourceLoc{Device: "r1", Iface: "lan0"}, "r3", "r2", hs)
	if !ok {
		t.Fatal("waypoint query failed")
	}
	if res.Through == bdd.False {
		t.Error("traffic must traverse r2 (the only path)")
	}
	if res.Bypassing != bdd.False {
		t.Error("nothing can bypass r2 on a line topology")
	}
	// A waypoint off the path: everything bypasses.
	res2, _ := a.Waypoint(SourceLoc{Device: "r1", Iface: "lan0"}, "r3", "nonexistent", hs)
	if res2.Through != bdd.False {
		t.Error("nothing can traverse a nonexistent waypoint")
	}
}

func TestBidirectionalFirewall(t *testing.T) {
	_, a := analyze(t, testnet.Firewall())
	enc := a.Enc
	hs := enc.F.AndN(
		enc.Prefix(hdr.SrcIP, ip4.MustParsePrefix("10.1.0.0/24")),
		enc.Prefix(hdr.DstIP, ip4.MustParsePrefix("10.2.0.0/24")),
		enc.FieldEq(hdr.Protocol, hdr.ProtoTCP),
	)
	res, ok := a.Bidirectional(SourceLoc{Device: "client", Iface: "eth0"}, "server", hs)
	if !ok {
		t.Fatal("bidir query failed")
	}
	if res.Forward == bdd.False {
		t.Fatal("forward HTTP should be delivered")
	}
	// Forward must be confined to HTTP (zone policy).
	if !enc.F.Implies(res.Forward, enc.FieldEq(hdr.DstPort, 80)) {
		t.Error("forward delivery should be HTTP only")
	}
	// The round trip must be possible thanks to the session fast path,
	// even though no zone policy permits outside->inside.
	if res.RoundTrip == bdd.False {
		t.Error("return traffic should pass through the firewall session")
	}
	if !enc.F.Implies(res.RoundTrip, res.Forward) {
		t.Error("round-trip set must be a subset of forward set")
	}
	// Direct outside->inside traffic (no session) must be blocked.
	rev, _ := a.Reachability(SourceLoc{Device: "server", Iface: "eth0"}, enc.F.AndN(
		enc.Prefix(hdr.DstIP, ip4.MustParsePrefix("10.1.0.0/24")),
		enc.FieldEq(hdr.Protocol, hdr.ProtoTCP),
	))
	if s := rev.Sinks[fwdgraph.SinkDeliveredToHost]; s != bdd.False && s != 0 {
		t.Error("unsolicited outside->inside traffic should not be delivered")
	}
}

func TestZoneBitsDoNotLeak(t *testing.T) {
	// Sink sets must not depend on extension variables after ClearExt.
	_, a := analyze(t, testnet.Firewall())
	res, _ := a.Reachability(SourceLoc{Device: "client", Iface: "eth0"}, bdd.True)
	for sink, set := range res.Sinks {
		for _, v := range a.Enc.F.Support(set) {
			if v >= hdr.BaseVars {
				t.Errorf("sink %s depends on extension var %d", sink, v)
			}
		}
	}
}

func TestGraphNodeCounts(t *testing.T) {
	dp := dataplane.Run(testnet.Line3(), dataplane.Options{})
	g := fwdgraph.New(dp)
	if len(g.Nodes) == 0 || len(g.Edges) == 0 {
		t.Fatal("empty graph")
	}
	// Every edge endpoint is valid.
	for _, e := range g.Edges {
		if e.From < 0 || e.From >= len(g.Nodes) || e.To < 0 || e.To >= len(g.Nodes) {
			t.Fatal("edge endpoint out of range")
		}
	}
}

func TestDetectLoops(t *testing.T) {
	// Two routers pointing default routes at each other: everything that
	// is not link-local loops forever.
	net := config.NewNetwork()
	r1, r2 := testnet.Dev(net, "r1"), testnet.Dev(net, "r2")
	testnet.Iface(r1, "eth0", "10.0.0.1/30")
	testnet.Iface(r2, "eth0", "10.0.0.2/30")
	testnet.Iface(r1, "lan0", "192.168.1.1/24")
	testnet.Static(r1, "0.0.0.0/0", "10.0.0.2")
	testnet.Static(r2, "0.0.0.0/0", "10.0.0.1")
	dp := dataplane.Run(net, dataplane.Options{})
	a := New(fwdgraph.New(dp))
	enc := a.Enc
	loops := a.DetectLoops(bdd.True)
	if len(loops) == 0 {
		t.Fatal("mutual default routes must loop")
	}
	found := false
	for _, l := range loops {
		if l.Source.Device == "r1" && l.Source.Iface == "lan0" {
			found = true
			// 8.8.8.8 loops; the link subnet and r1's own LAN do not.
			if enc.F.And(l.Packets, enc.FieldEq(hdr.DstIP, uint32(ip4.MustParseAddr("8.8.8.8")))) == bdd.False {
				t.Error("8.8.8.8 should be in the loop set")
			}
			if enc.F.And(l.Packets, enc.FieldEq(hdr.DstIP, uint32(ip4.MustParseAddr("10.0.0.2")))) != bdd.False {
				t.Error("the neighbor's own address must not loop")
			}
			// Cross-check the example against the concrete engine.
			tr := traceroute.New(dp)
			ts := tr.Run("r1", config.DefaultVRF, "lan0", l.Example)
			if len(ts) != 1 || ts[0].Disposition != traceroute.Loop {
				t.Errorf("loop example does not loop concretely: %v", ts)
			}
		}
	}
	if !found {
		t.Error("no loop reported from r1/lan0")
	}
	// A loop-free network reports nothing.
	dp2 := dataplane.Run(testnet.Line3(), dataplane.Options{})
	a2 := New(fwdgraph.New(dp2))
	if l := a2.DetectLoops(bdd.True); len(l) != 0 {
		t.Errorf("loop-free network reported loops: %v", l)
	}
}

// TestCloneReplicaEquivalence checks that a migration-based graph clone
// answers queries identically to a from-scratch build, and that its refs
// live in a genuinely separate factory.
func TestCloneReplicaEquivalence(t *testing.T) {
	dp := dataplane.Run(testnet.ECMPWithBrokenBranch(), dataplane.Options{})
	if !dp.Converged {
		t.Fatalf("dataplane did not converge: %v", dp.Warnings)
	}
	base := fwdgraph.New(dp)
	clone := base.Clone()
	if clone.Enc == base.Enc || clone.Enc.F == base.Enc.F {
		t.Fatal("clone shares the base encoder/factory")
	}
	if len(clone.Nodes) != len(base.Nodes) || len(clone.Edges) != len(base.Edges) {
		t.Fatalf("clone structure differs: %d/%d nodes, %d/%d edges",
			len(clone.Nodes), len(base.Nodes), len(clone.Edges), len(base.Edges))
	}
	av := New(base).MultipathConsistency(base.Enc.FieldEq(hdr.Protocol, hdr.ProtoTCP))
	cv := New(clone).MultipathConsistency(clone.Enc.FieldEq(hdr.Protocol, hdr.ProtoTCP))
	if len(av) != len(cv) {
		t.Fatalf("violation counts diverge: base %d clone %d", len(av), len(cv))
	}
	for i := range av {
		if av[i].Source != cv[i].Source || av[i].Example != cv[i].Example {
			t.Errorf("violation %d diverges: base %+v clone %+v", i, av[i], cv[i])
		}
	}
}

// TestQueryPoolGatherMatchesSerial checks the batched rendezvous: pooled
// multipath consistency with sets rebased into the primary factory must
// match the serial analysis source-for-source, set-for-set.
func TestQueryPoolGatherMatchesSerial(t *testing.T) {
	dp := dataplane.Run(testnet.ECMPWithBrokenBranch(), dataplane.Options{})
	if !dp.Converged {
		t.Fatalf("dataplane did not converge: %v", dp.Warnings)
	}
	serial := New(fwdgraph.New(dp))
	want := serial.MultipathConsistency(serial.Enc.FieldEq(hdr.Protocol, hdr.ProtoTCP))

	pool := NewQueryPool(dp, 3)
	got := pool.MultipathConsistencySets(func(enc *hdr.Enc) bdd.Ref {
		return enc.FieldEq(hdr.Protocol, hdr.ProtoTCP)
	})
	if len(got) != len(want) {
		t.Fatalf("violation counts diverge: serial %d pooled %d", len(want), len(got))
	}
	prim := pool.Primary()
	for i := range want {
		if want[i].Source != got[i].Source {
			t.Errorf("violation %d source diverges: %v vs %v", i, want[i].Source, got[i].Source)
		}
		if want[i].Example != got[i].Example {
			t.Errorf("violation %d example diverges: %v vs %v", i, want[i].Example, got[i].Example)
		}
		// The rebased set must denote the same packets: counts match and
		// the witness satisfies it in the primary factory.
		if sc, pc := serial.Enc.F.SatCount(want[i].Packets), prim.Enc.F.SatCount(got[i].Packets); sc != pc {
			t.Errorf("violation %d set sizes diverge: %v vs %v", i, sc, pc)
		}
		if prim.Enc.F.And(got[i].Packets, prim.Enc.PacketBDD(got[i].Example)) == bdd.False {
			t.Errorf("violation %d example not in rebased set", i)
		}
	}
}
