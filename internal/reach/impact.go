package reach

import (
	"repro/internal/bdd"
	"repro/internal/fwdgraph"
)

// HasTransforms reports whether any edge in the graph rewrites packet
// headers (NAT). Header rewriting breaks the correspondence between
// source-space and sink-space packet sets that the incremental CompareWith
// in internal/core relies on, so callers use this to gate that path.
func HasTransforms(g *fwdgraph.Graph) bool {
	for i := range g.Edges {
		if g.Edges[i].Tr != nil {
			return true
		}
	}
	return false
}

// ImpactSets computes, per source location, the set of headers whose
// trajectory from that source can touch any node of a changed device —
// the "blast radius" of a config edit. It runs one backward pass over the
// uncompressed graph (compression would merge device nodes away), seeded
// with the full packet space at every node belonging to a changed device.
//
// The result is a sound overapproximation: a header absent from a
// source's impact set provably never visits a changed device, so its
// forwarding outcome is unaffected by the edit (unchanged nodes keep
// identical transfer functions). Sources with an empty impact set are
// omitted entirely.
func ImpactSets(g *fwdgraph.Graph, changed map[string]bool) map[SourceLoc]bdd.Ref {
	a := NewWithOptions(g, Options{Compress: false})
	f := a.Enc.F
	seeds := make(map[int]bdd.Ref)
	for id := range a.G.Nodes {
		if changed[a.G.Nodes[id].Node_] {
			seeds[id] = bdd.True
		}
	}
	if len(seeds) == 0 {
		return map[SourceLoc]bdd.Ref{}
	}
	sets := a.Backward(seeds)

	ext := bdd.True
	if a.Enc.L.ExtBits() > 0 {
		ext = a.Enc.ExtEq(0, a.Enc.L.ExtBits(), 0)
	}
	out := make(map[SourceLoc]bdd.Ref)
	for id, set := range sets {
		n := a.G.Nodes[id]
		if n.Kind != fwdgraph.KindSource || set == bdd.False {
			continue
		}
		// Injected packets carry ext bits = 0; restrict to that slice and
		// erase the ext bits to get the header-only impact set.
		b := a.Enc.ClearExt(f.And(set, ext))
		if b != bdd.False {
			out[SourceLoc{Device: n.Node_, Iface: n.Extra}] = b
		}
	}
	return out
}
