package reach

import (
	"repro/internal/bdd"
	"repro/internal/fwdgraph"
)

// HasTransforms reports whether any edge in the graph rewrites packet
// headers (NAT). Header rewriting breaks the correspondence between
// source-space and sink-space packet sets that the incremental CompareWith
// in internal/core relies on, so callers use this to gate that path.
func HasTransforms(g *fwdgraph.Graph) bool {
	for i := range g.Edges {
		if g.Edges[i].Tr != nil {
			return true
		}
	}
	return false
}

// ImpactSets computes, per source location, the set of headers whose
// trajectory from that source can touch any node of a changed device —
// the "blast radius" of a config edit. It runs one backward pass over the
// uncompressed graph (compression would merge device nodes away), seeded
// with the full packet space at every node belonging to a changed device.
//
// The result is a sound overapproximation: a header absent from a
// source's impact set provably never visits a changed device, so its
// forwarding outcome is unaffected by the edit (unchanged nodes keep
// identical transfer functions). Sources with an empty impact set are
// omitted entirely.
func ImpactSets(g *fwdgraph.Graph, changed map[string]bool) map[SourceLoc]bdd.Ref {
	a := NewWithOptions(g, Options{Compress: false})
	f := a.Enc.F
	seeds := make(map[int]bdd.Ref)
	for id := range a.G.Nodes {
		if changed[a.G.Nodes[id].Node_] {
			seeds[id] = bdd.True
		}
	}
	if len(seeds) == 0 {
		return map[SourceLoc]bdd.Ref{}
	}
	sets := a.Backward(seeds)

	ext := bdd.True
	if a.Enc.L.ExtBits() > 0 {
		ext = a.Enc.ExtEq(0, a.Enc.L.ExtBits(), 0)
	}
	out := make(map[SourceLoc]bdd.Ref)
	for id, set := range sets {
		n := a.G.Nodes[id]
		if n.Kind != fwdgraph.KindSource || set == bdd.False {
			continue
		}
		// Injected packets carry ext bits = 0; restrict to that slice and
		// erase the ext bits to get the header-only impact set.
		b := a.Enc.ClearExt(f.And(set, ext))
		if b != bdd.False {
			out[SourceLoc{Device: n.Node_, Iface: n.Extra}] = b
		}
	}
	return out
}

// ImpactCone computes, per device, the headers with which any monitored
// flow can touch that device: one forward pass over the uncompressed
// graph, seeded at each monitored source with its header space. It is the
// exact forward dual of ImpactSets — for any device d and source src,
//
//	ImpactCone(g, sources)[d] ∩ sources[src] ≠ ∅
//	  ⟺  ImpactSets(g, {d})[src] ∩ sources[src] ≠ ∅
//
// because both sides characterize "some header injected at src can have
// a trajectory through d". The sweep engine uses this to classify failure
// scenarios: an element no monitored header can touch lies outside every
// monitored flow's blast radius, so failing it cannot change any
// monitored verdict (see DESIGN §8 for the proof sketch), and one pass
// here replaces a per-element backward ImpactSets computation. Devices no
// monitored header reaches are omitted from the result.
func ImpactCone(g *fwdgraph.Graph, sources map[SourceLoc]bdd.Ref) map[string]bdd.Ref {
	a := NewWithOptions(g, Options{Compress: false})
	f := a.Enc.F
	ext := bdd.True
	if a.Enc.L.ExtBits() > 0 {
		ext = a.Enc.ExtEq(0, a.Enc.L.ExtBits(), 0)
	}
	start := make(map[int]bdd.Ref)
	for id := range a.G.Nodes {
		n := a.G.Nodes[id]
		if n.Kind != fwdgraph.KindSource {
			continue
		}
		hs, ok := sources[SourceLoc{Device: n.Node_, Iface: n.Extra}]
		if !ok || hs == bdd.False {
			continue
		}
		start[id] = f.And(hs, ext)
	}
	if len(start) == 0 {
		return map[string]bdd.Ref{}
	}
	sets := a.Forward(start)
	out := make(map[string]bdd.Ref)
	for id, set := range sets {
		n := a.G.Nodes[id]
		if set == bdd.False || n.Node_ == "" {
			continue // shared sinks carry no device
		}
		b := a.Enc.ClearExt(set)
		if b == bdd.False {
			continue
		}
		if prev, ok := out[n.Node_]; ok {
			out[n.Node_] = f.Or(prev, b)
		} else {
			out[n.Node_] = b
		}
	}
	return out
}
