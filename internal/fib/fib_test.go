package fib

import (
	"math/rand"
	"testing"

	"repro/internal/ip4"
	"repro/internal/routing"
)

func entry(p string, iface string) Entry {
	return Entry{Prefix: ip4.MustParsePrefix(p), NextHops: []NextHop{{Iface: iface}}}
}

func TestLookupLPM(t *testing.T) {
	f := New()
	f.Add(entry("0.0.0.0/0", "default"))
	f.Add(entry("10.0.0.0/8", "eight"))
	f.Add(entry("10.1.0.0/16", "sixteen"))
	f.Add(entry("10.1.2.0/24", "twentyfour"))
	cases := map[string]string{
		"10.1.2.3":    "twentyfour",
		"10.1.3.1":    "sixteen",
		"10.200.0.1":  "eight",
		"192.168.1.1": "default",
	}
	for addr, want := range cases {
		e := f.Lookup(ip4.MustParseAddr(addr))
		if e == nil || e.NextHops[0].Iface != want {
			t.Errorf("Lookup(%s) = %v, want %s", addr, e, want)
		}
	}
}

func TestLookupNoDefault(t *testing.T) {
	f := New()
	f.Add(entry("10.0.0.0/8", "x"))
	if e := f.Lookup(ip4.MustParseAddr("11.0.0.1")); e != nil {
		t.Errorf("miss should return nil, got %v", e)
	}
}

func TestAddReplaces(t *testing.T) {
	f := New()
	f.Add(entry("10.0.0.0/8", "a"))
	f.Add(entry("10.0.0.0/8", "b"))
	if f.Len() != 1 {
		t.Errorf("Len = %d, want 1", f.Len())
	}
	if e := f.Lookup(ip4.MustParseAddr("10.1.1.1")); e.NextHops[0].Iface != "b" {
		t.Error("replace failed")
	}
}

func TestHostRoutes(t *testing.T) {
	f := New()
	f.Add(entry("10.0.0.1/32", "host"))
	f.Add(entry("10.0.0.0/24", "net"))
	if e := f.Lookup(ip4.MustParseAddr("10.0.0.1")); e.NextHops[0].Iface != "host" {
		t.Error("host route not preferred")
	}
	if e := f.Lookup(ip4.MustParseAddr("10.0.0.2")); e.NextHops[0].Iface != "net" {
		t.Error("net route not used")
	}
}

// TestLPMMatchesLinearScan is the property test: trie lookup must agree
// with a brute-force longest-prefix scan on random tables.
func TestLPMMatchesLinearScan(t *testing.T) {
	rnd := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		f := New()
		var entries []Entry
		for i := 0; i < 300; i++ {
			p := ip4.Prefix{Addr: ip4.Addr(rnd.Uint32()), Len: uint8(rnd.Intn(33))}.Canonical()
			e := Entry{Prefix: p, NextHops: []NextHop{{Iface: p.String()}}}
			f.Add(e)
			// Mirror replacement semantics in the linear model.
			replaced := false
			for j := range entries {
				if entries[j].Prefix == p {
					entries[j] = e
					replaced = true
				}
			}
			if !replaced {
				entries = append(entries, e)
			}
		}
		for i := 0; i < 2000; i++ {
			addr := ip4.Addr(rnd.Uint32())
			if rnd.Intn(2) == 0 && len(entries) > 0 {
				// Bias probes toward table prefixes.
				addr = entries[rnd.Intn(len(entries))].Prefix.Addr | ip4.Addr(rnd.Uint32()&0xff)
			}
			var want *Entry
			for j := range entries {
				if entries[j].Prefix.Contains(addr) {
					if want == nil || entries[j].Prefix.Len > want.Prefix.Len {
						want = &entries[j]
					}
				}
			}
			got := f.Lookup(addr)
			switch {
			case want == nil && got != nil:
				t.Fatalf("Lookup(%s) = %v, want miss", addr, got)
			case want != nil && got == nil:
				t.Fatalf("Lookup(%s) = miss, want %v", addr, want.Prefix)
			case want != nil && got.Prefix != want.Prefix:
				t.Fatalf("Lookup(%s) = %v, want %v", addr, got.Prefix, want.Prefix)
			}
		}
	}
}

func TestEntriesSortedAndComplete(t *testing.T) {
	f := New()
	ps := []string{"10.0.0.0/8", "0.0.0.0/0", "10.1.0.0/16", "172.16.0.0/12", "10.0.0.0/24"}
	for _, p := range ps {
		f.Add(entry(p, p))
	}
	es := f.Entries()
	if len(es) != len(ps) {
		t.Fatalf("Entries = %d, want %d", len(es), len(ps))
	}
	for i := 1; i < len(es); i++ {
		if es[i-1].Prefix.Compare(es[i].Prefix) >= 0 {
			t.Fatal("entries not sorted")
		}
	}
}

func TestECMPNextHopsSorted(t *testing.T) {
	f := New()
	f.Add(Entry{Prefix: ip4.MustParsePrefix("10.0.0.0/8"), NextHops: []NextHop{
		{Iface: "eth2", IP: 2}, {Iface: "eth1", IP: 1},
	}})
	e := f.Lookup(ip4.MustParseAddr("10.0.0.1"))
	if e.NextHops[0].Iface != "eth1" || e.NextHops[1].Iface != "eth2" {
		t.Error("next hops not canonically sorted")
	}
}

func ribWith(routes ...routing.Route) *routing.RIB {
	r := routing.NewRIB(routing.MainComparator, &routing.Clock{})
	for _, rt := range routes {
		r.Merge(rt)
	}
	return r
}

func TestBuildFromRIBDirect(t *testing.T) {
	rib := ribWith(
		routing.Route{Prefix: ip4.MustParsePrefix("10.0.0.0/24"), Protocol: routing.Connected, NextHopIface: "eth0"},
		routing.Route{Prefix: ip4.MustParsePrefix("10.0.1.0/24"), Protocol: routing.OSPF, AD: 110,
			NextHop: ip4.MustParseAddr("10.0.0.2")},
	)
	res := Resolver{
		IfaceForConnected: func(a ip4.Addr) (string, bool) {
			if ip4.MustParsePrefix("10.0.0.0/24").Contains(a) {
				return "eth0", true
			}
			return "", false
		},
		NodeForNextHop: func(iface string, nh ip4.Addr) string { return "r2" },
	}
	f, unresolved := BuildFromRIB(rib, res)
	if len(unresolved) != 0 {
		t.Fatalf("unresolved: %v", unresolved)
	}
	e := f.Lookup(ip4.MustParseAddr("10.0.1.5"))
	if e == nil || e.NextHops[0].Iface != "eth0" || e.NextHops[0].Node != "r2" {
		t.Errorf("ospf route resolution wrong: %v", e)
	}
}

func TestBuildFromRIBRecursive(t *testing.T) {
	// BGP route via loopback 192.0.2.2, reached through OSPF via 10.0.0.1.
	rib := ribWith(
		routing.Route{Prefix: ip4.MustParsePrefix("203.0.113.0/24"), Protocol: routing.IBGP, AD: 200,
			NextHop: ip4.MustParseAddr("192.0.2.2")},
		routing.Route{Prefix: ip4.MustParsePrefix("192.0.2.2/32"), Protocol: routing.OSPF, AD: 110,
			NextHop: ip4.MustParseAddr("10.0.0.1")},
		routing.Route{Prefix: ip4.MustParsePrefix("10.0.0.0/31"), Protocol: routing.Connected, NextHopIface: "eth0"},
	)
	res := Resolver{
		IfaceForConnected: func(a ip4.Addr) (string, bool) {
			if ip4.MustParsePrefix("10.0.0.0/31").Contains(a) {
				return "eth0", true
			}
			return "", false
		},
	}
	f, unresolved := BuildFromRIB(rib, res)
	if len(unresolved) != 0 {
		t.Fatalf("unresolved: %v", unresolved)
	}
	e := f.Lookup(ip4.MustParseAddr("203.0.113.7"))
	if e == nil || e.NextHops[0].Iface != "eth0" || e.NextHops[0].IP != ip4.MustParseAddr("10.0.0.1") {
		t.Errorf("recursive resolution wrong: %v", e)
	}
}

func TestBuildFromRIBUnresolvable(t *testing.T) {
	rib := ribWith(routing.Route{Prefix: ip4.MustParsePrefix("10.0.0.0/8"), Protocol: routing.Static, AD: 1,
		NextHop: ip4.MustParseAddr("192.0.2.9")})
	f, unresolved := BuildFromRIB(rib, Resolver{})
	if len(unresolved) != 1 {
		t.Fatalf("want 1 unresolved, got %d", len(unresolved))
	}
	if f.Lookup(ip4.MustParseAddr("10.1.1.1")) != nil {
		t.Error("unresolvable route must not enter the FIB")
	}
}

func TestBuildFromRIBDrop(t *testing.T) {
	rib := ribWith(routing.Route{Prefix: ip4.MustParsePrefix("10.0.0.0/8"), Protocol: routing.Static, AD: 1, Drop: true})
	f, unresolved := BuildFromRIB(rib, Resolver{})
	if len(unresolved) != 0 {
		t.Fatal("drop route should resolve")
	}
	e := f.Lookup(ip4.MustParseAddr("10.1.1.1"))
	if e == nil || !e.NextHops[0].Drop {
		t.Errorf("null route not installed: %v", e)
	}
}

func TestResolveLoopTerminates(t *testing.T) {
	// Two static routes resolving through each other must not loop.
	rib := ribWith(
		routing.Route{Prefix: ip4.MustParsePrefix("1.0.0.0/8"), Protocol: routing.Static, AD: 1,
			NextHop: ip4.MustParseAddr("2.0.0.1")},
		routing.Route{Prefix: ip4.MustParsePrefix("2.0.0.0/8"), Protocol: routing.Static, AD: 1,
			NextHop: ip4.MustParseAddr("1.0.0.1")},
	)
	_, unresolved := BuildFromRIB(rib, Resolver{})
	if len(unresolved) != 2 {
		t.Errorf("mutually recursive routes should be unresolved, got %d", len(unresolved))
	}
}

func TestTrieStructureSharing(t *testing.T) {
	// Root must cover inserted /0 entry.
	f := New()
	f.Add(entry("0.0.0.0/0", "d"))
	if f.Root().Entry == nil {
		t.Error("/0 must land on the root node")
	}
}
