// Package fib builds and queries forwarding tables. The FIB is the bridge
// between the control plane (package dataplane, which computes main-RIB
// routes) and the data plane analyses: the traceroute engine looks up
// concrete packets here, and the forwarding-graph builder walks the trie to
// emit disjoint longest-prefix-match packet sets as BDD edge labels
// (paper §4.2.1: "edge constraints ... encode the semantics of
// longest-prefix matching").
package fib

import (
	"fmt"
	"sort"

	"repro/internal/ip4"
	"repro/internal/routing"
)

// NextHop is one forwarding action for a FIB entry.
type NextHop struct {
	Iface string   // outgoing interface
	IP    ip4.Addr // ARP/next-hop IP; 0 means "the destination itself"
	Node  string   // resolved neighbor device ("" if exiting the network)
	Drop  bool     // null route: discard
}

func (n NextHop) String() string {
	if n.Drop {
		return "drop"
	}
	s := n.Iface
	if n.IP != 0 {
		s += fmt.Sprintf(" via %s", n.IP)
	}
	if n.Node != "" {
		s += fmt.Sprintf(" (%s)", n.Node)
	}
	return s
}

// Entry is one FIB row: a prefix and its (possibly ECMP) next hops.
type Entry struct {
	Prefix   ip4.Prefix
	NextHops []NextHop
}

// Node is a trie node, exported so the forwarding-graph builder can walk
// the structure directly.
type Node struct {
	Prefix   ip4.Prefix
	Entry    *Entry // nil for internal nodes
	Children [2]*Node
}

// FIB is a path-compressed binary trie of forwarding entries.
type FIB struct {
	root *Node
	n    int
}

// New returns an empty FIB whose root covers 0.0.0.0/0.
func New() *FIB {
	return &FIB{root: &Node{Prefix: ip4.Prefix{}}}
}

// Root returns the trie root (prefix 0.0.0.0/0, possibly without entry).
func (f *FIB) Root() *Node { return f.root }

// Len returns the number of entries.
func (f *FIB) Len() int { return f.n }

// Add inserts or replaces the entry for e.Prefix.
func (f *FIB) Add(e Entry) {
	e.Prefix = e.Prefix.Canonical()
	sort.Slice(e.NextHops, func(i, j int) bool {
		a, b := e.NextHops[i], e.NextHops[j]
		if a.Iface != b.Iface {
			return a.Iface < b.Iface
		}
		return a.IP < b.IP
	})
	n := f.insert(f.root, e.Prefix)
	if n.Entry == nil {
		f.n++
	}
	n.Entry = &Entry{Prefix: e.Prefix, NextHops: e.NextHops}
}

// insert returns the node for prefix p, creating/splitting as needed.
// cur's prefix is guaranteed to contain p.
func (f *FIB) insert(cur *Node, p ip4.Prefix) *Node {
	for {
		if cur.Prefix.Len == p.Len {
			return cur
		}
		b := 0
		if p.Addr.Bit(int(cur.Prefix.Len)) {
			b = 1
		}
		child := cur.Children[b]
		if child == nil {
			n := &Node{Prefix: p}
			cur.Children[b] = n
			return n
		}
		// Find the length of the common prefix of p and child.Prefix.
		common := commonLen(p, child.Prefix)
		if common >= child.Prefix.Len {
			// child's prefix contains p; descend.
			cur = child
			continue
		}
		// Split: insert an internal node at the divergence point.
		mid := &Node{Prefix: ip4.Prefix{Addr: p.Addr, Len: common}.Canonical()}
		cb := 0
		if child.Prefix.Addr.Bit(int(common)) {
			cb = 1
		}
		mid.Children[cb] = child
		cur.Children[b] = mid
		if common == p.Len {
			return mid
		}
		pb := 0
		if p.Addr.Bit(int(common)) {
			pb = 1
		}
		n := &Node{Prefix: p}
		mid.Children[pb] = n
		return n
	}
}

// commonLen returns the length of the longest common prefix of a and b,
// capped at min(a.Len, b.Len).
func commonLen(a, b ip4.Prefix) uint8 {
	max := a.Len
	if b.Len < max {
		max = b.Len
	}
	x := uint32(a.Addr) ^ uint32(b.Addr)
	var i uint8
	for i = 0; i < max; i++ {
		if x&(1<<(31-i)) != 0 {
			break
		}
	}
	return i
}

// Lookup returns the longest-prefix-match entry for addr, or nil.
func (f *FIB) Lookup(addr ip4.Addr) *Entry {
	var best *Entry
	cur := f.root
	for cur != nil {
		if !cur.Prefix.Contains(addr) {
			break
		}
		if cur.Entry != nil {
			best = cur.Entry
		}
		if cur.Prefix.Len == 32 {
			break
		}
		b := 0
		if addr.Bit(int(cur.Prefix.Len)) {
			b = 1
		}
		cur = cur.Children[b]
	}
	return best
}

// Entries returns all entries in canonical prefix order.
func (f *FIB) Entries() []Entry {
	var out []Entry
	var walk func(*Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		if n.Entry != nil {
			out = append(out, *n.Entry)
		}
		walk(n.Children[0])
		walk(n.Children[1])
	}
	walk(f.root)
	sort.Slice(out, func(i, j int) bool { return out[i].Prefix.Compare(out[j].Prefix) < 0 })
	return out
}

// Resolver supplies what BuildFromRIB needs to turn RIB routes into
// concrete forwarding actions.
type Resolver struct {
	// IfaceForConnected returns the interface whose subnet contains addr,
	// for resolving recursive next hops to a connected interface.
	IfaceForConnected func(addr ip4.Addr) (iface string, ok bool)
	// NodeForNextHop maps (iface, next-hop IP) to the neighbor device that
	// owns the IP ("" if none, e.g. the network edge).
	NodeForNextHop func(iface string, nh ip4.Addr) string
}

// BuildFromRIB converts a main RIB into a FIB, resolving recursive next
// hops (e.g. a BGP route via a loopback reached through an IGP route) down
// to connected interfaces. Unresolvable routes are skipped and reported.
func BuildFromRIB(rib *routing.RIB, res Resolver) (*FIB, []routing.Route) {
	f := New()
	var unresolved []routing.Route
	for _, p := range rib.Prefixes() {
		best := rib.Best(p)
		var nhs []NextHop
		for _, rt := range best {
			resolved, ok := resolveRoute(rib, res, rt, 0)
			if !ok {
				unresolved = append(unresolved, rt)
				continue
			}
			nhs = append(nhs, resolved...)
		}
		if len(nhs) > 0 {
			nhs = dedupNextHops(nhs)
			f.Add(Entry{Prefix: p, NextHops: nhs})
		}
	}
	return f, unresolved
}

const maxResolveDepth = 16

func resolveRoute(rib *routing.RIB, res Resolver, rt routing.Route, depth int) ([]NextHop, bool) {
	if depth > maxResolveDepth {
		return nil, false
	}
	if rt.Drop {
		return []NextHop{{Drop: true}}, true
	}
	if rt.NextHopIface != "" {
		nh := NextHop{Iface: rt.NextHopIface, IP: rt.NextHop}
		// Connected routes (no next-hop IP) keep Node empty: the receiving
		// device depends on the packet's destination, resolved per packet
		// by the traceroute engine and per destination set by the
		// forwarding graph.
		if res.NodeForNextHop != nil && nh.IP != 0 {
			nh.Node = res.NodeForNextHop(nh.Iface, nh.IP)
		}
		return []NextHop{nh}, true
	}
	if rt.NextHop == 0 {
		return nil, false
	}
	// Direct resolution: next hop on a connected subnet.
	if res.IfaceForConnected != nil {
		if iface, ok := res.IfaceForConnected(rt.NextHop); ok {
			nh := NextHop{Iface: iface, IP: rt.NextHop}
			if res.NodeForNextHop != nil {
				nh.Node = res.NodeForNextHop(iface, rt.NextHop)
			}
			return []NextHop{nh}, true
		}
	}
	// Recursive resolution through the RIB (skipping the route itself to
	// avoid self-resolution of default routes).
	var out []NextHop
	for _, via := range rib.LongestMatch(rt.NextHop) {
		if via.Prefix == rt.Prefix && via.Protocol == rt.Protocol {
			continue
		}
		sub, ok := resolveRoute(rib, res, via, depth+1)
		if !ok {
			continue
		}
		for i := range sub {
			// Keep the original BGP next hop as the ARP target only when
			// it is on the connected subnet; otherwise ARP for the IGP
			// next hop (standard recursive resolution).
			out = append(out, sub[i])
		}
	}
	if len(out) == 0 {
		return nil, false
	}
	return out, true
}

func dedupNextHops(nhs []NextHop) []NextHop {
	sort.Slice(nhs, func(i, j int) bool {
		a, b := nhs[i], nhs[j]
		if a.Iface != b.Iface {
			return a.Iface < b.Iface
		}
		if a.IP != b.IP {
			return a.IP < b.IP
		}
		return !a.Drop && b.Drop
	})
	out := nhs[:0]
	for i, nh := range nhs {
		if i == 0 || nh != nhs[i-1] {
			out = append(out, nh)
		}
	}
	return out
}
