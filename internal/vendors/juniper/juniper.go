// Package juniper parses a Junos-style "set"-command configuration dialect
// into the vendor-independent model (pipeline Stage 1). Unlike the
// hierarchical IOS dialect, every line is a full path from the root:
//
//	set system host-name r1
//	set interfaces ge-0/0/0 unit 0 family inet address 10.0.0.1/30
//	set protocols bgp group peers neighbor 10.0.0.2 peer-as 65001
//
// which exercises a second parsing strategy, mirroring how Batfish handles
// configuration-syntax heterogeneity by converting every vendor's syntax
// into one general representation (paper §7.2).
package juniper

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/acl"
	"repro/internal/config"
	"repro/internal/hdr"
	"repro/internal/ip4"
)

// Parse parses one device's configuration text.
func Parse(text string) (*config.Device, []config.Warning) {
	p := &parser{
		d:        config.NewDevice("", "junos"),
		groups:   make(map[string]*bgpGroup),
		policies: make(map[string]*policyStmt),
		filters:  make(map[string]*filter),
	}
	lines := strings.Split(text, "\n")
	p.d.RawLines = len(lines)
	for li, raw := range lines {
		t := strings.TrimSpace(strings.TrimRight(raw, "\r"))
		if t == "" || strings.HasPrefix(t, "#") {
			continue
		}
		w := strings.Fields(t)
		if w[0] != "set" {
			p.warn(li, "expected 'set', got %q", w[0])
			continue
		}
		p.parseSet(w[1:], li)
	}
	p.finish()
	return p.d, p.warnings
}

type bgpGroup struct {
	name      string
	external  *bool // nil = unknown, inferred from peer-as
	peerAS    uint32
	importP   string
	exportP   string
	neighbors []*config.BGPNeighbor
	multihop  bool
	nhSelf    bool
	localAddr ip4.Addr
}

type policyTerm struct {
	name   string
	clause config.RouteMapClause
	action *config.Action // nil until then accept/reject
}

type policyStmt struct {
	name  string
	terms []*policyTerm
	order []string
}

type filterTerm struct {
	name   string
	line   acl.Line
	action *acl.Action
}

type filter struct {
	name  string
	terms []*filterTerm
}

type parser struct {
	d        *config.Device
	warnings []config.Warning
	groups   map[string]*bgpGroup
	policies map[string]*policyStmt
	filters  map[string]*filter
	asn      uint32
	gOrder   []string
	pOrder   []string
	fOrder   []string
}

func (p *parser) warn(li int, format string, args ...any) {
	p.warnings = append(p.warnings, config.Warning{
		Device: p.d.Hostname, Line: li + 1, Text: fmt.Sprintf(format, args...),
	})
}

func (p *parser) iface(name string) *config.Interface {
	if i, ok := p.d.Interfaces[name]; ok {
		return i
	}
	i := &config.Interface{Name: name, Active: true}
	p.d.Interfaces[name] = i
	return i
}

func (p *parser) parseSet(w []string, li int) {
	if len(w) == 0 {
		return
	}
	switch w[0] {
	case "system":
		if len(w) >= 3 && w[1] == "host-name" {
			p.d.Hostname = w[2]
			return
		}
		return // other system config is irrelevant but recognized
	case "interfaces":
		p.parseInterfaces(w[1:], li)
	case "protocols":
		p.parseProtocols(w[1:], li)
	case "routing-options":
		p.parseRoutingOptions(w[1:], li)
	case "policy-options":
		p.parsePolicyOptions(w[1:], li)
	case "firewall":
		p.parseFirewall(w[1:], li)
	case "security":
		p.parseSecurity(w[1:], li)
	default:
		p.warn(li, "unrecognized hierarchy: set %s", strings.Join(w, " "))
	}
}

func (p *parser) parseInterfaces(w []string, li int) {
	if len(w) < 2 {
		p.warn(li, "interfaces: too short")
		return
	}
	i := p.iface(w[0])
	rest := w[1:]
	switch {
	case rest[0] == "disable":
		i.Active = false
	case rest[0] == "description":
		i.Description = strings.Trim(strings.Join(rest[1:], " "), `"`)
	case rest[0] == "bandwidth" && len(rest) >= 2:
		if bw, ok := parseBandwidth(rest[1]); ok {
			i.Bandwidth = bw
		}
	case rest[0] == "unit" && len(rest) >= 4 && rest[2] == "family" && rest[3] == "inet":
		fam := rest[4:]
		switch {
		case len(fam) >= 2 && fam[0] == "address":
			pre, err := ip4.ParsePrefix(fam[1])
			if err != nil {
				p.warn(li, "bad address %q", fam[1])
				return
			}
			i.Addresses = append(i.Addresses, pre)
		case len(fam) >= 3 && fam[0] == "filter" && fam[1] == "input":
			i.InACL = fam[2]
			p.d.AddRef(config.RefACL, fam[2], "interface "+i.Name+" filter input")
		case len(fam) >= 3 && fam[0] == "filter" && fam[1] == "output":
			i.OutACL = fam[2]
			p.d.AddRef(config.RefACL, fam[2], "interface "+i.Name+" filter output")
		default:
			p.warn(li, "interface %s: unrecognized family inet: %v", i.Name, fam)
		}
	default:
		p.warn(li, "interface %s: unrecognized: %v", i.Name, rest)
	}
}

func parseBandwidth(s string) (uint64, bool) {
	mult := uint64(1)
	switch {
	case strings.HasSuffix(s, "g"):
		mult, s = 1_000_000_000, strings.TrimSuffix(s, "g")
	case strings.HasSuffix(s, "m"):
		mult, s = 1_000_000, strings.TrimSuffix(s, "m")
	case strings.HasSuffix(s, "k"):
		mult, s = 1_000, strings.TrimSuffix(s, "k")
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, false
	}
	return v * mult, true
}

func (p *parser) ospf() *config.OSPFConfig {
	v := p.d.VRF(config.DefaultVRF)
	if v.OSPF == nil {
		v.OSPF = &config.OSPFConfig{ProcessID: 1}
	}
	return v.OSPF
}

func (p *parser) parseProtocols(w []string, li int) {
	if len(w) == 0 {
		return
	}
	switch w[0] {
	case "ospf":
		p.parseOSPF(w[1:], li)
	case "bgp":
		p.parseBGP(w[1:], li)
	default:
		p.warn(li, "unrecognized protocol: %v", w)
	}
}

func (p *parser) parseOSPF(w []string, li int) {
	proc := p.ospf()
	switch {
	case len(w) >= 2 && w[0] == "reference-bandwidth":
		if bw, ok := parseBandwidth(w[1]); ok {
			proc.RefBandwidth = bw
		}
	case len(w) >= 2 && w[0] == "router-id":
		if a, err := ip4.ParseAddr(w[1]); err == nil {
			proc.RouterID = a
		}
	case len(w) >= 4 && w[0] == "area" && w[2] == "interface":
		areaV, err := strconv.Atoi(strings.TrimPrefix(w[1], "0.0.0."))
		if err != nil {
			if a, err2 := ip4.ParseAddr(w[1]); err2 == nil {
				areaV = int(uint32(a))
			} else {
				p.warn(li, "bad area %q", w[1])
				return
			}
		}
		i := p.iface(w[3])
		if i.OSPF == nil {
			i.OSPF = &config.OSPFInterface{}
		}
		i.OSPF.Area = uint32(areaV)
		rest := w[4:]
		switch {
		case len(rest) == 0:
		case rest[0] == "metric" && len(rest) >= 2:
			if v, err := strconv.Atoi(rest[1]); err == nil {
				i.OSPF.Cost = uint32(v)
			}
		case rest[0] == "passive":
			i.OSPF.Passive = true
		default:
			p.warn(li, "ospf interface %s: unrecognized: %v", w[3], rest)
		}
	case len(w) >= 2 && w[0] == "export":
		// Junos exports into OSPF via policy: model as redistribution of
		// static+connected filtered by the policy.
		proc.Redistribute = append(proc.Redistribute,
			config.Redistribution{From: config.RedistStatic, RouteMap: w[1]},
			config.Redistribution{From: config.RedistConnected, RouteMap: w[1]},
		)
		p.d.AddRef(config.RefRouteMap, w[1], "protocols ospf export")
	default:
		p.warn(li, "ospf: unrecognized: %v", w)
	}
}

func (p *parser) group(name string) *bgpGroup {
	if g, ok := p.groups[name]; ok {
		return g
	}
	g := &bgpGroup{name: name}
	p.groups[name] = g
	p.gOrder = append(p.gOrder, name)
	return g
}

func (p *parser) parseBGP(w []string, li int) {
	switch {
	case len(w) >= 2 && w[0] == "group":
		g := p.group(w[1])
		rest := w[2:]
		if len(rest) == 0 {
			return
		}
		switch {
		case rest[0] == "type" && len(rest) >= 2:
			ext := rest[1] == "external"
			g.external = &ext
		case rest[0] == "peer-as" && len(rest) >= 2:
			if v, err := strconv.ParseUint(rest[1], 10, 32); err == nil {
				g.peerAS = uint32(v)
			}
		case rest[0] == "import" && len(rest) >= 2:
			g.importP = rest[1]
			p.d.AddRef(config.RefRouteMap, rest[1], "bgp group "+g.name+" import")
		case rest[0] == "export" && len(rest) >= 2:
			g.exportP = rest[1]
			p.d.AddRef(config.RefRouteMap, rest[1], "bgp group "+g.name+" export")
		case rest[0] == "multihop":
			g.multihop = true
		case rest[0] == "next-hop-self":
			g.nhSelf = true
		case rest[0] == "local-address" && len(rest) >= 2:
			if a, err := ip4.ParseAddr(rest[1]); err == nil {
				g.localAddr = a
			} else {
				p.warn(li, "bad local-address %q", rest[1])
			}
		case rest[0] == "neighbor" && len(rest) >= 2:
			a, err := ip4.ParseAddr(rest[1])
			if err != nil {
				p.warn(li, "bad neighbor %q", rest[1])
				return
			}
			var n *config.BGPNeighbor
			for _, cand := range g.neighbors {
				if cand.PeerIP == a {
					n = cand
				}
			}
			if n == nil {
				n = &config.BGPNeighbor{PeerIP: a, SendCommunity: true}
				g.neighbors = append(g.neighbors, n)
			}
			nrest := rest[2:]
			switch {
			case len(nrest) == 0:
			case nrest[0] == "peer-as" && len(nrest) >= 2:
				if v, err := strconv.ParseUint(nrest[1], 10, 32); err == nil {
					n.RemoteAS = uint32(v)
				}
			case nrest[0] == "description":
				n.Description = strings.Trim(strings.Join(nrest[1:], " "), `"`)
			default:
				p.warn(li, "bgp neighbor %s: unrecognized: %v", rest[1], nrest)
			}
		default:
			p.warn(li, "bgp group %s: unrecognized: %v", g.name, rest)
		}
	case len(w) >= 1 && w[0] == "multipath":
		// applies to both in our model
		v := p.d.VRF(config.DefaultVRF)
		if v.BGP == nil {
			v.BGP = &config.BGPConfig{}
		}
		v.BGP.MultipathEBGP = true
		v.BGP.MultipathIBGP = true
	default:
		p.warn(li, "bgp: unrecognized: %v", w)
	}
}

func (p *parser) parseRoutingOptions(w []string, li int) {
	switch {
	case len(w) >= 2 && w[0] == "autonomous-system":
		if v, err := strconv.ParseUint(w[1], 10, 32); err == nil {
			p.asn = uint32(v)
		}
	case len(w) >= 2 && w[0] == "router-id":
		if a, err := ip4.ParseAddr(w[1]); err == nil {
			v := p.d.VRF(config.DefaultVRF)
			if v.BGP == nil {
				v.BGP = &config.BGPConfig{}
			}
			v.BGP.RouterID = a
		}
	case len(w) >= 3 && w[0] == "static" && w[1] == "route":
		pre, err := ip4.ParsePrefix(w[2])
		if err != nil {
			p.warn(li, "bad static route prefix %q", w[2])
			return
		}
		sr := config.StaticRoute{Prefix: pre}
		rest := w[3:]
		switch {
		case len(rest) >= 1 && rest[0] == "discard":
			sr.Drop = true
		case len(rest) >= 2 && rest[0] == "next-hop":
			if a, err := ip4.ParseAddr(rest[1]); err == nil {
				sr.NextHop = a
			} else {
				sr.Iface = rest[1]
				p.d.AddRef(config.RefInterface, rest[1], "static route next-hop")
			}
		case len(rest) >= 2 && rest[0] == "preference":
			if v, err := strconv.Atoi(rest[1]); err == nil {
				// merge with an existing route for the prefix if present
				vv := p.d.VRF(config.DefaultVRF)
				for idx := range vv.StaticRoutes {
					if vv.StaticRoutes[idx].Prefix == pre {
						vv.StaticRoutes[idx].AD = uint8(v)
						return
					}
				}
				sr.AD = uint8(v)
			}
		default:
			p.warn(li, "static route: unrecognized: %v", rest)
			return
		}
		vv := p.d.VRF(config.DefaultVRF)
		vv.StaticRoutes = append(vv.StaticRoutes, sr)
	case len(w) >= 1 && w[0] == "network":
		// convenience: originate network into BGP
		if len(w) >= 2 {
			if pre, err := ip4.ParsePrefix(w[1]); err == nil {
				v := p.d.VRF(config.DefaultVRF)
				if v.BGP == nil {
					v.BGP = &config.BGPConfig{}
				}
				v.BGP.Networks = append(v.BGP.Networks, pre)
			}
		}
	default:
		p.warn(li, "routing-options: unrecognized: %v", w)
	}
}

func (p *parser) policy(name string) *policyStmt {
	if ps, ok := p.policies[name]; ok {
		return ps
	}
	ps := &policyStmt{name: name}
	p.policies[name] = ps
	p.pOrder = append(p.pOrder, name)
	return ps
}

func (ps *policyStmt) term(name string) *policyTerm {
	for _, t := range ps.terms {
		if t.name == name {
			return t
		}
	}
	t := &policyTerm{name: name, clause: config.RouteMapClause{Seq: 10 * (len(ps.terms) + 1)}}
	ps.terms = append(ps.terms, t)
	return t
}

func (p *parser) parsePolicyOptions(w []string, li int) {
	switch {
	case len(w) >= 3 && w[0] == "prefix-list":
		name := w[1]
		pl := p.d.PrefixLists[name]
		if pl == nil {
			pl = &config.PrefixList{Name: name}
			p.d.PrefixLists[name] = pl
		}
		pre, err := ip4.ParsePrefix(w[2])
		if err != nil {
			p.warn(li, "prefix-list %s: bad prefix %q", name, w[2])
			return
		}
		e := config.PrefixListEntry{Action: config.Permit, Prefix: pre, Seq: 10 * (len(pl.Entries) + 1)}
		rest := w[3:]
		for len(rest) >= 1 {
			switch {
			case rest[0] == "exact":
				rest = rest[1:]
			case rest[0] == "orlonger":
				e.Ge = pre.Len
				rest = rest[1:]
			case rest[0] == "longer":
				e.Ge = pre.Len + 1
				rest = rest[1:]
			default:
				p.warn(li, "prefix-list %s: unrecognized %q", name, rest[0])
				rest = rest[1:]
			}
		}
		pl.Entries = append(pl.Entries, e)
	case len(w) >= 4 && w[0] == "community" && w[2] == "members":
		name := w[1]
		cl := p.d.CommunityLists[name]
		if cl == nil {
			cl = &config.CommunityList{Name: name}
			p.d.CommunityLists[name] = cl
		}
		cl.Entries = append(cl.Entries, config.RegexEntry{
			Action: config.Permit, Regex: "^" + w[3] + "$",
		})
	case len(w) >= 4 && w[0] == "as-path" && len(w) >= 3:
		name := w[1]
		al := p.d.ASPathLists[name]
		if al == nil {
			al = &config.ASPathList{Name: name}
			p.d.ASPathLists[name] = al
		}
		al.Entries = append(al.Entries, config.RegexEntry{
			Action: config.Permit, Regex: strings.Trim(strings.Join(w[2:], " "), `"`),
		})
	case len(w) >= 4 && w[0] == "policy-statement" && w[2] == "term":
		ps := p.policy(w[1])
		t := ps.term(w[3])
		p.parsePolicyTerm(t, w[4:], li)
	default:
		p.warn(li, "policy-options: unrecognized: %v", w)
	}
}

func (p *parser) parsePolicyTerm(t *policyTerm, w []string, li int) {
	if len(w) == 0 {
		return
	}
	switch w[0] {
	case "from":
		rest := w[1:]
		switch {
		case len(rest) >= 2 && rest[0] == "prefix-list":
			t.clause.Matches = append(t.clause.Matches, config.Match{Kind: config.MatchPrefixList, Name: rest[1]})
			p.d.AddRef(config.RefPrefixList, rest[1], "policy term from")
		case len(rest) >= 2 && rest[0] == "community":
			t.clause.Matches = append(t.clause.Matches, config.Match{Kind: config.MatchCommunityList, Name: rest[1]})
			p.d.AddRef(config.RefCommunityList, rest[1], "policy term from")
		case len(rest) >= 2 && rest[0] == "as-path":
			t.clause.Matches = append(t.clause.Matches, config.Match{Kind: config.MatchASPathList, Name: rest[1]})
			p.d.AddRef(config.RefASPathList, rest[1], "policy term from")
		case len(rest) >= 2 && rest[0] == "protocol":
			t.clause.Matches = append(t.clause.Matches, config.Match{Kind: config.MatchSourceProtocol, Proto: rest[1]})
		case len(rest) >= 2 && rest[0] == "tag":
			if v, err := strconv.Atoi(rest[1]); err == nil {
				t.clause.Matches = append(t.clause.Matches, config.Match{Kind: config.MatchTag, Value: uint32(v)})
			}
		default:
			p.warn(li, "policy term: unrecognized from: %v", rest)
		}
	case "then":
		rest := w[1:]
		switch {
		case len(rest) >= 1 && rest[0] == "accept":
			a := config.Permit
			t.action = &a
		case len(rest) >= 1 && rest[0] == "reject":
			a := config.Deny
			t.action = &a
		case len(rest) >= 2 && rest[0] == "local-preference":
			if v, err := strconv.Atoi(rest[1]); err == nil {
				t.clause.Sets = append(t.clause.Sets, config.Set{Kind: config.SetLocalPref, Value: uint32(v)})
			}
		case len(rest) >= 2 && rest[0] == "metric":
			if v, err := strconv.Atoi(rest[1]); err == nil {
				t.clause.Sets = append(t.clause.Sets, config.Set{Kind: config.SetMetric, Value: uint32(v)})
			}
		case len(rest) >= 3 && rest[0] == "community" && rest[1] == "add":
			if cl, ok := p.d.CommunityLists[rest[2]]; ok && len(cl.Entries) > 0 {
				if v, ok := exactCommunity(cl.Entries[0].Regex); ok {
					t.clause.Sets = append(t.clause.Sets, config.Set{Kind: config.SetCommunityAdditive, Communities: []uint32{v}})
				}
			} else {
				p.d.AddRef(config.RefCommunityList, rest[2], "policy then community add")
			}
		case len(rest) >= 3 && rest[0] == "as-path-prepend":
			if v, err := strconv.ParseUint(rest[1], 10, 32); err == nil {
				t.clause.Sets = append(t.clause.Sets, config.Set{Kind: config.SetASPathPrepend, PrependASN: uint32(v), PrependN: len(rest) - 1})
			}
		default:
			p.warn(li, "policy term: unrecognized then: %v", rest)
		}
	default:
		p.warn(li, "policy term: unrecognized: %v", w)
	}
}

// exactCommunity extracts "asn:val" from a "^asn:val$" regex.
func exactCommunity(re string) (uint32, bool) {
	s := strings.TrimSuffix(strings.TrimPrefix(re, "^"), "$")
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return 0, false
	}
	hi, err1 := strconv.ParseUint(parts[0], 10, 16)
	lo, err2 := strconv.ParseUint(parts[1], 10, 16)
	if err1 != nil || err2 != nil {
		return 0, false
	}
	return uint32(hi)<<16 | uint32(lo), true
}

func (p *parser) filterOf(name string) *filter {
	if f, ok := p.filters[name]; ok {
		return f
	}
	f := &filter{name: name}
	p.filters[name] = f
	p.fOrder = append(p.fOrder, name)
	return f
}

func (f *filter) term(name string) *filterTerm {
	for _, t := range f.terms {
		if t.name == name {
			return t
		}
	}
	t := &filterTerm{name: name, line: acl.NewLine(acl.Permit, name)}
	f.terms = append(f.terms, t)
	return t
}

func (p *parser) parseFirewall(w []string, li int) {
	// firewall filter NAME term T from|then ...
	if len(w) < 4 || w[0] != "filter" || w[2] != "term" {
		p.warn(li, "firewall: unrecognized: %v", w)
		return
	}
	f := p.filterOf(w[1])
	t := f.term(w[3])
	rest := w[4:]
	if len(rest) == 0 {
		return
	}
	switch rest[0] {
	case "from":
		m := rest[1:]
		switch {
		case len(m) >= 2 && m[0] == "protocol":
			switch m[1] {
			case "tcp":
				t.line.Protocol = hdr.ProtoTCP
			case "udp":
				t.line.Protocol = hdr.ProtoUDP
			case "icmp":
				t.line.Protocol = hdr.ProtoICMP
			default:
				if v, err := strconv.Atoi(m[1]); err == nil {
					t.line.Protocol = v
				}
			}
		case len(m) >= 2 && m[0] == "source-address":
			if pre, err := ip4.ParsePrefix(m[1]); err == nil {
				t.line.SrcIPs = append(t.line.SrcIPs, pre)
			}
		case len(m) >= 2 && m[0] == "destination-address":
			if pre, err := ip4.ParsePrefix(m[1]); err == nil {
				t.line.DstIPs = append(t.line.DstIPs, pre)
			}
		case len(m) >= 2 && m[0] == "destination-port":
			if pr, ok := parsePortSpec(m[1]); ok {
				t.line.DstPorts = append(t.line.DstPorts, pr)
			}
		case len(m) >= 2 && m[0] == "source-port":
			if pr, ok := parsePortSpec(m[1]); ok {
				t.line.SrcPorts = append(t.line.SrcPorts, pr)
			}
		case len(m) >= 1 && m[0] == "tcp-established":
			t.line.Protocol = hdr.ProtoTCP
			t.line.TCPFlags = &acl.TCPFlagsMatch{Mask: hdr.FlagACK, Value: hdr.FlagACK}
		default:
			p.warn(li, "firewall term: unrecognized from: %v", m)
		}
	case "then":
		if len(rest) >= 2 {
			switch rest[1] {
			case "accept":
				a := acl.Permit
				t.action = &a
			case "discard", "reject":
				a := acl.Deny
				t.action = &a
			default:
				p.warn(li, "firewall term: unrecognized then: %v", rest[1:])
			}
		}
	default:
		p.warn(li, "firewall term: unrecognized: %v", rest)
	}
}

func parsePortSpec(s string) (acl.PortRange, bool) {
	if strings.Contains(s, "-") {
		parts := strings.SplitN(s, "-", 2)
		lo, err1 := strconv.Atoi(parts[0])
		hi, err2 := strconv.Atoi(parts[1])
		if err1 == nil && err2 == nil {
			return acl.PortRange{Lo: uint16(lo), Hi: uint16(hi)}, true
		}
		return acl.PortRange{}, false
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return acl.PortRange{}, false
	}
	return acl.PortRange{Lo: uint16(v), Hi: uint16(v)}, true
}

func (p *parser) parseSecurity(w []string, li int) {
	switch {
	case len(w) >= 5 && w[0] == "zones" && w[1] == "security-zone" && w[3] == "interfaces":
		z := p.d.Zones[w[2]]
		if z == nil {
			z = &config.Zone{Name: w[2]}
			p.d.Zones[w[2]] = z
		}
		z.Interfaces = append(z.Interfaces, w[4])
		p.d.Stateful = true
		if i, ok := p.d.Interfaces[w[4]]; ok {
			i.Zone = w[2]
		}
	case len(w) >= 8 && w[0] == "policies" && w[1] == "from-zone" && w[3] == "to-zone":
		// security policies from-zone A to-zone B policy P acl NAME|permit-all
		from, to := w[2], w[4]
		p.d.AddRef(config.RefZone, from, "security policy from-zone")
		p.d.AddRef(config.RefZone, to, "security policy to-zone")
		zp := config.ZonePolicy{FromZone: from, ToZone: to}
		switch {
		case w[7] == "permit-all":
		case w[7] == "acl" && len(w) >= 9:
			zp.ACL = w[8]
			p.d.AddRef(config.RefACL, w[8], "security policy")
		default:
			p.warn(li, "security policy: unrecognized action: %v", w[7:])
			return
		}
		p.d.ZonePolicies = append(p.d.ZonePolicies, zp)
	default:
		p.warn(li, "security: unrecognized: %v", w)
	}
}

// finish materializes accumulated groups, policies, and filters into the
// VI model.
func (p *parser) finish() {
	// Policies -> route maps (terms with no explicit action accept, the
	// common Junos authoring style where the last term is "then accept").
	for _, name := range p.pOrder {
		ps := p.policies[name]
		rm := &config.RouteMap{Name: name}
		for _, t := range ps.terms {
			c := t.clause
			c.Action = config.Permit
			if t.action != nil {
				c.Action = *t.action
			}
			rm.Clauses = append(rm.Clauses, c)
		}
		p.d.RouteMaps[name] = rm
	}
	// Filters -> ACLs.
	for _, name := range p.fOrder {
		f := p.filters[name]
		a := &acl.ACL{Name: name}
		for _, t := range f.terms {
			l := t.line
			if t.action != nil {
				l.Action = acl.Action(*t.action)
			}
			a.Lines = append(a.Lines, l)
		}
		p.d.ACLs[name] = a
	}
	// BGP groups -> process neighbors.
	if len(p.gOrder) > 0 || p.asn != 0 {
		v := p.d.VRF(config.DefaultVRF)
		if v.BGP == nil {
			v.BGP = &config.BGPConfig{}
		}
		v.BGP.ASN = p.asn
		for _, gn := range p.gOrder {
			g := p.groups[gn]
			// Resolve local-address to the owning interface (the model's
			// update-source is interface-based).
			updateSource := ""
			if g.localAddr != 0 {
				for name, i := range p.d.Interfaces {
					for _, a := range i.Addresses {
						if a.Addr == g.localAddr {
							updateSource = name
						}
					}
				}
			}
			for _, n := range g.neighbors {
				if n.RemoteAS == 0 {
					n.RemoteAS = g.peerAS
				}
				if n.RemoteAS == 0 && g.external != nil && !*g.external {
					n.RemoteAS = p.asn
				}
				n.ImportPolicy = g.importP
				n.ExportPolicy = g.exportP
				n.EBGPMultihop = g.multihop
				n.NextHopSelf = g.nhSelf
				n.UpdateSource = updateSource
				v.BGP.Neighbors = append(v.BGP.Neighbors, n)
			}
		}
	}
}
