package juniper

import (
	"testing"

	"repro/internal/config"
	"repro/internal/hdr"
	"repro/internal/ip4"
)

const sampleConfig = `
set system host-name core1
set interfaces ge-0/0/0 description "to edge"
set interfaces ge-0/0/0 unit 0 family inet address 10.0.0.2/30
set interfaces ge-0/0/0 unit 0 family inet filter input PROTECT
set interfaces ge-0/0/1 unit 0 family inet address 192.168.10.1/24
set interfaces ge-0/0/1 disable
set interfaces ge-0/0/2 unit 0 family inet address 10.0.1.1/30
set interfaces ge-0/0/2 unit 0 family inet filter output EGRESS
set protocols ospf reference-bandwidth 100g
set protocols ospf area 0 interface ge-0/0/0 metric 10
set protocols ospf area 0 interface ge-0/0/2
set protocols ospf area 0 interface ge-0/0/1 passive
set routing-options autonomous-system 65010
set routing-options static route 0.0.0.0/0 next-hop 10.0.0.1
set routing-options static route 198.51.100.0/24 discard
set protocols bgp group transit type external
set protocols bgp group transit peer-as 65020
set protocols bgp group transit import FROM_TRANSIT
set protocols bgp group transit export TO_TRANSIT
set protocols bgp group transit neighbor 10.0.0.1
set protocols bgp group ibgp type internal
set protocols bgp group ibgp neighbor 10.0.1.2 peer-as 65010
set protocols bgp multipath
set policy-options prefix-list OURS 198.51.100.0/24
set policy-options prefix-list OURS 192.168.10.0/24 orlonger
set policy-options community CUSTOMERS members 65010:100
set policy-options policy-statement FROM_TRANSIT term good from prefix-list OURS
set policy-options policy-statement FROM_TRANSIT term good then reject
set policy-options policy-statement FROM_TRANSIT term rest then local-preference 120
set policy-options policy-statement FROM_TRANSIT term rest then accept
set policy-options policy-statement TO_TRANSIT term ours from prefix-list OURS
set policy-options policy-statement TO_TRANSIT term ours then accept
set policy-options policy-statement TO_TRANSIT term nothing then reject
set firewall filter PROTECT term bgp from protocol tcp
set firewall filter PROTECT term bgp from destination-port 179
set firewall filter PROTECT term bgp from source-address 10.0.0.0/30
set firewall filter PROTECT term bgp then accept
set firewall filter PROTECT term estab from tcp-established
set firewall filter PROTECT term estab then accept
set firewall filter PROTECT term rest then discard
set firewall filter EGRESS term all then accept
set security zones security-zone trust interfaces ge-0/0/1
set security zones security-zone untrust interfaces ge-0/0/0
set security policies from-zone trust to-zone untrust policy out acl EGRESS
`

func parseSample(t *testing.T) *config.Device {
	t.Helper()
	d, warns := Parse(sampleConfig)
	for _, w := range warns {
		t.Errorf("unexpected warning: %v", w)
	}
	if d.Hostname != "core1" {
		t.Fatalf("hostname = %q", d.Hostname)
	}
	return d
}

func TestInterfaces(t *testing.T) {
	d := parseSample(t)
	g0 := d.Interfaces["ge-0/0/0"]
	if g0 == nil || g0.Description != "to edge" {
		t.Fatalf("ge-0/0/0 = %+v", g0)
	}
	if len(g0.Addresses) != 1 || g0.Addresses[0] != ip4.MustParsePrefix("10.0.0.2/30") {
		t.Errorf("addresses = %v", g0.Addresses)
	}
	if g0.InACL != "PROTECT" {
		t.Errorf("input filter = %q", g0.InACL)
	}
	if d.Interfaces["ge-0/0/1"].Active {
		t.Error("disabled interface should be inactive")
	}
	if d.Interfaces["ge-0/0/2"].OutACL != "EGRESS" {
		t.Error("output filter missing")
	}
}

func TestOSPF(t *testing.T) {
	d := parseSample(t)
	proc := d.VRFs[config.DefaultVRF].OSPF
	if proc == nil || proc.RefBandwidth != 100_000_000_000 {
		t.Fatalf("ospf = %+v", proc)
	}
	g0 := d.Interfaces["ge-0/0/0"]
	if g0.OSPF == nil || g0.OSPF.Cost != 10 || g0.OSPF.Area != 0 {
		t.Errorf("ge-0/0/0 ospf = %+v", g0.OSPF)
	}
	if !d.Interfaces["ge-0/0/1"].OSPF.Passive {
		t.Error("passive not set")
	}
}

func TestStatics(t *testing.T) {
	d := parseSample(t)
	srs := d.VRFs[config.DefaultVRF].StaticRoutes
	if len(srs) != 2 {
		t.Fatalf("statics = %+v", srs)
	}
	if srs[0].NextHop != ip4.MustParseAddr("10.0.0.1") {
		t.Errorf("static 0 = %+v", srs[0])
	}
	if !srs[1].Drop {
		t.Errorf("discard route = %+v", srs[1])
	}
}

func TestBGPGroups(t *testing.T) {
	d := parseSample(t)
	proc := d.VRFs[config.DefaultVRF].BGP
	if proc == nil || proc.ASN != 65010 {
		t.Fatalf("bgp = %+v", proc)
	}
	if !proc.MultipathEBGP || !proc.MultipathIBGP {
		t.Error("multipath not set")
	}
	if len(proc.Neighbors) != 2 {
		t.Fatalf("neighbors = %+v", proc.Neighbors)
	}
	ext := proc.Neighbors[0]
	if ext.PeerIP != ip4.MustParseAddr("10.0.0.1") || ext.RemoteAS != 65020 ||
		ext.ImportPolicy != "FROM_TRANSIT" || ext.ExportPolicy != "TO_TRANSIT" {
		t.Errorf("transit neighbor = %+v", ext)
	}
	internal := proc.Neighbors[1]
	if internal.RemoteAS != 65010 {
		t.Errorf("ibgp neighbor = %+v", internal)
	}
}

func TestPolicyStatements(t *testing.T) {
	d := parseSample(t)
	rm := d.RouteMaps["FROM_TRANSIT"]
	if rm == nil || len(rm.Clauses) != 2 {
		t.Fatalf("FROM_TRANSIT = %+v", rm)
	}
	// Term "good": reject our own prefixes from transit.
	if rm.Clauses[0].Action != config.Deny || len(rm.Clauses[0].Matches) != 1 {
		t.Errorf("term good = %+v", rm.Clauses[0])
	}
	// Term "rest": accept with LP 120.
	if rm.Clauses[1].Action != config.Permit {
		t.Errorf("term rest action = %v", rm.Clauses[1].Action)
	}
	foundLP := false
	for _, s := range rm.Clauses[1].Sets {
		if s.Kind == config.SetLocalPref && s.Value == 120 {
			foundLP = true
		}
	}
	if !foundLP {
		t.Errorf("term rest sets = %+v", rm.Clauses[1].Sets)
	}
}

func TestPrefixListsAndCommunities(t *testing.T) {
	d := parseSample(t)
	pl := d.PrefixLists["OURS"]
	if pl == nil || len(pl.Entries) != 2 {
		t.Fatalf("OURS = %+v", pl)
	}
	// exact entry
	if !pl.Permits(ip4.MustParsePrefix("198.51.100.0/24")) {
		t.Error("exact prefix should match")
	}
	if pl.Permits(ip4.MustParsePrefix("198.51.100.0/25")) {
		t.Error("longer prefix should not match exact entry")
	}
	// orlonger entry
	if !pl.Permits(ip4.MustParsePrefix("192.168.10.128/25")) {
		t.Error("orlonger should match longer prefixes")
	}
	cl := d.CommunityLists["CUSTOMERS"]
	if cl == nil || !cl.MatchesCommunities([]string{"65010:100"}) {
		t.Error("community members wrong")
	}
	if cl.MatchesCommunities([]string{"65010:1000"}) {
		t.Error("exact community must not match superstring")
	}
}

func TestFirewallFilters(t *testing.T) {
	d := parseSample(t)
	f := d.ACLs["PROTECT"]
	if f == nil || len(f.Lines) != 3 {
		t.Fatalf("PROTECT = %+v", f)
	}
	bgpPkt := hdr.Packet{Protocol: hdr.ProtoTCP, DstPort: 179, SrcIP: ip4.MustParseAddr("10.0.0.1")}
	if f.Eval(bgpPkt).LineIndex != 0 {
		t.Errorf("bgp term should match: %+v", f.Eval(bgpPkt))
	}
	estab := hdr.Packet{Protocol: hdr.ProtoTCP, TCPFlags: hdr.FlagACK, DstPort: 9999, SrcIP: ip4.MustParseAddr("1.1.1.1")}
	if d := f.Eval(estab); d.LineIndex != 1 {
		t.Errorf("established term should match: %+v", d)
	}
	fresh := hdr.Packet{Protocol: hdr.ProtoTCP, TCPFlags: hdr.FlagSYN, DstPort: 9999}
	if d := f.Eval(fresh); d.LineName != "rest" || d.Action.String() != "deny" {
		t.Errorf("rest term should discard: %+v", d)
	}
}

func TestZones(t *testing.T) {
	d := parseSample(t)
	if len(d.Zones) != 2 || !d.Stateful {
		t.Fatalf("zones = %+v stateful=%v", d.Zones, d.Stateful)
	}
	if d.ZoneOf("ge-0/0/1") != "trust" {
		t.Errorf("zone of ge-0/0/1 = %q", d.ZoneOf("ge-0/0/1"))
	}
	if len(d.ZonePolicies) != 1 || d.ZonePolicies[0].ACL != "EGRESS" {
		t.Errorf("zone policies = %+v", d.ZonePolicies)
	}
}

func TestWarningsOnGarbage(t *testing.T) {
	_, warns := Parse("set system host-name x\nnonsense line\nset bogus hierarchy thing\n")
	if len(warns) < 2 {
		t.Errorf("expected warnings: %v", warns)
	}
}

func TestBandwidthSuffixes(t *testing.T) {
	cases := map[string]uint64{"10g": 10_000_000_000, "100m": 100_000_000, "64k": 64_000, "1000": 1000}
	for in, want := range cases {
		if got, ok := parseBandwidth(in); !ok || got != want {
			t.Errorf("parseBandwidth(%q) = %d, want %d", in, got, want)
		}
	}
	if _, ok := parseBandwidth("fast"); ok {
		t.Error("junk bandwidth should fail")
	}
}
