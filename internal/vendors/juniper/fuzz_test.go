package juniper

import (
	"strings"
	"testing"
)

// FuzzParse asserts the Junos parser's containment contract: any input
// must produce a device model and warnings, never a panic or nil device.
// Seeds cover set-style statements for interfaces, OSPF, BGP, policies,
// firewall filters, and statics.
func FuzzParse(f *testing.F) {
	f.Add("")
	f.Add("set system host-name r1\n")
	f.Add("set interfaces ge-0/0/0 unit 0 family inet address 10.0.0.1/24\n")
	f.Add("set protocols ospf area 0.0.0.0 interface ge-0/0/0.0\nset protocols ospf area 0 interface ge-0/0/1.0 metric 20\n")
	f.Add("set routing-options static route 0.0.0.0/0 next-hop 10.0.0.254\nset routing-options static route 10.9.0.0/16 discard\n")
	f.Add("set protocols bgp group ebgp neighbor 10.0.0.2 peer-as 65002\nset routing-options autonomous-system 65001\n")
	f.Add("set policy-options policy-statement EXPORT term 1 from protocol direct\nset policy-options policy-statement EXPORT term 1 then accept\n")
	f.Add("set firewall family inet filter BLOCK term 1 from destination-address 10.0.0.5/32\nset firewall family inet filter BLOCK term 1 then discard\n")
	f.Add("set interfaces ge-0/0/0 unit 0 family inet address 10.0.0.1/33\nset protocols\nset\n")
	f.Fuzz(func(t *testing.T, text string) {
		if len(text) > 1<<16 {
			t.Skip("oversized input")
		}
		d, _ := Parse(text)
		if d == nil {
			t.Fatal("Parse returned nil device")
		}
		if i := strings.IndexByte(text, '\n'); i >= 0 {
			if d2, _ := Parse(text[:i]); d2 == nil {
				t.Fatal("Parse returned nil device for truncated input")
			}
		}
	})
}
