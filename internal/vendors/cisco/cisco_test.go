package cisco

import (
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/hdr"
	"repro/internal/ip4"
)

const sampleConfig = `
hostname edge1
!
vrf definition MGMT
!
interface GigabitEthernet0/0
 description uplink to core
 ip address 10.0.0.1 255.255.255.252
 ip access-group EDGE_IN in
 ip access-group EDGE_OUT out
 ip ospf cost 10
 ip ospf area 0
 bandwidth 1000000
!
interface GigabitEthernet0/1
 ip address 192.168.1.1 255.255.255.0
 ip address 192.168.2.1 255.255.255.0 secondary
 ip ospf area 1
 ip ospf passive
!
interface GigabitEthernet0/2
 shutdown
 ip address 172.16.0.1 255.255.255.0
!
router ospf 1
 router-id 1.1.1.1
 auto-cost reference-bandwidth 100000
 redistribute static metric 50 metric-type 1 route-map STATIC_TO_OSPF
!
router bgp 65001
 bgp router-id 1.1.1.1
 maximum-paths 4
 network 203.0.113.0 mask 255.255.255.0
 neighbor 10.0.0.2 remote-as 65002
 neighbor 10.0.0.2 description core peer
 neighbor 10.0.0.2 route-map IMPORT_POL in
 neighbor 10.0.0.2 route-map EXPORT_POL out
 neighbor 10.0.0.2 next-hop-self
 neighbor 10.0.0.2 send-community
 redistribute connected route-map CONN_TO_BGP
!
ip route 203.0.113.0 255.255.255.0 Null0
ip route 0.0.0.0 0.0.0.0 10.0.0.2 250
ip route 10.99.0.0 255.255.0.0 GigabitEthernet0/0 10.0.0.2 tag 77
!
ip access-list extended EDGE_IN
 permit tcp 10.0.0.0 0.255.255.255 any eq 179
 deny tcp any any eq 23
 permit tcp any range 1024 65535 host 192.168.1.10 eq 443
 permit icmp any any echo
 permit ip any any
!
ip access-list extended EDGE_OUT
 deny udp any any eq 161
 permit tcp any gt 1023 any established
 permit ip any any
!
ip prefix-list CUSTOMER seq 10 permit 203.0.113.0/24
ip prefix-list CUSTOMER seq 20 deny 0.0.0.0/0 le 32
ip community-list expanded NO_EXPORT_LIST permit ^65001:99$
ip as-path access-list 10 permit _65002_
!
route-map IMPORT_POL permit 10
 match ip address prefix-list CUSTOMER
 set local-preference 200
 set community 65001:100 additive
route-map IMPORT_POL deny 20
route-map EXPORT_POL permit 10
 match as-path 10
 set metric +5
 set as-path prepend 65001 65001
route-map STATIC_TO_OSPF permit 10
 match tag 77
route-map CONN_TO_BGP permit 10
!
ntp server 192.0.2.10
ntp server 192.0.2.11
logging host 192.0.2.20
ip name-server 192.0.2.30
!
ip nat source list NAT_MATCH pool 100.64.0.1 100.64.0.10 interface GigabitEthernet0/0
!
end
`

func parseSample(t *testing.T) (*config.Device, []config.Warning) {
	t.Helper()
	d, warns := Parse(sampleConfig)
	if d.Hostname != "edge1" {
		t.Fatalf("hostname = %q", d.Hostname)
	}
	return d, warns
}

func TestParseInterfaces(t *testing.T) {
	d, _ := parseSample(t)
	g0 := d.Interfaces["GigabitEthernet0/0"]
	if g0 == nil {
		t.Fatal("missing Gi0/0")
	}
	if g0.Description != "uplink to core" {
		t.Errorf("description = %q", g0.Description)
	}
	if len(g0.Addresses) != 1 || g0.Addresses[0] != ip4.MustParsePrefix("10.0.0.1/30") {
		t.Errorf("addresses = %v", g0.Addresses)
	}
	if g0.InACL != "EDGE_IN" || g0.OutACL != "EDGE_OUT" {
		t.Errorf("ACLs = %q/%q", g0.InACL, g0.OutACL)
	}
	if g0.OSPF == nil || g0.OSPF.Cost != 10 || g0.OSPF.Area != 0 {
		t.Errorf("ospf = %+v", g0.OSPF)
	}
	if g0.Bandwidth != 1000000*1000 {
		t.Errorf("bandwidth = %d", g0.Bandwidth)
	}
	g1 := d.Interfaces["GigabitEthernet0/1"]
	if len(g1.Addresses) != 2 || g1.Addresses[0].Addr != ip4.MustParseAddr("192.168.1.1") {
		t.Errorf("primary/secondary wrong: %v", g1.Addresses)
	}
	if g1.OSPF == nil || !g1.OSPF.Passive || g1.OSPF.Area != 1 {
		t.Errorf("g1 ospf = %+v", g1.OSPF)
	}
	if d.Interfaces["GigabitEthernet0/2"].Active {
		t.Error("shutdown interface should be inactive")
	}
}

func TestParseOSPFProcess(t *testing.T) {
	d, _ := parseSample(t)
	proc := d.VRFs[config.DefaultVRF].OSPF
	if proc == nil {
		t.Fatal("no ospf process")
	}
	if proc.RouterID != ip4.MustParseAddr("1.1.1.1") {
		t.Errorf("router-id = %v", proc.RouterID)
	}
	if proc.RefBandwidth != 100000*1_000_000 {
		t.Errorf("ref bandwidth = %d", proc.RefBandwidth)
	}
	if len(proc.Redistribute) != 1 {
		t.Fatalf("redistribute = %v", proc.Redistribute)
	}
	rd := proc.Redistribute[0]
	if rd.From != config.RedistStatic || rd.Metric != 50 || rd.MetricType != 1 || rd.RouteMap != "STATIC_TO_OSPF" {
		t.Errorf("redistribute = %+v", rd)
	}
}

func TestParseBGPProcess(t *testing.T) {
	d, _ := parseSample(t)
	proc := d.VRFs[config.DefaultVRF].BGP
	if proc == nil || proc.ASN != 65001 {
		t.Fatalf("bgp = %+v", proc)
	}
	if !proc.MultipathEBGP {
		t.Error("maximum-paths not parsed")
	}
	if len(proc.Networks) != 1 || proc.Networks[0] != ip4.MustParsePrefix("203.0.113.0/24") {
		t.Errorf("networks = %v", proc.Networks)
	}
	if len(proc.Neighbors) != 1 {
		t.Fatalf("neighbors = %v", proc.Neighbors)
	}
	n := proc.Neighbors[0]
	if n.PeerIP != ip4.MustParseAddr("10.0.0.2") || n.RemoteAS != 65002 ||
		n.ImportPolicy != "IMPORT_POL" || n.ExportPolicy != "EXPORT_POL" ||
		!n.NextHopSelf || !n.SendCommunity || n.Description != "core peer" {
		t.Errorf("neighbor = %+v", n)
	}
}

func TestParseStatics(t *testing.T) {
	d, _ := parseSample(t)
	srs := d.VRFs[config.DefaultVRF].StaticRoutes
	if len(srs) != 3 {
		t.Fatalf("statics = %v", srs)
	}
	if !srs[0].Drop {
		t.Error("Null0 route should be discard")
	}
	if srs[1].AD != 250 || srs[1].NextHop != ip4.MustParseAddr("10.0.0.2") {
		t.Errorf("floating static = %+v", srs[1])
	}
	if srs[2].Iface != "GigabitEthernet0/0" || srs[2].Tag != 77 {
		t.Errorf("iface static = %+v", srs[2])
	}
}

func TestParseACLLines(t *testing.T) {
	d, _ := parseSample(t)
	a := d.ACLs["EDGE_IN"]
	if a == nil || len(a.Lines) != 5 {
		t.Fatalf("EDGE_IN = %+v", a)
	}
	l0 := a.Lines[0]
	if l0.Protocol != hdr.ProtoTCP || len(l0.SrcIPs) != 1 ||
		l0.SrcIPs[0] != ip4.MustParsePrefix("10.0.0.0/8") ||
		len(l0.DstPorts) != 1 || l0.DstPorts[0].Lo != 179 {
		t.Errorf("line 0 = %+v", l0)
	}
	l2 := a.Lines[2]
	if len(l2.SrcPorts) != 1 || l2.SrcPorts[0] != (struct{ Lo, Hi uint16 }{1024, 65535}) {
		// compare via fields
		if l2.SrcPorts[0].Lo != 1024 || l2.SrcPorts[0].Hi != 65535 {
			t.Errorf("line 2 src ports = %+v", l2.SrcPorts)
		}
	}
	if len(l2.DstIPs) != 1 || l2.DstIPs[0] != ip4.MustParsePrefix("192.168.1.10/32") {
		t.Errorf("line 2 dst = %+v", l2.DstIPs)
	}
	l3 := a.Lines[3]
	if l3.Protocol != hdr.ProtoICMP || l3.ICMPType != 8 {
		t.Errorf("line 3 = %+v", l3)
	}
	out := d.ACLs["EDGE_OUT"]
	if out.Lines[1].TCPFlags == nil || out.Lines[1].TCPFlags.Mask&hdr.FlagACK == 0 {
		t.Errorf("established not parsed: %+v", out.Lines[1])
	}
	if out.Lines[1].SrcPorts[0].Lo != 1024 {
		t.Errorf("gt 1023 wrong: %+v", out.Lines[1].SrcPorts)
	}
}

func TestParsePolicyStructures(t *testing.T) {
	d, _ := parseSample(t)
	pl := d.PrefixLists["CUSTOMER"]
	if pl == nil || len(pl.Entries) != 2 {
		t.Fatalf("prefix list = %+v", pl)
	}
	if pl.Entries[1].Action != config.Deny || pl.Entries[1].Le != 32 {
		t.Errorf("entry 2 = %+v", pl.Entries[1])
	}
	if d.CommunityLists["NO_EXPORT_LIST"] == nil {
		t.Error("community list missing")
	}
	if d.ASPathLists["10"] == nil {
		t.Error("as-path list missing")
	}
	rm := d.RouteMaps["IMPORT_POL"]
	if rm == nil || len(rm.Clauses) != 2 {
		t.Fatalf("IMPORT_POL = %+v", rm)
	}
	if rm.Clauses[0].Seq != 10 || rm.Clauses[1].Action != config.Deny || rm.Clauses[1].Seq != 20 {
		t.Errorf("clauses = %+v", rm.Clauses)
	}
	exp := d.RouteMaps["EXPORT_POL"]
	foundAdd, foundPrepend := false, false
	for _, s := range exp.Clauses[0].Sets {
		if s.Kind == config.SetMetricAdd && s.Value == 5 {
			foundAdd = true
		}
		if s.Kind == config.SetASPathPrepend && s.PrependASN == 65001 && s.PrependN == 2 {
			foundPrepend = true
		}
	}
	if !foundAdd || !foundPrepend {
		t.Errorf("EXPORT_POL sets = %+v", exp.Clauses[0].Sets)
	}
}

func TestParseManagementPlane(t *testing.T) {
	d, _ := parseSample(t)
	if len(d.NTPServers) != 2 || d.NTPServers[0] != ip4.MustParseAddr("192.0.2.10") {
		t.Errorf("ntp = %v", d.NTPServers)
	}
	if len(d.SyslogServers) != 1 || len(d.DNSServers) != 1 {
		t.Errorf("syslog/dns = %v / %v", d.SyslogServers, d.DNSServers)
	}
}

func TestParseNAT(t *testing.T) {
	d, _ := parseSample(t)
	if len(d.NATRules) != 1 {
		t.Fatalf("nat = %+v", d.NATRules)
	}
	nr := d.NATRules[0]
	if nr.Kind != config.SourceNAT || nr.MatchACL != "NAT_MATCH" ||
		nr.PoolLo != ip4.MustParseAddr("100.64.0.1") || nr.PoolHi != ip4.MustParseAddr("100.64.0.10") ||
		nr.Iface != "GigabitEthernet0/0" {
		t.Errorf("nat rule = %+v", nr)
	}
}

func TestUndefinedReferencesDetected(t *testing.T) {
	d, _ := parseSample(t)
	undef := d.UndefinedRefs()
	// NAT_MATCH acl is referenced but never defined.
	found := false
	for _, r := range undef {
		if r.Type == config.RefACL && r.Name == "NAT_MATCH" {
			found = true
		}
	}
	if !found {
		t.Errorf("undefined NAT_MATCH not reported: %v", undef)
	}
}

func TestNoSpuriousWarnings(t *testing.T) {
	_, warns := parseSample(t)
	for _, w := range warns {
		t.Errorf("unexpected warning: %v", w)
	}
}

func TestWarningsOnGarbage(t *testing.T) {
	d, warns := Parse("hostname x\nfrobnicate the network\ninterface e0\n ip address banana\n")
	if d.Hostname != "x" {
		t.Error("parsing should continue past garbage")
	}
	if len(warns) < 2 {
		t.Errorf("expected warnings, got %v", warns)
	}
}

func TestNonContiguousWildcardRejected(t *testing.T) {
	_, warns := Parse("hostname x\nip access-list extended A\n permit ip 10.0.0.0 0.255.0.255 any\n")
	found := false
	for _, w := range warns {
		if strings.Contains(w.Text, "non-contiguous") {
			found = true
		}
	}
	if !found {
		t.Errorf("non-contiguous wildcard should warn: %v", warns)
	}
}

func TestWildcardMask(t *testing.T) {
	if l, err := parseWildcard("0.0.0.255"); err != nil || l != 24 {
		t.Errorf("wildcard 0.0.0.255 -> %d, %v", l, err)
	}
	if l, err := parseWildcard("0.0.0.0"); err != nil || l != 32 {
		t.Errorf("wildcard 0.0.0.0 -> %d, %v", l, err)
	}
	if _, err := parseWildcard("255.0.0.255"); err == nil {
		t.Error("non-contiguous wildcard should fail")
	}
}

func TestOSPFNetworkStatement(t *testing.T) {
	d, warns := Parse(`hostname x
interface e0
 ip address 10.1.0.1 255.255.255.0
router ospf 1
 network 10.1.0.0 0.0.255.255 area 5
`)
	for _, w := range warns {
		t.Errorf("warning: %v", w)
	}
	i := d.Interfaces["e0"]
	if i.OSPF == nil || i.OSPF.Area != 5 {
		t.Errorf("network statement did not enable ospf: %+v", i.OSPF)
	}
}
