// Package cisco parses an IOS-style configuration dialect into the
// vendor-independent model (pipeline Stage 1, paper §2). The parser is
// hand-written and line-oriented, mirroring the structure of Cisco IOS
// configurations: top-level statements plus indented blocks for
// interfaces, routing processes, ACLs, and route maps.
//
// Unrecognized lines become warnings rather than errors — real
// configurations have a long tail of constructs (Lesson 3), and a
// verification tool must degrade loudly but gracefully.
package cisco

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/acl"
	"repro/internal/config"
	"repro/internal/hdr"
	"repro/internal/ip4"
)

// Parse parses one device's configuration text.
func Parse(text string) (*config.Device, []config.Warning) {
	p := &parser{d: config.NewDevice("", "ios")}
	lines := strings.Split(text, "\n")
	p.d.RawLines = len(lines)
	for i := 0; i < len(lines); {
		i = p.parseTop(lines, i)
	}
	if p.d.Hostname == "" {
		p.warn(0, "missing hostname")
	}
	return p.d, p.warnings
}

type parser struct {
	d        *config.Device
	warnings []config.Warning
}

func (p *parser) warn(line int, format string, args ...any) {
	p.warnings = append(p.warnings, config.Warning{
		Device: p.d.Hostname, Line: line + 1, Text: fmt.Sprintf(format, args...),
	})
}

// blockEnd returns the first index >= start whose line is not part of the
// indented block (blocks are indented with at least one space).
func blockEnd(lines []string, start int) int {
	i := start
	for i < len(lines) {
		l := lines[i]
		if strings.TrimSpace(l) == "" || strings.HasPrefix(l, " ") {
			i++
			continue
		}
		break
	}
	return i
}

// parseTop handles one top-level statement starting at index i and returns
// the index of the next top-level line.
func (p *parser) parseTop(lines []string, i int) int {
	line := strings.TrimRight(lines[i], "\r ")
	trimmed := strings.TrimSpace(line)
	if trimmed == "" || trimmed == "!" || strings.HasPrefix(trimmed, "!") {
		return i + 1
	}
	w := strings.Fields(trimmed)
	switch {
	case w[0] == "hostname" && len(w) >= 2:
		p.d.Hostname = w[1]
		return i + 1
	case w[0] == "interface" && len(w) >= 2:
		end := blockEnd(lines, i+1)
		p.parseInterface(w[1], lines, i+1, end)
		return end
	case w[0] == "router" && len(w) >= 2 && w[1] == "ospf":
		end := blockEnd(lines, i+1)
		p.parseOSPF(w, lines, i+1, end)
		return end
	case w[0] == "router" && len(w) >= 2 && w[1] == "bgp":
		end := blockEnd(lines, i+1)
		p.parseBGP(w, lines, i+1, end)
		return end
	case w[0] == "ip" && len(w) >= 2 && w[1] == "route":
		p.parseStaticRoute(w[2:], i)
		return i + 1
	case w[0] == "ip" && len(w) >= 3 && w[1] == "access-list" && w[2] == "extended":
		if len(w) < 4 {
			p.warn(i, "ip access-list extended: missing name")
			return i + 1
		}
		end := blockEnd(lines, i+1)
		p.parseACL(w[3], lines, i+1, end)
		return end
	case w[0] == "ip" && len(w) >= 2 && w[1] == "prefix-list":
		p.parsePrefixList(w[2:], i)
		return i + 1
	case w[0] == "ip" && len(w) >= 2 && w[1] == "community-list":
		p.parseCommunityList(w[2:], i)
		return i + 1
	case w[0] == "ip" && len(w) >= 3 && w[1] == "as-path" && w[2] == "access-list":
		p.parseASPathList(w[3:], i)
		return i + 1
	case w[0] == "route-map" && len(w) >= 2:
		end := blockEnd(lines, i+1)
		p.parseRouteMap(w, lines, i+1, end)
		return end
	case w[0] == "ntp" && len(w) >= 3 && w[1] == "server":
		if a, err := ip4.ParseAddr(w[2]); err == nil {
			p.d.NTPServers = append(p.d.NTPServers, a)
		} else {
			p.warn(i, "bad ntp server %q", w[2])
		}
		return i + 1
	case w[0] == "logging" && len(w) >= 3 && w[1] == "host":
		if a, err := ip4.ParseAddr(w[2]); err == nil {
			p.d.SyslogServers = append(p.d.SyslogServers, a)
		}
		return i + 1
	case w[0] == "ip" && len(w) >= 3 && w[1] == "name-server":
		if a, err := ip4.ParseAddr(w[2]); err == nil {
			p.d.DNSServers = append(p.d.DNSServers, a)
		}
		return i + 1
	case w[0] == "zone" && len(w) >= 3 && w[1] == "security":
		p.d.Zones[w[2]] = &config.Zone{Name: w[2]}
		p.d.Stateful = true
		return i + 1
	case w[0] == "zone-pair" && len(w) >= 2 && w[1] == "security":
		p.parseZonePair(w[2:], i)
		return i + 1
	case w[0] == "ip" && len(w) >= 2 && w[1] == "nat":
		p.parseNAT(w[2:], i)
		return i + 1
	case w[0] == "vrf" && len(w) >= 3 && w[1] == "definition":
		p.d.VRF(w[2])
		end := blockEnd(lines, i+1)
		return end
	case w[0] == "version", w[0] == "boot", w[0] == "service", w[0] == "no",
		w[0] == "end", w[0] == "enable", w[0] == "line", w[0] == "banner",
		w[0] == "snmp-server", w[0] == "aaa", w[0] == "spanning-tree":
		// Recognized-but-irrelevant statements; skip any block.
		return blockEnd(lines, i+1)
	}
	p.warn(i, "unrecognized statement: %s", trimmed)
	return blockEnd(lines, i+1)
}

func (p *parser) parseInterface(name string, lines []string, start, end int) {
	i := &config.Interface{Name: name, Active: true}
	p.d.Interfaces[name] = i
	for li := start; li < end; li++ {
		t := strings.TrimSpace(lines[li])
		if t == "" || strings.HasPrefix(t, "!") {
			continue
		}
		w := strings.Fields(t)
		switch {
		case w[0] == "description":
			i.Description = strings.TrimSpace(strings.TrimPrefix(t, "description"))
		case w[0] == "shutdown":
			i.Active = false
		case w[0] == "no" && len(w) >= 2 && w[1] == "shutdown":
			i.Active = true
		case w[0] == "bandwidth" && len(w) >= 2:
			if kbps, err := strconv.ParseUint(w[1], 10, 64); err == nil {
				i.Bandwidth = kbps * 1000
			}
		case w[0] == "vrf" && len(w) >= 3 && w[1] == "forwarding":
			i.VRFName = w[2]
			p.d.VRF(w[2])
		case w[0] == "ip" && len(w) >= 4 && w[1] == "address":
			a, err1 := ip4.ParseAddr(w[2])
			m, err2 := parseMask(w[3])
			if err1 != nil || err2 != nil {
				p.warn(li, "bad ip address: %s", t)
				continue
			}
			pre := ip4.Prefix{Addr: a, Len: m}
			if len(w) >= 5 && w[4] == "secondary" {
				i.Addresses = append(i.Addresses, pre)
			} else {
				i.Addresses = append([]ip4.Prefix{pre}, i.Addresses...)
			}
		case w[0] == "ip" && len(w) >= 4 && w[1] == "access-group":
			switch w[3] {
			case "in":
				i.InACL = w[2]
			case "out":
				i.OutACL = w[2]
			}
			p.d.AddRef(config.RefACL, w[2], "interface "+name+" access-group "+w[3])
		case w[0] == "ip" && len(w) >= 3 && w[1] == "ospf":
			p.parseIfaceOSPF(i, w[2:], li)
		case w[0] == "zone-member" && len(w) >= 3 && w[1] == "security":
			i.Zone = w[2]
			p.d.AddRef(config.RefZone, w[2], "interface "+name)
			if z, ok := p.d.Zones[w[2]]; ok {
				z.Interfaces = append(z.Interfaces, name)
			}
		default:
			p.warn(li, "interface %s: unrecognized: %s", name, t)
		}
	}
}

func (p *parser) parseIfaceOSPF(i *config.Interface, w []string, li int) {
	if i.OSPF == nil {
		i.OSPF = &config.OSPFInterface{}
	}
	switch {
	case len(w) >= 2 && w[0] == "cost":
		if v, err := strconv.Atoi(w[1]); err == nil {
			i.OSPF.Cost = uint32(v)
		}
	case len(w) >= 2 && w[0] == "area":
		if v, err := strconv.Atoi(w[1]); err == nil {
			i.OSPF.Area = uint32(v)
		}
	case w[0] == "passive":
		i.OSPF.Passive = true
	default:
		p.warn(li, "interface %s: unrecognized ospf setting: %v", i.Name, w)
	}
}

func parseMask(s string) (uint8, error) {
	m, err := ip4.ParseAddr(s)
	if err != nil {
		return 0, err
	}
	v := uint32(m)
	// Must be contiguous ones from the top.
	var l uint8
	for l = 0; l < 32; l++ {
		if v&(1<<(31-l)) == 0 {
			break
		}
	}
	if v != uint32(ip4.Mask(l)) {
		return 0, fmt.Errorf("non-contiguous mask %s", s)
	}
	return l, nil
}

// parseWildcard converts a Cisco wildcard mask (inverted) to a prefix
// length; non-contiguous wildcards are rejected.
func parseWildcard(s string) (uint8, error) {
	m, err := ip4.ParseAddr(s)
	if err != nil {
		return 0, err
	}
	return parseMaskValue(^uint32(m))
}

func parseMaskValue(v uint32) (uint8, error) {
	var l uint8
	for l = 0; l < 32; l++ {
		if v&(1<<(31-l)) == 0 {
			break
		}
	}
	if v != uint32(ip4.Mask(l)) {
		return 0, fmt.Errorf("non-contiguous mask")
	}
	return l, nil
}

func (p *parser) parseStaticRoute(w []string, li int) {
	vrfName := ""
	if len(w) >= 2 && w[0] == "vrf" {
		vrfName = w[1]
		w = w[2:]
	}
	if len(w) < 3 {
		p.warn(li, "ip route: too few arguments")
		return
	}
	a, err1 := ip4.ParseAddr(w[0])
	m, err2 := parseMask(w[1])
	if err1 != nil || err2 != nil {
		p.warn(li, "ip route: bad prefix")
		return
	}
	sr := config.StaticRoute{Prefix: ip4.Prefix{Addr: a, Len: m}}
	rest := w[2:]
	// Next hop: Null0, an interface name, an IP, or interface + IP.
	switch {
	case strings.EqualFold(rest[0], "null0"):
		sr.Drop = true
		rest = rest[1:]
	default:
		if nh, err := ip4.ParseAddr(rest[0]); err == nil {
			sr.NextHop = nh
			rest = rest[1:]
		} else {
			sr.Iface = rest[0]
			p.d.AddRef(config.RefInterface, rest[0], "ip route")
			rest = rest[1:]
			if len(rest) > 0 {
				if nh, err := ip4.ParseAddr(rest[0]); err == nil {
					sr.NextHop = nh
					rest = rest[1:]
				}
			}
		}
	}
	for len(rest) > 0 {
		switch {
		case rest[0] == "tag" && len(rest) >= 2:
			if v, err := strconv.Atoi(rest[1]); err == nil {
				sr.Tag = uint32(v)
			}
			rest = rest[2:]
		default:
			if v, err := strconv.Atoi(rest[0]); err == nil && v > 0 && v < 256 {
				sr.AD = uint8(v)
			} else {
				p.warn(li, "ip route: unrecognized token %q", rest[0])
			}
			rest = rest[1:]
		}
	}
	vrf := p.d.VRF(config.DefaultVRF)
	if vrfName != "" {
		vrf = p.d.VRF(vrfName)
	}
	vrf.StaticRoutes = append(vrf.StaticRoutes, sr)
}

func (p *parser) parseOSPF(head []string, lines []string, start, end int) {
	pid := 1
	if len(head) >= 3 {
		if v, err := strconv.Atoi(head[2]); err == nil {
			pid = v
		}
	}
	vrf := p.d.VRF(config.DefaultVRF)
	if len(head) >= 5 && head[3] == "vrf" {
		vrf = p.d.VRF(head[4])
	}
	proc := &config.OSPFConfig{ProcessID: pid}
	vrf.OSPF = proc
	for li := start; li < end; li++ {
		t := strings.TrimSpace(lines[li])
		if t == "" || strings.HasPrefix(t, "!") {
			continue
		}
		w := strings.Fields(t)
		switch {
		case w[0] == "router-id" && len(w) >= 2:
			if a, err := ip4.ParseAddr(w[1]); err == nil {
				proc.RouterID = a
			}
		case w[0] == "auto-cost" && len(w) >= 2 && strings.HasPrefix(w[1], "reference-bandwidth"):
			if len(w) >= 3 {
				if mbps, err := strconv.ParseUint(w[2], 10, 64); err == nil {
					proc.RefBandwidth = mbps * 1_000_000
				}
			}
		case w[0] == "max-metric":
			proc.MaxMetric = true
		case w[0] == "redistribute":
			if rd, ok := p.parseRedistribute(w[1:], li); ok {
				proc.Redistribute = append(proc.Redistribute, rd)
			}
		case w[0] == "passive-interface" && len(w) >= 2:
			if i, ok := p.d.Interfaces[w[1]]; ok && i.OSPF != nil {
				i.OSPF.Passive = true
			} else {
				p.d.AddRef(config.RefInterface, w[1], "router ospf passive-interface")
			}
		case w[0] == "network":
			// network <addr> <wildcard> area <n>: enable OSPF on matching
			// interfaces.
			if len(w) >= 5 && w[3] == "area" {
				p.applyOSPFNetwork(w[1], w[2], w[4], li)
			} else {
				p.warn(li, "router ospf: bad network statement: %s", t)
			}
		default:
			p.warn(li, "router ospf: unrecognized: %s", t)
		}
	}
}

func (p *parser) applyOSPFNetwork(addrS, wildS, areaS string, li int) {
	a, err1 := ip4.ParseAddr(addrS)
	wl, err2 := parseWildcard(wildS)
	area, err3 := strconv.Atoi(areaS)
	if err1 != nil || err2 != nil || err3 != nil {
		p.warn(li, "bad network statement")
		return
	}
	netPrefix := ip4.Prefix{Addr: a, Len: wl}
	for _, i := range p.d.Interfaces {
		for _, ap := range i.Addresses {
			if netPrefix.Contains(ap.Addr) {
				if i.OSPF == nil {
					i.OSPF = &config.OSPFInterface{}
				}
				i.OSPF.Area = uint32(area)
			}
		}
	}
}

func (p *parser) parseRedistribute(w []string, li int) (config.Redistribution, bool) {
	var rd config.Redistribution
	if len(w) == 0 {
		return rd, false
	}
	switch w[0] {
	case "connected":
		rd.From = config.RedistConnected
	case "static":
		rd.From = config.RedistStatic
	case "ospf":
		rd.From = config.RedistOSPF
	case "bgp":
		rd.From = config.RedistBGP
		if len(w) >= 2 {
			if _, err := strconv.Atoi(w[1]); err == nil {
				w = w[1:]
			}
		}
	default:
		p.warn(li, "redistribute: unknown protocol %q", w[0])
		return rd, false
	}
	w = w[1:]
	for len(w) > 0 {
		switch {
		case w[0] == "metric" && len(w) >= 2:
			if v, err := strconv.Atoi(w[1]); err == nil {
				rd.Metric = uint32(v)
			}
			w = w[2:]
		case w[0] == "metric-type" && len(w) >= 2:
			if v, err := strconv.Atoi(w[1]); err == nil {
				rd.MetricType = uint8(v)
			}
			w = w[2:]
		case w[0] == "route-map" && len(w) >= 2:
			rd.RouteMap = w[1]
			p.d.AddRef(config.RefRouteMap, w[1], "redistribute")
			w = w[2:]
		case w[0] == "subnets":
			w = w[1:]
		default:
			p.warn(li, "redistribute: unrecognized token %q", w[0])
			w = w[1:]
		}
	}
	return rd, true
}

func (p *parser) parseBGP(head []string, lines []string, start, end int) {
	asn := uint32(0)
	if len(head) >= 3 {
		if v, err := strconv.ParseUint(head[2], 10, 32); err == nil {
			asn = uint32(v)
		}
	}
	vrf := p.d.VRF(config.DefaultVRF)
	proc := vrf.BGP
	if proc == nil || proc.ASN != asn {
		proc = &config.BGPConfig{ASN: asn}
		vrf.BGP = proc
	}
	nbr := func(ipS string) *config.BGPNeighbor {
		a, err := ip4.ParseAddr(ipS)
		if err != nil {
			return nil
		}
		for _, n := range proc.Neighbors {
			if n.PeerIP == a {
				return n
			}
		}
		n := &config.BGPNeighbor{PeerIP: a}
		proc.Neighbors = append(proc.Neighbors, n)
		return n
	}
	for li := start; li < end; li++ {
		t := strings.TrimSpace(lines[li])
		if t == "" || strings.HasPrefix(t, "!") {
			continue
		}
		w := strings.Fields(t)
		switch {
		case w[0] == "bgp" && len(w) >= 3 && w[1] == "router-id":
			if a, err := ip4.ParseAddr(w[2]); err == nil {
				proc.RouterID = a
			}
		case w[0] == "maximum-paths" && len(w) >= 2:
			if w[1] == "ibgp" {
				proc.MultipathIBGP = true
			} else {
				proc.MultipathEBGP = true
			}
		case w[0] == "network" && len(w) >= 4 && w[2] == "mask":
			a, err1 := ip4.ParseAddr(w[1])
			m, err2 := parseMask(w[3])
			if err1 == nil && err2 == nil {
				proc.Networks = append(proc.Networks, ip4.Prefix{Addr: a, Len: m})
			} else {
				p.warn(li, "router bgp: bad network statement")
			}
		case w[0] == "redistribute":
			if rd, ok := p.parseRedistribute(w[1:], li); ok {
				proc.Redistribute = append(proc.Redistribute, rd)
			}
		case w[0] == "neighbor" && len(w) >= 3:
			n := nbr(w[1])
			if n == nil {
				p.warn(li, "router bgp: bad neighbor address %q", w[1])
				continue
			}
			switch {
			case w[2] == "remote-as" && len(w) >= 4:
				if v, err := strconv.ParseUint(w[3], 10, 32); err == nil {
					n.RemoteAS = uint32(v)
				}
			case w[2] == "description":
				n.Description = strings.Join(w[3:], " ")
			case w[2] == "route-map" && len(w) >= 5:
				p.d.AddRef(config.RefRouteMap, w[3], "neighbor "+w[1]+" route-map "+w[4])
				if w[4] == "in" {
					n.ImportPolicy = w[3]
				} else {
					n.ExportPolicy = w[3]
				}
			case w[2] == "next-hop-self":
				n.NextHopSelf = true
			case w[2] == "update-source" && len(w) >= 4:
				n.UpdateSource = w[3]
				p.d.AddRef(config.RefInterface, w[3], "neighbor update-source")
			case w[2] == "ebgp-multihop":
				n.EBGPMultihop = true
			case w[2] == "send-community":
				n.SendCommunity = true
			default:
				p.warn(li, "router bgp: unrecognized neighbor setting: %s", t)
			}
		default:
			p.warn(li, "router bgp: unrecognized: %s", t)
		}
	}
}

func (p *parser) parseACL(name string, lines []string, start, end int) {
	a := &acl.ACL{Name: name}
	p.d.ACLs[name] = a
	for li := start; li < end; li++ {
		t := strings.TrimSpace(lines[li])
		if t == "" || strings.HasPrefix(t, "!") {
			continue
		}
		line, err := p.parseACLLine(t)
		if err != nil {
			p.warn(li, "acl %s: %v", name, err)
			continue
		}
		a.Lines = append(a.Lines, line)
	}
}

// parseACLLine parses "permit tcp <src> [ports] <dst> [ports] [flags]".
func (p *parser) parseACLLine(t string) (acl.Line, error) {
	w := strings.Fields(t)
	l := acl.NewLine(acl.Permit, t)
	switch w[0] {
	case "permit":
		l.Action = acl.Permit
	case "deny":
		l.Action = acl.Deny
	default:
		return l, fmt.Errorf("expected permit/deny, got %q", w[0])
	}
	w = w[1:]
	if len(w) == 0 {
		return l, fmt.Errorf("missing protocol")
	}
	switch w[0] {
	case "ip":
		l.Protocol = -1
	case "tcp":
		l.Protocol = hdr.ProtoTCP
	case "udp":
		l.Protocol = hdr.ProtoUDP
	case "icmp":
		l.Protocol = hdr.ProtoICMP
	default:
		if v, err := strconv.Atoi(w[0]); err == nil && v >= 0 && v < 256 {
			l.Protocol = v
		} else {
			return l, fmt.Errorf("unknown protocol %q", w[0])
		}
	}
	w = w[1:]
	// Source address [+ports].
	src, rest, err := parseACLAddr(w)
	if err != nil {
		return l, fmt.Errorf("source: %v", err)
	}
	if src != nil {
		l.SrcIPs = []ip4.Prefix{*src}
	}
	w = rest
	ports, rest2 := parseACLPorts(w)
	l.SrcPorts = ports
	w = rest2
	// Destination address [+ports].
	dst, rest3, err := parseACLAddr(w)
	if err != nil {
		return l, fmt.Errorf("destination: %v", err)
	}
	if dst != nil {
		l.DstIPs = []ip4.Prefix{*dst}
	}
	w = rest3
	ports, w = parseACLPorts(w)
	l.DstPorts = ports
	// Trailing qualifiers.
	for len(w) > 0 {
		switch w[0] {
		case "established":
			// ACK or RST set: modeled as ACK-or-RST via mask/value pairs;
			// we use the ACK|RST mask with a nonzero requirement split as
			// "ACK set" (the dominant case) — matched in both engines.
			l.TCPFlags = &acl.TCPFlagsMatch{Mask: hdr.FlagACK, Value: hdr.FlagACK}
			w = w[1:]
		case "echo":
			l.ICMPType = 8
			w = w[1:]
		case "echo-reply":
			l.ICMPType = 0
			w = w[1:]
		case "log":
			w = w[1:]
		default:
			return l, fmt.Errorf("unrecognized qualifier %q", w[0])
		}
	}
	return l, nil
}

// parseACLAddr parses "any" | "host A" | "A wildcard".
func parseACLAddr(w []string) (*ip4.Prefix, []string, error) {
	if len(w) == 0 {
		return nil, w, fmt.Errorf("missing address")
	}
	switch w[0] {
	case "any":
		return nil, w[1:], nil
	case "host":
		if len(w) < 2 {
			return nil, w, fmt.Errorf("host: missing address")
		}
		a, err := ip4.ParseAddr(w[1])
		if err != nil {
			return nil, w, err
		}
		pre := ip4.HostPrefix(a)
		return &pre, w[2:], nil
	default:
		if len(w) < 2 {
			return nil, w, fmt.Errorf("missing wildcard")
		}
		a, err := ip4.ParseAddr(w[0])
		if err != nil {
			return nil, w, err
		}
		wl, err := parseWildcard(w[1])
		if err != nil {
			return nil, w, err
		}
		pre := ip4.Prefix{Addr: a, Len: wl}
		return &pre, w[2:], nil
	}
}

// parseACLPorts parses "eq N" | "range A B" | "gt N" | "lt N" (optional).
func parseACLPorts(w []string) ([]acl.PortRange, []string) {
	if len(w) == 0 {
		return nil, w
	}
	atoi := func(s string) (uint16, bool) {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 || v > 65535 {
			return 0, false
		}
		return uint16(v), true
	}
	switch w[0] {
	case "eq":
		if len(w) >= 2 {
			if v, ok := atoi(w[1]); ok {
				return []acl.PortRange{{Lo: v, Hi: v}}, w[2:]
			}
		}
	case "range":
		if len(w) >= 3 {
			lo, ok1 := atoi(w[1])
			hi, ok2 := atoi(w[2])
			if ok1 && ok2 {
				return []acl.PortRange{{Lo: lo, Hi: hi}}, w[3:]
			}
		}
	case "gt":
		if len(w) >= 2 {
			if v, ok := atoi(w[1]); ok && v < 65535 {
				return []acl.PortRange{{Lo: v + 1, Hi: 65535}}, w[2:]
			}
		}
	case "lt":
		if len(w) >= 2 {
			if v, ok := atoi(w[1]); ok && v > 0 {
				return []acl.PortRange{{Lo: 0, Hi: v - 1}}, w[2:]
			}
		}
	}
	return nil, w
}

func (p *parser) parsePrefixList(w []string, li int) {
	// <name> seq <n> permit|deny <prefix> [ge N] [le N]
	if len(w) < 2 {
		p.warn(li, "prefix-list: too few arguments")
		return
	}
	name := w[0]
	w = w[1:]
	pl := p.d.PrefixLists[name]
	if pl == nil {
		pl = &config.PrefixList{Name: name}
		p.d.PrefixLists[name] = pl
	}
	e := config.PrefixListEntry{}
	if w[0] == "seq" && len(w) >= 2 {
		if v, err := strconv.Atoi(w[1]); err == nil {
			e.Seq = v
		}
		w = w[2:]
	}
	if len(w) < 2 {
		p.warn(li, "prefix-list %s: missing action/prefix", name)
		return
	}
	switch w[0] {
	case "permit":
		e.Action = config.Permit
	case "deny":
		e.Action = config.Deny
	default:
		p.warn(li, "prefix-list %s: bad action %q", name, w[0])
		return
	}
	pre, err := ip4.ParsePrefix(w[1])
	if err != nil {
		p.warn(li, "prefix-list %s: bad prefix %q", name, w[1])
		return
	}
	e.Prefix = pre
	w = w[2:]
	for len(w) >= 2 {
		v, err := strconv.Atoi(w[1])
		if err != nil {
			break
		}
		switch w[0] {
		case "ge":
			e.Ge = uint8(v)
		case "le":
			e.Le = uint8(v)
		}
		w = w[2:]
	}
	pl.Entries = append(pl.Entries, e)
}

func (p *parser) parseCommunityList(w []string, li int) {
	// [expanded|standard] <name> permit|deny <regex>
	if len(w) >= 1 && (w[0] == "expanded" || w[0] == "standard") {
		w = w[1:]
	}
	if len(w) < 3 {
		p.warn(li, "community-list: too few arguments")
		return
	}
	name := w[0]
	cl := p.d.CommunityLists[name]
	if cl == nil {
		cl = &config.CommunityList{Name: name}
		p.d.CommunityLists[name] = cl
	}
	action := config.Permit
	if w[1] == "deny" {
		action = config.Deny
	}
	cl.Entries = append(cl.Entries, config.RegexEntry{Action: action, Regex: strings.Join(w[2:], " ")})
}

func (p *parser) parseASPathList(w []string, li int) {
	// <name> permit|deny <regex>
	if len(w) < 3 {
		p.warn(li, "as-path access-list: too few arguments")
		return
	}
	name := w[0]
	al := p.d.ASPathLists[name]
	if al == nil {
		al = &config.ASPathList{Name: name}
		p.d.ASPathLists[name] = al
	}
	action := config.Permit
	if w[1] == "deny" {
		action = config.Deny
	}
	al.Entries = append(al.Entries, config.RegexEntry{Action: action, Regex: strings.Join(w[2:], " ")})
}

func (p *parser) parseRouteMap(head []string, lines []string, start, end int) {
	// route-map NAME permit|deny SEQ
	name := head[1]
	rm := p.d.RouteMaps[name]
	if rm == nil {
		rm = &config.RouteMap{Name: name}
		p.d.RouteMaps[name] = rm
	}
	clause := config.RouteMapClause{Action: config.Permit, Seq: 10 * (len(rm.Clauses) + 1)}
	if len(head) >= 3 && head[2] == "deny" {
		clause.Action = config.Deny
	}
	if len(head) >= 4 {
		if v, err := strconv.Atoi(head[3]); err == nil {
			clause.Seq = v
		}
	}
	for li := start; li < end; li++ {
		t := strings.TrimSpace(lines[li])
		if t == "" || strings.HasPrefix(t, "!") {
			continue
		}
		w := strings.Fields(t)
		switch {
		case w[0] == "match":
			p.parseRMMatch(&clause, w[1:], li)
		case w[0] == "set":
			p.parseRMSet(&clause, w[1:], li)
		default:
			p.warn(li, "route-map %s: unrecognized: %s", name, t)
		}
	}
	rm.Clauses = append(rm.Clauses, clause)
}

func (p *parser) parseRMMatch(c *config.RouteMapClause, w []string, li int) {
	switch {
	case len(w) >= 4 && w[0] == "ip" && w[1] == "address" && w[2] == "prefix-list":
		c.Matches = append(c.Matches, config.Match{Kind: config.MatchPrefixList, Name: w[3]})
		p.d.AddRef(config.RefPrefixList, w[3], "route-map match")
	case len(w) >= 2 && w[0] == "community":
		c.Matches = append(c.Matches, config.Match{Kind: config.MatchCommunityList, Name: w[1]})
		p.d.AddRef(config.RefCommunityList, w[1], "route-map match")
	case len(w) >= 2 && w[0] == "as-path":
		c.Matches = append(c.Matches, config.Match{Kind: config.MatchASPathList, Name: w[1]})
		p.d.AddRef(config.RefASPathList, w[1], "route-map match")
	case len(w) >= 2 && w[0] == "metric":
		if v, err := strconv.Atoi(w[1]); err == nil {
			c.Matches = append(c.Matches, config.Match{Kind: config.MatchMetric, Value: uint32(v)})
		}
	case len(w) >= 2 && w[0] == "tag":
		if v, err := strconv.Atoi(w[1]); err == nil {
			c.Matches = append(c.Matches, config.Match{Kind: config.MatchTag, Value: uint32(v)})
		}
	case len(w) >= 2 && w[0] == "source-protocol":
		c.Matches = append(c.Matches, config.Match{Kind: config.MatchSourceProtocol, Proto: w[1]})
	default:
		p.warn(li, "route-map: unrecognized match: %v", w)
	}
}

func (p *parser) parseRMSet(c *config.RouteMapClause, w []string, li int) {
	switch {
	case len(w) >= 2 && w[0] == "local-preference":
		if v, err := strconv.Atoi(w[1]); err == nil {
			c.Sets = append(c.Sets, config.Set{Kind: config.SetLocalPref, Value: uint32(v)})
		}
	case len(w) >= 2 && w[0] == "metric":
		if strings.HasPrefix(w[1], "+") {
			if v, err := strconv.Atoi(w[1][1:]); err == nil {
				c.Sets = append(c.Sets, config.Set{Kind: config.SetMetricAdd, Value: uint32(v)})
			}
		} else if v, err := strconv.Atoi(w[1]); err == nil {
			c.Sets = append(c.Sets, config.Set{Kind: config.SetMetric, Value: uint32(v)})
		}
	case len(w) >= 2 && w[0] == "community":
		vals, additive := parseCommunities(w[1:])
		kind := config.SetCommunity
		if additive {
			kind = config.SetCommunityAdditive
		}
		c.Sets = append(c.Sets, config.Set{Kind: kind, Communities: vals})
	case len(w) >= 3 && w[0] == "as-path" && w[1] == "prepend":
		asns := w[2:]
		if v, err := strconv.ParseUint(asns[0], 10, 32); err == nil {
			c.Sets = append(c.Sets, config.Set{Kind: config.SetASPathPrepend, PrependASN: uint32(v), PrependN: len(asns)})
		}
	case len(w) >= 3 && w[0] == "ip" && w[1] == "next-hop":
		if a, err := ip4.ParseAddr(w[2]); err == nil {
			c.Sets = append(c.Sets, config.Set{Kind: config.SetNextHop, NextHop: a})
		}
	case len(w) >= 2 && w[0] == "weight":
		if v, err := strconv.Atoi(w[1]); err == nil {
			c.Sets = append(c.Sets, config.Set{Kind: config.SetWeight, Value: uint32(v)})
		}
	case len(w) >= 2 && w[0] == "tag":
		if v, err := strconv.Atoi(w[1]); err == nil {
			c.Sets = append(c.Sets, config.Set{Kind: config.SetTag, Value: uint32(v)})
		}
	case len(w) >= 2 && w[0] == "origin":
		if w[1] == "igp" {
			c.Sets = append(c.Sets, config.Set{Kind: config.SetOriginIGP})
		} else {
			c.Sets = append(c.Sets, config.Set{Kind: config.SetOriginIncomplete})
		}
	default:
		p.warn(li, "route-map: unrecognized set: %v", w)
	}
}

func parseCommunities(w []string) (vals []uint32, additive bool) {
	for _, tok := range w {
		if tok == "additive" {
			additive = true
			continue
		}
		parts := strings.SplitN(tok, ":", 2)
		if len(parts) != 2 {
			continue
		}
		hi, err1 := strconv.ParseUint(parts[0], 10, 16)
		lo, err2 := strconv.ParseUint(parts[1], 10, 16)
		if err1 == nil && err2 == nil {
			vals = append(vals, uint32(hi)<<16|uint32(lo))
		}
	}
	return vals, additive
}

func (p *parser) parseZonePair(w []string, li int) {
	// zone-pair security source <z1> destination <z2> [acl <name>]
	var from, to, aclName string
	for i := 0; i+1 < len(w); i++ {
		switch w[i] {
		case "source":
			from = w[i+1]
		case "destination":
			to = w[i+1]
		case "acl":
			aclName = w[i+1]
		}
	}
	if from == "" || to == "" {
		p.warn(li, "zone-pair: missing source/destination")
		return
	}
	p.d.AddRef(config.RefZone, from, "zone-pair source")
	p.d.AddRef(config.RefZone, to, "zone-pair destination")
	if aclName != "" {
		p.d.AddRef(config.RefACL, aclName, "zone-pair")
	}
	p.d.ZonePolicies = append(p.d.ZonePolicies, config.ZonePolicy{FromZone: from, ToZone: to, ACL: aclName})
}

func (p *parser) parseNAT(w []string, li int) {
	// ip nat source|destination list <acl> pool <lo> <hi> [interface <if>] [ports <lo> <hi>]
	if len(w) < 1 {
		p.warn(li, "ip nat: missing direction")
		return
	}
	var nr config.NATRule
	switch w[0] {
	case "source", "inside":
		nr.Kind = config.SourceNAT
	case "destination", "outside":
		nr.Kind = config.DestNAT
	default:
		p.warn(li, "ip nat: unknown direction %q", w[0])
		return
	}
	w = w[1:]
	for len(w) > 0 {
		switch {
		case w[0] == "list" && len(w) >= 2:
			nr.MatchACL = w[1]
			p.d.AddRef(config.RefACL, w[1], "ip nat list")
			w = w[2:]
		case w[0] == "pool" && len(w) >= 3:
			lo, err1 := ip4.ParseAddr(w[1])
			hi, err2 := ip4.ParseAddr(w[2])
			if err1 != nil || err2 != nil {
				p.warn(li, "ip nat: bad pool")
				return
			}
			nr.PoolLo, nr.PoolHi = lo, hi
			w = w[3:]
		case w[0] == "interface" && len(w) >= 2:
			nr.Iface = w[1]
			p.d.AddRef(config.RefInterface, w[1], "ip nat interface")
			w = w[2:]
		case w[0] == "ports" && len(w) >= 3:
			lo, err1 := strconv.Atoi(w[1])
			hi, err2 := strconv.Atoi(w[2])
			if err1 == nil && err2 == nil {
				nr.PortLo, nr.PortHi = uint16(lo), uint16(hi)
			}
			w = w[3:]
		default:
			p.warn(li, "ip nat: unrecognized token %q", w[0])
			w = w[1:]
		}
	}
	if nr.PoolLo == 0 {
		p.warn(li, "ip nat: missing pool")
		return
	}
	p.d.NATRules = append(p.d.NATRules, nr)
}
