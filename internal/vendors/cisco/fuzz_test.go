package cisco

import (
	"strings"
	"testing"
)

// FuzzParse asserts the IOS parser's containment contract: any input —
// however mangled — must produce a device model and warnings, never a
// panic or a nil device. Seeds cover the grammar (interfaces, OSPF, BGP,
// ACLs, statics, NAT, zones) plus generated fabric configs, so mutations
// explore realistic structure.
func FuzzParse(f *testing.F) {
	f.Add("")
	f.Add("hostname r1\n")
	f.Add("!\nhostname edge\ninterface GigabitEthernet0/0\n ip address 10.0.0.1 255.255.255.0\n no shutdown\n!\nend\n")
	f.Add("interface eth0\n ip address 10.0.0.1/33\n")
	f.Add("router ospf 1\n network 10.0.0.0 0.0.0.255 area 0\n passive-interface eth0\n")
	f.Add("router bgp 65001\n neighbor 10.0.0.2 remote-as 65002\n network 10.1.0.0 mask 255.255.0.0\n")
	f.Add("ip access-list extended BLOCK\n deny tcp any host 10.0.0.5 eq 22\n permit ip any any\n")
	f.Add("ip route 0.0.0.0 0.0.0.0 10.0.0.254\nip route 10.9.0.0 255.255.0.0 Null0\n")
	f.Add("ip nat inside source list NATLIST interface eth1 overload\n")
	f.Add("zone security inside\nzone-pair security in2out source inside destination outside\n")
	f.Add("interface eth0\n ip address dhcp\n shutdown\nrouter ospf\nrouter bgp\nneighbor\n")
	// A realistic fabric-style leaf config exercises the combined grammar
	// (mirrors the netgen emitter, which cannot be imported here: netgen
	// itself depends on this package).
	f.Add(`hostname fz-tor01
!
interface Loopback0
 ip address 172.16.0.1 255.255.255.255
!
interface Ethernet1
 description to fz-agg01
 ip address 10.64.0.1 255.255.255.254
!
interface Vlan100
 description host network
 ip address 10.0.0.1 255.255.255.0
!
router bgp 65101
 neighbor 10.64.0.0 remote-as 65001
 neighbor 10.64.0.0 send-community
 network 10.0.0.0 mask 255.255.255.0
 maximum-paths 4
!
ntp server 192.0.2.10
end
`)
	f.Fuzz(func(t *testing.T, text string) {
		if len(text) > 1<<16 {
			t.Skip("oversized input")
		}
		d, _ := Parse(text)
		if d == nil {
			t.Fatal("Parse returned nil device")
		}
		// Truncation containment: parsing any prefix must also not panic
		// (models a half-written config file).
		if i := strings.IndexByte(text, '\n'); i >= 0 {
			if d2, _ := Parse(text[:i]); d2 == nil {
				t.Fatal("Parse returned nil device for truncated input")
			}
		}
	})
}
