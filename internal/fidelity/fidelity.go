// Package fidelity implements the paper's two analysis-fidelity testing
// frameworks (§4.3):
//
//   - Differential engine testing (§4.3.2): the BDD reachability engine and
//     the concrete traceroute engine are validated against each other in
//     both directions — symbolic results produce representative packets
//     that must traceroute to the same disposition, and concrete FIB-driven
//     packets must be members of the corresponding symbolic sets.
//   - Validation against ground truth (§4.3.1): "lab" snapshots carry
//     hand-verified expected state (routes, session status, traceroute
//     dispositions) standing in for state collected from emulators; the
//     runner checks the model against it and is meant to run continuously
//     as the code evolves.
package fidelity

import (
	"fmt"
	"math/rand"

	"repro/internal/bdd"
	"repro/internal/dataplane"
	"repro/internal/fwdgraph"
	"repro/internal/hdr"
	"repro/internal/ip4"
	"repro/internal/reach"
	"repro/internal/traceroute"
)

// Mismatch is one cross-validation discrepancy: a modeling bug in at least
// one of the two engines.
type Mismatch struct {
	Direction string // "symbolic->concrete" or "concrete->symbolic"
	Where     string
	Packet    hdr.Packet
	Expected  string
	Got       string
}

func (m Mismatch) String() string {
	return fmt.Sprintf("[%s] %s: packet %v: expected %s, got %s",
		m.Direction, m.Where, m.Packet, m.Expected, m.Got)
}

// CrossValidate runs both differential directions over a computed data
// plane. packetsPerSource bounds the representative packets per
// (source, disposition) pair; fibSamples bounds direction-2 probes.
func CrossValidate(dp *dataplane.Result, packetsPerSource, fibSamples int, seed int64) []Mismatch {
	g := fwdgraph.New(dp)
	an := reach.New(g)
	var out []Mismatch
	out = append(out, symbolicToConcrete(dp, an, packetsPerSource)...)
	out = append(out, concreteToSymbolic(dp, an, fibSamples, seed)...)
	return out
}

// symbolicToConcrete: for every source and *final location* (sink node,
// i.e. disposition at a specific device), pick representative packets and
// require the traceroute engine to agree ("we execute reachability queries
// for each final location in the network ... pick a representative packet
// from the headerspace and run the traceroute engine", §4.3.2).
func symbolicToConcrete(dp *dataplane.Result, an *reach.Analysis, perSource int) []Mismatch {
	var out []Mismatch
	enc := an.Enc
	tr := traceroute.New(dp)
	prefSets := [][]bdd.Ref{
		{enc.FieldEq(hdr.Protocol, hdr.ProtoTCP), enc.FieldGE(hdr.SrcPort, 1024)},
		{enc.FieldEq(hdr.Protocol, hdr.ProtoUDP)},
		{enc.FieldEq(hdr.Protocol, hdr.ProtoICMP)},
	}
	if perSource < len(prefSets) {
		prefSets = prefSets[:perSource]
	}
	for _, src := range an.Sources() {
		start, ok := an.SingleSource(src.Device, src.Iface, bdd.True)
		if !ok {
			continue
		}
		sets := an.Forward(start)
		d := dp.Network.Devices[src.Device]
		vrf := d.Interfaces[src.Iface].VRFOrDefault()
		for id, set := range sets {
			n := an.G.Nodes[id]
			if set == bdd.False || n.Kind != fwdgraph.KindSink {
				continue
			}
			sinkKind, sinkDev := n.Extra, n.Node_
			cleared := enc.ClearExt(set)
			for _, prefs := range prefSets {
				p, ok := enc.PickPacket(cleared, prefs...)
				if !ok {
					continue
				}
				traces := tr.Run(src.Device, vrf, src.Iface, p)
				agreed := false
				var got []string
				for _, t := range traces {
					got = append(got, fmt.Sprintf("%s@%s", t.Disposition, t.FinalNode))
					if string(t.Disposition) == sinkKind && t.FinalNode == sinkDev {
						agreed = true
					}
				}
				if !agreed {
					out = append(out, Mismatch{
						Direction: "symbolic->concrete",
						Where:     fmt.Sprintf("%s/%s", src.Device, src.Iface),
						Packet:    p,
						Expected:  fmt.Sprintf("%s@%s", sinkKind, sinkDev),
						Got:       fmt.Sprintf("%v", got),
					})
				}
			}
		}
	}
	return out
}

// concreteToSymbolic: "we walk over each node's FIB, and for each entry we
// randomly choose a packet with a destination that matches the entry's
// prefix, ... run the traceroute engine ... then run the reachability
// analysis from the terminal location and check" (§4.3.2). We verify that
// the concrete disposition's packet is a member of the symbolic sink set
// from the same start location.
func concreteToSymbolic(dp *dataplane.Result, an *reach.Analysis, samples int, seed int64) []Mismatch {
	var out []Mismatch
	enc := an.Enc
	tr := traceroute.New(dp)
	rnd := rand.New(rand.NewSource(seed))
	taken := 0
	for _, name := range dp.Network.DeviceNames() {
		d := dp.Network.Devices[name]
		vs := dp.Nodes[name].DefaultVRF()
		if vs == nil || vs.FIB == nil {
			continue
		}
		// Choose a start interface on the device (first active one).
		startIface := ""
		for _, in := range d.InterfaceNames() {
			if d.Interfaces[in].Active && len(d.Interfaces[in].Addresses) > 0 {
				startIface = in
				break
			}
		}
		if startIface == "" {
			continue
		}
		res, ok := an.Reachability(reach.SourceLoc{Device: name, Iface: startIface}, bdd.True)
		if !ok {
			continue
		}
		for _, entry := range vs.FIB.Entries() {
			if taken >= samples {
				return out
			}
			taken++
			var dst uint32
			if entry.Prefix.Len == 0 {
				dst = rnd.Uint32()
			} else {
				span := uint32(entry.Prefix.Last() - entry.Prefix.First())
				dst = uint32(entry.Prefix.First())
				if span > 0 {
					dst += rnd.Uint32() % (span + 1)
				}
			}
			p := hdr.Packet{
				DstIP:    ip4.Addr(dst),
				SrcIP:    ip4.Addr(rnd.Uint32()),
				Protocol: hdr.ProtoTCP,
				SrcPort:  uint16(1024 + rnd.Intn(60000)),
				DstPort:  []uint16{22, 80, 443}[rnd.Intn(3)],
			}
			vrf := d.Interfaces[startIface].VRFOrDefault()
			for _, t := range tr.Run(name, vrf, startIface, p) {
				if t.Disposition == traceroute.Loop {
					continue // the symbolic engine has no loop sink
				}
				set := res.Sinks[string(t.Disposition)]
				if enc.F.And(set, enc.PacketBDD(p)) == bdd.False {
					out = append(out, Mismatch{
						Direction: "concrete->symbolic",
						Where:     fmt.Sprintf("%s/%s", name, startIface),
						Packet:    p,
						Expected:  "membership in " + string(t.Disposition) + " set",
						Got:       "not a member",
					})
				}
			}
		}
	}
	return out
}
