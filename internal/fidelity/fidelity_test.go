package fidelity

import (
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/dataplane"
	"repro/internal/fib"
	"repro/internal/fwdgraph"
	"repro/internal/ip4"
	"repro/internal/reach"
	"repro/internal/testnet"
)

// TestCrossValidateCleanNetworks runs both differential directions on the
// canonical scenario networks; any mismatch is a modeling bug in one of
// the two engines.
func TestCrossValidateCleanNetworks(t *testing.T) {
	for name, net := range map[string]*config.Network{
		"line":     testnet.Line3(),
		"diamond":  testnet.Diamond(),
		"broken":   testnet.ECMPWithBrokenBranch(),
		"figure2":  testnet.Figure2(),
		"ebgp":     testnet.EBGPChain(),
		"firewall": testnet.Firewall(),
	} {
		t.Run(name, func(t *testing.T) {
			dp := dataplane.Run(net, dataplane.Options{})
			if !dp.Converged {
				t.Fatalf("no convergence: %v", dp.Warnings)
			}
			for _, m := range CrossValidate(dp, 3, 200, 42) {
				t.Errorf("%v", m)
			}
		})
	}
}

// TestCrossValidateDetectsInjectedBug plants a deliberate model divergence
// (a FIB change behind the symbolic engine's back) and checks the
// framework flags it — the framework must be able to fail.
func TestCrossValidateDetectsInjectedBug(t *testing.T) {
	net := testnet.Line3()
	dp := dataplane.Run(net, dataplane.Options{})
	// Build the symbolic view of the CLEAN data plane first.
	an := reach.New(fwdgraph.New(dp))
	// Then hijack r2's route to r3's LAN back toward r1 — only the
	// concrete engine sees this.
	vs := dp.Nodes["r2"].DefaultVRF()
	entry := vs.FIB.Lookup(ip4.MustParseAddr("192.168.3.5"))
	if entry == nil {
		t.Fatal("expected entry")
	}
	hijacked := *entry
	hijacked.NextHops = []fib.NextHop{{Iface: "eth0", IP: ip4.MustParseAddr("10.0.12.1"), Node: "r1"}}
	vs.FIB.Add(hijacked)
	if ms := symbolicToConcrete(dp, an, 2); len(ms) == 0 {
		t.Fatal("injected divergence not detected")
	}
}

// TestLabsValidate runs the checked-in ground-truth labs (§4.3.1).
func TestLabsValidate(t *testing.T) {
	labs, err := LoadAllLabs("labs")
	if err != nil {
		t.Fatal(err)
	}
	if len(labs) < 2 {
		t.Fatalf("expected >= 2 labs, got %d", len(labs))
	}
	for _, lab := range labs {
		lab := lab
		t.Run(lab.Name, func(t *testing.T) {
			if len(lab.Expects) == 0 {
				t.Fatal("lab has no expectations")
			}
			for _, fail := range lab.Validate() {
				t.Error(fail)
			}
		})
	}
}

func TestLabParserRejectsGarbage(t *testing.T) {
	if _, err := parseExpect("frob r1"); err == nil {
		t.Error("unknown expectation should error")
	}
	if _, err := parseExpect("route r1 nonsense ospf 1"); err == nil {
		t.Error("bad prefix should error")
	}
	if _, err := parseExpect("trace r1 e0 1.2.3.4 4.3.2.1 bogus 80 accepted"); err == nil {
		t.Error("bad protocol should error")
	}
}

func TestExpectParsing(t *testing.T) {
	e, err := parseExpect("trace r1 lan0 192.168.1.10 8.8.8.8 tcp 80 no-route r1")
	if err != nil {
		t.Fatal(err)
	}
	if e.Node != "r1" || e.Iface != "lan0" || e.Disposition != "no-route" || e.FinalNode != "r1" {
		t.Errorf("parsed = %+v", e)
	}
	if e.Packet.DstPort != 80 || !strings.HasPrefix(e.Packet.DstIP.String(), "8.8.") {
		t.Errorf("packet = %+v", e.Packet)
	}
}
