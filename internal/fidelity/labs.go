package fidelity

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/hdr"
	"repro/internal/ip4"
	"repro/internal/routing"
)

// Lab is one ground-truth validation scenario (§4.3.1): a small network
// exercising features of interest plus hand-verified expected runtime
// state. In the paper's workflow the expectations come from real device
// software in emulators (GNS3); here they are golden files checked into
// the repository and re-validated on every run, "reducing the risk of
// regressions as Batfish code evolves".
type Lab struct {
	Name     string
	Snapshot *core.Snapshot
	Expects  []Expect
}

// Expect is one expected fact about runtime state.
type Expect struct {
	Line int
	Kind string // route | noroute | trace | session
	Raw  string

	// route/noroute
	Node   string
	Prefix ip4.Prefix
	Proto  string
	Metric uint32

	// trace
	Iface       string
	Packet      hdr.Packet
	Disposition string
	FinalNode   string

	// session
	PeerIP ip4.Addr
	Up     bool
}

// LoadLab reads a lab directory: configs/*.cfg plus expected.txt.
func LoadLab(dir string) (*Lab, error) {
	snap, err := core.LoadDir(filepath.Join(dir, "configs"))
	if err != nil {
		return nil, err
	}
	lab := &Lab{Name: filepath.Base(dir), Snapshot: snap}
	f, err := os.Open(filepath.Join(dir, "expected.txt"))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		e, err := parseExpect(line)
		if err != nil {
			return nil, fmt.Errorf("%s/expected.txt:%d: %v", dir, lineNo, err)
		}
		e.Line = lineNo
		e.Raw = line
		lab.Expects = append(lab.Expects, e)
	}
	return lab, sc.Err()
}

// parseExpect parses one expectation line:
//
//	route <node> <prefix> <protocol> <metric>
//	noroute <node> <prefix>
//	trace <node> <iface> <srcIP> <dstIP> <proto> <dport> <disposition> [finalNode]
//	session <node> <peerIP> up|down
func parseExpect(line string) (Expect, error) {
	w := strings.Fields(line)
	e := Expect{Kind: w[0]}
	switch w[0] {
	case "route":
		if len(w) != 5 {
			return e, fmt.Errorf("route needs 4 args")
		}
		e.Node = w[1]
		p, err := ip4.ParsePrefix(w[2])
		if err != nil {
			return e, err
		}
		e.Prefix = p
		e.Proto = w[3]
		m, err := strconv.Atoi(w[4])
		if err != nil {
			return e, err
		}
		e.Metric = uint32(m)
	case "noroute":
		if len(w) != 3 {
			return e, fmt.Errorf("noroute needs 2 args")
		}
		e.Node = w[1]
		p, err := ip4.ParsePrefix(w[2])
		if err != nil {
			return e, err
		}
		e.Prefix = p
	case "trace":
		if len(w) != 8 && len(w) != 9 {
			return e, fmt.Errorf("trace needs 7-8 args")
		}
		e.Node, e.Iface = w[1], w[2]
		src, err1 := ip4.ParseAddr(w[3])
		dst, err2 := ip4.ParseAddr(w[4])
		if err1 != nil || err2 != nil {
			return e, fmt.Errorf("bad trace addresses")
		}
		proto := map[string]uint8{"tcp": hdr.ProtoTCP, "udp": hdr.ProtoUDP, "icmp": hdr.ProtoICMP}[w[5]]
		if proto == 0 {
			return e, fmt.Errorf("bad protocol %q", w[5])
		}
		dport, err := strconv.Atoi(w[6])
		if err != nil {
			return e, err
		}
		e.Packet = hdr.Packet{SrcIP: src, DstIP: dst, Protocol: proto,
			DstPort: uint16(dport), SrcPort: 40000}
		e.Disposition = w[7]
		if len(w) == 9 {
			e.FinalNode = w[8]
		}
	case "session":
		if len(w) != 4 {
			return e, fmt.Errorf("session needs 3 args")
		}
		e.Node = w[1]
		p, err := ip4.ParseAddr(w[2])
		if err != nil {
			return e, err
		}
		e.PeerIP = p
		e.Up = w[3] == "up"
	default:
		return e, fmt.Errorf("unknown expectation %q", w[0])
	}
	return e, nil
}

// Validate checks every expectation; failures describe the divergence
// between the model and the recorded ground truth.
func (l *Lab) Validate() []string {
	var fails []string
	failf := func(e Expect, format string, args ...any) {
		fails = append(fails, fmt.Sprintf("%s:%d (%s): %s", l.Name, e.Line, e.Raw, fmt.Sprintf(format, args...)))
	}
	dp := l.Snapshot.DataPlane()
	if !dp.Converged {
		fails = append(fails, fmt.Sprintf("%s: data plane did not converge: %v", l.Name, dp.Warnings))
		return fails
	}
	for _, e := range l.Expects {
		switch e.Kind {
		case "route", "noroute":
			ns := dp.Nodes[e.Node]
			if ns == nil {
				failf(e, "no such node")
				continue
			}
			best := ns.DefaultVRF().Main.Best(e.Prefix)
			if e.Kind == "noroute" {
				if len(best) > 0 {
					failf(e, "route present: %v", best[0])
				}
				continue
			}
			if len(best) == 0 {
				failf(e, "route missing")
				continue
			}
			rt := best[0]
			if rt.Protocol.String() != e.Proto {
				failf(e, "protocol %s, want %s", rt.Protocol, e.Proto)
			}
			if rt.Metric != e.Metric {
				failf(e, "metric %d, want %d", rt.Metric, e.Metric)
			}
		case "trace":
			d := dp.Network.Devices[e.Node]
			if d == nil {
				failf(e, "no such node")
				continue
			}
			vrf := config.DefaultVRF
			if i, ok := d.Interfaces[e.Iface]; ok {
				vrf = i.VRFOrDefault()
			}
			traces := l.Snapshot.Traceroute().Run(e.Node, vrf, e.Iface, e.Packet)
			matched := false
			var got []string
			for _, t := range traces {
				got = append(got, fmt.Sprintf("%s@%s", t.Disposition, t.FinalNode))
				if string(t.Disposition) == e.Disposition &&
					(e.FinalNode == "" || t.FinalNode == e.FinalNode) {
					matched = true
				}
			}
			if !matched {
				failf(e, "got %v", got)
			}
		case "session":
			matched := false
			for _, sess := range dp.Sessions {
				if sess.LocalNode == e.Node && sess.PeerIP == e.PeerIP {
					matched = true
					if sess.Up != e.Up {
						failf(e, "state up=%v (%s), want up=%v", sess.Up, sess.DownReason, e.Up)
					}
				}
			}
			if !matched {
				failf(e, "no such session")
			}
		}
	}
	return fails
}

// LoadAllLabs loads every lab under root.
func LoadAllLabs(root string) ([]*Lab, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, err
	}
	var labs []*Lab
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		lab, err := LoadLab(filepath.Join(root, e.Name()))
		if err != nil {
			return nil, err
		}
		labs = append(labs, lab)
	}
	return labs, nil
}

// The protocol names in expected files are routing.Protocol.String()
// values ("connected", "static", "ospf", "ospfIA", "ospfE1", "ospfE2",
// "bgp", "ibgp").
var _ = routing.OSPF
