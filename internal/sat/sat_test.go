package sat

import (
	"math/rand"
	"testing"
)

func TestTrivial(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(MkLit(a, false))
	if !s.Solve() {
		t.Fatal("single positive unit should be SAT")
	}
	if !s.Model()[a] {
		t.Error("model should set a true")
	}
}

func TestContradiction(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(MkLit(a, false))
	s.AddClause(MkLit(a, true))
	if s.Solve() {
		t.Fatal("a AND NOT a should be UNSAT")
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New()
	s.NewVar()
	s.AddClause()
	if s.Solve() {
		t.Fatal("empty clause should be UNSAT")
	}
}

func TestTautologyDropped(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(MkLit(a, false), MkLit(a, true))
	if !s.Solve() {
		t.Fatal("tautology-only instance should be SAT")
	}
}

func TestImplicationChain(t *testing.T) {
	// x1 -> x2 -> ... -> x20, x1 forced true, check all true.
	s := New()
	vars := make([]int, 20)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	s.AddClause(MkLit(vars[0], false))
	for i := 0; i+1 < len(vars); i++ {
		s.AddClause(MkLit(vars[i], true), MkLit(vars[i+1], false))
	}
	if !s.Solve() {
		t.Fatal("chain should be SAT")
	}
	m := s.Model()
	for i, v := range vars {
		if !m[v] {
			t.Fatalf("x%d should be true", i+1)
		}
	}
}

// TestPigeonhole: n+1 pigeons in n holes is UNSAT and exercises clause
// learning heavily.
func TestPigeonhole(t *testing.T) {
	const holes = 5
	const pigeons = holes + 1
	s := New()
	x := make([][]int, pigeons)
	for p := range x {
		x[p] = make([]int, holes)
		for h := range x[p] {
			x[p][h] = s.NewVar()
		}
	}
	for p := 0; p < pigeons; p++ {
		cl := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			cl[h] = MkLit(x[p][h], false)
		}
		s.AddClause(cl...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(MkLit(x[p1][h], true), MkLit(x[p2][h], true))
			}
		}
	}
	if s.Solve() {
		t.Fatal("pigeonhole should be UNSAT")
	}
	if _, conflicts, _ := s.Stats(); conflicts == 0 {
		t.Error("pigeonhole should require conflicts")
	}
}

// bruteForce decides satisfiability of a small CNF by enumeration.
func bruteForce(nvars int, cls [][]Lit) bool {
	for m := 0; m < 1<<nvars; m++ {
		ok := true
		for _, cl := range cls {
			clOK := false
			for _, l := range cl {
				val := m&(1<<(l.Var()-1)) != 0
				if val != l.Neg() {
					clOK = true
					break
				}
			}
			if !clOK {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestRandom3SATAgainstBruteForce(t *testing.T) {
	rnd := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		nvars := 4 + rnd.Intn(6)
		ncls := 3 + rnd.Intn(25)
		var cls [][]Lit
		s := New()
		for i := 0; i < nvars; i++ {
			s.NewVar()
		}
		for i := 0; i < ncls; i++ {
			k := 1 + rnd.Intn(3)
			cl := make([]Lit, k)
			for j := range cl {
				cl[j] = MkLit(1+rnd.Intn(nvars), rnd.Intn(2) == 0)
			}
			cls = append(cls, cl)
			s.AddClause(cl...)
		}
		want := bruteForce(nvars, cls)
		got := s.Solve()
		if got != want {
			t.Fatalf("trial %d: solver=%v brute=%v cls=%v", trial, got, want, cls)
		}
		if got {
			// Verify the model satisfies every clause.
			m := s.Model()
			for _, cl := range cls {
				ok := false
				for _, l := range cl {
					if m[l.Var()] != l.Neg() {
						ok = true
					}
				}
				if !ok {
					t.Fatalf("trial %d: model does not satisfy %v", trial, cl)
				}
			}
		}
	}
}

func TestParity(t *testing.T) {
	// XOR chain: x1 xor x2 xor x3 = 1 encoded in CNF; satisfiable.
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	// odd number of trues
	s.AddClause(MkLit(a, false), MkLit(b, false), MkLit(c, false))
	s.AddClause(MkLit(a, false), MkLit(b, true), MkLit(c, true))
	s.AddClause(MkLit(a, true), MkLit(b, false), MkLit(c, true))
	s.AddClause(MkLit(a, true), MkLit(b, true), MkLit(c, false))
	if !s.Solve() {
		t.Fatal("parity should be SAT")
	}
	m := s.Model()
	trues := 0
	for _, v := range []int{a, b, c} {
		if m[v] {
			trues++
		}
	}
	if trues%2 != 1 {
		t.Errorf("parity violated: %d trues", trues)
	}
}
