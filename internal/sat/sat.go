// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver over CNF formulas: two-watched-literal propagation, first-UIP
// clause learning, activity-based branching, and geometric restarts.
//
// It is the stand-in for the Z3 solver that the original Batfish used for
// data plane verification via Network Optimized Datalog (paper §2 Stage 3);
// package nod builds the CNF encodings it solves.
package sat

import "sort"

// Lit is a literal: variable index v (1-based) encoded as 2v for positive,
// 2v+1 for negated.
type Lit int32

// MkLit builds a literal from a 1-based variable and a sign.
func MkLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's 1-based variable.
func (l Lit) Var() int { return int(l >> 1) }

// Neg reports whether the literal is negated.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complement literal.
func (l Lit) Not() Lit { return l ^ 1 }

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

type clause struct {
	lits    []Lit
	learned bool
}

// Solver is a CDCL SAT solver. Add variables with NewVar, clauses with
// AddClause, then call Solve.
type Solver struct {
	nvars   int
	clauses []*clause
	watches [][]*clause // watches[lit]: clauses watching lit

	assign []lbool // per var
	level  []int32
	reason []*clause
	trail  []Lit
	// trailLim records trail lengths at each decision level.
	trailLim []int

	activity []float64
	varInc   float64

	propagations uint64
	conflicts    uint64
	decisions    uint64

	unsat bool
}

// New returns an empty solver.
func New() *Solver {
	s := &Solver{varInc: 1}
	s.watches = make([][]*clause, 2)
	s.assign = make([]lbool, 1)
	s.level = make([]int32, 1)
	s.reason = make([]*clause, 1)
	s.activity = make([]float64, 1)
	return s
}

// NewVar allocates a fresh variable and returns its 1-based index.
func (s *Solver) NewVar() int {
	s.nvars++
	s.assign = append(s.assign, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.watches = append(s.watches, nil, nil)
	return s.nvars
}

// NumVars returns the variable count.
func (s *Solver) NumVars() int { return s.nvars }

// Stats reports work counters.
func (s *Solver) Stats() (propagations, conflicts, decisions uint64) {
	return s.propagations, s.conflicts, s.decisions
}

func (s *Solver) value(l Lit) lbool {
	v := s.assign[l.Var()]
	if v == lUndef {
		return lUndef
	}
	if l.Neg() {
		if v == lTrue {
			return lFalse
		}
		return lTrue
	}
	return v
}

// AddClause adds a clause; empty clauses make the instance trivially
// unsatisfiable. Must be called before Solve (no incremental interface).
func (s *Solver) AddClause(lits ...Lit) {
	// Deduplicate and drop tautologies.
	ls := append([]Lit(nil), lits...)
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	out := ls[:0]
	for i, l := range ls {
		if i > 0 && l == ls[i-1] {
			continue
		}
		if i > 0 && l == ls[i-1].Not() {
			return // tautology
		}
		out = append(out, l)
	}
	ls = out
	switch len(ls) {
	case 0:
		s.unsat = true
		return
	case 1:
		// Unit clause: assign at level 0 during Solve; store it.
		s.clauses = append(s.clauses, &clause{lits: ls})
		return
	}
	c := &clause{lits: ls}
	s.clauses = append(s.clauses, c)
	s.watch(c)
}

func (s *Solver) watch(c *clause) {
	s.watches[c.lits[0].Not()] = append(s.watches[c.lits[0].Not()], c)
	s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], c)
}

func (s *Solver) enqueue(l Lit, from *clause) bool {
	switch s.value(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := l.Var()
	if l.Neg() {
		s.assign[v] = lFalse
	} else {
		s.assign[v] = lTrue
	}
	s.level[v] = int32(len(s.trailLim))
	s.reason[v] = from
	s.trail = append(s.trail, l)
	return true
}

// propagate processes the trail; returns a conflicting clause or nil.
func (s *Solver) propagate(qhead *int) *clause {
	for *qhead < len(s.trail) {
		l := s.trail[*qhead]
		*qhead++
		s.propagations++
		ws := s.watches[l]
		s.watches[l] = ws[:0:0] // detach; re-add the keepers
		kept := s.watches[l]
		for wi := 0; wi < len(ws); wi++ {
			c := ws[wi]
			// Ensure the false literal is at position 1.
			if c.lits[0].Not() == l {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			// If first watch is true, clause satisfied.
			if s.value(c.lits[0]) == lTrue {
				kept = append(kept, c)
				continue
			}
			// Find a new literal to watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], c)
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Unit or conflict.
			kept = append(kept, c)
			if !s.enqueue(c.lits[0], c) {
				// Conflict: restore remaining watches and report.
				kept = append(kept, ws[wi+1:]...)
				s.watches[l] = kept
				return c
			}
		}
		s.watches[l] = kept
	}
	return nil
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := 1; i <= s.nvars; i++ {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
}

// analyze learns a 1UIP clause from the conflict; returns the clause and
// the backtrack level.
func (s *Solver) analyze(confl *clause) ([]Lit, int) {
	learned := []Lit{0} // slot for the asserting literal
	seen := make(map[int]bool)
	counter := 0
	curLevel := len(s.trailLim)
	var p Lit = -1
	idx := len(s.trail) - 1

	reasonLits := func(c *clause, skip Lit) []Lit {
		out := make([]Lit, 0, len(c.lits))
		for _, q := range c.lits {
			if q != skip {
				out = append(out, q)
			}
		}
		return out
	}

	c := confl
	for {
		var lits []Lit
		if p == -1 {
			lits = c.lits
		} else {
			lits = reasonLits(c, p)
		}
		for _, q := range lits {
			v := q.Var()
			if seen[v] || s.level[v] == 0 {
				continue
			}
			seen[v] = true
			s.bumpVar(v)
			if int(s.level[v]) == curLevel {
				counter++
			} else {
				learned = append(learned, q)
			}
		}
		// Pick the next literal on the trail at the current level.
		for !seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		seen[p.Var()] = false
		idx--
		counter--
		if counter == 0 {
			break
		}
		c = s.reason[p.Var()]
	}
	learned[0] = p.Not()
	// Backtrack level: max level among other literals.
	back := 0
	for i := 1; i < len(learned); i++ {
		if int(s.level[learned[i].Var()]) > back {
			back = int(s.level[learned[i].Var()])
		}
	}
	// Put a literal of the backtrack level at position 1 for watching.
	for i := 1; i < len(learned); i++ {
		if int(s.level[learned[i].Var()]) == back {
			learned[1], learned[i] = learned[i], learned[1]
			break
		}
	}
	return learned, back
}

func (s *Solver) cancelUntil(level int) {
	if len(s.trailLim) <= level {
		return
	}
	bound := s.trailLim[level]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.assign[v] = lUndef
		s.reason[v] = nil
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
}

func (s *Solver) pickBranchVar() int {
	best, bestAct := 0, -1.0
	for v := 1; v <= s.nvars; v++ {
		if s.assign[v] == lUndef && s.activity[v] > bestAct {
			best, bestAct = v, s.activity[v]
		}
	}
	return best
}

// Solve decides satisfiability. On SAT, Model returns assignments.
func (s *Solver) Solve() bool {
	if s.unsat {
		return false
	}
	qhead := 0
	// Assert unit clauses at level 0.
	for _, c := range s.clauses {
		if len(c.lits) == 1 {
			if !s.enqueue(c.lits[0], nil) {
				return false
			}
		}
	}
	if s.propagate(&qhead) != nil {
		return false
	}
	conflictsSinceRestart := 0
	restartLimit := 100
	for {
		confl := s.propagate(&qhead)
		if confl != nil {
			s.conflicts++
			conflictsSinceRestart++
			if len(s.trailLim) == 0 {
				return false
			}
			learned, back := s.analyze(confl)
			s.cancelUntil(back)
			qhead = len(s.trail)
			if len(learned) == 1 {
				if !s.enqueue(learned[0], nil) {
					return false
				}
			} else {
				c := &clause{lits: learned, learned: true}
				s.clauses = append(s.clauses, c)
				s.watch(c)
				s.enqueue(learned[0], c)
			}
			s.varInc /= 0.95
			continue
		}
		if conflictsSinceRestart > restartLimit {
			conflictsSinceRestart = 0
			restartLimit = restartLimit * 3 / 2
			s.cancelUntil(0)
			qhead = 0
			continue
		}
		v := s.pickBranchVar()
		if v == 0 {
			return true // all assigned, no conflict
		}
		s.decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		// Phase heuristic: try false first (packets tend to 0-bits).
		s.enqueue(MkLit(v, true), nil)
	}
}

// Model returns the satisfying assignment (valid after Solve returns true):
// index by 1-based variable.
func (s *Solver) Model() []bool {
	m := make([]bool, s.nvars+1)
	for v := 1; v <= s.nvars; v++ {
		m[v] = s.assign[v] == lTrue
	}
	return m
}
