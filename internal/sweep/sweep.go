// Package sweep is the k-failure scenario sweep engine: the flagship
// heavy-traffic workload the cache/incremental/parallel layers exist for
// (ROADMAP "failure-scenario sweeps", Plankton in PAPERS.md). It
// enumerates every k=1 and k=2 link/node/session failure over a base
// snapshot, partitions the scenarios into equivalence classes using the
// blast-radius machinery of reach.ImpactSets — a failure no monitored
// flow can touch cannot change any monitored verdict, so one
// representative per class runs and the rest are stamped — and executes
// the surviving representatives across a worker pool, each worker
// answering incrementally against its own warmed baseline.
//
// Soundness of the class pruning (see DESIGN §8 for the proof sketch and
// the non-monotone-policy caveat): the monitored-traffic cone is the set
// of devices any monitored header can traverse in the baseline, computed
// by one forward pass (reach.ImpactCone, the exact dual of a per-element
// backward ImpactSets pass). Failing elements entirely outside the cone
// removes only routes whose data paths lie outside every monitored
// trajectory, so every in-cone transfer function — and with it every
// monitored verdict — is unchanged. A k=2 scenario with one out-of-cone
// element collapses onto the class of its in-cone projection. The
// acceptance tests spot-check pruned scenarios against cold full runs.
package sweep

import (
	"fmt"
	"runtime"
	"sort"
	"strings"

	"repro/internal/bdd"
	"repro/internal/core"
	"repro/internal/dataplane"
	"repro/internal/hdr"
	"repro/internal/ip4"
	"repro/internal/reach"
	"repro/internal/topo"
)

// ElementKind classifies one failable network element.
type ElementKind uint8

// Element kinds.
const (
	LinkDown ElementKind = iota
	NodeDown
	SessionDown
)

// Element is one failable element of the network.
type Element struct {
	Kind    ElementKind
	Link    topo.Link            // when Kind == LinkDown
	Node    string               // when Kind == NodeDown
	Session dataplane.SessionKey // when Kind == SessionDown
}

// ID renders the canonical element identifier.
func (el Element) ID() string {
	switch el.Kind {
	case LinkDown:
		return "link:" + el.Link.String()
	case NodeDown:
		return "node:" + el.Node
	default:
		return "session:" + el.Session.String()
	}
}

// devices lists the devices whose removal semantics the element carries;
// an element is inside the monitored cone iff any of them is.
func (el Element) devices() []string {
	switch el.Kind {
	case LinkDown:
		return []string{el.Link.Node1, el.Link.Node2}
	case NodeDown:
		return []string{el.Node}
	default:
		return []string{el.Session.Node1, el.Session.Node2}
	}
}

// Scenario is one enumerated failure scenario: a set of simultaneously
// failed elements (k = len(Elements)). Elements are kept sorted by ID.
type Scenario struct {
	Elements []Element
}

// ID renders the canonical scenario identifier ("" for the empty
// scenario, element IDs joined by "+" otherwise).
func (s Scenario) ID() string {
	ids := make([]string, len(s.Elements))
	for i, el := range s.Elements {
		ids[i] = el.ID()
	}
	return strings.Join(ids, "+")
}

// overlay converts the scenario into the core snapshot overlay.
func (s Scenario) overlay() core.Scenario {
	var sc core.Scenario
	for _, el := range s.Elements {
		switch el.Kind {
		case LinkDown:
			sc.LinksDown = append(sc.LinksDown, el.Link)
		case NodeDown:
			sc.NodesDown = append(sc.NodesDown, el.Node)
		default:
			sc.SessionsDown = append(sc.SessionsDown, el.Session)
		}
	}
	return sc
}

// Spec configures a sweep.
type Spec struct {
	// K is the maximum number of simultaneous failures (1 or 2; default 1).
	K int
	// Links/Nodes/Sessions select the element kinds to fail. All false
	// defaults to links + nodes.
	Links, Nodes, Sessions bool
	// Sources are the monitored flows' source locations (default: the
	// base snapshot's host-facing interfaces). Scoping sources tightly is
	// what makes class pruning effective: the monitored cone shrinks and
	// most elements fall outside it.
	Sources []reach.SourceLoc
	// DstIPs constrain the monitored header space (default: unconstrained).
	DstIPs []ip4.Prefix
	// Workers is the executor's parallelism (default GOMAXPROCS). Each
	// worker owns a private pipeline — BDD factories are unsynchronized,
	// so workers never share one.
	Workers int
	// MaxIterations bounds each scenario simulation's exchange loops
	// (0 = the engine default).
	MaxIterations int
	// BDDBudget bounds each worker's BDD factory node count (0 = none).
	BDDBudget int
	// MaxScenarios caps enumeration as a safety valve (0 = unlimited);
	// exceeding it is an error telling the caller to narrow the spec.
	MaxScenarios int
}

// SourceVerdict is one monitored flow's outcome under a scenario.
type SourceVerdict struct {
	Device    string `json:"device"`
	Iface     string `json:"iface"`
	Delivered bool   `json:"delivered"`
}

// Verdict is the sweep outcome for one enumerated scenario.
type Verdict struct {
	Scenario string `json:"scenario"`
	// Class is the equivalence-class identifier: the canonical ID of the
	// scenario's in-cone element projection ("" = the baseline class —
	// no failed element touches any monitored flow).
	Class string `json:"class,omitempty"`
	// Executed marks the scenario that actually ran as its class
	// representative; the others were stamped from it.
	Executed bool            `json:"executed"`
	Sources  []SourceVerdict `json:"sources"`
	// Violations counts regressions: monitored sources delivered at
	// baseline but not under this scenario.
	Violations int `json:"violations"`
	// Degraded marks a verdict from a degraded run (budget trip,
	// repeated worker failure, cancellation); its sources may be partial.
	Degraded bool `json:"degraded,omitempty"`
}

// Result is the full sweep outcome.
type Result struct {
	Enumerated int `json:"enumerated"`
	Classes    int `json:"classes"`
	Executed   int `json:"executed"`
	Pruned     int `json:"pruned"`
	// Violations counts scenarios with at least one regressed source.
	Violations int             `json:"violations"`
	Baseline   []SourceVerdict `json:"baseline"`
	// Verdicts lists every enumerated scenario in canonical enumeration
	// order, independent of worker count and completion order.
	Verdicts []Verdict `json:"verdicts"`
	Degraded bool      `json:"degraded,omitempty"`
}

// Plan is a prepared sweep: enumerated scenarios, their equivalence
// classes, and the baseline verdicts. Building a plan runs BDD work on
// the base snapshot's pipeline, so callers serialize NewPlan with other
// queries on that pipeline; Execute is self-contained (private per-worker
// pipelines) and needs no such serialization.
type Plan struct {
	spec  Spec
	texts map[string]string
	opts  dataplane.Options

	sources       []reach.SourceLoc
	params        core.ReachabilityParams
	baseline      []SourceVerdict
	baseDelivered map[reach.SourceLoc]bool

	scenarios []Scenario // canonical enumeration order
	classOf   []string   // scenario index → class ID
	classRep  map[string]Scenario
	classIDs  []string // sorted non-empty class IDs
}

// Enumerated returns the number of enumerated scenarios.
func (p *Plan) Enumerated() int { return len(p.scenarios) }

// Classes returns the number of distinct equivalence classes, counting
// the baseline class when present.
func (p *Plan) Classes() int {
	n := len(p.classIDs)
	for _, c := range p.classOf {
		if c == "" {
			return n + 1
		}
	}
	return n
}

// NewPlan enumerates and classifies the sweep over the base snapshot.
func NewPlan(base *core.Snapshot, spec Spec) (*Plan, error) {
	if spec.K == 0 {
		spec.K = 1
	}
	if spec.K < 1 || spec.K > 2 {
		return nil, fmt.Errorf("sweep: k=%d unsupported (want 1 or 2)", spec.K)
	}
	if !spec.Links && !spec.Nodes && !spec.Sessions {
		spec.Links, spec.Nodes = true, true
	}
	if spec.Workers <= 0 {
		spec.Workers = runtime.GOMAXPROCS(0)
	}
	dp := base.DataPlane()
	if base.Degraded() {
		return nil, fmt.Errorf("sweep: base snapshot is degraded; refusing to sweep partial truth")
	}
	p := &Plan{
		spec:  spec,
		texts: base.SourceTexts(),
		opts:  base.DataPlaneOptions(),
	}
	p.sources = spec.Sources
	if len(p.sources) == 0 {
		p.sources = base.HostFacing()
	}
	if len(p.sources) == 0 {
		return nil, fmt.Errorf("sweep: no monitored sources")
	}
	p.params = core.ReachabilityParams{Sources: p.sources, DstIPs: spec.DstIPs}

	// Enumerate elements in canonical order.
	var elements []Element
	if spec.Links {
		for _, l := range dp.Topology.Links() {
			elements = append(elements, Element{Kind: LinkDown, Link: l})
		}
	}
	if spec.Nodes {
		for _, n := range base.Net.DeviceNames() {
			elements = append(elements, Element{Kind: NodeDown, Node: n})
		}
	}
	if spec.Sessions {
		var keys []dataplane.SessionKey
		for _, s := range dp.Sessions {
			if s.Up {
				keys = append(keys, s.Key())
			}
		}
		sort.Slice(keys, func(i, j int) bool { return dataplane.LessSessionKey(keys[i], keys[j]) })
		for i, k := range keys {
			if i > 0 && k == keys[i-1] {
				continue
			}
			elements = append(elements, Element{Kind: SessionDown, Session: k})
		}
	}

	// Enumerate scenarios: all singles, then all unordered pairs.
	for _, el := range elements {
		p.scenarios = append(p.scenarios, Scenario{Elements: []Element{el}})
	}
	if spec.K >= 2 {
		for i := range elements {
			for j := i + 1; j < len(elements); j++ {
				a, b := elements[i], elements[j]
				if b.ID() < a.ID() {
					a, b = b, a
				}
				p.scenarios = append(p.scenarios, Scenario{Elements: []Element{a, b}})
			}
		}
	}
	if spec.MaxScenarios > 0 && len(p.scenarios) > spec.MaxScenarios {
		return nil, fmt.Errorf("sweep: %d scenarios exceed the cap of %d; narrow the element kinds or drop to k=1",
			len(p.scenarios), spec.MaxScenarios)
	}

	// Monitored-traffic cone: one forward pass from the monitored sources
	// over the monitored destination space. Per-source source-IP scoping
	// is deliberately skipped — a broader header space only widens the
	// cone, which keeps the pruning sound.
	g := base.Graph()
	enc := g.Enc
	hs := bdd.Ref(bdd.True)
	for _, d := range spec.DstIPs {
		hs = enc.F.And(hs, enc.Prefix(hdr.DstIP, d))
	}
	srcMap := make(map[reach.SourceLoc]bdd.Ref, len(p.sources))
	for _, src := range p.sources {
		srcMap[src] = hs
	}
	cone := reach.ImpactCone(g, srcMap)
	touched := func(el Element) bool {
		for _, d := range el.devices() {
			if set, ok := cone[d]; ok && set != bdd.False {
				return true
			}
		}
		return false
	}

	// Baseline verdicts (also warms the base snapshot's memo).
	flows := base.Reachability(p.params)
	p.baseline = renderSources(p.sources, flows)
	p.baseDelivered = make(map[reach.SourceLoc]bool, len(p.baseline))
	for _, sv := range p.baseline {
		p.baseDelivered[reach.SourceLoc{Device: sv.Device, Iface: sv.Iface}] = sv.Delivered
	}

	// Classify: the class of a scenario is its in-cone element projection.
	p.classOf = make([]string, len(p.scenarios))
	p.classRep = make(map[string]Scenario)
	for i, sc := range p.scenarios {
		var inCone []Element
		for _, el := range sc.Elements {
			if touched(el) {
				inCone = append(inCone, el)
			}
		}
		rep := Scenario{Elements: inCone}
		id := rep.ID()
		p.classOf[i] = id
		if id != "" {
			if _, ok := p.classRep[id]; !ok {
				p.classRep[id] = rep
				p.classIDs = append(p.classIDs, id)
			}
		}
	}
	sort.Strings(p.classIDs)
	return p, nil
}

// renderSources projects flow results onto the monitored source list in
// order; sources without a flow result (e.g. a source on a downed device)
// count as not delivered.
func renderSources(sources []reach.SourceLoc, flows []core.FlowResult) []SourceVerdict {
	byLoc := make(map[reach.SourceLoc]bool, len(flows))
	for _, fr := range flows {
		byLoc[fr.Source] = fr.Delivered != bdd.False
	}
	out := make([]SourceVerdict, len(sources))
	for i, src := range sources {
		out[i] = SourceVerdict{Device: src.Device, Iface: src.Iface, Delivered: byLoc[src]}
	}
	return out
}

// violationsIn counts regressions against the baseline verdicts.
func (p *Plan) violationsIn(sources []SourceVerdict) int {
	n := 0
	for _, sv := range sources {
		if !sv.Delivered && p.baseDelivered[reach.SourceLoc{Device: sv.Device, Iface: sv.Iface}] {
			n++
		}
	}
	return n
}
