package sweep

import (
	"bytes"
	"crypto/sha256"
)

// PartitionClasses deals equivalence classes across cluster members by
// rendezvous (highest-random-weight) hashing: each class goes to the
// member whose sha256(member NUL class) scores highest. The assignment is
// deterministic for a given member set, independent of member order, and
// minimally disturbed by membership changes — removing a member moves
// only that member's classes, which is exactly the failover property the
// cluster's snapshot ownership uses (cluster.OwnerOf, same construction).
// Each member's list preserves the input class order. Empty inputs yield
// an empty map.
func PartitionClasses(classIDs, members []string) map[string][]string {
	if len(members) == 0 {
		return map[string][]string{}
	}
	out := make(map[string][]string, len(members))
	for _, id := range classIDs {
		best := ""
		var bestScore [sha256.Size]byte
		for _, m := range members {
			score := rendezvousScore(m, id)
			if best == "" || bytes.Compare(score[:], bestScore[:]) > 0 {
				best, bestScore = m, score
			}
		}
		out[best] = append(out[best], id)
	}
	return out
}

// rendezvousScore is the HRW weight of (member, subject). The NUL
// separator keeps ("ab","c") and ("a","bc") from colliding.
func rendezvousScore(member, subject string) [sha256.Size]byte {
	h := sha256.New()
	h.Write([]byte(member))
	h.Write([]byte{0})
	h.Write([]byte(subject))
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return sum
}
