package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/ip4"
	"repro/internal/pipeline"
)

func TestPartitionClassesProperties(t *testing.T) {
	classes := make([]string, 40)
	for i := range classes {
		classes[i] = fmt.Sprintf("link(c-x%d,c-y%d)", i, i)
	}
	members := []string{"m1", "m2", "m3"}

	parts := PartitionClasses(classes, members)
	// Coverage and disjointness: every class lands on exactly one member.
	seen := make(map[string]string)
	for m, ids := range parts {
		for _, id := range ids {
			if prev, dup := seen[id]; dup {
				t.Fatalf("class %s assigned to both %s and %s", id, prev, m)
			}
			seen[id] = m
		}
	}
	if len(seen) != len(classes) {
		t.Fatalf("assigned %d classes, want %d", len(seen), len(classes))
	}

	// Member-order independence.
	again := PartitionClasses(classes, []string{"m3", "m1", "m2"})
	for m := range parts {
		a, _ := json.Marshal(parts[m])
		b, _ := json.Marshal(again[m])
		if string(a) != string(b) {
			t.Fatalf("member order changed %s's partition:\n%s\n%s", m, a, b)
		}
	}

	// Minimal disturbance: dropping m2 moves only m2's classes.
	survivor := PartitionClasses(classes, []string{"m1", "m3"})
	reassigned := make(map[string]string)
	for m, ids := range survivor {
		for _, id := range ids {
			reassigned[id] = m
		}
	}
	for id, m := range seen {
		if m != "m2" && reassigned[id] != m {
			t.Errorf("class %s moved from surviving member %s to %s", id, m, reassigned[id])
		}
	}

	if got := PartitionClasses(classes, nil); len(got) != 0 {
		t.Errorf("no members: %v", got)
	}
}

// TestExecuteClassesPartitionedMatchesExecute is the distributed sweep's
// correctness core in-process: splitting a plan's classes across two
// executors and assembling the shipped ClassResults must yield exactly
// Execute's result.
func TestExecuteClassesPartitionedMatchesExecute(t *testing.T) {
	texts := fabricTexts(t, "dc")
	base := core.LoadTextWith(pipeline.New(pipeline.Config{}), texts)
	srcs, dst := monitored(t, base, "dc-p01-tor01", "dc-p02-tor01")
	spec := Spec{K: 1, Links: true, Sources: srcs, DstIPs: []ip4.Prefix{dst}, Workers: 2}

	plan, err := NewPlan(base, spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := plan.Execute(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}

	parts := PartitionClasses(plan.ClassIDs(), []string{"owner", "remote"})
	var merged []ClassResult
	emitted := 0
	for _, m := range []string{"owner", "remote"} {
		merged = append(merged, plan.ExecuteClasses(context.Background(), parts[m], func(ClassResult) { emitted++ })...)
	}
	if emitted != len(plan.ClassIDs()) {
		t.Fatalf("emit saw %d classes, want %d", emitted, len(plan.ClassIDs()))
	}
	got := plan.Assemble(merged)

	wb, _ := json.Marshal(want)
	gb, _ := json.Marshal(got)
	if string(wb) != string(gb) {
		t.Fatalf("partitioned result differs from Execute:\nwant %s\ngot  %s", wb, gb)
	}

	// ClassResults survive the wire: a JSON round trip assembles the same.
	enc, _ := json.Marshal(merged)
	var wired []ClassResult
	if err := json.Unmarshal(enc, &wired); err != nil {
		t.Fatal(err)
	}
	rb, _ := json.Marshal(plan.Assemble(wired))
	if string(rb) != string(wb) {
		t.Fatal("JSON round-tripped ClassResults assemble differently")
	}

	// Unknown and baseline class IDs are skipped, not executed or degraded.
	if extra := plan.ExecuteClasses(context.Background(), []string{"", "no-such-class"}, nil); len(extra) != 0 {
		t.Fatalf("foreign classes produced outcomes: %v", extra)
	}

	// Assembling with a hole degrades exactly the missing class's members.
	holed := plan.Assemble(merged[1:])
	if !holed.Degraded {
		t.Fatal("missing class did not degrade the result")
	}
	missing := merged[0].Class
	for i, v := range holed.Verdicts {
		if v.Class == missing && (!v.Degraded || v.Executed) {
			t.Errorf("verdict %d of lost class %s: %+v", i, missing, v)
		}
	}
}
