package sweep

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/ip4"
	"repro/internal/netgen"
	"repro/internal/pipeline"
	"repro/internal/reach"
)

// fabricTexts renders a 10-device Clos fabric (2 spines, 2 pods, 2 aggs
// and 2 ToRs per pod) as hostname → config text.
func fabricTexts(t testing.TB, name string) map[string]string {
	t.Helper()
	gen := netgen.Fabric(netgen.FabricParams{Name: name, Spines: 2, Pods: 2,
		AggPerPod: 2, TorPerPod: 2, HostNetsPerTor: 1, Multipath: true})
	texts := make(map[string]string, len(gen.Devices))
	for _, dt := range gen.Devices {
		texts[dt.Hostname] = dt.Text
	}
	return texts
}

// monitored picks the sweep's monitored flows: the host-facing sources on
// one ToR, destined to another ToR's host subnet. The spec's blast-radius
// pruning lives or dies by this scoping.
func monitored(t testing.TB, base *core.Snapshot, srcTor, dstTor string) ([]reach.SourceLoc, ip4.Prefix) {
	t.Helper()
	var srcs []reach.SourceLoc
	for _, src := range base.HostFacing() {
		if src.Device == srcTor {
			srcs = append(srcs, src)
		}
	}
	if len(srcs) == 0 {
		t.Fatalf("no host-facing sources on %s", srcTor)
	}
	d := base.Net.Devices[dstTor]
	if d == nil {
		t.Fatalf("no device %s", dstTor)
	}
	for _, in := range d.InterfaceNames() {
		if strings.HasPrefix(in, "host") {
			p := d.Interfaces[in].Addresses[0]
			return srcs, ip4.Prefix{Addr: p.Addr, Len: p.Len}.Canonical()
		}
	}
	t.Fatalf("no host interface on %s", dstTor)
	return nil, ip4.Prefix{}
}

// coldVerdicts recomputes one scenario from scratch: fresh disabled
// pipeline (no cache, no incremental path, its own BDD factory), full
// parse and simulation. This is the ground truth the sweep's pruned and
// incremental answers are checked against.
func coldVerdicts(t testing.TB, texts map[string]string, sc Scenario, srcs []reach.SourceLoc, dst ip4.Prefix) []SourceVerdict {
	t.Helper()
	base := core.LoadTextWith(pipeline.Disabled(), texts)
	snap := base.Apply(sc.overlay())
	flows := snap.Reachability(core.ReachabilityParams{Sources: srcs, DstIPs: []ip4.Prefix{dst}})
	if snap.Degraded() {
		t.Fatalf("cold run of %s degraded", sc.ID())
	}
	return renderSources(srcs, flows)
}

func sameSources(a, b []SourceVerdict) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSweepK1ExhaustiveIdentity runs a full k=1 sweep over every element
// kind and checks EVERY scenario's verdict — executed representatives and
// pruned class members alike — against an independent cold recomputation.
// This is the correctness core of the equivalence-class pruning: a pruned
// scenario's stamped verdict must be indistinguishable from having run it.
func TestSweepK1ExhaustiveIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("cold-verifies every scenario; skipped in -short")
	}
	texts := fabricTexts(t, "sw")
	base := core.LoadTextWith(pipeline.New(pipeline.Config{}), texts)
	srcs, dst := monitored(t, base, "sw-p01-tor01", "sw-p01-tor02")

	plan, err := NewPlan(base, Spec{
		K: 1, Links: true, Nodes: true, Sessions: true,
		Sources: srcs, DstIPs: []ip4.Prefix{dst}, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Execute(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Fatal("sweep degraded")
	}
	if res.Enumerated != len(res.Verdicts) || res.Enumerated == 0 {
		t.Fatalf("enumerated %d, verdicts %d", res.Enumerated, len(res.Verdicts))
	}
	// Intra-pod monitored traffic leaves the spines and the other pod
	// outside the cone, so real pruning must happen.
	if res.Pruned == 0 {
		t.Fatal("no scenarios pruned; cone classification is not engaging")
	}
	if res.Executed+res.Pruned != res.Enumerated {
		t.Fatalf("executed %d + pruned %d != enumerated %d", res.Executed, res.Pruned, res.Enumerated)
	}
	// Some scenario must break the monitored flows (e.g. downing the
	// source ToR), and the baseline itself must deliver.
	for _, sv := range res.Baseline {
		if !sv.Delivered {
			t.Fatalf("baseline flow %s:%s not delivered", sv.Device, sv.Iface)
		}
	}
	if res.Violations == 0 {
		t.Fatal("k=1 sweep of a fabric must surface violations (source ToR down)")
	}

	prunedChecked := 0
	for _, v := range res.Verdicts {
		sc := Scenario{}
		for _, id := range strings.Split(v.Scenario, "+") {
			sc.Elements = append(sc.Elements, elementByID(t, plan, id))
		}
		want := coldVerdicts(t, texts, sc, srcs, dst)
		if !sameSources(v.Sources, want) {
			t.Errorf("scenario %s (executed=%v class=%q): sweep verdict differs from cold run\n got %+v\nwant %+v",
				v.Scenario, v.Executed, v.Class, v.Sources, want)
		}
		if !v.Executed {
			prunedChecked++
		}
	}
	if prunedChecked != res.Pruned {
		t.Errorf("checked %d pruned scenarios, result claims %d", prunedChecked, res.Pruned)
	}
}

// elementByID reverses Element.ID over the plan's enumerated universe.
func elementByID(t testing.TB, p *Plan, id string) Element {
	t.Helper()
	for _, sc := range p.scenarios {
		for _, el := range sc.Elements {
			if el.ID() == id {
				return el
			}
		}
	}
	t.Fatalf("no element %q in plan", id)
	return Element{}
}

// TestSweepK2ProjectionStamping checks the k=2 classification rule: a
// pair with one out-of-cone element must land in the class of its k=1
// in-cone projection and carry that projection's verdicts, and a sample
// of those stamped pairs must match cold recomputation.
func TestSweepK2ProjectionStamping(t *testing.T) {
	if testing.Short() {
		t.Skip("cold-verifies sampled pairs; skipped in -short")
	}
	texts := fabricTexts(t, "s2")
	base := core.LoadTextWith(pipeline.New(pipeline.Config{}), texts)
	srcs, dst := monitored(t, base, "s2-p01-tor01", "s2-p01-tor02")

	plan, err := NewPlan(base, Spec{
		K: 2, Nodes: true,
		Sources: srcs, DstIPs: []ip4.Prefix{dst}, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 10 node singles + 45 pairs.
	if plan.Enumerated() != 55 {
		t.Fatalf("enumerated %d, want 55", plan.Enumerated())
	}
	res, err := plan.Execute(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	byID := make(map[string]Verdict, len(res.Verdicts))
	for _, v := range res.Verdicts {
		byID[v.Scenario] = v
	}
	projected, checked := 0, 0
	for i, sc := range plan.scenarios {
		if len(sc.Elements) != 2 {
			continue
		}
		class := plan.classOf[i]
		if class == sc.ID() || class == "" {
			continue // both elements in cone, or both out
		}
		// One element dropped: the class must be the surviving element's
		// k=1 scenario, and the verdicts must be stamped from it.
		projected++
		rep, ok := byID[class]
		if !ok {
			t.Fatalf("class %q is not an enumerated scenario", class)
		}
		v := byID[sc.ID()]
		if !sameSources(v.Sources, rep.Sources) {
			t.Errorf("pair %s not stamped from projection %s", sc.ID(), class)
		}
		if v.Executed {
			t.Errorf("pair %s should be stamped, not executed", sc.ID())
		}
		// Cold-verify a deterministic sample.
		if checked < 5 && projected%7 == 1 {
			checked++
			want := coldVerdicts(t, texts, sc, srcs, dst)
			if !sameSources(v.Sources, want) {
				t.Errorf("pair %s: projected verdict differs from cold run\n got %+v\nwant %+v", sc.ID(), v.Sources, want)
			}
		}
	}
	if projected == 0 {
		t.Fatal("no k=2 pair had exactly one in-cone element; cone scoping broke")
	}
	if checked == 0 {
		t.Fatal("sampling logic never cold-checked a projected pair")
	}
}

// TestSweepDeterminismAcrossWorkers runs the identical sweep at 1, 2, 4,
// and 8 workers and requires byte-identical verdict sets. The race
// detector build of this test doubles as the ctx/data-race gate for the
// executor (workers share only the job queue and the outcome map).
func TestSweepDeterminismAcrossWorkers(t *testing.T) {
	texts := fabricTexts(t, "dw")
	base := core.LoadTextWith(pipeline.New(pipeline.Config{}), texts)
	srcs, dst := monitored(t, base, "dw-p01-tor01", "dw-p01-tor02")

	plan, err := NewPlan(base, Spec{K: 1, Links: true, Nodes: true,
		Sources: srcs, DstIPs: []ip4.Prefix{dst}})
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	for _, workers := range []int{1, 2, 4, 8} {
		plan.spec.Workers = workers
		var streamed []Verdict
		res, err := plan.Execute(context.Background(), func(v Verdict) { streamed = append(streamed, v) })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
		} else if string(got) != string(want) {
			t.Errorf("workers=%d: result differs from workers=1", workers)
		}
		// The stream carries every verdict exactly once; sorted, it must
		// equal the canonical verdict list.
		if len(streamed) != len(res.Verdicts) {
			t.Fatalf("workers=%d: streamed %d of %d verdicts", workers, len(streamed), len(res.Verdicts))
		}
		SortVerdicts(streamed)
		canon := append([]Verdict(nil), res.Verdicts...)
		SortVerdicts(canon)
		for i := range canon {
			a, _ := json.Marshal(streamed[i])
			b, _ := json.Marshal(canon[i])
			if string(a) != string(b) {
				t.Errorf("workers=%d: streamed verdict %d differs from canonical", workers, i)
			}
		}
	}
}

// TestSweepWorkerKillRequeue kills a worker mid-scenario via the faults
// harness (a panic at the sweep injection point) and requires the class
// to be requeued onto a fresh runtime with byte-identical final verdicts
// and no degradation.
func TestSweepWorkerKillRequeue(t *testing.T) {
	texts := fabricTexts(t, "fk")
	base := core.LoadTextWith(pipeline.New(pipeline.Config{}), texts)
	srcs, dst := monitored(t, base, "fk-p01-tor01", "fk-p01-tor02")
	plan, err := NewPlan(base, Spec{K: 1, Nodes: true,
		Sources: srcs, DstIPs: []ip4.Prefix{dst}, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := plan.Execute(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Degraded {
		t.Fatal("clean run degraded")
	}

	// Kill the worker on the first firing of any class; the requeue must
	// absorb it.
	inj := faults.New().Enable("sweep", "*", faults.Rule{Kind: faults.Panic, Count: 1})
	restore := faults.Activate(inj)
	chaos, err := plan.Execute(context.Background(), nil)
	restore()
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	for _, n := range inj.Hits() {
		fired += n
	}
	if fired != 1 {
		t.Fatalf("fault fired %d times, want 1", fired)
	}
	if chaos.Degraded {
		t.Fatal("requeued run must not be degraded")
	}
	a, _ := json.Marshal(clean)
	b, _ := json.Marshal(chaos)
	if string(a) != string(b) {
		t.Error("verdicts after worker kill + requeue differ from clean run")
	}

	// A class that fails twice (kill on first run AND on the retry) must
	// degrade that class's verdicts, not hang or poison the others.
	inj2 := faults.New().Enable("sweep", plan.classIDs[0], faults.Rule{Kind: faults.Panic})
	restore = faults.Activate(inj2)
	degr, err := plan.Execute(context.Background(), nil)
	restore()
	if err != nil {
		t.Fatal(err)
	}
	if !degr.Degraded {
		t.Fatal("doubly-killed class must degrade the result")
	}
	for _, v := range degr.Verdicts {
		if v.Class == plan.classIDs[0] {
			if !v.Degraded {
				t.Errorf("verdict %s should be degraded", v.Scenario)
			}
		} else if v.Degraded {
			t.Errorf("unrelated verdict %s degraded", v.Scenario)
		}
	}
}

// TestSweepPanickingEmit: a panicking emit callback must not crash the
// process, leak the results mutex (wedging every other worker), or hang
// ExecuteClasses. The worker that hit the panic dies; classes it never
// delivered degrade through Assemble exactly like cancellation.
func TestSweepPanickingEmit(t *testing.T) {
	texts := fabricTexts(t, "pe")
	base := core.LoadTextWith(pipeline.New(pipeline.Config{}), texts)
	srcs, dst := monitored(t, base, "pe-p01-tor01", "pe-p01-tor02")
	plan, err := NewPlan(base, Spec{K: 1, Nodes: true,
		Sources: srcs, DstIPs: []ip4.Prefix{dst}, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.classIDs) < 3 {
		t.Fatalf("plan too small for the test: %d classes", len(plan.classIDs))
	}

	// Emit panics once. The worker that called it dies, but its class was
	// already recorded and the surviving worker drains the queue: the run
	// completes whole.
	fired := false
	results := plan.ExecuteClasses(context.Background(), plan.classIDs, func(ClassResult) {
		if !fired {
			fired = true
			panic("emit failed once")
		}
	})
	if len(results) != len(plan.classIDs) {
		t.Fatalf("one-shot emit panic: delivered %d of %d classes", len(results), len(plan.classIDs))
	}
	if res := plan.Assemble(results); res.Degraded {
		t.Error("one-shot emit panic must not degrade a fully-delivered run")
	}

	// Emit always panics: with one worker the run dies after its first
	// delivery. The missing classes must come back Degraded, not hang.
	plan.spec.Workers = 1
	results = plan.ExecuteClasses(context.Background(), plan.classIDs, func(ClassResult) {
		panic("emit always fails")
	})
	if len(results) != 1 {
		t.Fatalf("always-panic emit: delivered %d classes, want 1", len(results))
	}
	if res := plan.Assemble(results); !res.Degraded {
		t.Error("undelivered classes must degrade the assembled result")
	}
}

// TestSweepCancellation: a cancelled context stops the sweep promptly and
// reports the cancellation.
func TestSweepCancellation(t *testing.T) {
	texts := fabricTexts(t, "cx")
	base := core.LoadTextWith(pipeline.New(pipeline.Config{}), texts)
	srcs, dst := monitored(t, base, "cx-p01-tor01", "cx-p01-tor02")
	plan, err := NewPlan(base, Spec{K: 1, Links: true, Nodes: true,
		Sources: srcs, DstIPs: []ip4.Prefix{dst}, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := plan.Execute(ctx, nil)
	if err == nil {
		t.Fatal("cancelled sweep must return the context error")
	}
	if res == nil || !res.Degraded {
		t.Fatal("cancelled sweep must return a degraded partial result")
	}
}

func TestSweepSpecValidation(t *testing.T) {
	texts := fabricTexts(t, "sv")
	base := core.LoadTextWith(pipeline.New(pipeline.Config{}), texts)
	if _, err := NewPlan(base, Spec{K: 3}); err == nil {
		t.Error("k=3 must be rejected")
	}
	if _, err := NewPlan(base, Spec{K: 1, MaxScenarios: 2}); err == nil {
		t.Error("scenario cap must be enforced")
	}
	srcs, dst := monitored(t, base, "sv-p01-tor01", "sv-p01-tor02")
	p, err := NewPlan(base, Spec{Sources: srcs, DstIPs: []ip4.Prefix{dst}})
	if err != nil {
		t.Fatal(err)
	}
	// Defaults: k=1, links+nodes.
	wantElems := len(base.Net.DeviceNames()) + len(base.DataPlane().Topology.Links())
	if p.Enumerated() != wantElems {
		t.Errorf("default spec enumerated %d, want %d", p.Enumerated(), wantElems)
	}
}
