package sweep

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/pipeline"
)

// classesPerRuntime bounds how many scenario classes one worker runtime
// answers before it is rebuilt. Each Apply grows the worker's BDD factory
// (scenario-specific node tables are never freed), so recycling the
// pipeline periodically keeps a long sweep's memory flat at the cost of
// re-warming the baseline.
const classesPerRuntime = 16

// classJob is one equivalence-class representative awaiting execution.
type classJob struct {
	id      string
	retried bool
}

// jobQueue is a mutex-guarded work queue. A channel would be simpler but
// cannot express requeue-after-crash without risking deadlock when every
// worker blocks on a full channel; a slice queue can always accept the
// retried job back.
type jobQueue struct {
	mu   sync.Mutex
	jobs []classJob
}

func (q *jobQueue) pop() (classJob, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.jobs) == 0 {
		return classJob{}, false
	}
	j := q.jobs[0]
	q.jobs = q.jobs[1:]
	return j, true
}

func (q *jobQueue) push(j classJob) {
	q.mu.Lock()
	q.jobs = append(q.jobs, j)
	q.mu.Unlock()
}

// outcome is one class's computed verdicts.
type outcome struct {
	sources  []SourceVerdict
	degraded bool
}

// ClassResult is one executed equivalence class's outcome. It is the unit
// of work distribution: a cluster member executes a subset of a plan's
// classes and ships the ClassResults back to the owner, which assembles
// them with its own into the full Result.
type ClassResult struct {
	Class    string          `json:"class"`
	Sources  []SourceVerdict `json:"sources"`
	Degraded bool            `json:"degraded,omitempty"`
}

// ClassIDs returns the sorted non-baseline class IDs (a copy; the
// baseline class "" needs no execution anywhere).
func (p *Plan) ClassIDs() []string {
	out := make([]string, len(p.classIDs))
	copy(out, p.classIDs)
	return out
}

// workerRT is one worker's private execution runtime: its own pipeline
// (BDD factories are unsynchronized), its own base snapshot rebuilt from
// the plan's texts, and a warmed baseline reachability memo so every
// scenario answers incrementally.
type workerRT struct {
	base *core.Snapshot
}

func (p *Plan) newRT(ctx context.Context) (rt *workerRT, err error) {
	defer func() {
		if r := recover(); r != nil {
			rt, err = nil, fmt.Errorf("sweep: worker runtime build panicked: %v", r)
		}
	}()
	pl := pipeline.New(pipeline.Config{})
	base := core.LoadTextWithContext(ctx, pl, p.texts)
	opts := p.opts
	if p.spec.MaxIterations > 0 {
		opts.MaxIterations = p.spec.MaxIterations
	}
	// Workers saturate the machine collectively; inner simulation stages
	// run serial so the sweep's parallelism lives at the scenario level.
	opts.Parallelism = -1
	opts.Trace, opts.NowNanos = nil, nil
	base.SetDataPlaneOptions(opts)
	if p.spec.BDDBudget > 0 {
		base.SetBDDNodeBudget(p.spec.BDDBudget)
	}
	if base.Reachability(p.params); base.Degraded() {
		return nil, fmt.Errorf("sweep: worker baseline degraded")
	}
	return &workerRT{base: base}, nil
}

// runClass executes one class representative. Panics — injected worker
// kills included — surface as errors so the caller can requeue the class
// on a fresh runtime.
func (w *workerRT) runClass(p *Plan, rep Scenario, id string) (out outcome, err error) {
	defer func() {
		if r := recover(); r != nil {
			out, err = outcome{}, fmt.Errorf("sweep: class %s: panic: %v", id, r)
		}
	}()
	faults.Fire("sweep", id)
	snap := w.base.Apply(rep.overlay())
	flows := snap.Reachability(p.params)
	return outcome{sources: renderSources(p.sources, flows), degraded: snap.Degraded()}, nil
}

// verdictFor renders scenario idx's verdict from its class outcome; have
// is false when the class never completed (cancellation, lost member).
func (p *Plan) verdictFor(idx int, out outcome, have bool) Verdict {
	sc := p.scenarios[idx]
	id := sc.ID()
	v := Verdict{
		Scenario: id,
		Class:    p.classOf[idx],
		Executed: have && id == p.classOf[idx],
		Sources:  out.sources,
		Degraded: out.degraded || !have,
	}
	if have {
		v.Violations = p.violationsIn(out.sources)
	}
	return v
}

// ExecuteClasses runs the named classes (a subset of ClassIDs) on the
// worker pool and returns their outcomes sorted by class ID. emit, when
// non-nil, receives each outcome as it completes (calls are serialized).
// IDs without a representative in this plan are skipped. On cancellation
// the completed outcomes are returned; missing classes are the caller's
// to degrade (Assemble does).
func (p *Plan) ExecuteClasses(ctx context.Context, ids []string, emit func(ClassResult)) []ClassResult {
	var mu sync.Mutex // guards results and serializes emit
	var results []ClassResult
	deliver := func(id string, out outcome) {
		cr := ClassResult{Class: id, Sources: out.sources, Degraded: out.degraded}
		mu.Lock()
		// Deferred so a panicking emit callback cannot leak the lock and
		// wedge every other worker's deliver.
		defer mu.Unlock()
		results = append(results, cr)
		if emit != nil {
			emit(cr)
		}
	}

	q := &jobQueue{}
	jobs := 0
	for _, id := range ids {
		if _, ok := p.classRep[id]; !ok {
			continue // baseline or foreign class: nothing to execute
		}
		q.push(classJob{id: id})
		jobs++
	}
	workers := p.spec.Workers
	if workers > jobs {
		workers = jobs
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// The runtime-build and class-run paths recover internally; this
			// catches everything else (most plausibly a panicking emit
			// callback reached through deliver). The worker dies quietly:
			// classes it never delivered are missing from results, and
			// Assemble degrades them — the same contract as cancellation.
			// The process must survive either way.
			defer func() { recover() }()
			var rt *workerRT
			served := 0
			for ctx.Err() == nil {
				job, ok := q.pop()
				if !ok {
					return
				}
				if rt == nil || served >= classesPerRuntime {
					nrt, err := p.newRT(ctx)
					if err != nil {
						if !job.retried {
							q.push(classJob{id: job.id, retried: true})
							continue
						}
						deliver(job.id, outcome{degraded: true})
						continue
					}
					rt, served = nrt, 0
				}
				out, err := rt.runClass(p, p.classRep[job.id], job.id)
				served++
				if err != nil {
					// The runtime may hold a half-mutated factory; discard it
					// and retry the class once on a fresh one.
					rt = nil
					if !job.retried {
						q.push(classJob{id: job.id, retried: true})
						continue
					}
					out = outcome{degraded: true}
				}
				deliver(job.id, out)
			}
		}()
	}
	wg.Wait()
	sort.Slice(results, func(i, j int) bool { return results[i].Class < results[j].Class })
	return results
}

// Assemble builds the full Result from executed class outcomes (local,
// remote, or mixed). The baseline class is synthesized from the plan;
// classes with no outcome yield Degraded verdicts with no sources —
// exactly the cancellation semantics of Execute.
func (p *Plan) Assemble(results []ClassResult) *Result {
	res := &Result{
		Enumerated: len(p.scenarios),
		Classes:    p.Classes(),
		Executed:   len(p.classIDs),
		Baseline:   p.baseline,
	}
	res.Pruned = res.Enumerated - res.Executed

	outcomes := make(map[string]outcome, len(results)+1)
	// The baseline class needs no execution: no failed element touches any
	// monitored flow, so the baseline verdicts are provably the scenario
	// verdicts.
	outcomes[""] = outcome{sources: p.baseline}
	for _, cr := range results {
		outcomes[cr.Class] = outcome{sources: cr.Sources, degraded: cr.Degraded}
	}

	res.Verdicts = make([]Verdict, len(p.scenarios))
	for i := range p.scenarios {
		out, have := outcomes[p.classOf[i]]
		v := p.verdictFor(i, out, have)
		if v.Violations > 0 {
			res.Violations++
		}
		if v.Degraded {
			res.Degraded = true
		}
		res.Verdicts[i] = v
	}
	return res
}

// Execute runs the plan's class representatives across the worker pool
// and assembles the full verdict set. emit, when non-nil, receives every
// scenario's verdict as soon as its class completes (members in canonical
// enumeration order; calls are serialized). Verdict contents are
// deterministic for any worker count — only the streaming order varies —
// and Result.Verdicts is always in canonical enumeration order.
//
// On cancellation the partial result is returned alongside ctx.Err();
// classes that never completed yield Degraded verdicts with no sources.
func (p *Plan) Execute(ctx context.Context, emit func(Verdict)) (*Result, error) {
	// Class → member scenario indices, in enumeration order.
	members := make(map[string][]int, len(p.classIDs)+1)
	for i, id := range p.classOf {
		members[id] = append(members[id], i)
	}
	var mu sync.Mutex // serializes verdict emission
	emitClass := func(cr ClassResult) {
		if emit == nil {
			return
		}
		out := outcome{sources: cr.Sources, degraded: cr.Degraded}
		mu.Lock()
		for _, idx := range members[cr.Class] {
			emit(p.verdictFor(idx, out, true))
		}
		mu.Unlock()
	}

	emitClass(ClassResult{Class: "", Sources: p.baseline})
	results := p.ExecuteClasses(ctx, p.classIDs, emitClass)
	return p.Assemble(results), ctx.Err()
}

// Run is the convenience wrapper: plan and execute in one call. The
// planning stage touches base's pipeline (callers holding a lock for that
// pipeline should use NewPlan/Execute separately so execution runs
// unlocked).
func Run(ctx context.Context, base *core.Snapshot, spec Spec) (*Result, error) {
	p, err := NewPlan(base, spec)
	if err != nil {
		return nil, err
	}
	return p.Execute(ctx, nil)
}

// VerdictLess orders verdicts by scenario ID — the canonical order used
// when comparing verdict sets across runs.
func VerdictLess(a, b Verdict) bool { return a.Scenario < b.Scenario }

// SortVerdicts sorts a verdict slice into canonical order in place.
func SortVerdicts(vs []Verdict) {
	sort.Slice(vs, func(i, j int) bool { return VerdictLess(vs[i], vs[j]) })
}
