package traceroute

import (
	"testing"

	"repro/internal/acl"
	"repro/internal/config"
	"repro/internal/dataplane"
	"repro/internal/hdr"
	"repro/internal/ip4"
)

// lineNet builds r1 -- r2 -- r3 with a LAN on r1 and r3, OSPF everywhere.
func lineNet() *config.Network {
	net := config.NewNetwork()
	mk := func(name string) *config.Device {
		d := config.NewDevice(name, "vi")
		net.Devices[name] = d
		d.VRFs[config.DefaultVRF].OSPF = &config.OSPFConfig{ProcessID: 1}
		return d
	}
	r1, r2, r3 := mk("r1"), mk("r2"), mk("r3")
	add := func(d *config.Device, name, addr string, passive bool) {
		i := &config.Interface{Name: name, Active: true,
			Addresses: []ip4.Prefix{ip4.MustParsePrefix(addr)},
			OSPF:      &config.OSPFInterface{Area: 0, Cost: 10, Passive: passive}}
		d.Interfaces[name] = i
	}
	add(r1, "eth0", "10.0.12.1/30", false)
	add(r2, "eth0", "10.0.12.2/30", false)
	add(r2, "eth1", "10.0.23.2/30", false)
	add(r3, "eth0", "10.0.23.3/30", false)
	add(r1, "lan0", "192.168.1.1/24", true)
	add(r3, "lan0", "192.168.3.1/24", true)
	return net
}

func pkt(src, dst string) hdr.Packet {
	return hdr.Packet{
		SrcIP: ip4.MustParseAddr(src), DstIP: ip4.MustParseAddr(dst),
		Protocol: hdr.ProtoTCP, SrcPort: 40000, DstPort: 80,
	}
}

func runDP(net *config.Network, t *testing.T) *dataplane.Result {
	t.Helper()
	r := dataplane.Run(net, dataplane.Options{})
	if !r.Converged {
		t.Fatalf("dataplane did not converge: %v", r.Warnings)
	}
	return r
}

func TestAcceptedAtRouter(t *testing.T) {
	dp := runDP(lineNet(), t)
	e := New(dp)
	// Packet to r3's interface IP.
	ts := e.Run("r1", config.DefaultVRF, "lan0", pkt("192.168.1.10", "10.0.23.3"))
	if len(ts) != 1 {
		t.Fatalf("expected 1 trace, got %d", len(ts))
	}
	if ts[0].Disposition != Accepted || ts[0].FinalNode != "r3" {
		t.Errorf("wrong outcome: %v at %s", ts[0].Disposition, ts[0].FinalNode)
	}
	if len(ts[0].Hops) != 3 {
		t.Errorf("expected 3 hops, got %d:\n%s", len(ts[0].Hops), ts[0])
	}
}

func TestDeliveredToHostSubnet(t *testing.T) {
	dp := runDP(lineNet(), t)
	e := New(dp)
	ts := e.Run("r1", config.DefaultVRF, "lan0", pkt("192.168.1.10", "192.168.3.77"))
	if len(ts) != 1 || ts[0].Disposition != DeliveredToHost {
		t.Fatalf("expected delivered-to-host: %+v", ts)
	}
	if ts[0].FinalNode != "r3" {
		t.Errorf("should end at r3, got %s", ts[0].FinalNode)
	}
}

func TestNoRoute(t *testing.T) {
	dp := runDP(lineNet(), t)
	e := New(dp)
	ts := e.Run("r1", config.DefaultVRF, "lan0", pkt("192.168.1.10", "8.8.8.8"))
	if len(ts) != 1 || ts[0].Disposition != NoRoute {
		t.Fatalf("expected no-route: %+v", ts)
	}
}

func TestDeniedByIngressACL(t *testing.T) {
	net := lineNet()
	r2 := net.Devices["r2"]
	deny := acl.NewLine(acl.Deny, "deny http")
	deny.Protocol = hdr.ProtoTCP
	deny.DstPorts = []acl.PortRange{{Lo: 80, Hi: 80}}
	permit := acl.NewLine(acl.Permit, "permit rest")
	r2.ACLs["NO_HTTP"] = &acl.ACL{Name: "NO_HTTP", Lines: []acl.Line{deny, permit}}
	r2.Interfaces["eth0"].InACL = "NO_HTTP"
	dp := runDP(net, t)
	e := New(dp)
	ts := e.Run("r1", config.DefaultVRF, "lan0", pkt("192.168.1.10", "192.168.3.77"))
	if len(ts) != 1 || ts[0].Disposition != DeniedIn || ts[0].FinalNode != "r2" {
		t.Fatalf("expected denied-in at r2: %+v", ts)
	}
	// Non-HTTP traffic passes.
	ssh := pkt("192.168.1.10", "192.168.3.77")
	ssh.DstPort = 22
	ts = e.Run("r1", config.DefaultVRF, "lan0", ssh)
	if ts[0].Disposition != DeliveredToHost {
		t.Errorf("ssh should pass: %v", ts[0].Disposition)
	}
}

func TestDeniedByEgressACL(t *testing.T) {
	net := lineNet()
	r3 := net.Devices["r3"]
	deny := acl.NewLine(acl.Deny, "deny to lan")
	deny.DstIPs = []ip4.Prefix{ip4.MustParsePrefix("192.168.3.0/24")}
	r3.ACLs["PROTECT"] = &acl.ACL{Name: "PROTECT", Lines: []acl.Line{deny}}
	r3.Interfaces["lan0"].OutACL = "PROTECT"
	dp := runDP(net, t)
	e := New(dp)
	ts := e.Run("r1", config.DefaultVRF, "lan0", pkt("192.168.1.10", "192.168.3.77"))
	if len(ts) != 1 || ts[0].Disposition != DeniedOut || ts[0].FinalNode != "r3" {
		t.Fatalf("expected denied-out at r3: %+v", ts)
	}
}

func TestNullRoute(t *testing.T) {
	net := lineNet()
	net.Devices["r2"].VRFs[config.DefaultVRF].StaticRoutes = []config.StaticRoute{
		{Prefix: ip4.MustParsePrefix("192.168.3.0/24"), Drop: true},
	}
	dp := runDP(net, t)
	e := New(dp)
	ts := e.Run("r1", config.DefaultVRF, "lan0", pkt("192.168.1.10", "192.168.3.77"))
	// Static null (AD 1) beats the OSPF route at r2.
	if len(ts) != 1 || ts[0].Disposition != NullRouted || ts[0].FinalNode != "r2" {
		t.Fatalf("expected null-routed at r2: %+v", ts)
	}
}

func TestECMPBranches(t *testing.T) {
	// Diamond: r1 -> {a, b} -> r4, equal costs.
	net := config.NewNetwork()
	mk := func(name string) *config.Device {
		d := config.NewDevice(name, "vi")
		net.Devices[name] = d
		d.VRFs[config.DefaultVRF].OSPF = &config.OSPFConfig{ProcessID: 1}
		return d
	}
	r1, a, b, r4 := mk("r1"), mk("ra"), mk("rb"), mk("r4")
	add := func(d *config.Device, name, addr string, passive bool) {
		d.Interfaces[name] = &config.Interface{Name: name, Active: true,
			Addresses: []ip4.Prefix{ip4.MustParsePrefix(addr)},
			OSPF:      &config.OSPFInterface{Area: 0, Cost: 10, Passive: passive}}
	}
	add(r1, "up0", "10.0.1.1/30", false)
	add(a, "down0", "10.0.1.2/30", false)
	add(r1, "up1", "10.0.2.1/30", false)
	add(b, "down0", "10.0.2.2/30", false)
	add(a, "up0", "10.0.3.1/30", false)
	add(r4, "down0", "10.0.3.2/30", false)
	add(b, "up0", "10.0.4.1/30", false)
	add(r4, "down1", "10.0.4.2/30", false)
	add(r1, "lan0", "192.168.1.1/24", true)
	add(r4, "lan0", "192.168.4.1/24", true)
	dp := runDP(net, t)
	e := New(dp)
	ts := e.Run("r1", config.DefaultVRF, "lan0", pkt("192.168.1.10", "192.168.4.10"))
	if len(ts) != 2 {
		t.Fatalf("expected 2 ECMP traces, got %d", len(ts))
	}
	mids := map[string]bool{}
	for _, tr := range ts {
		if tr.Disposition != DeliveredToHost {
			t.Errorf("branch not delivered: %v", tr.Disposition)
		}
		if len(tr.Hops) != 3 {
			t.Errorf("branch hops = %d, want 3", len(tr.Hops))
		}
		mids[tr.Hops[1].Node] = true
	}
	if !mids["ra"] || !mids["rb"] {
		t.Errorf("branches should cross ra and rb: %v", mids)
	}
}

func TestLoopDetection(t *testing.T) {
	// Two routers pointing default routes at each other.
	net := config.NewNetwork()
	mk := func(name string) *config.Device {
		d := config.NewDevice(name, "vi")
		net.Devices[name] = d
		return d
	}
	r1, r2 := mk("r1"), mk("r2")
	r1.Interfaces["eth0"] = &config.Interface{Name: "eth0", Active: true,
		Addresses: []ip4.Prefix{ip4.MustParsePrefix("10.0.0.1/30")}}
	r2.Interfaces["eth0"] = &config.Interface{Name: "eth0", Active: true,
		Addresses: []ip4.Prefix{ip4.MustParsePrefix("10.0.0.2/30")}}
	r1.VRFs[config.DefaultVRF].StaticRoutes = []config.StaticRoute{
		{Prefix: ip4.MustParsePrefix("0.0.0.0/0"), NextHop: ip4.MustParseAddr("10.0.0.2")}}
	r2.VRFs[config.DefaultVRF].StaticRoutes = []config.StaticRoute{
		{Prefix: ip4.MustParsePrefix("0.0.0.0/0"), NextHop: ip4.MustParseAddr("10.0.0.1")}}
	dp := runDP(net, t)
	e := New(dp)
	ts := e.Run("r1", config.DefaultVRF, "", pkt("10.0.0.1", "8.8.8.8"))
	if len(ts) != 1 || ts[0].Disposition != Loop {
		t.Fatalf("expected loop: %+v", ts)
	}
}

func TestSourceNAT(t *testing.T) {
	net := lineNet()
	r2 := net.Devices["r2"]
	match := acl.NewLine(acl.Permit, "lan sources")
	match.SrcIPs = []ip4.Prefix{ip4.MustParsePrefix("192.168.1.0/24")}
	r2.ACLs["NAT_MATCH"] = &acl.ACL{Name: "NAT_MATCH", Lines: []acl.Line{match}}
	r2.NATRules = []config.NATRule{{
		Kind: config.SourceNAT, Iface: "eth1", MatchACL: "NAT_MATCH",
		PoolLo: ip4.MustParseAddr("100.64.0.1"), PoolHi: ip4.MustParseAddr("100.64.0.1"),
	}}
	dp := runDP(net, t)
	e := New(dp)
	ts := e.Run("r1", config.DefaultVRF, "lan0", pkt("192.168.1.10", "192.168.3.77"))
	if len(ts) != 1 || !ts[0].Disposition.Success() {
		t.Fatalf("flow should be delivered: %+v", ts)
	}
	if ts[0].FinalPacket.SrcIP != ip4.MustParseAddr("100.64.0.1") {
		t.Errorf("source not NATed: %v", ts[0].FinalPacket.SrcIP)
	}
}

func TestZonePolicyDefaultDeny(t *testing.T) {
	net := lineNet()
	r2 := net.Devices["r2"]
	r2.Zones["inside"] = &config.Zone{Name: "inside", Interfaces: []string{"eth0"}}
	r2.Zones["outside"] = &config.Zone{Name: "outside", Interfaces: []string{"eth1"}}
	// No policy inside->outside: default deny.
	dp := runDP(net, t)
	e := New(dp)
	ts := e.Run("r1", config.DefaultVRF, "lan0", pkt("192.168.1.10", "192.168.3.77"))
	if len(ts) != 1 || ts[0].Disposition != DeniedZone {
		t.Fatalf("expected denied-zone: %+v", ts)
	}
	// Add a policy with an ACL allowing TCP/80.
	allow := acl.NewLine(acl.Permit, "allow http")
	allow.Protocol = hdr.ProtoTCP
	allow.DstPorts = []acl.PortRange{{Lo: 80, Hi: 80}}
	r2.ACLs["Z_HTTP"] = &acl.ACL{Name: "Z_HTTP", Lines: []acl.Line{allow}}
	r2.ZonePolicies = []config.ZonePolicy{{FromZone: "inside", ToZone: "outside", ACL: "Z_HTTP"}}
	ts = e.Run("r1", config.DefaultVRF, "lan0", pkt("192.168.1.10", "192.168.3.77"))
	if ts[0].Disposition != DeliveredToHost {
		t.Errorf("http should pass zone policy: %v", ts[0].Disposition)
	}
	ssh := pkt("192.168.1.10", "192.168.3.77")
	ssh.DstPort = 22
	ts = e.Run("r1", config.DefaultVRF, "lan0", ssh)
	if ts[0].Disposition != DeniedZone {
		t.Errorf("ssh should be zone-denied: %v", ts[0].Disposition)
	}
}

func TestBidirectionalWithStatefulFirewall(t *testing.T) {
	net := lineNet()
	r2 := net.Devices["r2"]
	r2.Stateful = true
	// Egress ACL on the return path: only established (ACK) traffic may
	// flow r3->r1 direction... modeled as ingress ACL on eth1 denying
	// fresh SYNs from the r3 side.
	denySyn := acl.NewLine(acl.Deny, "no inbound syn")
	denySyn.Protocol = hdr.ProtoTCP
	denySyn.TCPFlags = &acl.TCPFlagsMatch{Mask: hdr.FlagSYN | hdr.FlagACK, Value: hdr.FlagSYN}
	permit := acl.NewLine(acl.Permit, "rest")
	r2.ACLs["NO_SYN"] = &acl.ACL{Name: "NO_SYN", Lines: []acl.Line{denySyn, permit}}
	r2.Interfaces["eth1"].InACL = "NO_SYN"
	dp := runDP(net, t)
	e := New(dp)
	// Forward flow from r1 LAN establishes a session on r2.
	syn := pkt("192.168.1.10", "192.168.3.77")
	syn.TCPFlags = hdr.FlagSYN
	fwd, rev := e.Bidirectional("r1", config.DefaultVRF, "lan0", syn)
	if len(fwd) != 1 || !fwd[0].Disposition.Success() {
		t.Fatalf("forward failed: %+v", fwd)
	}
	if len(rev) != 1 || !rev[0].Disposition.Success() {
		t.Fatalf("return should use session fast path: %+v", rev)
	}
	// A fresh SYN from the r3 side must be blocked.
	e.ClearSessions()
	freshSyn := pkt("192.168.3.77", "192.168.1.10")
	freshSyn.TCPFlags = hdr.FlagSYN
	ts := e.Run("r3", config.DefaultVRF, "lan0", freshSyn)
	if len(ts) != 1 || ts[0].Disposition != DeniedIn {
		t.Errorf("fresh SYN should be denied: %+v", ts)
	}
}

func TestDestNAT(t *testing.T) {
	net := lineNet()
	r3 := net.Devices["r3"]
	match := acl.NewLine(acl.Permit, "vip")
	match.DstIPs = []ip4.Prefix{ip4.MustParsePrefix("10.0.23.3/32")}
	match.Protocol = hdr.ProtoTCP
	match.DstPorts = []acl.PortRange{{Lo: 80, Hi: 80}}
	r3.ACLs["VIP"] = &acl.ACL{Name: "VIP", Lines: []acl.Line{match}}
	r3.NATRules = []config.NATRule{{
		Kind: config.DestNAT, MatchACL: "VIP",
		PoolLo: ip4.MustParseAddr("192.168.3.80"), PoolHi: ip4.MustParseAddr("192.168.3.80"),
	}}
	dp := runDP(net, t)
	e := New(dp)
	ts := e.Run("r1", config.DefaultVRF, "lan0", pkt("192.168.1.10", "10.0.23.3"))
	if len(ts) != 1 {
		t.Fatalf("expected 1 trace: %+v", ts)
	}
	if ts[0].Disposition != DeliveredToHost {
		t.Fatalf("DNAT flow should reach the server subnet: %v\n%s", ts[0].Disposition, ts[0])
	}
	if ts[0].FinalPacket.DstIP != ip4.MustParseAddr("192.168.3.80") {
		t.Errorf("dst not translated: %v", ts[0].FinalPacket.DstIP)
	}
}

func TestTraceString(t *testing.T) {
	dp := runDP(lineNet(), t)
	e := New(dp)
	ts := e.Run("r1", config.DefaultVRF, "lan0", pkt("192.168.1.10", "10.0.23.3"))
	if len(ts) == 0 || ts[0].String() == "" {
		t.Error("trace rendering empty")
	}
}
