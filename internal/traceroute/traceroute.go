// Package traceroute is the concrete-packet forwarding engine: it pushes a
// single packet through the computed data plane and records every step.
// It is one of Batfish's two independent forwarding engines — the symbolic
// BDD engine (package reach) is the other — and the pair is differentially
// tested against each other to find modeling bugs (paper §4.3.2).
//
// The engine models the generalized device pipeline of paper §7.2:
// ingress ACL → destination NAT → forwarding lookup → source NAT →
// egress ACL, plus firewall session state for return traffic.
package traceroute

import (
	"fmt"
	"strings"

	"repro/internal/acl"
	"repro/internal/config"
	"repro/internal/dataplane"
	"repro/internal/hdr"
	"repro/internal/ip4"
)

// Disposition classifies where a flow ended up, mirroring the sink nodes of
// the dataflow graph so the two engines are directly comparable.
type Disposition string

// Dispositions.
const (
	Accepted        Disposition = "accepted"          // delivered to a device that owns the dst IP
	DeniedIn        Disposition = "denied-in"         // dropped by an ingress ACL
	DeniedOut       Disposition = "denied-out"        // dropped by an egress ACL
	DeniedZone      Disposition = "denied-zone"       // dropped by a zone policy
	NoRoute         Disposition = "no-route"          // no FIB entry
	NullRouted      Disposition = "null-routed"       // discarded by a null route
	ExitsNetwork    Disposition = "exits-network"     // left the modeled network
	DeliveredToHost Disposition = "delivered-to-host" // delivered into an edge subnet
	Loop            Disposition = "loop"              // forwarding loop detected
)

// Success reports whether the disposition counts as "delivered" for
// reachability purposes (matching the reach engine's success sinks).
func (d Disposition) Success() bool {
	return d == Accepted || d == ExitsNetwork || d == DeliveredToHost
}

// Hop is one step of the trace, annotated with the state that explains it
// (paper §4.4.3: "we annotate example packets with as much context as
// possible, such as the routing and ACL entries that they hit").
type Hop struct {
	Node    string
	VRF     string
	InIface string // empty for the first hop
	// Steps lists pipeline events on this node, in order.
	Steps []string
	// OutIface is where the packet left ("" if it terminated here).
	OutIface string
	Packet   hdr.Packet // packet as it arrived at this node (pre-NAT)
}

// Trace is one simulated path (ECMP produces several).
type Trace struct {
	Disposition Disposition
	Hops        []Hop
	FinalNode   string
	FinalPacket hdr.Packet
}

func (t Trace) String() string {
	var b strings.Builder
	for i, h := range t.Hops {
		fmt.Fprintf(&b, "%d. %s", i+1, h.Node)
		if h.InIface != "" {
			fmt.Fprintf(&b, " in=%s", h.InIface)
		}
		if h.OutIface != "" {
			fmt.Fprintf(&b, " out=%s", h.OutIface)
		}
		for _, s := range h.Steps {
			fmt.Fprintf(&b, "\n     %s", s)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "=> %s", t.Disposition)
	return b.String()
}

// Session is firewall state installed by a forward flow, matched by return
// traffic (paper §4.2.3 "stateful devices").
type Session struct {
	Node    string
	Proto   uint8
	SrcIP   ip4.Addr // forward-direction source, post-NAT (as sent onward)
	DstIP   ip4.Addr
	SrcPort uint16
	DstPort uint16
	// Pre-NAT source, for reverse translation of return traffic.
	OrigSrcIP   ip4.Addr
	OrigSrcPort uint16
}

// Engine runs traceroutes over a computed data plane.
type Engine struct {
	dp *dataplane.Result
	// sessions installed by forward flows, per node.
	sessions map[string][]Session
}

// New creates a traceroute engine.
func New(dp *dataplane.Result) *Engine {
	return &Engine{dp: dp, sessions: make(map[string][]Session)}
}

// MaxHops bounds path length before declaring a loop.
const MaxHops = 64

// Run traces the packet from (node, vrf, inIface); inIface may be "" for a
// packet originated by the node itself. All ECMP branches are explored.
func (e *Engine) Run(node, vrf, inIface string, p hdr.Packet) []Trace {
	var traces []Trace
	seen := make(map[visitKey]bool)
	e.step(node, vrf, inIface, p, Trace{}, seen, &traces, true)
	return traces
}

type visitKey struct {
	node string
	p    hdr.Packet
}

func (e *Engine) step(node, vrf, inIface string, p hdr.Packet, acc Trace, seen map[visitKey]bool, out *[]Trace, first bool) {
	vk := visitKey{node: node, p: p}
	if seen[vk] {
		acc.Disposition = Loop
		acc.FinalNode = node
		acc.FinalPacket = p
		*out = append(*out, acc)
		return
	}
	seen[vk] = true
	defer delete(seen, vk) // backtracking share across ECMP branches

	d := e.dp.Network.Devices[node]
	ns := e.dp.Nodes[node]
	hop := Hop{Node: node, VRF: vrf, InIface: inIface, Packet: p}

	finish := func(disp Disposition) {
		acc.Hops = append(acc.Hops, hop)
		acc.Disposition = disp
		acc.FinalNode = node
		acc.FinalPacket = p
		*out = append(*out, acc)
	}

	// Session fast path: established return traffic bypasses filters
	// (paper §4.2.3).
	sessionMatched := false
	for _, s := range e.sessions[node] {
		if s.Proto == p.Protocol && s.SrcIP == p.DstIP && s.DstIP == p.SrcIP &&
			s.SrcPort == p.DstPort && s.DstPort == p.SrcPort {
			hop.Steps = append(hop.Steps, "matched session (fast path)")
			// Reverse-translate NATed return traffic.
			if s.OrigSrcIP != s.SrcIP || s.OrigSrcPort != s.SrcPort {
				hop.Steps = append(hop.Steps, fmt.Sprintf("session un-NAT %s -> %s", p.DstIP, s.OrigSrcIP))
				p.DstIP = s.OrigSrcIP
				p.DstPort = s.OrigSrcPort
			}
			sessionMatched = true
			break
		}
	}

	// Ingress processing (not for locally originated packets).
	if inIface != "" && !sessionMatched {
		ii := d.Interfaces[inIface]
		if ii != nil && ii.InACL != "" {
			if a, ok := d.ACLs[ii.InACL]; ok {
				disp := a.Eval(p)
				hop.Steps = append(hop.Steps, fmt.Sprintf("ingress acl %s: %s (%s)", ii.InACL, disp.Action, disp.LineName))
				if disp.Action == acl.Deny {
					finish(DeniedIn)
					return
				}
			}
		}
		// Destination NAT on ingress.
		for _, nr := range d.NATRules {
			if nr.Kind != config.DestNAT {
				continue
			}
			if nr.Iface != "" && nr.Iface != inIface {
				continue
			}
			if !natMatches(d, nr, p) {
				continue
			}
			old := p.DstIP
			p.DstIP = nr.PoolLo
			if nr.PortLo != 0 {
				p.DstPort = nr.PortLo
			}
			hop.Steps = append(hop.Steps, fmt.Sprintf("dest NAT %s -> %s", old, p.DstIP))
			break
		}
	}

	// Accepted if the device owns the destination IP.
	if ownsIP(d, p.DstIP) {
		hop.Steps = append(hop.Steps, "destination IP owned by device")
		finish(Accepted)
		return
	}

	// Forwarding lookup.
	vs := ns.VRFs[vrf]
	if vs == nil || vs.FIB == nil {
		finish(NoRoute)
		return
	}
	entry := vs.FIB.Lookup(p.DstIP)
	if entry == nil {
		hop.Steps = append(hop.Steps, "no FIB entry")
		finish(NoRoute)
		return
	}
	hop.Steps = append(hop.Steps, fmt.Sprintf("fib match %s -> %d next hop(s)", entry.Prefix, len(entry.NextHops)))

	// Zone policy: traffic crossing from inIface's zone to the egress
	// zone must be permitted by the zone policy (checked per next hop).
	for _, nh := range entry.NextHops {
		// Deep-copy the hop and accumulated trace for this ECMP branch so
		// branches never share append targets.
		branch := hop
		branch.Steps = append([]string(nil), hop.Steps...)
		bp := p
		branchAcc := acc
		branchAcc.Hops = append([]Hop(nil), acc.Hops...)
		if nh.Drop {
			branch.Steps = append(branch.Steps, "null route")
			branchAcc.Hops = append(branchAcc.Hops, branch)
			branchAcc.Disposition = NullRouted
			branchAcc.FinalNode = node
			branchAcc.FinalPacket = bp
			*out = append(*out, branchAcc)
			continue
		}
		oi := d.Interfaces[nh.Iface]
		if oi == nil {
			branch.Steps = append(branch.Steps, "missing out interface "+nh.Iface)
			branchAcc.Hops = append(branchAcc.Hops, branch)
			branchAcc.Disposition = NoRoute
			branchAcc.FinalNode = node
			branchAcc.FinalPacket = bp
			*out = append(*out, branchAcc)
			continue
		}
		// Zone check.
		if !sessionMatched && inIface != "" {
			fromZone := d.ZoneOf(inIface)
			toZone := d.ZoneOf(nh.Iface)
			if denied, why := zoneDenies(d, fromZone, toZone, bp); denied {
				branch.Steps = append(branch.Steps, why)
				branchAcc.Hops = append(branchAcc.Hops, branch)
				branchAcc.Disposition = DeniedZone
				branchAcc.FinalNode = node
				branchAcc.FinalPacket = bp
				*out = append(*out, branchAcc)
				continue
			} else if why != "" {
				branch.Steps = append(branch.Steps, why)
			}
		}
		// Source NAT on egress.
		if !sessionMatched {
			for _, nr := range d.NATRules {
				if nr.Kind != config.SourceNAT {
					continue
				}
				if nr.Iface != "" && nr.Iface != nh.Iface {
					continue
				}
				if !natMatches(d, nr, bp) {
					continue
				}
				old := bp.SrcIP
				bp.SrcIP = nr.PoolLo
				if nr.PortLo != 0 {
					bp.SrcPort = nr.PortLo
				}
				branch.Steps = append(branch.Steps, fmt.Sprintf("source NAT %s -> %s", old, bp.SrcIP))
				break
			}
		}
		// Egress ACL (post-NAT headers, the vendor-general pipeline).
		if !sessionMatched && oi.OutACL != "" {
			if a, ok := d.ACLs[oi.OutACL]; ok {
				disp := a.Eval(bp)
				branch.Steps = append(branch.Steps, fmt.Sprintf("egress acl %s: %s (%s)", oi.OutACL, disp.Action, disp.LineName))
				if disp.Action == acl.Deny {
					branchAcc.Hops = append(branchAcc.Hops, branch)
					branchAcc.Disposition = DeniedOut
					branchAcc.FinalNode = node
					branchAcc.FinalPacket = bp
					*out = append(*out, branchAcc)
					continue
				}
			}
		}
		// Install a firewall session on stateful devices.
		if d.Stateful && !sessionMatched {
			e.sessions[node] = append(e.sessions[node], Session{
				Node: node, Proto: bp.Protocol,
				SrcIP: bp.SrcIP, DstIP: bp.DstIP,
				SrcPort: bp.SrcPort, DstPort: bp.DstPort,
				OrigSrcIP: p.SrcIP, OrigSrcPort: p.SrcPort,
			})
			branch.Steps = append(branch.Steps, "session installed")
		}
		branch.OutIface = nh.Iface
		// Determine the neighbor: explicit resolution, else by who owns
		// the destination on this subnet.
		next, nextIface := e.neighborOn(node, nh.Iface, nh.IP, bp.DstIP)
		if next == "" {
			branch.Steps = append(branch.Steps, "no neighbor on "+nh.Iface)
			branchAcc.Hops = append(branchAcc.Hops, branch)
			branchAcc.FinalNode = node
			branchAcc.FinalPacket = bp
			if e.ifaceSubnetContains(d, nh.Iface, bp.DstIP) {
				branchAcc.Disposition = DeliveredToHost
			} else {
				branchAcc.Disposition = ExitsNetwork
			}
			*out = append(*out, branchAcc)
			continue
		}
		branchAcc.Hops = append(branchAcc.Hops, branch)
		nextVRF := config.DefaultVRF
		if nd := e.dp.Network.Devices[next]; nd != nil {
			if nif := nd.Interfaces[nextIface]; nif != nil {
				nextVRF = nif.VRFOrDefault()
			}
		}
		e.step(next, nextVRF, nextIface, bp, branchAcc, seen, out, false)
	}
	_ = first
}

// neighborOn resolves the next device: prefer the ARP next-hop IP's owner
// on the link, else (connected route) the owner of the destination itself.
func (e *Engine) neighborOn(node, iface string, nhIP, dstIP ip4.Addr) (string, string) {
	target := nhIP
	if target == 0 {
		target = dstIP
	}
	for _, ed := range e.dp.Topology.EdgesFrom(node, iface) {
		rd := e.dp.Network.Devices[ed.Node2]
		ri := rd.Interfaces[ed.Iface2]
		if ri == nil {
			continue
		}
		for _, p := range ri.Addresses {
			if p.Addr == target {
				return ed.Node2, ed.Iface2
			}
		}
	}
	return "", ""
}

func (e *Engine) ifaceSubnetContains(d *config.Device, iface string, a ip4.Addr) bool {
	i := d.Interfaces[iface]
	if i == nil {
		return false
	}
	for _, p := range i.Addresses {
		if p.Len < 32 && p.Contains(a) {
			return true
		}
	}
	return false
}

func ownsIP(d *config.Device, a ip4.Addr) bool {
	for _, i := range d.Interfaces {
		if !i.Active {
			continue
		}
		for _, p := range i.Addresses {
			if p.Addr == a {
				return true
			}
		}
	}
	return false
}

func natMatches(d *config.Device, nr config.NATRule, p hdr.Packet) bool {
	if nr.MatchACL == "" {
		return true
	}
	a, ok := d.ACLs[nr.MatchACL]
	if !ok {
		return false
	}
	return a.Eval(p).Action == acl.Permit
}

func zoneDenies(d *config.Device, from, to string, p hdr.Packet) (bool, string) {
	if len(d.Zones) == 0 || from == "" && to == "" {
		return false, ""
	}
	if from == to {
		return false, "intra-zone traffic permitted"
	}
	for _, zp := range d.ZonePolicies {
		if zp.FromZone != from || zp.ToZone != to {
			continue
		}
		if zp.ACL == "" {
			return false, fmt.Sprintf("zone policy %s->%s permits", from, to)
		}
		if a, ok := d.ACLs[zp.ACL]; ok {
			if a.Eval(p).Action == acl.Permit {
				return false, fmt.Sprintf("zone policy %s->%s acl %s permits", from, to, zp.ACL)
			}
			return true, fmt.Sprintf("zone policy %s->%s acl %s denies", from, to, zp.ACL)
		}
		return false, fmt.Sprintf("zone policy %s->%s references undefined acl", from, to)
	}
	return true, fmt.Sprintf("no zone policy %s->%s (default deny)", from, to)
}

// ClearSessions removes all installed firewall sessions.
func (e *Engine) ClearSessions() { e.sessions = make(map[string][]Session) }

// Bidirectional traces the forward flow and, for each delivered forward
// trace, the reverse flow with firewall sessions installed — the
// bidirectional reachability analysis of paper §4.2.3 at the concrete
// level.
func (e *Engine) Bidirectional(node, vrf, inIface string, p hdr.Packet) (fwd, rev []Trace) {
	e.ClearSessions()
	fwd = e.Run(node, vrf, inIface, p)
	for _, t := range fwd {
		if !t.Disposition.Success() {
			continue
		}
		back := t.FinalPacket
		back.SrcIP, back.DstIP = back.DstIP, back.SrcIP
		back.SrcPort, back.DstPort = back.DstPort, back.SrcPort
		if back.Protocol == hdr.ProtoTCP {
			back.TCPFlags = hdr.FlagSYN | hdr.FlagACK
		}
		rev = append(rev, e.Run(t.FinalNode, vrf, "", back)...)
	}
	return fwd, rev
}
