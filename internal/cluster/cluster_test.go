package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/netgen"
	"repro/internal/server"
)

// smallFabric renders the 10-device Clos fabric the cheap tests use.
func smallFabric(name string) map[string]string {
	gen := netgen.Fabric(netgen.FabricParams{Name: name, Spines: 2, Pods: 2,
		AggPerPod: 2, TorPerPod: 2, HostNetsPerTor: 1, Multipath: true})
	texts := make(map[string]string, len(gen.Devices))
	for _, d := range gen.Devices {
		texts[d.Hostname] = d.Text
	}
	return texts
}

// testNode is one in-process cluster member: a server, its node wrapper,
// and a listener.
type testNode struct {
	id  string
	srv *server.Server
	n   *cluster.Node
	ts  *httptest.Server
}

// startNode builds and starts a member. join == "" makes it the
// coordinator.
func startNode(t *testing.T, id, join string, scfg server.Config, ccfg cluster.Config) *testNode {
	t.Helper()
	if scfg.Seed == 0 {
		scfg.Seed = 1
	}
	srv, err := server.New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	ccfg.ID = id
	ccfg.Server = srv
	ccfg.Logf = t.Logf
	n, err := cluster.NewNode(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(n.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(n.Kill)
	if err := n.Start(context.Background(), ts.URL, join); err != nil {
		t.Fatal(err)
	}
	return &testNode{id: id, srv: srv, n: n, ts: ts}
}

// fastCfg keeps membership churn quick for tests that wait on the
// failure detector.
func fastCfg(hb time.Duration) cluster.Config {
	return cluster.Config{Heartbeat: hb, SuspectAfter: 4 * hb, FailoverWait: 8 * hb}
}

// ownedBy finds a snapshot name the given member owns under the view —
// and, when heir is non-empty, whose ownership falls over to heir once
// owner leaves.
func ownedBy(t *testing.T, members []cluster.Member, owner, heir string) string {
	t.Helper()
	for i := 0; i < 4096; i++ {
		name := fmt.Sprintf("snap%04d", i)
		if cluster.OwnerOf(members, name).ID != owner {
			continue
		}
		if heir == "" {
			return name
		}
		var survivors []cluster.Member
		for _, m := range members {
			if m.ID != owner {
				survivors = append(survivors, m)
			}
		}
		if cluster.OwnerOf(survivors, name).ID == heir {
			return name
		}
	}
	t.Fatalf("no snapshot name owned by %s (heir %s) in 4096 candidates", owner, heir)
	return ""
}

// doJSON performs a request and decodes the server's JSON envelope.
func doJSON(t *testing.T, c *http.Client, method, url string, body any, hdr map[string]string) (*http.Response, map[string]any) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := c.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil && err != io.EOF {
		t.Fatalf("%s %s: decode: %v", method, url, err)
	}
	return resp, m
}

// waitMembers polls a node's view until it has n members (or fails).
func waitMembers(t *testing.T, nd *testNode, n int, within time.Duration) cluster.View {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		v := nd.n.View()
		if len(v.Members) == n {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never saw %d members; view %+v", nd.id, n, v)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func srcQuery(texts map[string]string) string {
	devs := make([]string, 0, len(texts))
	for d := range texts {
		if strings.Contains(d, "tor") {
			devs = append(devs, d)
		}
	}
	sort.Strings(devs)
	return "src=" + devs[0] + "/host1"
}

func TestOwnerOfProperties(t *testing.T) {
	members := []cluster.Member{{ID: "a", Addr: "x"}, {ID: "b", Addr: "y"}, {ID: "c", Addr: "z"}}
	owners := make(map[string]string)
	for i := 0; i < 200; i++ {
		name := fmt.Sprintf("s%d", i)
		owners[name] = cluster.OwnerOf(members, name).ID
	}
	// Order independence.
	shuffled := []cluster.Member{members[2], members[0], members[1]}
	for name, want := range owners {
		if got := cluster.OwnerOf(shuffled, name).ID; got != want {
			t.Fatalf("member order changed owner of %s: %s vs %s", name, got, want)
		}
	}
	// Minimal disturbance: dropping b moves only b's snapshots.
	survivors := []cluster.Member{members[0], members[2]}
	moved := 0
	for name, was := range owners {
		got := cluster.OwnerOf(survivors, name).ID
		if was == "b" {
			moved++
			if got == "b" {
				t.Fatalf("dead member still owns %s", name)
			}
		} else if got != was {
			t.Fatalf("snapshot %s moved from surviving owner %s to %s", name, was, got)
		}
	}
	if moved == 0 {
		t.Fatal("no snapshot was owned by b; test is vacuous")
	}
	if got := cluster.OwnerOf(nil, "s"); got.ID != "" {
		t.Fatalf("empty view produced owner %+v", got)
	}
}

func TestMembershipJoinDetectorAndReadmission(t *testing.T) {
	hb := 25 * time.Millisecond
	n1 := startNode(t, "m1", "", server.Config{}, fastCfg(hb))
	n2 := startNode(t, "m2", n1.ts.URL, server.Config{}, fastCfg(hb))
	n3 := startNode(t, "m3", n1.ts.URL, server.Config{}, fastCfg(hb))

	v := waitMembers(t, n1, 3, 2*time.Second)
	if v.Members[0].Role != cluster.RoleCoordinator || v.Members[1].Role != cluster.RoleMember {
		t.Fatalf("roles: %+v", v.Members)
	}
	// Members learn the view from heartbeat responses.
	waitMembers(t, n2, 3, 2*time.Second)

	// Partition m3: its heartbeats are injected to fail. The detector
	// must reap it within the suspicion window.
	restore := faults.Activate(faults.New().Enable("cluster-heartbeat", "m3", faults.Rule{Kind: faults.Error}))
	epochBefore := n1.n.View().Epoch
	v = waitMembers(t, n1, 2, 2*time.Second)
	if v.Epoch <= epochBefore {
		t.Fatalf("epoch did not advance on failure: %d -> %d", epochBefore, v.Epoch)
	}
	if n1.n.Metrics().MembersFailed != 1 {
		t.Fatalf("metrics: %+v", n1.n.Metrics())
	}
	if m := n3.n.Metrics(); m.HeartbeatsDropped == 0 {
		t.Fatalf("partition never dropped a heartbeat: %+v", m)
	}

	// Heal the partition: the next heartbeat re-admits m3.
	restore()
	waitMembers(t, n1, 3, 2*time.Second)

	// Graceful drain: m3 leaves the view and its server sheds new work.
	// Pick a name m3 believes it owns so the post-drain probe is served
	// locally rather than forwarded to a healthy member.
	owned := ownedBy(t, n3.n.View().Members, "m3", "")
	resp, _ := doJSON(t, n3.ts.Client(), http.MethodPost, n3.ts.URL+"/cluster/drain", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain status %d", resp.StatusCode)
	}
	v = waitMembers(t, n1, 2, 2*time.Second)
	for _, m := range v.Members {
		if m.ID == "m3" {
			t.Fatal("drained member still in view")
		}
	}
	if !n3.srv.Draining() {
		t.Fatal("drained node's server is not draining")
	}
	resp, body := doJSON(t, n3.ts.Client(), http.MethodPut, n3.ts.URL+"/snapshots/"+owned,
		map[string]any{"configs": map[string]string{"r1": "hostname r1\nend\n"}}, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("drained member answered %d %v", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("drained 503 without Retry-After")
	}
}

// TestForwardingOwnershipAndManifest: a 2-member cluster must serve a
// snapshot identically through either node — the non-owner forwarding
// with the hop header — and the owner must persist a manifest for
// failover. A pre-forwarded request for an unowned snapshot is a loop
// and dies with 502.
func TestForwardingOwnershipAndManifest(t *testing.T) {
	dir := t.TempDir()
	hb := 50 * time.Millisecond
	n1 := startNode(t, "m1", "", server.Config{CacheDir: dir}, fastCfg(hb))
	n2 := startNode(t, "m2", n1.ts.URL, server.Config{CacheDir: dir, Seed: 2}, fastCfg(hb))
	v := waitMembers(t, n1, 2, 2*time.Second)

	texts := smallFabric("sm")
	name := ownedBy(t, v.Members, "m2", "")
	c := n1.ts.Client()

	// Load through the non-owner: forwarded to m2, manifest persisted.
	resp, body := doJSON(t, c, http.MethodPut, n1.ts.URL+"/snapshots/"+name,
		map[string]any{"configs": texts}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded load: %d %v", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Batfish-Forwarded-By"); got != "m1" {
		t.Fatalf("forwarded-by header %q, want m1", got)
	}
	if !n2.srv.HasSnapshot(name) {
		t.Fatal("owner does not hold the forwarded snapshot")
	}
	if n1.srv.HasSnapshot(name) {
		t.Fatal("forwarder holds the snapshot it forwarded")
	}
	if m := n2.n.Metrics(); m.ManifestPuts != 1 {
		t.Fatalf("owner manifest puts: %+v", m)
	}

	// Byte-identical answers through both nodes.
	q := "/snapshots/" + name + "/reachability?" + srcQuery(texts)
	_, viaFwd := doJSON(t, c, http.MethodGet, n1.ts.URL+q, nil, nil)
	_, direct := doJSON(t, c, http.MethodGet, n2.ts.URL+q, nil, nil)
	if viaFwd["text"] == "" || viaFwd["text"] != direct["text"] {
		t.Fatalf("forwarded answer differs from direct:\n%v\n%v", viaFwd["text"], direct["text"])
	}
	if m := n1.n.Metrics(); m.Forwarded < 2 {
		t.Fatalf("forwarder metrics: %+v", m)
	}

	// Hop limit 1: m1 does not own the snapshot, and the request claims
	// it was already forwarded — refuse, do not forward again.
	resp, body = doJSON(t, c, http.MethodGet, n1.ts.URL+q, nil,
		map[string]string{"X-Batfish-Forwarded-By": "m9"})
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("loop got %d %v, want 502", resp.StatusCode, body)
	}
	if m := n1.n.Metrics(); m.ForwardLoops != 1 {
		t.Fatalf("loop not counted: %+v", m)
	}
}

// TestForwardRelaysShedding is the Retry-After satellite: 429 from the
// owner's full admission queue and 503 from its drain must arrive at the
// client with the owner's Retry-After intact and the forwarder's hop
// header — and without counting as the forwarder's own shedding.
func TestForwardRelaysShedding(t *testing.T) {
	hb := 50 * time.Millisecond
	n1 := startNode(t, "m1", "", server.Config{}, fastCfg(hb))
	n2 := startNode(t, "m2", n1.ts.URL,
		server.Config{MaxConcurrent: 1, MaxQueue: -1, QueueWait: 7 * time.Second, Seed: 2}, fastCfg(hb))
	v := waitMembers(t, n1, 2, 2*time.Second)

	texts := smallFabric("sm")
	name := ownedBy(t, v.Members, "m2", "")
	c := n1.ts.Client()
	resp, body := doJSON(t, c, http.MethodPut, n1.ts.URL+"/snapshots/"+name,
		map[string]any{"configs": texts}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("load: %d %v", resp.StatusCode, body)
	}

	// Hold the owner's only execution slot; with a negative queue bound
	// every waiter is shed with 429 + Retry-After = QueueWait.
	release, err := n2.srv.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	q := "/snapshots/" + name + "/reachability?" + srcQuery(texts)
	resp, body = doJSON(t, c, http.MethodGet, n1.ts.URL+q, nil, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed relay got %d %v, want 429", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After %q did not survive the hop, want 7", got)
	}
	if got := resp.Header.Get("X-Batfish-Forwarded-By"); got != "m1" {
		t.Fatalf("forwarded-by %q", got)
	}
	release()

	// Drain the owner's server (not the node: it stays in the view, as a
	// member mid-SIGTERM briefly does) — the 503 relays the same way.
	if err := n2.srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, body = doJSON(t, c, http.MethodGet, n1.ts.URL+q, nil, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("drain relay got %d %v, want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("relayed 503 lost Retry-After")
	}
	m := n1.n.Metrics()
	if m.Relayed429 != 1 || m.Relayed503 != 1 {
		t.Fatalf("relay counters: %+v", m)
	}
	if sm := n1.srv.Metrics(); sm.Shed429 != 0 || sm.Shed503 != 0 {
		t.Fatalf("forwarder counted relayed shedding as its own: %+v", sm)
	}
}

// TestBreakerUnderForwarding is the breaker satellite: the owner's
// per-snapshot circuit breaker trips on repeated question failures and
// its 503 surfaces through the forwarding member — whose own breaker
// (and trip counter) must stay untouched.
func TestBreakerUnderForwarding(t *testing.T) {
	hb := 50 * time.Millisecond
	n1 := startNode(t, "m1", "", server.Config{}, fastCfg(hb))
	n2 := startNode(t, "m2", n1.ts.URL,
		server.Config{Retries: -1, BreakerThreshold: 2, BreakerCooldown: time.Minute, Seed: 2}, fastCfg(hb))
	v := waitMembers(t, n1, 2, 2*time.Second)

	texts := smallFabric("sm")
	name := ownedBy(t, v.Members, "m2", "")
	c := n1.ts.Client()
	resp, body := doJSON(t, c, http.MethodPut, n1.ts.URL+"/snapshots/"+name,
		map[string]any{"configs": texts}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("load: %d %v", resp.StatusCode, body)
	}

	// Every reachability run on the owner panics (contained as degraded).
	// Only the owner executes questions, so the rule bites only there.
	restore := faults.Activate(faults.New().Enable("server", "reachability", faults.Rule{Kind: faults.Panic}))
	defer restore()

	q := "/snapshots/" + name + "/reachability?" + srcQuery(texts)
	for i := 0; i < 2; i++ {
		resp, body = doJSON(t, c, http.MethodGet, n1.ts.URL+q, nil, nil)
		if resp.StatusCode != http.StatusOK || body["exit_code"] != float64(server.ExitDegraded) {
			t.Fatalf("failure %d: %d %v", i, resp.StatusCode, body)
		}
	}
	resp, body = doJSON(t, c, http.MethodGet, n1.ts.URL+q, nil, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("tripped breaker got %d %v, want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" || resp.Header.Get("X-Batfish-Forwarded-By") != "m1" {
		t.Fatalf("relayed breaker 503 headers: %+v", resp.Header)
	}
	if trips := n2.srv.Metrics().BreakerTrips; trips != 1 {
		t.Fatalf("owner breaker trips = %d, want 1", trips)
	}
	if trips := n1.srv.Metrics().BreakerTrips; trips != 0 {
		t.Fatalf("forwarder's breaker tripped (%d) for the owner's failures", trips)
	}
	if m := n1.n.Metrics(); m.Relayed503 == 0 {
		t.Fatalf("breaker 503 not counted as relay: %+v", m)
	}
}

// TestDrainHandsOffOwnershipAndWarmStart: draining the owner moves its
// snapshot to the survivor, which rehydrates it from the shared-cache
// manifest and answers byte-identically — warm-started from the dead
// member's cached artifacts.
func TestDrainHandsOffOwnershipAndWarmStart(t *testing.T) {
	dir := t.TempDir()
	hb := 50 * time.Millisecond
	n1 := startNode(t, "m1", "", server.Config{CacheDir: dir}, fastCfg(hb))
	n2 := startNode(t, "m2", n1.ts.URL, server.Config{CacheDir: dir, Seed: 2}, fastCfg(hb))
	v := waitMembers(t, n1, 2, 2*time.Second)

	texts := smallFabric("sm")
	name := ownedBy(t, v.Members, "m2", "m1")
	c := n1.ts.Client()
	resp, body := doJSON(t, c, http.MethodPut, n1.ts.URL+"/snapshots/"+name,
		map[string]any{"configs": texts}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("load: %d %v", resp.StatusCode, body)
	}
	q := "/snapshots/" + name + "/reachability?" + srcQuery(texts)
	_, before := doJSON(t, c, http.MethodGet, n1.ts.URL+q, nil, nil)
	if before["text"] == "" {
		t.Fatal("pre-drain answer empty")
	}

	resp, _ = doJSON(t, n2.ts.Client(), http.MethodPost, n2.ts.URL+"/cluster/drain", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain status %d", resp.StatusCode)
	}
	waitMembers(t, n1, 1, 2*time.Second)

	_, after := doJSON(t, c, http.MethodGet, n1.ts.URL+q, nil, nil)
	if after["text"] != before["text"] {
		t.Fatalf("failover answer differs:\n--- before ---\n%v\n--- after ---\n%v",
			before["text"], after["text"])
	}
	if m := n1.n.Metrics(); m.Rehydrations != 1 {
		t.Fatalf("heir did not rehydrate: %+v", m)
	}
	if d := n1.srv.Metrics().Disk; d.Hits == 0 {
		t.Fatalf("heir rebuilt cold (no shared-cache hits): %+v", d)
	}
}
