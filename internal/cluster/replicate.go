package cluster

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/faults"
)

// Anti-entropy heir replication. Failover rehydration is only warm if
// the heir's disk cache holds the dead owner's artifacts when the view
// changes. With one shared cache directory that is automatic; what this
// loop adds is *proactive* warmth: every member periodically asks every
// other member what snapshots it holds (with the manifest and artifact
// cache keys), keeps only the ones it is heir to — next in rendezvous
// order after the owner — and makes sure each key is present locally. In
// a shared directory "present" means adopting the owner's commit into
// the local index; with per-member cache directories the bytes are
// fetched over /cluster/artifact and committed locally. Either way, when
// the owner dies, the heir's Rehydration reads manifest and artifacts
// from its own warm cache instead of re-parsing. Rounds are rate-limited
// (ReplicateBurst fetches per round) and cancellable between keys.

// maxArtifact bounds one fetched artifact. Data-plane artifacts on large
// fabrics dwarf request bodies, so this is far above maxBody.
const maxArtifact = 1 << 30

// replicaSnapshot is one snapshot in a member's replication listing: its
// name plus the hex cache keys of its manifest and artifacts.
type replicaSnapshot struct {
	Name     string   `json:"name"`
	Manifest string   `json:"manifest"`
	Keys     []string `json:"keys"`
}

// startReplicator launches the heir replicator when it has a cache to
// warm.
func (n *Node) startReplicator(ctx context.Context) {
	if n.cfg.DisableReplication || n.inner.Disk() == nil {
		return
	}
	n.loops.Add(1)
	go n.replicateLoop(ctx)
}

// replicateLoop runs one anti-entropy round per ReplicateEvery.
func (n *Node) replicateLoop(ctx context.Context) {
	defer n.loops.Done()
	t := time.NewTicker(n.cfg.ReplicateEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-n.stop:
			return
		case <-t.C:
		}
		n.replicateRound(ctx)
	}
}

// replicateRound walks every other member's snapshot listing and warms
// the local cache for each snapshot this node is heir to. The round's
// outcome is published as gauges: how many snapshots this node is heir
// to, how many artifact keys that covers, and how many are still absent
// locally (the replication lag — zero means failover is fully warm). The
// "cluster-replicate" fault stage stalls a round for chaos experiments.
func (n *Node) replicateRound(ctx context.Context) {
	disk := n.inner.Disk()
	if err := faults.FireErr("cluster-replicate", n.cfg.ID); err != nil {
		n.m.replStalled.Add(1)
		return
	}
	view := n.View()
	budget := n.cfg.ReplicateBurst
	var heirs, keys, lag int64
	for _, m := range view.Members {
		if m.ID == n.cfg.ID {
			continue
		}
		list, err := n.fetchReplicaList(ctx, m.Addr)
		if err != nil {
			n.m.replErrors.Add(1)
			continue
		}
		for _, snap := range list {
			if OwnerOf(view.Members, snap.Name).ID != m.ID ||
				HeirOf(view.Members, snap.Name).ID != n.cfg.ID {
				continue
			}
			heirs++
			for _, hexKey := range append([]string{snap.Manifest}, snap.Keys...) {
				select {
				case <-ctx.Done():
					return
				case <-n.stop:
					return
				default:
				}
				key, ok := decodeKey(hexKey)
				if !ok {
					continue
				}
				keys++
				if disk.Has(key) {
					continue
				}
				if _, ok := disk.Get(key); ok {
					// Shared directory: the owner's commit is already on
					// disk; adopting it into the index is the replication.
					n.m.replWarm.Add(1)
					continue
				}
				if budget <= 0 {
					lag++ // over the per-round fetch budget; next round
					continue
				}
				budget--
				b, err := n.fetchArtifact(ctx, m.Addr, hexKey)
				if err != nil {
					n.m.replErrors.Add(1)
					lag++
					continue
				}
				disk.Put(key, b)
				n.m.replFetched.Add(1)
			}
		}
	}
	n.m.replHeirSnapshots.Store(heirs)
	n.m.replKeys.Store(keys)
	n.m.replLag.Store(lag)
	n.m.replRounds.Add(1)
}

// decodeKey parses a hex cache key.
func decodeKey(s string) ([sha256.Size]byte, bool) {
	var key [sha256.Size]byte
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != sha256.Size {
		return key, false
	}
	copy(key[:], b)
	return key, true
}

// fetchReplicaList GETs a member's snapshot listing.
func (n *Node) fetchReplicaList(ctx context.Context, addr string) ([]replicaSnapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/cluster/replicate", nil)
	if err != nil {
		return nil, err
	}
	resp, err := n.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: replica list status %d", addr, resp.StatusCode)
	}
	var list []replicaSnapshot
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxBody)).Decode(&list); err != nil {
		return nil, err
	}
	return list, nil
}

// fetchArtifact GETs one raw cache entry from a member.
func (n *Node) fetchArtifact(ctx context.Context, addr, hexKey string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/cluster/artifact/"+hexKey, nil)
	if err != nil {
		return nil, err
	}
	resp, err := n.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: artifact %s status %d", addr, hexKey, resp.StatusCode)
	}
	return io.ReadAll(io.LimitReader(resp.Body, maxArtifact))
}

// handleReplicaList serves this node's snapshot listing: every held
// snapshot with its manifest key and artifact keys, the shopping list an
// heir replicates from.
func (n *Node) handleReplicaList(w http.ResponseWriter, r *http.Request) {
	names := n.inner.SnapshotNames()
	list := make([]replicaSnapshot, 0, len(names))
	for _, name := range names {
		keys, ok := n.inner.SnapshotArtifactKeys(name)
		if !ok {
			continue
		}
		mk := manifestKey(name)
		rs := replicaSnapshot{
			Name:     name,
			Manifest: hex.EncodeToString(mk[:]),
			Keys:     make([]string, 0, len(keys)),
		}
		for _, k := range keys {
			if !k.IsZero() {
				rs.Keys = append(rs.Keys, hex.EncodeToString(k[:]))
			}
		}
		list = append(list, rs)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(list) //nolint:errcheck // client went away
}

// handleArtifact serves one raw cache entry by hex key — the replication
// fetch path for clusters whose members do not share a cache directory.
// Keys are content-addressed, so the bytes are immutable and safe to
// hand to any member.
func (n *Node) handleArtifact(w http.ResponseWriter, r *http.Request) {
	disk := n.inner.Disk()
	key, ok := decodeKey(r.PathValue("key"))
	if disk == nil || !ok {
		writeClusterError(w, http.StatusNotFound, "no such artifact")
		return
	}
	b, ok := disk.Get(key)
	if !ok {
		writeClusterError(w, http.StatusNotFound, "no such artifact")
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(b) //nolint:errcheck // client went away
}
