package cluster

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/faults"
	"repro/internal/server"
)

// routes wires the node's mux: cluster control endpoints first, then the
// catch-all ownership router in front of the wrapped server.
func (n *Node) routes() {
	n.mux.HandleFunc("POST /cluster/join", n.handleJoin)
	n.mux.HandleFunc("POST /cluster/heartbeat", n.handleHeartbeat)
	n.mux.HandleFunc("POST /cluster/leave", n.handleLeave)
	n.mux.HandleFunc("GET /cluster/members", n.handleMembers)
	n.mux.HandleFunc("POST /cluster/drain", n.handleClusterDrain)
	n.mux.HandleFunc("POST /cluster/sweep-exec/{name}", n.handleSweepExec)
	n.mux.HandleFunc("GET /cluster/replicate", n.handleReplicaList)
	n.mux.HandleFunc("GET /cluster/artifact/{key}", n.handleArtifact)
	n.mux.HandleFunc("/", n.route)
}

// OwnerOf resolves a snapshot's owning member by rendezvous hashing:
// the member whose sha256(id NUL name) scores highest. Deterministic for
// a member set, independent of member order, and minimally disturbed by
// membership changes — a dead member's snapshots redistribute across the
// survivors without moving anything else (the same construction
// sweep.PartitionClasses uses for class distribution). The zero Member
// is returned for an empty view.
func OwnerOf(members []Member, name string) Member {
	var best Member
	var bestScore [sha256.Size]byte
	for _, m := range members {
		h := sha256.New()
		h.Write([]byte(m.ID))
		h.Write([]byte{0})
		h.Write([]byte(name))
		var score [sha256.Size]byte
		h.Sum(score[:0])
		if best.ID == "" || bytes.Compare(score[:], bestScore[:]) > 0 {
			best, bestScore = m, score
		}
	}
	return best
}

// HeirOf resolves the member that inherits a snapshot if its current
// owner dies: the rendezvous winner among the remaining members. This is
// who the replicator warms artifacts on. The zero Member is returned
// when there is no second member.
func HeirOf(members []Member, name string) Member {
	owner := OwnerOf(members, name)
	rest := make([]Member, 0, len(members))
	for _, m := range members {
		if m.ID != owner.ID {
			rest = append(rest, m)
		}
	}
	return OwnerOf(rest, name)
}

// snapshotPath splits a per-snapshot API path into the snapshot name and
// the trailing subresource ("" for /snapshots/{name} itself). Non-
// snapshot paths yield "".
func snapshotPath(path string) (name, rest string) {
	p, ok := strings.CutPrefix(path, "/snapshots/")
	if !ok || p == "" {
		return "", ""
	}
	if i := strings.IndexByte(p, '/'); i >= 0 {
		return p[:i], p[i:]
	}
	return p, ""
}

// route is the ownership router in front of every per-snapshot endpoint:
// own the snapshot → serve locally (rehydrating from the shared cache if
// this node just inherited it); someone else owns it → forward, unless
// the request was already forwarded once (hop limit 1 → 502).
// Non-snapshot paths (/healthz, /metrics, /snapshots listing) always
// serve locally.
func (n *Node) route(w http.ResponseWriter, r *http.Request) {
	name, rest := snapshotPath(r.URL.Path)
	if name == "" {
		n.inner.Handler().ServeHTTP(w, r)
		return
	}
	body, err := readBody(w, r)
	if err != nil {
		writeClusterError(w, http.StatusRequestEntityTooLarge, "request body too large")
		return
	}
	view := n.View()
	owner := OwnerOf(view.Members, name)
	if owner.ID == "" || owner.ID == n.cfg.ID {
		n.serveLocal(w, r, name, rest, body)
		return
	}
	if via := r.Header.Get(HopHeader); via != "" {
		// Forwarded here by a member whose view disagrees with ours. The
		// benign cause is our own view being stale — a failover forwarder
		// learns a new epoch from the coordinator before we hear it in a
		// heartbeat response — so refresh from the coordinator before
		// judging. If the fresh view says we own it, serve; otherwise one
		// hop is the limit: answer 502 so the sender retries against a
		// fresher view instead of the request orbiting the cluster.
		fresh := n.fetchView(r.Context())
		owner = OwnerOf(fresh.Members, name)
		if owner.ID == "" || owner.ID == n.cfg.ID {
			n.serveLocal(w, r, name, rest, body)
			return
		}
		n.m.forwardLoops.Add(1)
		w.Header().Set(HopHeader, n.cfg.ID)
		writeClusterError(w, http.StatusBadGateway,
			"forwarding loop: "+via+" forwarded "+name+" here but "+owner.ID+" owns it")
		return
	}
	n.forward(w, r, name, body, view)
}

// serveLocal answers an owned snapshot request through the wrapped
// server, first rehydrating the snapshot from its shared-cache manifest
// when this node inherited ownership without ever loading it. Successful
// loads and edits persist manifests so the next heir can do the same;
// deletes retire them.
func (n *Node) serveLocal(w http.ResponseWriter, r *http.Request, name, rest string, body []byte) {
	if err := faults.FireErr("cluster-serve", n.cfg.ID); err != nil {
		writeClusterError(w, http.StatusInternalServerError, err.Error())
		return
	}
	isLoad := rest == "" && (r.Method == http.MethodPut || r.Method == http.MethodPost)
	if !isLoad && !n.inner.HasSnapshot(name) {
		n.rehydrate(r.Context(), name)
	}
	if rest == "/sweep" && r.Method == http.MethodPost {
		if view := n.View(); len(view.Members) > 1 && n.inner.HasSnapshot(name) {
			n.serveClusterSweep(w, r, name, body, view)
			return
		}
	}
	rec := &statusRecorder{ResponseWriter: w}
	n.inner.Handler().ServeHTTP(rec, r)
	if rec.status != http.StatusOK {
		return
	}
	switch {
	case isLoad:
		n.persistManifest(name)
	case rest == "/edit" && r.Method == http.MethodPost:
		if as := editTarget(body); as != "" {
			n.persistManifest(as)
		}
	case rest == "" && r.Method == http.MethodDelete:
		n.retireManifest(name)
	}
}

// editTarget extracts the "as" name from an edit body.
func editTarget(body []byte) string {
	var b struct {
		As string `json:"as"`
	}
	if json.Unmarshal(body, &b) != nil {
		return ""
	}
	return b.As
}

// readBody buffers the request body (bounded) so it can be replayed:
// forwarding retries re-send it, and the edit path re-reads it for the
// manifest name. The request's Body is replaced with the buffer.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	if r.Body == nil {
		return nil, nil
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		return nil, err
	}
	r.Body = io.NopCloser(bytes.NewReader(body))
	return body, nil
}

// statusRecorder captures the response status while passing streaming
// writes (and flushes — sweeps are NDJSON) straight through.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (s *statusRecorder) WriteHeader(code int) {
	if s.status == 0 {
		s.status = code
	}
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusRecorder) Write(p []byte) (int, error) {
	if s.status == 0 {
		s.status = http.StatusOK
	}
	return s.ResponseWriter.Write(p)
}

func (s *statusRecorder) Flush() {
	if f, ok := s.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// writeShedErr relays an admission rejection (429/503 + Retry-After)
// from the wrapped server onto the cluster-internal wire.
func writeShedErr(w http.ResponseWriter, err error) bool {
	se, ok := err.(*server.ShedError)
	if !ok {
		return false
	}
	secs := int(se.RetryAfter.Seconds())
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeClusterError(w, se.Status, se.Reason)
	return true
}
