package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"repro/internal/faults"
)

// heartbeatLoop is the member side of the failure detector: one POST to
// the coordinator per period. The response carries the current view, so
// membership changes propagate to every member within one heartbeat.
// The "cluster-heartbeat" fault stage drops heartbeats for partition
// experiments — the coordinator then declares this member dead even
// though it is still serving.
func (n *Node) heartbeatLoop(ctx context.Context) {
	defer n.loops.Done()
	t := time.NewTicker(n.cfg.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-n.stop:
			return
		case <-t.C:
		}
		n.mu.Lock()
		self, coordAddr := n.self, n.coordAddr
		n.mu.Unlock()
		if err := faults.FireErr("cluster-heartbeat", self.ID); err != nil {
			n.m.heartbeatsDropped.Add(1)
			continue
		}
		v, err := n.postMember(ctx, coordAddr+"/cluster/heartbeat", self)
		if err != nil {
			n.m.heartbeatsMissed.Add(1)
			continue
		}
		n.m.heartbeatsSent.Add(1)
		n.setView(v)
	}
}

// detectLoop is the coordinator side: every half heartbeat it reaps
// members whose last heartbeat is older than SuspectAfter. Removal bumps
// the epoch, which reassigns the dead member's snapshots by rendezvous
// hash and unblocks forwarders waiting in awaitViewChange.
func (n *Node) detectLoop(ctx context.Context) {
	defer n.loops.Done()
	t := time.NewTicker(n.cfg.Heartbeat / 2)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-n.stop:
			return
		case <-t.C:
		}
		n.reapDead()
	}
}

// reapDead removes members silent past the suspicion window.
func (n *Node) reapDead() {
	cutoff := now().Add(-n.cfg.SuspectAfter)
	n.mu.Lock()
	var dead []string
	for id, seen := range n.lastSeen {
		if id != n.self.ID && seen.Before(cutoff) {
			dead = append(dead, id)
		}
	}
	sort.Strings(dead)
	for _, id := range dead {
		delete(n.lastSeen, id)
		n.removeMemberLocked(id)
	}
	if len(dead) > 0 {
		n.view.Epoch++
		n.m.membersFailed.Add(int64(len(dead)))
	}
	epoch := n.view.Epoch
	n.mu.Unlock()
	for _, id := range dead {
		n.cfg.Logf("cluster: member %s declared dead (epoch %d)", id, epoch)
	}
}

// handleJoin registers a member and returns the new view (coordinator
// only).
func (n *Node) handleJoin(w http.ResponseWriter, r *http.Request) {
	n.handleRegistration(w, r, true)
}

// handleHeartbeat refreshes a member's liveness and returns the current
// view (coordinator only). An unknown member — reaped during a
// partition, now healed — is re-admitted.
func (n *Node) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	n.handleRegistration(w, r, false)
}

func (n *Node) handleRegistration(w http.ResponseWriter, r *http.Request, join bool) {
	var m Member
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&m); err != nil || m.ID == "" || m.Addr == "" {
		writeClusterError(w, http.StatusBadRequest, "bad member body")
		return
	}
	n.mu.Lock()
	if !n.coordinator {
		n.mu.Unlock()
		writeClusterError(w, http.StatusMisdirectedRequest, "not the coordinator")
		return
	}
	m.Role = RoleMember
	n.lastSeen[m.ID] = now()
	if n.setMemberLocked(m) {
		n.view.Epoch++
		if join {
			n.cfg.Logf("cluster: member %s joined (epoch %d)", m.ID, n.view.Epoch)
		} else {
			n.cfg.Logf("cluster: member %s re-admitted by heartbeat (epoch %d)", m.ID, n.view.Epoch)
		}
	}
	v := n.view.clone()
	n.mu.Unlock()
	writeViewJSON(w, v)
}

// handleLeave removes a member from the view (coordinator only) — the
// graceful-drain handoff: ownership moves before the leaver stops
// serving, so forwarders never see a gap.
func (n *Node) handleLeave(w http.ResponseWriter, r *http.Request) {
	var m Member
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&m); err != nil || m.ID == "" {
		writeClusterError(w, http.StatusBadRequest, "bad member body")
		return
	}
	n.mu.Lock()
	if !n.coordinator {
		n.mu.Unlock()
		writeClusterError(w, http.StatusMisdirectedRequest, "not the coordinator")
		return
	}
	delete(n.lastSeen, m.ID)
	if n.removeMemberLocked(m.ID) {
		n.view.Epoch++
		n.cfg.Logf("cluster: member %s left (epoch %d)", m.ID, n.view.Epoch)
	}
	v := n.view.clone()
	n.mu.Unlock()
	writeViewJSON(w, v)
}

// handleMembers returns the view: authoritative on the coordinator, the
// cached copy on members. Forwarders poll it while waiting for failover.
func (n *Node) handleMembers(w http.ResponseWriter, r *http.Request) {
	writeViewJSON(w, n.View())
}

// handleClusterDrain drains this node (the HTTP twin of the SIGTERM
// path): ownership handoff, then finish-in-flight, bounded by the
// request context.
func (n *Node) handleClusterDrain(w http.ResponseWriter, r *http.Request) {
	if err := n.Drain(r.Context()); err != nil {
		writeClusterError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeViewJSON(w, n.View())
}

// postMember POSTs a member body and decodes the view response.
func (n *Node) postMember(ctx context.Context, url string, m Member) (View, error) {
	body, err := json.Marshal(m)
	if err != nil {
		return View{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return View{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.cfg.Client.Do(req)
	if err != nil {
		return View{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return View{}, fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	var v View
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&v); err != nil {
		return View{}, err
	}
	return v, nil
}

// fetchView returns the freshest view reachable: the local authoritative
// one on the coordinator, the coordinator's via HTTP on members (falling
// back to the cached view when the coordinator is unreachable).
func (n *Node) fetchView(ctx context.Context) View {
	n.mu.Lock()
	coordinator, coordAddr, cached := n.coordinator, n.coordAddr, n.view.clone()
	n.mu.Unlock()
	if coordinator {
		return cached
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, coordAddr+"/cluster/members", nil)
	if err != nil {
		return cached
	}
	resp, err := n.cfg.Client.Do(req)
	if err != nil {
		return cached
	}
	defer resp.Body.Close()
	var v View
	if resp.StatusCode != http.StatusOK ||
		json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&v) != nil {
		return cached
	}
	n.setView(v)
	return v
}

func writeViewJSON(w http.ResponseWriter, v View) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client went away
}

func writeClusterError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg}) //nolint:errcheck
}
