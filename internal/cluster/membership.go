package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"repro/internal/faults"
)

// errNotCoordinator marks a 421 from a join/heartbeat target: the peer is
// alive but no longer (or not yet) the coordinator. The caller should
// re-resolve the coordinator through the shared record.
var errNotCoordinator = errors.New("peer is not the coordinator")

// runLoop is the node's single control loop, ticking at half the
// heartbeat period. On the coordinator each tick reaps silent members
// and renews the coordinator lease; on a member it heartbeats once per
// period and watches for coordinator silence. One loop serves both roles
// because failover moves a node between them mid-life: a member that
// wins the lease race is a coordinator on its next tick, a coordinator
// that loses its lease is a member on its next.
func (n *Node) runLoop(ctx context.Context) {
	defer n.loops.Done()
	period := n.cfg.Heartbeat / 2
	if period <= 0 {
		period = time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-n.stop:
			return
		case <-t.C:
		}
		n.mu.Lock()
		coordinator := n.coordinator
		n.mu.Unlock()
		if coordinator {
			n.coordTick()
		} else {
			n.memberTick(ctx)
		}
	}
}

// coordTick is one coordinator beat: run the failure detector, keep the
// coordinator lease alive.
func (n *Node) coordTick() {
	n.reapDead()
	n.maintainLease()
}

// memberTick is one member beat: at most one heartbeat POST per
// heartbeat period (the response carries the current view, so membership
// changes propagate within one heartbeat), plus the coordinator-death
// watch. A 421 from the target means it was demoted — the shared record
// names its successor, so adopt it immediately instead of waiting out
// the suspicion window. Silence past SuspectAfter triggers the failover
// race (promote.go). The "cluster-heartbeat" fault stage drops
// heartbeats for partition experiments — the coordinator then declares
// this member dead even though it is still serving.
func (n *Node) memberTick(ctx context.Context) {
	n.mu.Lock()
	self, coordAddr := n.self, n.coordAddr
	self.Epoch = n.view.Epoch
	due := coordAddr != "" && n.now().Sub(n.lastBeat) >= n.cfg.Heartbeat
	if due {
		n.lastBeat = n.now()
	}
	lastContact, draining := n.lastContact, n.draining
	n.mu.Unlock()
	if due {
		if err := faults.FireErr("cluster-heartbeat", self.ID); err != nil {
			n.m.heartbeatsDropped.Add(1)
		} else if v, err := n.postMember(ctx, coordAddr+"/cluster/heartbeat", self); err != nil {
			n.m.heartbeatsMissed.Add(1)
			if errors.Is(err, errNotCoordinator) {
				n.adoptCoordRecord()
			}
		} else {
			n.m.heartbeatsSent.Add(1)
			n.setView(v)
			n.mu.Lock()
			n.lastContact = n.now()
			n.mu.Unlock()
			return
		}
	}
	if !draining && n.now().Sub(lastContact) > n.cfg.SuspectAfter {
		n.attemptFailover()
	}
}

// reapDead removes members silent past the suspicion window. Removal
// bumps the epoch, which reassigns the dead member's snapshots by
// rendezvous hash and unblocks forwarders waiting in awaitViewChange.
func (n *Node) reapDead() {
	cutoff := n.now().Add(-n.cfg.SuspectAfter)
	n.mu.Lock()
	var dead []string
	for id, seen := range n.lastSeen {
		if id != n.self.ID && seen.Before(cutoff) {
			dead = append(dead, id)
		}
	}
	sort.Strings(dead)
	for _, id := range dead {
		delete(n.lastSeen, id)
		n.removeMemberLocked(id)
	}
	if len(dead) > 0 {
		n.view.Epoch++
		n.m.membersFailed.Add(int64(len(dead)))
	}
	epoch := n.view.Epoch
	n.mu.Unlock()
	for _, id := range dead {
		n.cfg.Logf("cluster: member %s declared dead (epoch %d)", id, epoch)
	}
}

// handleJoin registers a member and returns the new view (coordinator
// only).
func (n *Node) handleJoin(w http.ResponseWriter, r *http.Request) {
	n.handleRegistration(w, r, true)
}

// handleHeartbeat refreshes a member's liveness and returns the current
// view (coordinator only). An unknown member — reaped during a
// partition, now healed — is re-admitted.
func (n *Node) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	n.handleRegistration(w, r, false)
}

func (n *Node) handleRegistration(w http.ResponseWriter, r *http.Request, join bool) {
	var m Member
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&m); err != nil || m.ID == "" || m.Addr == "" {
		writeClusterError(w, http.StatusBadRequest, "bad member body")
		return
	}
	n.mu.Lock()
	if !n.coordinator {
		n.mu.Unlock()
		writeClusterError(w, http.StatusMisdirectedRequest, "not the coordinator")
		return
	}
	m.Role = RoleMember
	if m.Epoch > n.view.Epoch {
		// The member outlived a previous coordinator and saw epochs this
		// (freshly promoted) one never did; jump strictly past them so
		// "newer view" stays monotonic across the coordinator change.
		n.view.Epoch = m.Epoch + 1
	}
	m.Epoch = 0
	n.lastSeen[m.ID] = n.now()
	if n.setMemberLocked(m) {
		n.view.Epoch++
		if join {
			n.cfg.Logf("cluster: member %s joined (epoch %d)", m.ID, n.view.Epoch)
		} else {
			n.cfg.Logf("cluster: member %s re-admitted by heartbeat (epoch %d)", m.ID, n.view.Epoch)
		}
	}
	v := n.view.clone()
	n.mu.Unlock()
	writeViewJSON(w, v)
}

// handleLeave removes a member from the view (coordinator only) — the
// graceful-drain handoff: ownership moves before the leaver stops
// serving, so forwarders never see a gap.
func (n *Node) handleLeave(w http.ResponseWriter, r *http.Request) {
	var m Member
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&m); err != nil || m.ID == "" {
		writeClusterError(w, http.StatusBadRequest, "bad member body")
		return
	}
	n.mu.Lock()
	if !n.coordinator {
		n.mu.Unlock()
		writeClusterError(w, http.StatusMisdirectedRequest, "not the coordinator")
		return
	}
	delete(n.lastSeen, m.ID)
	if n.removeMemberLocked(m.ID) {
		n.view.Epoch++
		n.cfg.Logf("cluster: member %s left (epoch %d)", m.ID, n.view.Epoch)
	}
	v := n.view.clone()
	n.mu.Unlock()
	writeViewJSON(w, v)
}

// handleMembers returns the view — authoritative on the coordinator, the
// cached copy on members — plus this node's replication status (view
// decoders ignore the extra field). Forwarders poll it while waiting for
// failover; operators read the replication lag off it.
func (n *Node) handleMembers(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	resp := membersResponse{View: n.View(), Replication: n.replicationStatus()}
	json.NewEncoder(w).Encode(resp) //nolint:errcheck // client went away
}

// membersResponse is the /cluster/members payload.
type membersResponse struct {
	View
	Replication ReplicationStatus `json:"replication"`
}

// handleClusterDrain drains this node (the HTTP twin of the SIGTERM
// path): ownership handoff, then finish-in-flight, bounded by the
// request context.
func (n *Node) handleClusterDrain(w http.ResponseWriter, r *http.Request) {
	if err := n.Drain(r.Context()); err != nil {
		writeClusterError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeViewJSON(w, n.View())
}

// postMember POSTs a member body and decodes the view response.
func (n *Node) postMember(ctx context.Context, url string, m Member) (View, error) {
	body, err := json.Marshal(m)
	if err != nil {
		return View{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return View{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.cfg.Client.Do(req)
	if err != nil {
		return View{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusMisdirectedRequest {
		return View{}, fmt.Errorf("%s: %w", url, errNotCoordinator)
	}
	if resp.StatusCode != http.StatusOK {
		return View{}, fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	var v View
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&v); err != nil {
		return View{}, err
	}
	return v, nil
}

// fetchView returns the freshest view reachable: the local authoritative
// one on the coordinator, the coordinator's via HTTP on members. When
// the coordinator does not answer, the shared record may name a
// successor that already won the failover race — adopt it and retry once
// before settling for the cached view. This is what lets forwarding
// retries (awaitViewChange) and the hop-limit refresh converge on a new
// coordinator instead of polling the corpse of the old one.
func (n *Node) fetchView(ctx context.Context) View {
	n.mu.Lock()
	coordinator, coordAddr, cached := n.coordinator, n.coordAddr, n.view.clone()
	n.mu.Unlock()
	if coordinator {
		return cached
	}
	if v, ok := n.fetchViewFrom(ctx, coordAddr); ok {
		return v
	}
	if n.adoptCoordRecord() {
		n.mu.Lock()
		coordAddr = n.coordAddr
		n.mu.Unlock()
		if v, ok := n.fetchViewFrom(ctx, coordAddr); ok {
			return v
		}
	}
	return cached
}

// fetchViewFrom GETs one member-list from coordAddr, adopting the view
// and refreshing the contact clock on success.
func (n *Node) fetchViewFrom(ctx context.Context, coordAddr string) (View, bool) {
	if coordAddr == "" {
		return View{}, false
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, coordAddr+"/cluster/members", nil)
	if err != nil {
		return View{}, false
	}
	resp, err := n.cfg.Client.Do(req)
	if err != nil {
		return View{}, false
	}
	defer resp.Body.Close()
	var v View
	if resp.StatusCode != http.StatusOK ||
		json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&v) != nil {
		return View{}, false
	}
	n.setView(v)
	n.mu.Lock()
	n.lastContact = n.now()
	n.mu.Unlock()
	return v, true
}

func writeViewJSON(w http.ResponseWriter, v View) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client went away
}

func writeClusterError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg}) //nolint:errcheck
}
