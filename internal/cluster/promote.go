package cluster

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"time"

	"repro/internal/diskcache"
	"repro/internal/faults"
)

// Coordinator failover. The coordinator's authority is backed by two
// things in the shared disk cache: a renewable lease (diskcache/lease.go
// — exclusive by construction, crash-orphaned when its holder dies) and
// a record naming the holder's ID, address, and epoch. The lease decides
// *who* coordinates; the record tells everyone else *where*. Members
// that lose heartbeat contact past the suspicion window first look for a
// record naming a new coordinator (some rival already won) and otherwise
// race to acquire the lease; the winner promotes itself with an epoch
// strictly past any it has seen, and every other node converges on it
// through the record — including demoted ex-coordinators, which detect
// the loss on their next renewal and rejoin as members.
//
// Epoch monotonicity across the handoff: the winner bumps past its own
// highest epoch at promotion, and any member that saw a higher epoch
// from the dead coordinator carries it in its next heartbeat, which
// jumps the new coordinator past that too (handleRegistration). So
// "newer view" keeps meaning "higher epoch" even though the authority
// moved between processes.

// coordLeaseName is the lease every would-be coordinator races for.
const coordLeaseName = "cluster/coordinator"

// coordRecordKey derives the cache key of the coordinator record. Like
// snapshot manifests it is name-addressed: one well-known slot, atomically
// rewritten by each new lease holder.
func coordRecordKey() [sha256.Size]byte {
	return sha256.Sum256([]byte("cluster/coordinator/record"))
}

// coordRecord names the current lease holder so members can re-resolve
// the coordinator address without being able to ask the dead one.
type coordRecord struct {
	ID    string `json:"id"`
	Addr  string `json:"addr"`
	Epoch int64  `json:"epoch"`
}

// leaseTTL is the coordinator lease's time-to-live: the suspicion window.
// The lease is renewed every half heartbeat, so it only lapses when the
// holder is dead or wedged — on the same timescale the failure detector
// uses for members.
func (n *Node) leaseTTL() time.Duration { return n.cfg.SuspectAfter }

// failoverEnabled reports whether this node takes part in the lease
// protocol: failover needs a shared disk cache to anchor the lease.
func (n *Node) failoverEnabled() bool {
	return !n.cfg.DisableFailover && n.inner.Disk() != nil
}

// readCoordRecord loads the coordinator record from the shared cache.
func (n *Node) readCoordRecord() (coordRecord, bool) {
	if !n.failoverEnabled() {
		return coordRecord{}, false
	}
	buf, ok := n.inner.Disk().Get(coordRecordKey())
	if !ok {
		return coordRecord{}, false
	}
	var rec coordRecord
	if json.Unmarshal(buf, &rec) != nil || rec.ID == "" || rec.Addr == "" {
		return coordRecord{}, false
	}
	return rec, true
}

// writeCoordRecord publishes this node as the coordinator. Only the lease
// holder calls it, so the record always names a node that held the lease
// when it wrote.
func (n *Node) writeCoordRecord(epoch int64) {
	if !n.failoverEnabled() {
		return
	}
	n.mu.Lock()
	rec := coordRecord{ID: n.self.ID, Addr: n.self.Addr, Epoch: epoch}
	n.mu.Unlock()
	if buf, err := json.Marshal(rec); err == nil {
		n.inner.Disk().Put(coordRecordKey(), buf)
	}
}

// bootstrapCoordinator decides how a node started without a join address
// comes up. Normally it acquires the coordinator lease and coordinates;
// if another live coordinator already holds the lease — this node is a
// restarted ex-coordinator, or an operator double-started the seed — it
// returns that coordinator's address and became=false so Start joins it
// as a member instead. A held lease without a usable record (or a record
// naming this node, i.e. its own crash orphan) still coordinates:
// maintainLease keeps retrying the lease from the coordinator side.
func (n *Node) bootstrapCoordinator(self Member) (joinAddr string, became bool) {
	self.Role = RoleCoordinator
	var lease *diskcache.Lease
	if n.failoverEnabled() {
		l, err := n.inner.Disk().AcquireLease(coordLeaseName, n.cfg.ID, n.leaseTTL())
		switch {
		case err == nil:
			lease = l
		case errors.Is(err, diskcache.ErrLeaseHeld):
			if rec, ok := n.readCoordRecord(); ok && rec.ID != n.cfg.ID && rec.Addr != self.Addr {
				return rec.Addr, false
			}
		default:
			n.cfg.Logf("cluster: %s coordinator lease unavailable at start: %v", n.cfg.ID, err)
		}
	}
	n.mu.Lock()
	n.self = self
	n.coordinator = true
	n.view = View{Epoch: 1, Members: []Member{self}}
	n.lastSeen[self.ID] = n.now()
	n.lease = lease
	n.mu.Unlock()
	if lease != nil {
		n.writeCoordRecord(1)
	}
	return "", true
}

// attemptFailover runs on a member once the coordinator has been silent
// past the suspicion window. The cheap path is adopting a successor some
// rival already promoted (the record changed); otherwise race for the
// lease. ErrLeaseHeld means the dead coordinator's last grant has not
// expired yet, or a rival just won — either way, retry on a later tick;
// the epoch'd record resolves who actually coordinates. The
// "cluster-promote" fault stage stalls a candidate here so chaos tests
// can pick the race winner deterministically.
func (n *Node) attemptFailover() {
	if !n.failoverEnabled() {
		return
	}
	if n.adoptCoordRecord() {
		return
	}
	if err := faults.FireErr("cluster-promote", n.cfg.ID); err != nil {
		n.m.promoteStalled.Add(1)
		return
	}
	lease, err := n.inner.Disk().AcquireLease(coordLeaseName, n.cfg.ID, n.leaseTTL())
	if err != nil {
		return
	}
	n.promote(lease)
}

// adoptCoordRecord points this member at the coordinator named by the
// shared record when that is fresh news — a node other than this one and
// other than the coordinator it is already (failing at) talking to.
// Adoption resets the contact clock, granting the successor a full
// suspicion window before this member doubts it too.
func (n *Node) adoptCoordRecord() bool {
	rec, ok := n.readCoordRecord()
	if !ok || rec.ID == n.cfg.ID {
		return false
	}
	n.mu.Lock()
	adopted := !n.coordinator && rec.Addr != n.coordAddr
	if adopted {
		n.coordAddr = rec.Addr
		n.lastContact = n.now()
	}
	n.mu.Unlock()
	if adopted {
		n.m.coordAdoptions.Add(1)
		n.cfg.Logf("cluster: %s following new coordinator %s at %s", n.cfg.ID, rec.ID, rec.Addr)
	}
	return adopted
}

// promote turns this member into the coordinator after winning the lease
// race. The dead coordinator leaves the view; the surviving members are
// retained with a fresh suspicion window — ownership of everything they
// hold is undisturbed, and they re-register as their heartbeats land on
// the new address (resolved through the record this writes). The epoch
// jumps strictly past the highest this node ever saw; members that saw
// more carry it in their heartbeats and handleRegistration jumps past
// that too.
func (n *Node) promote(lease *diskcache.Lease) {
	n.mu.Lock()
	if n.coordinator || n.draining {
		n.mu.Unlock()
		n.releaseLease(lease, "coordinator")
		return
	}
	oldCoord := n.coordAddr
	var stale []string
	for _, m := range n.view.Members {
		if m.Role == RoleCoordinator {
			stale = append(stale, m.ID)
		}
	}
	for _, id := range stale {
		n.removeMemberLocked(id)
		delete(n.lastSeen, id)
	}
	n.coordinator = true
	n.self.Role = RoleCoordinator
	n.setMemberLocked(n.self)
	n.view.Epoch++
	n.coordAddr = ""
	n.lease = lease
	n.renewFails = time.Time{}
	for _, m := range n.view.Members {
		n.lastSeen[m.ID] = n.now()
	}
	epoch := n.view.Epoch
	n.mu.Unlock()
	n.m.promotions.Add(1)
	n.writeCoordRecord(epoch)
	n.cfg.Logf("cluster: %s promoted to coordinator (epoch %d) after %s went silent",
		n.cfg.ID, epoch, oldCoord)
}

// releaseLease releases a lease and logs — rather than drops — a
// failure: a lease file that outlives its holder makes every future
// acquirer of that name wait out a TTL nobody is using. A nil lease
// (acquire failed, or already handed off) is a no-op.
func (n *Node) releaseLease(lease *diskcache.Lease, what string) {
	if lease == nil {
		return
	}
	if err := lease.Release(); err != nil {
		n.cfg.Logf("cluster: %s releasing %s lease: %v", n.cfg.ID, what, err)
	}
}

// maintainLease runs every coordinator tick. The lease is renewed twice
// per suspicion window, so only a dead or wedged coordinator lets it
// lapse. Losing it means a member already promoted itself: step down and
// follow the record — this is how a partitioned ex-coordinator that
// reappears discovers the world moved on. Renewals that merely error
// (shared cache briefly unreachable) are tolerated for one suspicion
// window; past that this node can no longer prove it is the only
// coordinator and demotes itself rather than risk a split brain.
func (n *Node) maintainLease() {
	if !n.failoverEnabled() {
		return
	}
	n.mu.Lock()
	lease := n.lease
	n.mu.Unlock()
	if lease == nil {
		l, err := n.inner.Disk().AcquireLease(coordLeaseName, n.cfg.ID, n.leaseTTL())
		if err != nil {
			if errors.Is(err, diskcache.ErrLeaseHeld) {
				n.demote("another coordinator holds the lease")
			}
			return
		}
		n.mu.Lock()
		n.lease = l
		epoch := n.view.Epoch
		n.mu.Unlock()
		n.writeCoordRecord(epoch)
		return
	}
	switch err := lease.Renew(n.leaseTTL()); {
	case err == nil:
		n.mu.Lock()
		n.renewFails = time.Time{}
		n.mu.Unlock()
	case errors.Is(err, diskcache.ErrLeaseLost):
		n.demote("coordinator lease lost")
	default:
		n.mu.Lock()
		if n.renewFails.IsZero() {
			n.renewFails = n.now()
		}
		lapsed := n.now().Sub(n.renewFails) > n.cfg.SuspectAfter
		n.mu.Unlock()
		if lapsed {
			n.demote("coordinator lease unrenewable")
		}
	}
}

// demote steps an ex-coordinator down to member. If the record already
// names a successor, follow it — the next heartbeat re-registers this
// node there, and the view that comes back (with its strictly higher
// epoch) replaces the stale one. Otherwise the contact clock is zeroed
// so the node immediately rejoins the failover race from the member
// side. Either way it keeps serving its snapshots: demotion moves the
// membership authority, not the data plane.
func (n *Node) demote(why string) {
	rec, ok := n.readCoordRecord()
	n.mu.Lock()
	if !n.coordinator {
		n.mu.Unlock()
		return
	}
	n.coordinator = false
	n.self.Role = RoleMember
	n.setMemberLocked(n.self)
	n.lease = nil
	n.renewFails = time.Time{}
	n.lastBeat = time.Time{} // heartbeat the successor on the next tick
	if ok && rec.ID != n.cfg.ID && rec.Addr != "" {
		n.coordAddr = rec.Addr
		n.lastContact = n.now()
	} else {
		n.coordAddr = ""
		n.lastContact = time.Time{}
	}
	n.mu.Unlock()
	n.m.demotions.Add(1)
	n.cfg.Logf("cluster: %s demoted to member (%s)", n.cfg.ID, why)
}
