package cluster_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/server"
)

// sweepStream posts a sweep and splits the NDJSON response into verdict
// lines (sorted, for set comparison) and the summary line.
func sweepStream(t *testing.T, c *http.Client, url string, body []byte) (verdicts []string, summary map[string]any) {
	t.Helper()
	resp, err := c.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep %s: status %d", url, resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		switch probe.Type {
		case "verdict":
			verdicts = append(verdicts, string(line))
		case "summary":
			if err := json.Unmarshal(line, &summary); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	sort.Strings(verdicts)
	return verdicts, summary
}

// TestDistributedSweepMatchesLocal: a sweep through a 2-member cluster —
// entered via the NON-owner, so the stream also crosses a forwarding
// hop — must produce exactly the verdict set and summary of the same
// sweep on a standalone single-process server. The remote member must
// actually have executed a share.
func TestDistributedSweepMatchesLocal(t *testing.T) {
	texts := smallFabric("sm")
	body := []byte(`{"k":1,"fail":["links"],"workers":2}`)

	// Single-process reference.
	ref, err := server.New(server.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(ref.Handler())
	t.Cleanup(rts.Close)
	resp, rbody := doJSON(t, rts.Client(), http.MethodPut, rts.URL+"/snapshots/ref",
		map[string]any{"configs": texts}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reference load: %d %v", resp.StatusCode, rbody)
	}
	wantVerdicts, wantSummary := sweepStream(t, rts.Client(), rts.URL+"/snapshots/ref/sweep", body)
	if len(wantVerdicts) == 0 {
		t.Fatal("reference sweep produced no verdicts; test is vacuous")
	}

	// 2-member cluster over one shared cache; the coordinator owns the
	// snapshot so it deals classes to the remote member.
	dir := t.TempDir()
	hb := 50 * time.Millisecond
	n1 := startNode(t, "m1", "", server.Config{CacheDir: dir}, fastCfg(hb))
	n2 := startNode(t, "m2", n1.ts.URL, server.Config{CacheDir: dir, Seed: 2}, fastCfg(hb))
	v := waitMembers(t, n1, 2, 2*time.Second)
	name := ownedBy(t, v.Members, "m1", "")

	resp, rbody = doJSON(t, n1.ts.Client(), http.MethodPut, n1.ts.URL+"/snapshots/"+name,
		map[string]any{"configs": texts}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster load: %d %v", resp.StatusCode, rbody)
	}

	// Enter through the non-owner: m2 forwards, m1 plans + distributes,
	// m2 executes its share via /cluster/sweep-exec.
	gotVerdicts, gotSummary := sweepStream(t, n2.ts.Client(), n2.ts.URL+"/snapshots/"+name+"/sweep", body)

	if len(gotVerdicts) != len(wantVerdicts) {
		t.Fatalf("verdict count: cluster %d, single-process %d", len(gotVerdicts), len(wantVerdicts))
	}
	for i := range wantVerdicts {
		if gotVerdicts[i] != wantVerdicts[i] {
			t.Fatalf("verdict %d differs:\ncluster: %s\nsingle:  %s", i, gotVerdicts[i], wantVerdicts[i])
		}
	}
	for _, k := range []string{"enumerated", "classes", "executed", "pruned", "violations", "degraded", "exit_code"} {
		if gotSummary[k] != wantSummary[k] {
			t.Fatalf("summary %q: cluster %v, single-process %v", k, gotSummary[k], wantSummary[k])
		}
	}
	if in := n2.n.Metrics().SweepClassesIn; in == 0 {
		t.Fatal("remote member executed no classes; sweep was not distributed")
	}
	if fb := n1.n.Metrics().SweepFallback; fb != 0 {
		t.Fatalf("owner fell back on %d classes with a healthy remote", fb)
	}
}

// TestDistributedSweepRemoteFailureFallsBackLocal: killing the remote's
// transport mid-sweep must not change the result — the owner re-executes
// the undelivered share locally. Distribution is an optimization, never a
// correctness dependency.
func TestDistributedSweepRemoteFailureFallsBackLocal(t *testing.T) {
	texts := smallFabric("sm")
	body := []byte(`{"k":1,"fail":["links"],"workers":2}`)

	dir := t.TempDir()
	hb := 50 * time.Millisecond
	n1 := startNode(t, "m1", "", server.Config{CacheDir: dir}, fastCfg(hb))
	n2 := startNode(t, "m2", n1.ts.URL, server.Config{CacheDir: dir, Seed: 2,
		MaxConcurrent: 1, MaxQueue: -1}, fastCfg(hb))
	v := waitMembers(t, n1, 2, 2*time.Second)
	name := ownedBy(t, v.Members, "m1", "")

	resp, rbody := doJSON(t, n1.ts.Client(), http.MethodPut, n1.ts.URL+"/snapshots/"+name,
		map[string]any{"configs": texts}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("load: %d %v", resp.StatusCode, rbody)
	}
	wantVerdicts, wantSummary := sweepStream(t, n1.ts.Client(), n1.ts.URL+"/snapshots/"+name+"/sweep", body)

	// Wedge the remote: its one admission slot is held, so the shipped
	// share is shed with 429 and the owner must fall back.
	release, err := n2.srv.Admit(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	gotVerdicts, gotSummary := sweepStream(t, n1.ts.Client(), n1.ts.URL+"/snapshots/"+name+"/sweep", body)
	if len(gotVerdicts) != len(wantVerdicts) {
		t.Fatalf("verdict count: fallback %d, healthy %d", len(gotVerdicts), len(wantVerdicts))
	}
	for i := range wantVerdicts {
		if gotVerdicts[i] != wantVerdicts[i] {
			t.Fatalf("verdict %d differs under fallback:\n%s\n%s", i, gotVerdicts[i], wantVerdicts[i])
		}
	}
	if gotSummary["exit_code"] != wantSummary["exit_code"] {
		t.Fatalf("fallback summary exit: %v vs %v", gotSummary["exit_code"], wantSummary["exit_code"])
	}
	if fb := n1.n.Metrics().SweepFallback; fb == 0 {
		t.Fatal("owner never recorded a fallback")
	}
}

// TestForwardTransportErrorWithoutViewChange: a transport failure toward
// a member the detector still believes is healthy exhausts the bounded
// retry (no view change arrives) and surfaces as 502 — it does not hang
// and does not silently retry forever.
func TestForwardTransportErrorWithoutViewChange(t *testing.T) {
	hb := 30 * time.Millisecond
	cfg := cluster.Config{Heartbeat: hb, SuspectAfter: time.Minute, FailoverWait: 4 * hb}
	n1 := startNode(t, "m1", "", server.Config{}, cfg)
	startNode(t, "m2", n1.ts.URL, server.Config{Seed: 2}, cfg)
	v := waitMembers(t, n1, 2, 2*time.Second)
	name := ownedBy(t, v.Members, "m2", "")

	texts := smallFabric("sm")
	resp, body := doJSON(t, n1.ts.Client(), http.MethodPut, n1.ts.URL+"/snapshots/"+name,
		map[string]any{"configs": texts}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("load: %d %v", resp.StatusCode, body)
	}

	restore := faults.Activate(faults.New().Enable("cluster-forward", "m1", faults.Rule{Kind: faults.Error}))
	defer restore()
	q := "/snapshots/" + name + "/reachability?" + srcQuery(texts)
	resp, body = doJSON(t, n1.ts.Client(), http.MethodGet, n1.ts.URL+q, nil, nil)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("got %d %v, want 502", resp.StatusCode, body)
	}
	m := n1.n.Metrics()
	if m.ForwardFailed != 1 || m.ForwardRetries == 0 {
		t.Fatalf("retry accounting: %+v", m)
	}
}
