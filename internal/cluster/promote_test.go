package cluster

// Internal failover tests: the detector, the promotion race, and
// demotion are driven by a fake clock shared between the node and its
// disk cache, so lease expiry and suspicion windows advance by explicit
// Advance calls — no real sleeps, no timing flake.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/diskcache"
	"repro/internal/faults"
	"repro/internal/server"
)

// fakeClock is a mutable time source implementing Clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

// beat POSTs a heartbeat body straight into the registration handler.
func beat(t *testing.T, n *Node, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/cluster/heartbeat", strings.NewReader(body))
	rec := httptest.NewRecorder()
	n.handleHeartbeat(rec, req)
	return rec
}

// TestDetectorEvictsOnFakeClock drives the failure detector across its
// exact suspicion boundary: a member silent for precisely SuspectAfter
// survives, one tick past it is evicted with an epoch bump. It also
// checks the epoch-carry rule — a heartbeat from a member that saw a
// higher epoch under a previous coordinator jumps this view strictly
// past it.
func TestDetectorEvictsOnFakeClock(t *testing.T) {
	fc := newFakeClock()
	srv, err := server.New(server.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNode(Config{ID: "m1", Server: srv, Clock: fc,
		DisableFailover: true, DisableReplication: true})
	if err != nil {
		t.Fatal(err)
	}
	n.mu.Lock()
	n.self = Member{ID: "m1", Addr: "http://m1", Role: RoleCoordinator}
	n.coordinator = true
	n.view = View{Epoch: 1, Members: []Member{n.self}}
	n.lastSeen["m1"] = fc.Now()
	n.mu.Unlock()

	if rec := beat(t, n, `{"id":"m2","addr":"http://m2"}`); rec.Code != http.StatusOK {
		t.Fatalf("heartbeat admission: status %d", rec.Code)
	}
	if got := n.View().Epoch; got != 2 {
		t.Fatalf("epoch after admission = %d, want 2", got)
	}

	// Exactly at the window: still in.
	fc.Advance(n.cfg.SuspectAfter)
	n.reapDead()
	if v := n.View(); len(v.Members) != 2 {
		t.Fatalf("member evicted at exactly SuspectAfter: %+v", v)
	}

	// One tick past: out, epoch bumped.
	fc.Advance(time.Millisecond)
	n.reapDead()
	v := n.View()
	if len(v.Members) != 1 || v.Members[0].ID != "m1" {
		t.Fatalf("eviction failed: %+v", v)
	}
	if v.Epoch != 3 {
		t.Fatalf("epoch after eviction = %d, want 3", v.Epoch)
	}
	if got := n.Metrics().MembersFailed; got != 1 {
		t.Fatalf("members_failed = %d, want 1", got)
	}

	// Epoch carry: a survivor of a dead coordinator heartbeats with the
	// higher epoch it saw there; this coordinator must jump strictly past
	// it (plus the membership-change bump for the admission itself).
	if rec := beat(t, n, `{"id":"m3","addr":"http://m3","epoch":50}`); rec.Code != http.StatusOK {
		t.Fatalf("carried-epoch heartbeat: status %d", rec.Code)
	}
	if got := n.View().Epoch; got <= 50 {
		t.Fatalf("epoch %d not strictly past the carried 50", got)
	}
}

// TestPromoteDemoteLifecycleDeterministic walks one node through the
// whole coordinator lifecycle on a fake clock: as a member it must not
// steal a live (unexpired) lease; once the dead coordinator's grant
// lapses it wins the race, promotes with a strictly higher epoch, and
// publishes itself in the record; renewal inside the TTL succeeds; and
// when a rival steals the expired lease, the next renewal demotes the
// node, which follows the rival's record.
func TestPromoteDemoteLifecycleDeterministic(t *testing.T) {
	fc := newFakeClock()
	dir := t.TempDir()
	srv, err := server.New(server.Config{Seed: 1, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	srv.Disk().SetClock(fc.Now)
	n, err := NewNode(Config{ID: "m2", Server: srv, Clock: fc, DisableReplication: true})
	if err != nil {
		t.Fatal(err)
	}

	// The "dead" coordinator m1: a second cache handle on the same
	// directory holds the lease and record, then never renews.
	other, err := diskcache.Open(dir, diskcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	other.SetClock(fc.Now)
	if _, err := other.AcquireLease(coordLeaseName, "m1", n.cfg.SuspectAfter); err != nil {
		t.Fatal(err)
	}
	buf, _ := json.Marshal(coordRecord{ID: "m1", Addr: "http://m1", Epoch: 7})
	other.Put(coordRecordKey(), buf)

	n.mu.Lock()
	n.self = Member{ID: "m2", Addr: "http://m2", Role: RoleMember}
	n.coordAddr = "http://m1"
	n.view = View{Epoch: 7, Members: []Member{
		{ID: "m1", Addr: "http://m1", Role: RoleCoordinator},
		{ID: "m2", Addr: "http://m2", Role: RoleMember},
	}}
	n.lastContact = fc.Now()
	n.mu.Unlock()

	// Inside the TTL the dead coordinator's grant still holds: no steal.
	n.attemptFailover()
	if m := n.Metrics(); m.Role != RoleMember || m.Promotions != 0 {
		t.Fatalf("stole a live lease: %+v", m)
	}

	// Past the TTL the orphaned grant is reclaimable: promote.
	fc.Advance(n.cfg.SuspectAfter + time.Second)
	n.attemptFailover()
	m := n.Metrics()
	if m.Role != RoleCoordinator || !m.LeaseHeld || m.Promotions != 1 {
		t.Fatalf("promotion failed: %+v", m)
	}
	if m.Epoch != 8 {
		t.Fatalf("promoted epoch = %d, want 8 (strictly past the dead coordinator's 7)", m.Epoch)
	}
	v := n.View()
	if len(v.Members) != 1 || v.Members[0].ID != "m2" || v.Members[0].Role != RoleCoordinator {
		t.Fatalf("promoted view must drop the dead coordinator and lead itself: %+v", v)
	}
	if rec, ok := n.readCoordRecord(); !ok || rec.ID != "m2" || rec.Epoch != 8 {
		t.Fatalf("record not republished by the winner: %+v (ok=%v)", rec, ok)
	}

	// Renewal inside the TTL keeps the coordinator seated.
	fc.Advance(n.cfg.SuspectAfter / 2)
	n.maintainLease()
	if m := n.Metrics(); m.Role != RoleCoordinator || m.Demotions != 0 {
		t.Fatalf("renewal inside the TTL demoted: %+v", m)
	}

	// A rival steals the lease after this coordinator stalls past the
	// TTL; the next renewal observes the loss and demotes, following the
	// rival's record.
	fc.Advance(n.cfg.SuspectAfter + time.Second)
	if _, err := other.AcquireLease(coordLeaseName, "m3", time.Hour); err != nil {
		t.Fatalf("rival steal of the expired lease: %v", err)
	}
	rbuf, _ := json.Marshal(coordRecord{ID: "m3", Addr: "http://m3", Epoch: 9})
	other.Put(coordRecordKey(), rbuf)
	n.maintainLease()
	m = n.Metrics()
	if m.Role != RoleMember || m.LeaseHeld || m.Demotions != 1 {
		t.Fatalf("lost lease did not demote: %+v", m)
	}
	n.mu.Lock()
	gotAddr := n.coordAddr
	n.mu.Unlock()
	if gotAddr != "http://m3" {
		t.Fatalf("demoted node follows %q, want the rival's record http://m3", gotAddr)
	}
}

// TestFailoverFaultStages exercises the two chaos stall points: a
// "cluster-promote" fault keeps a candidate out of the lease race (so
// chaos tests can pick the winner), and a "cluster-replicate" fault
// stalls a replication round. Both are counted, neither advances state.
func TestFailoverFaultStages(t *testing.T) {
	fc := newFakeClock()
	dir := t.TempDir()
	srv, err := server.New(server.Config{Seed: 1, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	srv.Disk().SetClock(fc.Now)
	n, err := NewNode(Config{ID: "m2", Server: srv, Clock: fc})
	if err != nil {
		t.Fatal(err)
	}
	n.mu.Lock()
	n.self = Member{ID: "m2", Addr: "http://m2", Role: RoleMember}
	n.coordAddr = "http://m1"
	n.view = View{Epoch: 3, Members: []Member{
		{ID: "m1", Addr: "http://m1", Role: RoleCoordinator},
		{ID: "m2", Addr: "http://m2", Role: RoleMember},
	}}
	n.mu.Unlock()

	restore := faults.Activate(faults.New().
		Enable("cluster-promote", "m2", faults.Rule{Kind: faults.Error, Count: 1}).
		Enable("cluster-replicate", "m2", faults.Rule{Kind: faults.Error, Count: 1}))
	defer restore()

	// The stalled candidate sits out the race even with the lease free.
	n.attemptFailover()
	if m := n.Metrics(); m.PromoteStalled != 1 || m.Promotions != 0 || m.Role != RoleMember {
		t.Fatalf("stalled candidate still raced: %+v", m)
	}
	// Once the fault is spent, the same call wins.
	n.attemptFailover()
	if m := n.Metrics(); m.Role != RoleCoordinator || m.Promotions != 1 {
		t.Fatalf("post-stall promotion failed: %+v", m)
	}

	// A stalled replication round does no work and counts itself.
	n.replicateRound(context.Background())
	if m := n.Metrics(); m.Replication.Stalled != 1 || m.Replication.Rounds != 0 {
		t.Fatalf("stalled round miscounted: %+v", m.Replication)
	}
	n.replicateRound(context.Background())
	if m := n.Metrics(); m.Replication.Rounds != 1 {
		t.Fatalf("post-stall round never ran: %+v", m.Replication)
	}
}
