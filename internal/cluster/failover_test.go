package cluster_test

// End-to-end coordinator failover and heir replication over real HTTP
// listeners. These run in tier-1 (no race tag) on the small fabric with
// test-fast heartbeats; the 204-device versions live in the chaos suite.

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/server"
)

// TestCoordinatorFailoverEndToEnd kills the coordinator of a 3-member
// cluster. Exactly one survivor must win the lease race and promote with
// a strictly higher epoch, the other must converge on it through the
// shared record, questions for the dead coordinator's snapshot must keep
// answering (the heir rehydrates warm), and a latecomer pointed at the
// dead coordinator's address must still join via the record.
func TestCoordinatorFailoverEndToEnd(t *testing.T) {
	texts := smallFabric("cf")
	dir := t.TempDir()
	hb := 50 * time.Millisecond
	n1 := startNode(t, "m1", "", server.Config{CacheDir: dir}, fastCfg(hb))
	n2 := startNode(t, "m2", n1.ts.URL, server.Config{CacheDir: dir, Seed: 2}, fastCfg(hb))
	n3 := startNode(t, "m3", n1.ts.URL, server.Config{CacheDir: dir, Seed: 3}, fastCfg(hb))
	v := waitMembers(t, n1, 3, 2*time.Second)
	epoch0 := v.Epoch

	// A snapshot owned by the coordinator itself, falling over to m3.
	name := ownedBy(t, v.Members, "m1", "m3")
	c := n2.ts.Client()
	resp, body := doJSON(t, c, http.MethodPut, n2.ts.URL+"/snapshots/"+name,
		map[string]any{"configs": texts}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("load: %d %v", resp.StatusCode, body)
	}
	q := "/reachability?" + srcQuery(texts)
	_, warm := doJSON(t, c, http.MethodGet, n2.ts.URL+"/snapshots/"+name+q, nil, nil)
	want, _ := warm["text"].(string)
	if want == "" {
		t.Fatalf("warm answer empty: %v", warm)
	}

	// Kill the coordinator: sever connections, stop its loops.
	n1.ts.Listener.Close()
	n1.ts.CloseClientConnections()
	n1.n.Kill()

	// One survivor promotes; both converge on a 2-member view.
	deadline := time.Now().Add(5 * time.Second)
	var coord, follower *testNode
	for coord == nil {
		if time.Now().After(deadline) {
			t.Fatalf("no survivor promoted: m2=%+v m3=%+v", n2.n.Metrics(), n3.n.Metrics())
		}
		m2m, m3m := n2.n.Metrics(), n3.n.Metrics()
		switch {
		case m2m.Role == cluster.RoleCoordinator && m2m.Members == 2 && m3m.Members == 2:
			coord, follower = n2, n3
		case m3m.Role == cluster.RoleCoordinator && m3m.Members == 2 && m2m.Members == 2:
			coord, follower = n3, n2
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
	cm := coord.n.Metrics()
	if cm.Epoch <= epoch0 {
		t.Fatalf("epoch did not advance across failover: %d <= %d", cm.Epoch, epoch0)
	}
	if !cm.LeaseHeld || cm.Promotions == 0 {
		t.Fatalf("new coordinator without lease or promotion: %+v", cm)
	}
	if fm := follower.n.Metrics(); fm.Role != cluster.RoleMember || fm.LeaseHeld {
		t.Fatalf("split brain: follower %s claims coordination: %+v", follower.id, fm)
	}
	if fm := follower.n.Metrics(); fm.CoordAdoptions == 0 {
		t.Fatalf("follower never adopted the successor from the record: %+v", fm)
	}
	for _, m := range coord.n.View().Members {
		if m.ID == "m1" {
			t.Fatalf("dead coordinator still in the view: %+v", coord.n.View())
		}
	}

	// The dead coordinator's snapshot keeps answering identically: the
	// heir rehydrates it warm from the shared cache.
	_, after := doJSON(t, follower.ts.Client(), http.MethodGet,
		follower.ts.URL+"/snapshots/"+name+q, nil, nil)
	if after["text"] != want {
		t.Fatalf("post-failover answer differs:\n--- got ---\n%v\n--- want ---\n%s", after["text"], want)
	}
	if r := n3.n.Metrics().Rehydrations; r != 1 {
		t.Fatalf("heir rehydrations = %d, want 1", r)
	}

	// A latecomer still pointed at the dead coordinator joins through the
	// record fallback in Start.
	n4 := startNode(t, "m4", n1.ts.URL, server.Config{CacheDir: dir, Seed: 4}, fastCfg(hb))
	waitMembers(t, n4, 3, 2*time.Second)
}

// TestHeirReplicationAcrossSplitCaches runs a 2-member cluster whose
// members do NOT share a cache directory, so the anti-entropy replicator
// must move manifest and artifact bytes over /cluster/artifact. Once the
// heir reports zero lag, the owner (also the coordinator) is killed with
// a parse-stage fault armed: the survivor must promote itself and answer
// the dead owner's question from its own pre-replicated cache — zero
// cold parses.
func TestHeirReplicationAcrossSplitCaches(t *testing.T) {
	texts := smallFabric("rp")
	hb := 50 * time.Millisecond
	ccfg := fastCfg(hb)
	ccfg.ReplicateEvery = hb // anti-entropy fast enough to observe
	n1 := startNode(t, "m1", "", server.Config{CacheDir: t.TempDir()}, ccfg)
	n2 := startNode(t, "m2", n1.ts.URL, server.Config{CacheDir: t.TempDir(), Seed: 2}, ccfg)
	v := waitMembers(t, n1, 2, 2*time.Second)
	name := ownedBy(t, v.Members, "m1", "m2")

	c := n1.ts.Client()
	resp, body := doJSON(t, c, http.MethodPut, n1.ts.URL+"/snapshots/"+name,
		map[string]any{"configs": texts}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("load: %d %v", resp.StatusCode, body)
	}
	q := "/reachability?" + srcQuery(texts)
	_, warm := doJSON(t, c, http.MethodGet, n1.ts.URL+"/snapshots/"+name+q, nil, nil)
	want, _ := warm["text"].(string)
	if want == "" {
		t.Fatalf("warm answer empty: %v", warm)
	}

	// Wait for the heir to be fully warm: every artifact key fetched.
	deadline := time.Now().Add(5 * time.Second)
	for {
		rs := n2.n.Metrics().Replication
		if rs.HeirSnapshots >= 1 && rs.Keys > 0 && rs.Lag == 0 && rs.Fetched > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("heir never warmed: %+v", rs)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Replication lag is operator-visible on /cluster/members.
	_, mb := doJSON(t, c, http.MethodGet, n2.ts.URL+"/cluster/members", nil, nil)
	if _, ok := mb["replication"]; !ok {
		t.Fatalf("/cluster/members missing replication status: %v", mb)
	}

	// Any cold parse from here on fails the test.
	inj := faults.New().Enable("parse", "*", faults.Rule{Kind: faults.Panic})
	restore := faults.Activate(inj)
	defer restore()

	n1.ts.Listener.Close()
	n1.ts.CloseClientConnections()
	n1.n.Kill()

	// The sole survivor promotes itself (its own cache anchors its lease).
	deadline = time.Now().Add(5 * time.Second)
	for {
		m := n2.n.Metrics()
		if m.Role == cluster.RoleCoordinator && m.Members == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("survivor never promoted: %+v", m)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The dead owner's snapshot answers from the heir's own cache: the
	// manifest and every artifact were replicated before the crash.
	_, after := doJSON(t, n2.ts.Client(), http.MethodGet, n2.ts.URL+"/snapshots/"+name+q, nil, nil)
	if after["text"] != want {
		t.Fatalf("post-failover answer differs:\n--- got ---\n%v\n--- want ---\n%s", after["text"], want)
	}
	m := n2.n.Metrics()
	if m.Rehydrations != 1 {
		t.Fatalf("rehydrations = %d, want 1", m.Rehydrations)
	}
	if d := n2.srv.Metrics().Disk; d.Hits == 0 {
		t.Fatalf("heir rebuilt cold — no local cache hits: %+v", d)
	}
	for k, hits := range inj.Hits() {
		if strings.HasPrefix(k, "parse/") {
			t.Fatalf("cold parse reached the armed fault: %s fired %d times", k, hits)
		}
	}
}
