// Package cluster turns independent batfishd servers into one service:
// a coordinator tracks membership through periodic heartbeats and a
// timeout failure detector, snapshots are owned by rendezvous hashing
// over the live member set, and every node transparently forwards
// requests for snapshots it does not own to the owning member. When the
// detector declares a member dead the view epoch advances, ownership of
// its snapshots moves deterministically to the surviving members, and
// the heir rehydrates them from manifests in the shared content-addressed
// disk cache — warm-starting from the dead member's parse and dataplane
// artifacts instead of recomputing them.
//
// The design follows the coordinator/member pattern: exactly one node is
// the coordinator (initially, the one started without a join address)
// and holds the authoritative view; members learn the view from
// heartbeat responses. The coordinator is a regular snapshot-serving
// member too — and it is not a single point of failure: its authority is
// backed by a renewable lease on the shared disk cache, and when members
// lose contact with it past the suspicion window they race to acquire
// that lease, the winner promoting itself with an epoch strictly past
// any it has seen (promote.go). Each member also runs an anti-entropy
// replicator that pre-fetches artifacts for the snapshots it is heir to,
// so failover rehydration starts warm (replicate.go).
package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/diskcache"
	"repro/internal/server"
)

// Roles a member registers with.
const (
	RoleCoordinator = "coordinator"
	RoleMember      = "member"
)

// HopHeader marks a request as already forwarded once (request side) and
// names the relaying member (response side). The hop limit is 1: a node
// receiving a forwarded request for a snapshot it does not own answers
// 502 instead of forwarding again, so divergent views can never loop a
// request around the cluster.
const HopHeader = "X-Batfish-Forwarded-By"

// maxBody bounds buffered request bodies, mirroring the server's limit.
const maxBody = 64 << 20

// Member is one node's identity in the cluster view.
type Member struct {
	ID   string `json:"id"`
	Addr string `json:"addr"` // base URL, e.g. http://10.0.0.7:7071
	Role string `json:"role"`
	// Epoch rides only on join/heartbeat request bodies: the sender's
	// current view epoch. A freshly promoted coordinator uses it to jump
	// its own epoch strictly past anything the dead coordinator handed
	// out before the crash. Always zero inside views.
	Epoch int64 `json:"epoch,omitempty"`
}

// View is the membership at one epoch. Members are sorted by ID; the
// epoch advances on every join, leave, and failure-detector removal, so
// forwarders can wait for "a view newer than the one that failed me".
type View struct {
	Epoch   int64    `json:"epoch"`
	Members []Member `json:"members"`
}

// clone returns a deep copy safe to hand out without holding locks.
func (v View) clone() View {
	out := View{Epoch: v.Epoch, Members: make([]Member, len(v.Members))}
	copy(out.Members, v.Members)
	return out
}

// Config configures one cluster node.
type Config struct {
	// ID is the member's stable identity (hash input for ownership).
	ID string
	// Server is the wrapped analysis server.
	Server *server.Server
	// Heartbeat is the member→coordinator heartbeat period (default 1s).
	Heartbeat time.Duration
	// SuspectAfter is how long a member may stay silent before the
	// detector declares it dead (default 2×Heartbeat — "failover within
	// two heartbeat intervals").
	SuspectAfter time.Duration
	// FailoverWait bounds how long a forwarder waits for a view change
	// after the owner stops answering (default SuspectAfter+2×Heartbeat:
	// the detector needs SuspectAfter to notice, plus heartbeat slack for
	// the new view to propagate).
	FailoverWait time.Duration
	// ForwardRetries is how many times a forwarder re-resolves the owner
	// after a transport failure before giving up with 502 (default 2).
	ForwardRetries int
	// Client performs forwarded and cluster-control requests (default: a
	// dedicated client; the shared http.DefaultClient is never mutated).
	Client *http.Client
	// Logf, when set, receives membership and failover events.
	Logf func(format string, args ...any)
	// Clock is the node's time source (default: the wall clock). Tests
	// inject a fake to drive detection and failover without sleeping.
	Clock Clock
	// DisableFailover turns off lease-based coordinator failover. The
	// zero value enables it — robustness by default — though it is inert
	// without a disk cache to hold the lease.
	DisableFailover bool
	// DisableReplication turns off the anti-entropy heir replicator. The
	// zero value enables it; inert without a disk cache.
	DisableReplication bool
	// ReplicateEvery is the heir replicator's round period (default
	// 5×Heartbeat — replication is anti-entropy, not a hot path).
	ReplicateEvery time.Duration
	// ReplicateBurst bounds artifact fetches per replication round
	// (default 64); presence probes against the local cache are unmetered.
	ReplicateBurst int
}

func (c *Config) defaults() error {
	if c.ID == "" {
		return fmt.Errorf("cluster: config needs a member ID")
	}
	if c.Server == nil {
		return fmt.Errorf("cluster: config needs a server")
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = time.Second
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 2 * c.Heartbeat
	}
	if c.FailoverWait <= 0 {
		c.FailoverWait = c.SuspectAfter + 2*c.Heartbeat
	}
	if c.ForwardRetries == 0 {
		c.ForwardRetries = 2
	}
	if c.ForwardRetries < 0 {
		c.ForwardRetries = 0
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.Clock == nil {
		c.Clock = systemClock{}
	}
	if c.ReplicateEvery <= 0 {
		c.ReplicateEvery = 5 * c.Heartbeat
	}
	if c.ReplicateBurst <= 0 {
		c.ReplicateBurst = 64
	}
	return nil
}

// Node is one cluster member wrapping a server.Server. Construct with
// NewNode, wire Handler into a listener, then Start.
type Node struct {
	cfg   Config
	inner *server.Server
	mux   *http.ServeMux

	mu          sync.Mutex
	self        Member
	coordinator bool
	coordAddr   string // coordinator base URL (members only)
	view        View
	lastSeen    map[string]time.Time // coordinator: member ID → last heartbeat
	draining    bool
	lease       *diskcache.Lease // coordinator: the held coordinator lease (nil when failover is off)
	renewFails  time.Time        // coordinator: start of the current lease-renew failure streak
	lastContact time.Time        // member: last successful exchange with the coordinator
	lastBeat    time.Time        // member: last heartbeat attempt (the loop ticks faster than it beats)

	stop     chan struct{}
	stopOnce sync.Once
	loops    sync.WaitGroup

	m nodeCounters
}

// NewNode builds a node around the given server and registers the
// cluster metrics hook. The node is inert until Start.
func NewNode(cfg Config) (*Node, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	n := &Node{
		cfg:      cfg,
		inner:    cfg.Server,
		mux:      http.NewServeMux(),
		lastSeen: make(map[string]time.Time),
		stop:     make(chan struct{}),
	}
	n.routes()
	n.inner.SetClusterMetrics(func() any { return n.Metrics() })
	return n, nil
}

// Handler serves the node's full surface: the wrapped server's API with
// ownership routing, plus the /cluster/* control endpoints.
func (n *Node) Handler() http.Handler { return n.mux }

// Start brings the node online. An empty joinAddr makes this node the
// coordinator — unless another coordinator already holds the lease on the
// shared cache (a restarted ex-coordinator, say), in which case the node
// defers to it and comes up as a member. Otherwise it registers with the
// coordinator at joinAddr and starts heartbeating; if that target turns
// out dead or demoted, the coordinator record in the shared cache names
// the live one to join instead. advertiseAddr is the base URL other
// members reach this node at. The background loops stop when ctx is
// cancelled, Kill is called, or Drain completes.
func (n *Node) Start(ctx context.Context, advertiseAddr, joinAddr string) error {
	self := Member{ID: n.cfg.ID, Addr: advertiseAddr, Role: RoleMember}
	if joinAddr == "" {
		if addr, became := n.bootstrapCoordinator(self); became {
			n.loops.Add(1)
			go n.runLoop(ctx)
			n.startReplicator(ctx)
			n.cfg.Logf("cluster: %s coordinating at %s", self.ID, advertiseAddr)
			return nil
		} else {
			joinAddr = addr
			n.cfg.Logf("cluster: %s found a live coordinator lease, joining %s as a member", self.ID, addr)
		}
	}
	n.mu.Lock()
	n.self = self
	n.coordAddr = joinAddr
	n.lastBeat = n.now()
	n.lastContact = n.now()
	n.mu.Unlock()
	v, err := n.postMember(ctx, joinAddr+"/cluster/join", self)
	if err != nil {
		// The join target may itself have died or been demoted since the
		// operator copied its address; the coordinator record in the shared
		// cache names the live one.
		rec, ok := n.readCoordRecord()
		if !ok || rec.Addr == joinAddr || rec.ID == n.cfg.ID {
			return fmt.Errorf("cluster: join %s: %w", joinAddr, err)
		}
		n.cfg.Logf("cluster: %s join %s failed (%v); retrying via coordinator record at %s",
			self.ID, joinAddr, err, rec.Addr)
		joinAddr = rec.Addr
		n.mu.Lock()
		n.coordAddr = joinAddr
		n.mu.Unlock()
		if v, err = n.postMember(ctx, joinAddr+"/cluster/join", self); err != nil {
			return fmt.Errorf("cluster: join %s: %w", joinAddr, err)
		}
	}
	n.setView(v)
	n.loops.Add(1)
	go n.runLoop(ctx)
	n.startReplicator(ctx)
	n.cfg.Logf("cluster: %s joined %s (epoch %d)", self.ID, joinAddr, v.Epoch)
	return nil
}

// Kill stops the node's background loops without leaving the cluster or
// draining — the crash path (tests pair it with closing the listener).
// The coordinator's failure detector must notice the silence.
func (n *Node) Kill() {
	n.stopOnce.Do(func() { close(n.stop) })
	n.loops.Wait()
}

// Drain takes the node out of service gracefully: hand off snapshot
// ownership by leaving the view (so new requests route to the heirs,
// which rehydrate from the shared cache), stop heartbeating, then drain
// the wrapped server — new work is rejected with 503, in-flight work
// finishes (bounded by ctx).
func (n *Node) Drain(ctx context.Context) error {
	n.mu.Lock()
	already := n.draining
	n.draining = true
	coordinator, coordAddr, self := n.coordinator, n.coordAddr, n.self
	n.mu.Unlock()
	if !already {
		if coordinator {
			n.mu.Lock()
			if n.removeMemberLocked(self.ID) {
				n.view.Epoch++
			}
			lease := n.lease
			n.lease = nil
			n.mu.Unlock()
			// Releasing (rather than letting it lapse) lets a surviving
			// member win the coordinator race immediately instead of
			// waiting out the suspicion window.
			n.releaseLease(lease, "coordinator")
		} else if _, err := n.postMember(ctx, coordAddr+"/cluster/leave", self); err != nil {
			n.cfg.Logf("cluster: %s leave failed: %v", self.ID, err)
		}
		n.stopOnce.Do(func() { close(n.stop) })
		n.loops.Wait()
		n.cfg.Logf("cluster: %s drained out of the view", self.ID)
	}
	return n.inner.Drain(ctx)
}

// View returns the node's current membership view.
func (n *Node) View() View {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.view.clone()
}

// setView adopts a newer view learned from the coordinator — and, on
// members, re-derives the coordinator address from it, so heartbeats and
// forwarding retries follow a coordinator change instead of polling the
// corpse of the node they first joined.
func (n *Node) setView(v View) {
	n.mu.Lock()
	if v.Epoch > n.view.Epoch {
		n.view = v.clone()
		if !n.coordinator {
			for _, m := range n.view.Members {
				if m.Role == RoleCoordinator && m.ID != n.self.ID && m.Addr != "" {
					n.coordAddr = m.Addr
				}
			}
		}
	}
	n.mu.Unlock()
}

// setMemberLocked upserts a member into the sorted view, reporting
// whether the view changed. Callers hold n.mu and bump the epoch on
// change.
func (n *Node) setMemberLocked(m Member) bool {
	for i, cur := range n.view.Members {
		if cur.ID == m.ID {
			if cur == m {
				return false
			}
			n.view.Members[i] = m
			return true
		}
	}
	n.view.Members = append(n.view.Members, m)
	sort.Slice(n.view.Members, func(i, j int) bool {
		return n.view.Members[i].ID < n.view.Members[j].ID
	})
	return true
}

// removeMemberLocked drops a member from the view, reporting whether it
// was present. Callers hold n.mu and bump the epoch on change.
func (n *Node) removeMemberLocked(id string) bool {
	for i, cur := range n.view.Members {
		if cur.ID == id {
			n.view.Members = append(n.view.Members[:i], n.view.Members[i+1:]...)
			return true
		}
	}
	return false
}

// nodeCounters is the node's hot-path instrumentation.
type nodeCounters struct {
	forwarded         atomic.Int64
	forwardRetries    atomic.Int64
	forwardLoops      atomic.Int64
	forwardFailed     atomic.Int64
	relayed429        atomic.Int64
	relayed503        atomic.Int64
	heartbeatsSent    atomic.Int64
	heartbeatsMissed  atomic.Int64
	heartbeatsDropped atomic.Int64
	membersFailed     atomic.Int64
	rehydrations      atomic.Int64
	manifestPuts      atomic.Int64
	sweepClassesIn    atomic.Int64
	sweepFallback     atomic.Int64

	// Coordinator failover (promote.go).
	promotions     atomic.Int64
	demotions      atomic.Int64
	coordAdoptions atomic.Int64
	promoteStalled atomic.Int64

	// Heir replication (replicate.go). The first five are counters; the
	// last three are gauges rewritten after every replication round.
	replRounds        atomic.Int64
	replWarm          atomic.Int64
	replFetched       atomic.Int64
	replErrors        atomic.Int64
	replStalled       atomic.Int64
	replHeirSnapshots atomic.Int64
	replKeys          atomic.Int64
	replLag           atomic.Int64
}
