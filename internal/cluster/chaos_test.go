//go:build race

// The chaos suite runs only under the race detector (`make
// cluster-chaos`): it exercises the cluster's concurrent failover
// machinery — detector, forwarder retry, rehydration lease — under real
// goroutine interleavings, and the race build tag keeps its two full
// 204-device fabric builds out of the plain tier-1 test run.

package cluster_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/netgen"
	"repro/internal/server"
)

func bigFabric() map[string]string {
	gen := netgen.Fabric(netgen.FabricParams{Name: "cx", Spines: 4, Pods: 10,
		AggPerPod: 2, TorPerPod: 18, HostNetsPerTor: 1, Multipath: true})
	texts := make(map[string]string, len(gen.Devices))
	for _, d := range gen.Devices {
		texts[d.Hostname] = d.Text
	}
	return texts
}

// TestClusterChaosKillOwnerFailover is the acceptance scenario: a
// 3-member cluster over one shared cache serves the 204-device fabric;
// the snapshot's owner is killed while a question is in flight on it; the
// forwarder must retry the question against the new owner once the
// failure detector declares the death, and the answer must be
// byte-identical to a single-process run — with the new owner
// warm-starting from the dead member's cached artifacts rather than
// recomputing.
func TestClusterChaosKillOwnerFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short")
	}
	texts := bigFabric()
	scfg := func(seed int64, dir string) server.Config {
		return server.Config{Seed: seed, CacheDir: dir, MaxConcurrent: 4,
			QueueWait: 2 * time.Minute, RequestTimeout: 5 * time.Minute}
	}

	// Single-process reference answer.
	ref, err := server.New(scfg(1, t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(ref.Handler())
	t.Cleanup(rts.Close)
	resp, body := doJSON(t, rts.Client(), http.MethodPut, rts.URL+"/snapshots/ref",
		map[string]any{"configs": texts}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reference load: %d %v", resp.StatusCode, body)
	}
	q := "/reachability?" + srcQuery(texts)
	_, refAns := doJSON(t, rts.Client(), http.MethodGet, rts.URL+"/snapshots/ref"+q, nil, nil)
	want, _ := refAns["text"].(string)
	if want == "" {
		t.Fatalf("reference answer empty: %v", refAns)
	}

	// 3-member cluster over one shared cache. Heartbeat timings are the
	// real control loop under test, so they are not test-fast.
	hb := 500 * time.Millisecond
	ccfg := cluster.Config{Heartbeat: hb, SuspectAfter: 2 * hb, FailoverWait: 4 * hb}
	dir := t.TempDir()
	n1 := startNode(t, "m1", "", scfg(1, dir), ccfg)
	n2 := startNode(t, "m2", n1.ts.URL, scfg(2, dir), ccfg)
	n3 := startNode(t, "m3", n1.ts.URL, scfg(3, dir), ccfg)
	v := waitMembers(t, n1, 3, 5*time.Second)

	// The snapshot must start on m2 and fail over to m3, so the heir's
	// warm start is observable on a node that never built the snapshot.
	name := ownedBy(t, v.Members, "m2", "m3")
	c := n1.ts.Client()
	resp, body = doJSON(t, c, http.MethodPut, n1.ts.URL+"/snapshots/"+name,
		map[string]any{"configs": texts}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster load: %d %v", resp.StatusCode, body)
	}

	// Warm question: commits m2's parse + dataplane artifacts to the
	// shared cache and proves the forwarded path agrees with the
	// reference before any chaos.
	_, warm := doJSON(t, c, http.MethodGet, n1.ts.URL+"/snapshots/"+name+q, nil, nil)
	if warm["text"] != want {
		t.Fatalf("pre-chaos forwarded answer differs from single-process run")
	}

	// Slow the owner's next request so the kill lands mid-question, then
	// fire the question through the forwarder.
	restore := faults.Activate(faults.New().Enable("cluster-serve", "m2",
		faults.Rule{Kind: faults.Sleep, Sleep: 1500 * time.Millisecond, Count: 1}))
	defer restore()
	type answer struct {
		status int
		hop    string
		body   map[string]any
	}
	done := make(chan answer, 1)
	go func() {
		req, _ := http.NewRequest(http.MethodGet, n1.ts.URL+"/snapshots/"+name+q, nil)
		resp, err := c.Do(req)
		if err != nil {
			done <- answer{status: -1}
			return
		}
		var m map[string]any
		json.NewDecoder(resp.Body).Decode(&m) //nolint:errcheck // status drives the assertions
		resp.Body.Close()
		done <- answer{status: resp.StatusCode, hop: resp.Header.Get(cluster.HopHeader), body: m}
	}()

	// Let the question reach m2 and park in the injected sleep, then kill
	// the owner: sever its in-flight connections and stop its loops.
	time.Sleep(300 * time.Millisecond)
	t0 := time.Now()
	// A real kill: stop accepting (or the transport would transparently
	// re-dial the idempotent GET and the "dead" owner would answer),
	// sever in-flight connections, stop the cluster loops.
	n2.ts.Listener.Close()
	n2.ts.CloseClientConnections()
	n2.n.Kill()

	// The detector must evict the dead owner within its suspicion window
	// (2 heartbeats) plus detector-tick slack.
	v = waitMembers(t, n1, 2, ccfg.SuspectAfter+2*hb)
	failover := time.Since(t0)
	for _, m := range v.Members {
		if m.ID == "m2" {
			t.Fatal("dead member still in view")
		}
	}
	t.Logf("failover: view healed in %v (suspect window %v)", failover, ccfg.SuspectAfter)

	// The in-flight question must complete on the new owner with the
	// byte-identical answer.
	var ans answer
	select {
	case ans = <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("question never completed after owner death")
	}
	if ans.status != http.StatusOK {
		t.Fatalf("post-kill question: status %d body %v", ans.status, ans.body)
	}
	if ans.hop != "m1" {
		t.Fatalf("post-kill answer missing forwarder hop header: %q", ans.hop)
	}
	if got, _ := ans.body["text"].(string); got != want {
		t.Fatalf("failover answer differs from single-process run:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// Warm start: the heir rehydrated from the manifest and served from
	// the shared cache the dead member populated — not a cold recompute.
	if m := n3.n.Metrics(); m.Rehydrations != 1 {
		t.Fatalf("heir rehydrations = %d, want 1 (%+v)", m.Rehydrations, m)
	}
	if d := n3.srv.Metrics().Disk; d.Hits == 0 {
		t.Fatalf("heir rebuilt cold — no shared-cache hits: %+v", d)
	}
	if m := n1.n.Metrics(); m.ForwardRetries == 0 {
		t.Fatalf("forwarder never retried: %+v", m)
	}
}
