//go:build race

// The chaos suite runs only under the race detector (`make
// cluster-chaos`): it exercises the cluster's concurrent failover
// machinery — detector, forwarder retry, rehydration lease — under real
// goroutine interleavings, and the race build tag keeps its two full
// 204-device fabric builds out of the plain tier-1 test run.

package cluster_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/netgen"
	"repro/internal/server"
)

func bigFabric() map[string]string {
	gen := netgen.Fabric(netgen.FabricParams{Name: "cx", Spines: 4, Pods: 10,
		AggPerPod: 2, TorPerPod: 18, HostNetsPerTor: 1, Multipath: true})
	texts := make(map[string]string, len(gen.Devices))
	for _, d := range gen.Devices {
		texts[d.Hostname] = d.Text
	}
	return texts
}

// TestClusterChaosKillOwnerFailover is the acceptance scenario: a
// 3-member cluster over one shared cache serves the 204-device fabric;
// the snapshot's owner is killed while a question is in flight on it; the
// forwarder must retry the question against the new owner once the
// failure detector declares the death, and the answer must be
// byte-identical to a single-process run — with the new owner
// warm-starting from the dead member's cached artifacts rather than
// recomputing.
func TestClusterChaosKillOwnerFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short")
	}
	texts := bigFabric()
	scfg := func(seed int64, dir string) server.Config {
		return server.Config{Seed: seed, CacheDir: dir, MaxConcurrent: 4,
			QueueWait: 2 * time.Minute, RequestTimeout: 5 * time.Minute}
	}

	// Single-process reference answer.
	ref, err := server.New(scfg(1, t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(ref.Handler())
	t.Cleanup(rts.Close)
	resp, body := doJSON(t, rts.Client(), http.MethodPut, rts.URL+"/snapshots/ref",
		map[string]any{"configs": texts}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reference load: %d %v", resp.StatusCode, body)
	}
	q := "/reachability?" + srcQuery(texts)
	_, refAns := doJSON(t, rts.Client(), http.MethodGet, rts.URL+"/snapshots/ref"+q, nil, nil)
	want, _ := refAns["text"].(string)
	if want == "" {
		t.Fatalf("reference answer empty: %v", refAns)
	}

	// 3-member cluster over one shared cache. Heartbeat timings are the
	// real control loop under test, so they are not test-fast.
	hb := 500 * time.Millisecond
	ccfg := cluster.Config{Heartbeat: hb, SuspectAfter: 2 * hb, FailoverWait: 4 * hb}
	dir := t.TempDir()
	n1 := startNode(t, "m1", "", scfg(1, dir), ccfg)
	n2 := startNode(t, "m2", n1.ts.URL, scfg(2, dir), ccfg)
	n3 := startNode(t, "m3", n1.ts.URL, scfg(3, dir), ccfg)
	v := waitMembers(t, n1, 3, 5*time.Second)

	// The snapshot must start on m2 and fail over to m3, so the heir's
	// warm start is observable on a node that never built the snapshot.
	name := ownedBy(t, v.Members, "m2", "m3")
	c := n1.ts.Client()
	resp, body = doJSON(t, c, http.MethodPut, n1.ts.URL+"/snapshots/"+name,
		map[string]any{"configs": texts}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster load: %d %v", resp.StatusCode, body)
	}

	// Warm question: commits m2's parse + dataplane artifacts to the
	// shared cache and proves the forwarded path agrees with the
	// reference before any chaos.
	_, warm := doJSON(t, c, http.MethodGet, n1.ts.URL+"/snapshots/"+name+q, nil, nil)
	if warm["text"] != want {
		t.Fatalf("pre-chaos forwarded answer differs from single-process run")
	}

	// Slow the owner's next request so the kill lands mid-question, then
	// fire the question through the forwarder.
	restore := faults.Activate(faults.New().Enable("cluster-serve", "m2",
		faults.Rule{Kind: faults.Sleep, Sleep: 1500 * time.Millisecond, Count: 1}))
	defer restore()
	type answer struct {
		status int
		hop    string
		body   map[string]any
	}
	done := make(chan answer, 1)
	go func() {
		req, _ := http.NewRequest(http.MethodGet, n1.ts.URL+"/snapshots/"+name+q, nil)
		resp, err := c.Do(req)
		if err != nil {
			done <- answer{status: -1}
			return
		}
		var m map[string]any
		json.NewDecoder(resp.Body).Decode(&m) //nolint:errcheck // status drives the assertions
		resp.Body.Close()
		done <- answer{status: resp.StatusCode, hop: resp.Header.Get(cluster.HopHeader), body: m}
	}()

	// Let the question reach m2 and park in the injected sleep, then kill
	// the owner: sever its in-flight connections and stop its loops.
	time.Sleep(300 * time.Millisecond)
	t0 := time.Now()
	// A real kill: stop accepting (or the transport would transparently
	// re-dial the idempotent GET and the "dead" owner would answer),
	// sever in-flight connections, stop the cluster loops.
	n2.ts.Listener.Close()
	n2.ts.CloseClientConnections()
	n2.n.Kill()

	// The detector must evict the dead owner within its suspicion window
	// (2 heartbeats) plus detector-tick slack.
	v = waitMembers(t, n1, 2, ccfg.SuspectAfter+2*hb)
	failover := time.Since(t0)
	for _, m := range v.Members {
		if m.ID == "m2" {
			t.Fatal("dead member still in view")
		}
	}
	t.Logf("failover: view healed in %v (suspect window %v)", failover, ccfg.SuspectAfter)

	// The in-flight question must complete on the new owner with the
	// byte-identical answer.
	var ans answer
	select {
	case ans = <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("question never completed after owner death")
	}
	if ans.status != http.StatusOK {
		t.Fatalf("post-kill question: status %d body %v", ans.status, ans.body)
	}
	if ans.hop != "m1" {
		t.Fatalf("post-kill answer missing forwarder hop header: %q", ans.hop)
	}
	if got, _ := ans.body["text"].(string); got != want {
		t.Fatalf("failover answer differs from single-process run:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// Warm start: the heir rehydrated from the manifest and served from
	// the shared cache the dead member populated — not a cold recompute.
	if m := n3.n.Metrics(); m.Rehydrations != 1 {
		t.Fatalf("heir rehydrations = %d, want 1 (%+v)", m.Rehydrations, m)
	}
	if d := n3.srv.Metrics().Disk; d.Hits == 0 {
		t.Fatalf("heir rebuilt cold — no shared-cache hits: %+v", d)
	}
	if m := n1.n.Metrics(); m.ForwardRetries == 0 {
		t.Fatalf("forwarder never retried: %+v", m)
	}
}

// TestClusterChaosKillCoordinator is the coordinator-failover acceptance
// scenario: the coordinator of a 3-member cluster over one shared cache
// both coordinates AND owns the 204-device snapshot; it is killed while
// a question is parked on it. A member must win the lease race and
// promote within twice the member-failover budget, the epoch must
// strictly increase, the retried answer must be byte-identical to a
// single-process run, and a second owner-kill right after must rehydrate
// from pre-replicated artifacts with zero cold parses — a parse-stage
// panic fault is armed the whole time, so any cold parse fails the test.
func TestClusterChaosKillCoordinator(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short")
	}
	texts := bigFabric()
	scfg := func(seed int64, dir string) server.Config {
		return server.Config{Seed: seed, CacheDir: dir, MaxConcurrent: 4,
			QueueWait: 2 * time.Minute, RequestTimeout: 5 * time.Minute}
	}

	// Single-process reference answer.
	ref, err := server.New(scfg(1, t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(ref.Handler())
	t.Cleanup(rts.Close)
	resp, body := doJSON(t, rts.Client(), http.MethodPut, rts.URL+"/snapshots/ref",
		map[string]any{"configs": texts}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reference load: %d %v", resp.StatusCode, body)
	}
	q := "/reachability?" + srcQuery(texts)
	_, refAns := doJSON(t, rts.Client(), http.MethodGet, rts.URL+"/snapshots/ref"+q, nil, nil)
	want, _ := refAns["text"].(string)
	if want == "" {
		t.Fatalf("reference answer empty: %v", refAns)
	}

	// 3-member cluster, shared cache, real heartbeat timings. The
	// replicator runs every heartbeat so the heir is warm before chaos.
	hb := 500 * time.Millisecond
	ccfg := cluster.Config{Heartbeat: hb, SuspectAfter: 2 * hb, FailoverWait: 4 * hb,
		ReplicateEvery: hb}
	dir := t.TempDir()
	n1 := startNode(t, "m1", "", scfg(1, dir), ccfg)
	n2 := startNode(t, "m2", n1.ts.URL, scfg(2, dir), ccfg)
	n3 := startNode(t, "m3", n1.ts.URL, scfg(3, dir), ccfg)
	v := waitMembers(t, n1, 3, 5*time.Second)

	// The snapshot lives on the coordinator itself and falls over to m3,
	// so the first kill takes out membership authority and snapshot owner
	// in one blow.
	name := ownedBy(t, v.Members, "m1", "m3")
	c := n2.ts.Client()
	resp, body = doJSON(t, c, http.MethodPut, n2.ts.URL+"/snapshots/"+name,
		map[string]any{"configs": texts}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster load: %d %v", resp.StatusCode, body)
	}
	_, warm := doJSON(t, c, http.MethodGet, n2.ts.URL+"/snapshots/"+name+q, nil, nil)
	if warm["text"] != want {
		t.Fatalf("pre-chaos forwarded answer differs from single-process run")
	}

	// The heir must report itself fully warm before the kill: every
	// artifact key of the coordinator's snapshot present locally.
	deadline := time.Now().Add(15 * time.Second)
	for {
		rs := n3.n.Metrics().Replication
		if rs.HeirSnapshots >= 1 && rs.Keys > 0 && rs.Lag == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("heir never reported warm: %+v", rs)
		}
		time.Sleep(20 * time.Millisecond)
	}
	epoch0 := n2.n.View().Epoch

	// Arm the chaos: the coordinator's next question parks in a 1.5s
	// sleep so the kill lands mid-flight, and from here on ANY parse —
	// i.e. any cold rebuild that should have been replicated — panics.
	inj := faults.New().
		Enable("cluster-serve", "m1", faults.Rule{Kind: faults.Sleep, Sleep: 1500 * time.Millisecond, Count: 1}).
		Enable("parse", "*", faults.Rule{Kind: faults.Panic})
	restore := faults.Activate(inj)
	defer restore()

	type answer struct {
		status int
		hop    string
		body   map[string]any
	}
	done := make(chan answer, 1)
	go func() {
		req, _ := http.NewRequest(http.MethodGet, n2.ts.URL+"/snapshots/"+name+q, nil)
		resp, err := c.Do(req)
		if err != nil {
			done <- answer{status: -1}
			return
		}
		var m map[string]any
		json.NewDecoder(resp.Body).Decode(&m) //nolint:errcheck // status drives the assertions
		resp.Body.Close()
		done <- answer{status: resp.StatusCode, hop: resp.Header.Get(cluster.HopHeader), body: m}
	}()

	// Let the question park on the coordinator, then kill it.
	time.Sleep(300 * time.Millisecond)
	t0 := time.Now()
	n1.ts.Listener.Close()
	n1.ts.CloseClientConnections()
	n1.n.Kill()

	// A member must promote within twice the member-failover budget
	// (detection window + view-propagation slack): the extra factor
	// covers waiting out the dead coordinator's last lease grant.
	budget := 2 * (ccfg.SuspectAfter + 2*hb)
	promoteDeadline := t0.Add(budget)
	var coord *testNode
	for coord == nil {
		if time.Now().After(promoteDeadline) {
			t.Fatalf("no member promoted within %v: m2=%+v m3=%+v",
				budget, n2.n.Metrics(), n3.n.Metrics())
		}
		m2m, m3m := n2.n.Metrics(), n3.n.Metrics()
		switch {
		case m2m.Role == cluster.RoleCoordinator && m2m.Members == 2 && m3m.Members == 2:
			coord = n2
		case m3m.Role == cluster.RoleCoordinator && m3m.Members == 2 && m2m.Members == 2:
			coord = n3
		default:
			time.Sleep(20 * time.Millisecond)
		}
	}
	t.Logf("coordinator failover: %s promoted, views healed in %v (budget %v)",
		coord.id, time.Since(t0), budget)
	if e := coord.n.Metrics().Epoch; e <= epoch0 {
		t.Fatalf("epoch did not strictly increase across the handoff: %d <= %d", e, epoch0)
	}

	// The parked question must complete through the forwarder with the
	// byte-identical answer, served by the heir's warm rehydration.
	var ans answer
	select {
	case ans = <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("question never completed after coordinator death")
	}
	if ans.status != http.StatusOK {
		t.Fatalf("post-kill question: status %d body %v", ans.status, ans.body)
	}
	if ans.hop != "m2" {
		t.Fatalf("post-kill answer missing forwarder hop header: %q", ans.hop)
	}
	if got, _ := ans.body["text"].(string); got != want {
		t.Fatalf("failover answer differs from single-process run:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	if m := n3.n.Metrics(); m.Rehydrations != 1 {
		t.Fatalf("heir rehydrations = %d, want 1 (%+v)", m.Rehydrations, m)
	}
	if d := n3.srv.Metrics().Disk; d.Hits == 0 {
		t.Fatalf("heir rebuilt cold — no shared-cache hits: %+v", d)
	}

	// Second failover: kill the snapshot's new owner (m3). The remaining
	// member must converge to a 1-member view — promoting itself first if
	// m3 had won the coordinator race — and answer from the artifacts the
	// replicator pre-warmed, again without a single cold parse.
	n3.ts.Listener.Close()
	n3.ts.CloseClientConnections()
	n3.n.Kill()
	t1 := time.Now()
	for {
		m := n2.n.Metrics()
		if m.Role == cluster.RoleCoordinator && m.Members == 1 {
			break
		}
		if time.Since(t1) > budget {
			t.Fatalf("survivor never converged after second kill: %+v", m)
		}
		time.Sleep(20 * time.Millisecond)
	}
	_, second := doJSON(t, c, http.MethodGet, n2.ts.URL+"/snapshots/"+name+q, nil, nil)
	if second["text"] != want {
		t.Fatalf("second-failover answer differs from single-process run")
	}
	if m := n2.n.Metrics(); m.Rehydrations != 1 {
		t.Fatalf("survivor rehydrations = %d, want 1 (%+v)", m.Rehydrations, m)
	}
	if d := n2.srv.Metrics().Disk; d.Hits == 0 {
		t.Fatalf("survivor rebuilt cold — no cache hits: %+v", d)
	}
	for k, hits := range inj.Hits() {
		if strings.HasPrefix(k, "parse/") {
			t.Fatalf("cold parse reached the armed fault: %s fired %d times", k, hits)
		}
	}
}
