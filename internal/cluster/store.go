package cluster

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"time"

	"repro/internal/diskcache"
)

// The shared disk cache doubles as the cluster's snapshot manifest
// store. A manifest records a snapshot's full source set under a
// name-derived key; when ownership fails over, the heir loads the
// manifest and reinstalls the snapshot — and because the dead member
// committed its parse and dataplane artifacts to the same cache under
// content-addressed keys, the reinstall is a warm start, not a
// recompute. Manifests are JSON (map keys marshal sorted, so equal
// snapshots produce equal bytes).

// manifest is the persisted form of one snapshot's sources. Edited
// snapshots persist their flattened source set: the edit chain is lost
// across failover, but analysis over the flattened texts is identical.
type manifest struct {
	Name    string            `json:"name"`
	Configs map[string]string `json:"configs"`
	// Artifacts are the hex content-addressed keys of the snapshot's
	// parse and data-plane artifacts at persist time — the heir
	// replicator's shopping list when members do not share one cache
	// directory. Informational for rehydration itself, which re-derives
	// the same keys from the configs.
	Artifacts []string `json:"artifacts,omitempty"`
}

// manifestKey derives the cache key for a snapshot's manifest. Unlike
// artifact keys it is name-addressed, not content-addressed; commits are
// atomic temp+rename writes, so concurrent re-loads of the same snapshot
// leave one complete manifest, never a torn one.
func manifestKey(name string) [sha256.Size]byte {
	return sha256.Sum256([]byte("cluster/manifest/" + name))
}

// persistManifest writes the snapshot's manifest to the shared cache.
// Best-effort: a node without a disk tier simply has no failover
// durability (and says so once per load via Logf).
func (n *Node) persistManifest(name string) {
	disk := n.inner.Disk()
	if disk == nil {
		n.cfg.Logf("cluster: no shared cache; snapshot %s will not survive this member", name)
		return
	}
	configs, ok := n.inner.SnapshotSources(name)
	if !ok {
		return
	}
	var arts []string
	if keys, ok := n.inner.SnapshotArtifactKeys(name); ok {
		for _, k := range keys {
			if !k.IsZero() {
				arts = append(arts, hex.EncodeToString(k[:]))
			}
		}
	}
	buf, err := json.Marshal(manifest{Name: name, Configs: configs, Artifacts: arts})
	if err != nil {
		return
	}
	disk.Put(manifestKey(name), buf)
	n.m.manifestPuts.Add(1)
}

// retireManifest removes a deleted snapshot's manifest so failover does
// not resurrect it.
func (n *Node) retireManifest(name string) {
	if disk := n.inner.Disk(); disk != nil {
		disk.Remove(manifestKey(name))
	}
}

// rehydrate installs a snapshot this node owns but never loaded — the
// failover path. A short lease keyed on the snapshot serializes
// concurrent heirs (two nodes can transiently both believe they own a
// name while a view change propagates); losing the lease race just means
// waiting briefly and retrying the manifest read, since the winner's
// work lands in the same shared cache. Returns whether the snapshot is
// now present.
func (n *Node) rehydrate(ctx context.Context, name string) bool {
	disk := n.inner.Disk()
	if disk == nil {
		return false
	}
	lease, err := disk.AcquireLease("cluster/rehydrate/"+name, n.cfg.ID, n.cfg.FailoverWait)
	if errors.Is(err, diskcache.ErrLeaseHeld) {
		// Another heir is rebuilding right now. Wait one beat; whether or
		// not it finished, fall through and rebuild from the (warm) cache.
		t := time.NewTimer(n.cfg.Heartbeat)
		select {
		case <-ctx.Done():
			t.Stop()
			return false
		case <-t.C:
		}
	}
	buf, ok := disk.Get(manifestKey(name))
	if !ok {
		n.releaseLease(lease, "rehydrate")
		return false
	}
	var m manifest
	if json.Unmarshal(buf, &m) != nil || len(m.Configs) == 0 {
		n.releaseLease(lease, "rehydrate")
		return false
	}
	installErr := n.inner.InstallSnapshot(ctx, name, m.Configs)
	n.releaseLease(lease, "rehydrate")
	if installErr != nil {
		n.cfg.Logf("cluster: rehydrate %s failed: %v", name, installErr)
		return false
	}
	n.m.rehydrations.Add(1)
	n.cfg.Logf("cluster: %s rehydrated inherited snapshot %s from shared cache", n.cfg.ID, name)
	return true
}
