package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"sync"

	"repro/internal/server"
	"repro/internal/sweep"
)

// Distributed sweeps: the owning member plans the sweep (deterministic
// enumeration + equivalence classing), deals the classes across the live
// members by rendezvous hash, and ships each remote member its share.
// Remotes replan from the same spec — planning is deterministic, so both
// sides derive identical class IDs — execute their subset, and return
// the ClassResults, which the owner assembles with its own into the full
// verdict set. A remote that fails (dead, draining, shedding) just means
// the owner executes that share locally: distribution is an optimization,
// never a correctness dependency.

// sweepExecRequest is the cluster-internal body of POST
// /cluster/sweep-exec/{name}: the client's original sweep body (so the
// remote parses the spec with the exact public grammar) plus the class
// subset to execute.
type sweepExecRequest struct {
	Body    json.RawMessage `json:"body"`
	Classes []string        `json:"classes"`
}

// sweepLine mirrors the server's NDJSON sweep stream line, so clients
// cannot tell a distributed sweep from a local one by shape.
type sweepLine struct {
	Type       string         `json:"type"`
	Snapshot   string         `json:"snapshot,omitempty"`
	Enumerated int            `json:"enumerated,omitempty"`
	Classes    int            `json:"classes,omitempty"`
	Executed   int            `json:"executed,omitempty"`
	Pruned     int            `json:"pruned,omitempty"`
	Verdict    *sweep.Verdict `json:"verdict,omitempty"`
	Violations int            `json:"violations,omitempty"`
	Degraded   bool           `json:"degraded,omitempty"`
	ExitCode   int            `json:"exit_code,omitempty"`
	Error      string         `json:"error,omitempty"`
}

// specFromBody parses a sweep spec from raw body bytes through the
// server's public grammar (an empty body is the default spec).
func specFromBody(body []byte) (sweep.Spec, error) {
	req, err := http.NewRequest(http.MethodPost, "http://cluster.internal/sweep", bytes.NewReader(body))
	if err != nil {
		return sweep.Spec{}, err
	}
	return server.ParseSweepBody(req)
}

// serveClusterSweep is the owner-side distributed sweep. It replaces the
// wrapped server's sweep handler only when the view has company; the
// single-member cluster keeps the local path (and its circuit-breaker
// semantics) untouched.
func (n *Node) serveClusterSweep(w http.ResponseWriter, r *http.Request, name string, body []byte, view View) {
	spec, err := specFromBody(body)
	if err != nil {
		writeClusterError(w, http.StatusBadRequest, err.Error())
		return
	}
	release, err := n.inner.Admit(r.Context())
	if err != nil {
		if !writeShedErr(w, err) {
			writeClusterError(w, http.StatusGatewayTimeout, "deadline expired while queued")
		}
		return
	}
	defer release()

	ctx := r.Context()
	plan, err := n.inner.PlanSweep(ctx, name, spec)
	if err != nil {
		n.writePlanError(w, name, err)
		return
	}

	// Deal classes across the live members; this node keeps its share.
	ids := plan.ClassIDs()
	memberIDs := make([]string, 0, len(view.Members))
	addrs := make(map[string]string, len(view.Members))
	for _, m := range view.Members {
		memberIDs = append(memberIDs, m.ID)
		addrs[m.ID] = m.Addr
	}
	parts := sweep.PartitionClasses(ids, memberIDs)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emitLine := func(l sweepLine) {
		enc.Encode(l) //nolint:errcheck // client went away; sweep still completes
		if flusher != nil {
			flusher.Flush()
		}
	}
	emitLine(sweepLine{Type: "plan", Snapshot: name,
		Enumerated: plan.Enumerated(), Classes: plan.Classes()})

	var mu sync.Mutex
	var results []sweep.ClassResult
	var failed []string // classes whose remote did not deliver
	var wg sync.WaitGroup
	for _, id := range memberIDs {
		if id == n.cfg.ID || len(parts[id]) == 0 {
			continue
		}
		wg.Add(1)
		go func(addr string, memberID string, classes []string) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					mu.Lock()
					failed = append(failed, classes...)
					mu.Unlock()
				}
			}()
			crs, err := n.execRemote(ctx, addr, name, body, classes)
			mu.Lock()
			if err != nil {
				n.cfg.Logf("cluster: sweep share on %s failed (%v); running %d classes locally",
					memberID, err, len(classes))
				failed = append(failed, classes...)
			} else {
				results = append(results, crs...)
			}
			mu.Unlock()
		}(addrs[id], id, parts[id])
	}
	local := plan.ExecuteClasses(ctx, parts[n.cfg.ID], nil)
	wg.Wait()
	mu.Lock()
	results = append(results, local...)
	retry := append([]string(nil), failed...)
	mu.Unlock()
	if len(retry) > 0 && ctx.Err() == nil {
		sort.Strings(retry)
		n.m.sweepFallback.Add(int64(len(retry)))
		results = append(results, plan.ExecuteClasses(ctx, retry, nil)...)
	}

	res := plan.Assemble(results)
	for i := range res.Verdicts {
		v := res.Verdicts[i]
		emitLine(sweepLine{Type: "verdict", Verdict: &v})
	}
	summary := sweepLine{Type: "summary", Snapshot: name,
		Enumerated: res.Enumerated, Classes: res.Classes, Executed: res.Executed,
		Pruned: res.Pruned, Violations: res.Violations, Degraded: res.Degraded}
	switch {
	case ctx.Err() != nil:
		summary.ExitCode = server.ExitCancelled
		summary.Error = "sweep cancelled: " + ctx.Err().Error()
	case res.Degraded:
		summary.ExitCode = server.ExitDegraded
	default:
		summary.ExitCode = server.ExitOK
	}
	emitLine(summary)
}

// writePlanError maps PlanSweep's sentinel errors onto the same statuses
// the local sweep handler uses.
func (n *Node) writePlanError(w http.ResponseWriter, name string, err error) {
	switch {
	case errors.Is(err, server.ErrUnknownSnapshot):
		writeClusterError(w, http.StatusNotFound, err.Error())
	case errors.Is(err, server.ErrSweepDegraded):
		writeClusterError(w, http.StatusOK, err.Error())
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		writeClusterError(w, http.StatusGatewayTimeout, err.Error())
	default:
		writeClusterError(w, http.StatusBadRequest, "sweep: "+err.Error())
	}
}

// execRemote ships one member its class share and decodes the results.
func (n *Node) execRemote(ctx context.Context, addr, name string, body []byte, classes []string) ([]sweep.ClassResult, error) {
	payload, err := json.Marshal(sweepExecRequest{Body: body, Classes: classes})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		addr+"/cluster/sweep-exec/"+url.PathEscape(name), bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return nil, fmt.Errorf("sweep-exec on %s: status %d: %s", addr, resp.StatusCode, bytes.TrimSpace(msg))
	}
	var crs []sweep.ClassResult
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxBody)).Decode(&crs); err != nil {
		return nil, err
	}
	return crs, nil
}

// handleSweepExec is the member-side executor for a forwarded class
// share: rehydrate the snapshot if this node never loaded it (the shared
// cache makes that cheap), take an admission slot, replan
// deterministically, execute exactly the requested classes, and return
// their ClassResults.
func (n *Node) handleSweepExec(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req sweepExecRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody)).Decode(&req); err != nil {
		writeClusterError(w, http.StatusBadRequest, "bad body: "+err.Error())
		return
	}
	spec, err := specFromBody(req.Body)
	if err != nil {
		writeClusterError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx := r.Context()
	if !n.inner.HasSnapshot(name) && !n.rehydrate(ctx, name) {
		writeClusterError(w, http.StatusNotFound, "no snapshot "+name+" and no manifest to rehydrate from")
		return
	}
	release, err := n.inner.Admit(ctx)
	if err != nil {
		if !writeShedErr(w, err) {
			writeClusterError(w, http.StatusGatewayTimeout, "deadline expired while queued")
		}
		return
	}
	defer release()
	plan, err := n.inner.PlanSweep(ctx, name, spec)
	if err != nil {
		n.writePlanError(w, name, err)
		return
	}
	results := plan.ExecuteClasses(ctx, req.Classes, nil)
	if ctx.Err() != nil {
		writeClusterError(w, http.StatusGatewayTimeout, "sweep share cancelled: "+ctx.Err().Error())
		return
	}
	n.m.sweepClassesIn.Add(int64(len(results)))
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(results) //nolint:errcheck // client went away
}
