package cluster

// Metrics is the node's point-in-time cluster view, embedded in the
// wrapped server's /metrics response under "cluster" (via
// server.SetClusterMetrics).
type Metrics struct {
	MemberID string `json:"member_id"`
	Role     string `json:"role"`
	Epoch    int64  `json:"epoch"`
	Members  int    `json:"members"`
	Draining bool   `json:"draining"`

	Forwarded         int64 `json:"forwarded"`
	ForwardRetries    int64 `json:"forward_retries"`
	ForwardLoops      int64 `json:"forward_loops"`
	ForwardFailed     int64 `json:"forward_failed"`
	Relayed429        int64 `json:"relayed_429"`
	Relayed503        int64 `json:"relayed_503"`
	HeartbeatsSent    int64 `json:"heartbeats_sent"`
	HeartbeatsMissed  int64 `json:"heartbeats_missed"`
	HeartbeatsDropped int64 `json:"heartbeats_dropped"`
	MembersFailed     int64 `json:"members_failed"`
	Rehydrations      int64 `json:"rehydrations"`
	ManifestPuts      int64 `json:"manifest_puts"`
	SweepClassesIn    int64 `json:"sweep_classes_in"`
	SweepFallback     int64 `json:"sweep_fallback"`

	// Coordinator failover.
	LeaseHeld      bool  `json:"lease_held"`
	Promotions     int64 `json:"promotions"`
	Demotions      int64 `json:"demotions"`
	CoordAdoptions int64 `json:"coord_adoptions"`
	PromoteStalled int64 `json:"promote_stalled"`

	// Heir replication.
	Replication ReplicationStatus `json:"replication"`
}

// ReplicationStatus summarizes the heir replicator: what this node is
// heir to, how warm it is (Lag is the number of artifact keys still
// absent locally — zero means failover rehydration is fully warm), and
// the work done getting there. Exposed in both /metrics and
// /cluster/members.
type ReplicationStatus struct {
	HeirSnapshots int64 `json:"heir_snapshots"`
	Keys          int64 `json:"keys"`
	Lag           int64 `json:"lag"`
	Warm          int64 `json:"warm"`
	Fetched       int64 `json:"fetched"`
	Rounds        int64 `json:"rounds"`
	Errors        int64 `json:"errors"`
	Stalled       int64 `json:"stalled"`
}

// replicationStatus snapshots the replicator's counters and gauges.
func (n *Node) replicationStatus() ReplicationStatus {
	return ReplicationStatus{
		HeirSnapshots: n.m.replHeirSnapshots.Load(),
		Keys:          n.m.replKeys.Load(),
		Lag:           n.m.replLag.Load(),
		Warm:          n.m.replWarm.Load(),
		Fetched:       n.m.replFetched.Load(),
		Rounds:        n.m.replRounds.Load(),
		Errors:        n.m.replErrors.Load(),
		Stalled:       n.m.replStalled.Load(),
	}
}

// Metrics snapshots the node's counters and membership state.
func (n *Node) Metrics() Metrics {
	n.mu.Lock()
	role := RoleMember
	if n.coordinator {
		role = RoleCoordinator
	}
	m := Metrics{
		MemberID:  n.cfg.ID,
		Role:      role,
		Epoch:     n.view.Epoch,
		Members:   len(n.view.Members),
		Draining:  n.draining,
		LeaseHeld: n.lease != nil,
	}
	n.mu.Unlock()
	m.Forwarded = n.m.forwarded.Load()
	m.ForwardRetries = n.m.forwardRetries.Load()
	m.ForwardLoops = n.m.forwardLoops.Load()
	m.ForwardFailed = n.m.forwardFailed.Load()
	m.Relayed429 = n.m.relayed429.Load()
	m.Relayed503 = n.m.relayed503.Load()
	m.HeartbeatsSent = n.m.heartbeatsSent.Load()
	m.HeartbeatsMissed = n.m.heartbeatsMissed.Load()
	m.HeartbeatsDropped = n.m.heartbeatsDropped.Load()
	m.MembersFailed = n.m.membersFailed.Load()
	m.Rehydrations = n.m.rehydrations.Load()
	m.ManifestPuts = n.m.manifestPuts.Load()
	m.SweepClassesIn = n.m.sweepClassesIn.Load()
	m.SweepFallback = n.m.sweepFallback.Load()
	m.Promotions = n.m.promotions.Load()
	m.Demotions = n.m.demotions.Load()
	m.CoordAdoptions = n.m.coordAdoptions.Load()
	m.PromoteStalled = n.m.promoteStalled.Load()
	m.Replication = n.replicationStatus()
	return m
}
