package cluster

import (
	"bytes"
	"io"
	"net/http"
	"time"

	"repro/internal/faults"
	"repro/internal/server"
)

// relayHeaders are the response headers a forwarder propagates upstream
// verbatim. Retry-After in particular must survive the hop: a 429/503
// from the owner carries the owner's backoff hint, and rewriting or
// dropping it would make clients hammer a member that already said slow
// down.
var relayHeaders = []string{"Content-Type", "Retry-After", server.ExitCodeHeader}

// forward relays a request for a snapshot owned by another member. The
// happy path is one hop: send, copy the response back (whatever its
// status — the owner's 429/503/404 are real answers, not transport
// failures). On a transport error or a 502 ownership disagreement the
// owner is presumed dead or the view stale, so the forwarder waits for
// the view epoch to advance (the failure detector's job), re-resolves
// the owner, and retries — at most ForwardRetries times, each bounded by
// FailoverWait. Ownership may fail over to this node itself, in which
// case the request is served locally.
func (n *Node) forward(w http.ResponseWriter, r *http.Request, name string, body []byte, view View) {
	n.m.forwarded.Add(1)
	owner := OwnerOf(view.Members, name)
	epoch := view.Epoch
	for attempt := 0; ; attempt++ {
		if owner.ID == "" || owner.ID == n.cfg.ID {
			_, rest := snapshotPath(r.URL.Path)
			n.serveLocal(w, r, name, rest, body)
			return
		}
		resp, err := n.relay(r, owner, body)
		if err == nil && resp.StatusCode != http.StatusBadGateway {
			n.copyResponse(w, resp)
			return
		}
		if resp != nil {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining for reuse
			if cerr := resp.Body.Close(); cerr != nil {
				n.cfg.Logf("cluster: %s closing relayed response from %s: %v", n.cfg.ID, owner.ID, cerr)
			}
		}
		if attempt >= n.cfg.ForwardRetries {
			n.m.forwardFailed.Add(1)
			w.Header().Set(HopHeader, n.cfg.ID)
			writeClusterError(w, http.StatusBadGateway,
				"snapshot "+name+": owner "+owner.ID+" unreachable and no view change within failover wait")
			return
		}
		n.m.forwardRetries.Add(1)
		nv, changed := n.awaitViewChange(r, epoch)
		if !changed {
			n.m.forwardFailed.Add(1)
			w.Header().Set(HopHeader, n.cfg.ID)
			writeClusterError(w, http.StatusBadGateway,
				"snapshot "+name+": owner "+owner.ID+" unreachable and no view change within failover wait")
			return
		}
		epoch = nv.Epoch
		owner = OwnerOf(nv.Members, name)
		n.cfg.Logf("cluster: %s retrying %s %s against new owner %s (epoch %d)",
			n.cfg.ID, r.Method, r.URL.Path, owner.ID, epoch)
	}
}

// relay performs the single forwarded request. The hop header marks it
// forwarded so the receiver never forwards again. The "cluster-forward"
// fault stage injects transport failures for partition experiments.
func (n *Node) relay(r *http.Request, owner Member, body []byte) (*http.Response, error) {
	if err := faults.FireErr("cluster-forward", n.cfg.ID); err != nil {
		return nil, err
	}
	out, err := http.NewRequestWithContext(r.Context(), r.Method,
		owner.Addr+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		out.Header.Set("Content-Type", ct)
	}
	out.Header.Set(HopHeader, n.cfg.ID)
	return n.cfg.Client.Do(out)
}

// copyResponse streams the owner's response upstream, preserving the
// relayed headers and stamping the forwarded-by hop header so clients
// can see the extra hop. 429/503 relays are counted — they are the
// owner's admission control and circuit breaker speaking through this
// node, not this node's own shedding.
func (n *Node) copyResponse(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for _, h := range relayHeaders {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set(HopHeader, n.cfg.ID)
	switch resp.StatusCode {
	case http.StatusTooManyRequests:
		n.m.relayed429.Add(1)
	case http.StatusServiceUnavailable:
		n.m.relayed503.Add(1)
	}
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		nr, err := resp.Body.Read(buf)
		if nr > 0 {
			if _, werr := w.Write(buf[:nr]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush() // NDJSON sweep streams stay line-buffered across the hop
			}
		}
		if err != nil {
			return
		}
	}
}

// awaitViewChange polls the coordinator until the view epoch passes
// sinceEpoch, the failover wait elapses, or the request dies. It returns
// the freshest view seen and whether it actually changed.
func (n *Node) awaitViewChange(r *http.Request, sinceEpoch int64) (View, bool) {
	ctx := r.Context()
	deadline := n.now().Add(n.cfg.FailoverWait)
	poll := n.cfg.Heartbeat / 2
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	for {
		v := n.fetchView(ctx)
		if v.Epoch > sinceEpoch {
			return v, true
		}
		if ctx.Err() != nil || n.now().After(deadline) {
			return v, false
		}
		t := time.NewTimer(poll)
		select {
		case <-ctx.Done():
			t.Stop()
			return v, false
		case <-n.stop:
			t.Stop()
			return v, false
		case <-t.C:
		}
	}
}
