package cluster

import "time"

// now is the package's single wall-clock read site. Membership liveness
// (heartbeat timestamps, failure-detector cutoffs, failover deadlines)
// is wall-clock by nature; analysis results never observe it, so the
// determinism rule is suppressed here and only here.
func now() time.Time {
	return time.Now() //gblint:ignore determinism membership liveness is wall-clock control-plane state; simulation outputs never read it
}
