package cluster

import "time"

// Clock is the node's time source. Membership liveness — heartbeat
// timestamps, failure-detector cutoffs, failover deadlines, lease
// expiry — is wall-clock by nature, but chaos and unit tests need to
// drive coordinator-death scenarios deterministically, so every time
// read in the package goes through the configured Clock.
type Clock interface {
	Now() time.Time
}

// systemClock is the default Clock and the package's single wall-clock
// read site. Analysis results never observe it, so the determinism rule
// is suppressed here and only here.
type systemClock struct{}

func (systemClock) Now() time.Time {
	return time.Now() //gblint:ignore determinism membership liveness is wall-clock control-plane state; simulation outputs never read it
}

// now reads the node's configured clock.
func (n *Node) now() time.Time { return n.cfg.Clock.Now() }
