package core

import (
	"repro/internal/bdd"
	"repro/internal/hdr"
	"repro/internal/reach"
	"repro/internal/topo"
)

// This file implements incremental re-analysis for snapshots derived via
// Edit, exploiting flow equivalence between snapshots (the Plankton
// lesson): a flow whose trajectory in the baseline never touches a
// changed device follows the identical trajectory after the edit, because
// every node it visits has an identical transfer function and an
// identical edge set. Question answers for such flows are reused
// verbatim; only flows inside the per-source "blast radius" are re-run,
// restricted to that set.
//
// Soundness of the restriction relies on two facts. First, the blast
// radius is computed as a backward overapproximation on the baseline
// graph (reach.ImpactSets), so it contains every flow whose behavior can
// differ. Second, for transform-free graphs a forward pass restricted to
// a header set B yields exactly the full pass's sink sets conjoined with
// B (labels only conjoin headers, and zone/waypoint bookkeeping is
// independent of header bits), so stitched answers equal full recomputes
// node-for-node — and BDD canonicity then makes them byte-identical,
// down to the example packets PickPacket extracts. Graphs with header
// rewriting (NAT) fail HasTransforms and fall back to full recomputation.

// incrementalEligible reports whether s can answer questions
// incrementally against its Edit baseline: both snapshots must share one
// caching pipeline (hence one BDD encoder), have parse keys for every
// device, and both forwarding graphs must be transform-free.
func (s *Snapshot) incrementalEligible() bool {
	b := s.baseline
	if b == nil || s.pl == nil || b.pl != s.pl || !s.pl.Enabled() {
		return false
	}
	for name := range s.Net.Devices {
		if _, ok := s.devKeys[name]; !ok {
			return false
		}
	}
	for name := range b.Net.Devices {
		if _, ok := b.devKeys[name]; !ok {
			return false
		}
	}
	if reach.HasTransforms(b.Graph()) || reach.HasTransforms(s.Graph()) {
		return false
	}
	return true
}

// changedDevices computes the device set whose behavior may differ
// between the two snapshots: devices whose parsed model changed (config
// edit, addition, removal), devices whose computed forwarding state
// changed (route propagation fallout), and topology neighbors of
// model-changed devices on either side (an address edit changes the
// neighbor's edge set even when the neighbor's own state is untouched).
func changedDevices(before, after *Snapshot) map[string]bool {
	changed := make(map[string]bool)
	var modelChanged []string
	for name, k := range before.devKeys {
		if ak, ok := after.devKeys[name]; !ok || ak != k {
			changed[name] = true
			modelChanged = append(modelChanged, name)
		}
	}
	for name := range after.devKeys {
		if _, ok := before.devKeys[name]; !ok {
			changed[name] = true
			modelChanged = append(modelChanged, name)
		}
	}
	dp1, dp2 := before.DataPlane(), after.DataPlane()
	for _, name := range before.Net.DeviceNames() {
		if !changed[name] && dp1.NodeFingerprint(name) != dp2.NodeFingerprint(name) {
			changed[name] = true
		}
	}
	// Failure-scenario kinds contribute their endpoints explicitly: a pure
	// link/node/session failure leaves every parse key identical, and a
	// failed element whose routes were already unused can leave every
	// fingerprint identical too — yet the element's forwarding-graph edges
	// still differ, so its endpoints must count as changed.
	if sc := after.scenario; sc != nil {
		for _, l := range sc.LinksDown {
			changed[l.Node1] = true
			changed[l.Node2] = true
		}
		for _, n := range sc.NodesDown {
			changed[n] = true
			// The baseline topology still has the node's edges; each
			// neighbor loses an adjacency (and with it delivery edges).
			for _, e := range dp1.Topology.Neighbors(n) {
				changed[e.Node2] = true
			}
		}
		for _, k := range sc.SessionsDown {
			changed[k.Node1] = true
			changed[k.Node2] = true
		}
	}
	for _, name := range modelChanged {
		n1, n2 := dp1.Topology.Neighbors(name), dp2.Topology.Neighbors(name)
		if sameTopoEdges(n1, n2) {
			// The edit left the device's adjacency intact (e.g. a pure
			// route or ACL change): neighbors' edge sets are unaffected,
			// and any forwarding fallout on them is caught by the
			// fingerprint diff above.
			continue
		}
		for _, e := range n1 {
			changed[e.Node2] = true
		}
		for _, e := range n2 {
			changed[e.Node2] = true
		}
	}
	return changed
}

func sameTopoEdges(a, b []topo.Edge) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[topo.Edge]int, len(a))
	for _, e := range a {
		set[e]++
	}
	for _, e := range b {
		if set[e] == 0 {
			return false
		}
		set[e]--
	}
	return true
}

// impactSets returns (and caches) the per-source blast radius of this
// snapshot's edit relative to its baseline. ok is false when incremental
// analysis does not apply (no baseline, different pipelines, NAT, ...).
func (s *Snapshot) impactSets() (map[reach.SourceLoc]bdd.Ref, bool) {
	if s.impactDone {
		return s.impact, s.impactOK
	}
	s.impactDone = true
	if !s.incrementalEligible() {
		return nil, false
	}
	changed := changedDevices(s.baseline, s)
	s.impact = reach.ImpactSets(s.baseline.Graph(), changed)
	s.impactOK = true
	return s.impact, true
}

// sinkSetsFor answers "what reaches each sink kind from src over hs",
// memoized per snapshot. On an edited snapshot it reuses the baseline's
// memoized answer for all flows outside the blast radius and re-runs only
// the restricted remainder; the stitched result is byte-identical to a
// full pass (see the file comment).
func (s *Snapshot) sinkSetsFor(src reach.SourceLoc, hs bdd.Ref) (map[string]bdd.Ref, bool) {
	if s.reachMemo == nil {
		s.reachMemo = make(map[memoKey]map[string]bdd.Ref)
	}
	k := memoKey{src: src, hs: hs}
	if v, ok := s.reachMemo[k]; ok {
		return v, true
	}
	an := s.Analysis()
	if impact, ok := s.impactSets(); ok {
		if base, ok := s.baseline.reachMemo[k]; ok {
			bc, hit := impact[src]
			if !hit {
				// No flow from src can touch a changed device: the
				// baseline's answer is the after answer.
				s.reachMemo[k] = base
				return base, true
			}
			f := an.Enc.F
			if restricted, ok := an.Reachability(src, f.And(hs, bc)); ok {
				merged := make(map[string]bdd.Ref, len(base)+len(restricted.Sinks))
				for kind, set := range base {
					if kept := f.Diff(set, bc); kept != bdd.False {
						merged[kind] = kept
					}
				}
				for kind, set := range restricted.Sinks {
					if set == bdd.False {
						continue
					}
					if prev, ok := merged[kind]; ok {
						merged[kind] = f.Or(prev, set)
					} else {
						merged[kind] = set
					}
				}
				s.reachMemo[k] = merged
				return merged, true
			}
		}
	}
	res, ok := an.Reachability(src, hs)
	if !ok {
		return nil, false
	}
	s.reachMemo[k] = res.Sinks
	return res.Sinks, true
}

// compareIncremental is the incremental fast path of CompareWith for
// after-snapshots derived from s via Edit. Sources outside the blast
// radius provably produce an empty diff and are skipped without any BDD
// work; impacted sources run two small passes restricted to their blast
// set, which yield exactly the diff a full comparison would (flows
// outside the set cancel in the difference). ok=false means the caller
// must use the full path.
func (s *Snapshot) compareIncremental(after *Snapshot) ([]DifferentialFlows, bool) {
	if after == nil || after.baseline != s {
		return nil, false
	}
	impact, ok := after.impactSets()
	if !ok {
		return nil, false
	}
	a1, a2 := s.Analysis(), after.Analysis()
	enc := a1.Enc
	f := enc.F
	var out []DifferentialFlows
	for _, src := range a1.Sources() {
		bc, hit := impact[src]
		if !hit {
			continue
		}
		r1, ok1 := a1.Reachability(src, bc)
		r2, ok2 := a2.Reachability(src, bc)
		if !ok1 || !ok2 {
			continue
		}
		s1, _ := reach.Partition(r1.Sinks, f)
		s2, _ := reach.Partition(r2.Sinks, f)
		broken := f.Diff(s1, s2)
		newly := f.Diff(s2, s1)
		if broken == bdd.False && newly == bdd.False {
			continue
		}
		df := DifferentialFlows{Source: src, Broken: broken, NewlyArrive: newly}
		if p, ok := enc.PickPacket(broken, enc.FieldEq(hdr.Protocol, hdr.ProtoTCP)); ok {
			df.BrokenEx, df.HasBroken = p, true
		}
		out = append(out, df)
	}
	return out, true
}
