package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDetectDialectEdgeCases(t *testing.T) {
	cases := []struct {
		name, text, want string
	}{
		{"empty", "", "ios"},
		{"whitespace only", "  \n\t\n", "ios"},
		{"comment only hash", "# nothing here\n# still nothing\n", "ios"},
		{"comment only bang", "! cisco comment\n!\n", "ios"},
		{"junos after comments", "# header\n!\nset system host-name x\n", "junos"},
		{"ios after comments", "!\nhostname x\n", "ios"},
		{"set requires space", "settings here\n", "ios"},
	}
	for _, c := range cases {
		if got := DetectDialect(c.text); got != c.want {
			t.Errorf("%s: DetectDialect = %q, want %q", c.name, got, c.want)
		}
	}
}

func TestLoadTextEmptyAndCommentOnlyFiles(t *testing.T) {
	s := LoadText(map[string]string{
		"empty.cfg":    "",
		"comments.cfg": "! nothing but commentary\n!\n",
	})
	// Both parse to (empty) devices named after the file, rather than
	// crashing or being dropped silently.
	names := s.Net.DeviceNames()
	if len(names) != 2 || names[0] != "comments" || names[1] != "empty" {
		t.Fatalf("devices = %v", names)
	}
	for _, n := range names {
		if len(s.Net.Devices[n].Interfaces) != 0 {
			t.Errorf("%s: unexpected interfaces", n)
		}
	}
}

func TestLoadDirMixedDialects(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "r1.cfg"), []byte(iosA), 0o644)
	os.WriteFile(filepath.Join(dir, "r2.conf"), []byte(junosB), 0o644)
	s, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Each file must have gone through its own dialect's parser.
	r1, r2 := s.Net.Devices["r1"], s.Net.Devices["r2"]
	if r1 == nil || r2 == nil {
		t.Fatalf("devices = %v", s.Net.DeviceNames())
	}
	if _, ok := r1.Interfaces["eth0"]; !ok {
		t.Error("r1 (IOS) missing eth0")
	}
	if _, ok := r2.Interfaces["ge-0/0/0"]; !ok {
		t.Error("r2 (Junos) missing ge-0/0/0")
	}
}

func TestLoadDirUnreadableFileReportsError(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "good.cfg"), []byte(iosA), 0o644)
	// A dangling symlink with a config extension: ReadFile fails even for
	// root, and the loader must surface the error instead of silently
	// analyzing a partial snapshot.
	if err := os.Symlink(filepath.Join(dir, "missing-target"),
		filepath.Join(dir, "broken.cfg")); err != nil {
		t.Skipf("symlink: %v", err)
	}
	if _, err := LoadDir(dir); err == nil {
		t.Fatal("unreadable file must be reported, not swallowed")
	} else if !strings.Contains(err.Error(), "broken.cfg") {
		t.Errorf("error does not name the unreadable file: %v", err)
	}
}
