package core

import (
	"testing"

	"repro/internal/bdd"
	"repro/internal/dataplane"
	"repro/internal/faults"
	"repro/internal/ip4"
	"repro/internal/pipeline"
	"repro/internal/reach"
	"repro/internal/topo"
)

// torUplinks discovers a ToR's links toward its aggregation switches from
// the inferred topology, so tests need not hard-code netgen iface names.
func torUplinks(t *testing.T, s *Snapshot, tor, aggSub string) []topo.Link {
	t.Helper()
	var links []topo.Link
	seen := map[topo.Link]bool{}
	for _, e := range s.DataPlane().Topology.Neighbors(tor) {
		if !seen[e.Link()] && containsSub(e.Node2, aggSub) {
			links = append(links, e.Link())
			seen[e.Link()] = true
		}
	}
	if len(links) == 0 {
		t.Fatalf("no %s uplinks found for %s", aggSub, tor)
	}
	return links
}

func containsSub(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestApplyPureFailureSharesParse(t *testing.T) {
	pl := pipeline.New(pipeline.Config{})
	texts := fabricTexts(t, "pf")
	s := LoadTextWith(pl, texts)
	links := torUplinks(t, s, "pf-p01-tor01", "agg")

	sc := Scenario{LinksDown: links[:1]}
	after := s.Apply(sc)
	if after.Net != s.Net {
		t.Error("pure failure must share the parsed network outright")
	}
	if after.Baseline() != s || after.Pipeline() != pl {
		t.Error("Apply must keep the pipeline and record the baseline")
	}
	for name, k := range s.devKeys {
		if after.devKeys[name] != k {
			t.Errorf("device key for %s changed under a pure failure", name)
		}
	}
	// The derived data plane must carry the suppression and drop the edge.
	dp := after.DataPlane()
	if dp.Suppress.Empty() {
		t.Fatal("derived data plane lost the suppression")
	}
	l := links[0]
	if _, ok := dp.Topology.EdgeFrom(l.Node1, l.Iface1); ok {
		t.Error("failed link survived in the scenario topology")
	}
	if _, ok := s.DataPlane().Topology.EdgeFrom(l.Node1, l.Iface1); !ok {
		t.Error("baseline topology was mutated by the scenario")
	}
	// Edit remains a thin wrapper over Apply.
	ed := s.Edit(map[string]string{"pf-p01-tor01": texts["pf-p01-tor01"]})
	if ed.scenario == nil || len(ed.scenario.ConfigEdits) != 1 {
		t.Error("Edit did not route through Apply")
	}
}

func TestScenarioID(t *testing.T) {
	l := topo.Link{Node1: "a", Iface1: "e0", Node2: "b", Iface2: "e0"}
	k := dataplane.MakeSessionKey("x", ip4.MustParseAddr("10.0.0.1"), "y", ip4.MustParseAddr("10.0.0.2"))
	sc1 := Scenario{NodesDown: []string{"n2", "n1"}, LinksDown: []topo.Link{l}, SessionsDown: []dataplane.SessionKey{k}}
	sc2 := Scenario{LinksDown: []topo.Link{l, l}, SessionsDown: []dataplane.SessionKey{k}, NodesDown: []string{"n1", "n2"}}
	if sc1.ID() != sc2.ID() {
		t.Errorf("ID not canonical:\n %s\n %s", sc1.ID(), sc2.ID())
	}
	if (Scenario{}).ID() != "" {
		t.Error("empty scenario must have empty ID")
	}
	if !(Scenario{}).Empty() || sc1.Empty() {
		t.Error("Empty() wrong")
	}
	if sc1.PureFailure() != true {
		t.Error("failure-only scenario must be PureFailure")
	}
	if (Scenario{ConfigEdits: map[string]string{"d": ""}}).PureFailure() {
		t.Error("config edit is not a pure failure")
	}
}

// TestScenarioIncrementalEquivalence is the scenario-layer analogue of
// TestIncrementalEquivalence: downing both uplinks of one ToR (which
// disconnects its host subnet) through the incremental path must produce
// flow results and diffs byte-identical to a full same-pipeline
// recomputation and value-identical to a cache-disabled reference.
func TestScenarioIncrementalEquivalence(t *testing.T) {
	texts := fabricTexts(t, "sq")
	const tor = "sq-p01-tor01"

	pl := pipeline.New(pipeline.Config{})
	base := LoadTextWith(pl, texts)
	base.Reachability(ReachabilityParams{})
	sc := Scenario{LinksDown: torUplinks(t, base, tor, "agg")}

	after := base.Apply(sc)
	if _, ok := after.impactSets(); !ok {
		t.Fatal("incremental path did not engage for a pure failure")
	}
	if len(after.impact) == 0 {
		t.Fatal("failing a ToR's uplinks produced an empty blast radius")
	}
	incFlows := after.Reachability(ReachabilityParams{})
	incDiffs := base.CompareWith(after)
	if len(incDiffs) == 0 {
		t.Fatal("disconnecting a ToR must break flows")
	}

	// Full recomputation on the same pipeline: identical BDD refs.
	full := LoadTextWith(pl, texts).Apply(sc)
	full.baseline = nil // force the non-incremental path
	fullFlows := full.Reachability(ReachabilityParams{})
	if len(incFlows) != len(fullFlows) {
		t.Fatalf("flow count: incremental %d vs full %d", len(incFlows), len(fullFlows))
	}
	for i := range incFlows {
		a, b := incFlows[i], fullFlows[i]
		if a.Source != b.Source || a.Delivered != b.Delivered || a.Failed != b.Failed {
			t.Errorf("%v: flow sets differ from full recompute", a.Source)
		}
		if tracesOf(a) != tracesOf(b) {
			t.Errorf("%v: traces differ from full recompute", a.Source)
		}
	}

	// Cache-disabled reference: every derived value must match.
	ref := LoadTextWith(pipeline.Disabled(), texts).Apply(sc)
	refFlows := ref.Reachability(ReachabilityParams{})
	if len(refFlows) != len(incFlows) {
		t.Fatalf("flow count vs disabled reference: %d vs %d", len(incFlows), len(refFlows))
	}
	for i := range incFlows {
		a, b := incFlows[i], refFlows[i]
		if a.Source != b.Source || a.HasPositive != b.HasPositive ||
			a.PositiveExample != b.PositiveExample ||
			a.HasNegative != b.HasNegative || a.NegativeExample != b.NegativeExample {
			t.Errorf("%v: differs from cache-disabled reference", a.Source)
		}
		if tracesOf(a) != tracesOf(b) {
			t.Errorf("%v: traces differ from cache-disabled reference", a.Source)
		}
	}
}

// --- reach.ImpactSets edge cases (satellite) ---

func TestImpactSetsEmptyChangedSet(t *testing.T) {
	s := LoadTextWith(pipeline.New(pipeline.Config{}), fabricTexts(t, "ie"))
	out := reach.ImpactSets(s.Graph(), map[string]bool{})
	if len(out) != 0 {
		t.Errorf("empty changed set must yield an empty impact map, got %d entries", len(out))
	}
	if out == nil {
		t.Error("impact map must be non-nil (empty, not absent)")
	}
}

func TestImpactSetsAllDevicesChanged(t *testing.T) {
	// A changed set covering every device must degenerate to full
	// re-analysis: every source is impacted with its full injectable
	// space, never an empty map.
	s := LoadTextWith(pipeline.New(pipeline.Config{}), fabricTexts(t, "ia"))
	changed := make(map[string]bool)
	for _, n := range s.Net.DeviceNames() {
		changed[n] = true
	}
	out := reach.ImpactSets(s.Graph(), changed)
	srcs := s.Analysis().Sources()
	if len(srcs) == 0 {
		t.Fatal("fabric has no sources")
	}
	if len(out) != len(srcs) {
		t.Fatalf("all-changed impact covers %d of %d sources", len(out), len(srcs))
	}
	for _, src := range srcs {
		if out[src] == bdd.False {
			t.Errorf("source %v has an empty impact set under an all-device change", src)
		}
	}
}

func TestImpactSetsQuarantinedDeviceInChangedSet(t *testing.T) {
	// Quarantine one ToR at parse time; a changed set naming it (plus a
	// live device) must behave exactly as if only the live device changed —
	// the quarantined name has no graph nodes and contributes nothing.
	texts := fabricTexts(t, "iq")
	const quarantined = "iq-p02-tor02"
	defer faults.Activate(faults.New().
		Enable("parse", quarantined, faults.Rule{Kind: faults.Panic}))()

	s := LoadTextWith(pipeline.New(pipeline.Config{}), texts)
	if _, ok := s.Net.Devices[quarantined]; ok {
		t.Fatal("device was not quarantined")
	}
	g := s.Graph()
	const live = "iq-p01-tor01"
	with := reach.ImpactSets(g, map[string]bool{quarantined: true, live: true})
	without := reach.ImpactSets(g, map[string]bool{live: true})
	if len(with) != len(without) {
		t.Fatalf("quarantined name changed the impact map size: %d vs %d", len(with), len(without))
	}
	for src, set := range without {
		if with[src] != set {
			t.Errorf("impact for %v differs when a quarantined name is added", src)
		}
	}
	if only := reach.ImpactSets(g, map[string]bool{quarantined: true}); len(only) != 0 {
		t.Errorf("a changed set of only quarantined devices must be empty, got %d", len(only))
	}
}

// TestImpactConeDuality cross-checks ImpactCone against ImpactSets on the
// fabric: a device is in some monitored flow's cone iff the device's
// backward blast radius intersects that flow's injectable space.
func TestImpactConeDuality(t *testing.T) {
	s := LoadTextWith(pipeline.New(pipeline.Config{}), fabricTexts(t, "id"))
	g := s.Graph()
	an := s.Analysis()
	f := an.Enc.F
	srcs := an.Sources()
	if len(srcs) == 0 {
		t.Fatal("no sources")
	}
	sources := make(map[reach.SourceLoc]bdd.Ref, len(srcs))
	for _, src := range srcs {
		sources[src] = bdd.True
	}
	cone := reach.ImpactCone(g, sources)
	for _, dev := range s.Net.DeviceNames() {
		back := reach.ImpactSets(g, map[string]bool{dev: true})
		backHit := false
		for _, src := range srcs {
			if set, ok := back[src]; ok && set != bdd.False {
				backHit = true
				break
			}
		}
		coneSet, inCone := cone[dev]
		coneHit := inCone && coneSet != bdd.False
		if backHit != coneHit {
			t.Errorf("device %s: backward blast radius says %v, forward cone says %v", dev, backHit, coneHit)
		}
		if coneHit && backHit {
			// The header spaces must agree, not just the hit bit: every
			// cone header must be in some source's blast radius and vice
			// versa (union over sources, since the cone unions all flows).
			var union bdd.Ref = bdd.False
			for _, src := range srcs {
				if set, ok := back[src]; ok {
					union = f.Or(union, set)
				}
			}
			if union != coneSet {
				t.Errorf("device %s: cone headers differ from blast-radius union", dev)
			}
		}
	}
}
