// Package core orchestrates the four-stage Batfish pipeline (paper §2) and
// provides the question layer on top of it: configuration parsing into the
// vendor-independent model, data plane generation, BDD-based verification,
// and violation explanation with carefully chosen examples.
//
// The exported façade for downstream users is package batfish at the
// repository root, which re-exports these types.
package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/config"
	"repro/internal/dataplane"
	"repro/internal/fwdgraph"
	"repro/internal/netgen"
	"repro/internal/reach"
	"repro/internal/traceroute"
	"repro/internal/vendors/cisco"
	"repro/internal/vendors/juniper"
)

// Snapshot is one network snapshot moving through the pipeline.
type Snapshot struct {
	Net      *config.Network
	Warnings []config.Warning

	opts dataplane.Options
	dp   *dataplane.Result
	g    *fwdgraph.Graph
	an   *reach.Analysis
	tr   *traceroute.Engine
}

// DetectDialect guesses the configuration dialect from text: Junos
// configurations are "set ..." command lists, IOS ones are hierarchical.
func DetectDialect(text string) string {
	for _, line := range strings.Split(text, "\n") {
		t := strings.TrimSpace(line)
		if t == "" || strings.HasPrefix(t, "#") || strings.HasPrefix(t, "!") {
			continue
		}
		if strings.HasPrefix(t, "set ") {
			return "junos"
		}
		return "ios"
	}
	return "ios"
}

// LoadText parses a map of filename (or hostname) to configuration text.
func LoadText(texts map[string]string) *Snapshot {
	s := &Snapshot{Net: config.NewNetwork()}
	names := make([]string, 0, len(texts))
	for n := range texts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		text := texts[n]
		var d *config.Device
		var w []config.Warning
		switch DetectDialect(text) {
		case "junos":
			d, w = juniper.Parse(text)
		default:
			d, w = cisco.Parse(text)
		}
		if d.Hostname == "" {
			d.Hostname = strings.TrimSuffix(filepath.Base(n), filepath.Ext(n))
		}
		s.Net.Devices[d.Hostname] = d
		s.Warnings = append(s.Warnings, w...)
	}
	return s
}

// LoadDir reads every *.cfg / *.conf / *.txt file in dir as one device.
func LoadDir(dir string) (*Snapshot, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	texts := make(map[string]string)
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		switch filepath.Ext(e.Name()) {
		case ".cfg", ".conf", ".txt":
		default:
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		texts[e.Name()] = string(b)
	}
	if len(texts) == 0 {
		return nil, fmt.Errorf("core: no configuration files in %s", dir)
	}
	return LoadText(texts), nil
}

// LoadGenerated wraps a generated snapshot (benchmarks and examples).
func LoadGenerated(snap *netgen.Snapshot) *Snapshot {
	net, warns := snap.Parse()
	return &Snapshot{Net: net, Warnings: warns}
}

// SetDataPlaneOptions overrides simulation options (before the first
// DataPlane call).
func (s *Snapshot) SetDataPlaneOptions(o dataplane.Options) { s.opts = o }

// DataPlane computes (once) and returns the data plane.
func (s *Snapshot) DataPlane() *dataplane.Result {
	if s.dp == nil {
		s.dp = dataplane.Run(s.Net, s.opts)
	}
	return s.dp
}

// Graph returns the forwarding graph, building the data plane if needed.
func (s *Snapshot) Graph() *fwdgraph.Graph {
	if s.g == nil {
		s.g = fwdgraph.New(s.DataPlane())
	}
	return s.g
}

// Analysis returns the BDD reachability analysis (graph-compressed).
func (s *Snapshot) Analysis() *reach.Analysis {
	if s.an == nil {
		s.an = reach.New(s.Graph())
	}
	return s.an
}

// Traceroute returns the concrete engine.
func (s *Snapshot) Traceroute() *traceroute.Engine {
	if s.tr == nil {
		s.tr = traceroute.New(s.DataPlane())
	}
	return s.tr
}

// HostFacing reports the source locations Batfish scopes "all pairs"
// queries to by default (paper §4.4.2): interfaces that likely face hosts
// or the external world — broad subnets with no discovered remote end —
// rather than inter-router links.
func (s *Snapshot) HostFacing() []reach.SourceLoc {
	dp := s.DataPlane()
	var out []reach.SourceLoc
	for _, name := range s.Net.DeviceNames() {
		d := s.Net.Devices[name]
		for _, in := range d.InterfaceNames() {
			i := d.Interfaces[in]
			if !i.Active || len(i.Addresses) == 0 {
				continue
			}
			p, _ := i.Primary()
			if p.Len >= 31 || p.Len == 0 {
				continue // p2p links and loopbacks are not host-facing
			}
			if len(dp.Topology.EdgesFrom(name, in)) > 0 {
				continue // we see the remote end: inter-router link
			}
			if p.Len < 16 {
				continue // implausibly broad for a host subnet
			}
			out = append(out, reach.SourceLoc{Device: name, Iface: in})
		}
	}
	return out
}
