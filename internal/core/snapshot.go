// Package core orchestrates the four-stage Batfish pipeline (paper §2) and
// provides the question layer on top of it: configuration parsing into the
// vendor-independent model, data plane generation, BDD-based verification,
// and violation explanation with carefully chosen examples.
//
// Since PR 2 the stages themselves live in internal/pipeline: every
// Snapshot is bound to a pipeline.Pipeline whose content-addressed
// artifact store dedupes parse/data-plane/graph/analysis work across
// snapshots. Loading through the package-level functions uses a shared
// process-wide pipeline; LoadTextWith and friends accept an explicit one
// (pass pipeline.Disabled() for the uncached reference behavior).
//
// The exported façade for downstream users is package batfish at the
// repository root, which re-exports these types.
package core

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/bdd"
	"repro/internal/config"
	"repro/internal/dataplane"
	"repro/internal/diag"
	"repro/internal/fwdgraph"
	"repro/internal/netgen"
	"repro/internal/pipeline"
	"repro/internal/reach"
	"repro/internal/traceroute"
)

// defaultPipeline backs the package-level loaders, so independent
// snapshots in one process share parsed models and downstream artifacts.
var defaultPipeline = pipeline.New(pipeline.Config{})

// DefaultPipeline returns the process-wide pipeline used by LoadText,
// LoadDir, and LoadGenerated.
func DefaultPipeline() *pipeline.Pipeline { return defaultPipeline }

// CacheStats reports the default pipeline's artifact-store counters and
// per-stage timings.
func CacheStats() pipeline.Stats { return defaultPipeline.Stats() }

// Snapshot is one network snapshot moving through the pipeline.
type Snapshot struct {
	Net      *config.Network
	Warnings []config.Warning

	pl      *pipeline.Pipeline
	texts   map[string]string       // source texts (name → config), for Edit
	devKeys map[string]pipeline.Key // hostname → parse-artifact key
	// baseline is the snapshot this one was derived from via Edit or
	// Apply; the question layer uses it for incremental re-analysis.
	baseline *Snapshot
	// scenario is the overlay that derived this snapshot from baseline
	// (nil for freshly loaded snapshots). Failure kinds contribute their
	// endpoints to the changed-device set.
	scenario *Scenario

	opts  dataplane.Options
	dp    *dataplane.Result
	dpKey pipeline.Key
	g     *fwdgraph.Graph
	gKey  pipeline.Key
	an    *reach.Analysis
	tr    *traceroute.Engine

	// reachMemo caches per-(source, header-space) sink sets so repeated
	// and incrementally-derived questions skip full forward passes.
	reachMemo map[memoKey]map[string]bdd.Ref
	// impact caches the per-source blast radius vs baseline.
	impact     map[reach.SourceLoc]bdd.Ref
	impactDone bool
	impactOK   bool

	// ctx governs every stage this snapshot runs; nil means Background.
	ctx context.Context
	// parseDiags are the containment diagnostics from the parse stage
	// (quarantined devices, cancellation).
	parseDiags []diag.Diagnostic
	// qDiags collects question-stage diagnostics (recovered panics, budget
	// exhaustion) as questions run.
	qMu    sync.Mutex
	qDiags []diag.Diagnostic
	// bddBudget, when positive, bounds the BDD factory's node count for
	// this snapshot's analyses (applied when the graph is built).
	bddBudget int
}

type memoKey struct {
	src reach.SourceLoc
	hs  bdd.Ref
}

// DetectDialect guesses the configuration dialect from text: Junos
// configurations are "set ..." command lists, IOS ones are hierarchical.
func DetectDialect(text string) string { return pipeline.DetectDialect(text) }

// LoadText parses a map of filename (or hostname) to configuration text
// using the default shared pipeline.
func LoadText(texts map[string]string) *Snapshot {
	return LoadTextWith(defaultPipeline, texts)
}

// LoadTextWith parses texts with an explicit pipeline. Devices parse in
// parallel; the resulting model is deterministic and ordered by name.
func LoadTextWith(pl *pipeline.Pipeline, texts map[string]string) *Snapshot {
	return LoadTextWithContext(context.Background(), pl, texts)
}

// LoadTextWithContext is LoadTextWith under a context. The context governs
// the parse stage now and every later stage this snapshot runs (data
// plane, graph, analysis): when it expires, in-flight stages stop at their
// next checkpoint and the snapshot degrades to partial results with
// cancellation diagnostics instead of blocking. A device whose parser
// panics is quarantined — excluded from the network, reported via Diags —
// and the rest of the snapshot stays usable.
func LoadTextWithContext(ctx context.Context, pl *pipeline.Pipeline, texts map[string]string) *Snapshot {
	if pl == nil {
		pl = pipeline.Disabled()
	}
	if ctx == nil {
		ctx = context.Background()
	}
	net, warns, devKeys, diags := pl.ParseCtx(ctx, texts)
	own := make(map[string]string, len(texts))
	for n, t := range texts {
		own[n] = t
	}
	s := &Snapshot{Net: net, Warnings: warns, pl: pl, texts: own, devKeys: devKeys,
		parseDiags: diags}
	if ctx != context.Background() {
		s.ctx = ctx
	}
	return s
}

// WithContext rebinds the context used by stages this snapshot has not run
// yet and returns the snapshot for chaining. Background (and nil) unbinds:
// stages then run uncancellable and shared-cache-eligible again.
func (s *Snapshot) WithContext(ctx context.Context) *Snapshot {
	if ctx == nil || ctx == context.Background() {
		s.ctx = nil
	} else {
		s.ctx = ctx
	}
	return s
}

func (s *Snapshot) context() context.Context {
	if s.ctx == nil {
		return context.Background()
	}
	return s.ctx
}

// SetBDDNodeBudget bounds the BDD factory node count for this snapshot's
// symbolic analyses; 0 removes the bound. Exceeding the budget aborts the
// offending question with a "Budget exceeded" diagnostic instead of
// letting the factory grow without limit. The budget attaches to the
// graph's factory, which a caching pipeline shares across its snapshots —
// set it on dedicated pipelines (or pipeline.Disabled()) when isolation
// matters.
func (s *Snapshot) SetBDDNodeBudget(n int) {
	s.bddBudget = n
	if s.g != nil {
		s.g.Enc.F.SetNodeBudget(n)
	}
}

func (s *Snapshot) addDiag(d diag.Diagnostic) {
	s.qMu.Lock()
	s.qDiags = append(s.qDiags, d)
	s.qMu.Unlock()
}

// Diags returns every containment diagnostic accumulated so far, in stage
// order: parse (quarantines, cancellation), data plane (quarantines,
// budget exhaustion, non-convergence, cancellation), graph/analysis
// cancellation, then question-stage recoveries. The slice is a copy.
func (s *Snapshot) Diags() []diag.Diagnostic {
	var out []diag.Diagnostic
	out = append(out, s.parseDiags...)
	if s.dp != nil {
		out = append(out, s.dp.Diags...)
	}
	if s.g != nil && s.g.Cancelled {
		out = append(out, diag.Diagnostic{Stage: diag.StageGraph, Kind: diag.KindCancelled,
			Message: "forwarding graph construction cancelled; graph covers a device prefix"})
	}
	if s.an != nil && s.an.Cancelled {
		out = append(out, diag.Diagnostic{Stage: diag.StageAnalysis, Kind: diag.KindCancelled,
			Message: "reachability fixed point cancelled; sets are under-approximate"})
	}
	s.qMu.Lock()
	out = append(out, s.qDiags...)
	s.qMu.Unlock()
	return out
}

// Quarantined returns the sorted device names excluded from this snapshot
// by failure containment: parse-stage quarantines plus devices the data
// plane simulation isolated after a panic.
func (s *Snapshot) Quarantined() []string {
	seen := make(map[string]bool)
	for _, d := range s.parseDiags {
		if d.Kind == diag.KindQuarantine && d.Device != "" {
			seen[d.Device] = true
		}
	}
	if s.dp != nil {
		for _, n := range s.dp.Quarantined {
			seen[n] = true
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Degraded reports whether any stage produced less than the full answer —
// cancellation, quarantined devices, budget exhaustion, or a recovered
// panic. Degraded results are still usable (healthy devices answer
// questions) but are never cached by the pipeline.
func (s *Snapshot) Degraded() bool {
	return len(s.Diags()) > 0
}

// Cancelled reports whether any stage observed an expired context.
func (s *Snapshot) Cancelled() bool {
	if s.dp != nil && s.dp.Cancelled {
		return true
	}
	if s.g != nil && s.g.Cancelled {
		return true
	}
	if s.an != nil && s.an.Cancelled {
		return true
	}
	return diag.Has(s.parseDiags, diag.KindCancelled)
}

// LoadDir reads every *.cfg / *.conf / *.txt file in dir as one device.
func LoadDir(dir string) (*Snapshot, error) {
	return LoadDirWith(defaultPipeline, dir)
}

// LoadDirWith is LoadDir with an explicit pipeline.
func LoadDirWith(pl *pipeline.Pipeline, dir string) (*Snapshot, error) {
	return LoadDirWithContext(context.Background(), pl, dir)
}

// LoadDirWithContext is LoadDirWith under a context (see
// LoadTextWithContext for the containment semantics).
func LoadDirWithContext(ctx context.Context, pl *pipeline.Pipeline, dir string) (*Snapshot, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	texts := make(map[string]string)
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		switch filepath.Ext(e.Name()) {
		case ".cfg", ".conf", ".txt":
		default:
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		texts[e.Name()] = string(b)
	}
	if len(texts) == 0 {
		return nil, fmt.Errorf("core: no configuration files in %s", dir)
	}
	return LoadTextWithContext(ctx, pl, texts), nil
}

// LoadGenerated wraps a generated snapshot (benchmarks and examples),
// routing its device texts through the default pipeline so generated
// networks participate in artifact caching and Edit.
func LoadGenerated(snap *netgen.Snapshot) *Snapshot {
	return LoadGeneratedWith(defaultPipeline, snap)
}

// LoadGeneratedWith is LoadGenerated with an explicit pipeline.
func LoadGeneratedWith(pl *pipeline.Pipeline, snap *netgen.Snapshot) *Snapshot {
	return LoadGeneratedWithContext(context.Background(), pl, snap)
}

// LoadGeneratedWithContext is LoadGeneratedWith under a context (see
// LoadTextWithContext for the containment semantics).
func LoadGeneratedWithContext(ctx context.Context, pl *pipeline.Pipeline, snap *netgen.Snapshot) *Snapshot {
	texts := make(map[string]string, len(snap.Devices))
	for _, dt := range snap.Devices {
		texts[dt.Hostname] = dt.Text
	}
	return LoadTextWithContext(ctx, pl, texts)
}

// Edit derives a new snapshot by overlaying config changes (name → new
// text; an empty string removes the device file). It is the config-edit
// special case of Apply: the result shares this snapshot's pipeline and
// options and records this snapshot as its baseline, enabling incremental
// re-analysis — questions on the edited snapshot recompute only flows
// whose trajectory can touch a changed device and reuse the baseline's
// answers for the rest.
func (s *Snapshot) Edit(changes map[string]string) *Snapshot {
	return s.Apply(Scenario{ConfigEdits: changes})
}

// Baseline returns the snapshot this one was derived from via Edit or
// Apply (nil for freshly loaded snapshots).
func (s *Snapshot) Baseline() *Snapshot { return s.baseline }

// Pipeline returns the pipeline this snapshot is bound to (nil for
// directly constructed Snapshot literals).
func (s *Snapshot) Pipeline() *pipeline.Pipeline { return s.pl }

// SetDataPlaneOptions overrides simulation options (before the first
// DataPlane call).
func (s *Snapshot) SetDataPlaneOptions(o dataplane.Options) { s.opts = o }

// ArtifactKeys returns the content-addressed cache keys of this
// snapshot's disk-persistable artifacts: one parse artifact per device
// plus the data-plane artifact for the snapshot's current options. The
// data-plane key derives from the parse keys and options alone, so it is
// known before (or without) the simulation running — exactly what a
// failover heir needs in order to pre-fetch a dead owner's work. Nil for
// snapshots not bound to a pipeline.
func (s *Snapshot) ArtifactKeys() []pipeline.Key {
	if s == nil || s.pl == nil {
		return nil
	}
	hosts := make([]string, 0, len(s.devKeys))
	for h := range s.devKeys {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	keys := make([]pipeline.Key, 0, len(hosts)+1)
	for _, h := range hosts {
		if k := s.devKeys[h]; !k.IsZero() {
			keys = append(keys, k)
		}
	}
	if dk := pipeline.DataPlaneKey(s.Net, s.devKeys, s.opts); !dk.IsZero() {
		keys = append(keys, dk)
	}
	return keys
}

// DataPlane computes (once) and returns the data plane.
func (s *Snapshot) DataPlane() *dataplane.Result {
	if s.dp == nil {
		if s.pl != nil {
			s.dp, s.dpKey = s.pl.DataPlaneCtx(s.context(), s.Net, s.devKeys, s.opts)
		} else {
			s.dp = dataplane.RunContext(s.context(), s.Net, s.opts)
		}
	}
	return s.dp
}

// Graph returns the forwarding graph, building the data plane if needed.
func (s *Snapshot) Graph() *fwdgraph.Graph {
	if s.g == nil {
		if s.pl != nil {
			s.g, s.gKey = s.pl.GraphCtx(s.context(), s.DataPlane(), s.dpKey)
		} else {
			s.g = fwdgraph.NewContext(s.context(), s.DataPlane())
		}
		if s.bddBudget > 0 {
			s.g.Enc.F.SetNodeBudget(s.bddBudget)
		}
	}
	return s.g
}

// Analysis returns the BDD reachability analysis (graph-compressed).
func (s *Snapshot) Analysis() *reach.Analysis {
	if s.an == nil {
		switch {
		case s.ctx != nil:
			// A context-bound analysis carries mutable cancellation state,
			// so it must be private to this snapshot: build fresh and skip
			// the shared artifact store entirely.
			s.an = reach.New(s.Graph()).WithContext(s.ctx)
		case s.pl != nil:
			s.an, _ = s.pl.Analysis(s.Graph(), s.gKey)
		default:
			s.an = reach.New(s.Graph())
		}
	}
	return s.an
}

// Traceroute returns the concrete engine.
func (s *Snapshot) Traceroute() *traceroute.Engine {
	if s.tr == nil {
		s.tr = traceroute.New(s.DataPlane())
	}
	return s.tr
}

// HostFacing reports the source locations Batfish scopes "all pairs"
// queries to by default (paper §4.4.2): interfaces that likely face hosts
// or the external world — broad subnets with no discovered remote end —
// rather than inter-router links.
func (s *Snapshot) HostFacing() []reach.SourceLoc {
	dp := s.DataPlane()
	var out []reach.SourceLoc
	for _, name := range s.Net.DeviceNames() {
		d := s.Net.Devices[name]
		for _, in := range d.InterfaceNames() {
			i := d.Interfaces[in]
			if !i.Active || len(i.Addresses) == 0 {
				continue
			}
			p, _ := i.Primary()
			if p.Len >= 31 || p.Len == 0 {
				continue // p2p links and loopbacks are not host-facing
			}
			if len(dp.Topology.EdgesFrom(name, in)) > 0 {
				continue // we see the remote end: inter-router link
			}
			if p.Len < 16 {
				continue // implausibly broad for a host subnet
			}
			out = append(out, reach.SourceLoc{Device: name, Iface: in})
		}
	}
	return out
}
