package core

import (
	"sort"
	"strings"

	"repro/internal/dataplane"
	"repro/internal/topo"
)

// Scenario is a typed snapshot overlay: the generalization of the old
// config-text-only Edit. A scenario can rewrite device configurations
// and/or fail network elements — links, whole nodes, individual BGP
// sessions — and Apply derives a new Snapshot from it. Pure-failure
// scenarios (no config edits) share the baseline's parse artifacts
// outright: only the simulation and the stages below it rerun, under
// scenario-aware content-addressed keys, and the question layer answers
// incrementally against the baseline exactly as it does for Edit.
type Scenario struct {
	// ConfigEdits maps device name to replacement text; an empty string
	// removes the device file (the original Edit semantics).
	ConfigEdits map[string]string
	// LinksDown masks L3 adjacencies (canonical orientation; see
	// topo.Edge.Link). The interfaces stay configured and addressed — only
	// the adjacency disappears, as when a fiber is cut.
	LinksDown []topo.Link
	// NodesDown excludes devices from the simulation entirely, as if
	// powered off.
	NodesDown []string
	// SessionsDown holds individual BGP sessions down without touching
	// the underlying links.
	SessionsDown []dataplane.SessionKey
}

// Empty reports whether the scenario changes nothing.
func (sc Scenario) Empty() bool {
	return len(sc.ConfigEdits) == 0 && sc.suppression().Empty()
}

// PureFailure reports whether the scenario has no config edits, i.e. the
// parsed model is shared with the baseline verbatim.
func (sc Scenario) PureFailure() bool { return len(sc.ConfigEdits) == 0 }

// suppression is the scenario's dataplane-level failure overlay.
func (sc Scenario) suppression() dataplane.Suppression {
	return dataplane.Suppression{Links: sc.LinksDown, Nodes: sc.NodesDown, Sessions: sc.SessionsDown}
}

// ID renders a canonical, human-readable scenario identifier: sorted
// "kind:element" terms joined by "+" ("" for the empty scenario). Two
// scenarios failing the same elements get the same ID regardless of
// slice order.
func (sc Scenario) ID() string {
	var terms []string
	for name := range sc.ConfigEdits {
		terms = append(terms, "edit:"+name)
	}
	sup := sc.suppression().Canonical()
	for _, l := range sup.Links {
		terms = append(terms, "link:"+l.String())
	}
	for _, n := range sup.Nodes {
		terms = append(terms, "node:"+n)
	}
	for _, k := range sup.Sessions {
		terms = append(terms, "session:"+k.String())
	}
	sort.Strings(terms)
	return strings.Join(terms, "+")
}

// Apply derives a new snapshot with the scenario overlaid. The result
// shares this snapshot's pipeline and options and records this snapshot
// as its baseline for incremental re-analysis. Pure-failure scenarios
// skip the parse stage entirely — the parsed network, device keys, and
// parse diagnostics are shared with the baseline — while scenarios with
// config edits go through the same overlay-parse path as Edit. Failure
// suppressions compose: applying a scenario to an already-suppressed
// snapshot merges the overlays.
func (s *Snapshot) Apply(sc Scenario) *Snapshot {
	var ns *Snapshot
	if sc.PureFailure() {
		ns = &Snapshot{
			Net: s.Net, Warnings: s.Warnings,
			pl: s.pl, texts: s.texts, devKeys: s.devKeys,
			parseDiags: s.parseDiags, ctx: s.ctx,
		}
	} else {
		texts := make(map[string]string, len(s.texts)+len(sc.ConfigEdits))
		for n, t := range s.texts {
			texts[n] = t
		}
		for n, t := range sc.ConfigEdits {
			if t == "" {
				delete(texts, n)
			} else {
				texts[n] = t
			}
		}
		ns = LoadTextWithContext(s.context(), s.pl, texts)
	}
	ns.opts = s.opts
	ns.opts.Suppress = s.opts.Suppress.Merge(sc.suppression())
	ns.baseline = s
	ns.scenario = &sc
	ns.bddBudget = s.bddBudget
	return ns
}

// SourceTexts returns a copy of the snapshot's device texts (name →
// configuration). Sweep executors use it to rebuild an equivalent base
// snapshot on a private pipeline.
func (s *Snapshot) SourceTexts() map[string]string {
	out := make(map[string]string, len(s.texts))
	for n, t := range s.texts {
		out[n] = t
	}
	return out
}

// DataPlaneOptions returns the snapshot's simulation options.
func (s *Snapshot) DataPlaneOptions() dataplane.Options { return s.opts }
