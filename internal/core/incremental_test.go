package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/netgen"
	"repro/internal/pipeline"
)

// fabricTexts renders a small Clos fabric as hostname → config text.
func fabricTexts(t testing.TB, name string) map[string]string {
	gen := netgen.Fabric(netgen.FabricParams{Name: name, Spines: 2, Pods: 2,
		AggPerPod: 2, TorPerPod: 2, HostNetsPerTor: 1, Multipath: true})
	texts := make(map[string]string, len(gen.Devices))
	for _, dt := range gen.Devices {
		texts[dt.Hostname] = dt.Text
	}
	return texts
}

// addRoute inserts a static route before the trailing "end" so the parser
// sees it inside the config body.
func addRoute(t testing.TB, text, route string) string {
	t.Helper()
	if !strings.HasSuffix(text, "end\n") {
		t.Fatal("config text does not end with 'end'")
	}
	return strings.TrimSuffix(text, "end\n") + route + "\nend\n"
}

func tracesOf(fr FlowResult) string {
	var b strings.Builder
	for _, tr := range fr.Traces {
		b.WriteString(tr.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestIncrementalEquivalence is the acceptance check for the incremental
// path: after editing one ToR (null-routing half of another ToR's host
// subnet, which breaks delivered flows), the warm cached snapshot must
// produce byte-identical Fingerprint, Reachability, and CompareWith
// outputs to (a) a full same-pipeline recomputation — compared down to
// the BDD refs, which are canonical within one encoder — and (b) a fresh
// run with caching disabled, compared on every derived value.
func TestIncrementalEquivalence(t *testing.T) {
	baseTexts := fabricTexts(t, "eq")
	const editedTor = "eq-p02-tor02"
	if _, ok := baseTexts[editedTor]; !ok {
		t.Fatalf("no device %s in %v", editedTor, len(baseTexts))
	}
	// The first ToR's host net is 10.0.0.0/24; blackholing its lower half
	// on another pod's ToR breaks delivered flows from that ToR's hosts.
	afterTexts := make(map[string]string, len(baseTexts))
	for k, v := range baseTexts {
		afterTexts[k] = v
	}
	afterTexts[editedTor] = addRoute(t, baseTexts[editedTor],
		"ip route 10.0.0.0 255.255.255.128 Null0")

	// Cached pipeline: load, warm the baseline, then edit.
	pl := pipeline.New(pipeline.Config{})
	base := LoadTextWith(pl, baseTexts)
	baseFlows := base.Reachability(ReachabilityParams{})
	if len(baseFlows) == 0 {
		t.Fatal("no host-facing flows in baseline")
	}
	after := base.Edit(map[string]string{editedTor: afterTexts[editedTor]})
	if _, ok := after.impactSets(); !ok {
		t.Fatal("incremental path did not engage")
	}
	if len(after.impact) == 0 {
		t.Fatal("edit produced an empty blast radius")
	}
	incFlows := after.Reachability(ReachabilityParams{})
	incDiffs := base.CompareWith(after)
	if len(incDiffs) == 0 {
		t.Fatal("blackholing a served subnet must break flows")
	}

	// (a) Full recomputation on the same pipeline: identical BDD refs.
	full := LoadTextWith(pl, afterTexts)
	if full.baseline != nil {
		t.Fatal("full snapshot unexpectedly has a baseline")
	}
	fullFlows := full.Reachability(ReachabilityParams{})
	if len(incFlows) != len(fullFlows) {
		t.Fatalf("flow count: incremental %d vs full %d", len(incFlows), len(fullFlows))
	}
	for i := range incFlows {
		a, b := incFlows[i], fullFlows[i]
		if a.Source != b.Source {
			t.Fatalf("flow %d source %v vs %v", i, a.Source, b.Source)
		}
		if a.Delivered != b.Delivered || a.Failed != b.Failed {
			t.Errorf("%v: sets differ (delivered %v vs %v, failed %v vs %v)",
				a.Source, a.Delivered, b.Delivered, a.Failed, b.Failed)
		}
		if a.HasPositive != b.HasPositive || a.PositiveExample != b.PositiveExample {
			t.Errorf("%v: positive example differs", a.Source)
		}
		if a.HasNegative != b.HasNegative || a.NegativeExample != b.NegativeExample {
			t.Errorf("%v: negative example differs", a.Source)
		}
		if tracesOf(a) != tracesOf(b) {
			t.Errorf("%v: traces differ:\n%s\nvs\n%s", a.Source, tracesOf(a), tracesOf(b))
		}
	}
	fullDiffs := base.CompareWith(full)
	if len(incDiffs) != len(fullDiffs) {
		t.Fatalf("diff rows: incremental %d vs full %d", len(incDiffs), len(fullDiffs))
	}
	for i := range incDiffs {
		a, b := incDiffs[i], fullDiffs[i]
		if a.Source != b.Source || a.Broken != b.Broken || a.NewlyArrive != b.NewlyArrive ||
			a.HasBroken != b.HasBroken || a.BrokenEx != b.BrokenEx {
			t.Errorf("diff row %d differs: %+v vs %+v", i, a, b)
		}
	}

	// (b) Caching disabled entirely: every derived value must match.
	refBase := LoadTextWith(pipeline.Disabled(), baseTexts)
	refAfter := LoadTextWith(pipeline.Disabled(), afterTexts)
	if got, want := after.DataPlane().Fingerprint(), refAfter.DataPlane().Fingerprint(); got != want {
		t.Errorf("after fingerprint %x != reference %x", got, want)
	}
	if got, want := base.DataPlane().Fingerprint(), refBase.DataPlane().Fingerprint(); got != want {
		t.Errorf("base fingerprint %x != reference %x", got, want)
	}
	refFlows := refAfter.Reachability(ReachabilityParams{})
	if len(refFlows) != len(incFlows) {
		t.Fatalf("flow count vs disabled reference: %d vs %d", len(incFlows), len(refFlows))
	}
	for i := range incFlows {
		a, b := incFlows[i], refFlows[i]
		if a.Source != b.Source || a.HasPositive != b.HasPositive ||
			a.PositiveExample != b.PositiveExample ||
			a.HasNegative != b.HasNegative || a.NegativeExample != b.NegativeExample {
			t.Errorf("%v: differs from cache-disabled reference", a.Source)
		}
		if tracesOf(a) != tracesOf(b) {
			t.Errorf("%v: traces differ from cache-disabled reference", a.Source)
		}
	}
	refDiffs := refBase.CompareWith(refAfter)
	if len(refDiffs) != len(incDiffs) {
		t.Fatalf("diff rows vs disabled reference: %d vs %d", len(incDiffs), len(refDiffs))
	}
	for i := range incDiffs {
		a, b := incDiffs[i], refDiffs[i]
		if a.Source != b.Source || a.HasBroken != b.HasBroken || a.BrokenEx != b.BrokenEx {
			t.Errorf("diff row %d differs from cache-disabled reference: %+v vs %+v", i, a, b)
		}
	}
}

// TestEditSemantics covers the overlay rules of Snapshot.Edit: replaced
// texts re-parse, untouched devices share the cached model, and an empty
// string removes the device.
func TestEditSemantics(t *testing.T) {
	pl := pipeline.New(pipeline.Config{})
	texts := fabricTexts(t, "ed")
	s := LoadTextWith(pl, texts)
	const tor = "ed-p01-tor01"
	after := s.Edit(map[string]string{tor: addRoute(t, texts[tor],
		"ip route 203.0.113.0 255.255.255.0 Null0")})
	if after.Baseline() != s || after.Pipeline() != pl {
		t.Fatal("Edit must keep pipeline and record baseline")
	}
	if after.Net.Devices[tor] == s.Net.Devices[tor] {
		t.Error("edited device model must be re-parsed")
	}
	for name := range s.Net.Devices {
		if name == tor {
			continue
		}
		if after.Net.Devices[name] != s.Net.Devices[name] {
			t.Errorf("unchanged device %s was re-parsed", name)
		}
	}
	removed := s.Edit(map[string]string{tor: ""})
	if _, ok := removed.Net.Devices[tor]; ok {
		t.Error("empty-string edit must remove the device")
	}
	if len(removed.Net.Devices) != len(s.Net.Devices)-1 {
		t.Errorf("device count after removal: %d", len(removed.Net.Devices))
	}
}

// TestChangedDevicesScope checks the blast-radius device set: a pure
// route edit marks only the edited device (its adjacency is unchanged,
// and the route is not redistributed), while an interface edit pulls in
// topology neighbors.
func TestChangedDevicesScope(t *testing.T) {
	pl := pipeline.New(pipeline.Config{})
	texts := fabricTexts(t, "cd")
	s := LoadTextWith(pl, texts)
	const tor = "cd-p01-tor01"
	routeEdit := s.Edit(map[string]string{tor: addRoute(t, texts[tor],
		"ip route 198.51.100.0 255.255.255.0 Null0")})
	changed := changedDevices(s, routeEdit)
	if !changed[tor] {
		t.Fatalf("edited device missing from changed set %v", changed)
	}
	if len(changed) != 1 {
		t.Errorf("pure route edit should change only the ToR, got %v", changed)
	}

	// Shutting a fabric uplink changes the ToR's adjacency: its
	// aggregation neighbors must join the changed set.
	ifaceEdit := s.Edit(map[string]string{tor: strings.Replace(texts[tor],
		"interface up1\n", "interface up1\n shutdown\n", 1)})
	changed = changedDevices(s, ifaceEdit)
	if !changed[tor] || !changed["cd-p01-agg1"] {
		t.Errorf("uplink shutdown must mark the ToR and its agg: %v", changed)
	}
}

// TestCompareWithIdenticalSnapshots: an edit that changes bytes but not
// behavior (a comment-like no-op) produces no diff rows and an empty
// blast radius beyond the edited device's unchanged forwarding.
func TestCompareWithNoopEdit(t *testing.T) {
	pl := pipeline.New(pipeline.Config{})
	texts := fabricTexts(t, "np")
	s := LoadTextWith(pl, texts)
	s.Reachability(ReachabilityParams{})
	const tor = "np-p01-tor02"
	after := s.Edit(map[string]string{tor: "!\n" + texts[tor]})
	if diffs := s.CompareWith(after); len(diffs) != 0 {
		t.Errorf("no-op edit produced diffs: %v", diffs)
	}
	if got, want := after.DataPlane().Fingerprint(), s.DataPlane().Fingerprint(); got != want {
		t.Errorf("no-op edit changed the fingerprint: %x vs %x", got, want)
	}
}

func TestServiceQuestionsUseMemo(t *testing.T) {
	// Repeated identical questions must hit the per-snapshot memo (the
	// second call does no BDD propagation; we just check stability).
	pl := pipeline.New(pipeline.Config{})
	s := LoadTextWith(pl, fabricTexts(t, "sm"))
	r1 := s.Reachability(ReachabilityParams{})
	r2 := s.Reachability(ReachabilityParams{})
	if fmt.Sprint(r1) != fmt.Sprint(r2) {
		t.Error("repeated Reachability not stable")
	}
}
