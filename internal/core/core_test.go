package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/acl"
	"repro/internal/bdd"
	"repro/internal/hdr"
	"repro/internal/ip4"
	"repro/internal/netgen"
	"repro/internal/reach"
)

const iosA = `
hostname r1
interface eth0
 ip address 10.0.0.1 255.255.255.252
 ip ospf area 0
 ip access-group GHOST in
interface lan0
 ip address 192.168.1.1 255.255.255.0
 ip ospf area 0
 ip ospf passive
router ospf 1
ip access-list extended WEB_ONLY
 permit tcp any any eq 80
ntp server 192.0.2.10
`

const junosB = `
set system host-name r2
set interfaces ge-0/0/0 unit 0 family inet address 10.0.0.2/30
set protocols ospf area 0 interface ge-0/0/0
set interfaces lan0 unit 0 family inet address 192.168.2.1/24
set protocols ospf area 0 interface lan0 passive
`

func sample(t *testing.T) *Snapshot {
	t.Helper()
	s := LoadText(map[string]string{"r1.cfg": iosA, "r2.cfg": junosB})
	if len(s.Net.Devices) != 2 {
		t.Fatalf("devices: %v", s.Net.DeviceNames())
	}
	return s
}

func TestDetectDialect(t *testing.T) {
	if DetectDialect(iosA) != "ios" {
		t.Error("iosA misdetected")
	}
	if DetectDialect(junosB) != "junos" {
		t.Error("junosB misdetected")
	}
	if DetectDialect("# comment\nset system host-name x\n") != "junos" {
		t.Error("comment prefix misdetected")
	}
}

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "r1.cfg"), []byte(iosA), 0o644)
	os.WriteFile(filepath.Join(dir, "r2.cfg"), []byte(junosB), 0o644)
	os.WriteFile(filepath.Join(dir, "README.md"), []byte("ignored"), 0o644)
	s, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Net.Devices) != 2 {
		t.Fatalf("devices: %v", s.Net.DeviceNames())
	}
	if _, err := LoadDir(t.TempDir()); err == nil {
		t.Error("empty dir should error")
	}
}

func TestUndefinedAndUnused(t *testing.T) {
	s := sample(t)
	undef := s.UndefinedReferences()
	if len(undef) != 1 || !strings.Contains(undef[0].Detail, "GHOST") {
		t.Errorf("undefined = %v", undef)
	}
	unused := s.UnusedStructures()
	found := false
	for _, f := range unused {
		if strings.Contains(f.Detail, "WEB_ONLY") {
			found = true
		}
	}
	if !found {
		t.Errorf("WEB_ONLY should be unused: %v", unused)
	}
}

func TestDuplicateIPs(t *testing.T) {
	s := LoadText(map[string]string{
		"a": "hostname a\ninterface e0\n ip address 10.0.0.1 255.255.255.0\n",
		"b": "hostname b\ninterface e0\n ip address 10.0.0.1 255.255.255.0\n",
	})
	dups := s.DuplicateIPs()
	if len(dups) != 1 || !strings.Contains(dups[0].Detail, "10.0.0.1") {
		t.Errorf("dups = %v", dups)
	}
	if len(sample(t).DuplicateIPs()) != 0 {
		t.Error("clean network should have no duplicates")
	}
}

func TestNTPConsistency(t *testing.T) {
	s := sample(t)
	// r1 has an NTP server, r2 (junos) has none: one of them deviates
	// from the majority; with two devices the tie is broken
	// deterministically.
	f := s.NTPConsistency()
	if len(f) != 1 {
		t.Errorf("ntp findings = %v", f)
	}
}

func TestRoutesAndDataPlane(t *testing.T) {
	s := sample(t)
	dp := s.DataPlane()
	if !dp.Converged {
		t.Fatalf("no convergence: %v", dp.Warnings)
	}
	rts := s.Routes("r1")
	found := false
	for _, r := range rts {
		if r.Prefix == ip4.MustParsePrefix("192.168.2.0/24") {
			found = true
		}
	}
	if !found {
		t.Errorf("r1 missing OSPF route to r2's LAN: %v", rts)
	}
	if s.Routes("nonexistent") != nil {
		t.Error("unknown node should return nil")
	}
}

func TestHostFacing(t *testing.T) {
	s := sample(t)
	hf := s.HostFacing()
	want := map[string]bool{"r1/lan0": true, "r2/lan0": true}
	if len(hf) != 2 {
		t.Fatalf("host facing = %v", hf)
	}
	for _, l := range hf {
		if !want[l.Device+"/"+l.Iface] {
			t.Errorf("unexpected host-facing %v", l)
		}
	}
}

func TestTestFilterAndSearchFilter(t *testing.T) {
	s := sample(t)
	d, err := s.TestFilter("r1", "WEB_ONLY", hdr.Packet{Protocol: hdr.ProtoTCP, DstPort: 80})
	if err != nil || d.Action != acl.Permit {
		t.Errorf("TestFilter = %v, %v", d, err)
	}
	d, _ = s.TestFilter("r1", "WEB_ONLY", hdr.Packet{Protocol: hdr.ProtoTCP, DstPort: 22})
	if d.Action != acl.Deny {
		t.Errorf("ssh should be denied: %v", d)
	}
	if _, err := s.TestFilter("r1", "NOPE", hdr.Packet{}); err == nil {
		t.Error("unknown acl should error")
	}
	p, ok, err := s.SearchFilter("r1", "WEB_ONLY", acl.Permit)
	if err != nil || !ok || p.DstPort != 80 || p.Protocol != hdr.ProtoTCP {
		t.Errorf("SearchFilter permit = %v %v %v", p, ok, err)
	}
	p, ok, _ = s.SearchFilter("r1", "WEB_ONLY", acl.Deny)
	if !ok {
		t.Fatal("deny search failed")
	}
	if p.Protocol == hdr.ProtoTCP && p.DstPort == 80 {
		t.Errorf("deny example should not be permitted traffic: %v", p)
	}
}

func TestReachabilityQuestionDefaults(t *testing.T) {
	s := sample(t)
	results := s.Reachability(ReachabilityParams{})
	if len(results) != 2 {
		t.Fatalf("results = %d, want one per host-facing iface", len(results))
	}
	for _, r := range results {
		if !r.HasPositive {
			t.Errorf("%v: no positive example", r.Source)
		}
		// Default scoping pins the source IP to the LAN subnet
		// (suppressing spoofed-source noise, Lesson 4).
		if r.HasPositive {
			subnet := ip4.MustParsePrefix("192.168.0.0/16")
			if !subnet.Contains(r.PositiveExample.SrcIP) {
				t.Errorf("%v: positive example has out-of-scope source %v",
					r.Source, r.PositiveExample.SrcIP)
			}
		}
		// Negative examples must come with an explanatory trace.
		if r.HasNegative && len(r.Traces) == 0 {
			t.Errorf("%v: negative example without trace", r.Source)
		}
	}
}

func TestBGPSessionStatusQuestion(t *testing.T) {
	snap := LoadGenerated(netgen.WAN(netgen.WANParams{Name: "q", Nodes: 6, CoreMesh: 3, TransitPeers: 1}))
	fs := snap.BGPSessionStatus()
	if len(fs) == 0 {
		t.Fatal("no sessions reported")
	}
	for _, f := range fs {
		if !strings.Contains(f.Detail, "established") {
			t.Errorf("session not established: %v", f)
		}
	}
}

func TestCompareWithDetectsBrokenFlows(t *testing.T) {
	before := sample(t)
	afterTexts := map[string]string{
		"r1.cfg": strings.Replace(iosA, "ip access-group GHOST in",
			"ip access-group WEB_ONLY in", 1),
		"r2.cfg": junosB,
	}
	after := LoadText(afterTexts)
	diffs := before.CompareWith(after)
	if len(diffs) == 0 {
		t.Fatal("applying WEB_ONLY on the transit interface must break flows")
	}
	foundBroken := false
	for _, d := range diffs {
		if d.Broken != bdd.False {
			foundBroken = true
			if d.HasBroken && d.BrokenEx.Protocol == hdr.ProtoTCP && d.BrokenEx.DstPort == 80 {
				t.Errorf("HTTP should survive the change: %v", d.BrokenEx)
			}
		}
	}
	if !foundBroken {
		t.Error("no broken flows found")
	}
}

func TestMultipathConsistencyQuestion(t *testing.T) {
	s := sample(t)
	if v := s.MultipathConsistency(); len(v) != 0 {
		t.Errorf("single-path network cannot violate multipath consistency: %v", v)
	}
}

func TestServiceReachable(t *testing.T) {
	s := sample(t)
	results := s.ServiceReachable(ServiceSpec{
		DstIPs: []ip4.Prefix{ip4.MustParsePrefix("192.168.2.0/24")},
		Port:   80,
	})
	if len(results) == 0 {
		t.Fatal("no clients checked")
	}
	for _, r := range results {
		if r.Client.Device == "r1" && !r.OK {
			t.Errorf("r1's LAN should reach the web service: %+v", r)
		}
		if r.OK && r.HasEx {
			if r.Example.DstPort != 80 || r.Example.Protocol != hdr.ProtoTCP {
				t.Errorf("example out of service scope: %v", r.Example)
			}
			if !ip4.MustParsePrefix("192.168.0.0/16").Contains(r.Example.SrcIP) {
				t.Errorf("example source out of client scope: %v", r.Example)
			}
		}
	}
}

func TestServiceProtectedFindsExposure(t *testing.T) {
	// Protect r2's LAN web service, allowing only r1's LAN as a client.
	// Every other source location that can deliver is an exposure —
	// transit interfaces can, since nothing filters them.
	s := sample(t)
	allowed := []reach.SourceLoc{{Device: "r1", Iface: "lan0"}}
	exposures := s.ServiceProtected(ServiceSpec{
		DstIPs:  []ip4.Prefix{ip4.MustParsePrefix("192.168.2.0/24")},
		Port:    80,
		Clients: allowed,
	})
	if len(exposures) == 0 {
		t.Fatal("unfiltered network must expose the service")
	}
	for _, e := range exposures {
		if e.From == allowed[0] {
			t.Error("allowed client reported as exposure")
		}
		if e.Example.DstPort != 80 {
			t.Errorf("exposure example out of scope: %v", e.Example)
		}
	}
}

func TestServiceUnreachableReportsFailingExample(t *testing.T) {
	// A service address that is not routed: every client fails, and the
	// result carries a (failing) example for debugging.
	s := sample(t)
	results := s.ServiceReachable(ServiceSpec{
		DstIPs: []ip4.Prefix{ip4.MustParsePrefix("203.0.113.0/24")},
		Port:   443,
	})
	for _, r := range results {
		if r.OK {
			t.Errorf("unrouted service reported reachable from %v", r.Client)
		}
		if !r.HasEx {
			t.Errorf("failing example missing for %v", r.Client)
		}
	}
}

func TestDetectLoopsQuestion(t *testing.T) {
	s := LoadText(map[string]string{
		"a": "hostname a\ninterface e0\n ip address 10.0.0.1 255.255.255.252\nip route 0.0.0.0 0.0.0.0 10.0.0.2\n",
		"b": "hostname b\ninterface e0\n ip address 10.0.0.2 255.255.255.252\nip route 0.0.0.0 0.0.0.0 10.0.0.1\n",
	})
	if loops := s.DetectLoops(); len(loops) == 0 {
		t.Error("mutual defaults must report loops")
	}
	if loops := sample(t).DetectLoops(); len(loops) != 0 {
		t.Errorf("clean network reported loops: %v", loops)
	}
}
