package core

import (
	"repro/internal/bdd"
	"repro/internal/hdr"
	"repro/internal/ip4"
	"repro/internal/reach"
)

// The paper's §4.4.1 lesson: "general-purpose queries that can be
// parametrized flexibly are hard to use because they lead to semantic
// ambiguities. Batfish now wraps the underlying general mechanisms with
// highly task-specific queries. Checking if a service endpoint is
// reachable from its intended client locations is a separate query from
// checking if a service cannot be reached." This file provides those two
// task-specific queries, each with its own unambiguous quantifier
// structure and its own defaults.

// ServiceSpec names a service endpoint.
type ServiceSpec struct {
	DstIPs  []ip4.Prefix      // service addresses
	Port    uint16            // TCP destination port
	Proto   uint8             // 0 = TCP
	Clients []reach.SourceLoc // client locations; default: host-facing
}

func (s ServiceSpec) headerSpace(an *reach.Analysis) bdd.Ref {
	enc := an.Enc
	proto := s.Proto
	if proto == 0 {
		proto = hdr.ProtoTCP
	}
	hs := enc.F.And(
		enc.FieldEq(hdr.Protocol, uint32(proto)),
		enc.FieldEq(hdr.DstPort, uint32(s.Port)))
	dst := bdd.False
	for _, p := range s.DstIPs {
		dst = enc.F.Or(dst, enc.Prefix(hdr.DstIP, p))
	}
	return enc.F.And(hs, dst)
}

// ServiceReachableResult answers the availability question per client.
type ServiceReachableResult struct {
	Client reach.SourceLoc
	// OK means SOME in-scope packet from this client reaches the service
	// (the availability quantifier: each client must have a working path).
	OK      bool
	Example hdr.Packet // a working packet when OK, a failing one otherwise
	HasEx   bool
}

// ServiceReachable asks: can every intended client location reach the
// service? The quantifier is fixed — for each client, there must exist a
// delivered in-scope flow — eliminating the "set A reaches set B"
// ambiguity of Lesson 4. Source IPs are scoped to each client subnet and
// examples prefer unprivileged source ports, suppressing the paper's
// uninteresting-violation classes (spoofed sources, privileged ports).
func (s *Snapshot) ServiceReachable(spec ServiceSpec) (out []ServiceReachableResult) {
	s.guardQuestion("service-reachable", func() {
		out = s.serviceReachable(spec)
	})
	return out
}

func (s *Snapshot) serviceReachable(spec ServiceSpec) []ServiceReachableResult {
	an := s.Analysis()
	enc := an.Enc
	f := enc.F
	clients := spec.Clients
	if len(clients) == 0 {
		clients = s.HostFacing()
	}
	base := spec.headerSpace(an)
	var out []ServiceReachableResult
	for _, c := range clients {
		hs := f.And(base, s.sourceScope(c))
		sinks, ok := s.sinkSetsFor(c, hs)
		if !ok {
			continue
		}
		success, failure := reach.Partition(sinks, f)
		r := ServiceReachableResult{Client: c, OK: success != bdd.False}
		prefs := []bdd.Ref{
			enc.FieldGE(hdr.SrcPort, 1024),
			enc.FieldEq(hdr.TCPFlags, hdr.FlagSYN),
		}
		if r.OK {
			r.Example, r.HasEx = enc.PickPacket(success, prefs...)
		} else {
			r.Example, r.HasEx = enc.PickPacket(failure, prefs...)
		}
		out = append(out, r)
	}
	return out
}

// ServiceExposure is one unintended access path to a protected service.
type ServiceExposure struct {
	From    reach.SourceLoc
	Packets bdd.Ref
	Example hdr.Packet
}

// ServiceProtected asks the security-oriented converse: can anyone OUTSIDE
// the allowed client locations reach the service? The quantifier is again
// fixed — no flow from any non-allowed source location may be delivered.
// Unlike the availability query, source-IP scoping is NOT applied to the
// attacker's packets (a security check must include spoofed sources).
func (s *Snapshot) ServiceProtected(spec ServiceSpec) (out []ServiceExposure) {
	s.guardQuestion("service-protected", func() {
		out = s.serviceProtected(spec)
	})
	return out
}

func (s *Snapshot) serviceProtected(spec ServiceSpec) []ServiceExposure {
	an := s.Analysis()
	enc := an.Enc
	f := enc.F
	allowed := make(map[reach.SourceLoc]bool, len(spec.Clients))
	for _, c := range spec.Clients {
		allowed[c] = true
	}
	base := spec.headerSpace(an)
	var out []ServiceExposure
	for _, src := range an.Sources() {
		if allowed[src] {
			continue
		}
		sinks, ok := s.sinkSetsFor(src, base)
		if !ok {
			continue
		}
		success, _ := reach.Partition(sinks, f)
		if success == bdd.False {
			continue
		}
		ex, _ := enc.PickPacket(success, enc.FieldGE(hdr.SrcPort, 1024))
		out = append(out, ServiceExposure{From: src, Packets: success, Example: ex})
	}
	return out
}

// sourceScope returns the default source-IP constraint for a client
// location (§4.4.2).
func (s *Snapshot) sourceScope(c reach.SourceLoc) bdd.Ref {
	enc := s.Analysis().Enc
	f := enc.F
	d := s.Net.Devices[c.Device]
	if d == nil {
		return bdd.True
	}
	i, ok := d.Interfaces[c.Iface]
	if !ok {
		return bdd.True
	}
	scope := bdd.False
	for _, p := range i.Addresses {
		if p.Len < 32 {
			scope = f.Or(scope, enc.Prefix(hdr.SrcIP, p))
		}
	}
	if scope == bdd.False {
		return bdd.True
	}
	for _, p := range i.Addresses {
		scope = f.Diff(scope, enc.FieldEq(hdr.SrcIP, uint32(p.Addr)))
	}
	return scope
}
