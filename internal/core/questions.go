package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/acl"
	"repro/internal/bdd"
	"repro/internal/config"
	"repro/internal/diag"
	"repro/internal/faults"
	"repro/internal/fwdgraph"
	"repro/internal/hdr"
	"repro/internal/ip4"
	"repro/internal/reach"
	"repro/internal/routing"
	"repro/internal/traceroute"
)

// guardQuestion runs one question body with panic isolation: a panic (or
// BDD budget trip) inside fn becomes a question-stage diagnostic on the
// snapshot instead of crashing the caller, and the question returns
// whatever partial answer was assembled before the failure. The device
// field carries the question scope — a source device for per-source
// guards, the question name for whole-question guards.
func (s *Snapshot) guardQuestion(scope string, fn func()) bool {
	d := diag.Capture(diag.StageQuestion, scope, func() {
		faults.Fire("question", scope)
		fn()
	})
	if d != nil {
		s.addDiag(*d)
		return false
	}
	return true
}

// Finding is one result row of a question; questions return sorted,
// deterministic findings so snapshots diff cleanly in CI workflows
// (paper §5.1.1).
type Finding struct {
	Node   string
	Detail string
}

func (f Finding) String() string { return f.Node + ": " + f.Detail }

func sortFindings(fs []Finding) []Finding {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].Node != fs[j].Node {
			return fs[i].Node < fs[j].Node
		}
		return fs[i].Detail < fs[j].Detail
	})
	return fs
}

// UndefinedReferences reports uses of undefined structures — the canonical
// high-value local analysis (Lesson 5: "If a missing route-map results in
// bad forwarding, it is much easier to find this error by checking for
// undefined route-maps").
func (s *Snapshot) UndefinedReferences() []Finding {
	var out []Finding
	for _, name := range s.Net.DeviceNames() {
		for _, r := range s.Net.Devices[name].UndefinedRefs() {
			out = append(out, Finding{Node: name,
				Detail: fmt.Sprintf("undefined %s %q referenced at %s", r.Type, r.Name, r.Context)})
		}
	}
	return sortFindings(out)
}

// UnusedStructures reports defined-but-unreferenced structures.
func (s *Snapshot) UnusedStructures() []Finding {
	var out []Finding
	for _, name := range s.Net.DeviceNames() {
		for _, r := range s.Net.Devices[name].UnusedStructures() {
			out = append(out, Finding{Node: name,
				Detail: fmt.Sprintf("unused %s %q", r.Type, r.Name)})
		}
	}
	return sortFindings(out)
}

// DuplicateIPs reports addresses assigned to more than one place in the
// network (Lesson 5: "uniqueness of assigned IP addresses").
func (s *Snapshot) DuplicateIPs() []Finding {
	owners := make(map[ip4.Addr][]string)
	for _, name := range s.Net.DeviceNames() {
		for a, ifaces := range s.Net.Devices[name].OwnedIPs() {
			for _, i := range ifaces {
				owners[a] = append(owners[a], name+":"+i)
			}
		}
	}
	var out []Finding
	for a, os := range owners {
		if len(os) < 2 {
			continue
		}
		sort.Strings(os)
		out = append(out, Finding{Node: os[0],
			Detail: fmt.Sprintf("address %s also assigned at %s", a, strings.Join(os[1:], ", "))})
	}
	return sortFindings(out)
}

// NTPConsistency reports devices whose NTP server set differs from the
// majority (the configuration-settings check of Lesson 5).
func (s *Snapshot) NTPConsistency() []Finding {
	render := func(addrs []ip4.Addr) string {
		ss := make([]string, len(addrs))
		for i, a := range addrs {
			ss[i] = a.String()
		}
		sort.Strings(ss)
		return strings.Join(ss, ",")
	}
	counts := make(map[string]int)
	for _, name := range s.Net.DeviceNames() {
		counts[render(s.Net.Devices[name].NTPServers)]++
	}
	majority, best := "", -1
	for k, c := range counts {
		if c > best || (c == best && k < majority) {
			majority, best = k, c
		}
	}
	var out []Finding
	for _, name := range s.Net.DeviceNames() {
		if got := render(s.Net.Devices[name].NTPServers); got != majority {
			out = append(out, Finding{Node: name,
				Detail: fmt.Sprintf("ntp servers [%s] differ from majority [%s]", got, majority)})
		}
	}
	return sortFindings(out)
}

// BGPSessionStatus reports every configured session and why it is down —
// the BGP compatibility analysis (Lesson 5) plus viability (§4.1.1).
func (s *Snapshot) BGPSessionStatus() []Finding {
	dp := s.DataPlane()
	var out []Finding
	for _, sess := range dp.Sessions {
		state := "established"
		if !sess.Up {
			state = "down: " + sess.DownReason
		}
		out = append(out, Finding{Node: sess.LocalNode,
			Detail: fmt.Sprintf("neighbor %s (AS %d): %s", sess.PeerIP, sess.PeerAS, state)})
	}
	return sortFindings(out)
}

// Routes returns the main RIB of one device in display order.
func (s *Snapshot) Routes(node string) []routing.Route {
	ns := s.DataPlane().Nodes[node]
	if ns == nil {
		return nil
	}
	return ns.DefaultVRF().Main.AllBest()
}

// TestFilter evaluates a named ACL against a concrete packet — the "does
// this ACL allow this packet" question of Lesson 5.
func (s *Snapshot) TestFilter(node, aclName string, p hdr.Packet) (acl.Disposition, error) {
	d := s.Net.Devices[node]
	if d == nil {
		return acl.Disposition{}, fmt.Errorf("no device %q", node)
	}
	a, ok := d.ACLs[aclName]
	if !ok {
		return acl.Disposition{}, fmt.Errorf("no ACL %q on %s", aclName, node)
	}
	return a.Eval(p), nil
}

// SearchFilter finds a packet the ACL disposes of as requested (symbolic
// filter analysis), or ok=false if none exists.
func (s *Snapshot) SearchFilter(node, aclName string, want acl.Action) (hdr.Packet, bool, error) {
	d := s.Net.Devices[node]
	if d == nil {
		return hdr.Packet{}, false, fmt.Errorf("no device %q", node)
	}
	a, ok := d.ACLs[aclName]
	if !ok {
		return hdr.Packet{}, false, fmt.Errorf("no ACL %q on %s", aclName, node)
	}
	enc := s.Graph().Enc
	c := acl.Compile(enc, a)
	set := c.Permit
	if want == acl.Deny {
		set = enc.F.Not(c.Permit)
	}
	p, found := enc.PickPacket(set,
		enc.FieldEq(hdr.Protocol, hdr.ProtoTCP),
		enc.FieldGE(hdr.SrcPort, 1024))
	return p, found, nil
}

// FlowResult is the answer to a reachability question: the flow set per
// disposition plus contrasted example packets (paper §4.4.3: "instead of
// showing only the counterexample, Batfish also shows a positive
// example").
type FlowResult struct {
	Source    reach.SourceLoc
	Delivered bdd.Ref
	Failed    bdd.Ref
	// PositiveExample is a delivered packet, NegativeExample a failed one
	// (zero packets when the respective set is empty).
	PositiveExample hdr.Packet
	HasPositive     bool
	NegativeExample hdr.Packet
	HasNegative     bool
	// Traces explain the negative example hop by hop.
	Traces []traceroute.Trace
}

// ReachabilityParams scope a reachability question. Zero values get the
// paper's §4.4.2 defaults: sources are host-facing interfaces, source IPs
// are scoped to the source subnet (suppressing spoofed-source violations),
// and examples prefer TCP with unprivileged source ports (suppressing the
// privileged-port and reply-flag uninteresting violations of Lesson 4).
type ReachabilityParams struct {
	Sources []reach.SourceLoc // default: host-facing interfaces
	DstIPs  []ip4.Prefix      // default: unconstrained
	Headers bdd.Ref           // extra header constraint (bdd.True default)
}

// Reachability answers "what can each source deliver / what fails",
// with default scoping and example selection.
//
// Sources are independently guarded: a panic or budget trip while
// analyzing one source records a question-stage diagnostic naming that
// source's device and the remaining sources still produce results.
func (s *Snapshot) Reachability(params ReachabilityParams) []FlowResult {
	sources := params.Sources
	if len(sources) == 0 {
		sources = s.HostFacing()
	}
	var out []FlowResult
	for _, src := range sources {
		var fr FlowResult
		var ok bool
		if !s.guardQuestion(src.Device, func() {
			fr, ok = s.reachOne(src, params)
		}) {
			continue
		}
		if ok {
			out = append(out, fr)
		}
	}
	return out
}

// reachOne answers the reachability question for a single source.
func (s *Snapshot) reachOne(src reach.SourceLoc, params ReachabilityParams) (FlowResult, bool) {
	an := s.Analysis()
	enc := an.Enc
	f := enc.F
	hs := params.Headers
	if hs == 0 {
		hs = bdd.True
	}
	// Default source-IP scope: the source interface's subnet minus the
	// gateway itself (§4.4.2 "limit the set of source and destination
	// IPs to those that can likely originate at those interfaces").
	d := s.Net.Devices[src.Device]
	if i, ok := d.Interfaces[src.Iface]; ok {
		srcScope := bdd.False
		for _, p := range i.Addresses {
			if p.Len < 32 {
				srcScope = f.Or(srcScope, enc.Prefix(hdr.SrcIP, p))
			}
		}
		if srcScope != bdd.False {
			for _, p := range i.Addresses {
				srcScope = f.Diff(srcScope, enc.FieldEq(hdr.SrcIP, uint32(p.Addr)))
			}
			hs = f.And(hs, srcScope)
		}
	}
	for _, dst := range params.DstIPs {
		hs = f.And(hs, enc.Prefix(hdr.DstIP, dst))
	}
	sinks, ok := s.sinkSetsFor(src, hs)
	if !ok {
		return FlowResult{}, false
	}
	success, failure := reach.Partition(sinks, f)
	fr := FlowResult{Source: src, Delivered: success, Failed: failure}
	// Example preferences implement Lesson 4's uninteresting-violation
	// suppression: common protocol/application, unprivileged source
	// port, and fresh-request TCP flags (not a spoofed reply).
	prefs := []bdd.Ref{
		enc.FieldEq(hdr.Protocol, hdr.ProtoTCP),
		enc.FieldEq(hdr.DstPort, 80),
		enc.FieldGE(hdr.SrcPort, 1024),
		enc.FieldEq(hdr.TCPFlags, hdr.FlagSYN),
	}
	if p, ok := enc.PickPacket(success, prefs...); ok {
		fr.PositiveExample, fr.HasPositive = p, true
	}
	if p, ok := enc.PickPacket(failure, prefs...); ok {
		fr.NegativeExample, fr.HasNegative = p, true
		vrf := config.DefaultVRF
		if i, ok := d.Interfaces[src.Iface]; ok {
			vrf = i.VRFOrDefault()
		}
		fr.Traces = s.Traceroute().Run(src.Device, vrf, src.Iface, p)
	}
	return fr, true
}

// MultipathConsistency runs the paper's benchmark verification query
// (§6.1) over the default header space. A panic or budget trip inside the
// query becomes a question-stage diagnostic and nil violations.
func (s *Snapshot) MultipathConsistency() (out []reach.MultipathViolation) {
	s.guardQuestion("multipath-consistency", func() {
		out = s.Analysis().MultipathConsistency(bdd.True)
	})
	return out
}

// DifferentialFlows compares delivered sets between this snapshot and a
// candidate change, per shared source location — the proactive-validation
// workflow (§5.1): flows that the change breaks or newly admits.
type DifferentialFlows struct {
	Source      reach.SourceLoc
	Broken      bdd.Ref // delivered before, not after
	NewlyArrive bdd.Ref // delivered after, not before
	BrokenEx    hdr.Packet
	HasBroken   bool
}

// CompareWith diffs reachability against a modified snapshot. Both
// snapshots are analyzed with the same BDD encoder so the sets are
// directly comparable. When after was derived from s via Edit (same
// caching pipeline, no NAT), the comparison is incremental: only sources
// whose flows can touch a changed device are re-examined, restricted to
// their blast radius — with results identical to the full comparison.
func (s *Snapshot) CompareWith(after *Snapshot) (out []DifferentialFlows) {
	s.guardQuestion("compare", func() {
		out = s.compareWith(after)
	})
	return out
}

func (s *Snapshot) compareWith(after *Snapshot) []DifferentialFlows {
	if out, ok := s.compareIncremental(after); ok {
		return out
	}
	g1 := s.Graph()
	var a1, a2 *reach.Analysis
	if g2 := after.Graph(); g2.Enc == g1.Enc {
		// Same pipeline encoder: the snapshots' own (possibly cached)
		// analyses are directly comparable.
		a1 = s.Analysis()
		a2 = after.Analysis()
	} else {
		// Rebuild the after-graph sharing the encoder.
		g2 := fwdgraph.NewWithEnc(after.DataPlane(), g1.Enc)
		a1 = reach.New(g1)
		a2 = reach.New(g2)
	}
	enc := g1.Enc
	f := enc.F
	var out []DifferentialFlows
	for _, src := range a1.Sources() {
		r1, ok1 := a1.Reachability(src, bdd.True)
		r2, ok2 := a2.Reachability(src, bdd.True)
		if !ok1 || !ok2 {
			continue
		}
		s1, _ := reach.Partition(r1.Sinks, f)
		s2, _ := reach.Partition(r2.Sinks, f)
		broken := f.Diff(s1, s2)
		newly := f.Diff(s2, s1)
		if broken == bdd.False && newly == bdd.False {
			continue
		}
		df := DifferentialFlows{Source: src, Broken: broken, NewlyArrive: newly}
		if p, ok := enc.PickPacket(broken, enc.FieldEq(hdr.Protocol, hdr.ProtoTCP)); ok {
			df.BrokenEx, df.HasBroken = p, true
		}
		out = append(out, df)
	}
	return out
}

// AcceptedAt exposes the per-device accepted packet sets.
func (s *Snapshot) AcceptedAt() map[string]bdd.Ref {
	return s.Analysis().AcceptedAt(bdd.True)
}

// Disposition names re-exported for callers inspecting FlowResult traces.
const (
	SinkAccepted        = fwdgraph.SinkAccepted
	SinkDeliveredToHost = fwdgraph.SinkDeliveredToHost
	SinkExitsNetwork    = fwdgraph.SinkExitsNetwork
)

// DetectLoops reports forwarding loops per source location: packet sets
// with no path to any disposition sink necessarily cycle forever. A panic
// or budget trip inside the query becomes a question-stage diagnostic and
// nil results.
func (s *Snapshot) DetectLoops() (out []reach.LoopResult) {
	s.guardQuestion("detect-loops", func() {
		out = s.Analysis().DetectLoops(bdd.True)
	})
	return out
}
