// Package fwdgraph builds the dataflow graph of paper §4.2.1: nodes for
// FIB lookups, ACL applications, NAT stages, and per-interface sources and
// sinks, with edges labeled by BDDs describing the packet sets that can
// traverse them. The graph encodes exact longest-prefix-match semantics
// (derived from the FIB trie), first-match ACL semantics, packet
// transformations as relation BDDs, and zone-based firewall behavior using
// a handful of reused extension variables (paper §4.2.3).
package fwdgraph

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/acl"
	"repro/internal/bdd"
	"repro/internal/config"
	"repro/internal/dataplane"
	"repro/internal/fib"
	"repro/internal/hdr"
)

// Kind classifies graph nodes.
type Kind uint8

// Node kinds.
const (
	KindSource Kind = iota // packets entering at an interface
	KindPreIn              // post-arrival processing stage
	KindFwd                // VRF FIB lookup
	KindEgress             // per-interface egress stage
	KindSink
)

// Sink names mirror the traceroute dispositions so the two engines can be
// compared directly (paper §4.3.2).
const (
	SinkAccepted        = "accepted"
	SinkDeniedIn        = "denied-in"
	SinkDeniedOut       = "denied-out"
	SinkDeniedZone      = "denied-zone"
	SinkNoRoute         = "no-route"
	SinkNullRouted      = "null-routed"
	SinkExitsNetwork    = "exits-network"
	SinkDeliveredToHost = "delivered-to-host"
)

// Node is one dataflow graph node.
type Node struct {
	ID    int
	Kind  Kind
	Name  string // canonical name, e.g. "fwd:r1:default"
	Node_ string // device hostname ("" for shared sinks)
	Extra string // interface / vrf / sink label
}

// Edge carries packets from From to To. Traversal applies, in order:
// intersect with Label, apply the transformation, set the zone field,
// clear the zone field, set waypoint bits.
type Edge struct {
	From, To  int
	Label     bdd.Ref        // packets that may traverse (pre-transform)
	Tr        *hdr.Transform // optional packet transformation
	ZoneSet   *uint32        // record the ingress zone id (erase + constrain)
	ClearZone bool           // erase zone bits (leaving a device)
	SetBits   []int          // waypoint bits forced to 1 on traversal

	// Raw, when non-False, is the pre-filter label of a filtering edge
	// (ingress/egress ACL, zone policy). Bidirectional analysis uses it to
	// instrument the session fast path: return traffic matching an
	// installed session traverses with Raw instead of Label (§4.2.3).
	Raw bdd.Ref
}

// Apply pushes a packet set across the edge.
func (e *Edge) Apply(enc *hdr.Enc, set bdd.Ref) bdd.Ref {
	f := enc.F
	set = f.And(set, e.Label)
	if set == bdd.False {
		return bdd.False
	}
	if e.Tr != nil {
		set = enc.Apply(set, e.Tr)
	}
	if e.ZoneSet != nil {
		set = f.And(f.Exists(set, enc.ExtVarSet(0, ZoneBits)), enc.ExtEq(0, ZoneBits, *e.ZoneSet))
	}
	if e.ClearZone {
		set = f.Exists(set, enc.ExtVarSet(0, ZoneBits))
	}
	for _, b := range e.SetBits {
		set = enc.SetBit(set, b)
	}
	return set
}

// ApplyReverse computes the packet sets at the tail that can produce the
// given set at the head — the "reverse BDD" step of paper §4.2.3. Waypoint
// bits are not reversed exactly (reverse queries do not use waypoints).
func (e *Edge) ApplyReverse(enc *hdr.Enc, set bdd.Ref) bdd.Ref {
	f := enc.F
	if e.ClearZone || e.ZoneSet != nil {
		set = f.Exists(set, enc.ExtVarSet(0, ZoneBits))
	}
	if e.Tr != nil {
		set = enc.ReverseApply(set, e.Tr)
	}
	return f.And(set, e.Label)
}

// Graph is the dataflow graph plus its BDD encoder.
type Graph struct {
	Enc   *hdr.Enc
	Nodes []Node
	Edges []Edge
	Out   [][]int // adjacency: edge indices by From
	In    [][]int // edge indices by To

	// Cancelled reports that construction stopped early because the
	// context expired; the graph covers a prefix of the devices.
	Cancelled bool

	ids map[string]int

	dp *dataplane.Result
}

// ZoneBits is the number of extension variables reserved for firewall
// zones ("in practice we have never needed more than four bits", §4.2.3).
const ZoneBits = 4

// WaypointBits is the number of extension variables reserved for waypoint
// tracking (typically 1 is enough, §4.2.3).
const WaypointBits = 2

// New builds the dataflow graph for a computed data plane.
//
// Construction of a single graph is deliberately serial: every edge label
// is a BDD op against one shared factory, and the factory's hash-consed
// unique table and operation caches are unsynchronized (see bdd.Factory).
// Parallel analyses therefore replicate the whole graph — one factory per
// worker — via BuildReplicas instead of sharing one.
func New(dp *dataplane.Result) *Graph {
	return NewContext(context.Background(), dp)
}

// NewContext is New with cooperative cancellation: construction checks the
// context between devices and stops early when it expires, returning a
// partial graph with Cancelled set. A partial graph is structurally valid
// (indexes are built) but covers only a prefix of the devices, so queries
// against it see a degraded network.
func NewContext(ctx context.Context, dp *dataplane.Result) *Graph {
	g := &Graph{
		Enc: hdr.NewEnc(ZoneBits + WaypointBits),
		ids: make(map[string]int),
		dp:  dp,
	}
	g.build(ctx)
	g.index()
	return g
}

// BuildReplicas builds n independent copies of the dataflow graph, each
// with its own encoder and BDD factory. Replicas back fan-out query
// execution (e.g. reach.QueryPool): BDD refs never cross factories, so
// per-worker graphs are the only safe way to run queries concurrently.
//
// One base graph is constructed from the data plane; the remaining n-1
// are migration-based clones (see Clone). A clone is one memoized
// structural copy of the base factory's live nodes — it skips all of
// construction's BDD operations (ACL compilation, FIB-trie set algebra,
// NAT relation building), which dominate build time. Clones only read the
// base graph, so they run in parallel without locks.
func BuildReplicas(dp *dataplane.Result, n int) []*Graph {
	if n < 1 {
		n = 1
	}
	out := make([]*Graph, n)
	out[0] = New(dp)
	var wg sync.WaitGroup
	wg.Add(n - 1)
	for i := 1; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			out[i] = out[0].Clone()
		}(i)
	}
	wg.Wait()
	return out
}

// Clone returns an independent replica of the graph: identical structure
// and node ids, a fresh encoder and BDD factory, and every edge BDD
// (label, raw label, transformation relation) migrated across in one
// memoized pass. Shared subgraphs are inserted into the new factory
// exactly once, so a clone costs O(distinct live BDD nodes) table
// insertions instead of re-running graph construction. Immutable
// per-edge metadata (zone id pointers, waypoint bit lists) is shared
// with the receiver; neither side may mutate it.
func (g *Graph) Clone() *Graph {
	enc := g.Enc.CloneEmpty()
	m := bdd.NewMigrator(g.Enc.F, enc.F)
	ng := &Graph{
		Enc:       enc,
		Nodes:     append([]Node(nil), g.Nodes...),
		Edges:     make([]Edge, len(g.Edges)),
		Cancelled: g.Cancelled,
		ids:       make(map[string]int, len(g.ids)),
		dp:        g.dp,
	}
	for k, v := range g.ids {
		ng.ids[k] = v
	}
	for i := range g.Edges {
		e := g.Edges[i]
		e.Label = m.Migrate(e.Label)
		e.Raw = m.Migrate(e.Raw)
		if e.Tr != nil {
			e.Tr = enc.AdoptTransform(m.Migrate(e.Tr.Rel()))
		}
		ng.Edges[i] = e
	}
	ng.index()
	return ng
}

// NewWithEnc builds the graph reusing an existing encoder (for tests that
// need to construct query BDDs with the same factory).
func NewWithEnc(dp *dataplane.Result, enc *hdr.Enc) *Graph {
	return NewWithEncContext(context.Background(), dp, enc)
}

// NewWithEncContext is NewWithEnc with the cancellation behavior of
// NewContext.
func NewWithEncContext(ctx context.Context, dp *dataplane.Result, enc *hdr.Enc) *Graph {
	g := &Graph{Enc: enc, ids: make(map[string]int), dp: dp}
	g.build(ctx)
	g.index()
	return g
}

func (g *Graph) node(kind Kind, name, device, extra string) int {
	if id, ok := g.ids[name]; ok {
		return id
	}
	id := len(g.Nodes)
	g.Nodes = append(g.Nodes, Node{ID: id, Kind: kind, Name: name, Node_: device, Extra: extra})
	g.ids[name] = id
	return id
}

func (g *Graph) edge(from, to int, label bdd.Ref) *Edge {
	g.Edges = append(g.Edges, Edge{From: from, To: to, Label: label})
	return &g.Edges[len(g.Edges)-1]
}

// Lookup returns the node id by canonical name.
func (g *Graph) Lookup(name string) (int, bool) {
	id, ok := g.ids[name]
	return id, ok
}

// SourceName returns the canonical name of an interface source node.
func SourceName(device, iface string) string { return "src:" + device + ":" + iface }

// FwdName returns the canonical name of a VRF forwarding node.
func FwdName(device, vrf string) string { return "fwd:" + device + ":" + vrf }

// SinkName returns the canonical name of a per-device sink.
func SinkName(kind, device string) string { return "sink:" + kind + ":" + device }

func (g *Graph) index() {
	g.Out = make([][]int, len(g.Nodes))
	g.In = make([][]int, len(g.Nodes))
	for i := range g.Edges {
		e := &g.Edges[i]
		g.Out[e.From] = append(g.Out[e.From], i)
		g.In[e.To] = append(g.In[e.To], i)
	}
}

// compileACL returns the permit BDD for a named ACL; undefined references
// permit everything (matching the concrete engine).
func (g *Graph) compileACL(d *config.Device, name string, cache map[string]bdd.Ref) bdd.Ref {
	if name == "" {
		return bdd.True
	}
	key := d.Hostname + "/" + name
	if r, ok := cache[key]; ok {
		return r
	}
	a, ok := d.ACLs[name]
	var r bdd.Ref
	if !ok {
		r = bdd.True
	} else {
		r = acl.Compile(g.Enc, a).Permit
	}
	cache[key] = r
	return r
}

// zoneID assigns each zone of a device a small integer; 0 = unzoned.
func zoneIDs(d *config.Device) map[string]uint32 {
	names := make([]string, 0, len(d.Zones))
	for n := range d.Zones {
		names = append(names, n)
	}
	sort.Strings(names)
	ids := make(map[string]uint32, len(names))
	for i, n := range names {
		ids[n] = uint32(i + 1)
	}
	return ids
}

func (g *Graph) build(ctx context.Context) {
	aclCache := make(map[string]bdd.Ref)
	net := g.dp.Network
	down := g.dp.DownSet()
	for _, name := range net.DeviceNames() {
		if ctx.Err() != nil {
			g.Cancelled = true
			return
		}
		if down[name] {
			// Scenario-downed devices have no simulated state: no nodes,
			// no sources, no sinks — packets cannot enter or traverse them.
			continue
		}
		d := net.Devices[name]
		g.buildDevice(d, aclCache)
	}
}

func (g *Graph) buildDevice(d *config.Device, aclCache map[string]bdd.Ref) {
	enc := g.Enc
	f := enc.F
	name := d.Hostname
	zids := zoneIDs(d)
	zoned := len(zids) > 0

	// Own-IP set: packets accepted by this device.
	ownIPs := bdd.False
	for _, in := range d.InterfaceNames() {
		i := d.Interfaces[in]
		if !i.Active {
			continue
		}
		for _, p := range i.Addresses {
			ownIPs = f.Or(ownIPs, enc.FieldEq(hdr.DstIP, uint32(p.Addr)))
		}
	}
	acceptSink := g.node(KindSink, SinkName(SinkAccepted, name), name, SinkAccepted)

	// Per-VRF forwarding nodes + FIB-derived egress structure.
	for _, vrfName := range sortedVRFs(d) {
		vs := g.dp.Nodes[name].VRFs[vrfName]
		if vs == nil || vs.FIB == nil {
			continue
		}
		fwd := g.node(KindFwd, FwdName(name, vrfName), name, vrfName)

		// Accept edge.
		if ownIPs != bdd.False {
			g.edge(fwd, acceptSink, ownIPs)
		}

		// Disjoint LPM dst sets per forwarding action.
		perNH := make(map[fib.NextHop]bdd.Ref)
		g.disjointSets(vs.FIB.Root(), bdd.True, func(entry *fib.Entry, set bdd.Ref) {
			set = f.Diff(set, ownIPs)
			if set == bdd.False {
				return
			}
			for _, nh := range entry.NextHops {
				perNH[nh] = f.Or(perNH[nh], set)
			}
		})

		// No-route sink: everything with no FIB match (minus own IPs).
		matched := bdd.False
		for _, s := range perNH {
			matched = f.Or(matched, s)
		}
		noRoute := f.Diff(f.Diff(bdd.True, matched), ownIPs)
		if noRoute != bdd.False {
			g.edge(fwd, g.node(KindSink, SinkName(SinkNoRoute, name), name, SinkNoRoute), noRoute)
		}

		// Group next hops per egress interface.
		nhs := make([]fib.NextHop, 0, len(perNH))
		for nh := range perNH {
			nhs = append(nhs, nh)
		}
		sort.Slice(nhs, func(i, j int) bool {
			if nhs[i].Iface != nhs[j].Iface {
				return nhs[i].Iface < nhs[j].Iface
			}
			return nhs[i].IP < nhs[j].IP
		})
		byIface := make(map[string][]fib.NextHop)
		for _, nh := range nhs {
			if nh.Drop {
				g.edge(fwd, g.node(KindSink, SinkName(SinkNullRouted, name), name, SinkNullRouted), perNH[nh])
				continue
			}
			byIface[nh.Iface] = append(byIface[nh.Iface], nh)
		}

		ifaces := make([]string, 0, len(byIface))
		for i := range byIface {
			ifaces = append(ifaces, i)
		}
		sort.Strings(ifaces)
		for _, ifName := range ifaces {
			g.buildEgress(d, vrfName, fwd, ifName, byIface[ifName], perNH, zids, zoned, aclCache)
		}
	}

	// Ingress chains.
	for _, ifName := range d.InterfaceNames() {
		i := d.Interfaces[ifName]
		if !i.Active || len(i.Addresses) == 0 {
			continue
		}
		src := g.node(KindSource, SourceName(name, ifName), name, ifName)
		preIn := g.node(KindPreIn, "preIn:"+name+":"+ifName, name, ifName)
		g.edge(src, preIn, bdd.True)

		permit := g.compileACL(d, i.InACL, aclCache)
		if deny := g.Enc.F.Not(permit); deny != bdd.False && i.InACL != "" {
			g.edge(preIn, g.node(KindSink, SinkName(SinkDeniedIn, name), name, SinkDeniedIn), deny)
		}

		fwd, ok := g.Lookup(FwdName(name, i.VRFOrDefault()))
		if !ok {
			continue
		}
		e := g.edge(preIn, fwd, permit)
		if d.Stateful && i.InACL != "" {
			e.Raw = bdd.True
		}
		// Destination NAT on ingress.
		if tr := g.natTransform(d, config.DestNAT, ifName, aclCache); tr != nil {
			e.Tr = tr
		}
		// Record the ingress zone (zone 0 = unzoned interface).
		if zoned {
			zid := zids[d.ZoneOf(ifName)]
			e.ZoneSet = &zid
		}
	}
}

func sortedVRFs(d *config.Device) []string {
	out := make([]string, 0, len(d.VRFs))
	for n := range d.VRFs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// buildEgress constructs fwd -> egress -> neighbor/sink chains for one
// interface.
func (g *Graph) buildEgress(d *config.Device, vrfName string, fwd int, ifName string,
	nhs []fib.NextHop, perNH map[fib.NextHop]bdd.Ref, zids map[string]uint32, zoned bool,
	aclCache map[string]bdd.Ref) {

	enc := g.Enc
	f := enc.F
	name := d.Hostname
	i := d.Interfaces[ifName]

	union := bdd.False
	for _, nh := range nhs {
		union = f.Or(union, perNH[nh])
	}

	eg := g.node(KindEgress, "egress:"+name+":"+vrfName+":"+ifName, name, ifName)

	// Zone policy between recorded ingress zone and this egress zone.
	if zoned {
		toZone := d.ZoneOf(ifName)
		zoneOK := g.zonePolicyBDD(d, zids, toZone, aclCache)
		denied := f.Diff(union, zoneOK)
		if denied != bdd.False {
			g.edge(fwd, g.node(KindSink, SinkName(SinkDeniedZone, name), name, SinkDeniedZone), denied)
		}
		ze := g.edge(fwd, eg, f.And(union, zoneOK))
		if d.Stateful {
			ze.Raw = union
		}
	} else {
		g.edge(fwd, eg, union)
	}

	// Source NAT, then egress ACL on post-NAT headers.
	post := eg
	if tr := g.natTransform(d, config.SourceNAT, ifName, aclCache); tr != nil {
		pn := g.node(KindEgress, "postNat:"+name+":"+vrfName+":"+ifName, name, ifName)
		e := g.edge(eg, pn, bdd.True)
		e.Tr = tr
		post = pn
	}
	permit := g.compileACL(d, i.OutACL, aclCache)
	out := post
	if i.OutACL != "" {
		o := g.node(KindEgress, "out:"+name+":"+vrfName+":"+ifName, name, ifName)
		pe := g.edge(post, o, permit)
		if d.Stateful {
			pe.Raw = bdd.True
		}
		g.edge(post, g.node(KindSink, SinkName(SinkDeniedOut, name), name, SinkDeniedOut), f.Not(permit))
		out = o
	}

	// Split to neighbors / hosts / outside by destination.
	// Neighbor-owned IPs on this link, for connected-route delivery.
	neighborEdges := g.dp.Topology.EdgesFrom(name, ifName)
	linkOwn := bdd.False // IPs owned by neighbors on this link
	for _, ed := range neighborEdges {
		ri := g.dp.Network.Devices[ed.Node2].Interfaces[ed.Iface2]
		if ri == nil {
			continue
		}
		for _, p := range ri.Addresses {
			linkOwn = f.Or(linkOwn, enc.FieldEq(hdr.DstIP, uint32(p.Addr)))
		}
	}

	covered := bdd.False
	for _, nh := range nhs {
		set := perNH[nh]
		var target string
		var targetIface string
		if nh.Node != "" {
			target, targetIface = nh.Node, g.peerIface(name, ifName, nh.Node)
		}
		if target == "" && nh.IP == 0 {
			// Connected route: split by who owns the destination.
			for _, ed := range neighborEdges {
				ri := g.dp.Network.Devices[ed.Node2].Interfaces[ed.Iface2]
				if ri == nil {
					continue
				}
				ownSet := bdd.False
				for _, p := range ri.Addresses {
					ownSet = f.Or(ownSet, enc.FieldEq(hdr.DstIP, uint32(p.Addr)))
				}
				part := f.And(set, ownSet)
				if part == bdd.False {
					continue
				}
				g.deliverEdge(out, ed.Node2, ed.Iface2, part)
				covered = f.Or(covered, part)
			}
			// Rest of the connected set: hosts on the subnet.
			rest := f.Diff(set, linkOwn)
			if rest != bdd.False {
				subnetSet := g.ifaceSubnetBDD(i)
				host := f.And(rest, subnetSet)
				if host != bdd.False {
					g.edge(out, g.node(KindSink, SinkName(SinkDeliveredToHost, name), name, SinkDeliveredToHost), host)
				}
				exit := f.Diff(rest, subnetSet)
				if exit != bdd.False {
					g.edge(out, g.node(KindSink, SinkName(SinkExitsNetwork, name), name, SinkExitsNetwork), exit)
				}
				covered = f.Or(covered, rest)
			}
			continue
		}
		if target == "" {
			// Next hop IP known but no neighbor: exits the network.
			g.edge(out, g.node(KindSink, SinkName(SinkExitsNetwork, name), name, SinkExitsNetwork), set)
			covered = f.Or(covered, set)
			continue
		}
		g.deliverEdge(out, target, targetIface, set)
		covered = f.Or(covered, set)
	}
	_ = covered
}

// deliverEdge connects an egress node to the neighbor's preIn, clearing
// extension (zone) bits as the packet leaves the device.
func (g *Graph) deliverEdge(out int, neighbor, neighborIface string, set bdd.Ref) {
	preIn, ok := g.Lookup("preIn:" + neighbor + ":" + neighborIface)
	if !ok {
		preIn = g.node(KindPreIn, "preIn:"+neighbor+":"+neighborIface, neighbor, neighborIface)
	}
	e := g.edge(out, preIn, set)
	e.ClearZone = true
}

func (g *Graph) peerIface(node, iface, peer string) string {
	for _, ed := range g.dp.Topology.EdgesFrom(node, iface) {
		if ed.Node2 == peer {
			return ed.Iface2
		}
	}
	return ""
}

func (g *Graph) ifaceSubnetBDD(i *config.Interface) bdd.Ref {
	f := g.Enc.F
	r := bdd.False
	for _, p := range i.Addresses {
		if p.Len < 32 {
			r = f.Or(r, g.Enc.Prefix(hdr.DstIP, p))
		}
	}
	return r
}

// zonePolicyBDD returns the packet+zone-bit constraint for traffic leaving
// through toZone: the ingress zone bits must identify a zone with a
// permitting policy (or equal the egress zone).
func (g *Graph) zonePolicyBDD(d *config.Device, zids map[string]uint32, toZone string, aclCache map[string]bdd.Ref) bdd.Ref {
	enc := g.Enc
	f := enc.F
	ok := bdd.False
	// For each possible ingress zone value (including 0 = unzoned):
	check := func(fromZone string, zid uint32) {
		zc := enc.ExtEq(0, ZoneBits, zid)
		if fromZone == "" && toZone == "" {
			ok = f.Or(ok, zc)
			return
		}
		if fromZone == toZone {
			ok = f.Or(ok, zc)
			return
		}
		for _, zp := range d.ZonePolicies {
			if zp.FromZone != fromZone || zp.ToZone != toZone {
				continue
			}
			if zp.ACL == "" {
				ok = f.Or(ok, zc)
				return
			}
			if _, defined := d.ACLs[zp.ACL]; !defined {
				ok = f.Or(ok, zc) // undefined policy ACL permits (matches concrete engine)
				return
			}
			ok = f.Or(ok, f.And(zc, g.compileACL(d, zp.ACL, aclCache)))
			return
		}
		// default deny: contribute nothing
	}
	check("", 0)
	names := make([]string, 0, len(zids))
	for n := range zids {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		check(n, zids[n])
	}
	return ok
}

// natTransform compiles the device's NAT rule list for one direction and
// interface into a single first-match transformation, or nil if no rule
// applies.
func (g *Graph) natTransform(d *config.Device, kind config.NATKind, iface string, aclCache map[string]bdd.Ref) *hdr.Transform {
	enc := g.Enc
	var rules []config.NATRule
	for _, nr := range d.NATRules {
		if nr.Kind != kind {
			continue
		}
		if nr.Iface != "" && nr.Iface != iface {
			continue
		}
		rules = append(rules, nr)
	}
	if len(rules) == 0 {
		return nil
	}
	// Build first-match semantics back to front.
	tr := enc.NewTransform() // identity fallback
	for i := len(rules) - 1; i >= 0; i-- {
		nr := rules[i]
		guard := g.compileACL(d, nr.MatchACL, aclCache)
		if nr.MatchACL != "" {
			if _, defined := d.ACLs[nr.MatchACL]; !defined {
				guard = bdd.False // undefined match ACL matches nothing (concrete engine parity)
			}
		}
		field := hdr.SrcIP
		portField := hdr.SrcPort
		if kind == config.DestNAT {
			field = hdr.DstIP
			portField = hdr.DstPort
		}
		t := enc.NewTransform()
		if nr.PoolLo == nr.PoolHi {
			t.SetField(field, uint32(nr.PoolLo))
		} else {
			t.SetFieldPool(field, uint32(nr.PoolLo), uint32(nr.PoolHi))
		}
		if nr.PortLo != 0 {
			if nr.PortLo == nr.PortHi {
				t.SetField(portField, uint32(nr.PortLo))
			} else {
				t.SetFieldPool(portField, uint32(nr.PortLo), uint32(nr.PortHi))
			}
		}
		tr = enc.Guarded(guard, t, tr)
	}
	return tr
}

// disjointSets walks the FIB trie emitting, for each entry, the exact
// packet set it matches under longest-prefix-match: the entry's prefix
// minus every longer matching prefix below it.
func (g *Graph) disjointSets(n *fib.Node, _ bdd.Ref, emit func(*fib.Entry, bdd.Ref)) {
	g.walkTrie(n, emit)
}

// walkTrie returns the union of prefixes covered by entries at or below n.
func (g *Graph) walkTrie(n *fib.Node, emit func(*fib.Entry, bdd.Ref)) bdd.Ref {
	if n == nil {
		return bdd.False
	}
	f := g.Enc.F
	below := f.Or(g.walkTrie(n.Children[0], emit), g.walkTrie(n.Children[1], emit))
	if n.Entry == nil {
		return below
	}
	self := g.Enc.Prefix(hdr.DstIP, n.Prefix)
	set := f.Diff(self, below)
	if set != bdd.False {
		emit(n.Entry, set)
	}
	return self
}

// Device returns the configuration of a device by hostname (nil if
// unknown).
func (g *Graph) Device(name string) *config.Device { return g.dp.Network.Devices[name] }

// String renders a summary for debugging and the Figure 2 example.
func (g *Graph) String() string {
	return fmt.Sprintf("dataflow graph: %d nodes, %d edges", len(g.Nodes), len(g.Edges))
}
