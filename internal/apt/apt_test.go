package apt

import (
	"testing"

	"repro/internal/bdd"
	"repro/internal/config"
	"repro/internal/dataplane"
	"repro/internal/fwdgraph"
	"repro/internal/reach"
	"repro/internal/testnet"
)

func build(t *testing.T, net *config.Network) (*fwdgraph.Graph, *Analysis) {
	t.Helper()
	dp := dataplane.Run(net, dataplane.Options{})
	if !dp.Converged {
		t.Fatalf("no convergence: %v", dp.Warnings)
	}
	g := fwdgraph.New(dp)
	a, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	return g, a
}

func TestAtomsPartitionHeaderSpace(t *testing.T) {
	g, a := build(t, testnet.Line3())
	f := g.Enc.F
	union := bdd.False
	for i, atom := range a.Atoms {
		if atom == bdd.False {
			t.Fatalf("atom %d is empty", i)
		}
		if f.And(union, atom) != bdd.False {
			t.Fatalf("atom %d overlaps earlier atoms", i)
		}
		union = f.Or(union, atom)
	}
	if union != bdd.True {
		t.Fatal("atoms do not cover header space")
	}
}

func TestEveryPredicateIsAtomUnion(t *testing.T) {
	g, a := build(t, testnet.Figure2())
	for i := range g.Edges {
		p := g.Edges[i].Label
		// Reconstruct the predicate from its atom set.
		rebuilt := a.BDDOf(a.edgeSets[i])
		if rebuilt != p {
			t.Fatalf("edge %d predicate is not a union of atoms (%d atoms)", i, a.NumAtoms)
		}
	}
}

func TestDestReachabilityMatchesBDDEngine(t *testing.T) {
	for name, net := range map[string]*config.Network{
		"line":    testnet.Line3(),
		"diamond": testnet.Diamond(),
		"figure2": testnet.Figure2(),
		"broken":  testnet.ECMPWithBrokenBranch(),
	} {
		t.Run(name, func(t *testing.T) {
			g, a := build(t, net)
			r := reach.New(g)
			for _, dstDev := range []string{"r1", "r3", "r4"} {
				if g.Device(dstDev) == nil {
					continue
				}
				want := r.DestReachability(dstDev, bdd.True)
				got := a.DestReachability(dstDev)
				if len(want) != len(got) {
					t.Fatalf("dst %s: source count %d (bdd) vs %d (apt)", dstDev, len(want), len(got))
				}
				for src, set := range want {
					bs, ok := got[fwdgraph.SourceName(src.Device, src.Iface)]
					if !ok {
						t.Fatalf("dst %s: apt missing source %v", dstDev, src)
					}
					if a.BDDOf(bs) != set {
						t.Fatalf("dst %s src %v: atom set != bdd set", dstDev, src)
					}
				}
			}
		})
	}
}

func TestTransformsRejected(t *testing.T) {
	net := testnet.Line3()
	r2 := net.Devices["r2"]
	r2.NATRules = []config.NATRule{{
		Kind: config.SourceNAT, PoolLo: 100 << 24, PoolHi: 100 << 24,
	}}
	dp := dataplane.Run(net, dataplane.Options{})
	g := fwdgraph.New(dp)
	if _, err := New(g); err != ErrTransformsUnsupported {
		t.Errorf("expected ErrTransformsUnsupported, got %v", err)
	}
}

func TestBitsetOps(t *testing.T) {
	b := newBitset(130)
	b.set(0)
	b.set(129)
	if !b.has(0) || !b.has(129) || b.has(64) {
		t.Error("set/has wrong")
	}
	if b.Count() != 2 {
		t.Errorf("count = %d", b.Count())
	}
	o := newBitset(130)
	o.set(64)
	if !b.Or(o) || !b.has(64) {
		t.Error("Or wrong")
	}
	if b.Or(o) {
		t.Error("second Or should not change")
	}
	dst := newBitset(130)
	if !b.AndInto(o, dst) || dst.Count() != 1 || !dst.has(64) {
		t.Error("AndInto wrong")
	}
}
