// Package apt implements an Atomic Predicates verifier — the comparator of
// paper §6.2 ("the best performing tool to our knowledge is APT"). It
// computes the coarsest partition of header space that makes every edge
// predicate in the forwarding graph a union of partition blocks ("atoms"),
// represents predicates as atom-id bitsets, and answers reachability
// queries by graph traversal over bitsets.
//
// Like the original Atomic Predicates tool, it handles filter/forwarding
// predicates but not packet transformations — the paper notes that adding
// transformations to APT "required development of an entirely new theory"
// (§4.2.3 / Lesson 2), which is exactly the extensibility gap the BDD
// dataflow engine closes.
package apt

import (
	"errors"
	"math/bits"
	"sort"

	"repro/internal/bdd"
	"repro/internal/fwdgraph"
)

// ErrTransformsUnsupported is returned when the graph contains NAT edges.
var ErrTransformsUnsupported = errors.New("apt: packet transformations not supported")

// Bitset is a set of atom ids.
type Bitset []uint64

func newBitset(n int) Bitset { return make(Bitset, (n+63)/64) }

func (b Bitset) set(i int)      { b[i/64] |= 1 << (i % 64) }
func (b Bitset) has(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

// Or unions o into b; returns true if b changed.
func (b Bitset) Or(o Bitset) bool {
	changed := false
	for i := range b {
		n := b[i] | o[i]
		if n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}

// AndInto writes b ∧ o into dst; returns true if dst is nonempty.
func (b Bitset) AndInto(o, dst Bitset) bool {
	nonempty := false
	for i := range b {
		dst[i] = b[i] & o[i]
		if dst[i] != 0 {
			nonempty = true
		}
	}
	return nonempty
}

// Count returns the number of atoms in the set.
func (b Bitset) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Analysis is the atomized forwarding graph.
type Analysis struct {
	G     *fwdgraph.Graph
	Atoms []bdd.Ref // atom i's BDD
	// edgeSets[i] is edge i's predicate as an atom bitset.
	edgeSets []Bitset
	out      [][]int32
	NumAtoms int
}

// New atomizes the graph's edge predicates. Returns
// ErrTransformsUnsupported if any edge carries a transformation.
func New(g *fwdgraph.Graph) (*Analysis, error) {
	f := g.Enc.F
	for i := range g.Edges {
		if g.Edges[i].Tr != nil {
			return nil, ErrTransformsUnsupported
		}
	}
	// Distinct predicates.
	distinct := make(map[bdd.Ref]struct{})
	for i := range g.Edges {
		distinct[g.Edges[i].Label] = struct{}{}
	}
	preds := make([]bdd.Ref, 0, len(distinct))
	for p := range distinct {
		preds = append(preds, p)
	}
	sort.Slice(preds, func(i, j int) bool { return preds[i] < preds[j] })

	// Refine the partition of header space, predicate by predicate.
	atoms := []bdd.Ref{bdd.True}
	for _, p := range preds {
		if p == bdd.True || p == bdd.False {
			continue
		}
		next := make([]bdd.Ref, 0, len(atoms)+8)
		for _, a := range atoms {
			in := f.And(a, p)
			out := f.Diff(a, p)
			if in != bdd.False {
				next = append(next, in)
			}
			if out != bdd.False {
				next = append(next, out)
			}
		}
		atoms = next
	}
	an := &Analysis{G: g, Atoms: atoms, NumAtoms: len(atoms)}

	// Each predicate as a bitset (memoized by predicate).
	predSet := make(map[bdd.Ref]Bitset, len(preds))
	for _, p := range preds {
		bs := newBitset(len(atoms))
		for i, a := range atoms {
			if f.And(a, p) != bdd.False {
				bs.set(i)
			}
		}
		predSet[p] = bs
	}
	an.edgeSets = make([]Bitset, len(g.Edges))
	for i := range g.Edges {
		an.edgeSets[i] = predSet[g.Edges[i].Label]
	}
	an.out = make([][]int32, len(g.Nodes))
	for i := range g.Edges {
		an.out[g.Edges[i].From] = append(an.out[g.Edges[i].From], int32(i))
	}
	return an, nil
}

// SetOf converts a header-space BDD into an atom bitset (the set of atoms
// overlapping it).
func (a *Analysis) SetOf(hs bdd.Ref) Bitset {
	f := a.G.Enc.F
	bs := newBitset(a.NumAtoms)
	for i, atom := range a.Atoms {
		if f.And(atom, hs) != bdd.False {
			bs.set(i)
		}
	}
	return bs
}

// BDDOf converts an atom bitset back to a BDD.
func (a *Analysis) BDDOf(bs Bitset) bdd.Ref {
	f := a.G.Enc.F
	r := bdd.False
	for i, atom := range a.Atoms {
		if bs.has(i) {
			r = f.Or(r, atom)
		}
	}
	return r
}

// Forward propagates atom sets from the start nodes to a fixed point and
// returns the reachable set per node.
func (a *Analysis) Forward(start map[int]Bitset) []Bitset {
	reach := make([]Bitset, len(a.G.Nodes))
	for i := range reach {
		reach[i] = newBitset(a.NumAtoms)
	}
	var queue []int
	inQueue := make([]bool, len(a.G.Nodes))
	push := func(n int) {
		if !inQueue[n] {
			inQueue[n] = true
			queue = append(queue, n)
		}
	}
	ids := make([]int, 0, len(start))
	for n := range start {
		ids = append(ids, n)
	}
	sort.Ints(ids)
	for _, n := range ids {
		reach[n].Or(start[n])
		push(n)
	}
	tmp := newBitset(a.NumAtoms)
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		inQueue[n] = false
		for _, ei := range a.out[n] {
			e := &a.G.Edges[ei]
			if !reach[n].AndInto(a.edgeSets[ei], tmp) {
				continue
			}
			if reach[e.To].Or(tmp) {
				push(e.To)
			}
		}
	}
	return reach
}

// DestReachability returns, per source location name, the atom set that is
// accepted at dstDevice — the query benchmarked against the BDD engine in
// paper §6.2.
func (a *Analysis) DestReachability(dstDevice string) map[string]Bitset {
	sinkID, ok := a.G.Lookup(fwdgraph.SinkName(fwdgraph.SinkAccepted, dstDevice))
	if !ok {
		return nil
	}
	out := make(map[string]Bitset)
	full := newBitset(a.NumAtoms)
	for i := 0; i < a.NumAtoms; i++ {
		full.set(i)
	}
	for id := range a.G.Nodes {
		n := a.G.Nodes[id]
		if n.Kind != fwdgraph.KindSource {
			continue
		}
		r := a.Forward(map[int]Bitset{id: full})
		if r[sinkID].Count() > 0 {
			out[n.Name] = r[sinkID]
		}
	}
	return out
}
