// Package datalog implements a generic Datalog engine: semi-naïve bottom-up
// evaluation with stratified negation and arithmetic builtins. It is the
// stand-in for the LogicBlox engine that powered the original Batfish
// (paper §2), kept as the baseline for the Figure 3 data-plane-generation
// comparison.
//
// The engine deliberately reproduces the properties Lesson 1 identifies as
// production roadblocks: no control over rule/fact evaluation order, and
// retention of every derived fact — including routes that are eventually
// sub-optimal — until the fixed point completes.
package datalog

import (
	"fmt"
	"sort"
	"strings"
)

// Value is an interned constant.
type Value int32

// Term is a constant (>= 0, a Value) or a variable (< 0). Use V(i) for
// variables and the engine's Sym/Num for constants.
type Term int32

// V returns the i-th variable term (i >= 0).
func V(i int) Term { return Term(-1 - i) }

func (t Term) isVar() bool { return t < 0 }
func (t Term) varIdx() int { return int(-1 - t) }

// Atom is a predicate applied to terms.
type Atom struct {
	Pred string
	Args []Term
}

// A constructs an atom.
func A(pred string, args ...Term) Atom { return Atom{Pred: pred, Args: args} }

// Builtin is a side-condition or binding evaluated during rule joins.
// Args follow the same term conventions. Eval receives the current
// bindings (indexed by variable) and either checks or extends them.
type Builtin struct {
	Name string
	Args []Term
}

// Builtin constructors.
func Lt(a, b Term) Builtin  { return Builtin{Name: "lt", Args: []Term{a, b}} }
func Le(a, b Term) Builtin  { return Builtin{Name: "le", Args: []Term{a, b}} }
func Neq(a, b Term) Builtin { return Builtin{Name: "neq", Args: []Term{a, b}} }

// Sum binds c = a + b (a, b must be bound).
func Sum(a, b, c Term) Builtin { return Builtin{Name: "sum", Args: []Term{a, b, c}} }

// Rule derives Head from the conjunction of Body atoms, Builtins, and
// negated atoms (which must refer to predicates fully computed in earlier
// strata).
type Rule struct {
	Head     Atom
	Body     []Atom
	Builtins []Builtin
	Negated  []Atom
}

type relation struct {
	name  string
	arity int
	// tuples, deduplicated via the index.
	tuples [][]Value
	index  map[string]struct{}
	// cur is the delta read during the current semi-naive round; next
	// accumulates tuples derived during it.
	cur  map[string]bool
	next [][]Value
}

func (r *relation) key(t []Value) string {
	var b strings.Builder
	for _, v := range t {
		fmt.Fprintf(&b, "%d,", v)
	}
	return b.String()
}

func (r *relation) add(t []Value) bool {
	k := r.key(t)
	if _, ok := r.index[k]; ok {
		return false
	}
	r.index[k] = struct{}{}
	cp := append([]Value(nil), t...)
	r.tuples = append(r.tuples, cp)
	r.next = append(r.next, cp)
	return true
}

// Engine evaluates a stratified Datalog program.
//
// Program errors — predicate arity mismatches, facts with variables,
// unbound head variables, unknown builtins — do not panic: the first one
// is recorded, the offending derivation or fact is dropped, and Run (or
// Err) reports it. This keeps a malformed program from taking down a
// process that embeds the engine.
type Engine struct {
	rels    map[string]*relation
	strata  [][]Rule
	symTab  map[string]Value
	symRev  []string
	derived uint64
	err     error
}

// setErr records the first program error.
func (e *Engine) setErr(err error) {
	if e.err == nil {
		e.err = err
	}
}

// Err returns the first program error encountered so far.
func (e *Engine) Err() error { return e.err }

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	return &Engine{rels: make(map[string]*relation), symTab: make(map[string]Value)}
}

// Sym interns a string constant.
func (e *Engine) Sym(s string) Term {
	if v, ok := e.symTab[s]; ok {
		return Term(v)
	}
	v := Value(len(e.symRev))
	e.symTab[s] = v
	e.symRev = append(e.symRev, s)
	return Term(v)
}

// SymName returns the string for an interned symbol value.
func (e *Engine) SymName(v Value) string {
	if int(v) < len(e.symRev) {
		return e.symRev[v]
	}
	return fmt.Sprintf("#%d", v)
}

// Num encodes a small non-negative integer as a constant term. Numbers and
// symbols share the constant space; programs keep them in distinct
// argument positions (as the original Batfish predicates did).
//
// Panic policy: a negative n is a caller invariant violation (the free
// function has no engine to report through), so it panics rather than
// silently encoding a symbol-range value.
func Num(n int) Term {
	if n < 0 {
		panic("datalog: negative numeric constant")
	}
	return Term(numBase + Value(n))
}

// NumVal decodes a numeric constant.
func NumVal(v Value) int { return int(v - numBase) }

// IsNum reports whether a value is in the numeric range.
func IsNum(v Value) bool { return v >= numBase }

const numBase Value = 1 << 24

func (e *Engine) rel(name string, arity int) *relation {
	r, ok := e.rels[name]
	if !ok {
		r = &relation{name: name, arity: arity, index: make(map[string]struct{})}
		e.rels[name] = r
	}
	if r.arity != arity {
		e.setErr(fmt.Errorf("datalog: predicate %s used with arity %d and %d", name, r.arity, arity))
		// Hand back a detached relation of the requested arity so the
		// caller's tuples index safely; it is never stored or queried.
		return &relation{name: name, arity: arity, index: make(map[string]struct{})}
	}
	return r
}

// Fact asserts a ground fact. A fact containing a variable is a program
// error: it is dropped and reported by Run/Err.
func (e *Engine) Fact(pred string, args ...Term) {
	vals := make([]Value, len(args))
	for i, a := range args {
		if a.isVar() {
			e.setErr(fmt.Errorf("datalog: fact %s with variable argument", pred))
			return
		}
		vals[i] = Value(a)
	}
	e.rel(pred, len(args)).add(vals)
}

// Stratum appends an evaluation stratum; rules within it may be mutually
// recursive. Negated atoms must refer to predicates whose strata precede
// this one.
func (e *Engine) Stratum(rules ...Rule) {
	e.strata = append(e.strata, rules)
}

// Derivations returns the total number of successful fact derivations,
// a machine-independent work measure.
func (e *Engine) Derivations() uint64 { return e.derived }

// FactCount returns the total number of stored facts across predicates —
// including all the intermediate facts a declarative engine must retain
// (the §4.1.3 memory pathology).
func (e *Engine) FactCount() int {
	n := 0
	for _, r := range e.rels {
		n += len(r.tuples)
	}
	return n
}

// Run evaluates all strata to fixed point. It returns the first program
// error encountered (also before this call, e.g. a malformed Fact); the
// engine still computes everything derivable from the well-formed part of
// the program.
func (e *Engine) Run() error {
	for _, rules := range e.strata {
		e.runStratum(rules)
	}
	return e.err
}

func (e *Engine) runStratum(rules []Rule) {
	// Make sure head/body relations exist.
	for _, r := range rules {
		e.rel(r.Head.Pred, len(r.Head.Args))
		for _, b := range r.Body {
			e.rel(b.Pred, len(b.Args))
		}
		for _, n := range r.Negated {
			e.rel(n.Pred, len(n.Args))
		}
	}
	// Initial delta: every existing tuple (facts and results of earlier
	// strata are all "new" to this stratum's rules).
	for _, r := range e.rels {
		r.cur = make(map[string]bool, len(r.tuples))
		for _, t := range r.tuples {
			r.cur[r.key(t)] = true
		}
		r.next = nil
	}
	for {
		for _, rule := range rules {
			e.evalRule(rule)
		}
		// Rotate: tuples derived this round drive the next one.
		any := false
		for _, r := range e.rels {
			r.cur = make(map[string]bool, len(r.next))
			for _, t := range r.next {
				r.cur[r.key(t)] = true
				any = true
			}
			r.next = nil
		}
		if !any {
			return
		}
	}
}

// evalRule evaluates one rule semi-naively: a derivation fires only if at
// least one body atom matched a tuple from the current delta (on the first
// round, the delta is everything, making it the naive round).
func (e *Engine) evalRule(rule Rule) {
	head := e.rels[rule.Head.Pred]
	maxVar := ruleMaxVar(rule)
	binding := make([]Value, maxVar+1)
	bound := make([]bool, maxVar+1)

	// Snapshot full relations; tuples added during this rule's own
	// evaluation join in the next round (no control over evaluation
	// order — the Lesson 1 property).
	fulls := make(map[string][][]Value, len(rule.Body))
	for _, b := range rule.Body {
		fulls[b.Pred] = e.rels[b.Pred].tuples
	}

	var derive func(pos int, usedDelta bool)
	derive = func(pos int, usedDelta bool) {
		if pos == len(rule.Body) {
			if !usedDelta && len(rule.Body) > 0 {
				return
			}
			var biUndo []int
			defer func() {
				for _, vi := range biUndo {
					bound[vi] = false
				}
			}()
			for _, bi := range rule.Builtins {
				ok, boundVar := e.evalBuiltin(bi, binding, bound)
				if boundVar >= 0 {
					biUndo = append(biUndo, boundVar)
				}
				if !ok {
					return
				}
			}
			for _, n := range rule.Negated {
				if e.matchExists(n, binding, bound) {
					return
				}
			}
			out := make([]Value, len(rule.Head.Args))
			for i, a := range rule.Head.Args {
				if a.isVar() {
					if !bound[a.varIdx()] {
						e.setErr(fmt.Errorf("datalog: unbound head variable in %s", rule.Head.Pred))
						return
					}
					out[i] = binding[a.varIdx()]
				} else {
					out[i] = Value(a)
				}
			}
			if head.add(out) {
				e.derived++
			}
			return
		}
		atom := rule.Body[pos]
		r := e.rels[atom.Pred]
		for _, t := range fulls[atom.Pred] {
			viaDelta := r.cur[r.key(t)]
			var undo []int
			ok := true
			for i, a := range atom.Args {
				if a.isVar() {
					vi := a.varIdx()
					if bound[vi] {
						if binding[vi] != t[i] {
							ok = false
							break
						}
					} else {
						bound[vi] = true
						binding[vi] = t[i]
						undo = append(undo, vi)
					}
				} else if Value(a) != t[i] {
					ok = false
					break
				}
			}
			if ok {
				derive(pos+1, usedDelta || viaDelta)
			}
			for _, vi := range undo {
				bound[vi] = false
			}
		}
	}
	derive(0, false)
}

func ruleMaxVar(r Rule) int {
	max := -1
	scan := func(args []Term) {
		for _, a := range args {
			if a.isVar() && a.varIdx() > max {
				max = a.varIdx()
			}
		}
	}
	scan(r.Head.Args)
	for _, b := range r.Body {
		scan(b.Args)
	}
	for _, bi := range r.Builtins {
		scan(bi.Args)
	}
	for _, n := range r.Negated {
		scan(n.Args)
	}
	return max
}

// evalBuiltin evaluates a builtin against the bindings. It returns whether
// the builtin holds and, if it bound a previously free variable, that
// variable's index (else -1) so the caller can undo the binding.
func (e *Engine) evalBuiltin(bi Builtin, binding []Value, bound []bool) (bool, int) {
	get := func(t Term) (Value, bool) {
		if t.isVar() {
			if !bound[t.varIdx()] {
				return 0, false
			}
			return binding[t.varIdx()], true
		}
		return Value(t), true
	}
	switch bi.Name {
	case "lt":
		a, ok1 := get(bi.Args[0])
		b, ok2 := get(bi.Args[1])
		return ok1 && ok2 && a < b, -1
	case "le":
		a, ok1 := get(bi.Args[0])
		b, ok2 := get(bi.Args[1])
		return ok1 && ok2 && a <= b, -1
	case "neq":
		a, ok1 := get(bi.Args[0])
		b, ok2 := get(bi.Args[1])
		return ok1 && ok2 && a != b, -1
	case "sum":
		a, ok1 := get(bi.Args[0])
		b, ok2 := get(bi.Args[1])
		if !ok1 || !ok2 || !IsNum(a) || !IsNum(b) {
			return false, -1
		}
		c := Value(NumVal(a)+NumVal(b)) + numBase
		t := bi.Args[2]
		if !t.isVar() {
			return Value(t) == c, -1
		}
		vi := t.varIdx()
		if bound[vi] {
			return binding[vi] == c, -1
		}
		binding[vi] = c
		bound[vi] = true
		return true, vi
	}
	e.setErr(fmt.Errorf("datalog: unknown builtin %s", bi.Name))
	return false, -1
}

// matchExists reports whether any tuple of the atom's relation matches the
// current bindings.
func (e *Engine) matchExists(atom Atom, binding []Value, bound []bool) bool {
	r := e.rels[atom.Pred]
	for _, t := range r.tuples {
		ok := true
		for i, a := range atom.Args {
			if a.isVar() {
				vi := a.varIdx()
				if bound[vi] && binding[vi] != t[i] {
					ok = false
					break
				}
			} else if Value(a) != t[i] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// Query returns tuples of pred matching the pattern (variables match
// anything), sorted for determinism.
func (e *Engine) Query(pred string, pattern ...Term) [][]Value {
	r, ok := e.rels[pred]
	if !ok {
		return nil
	}
	var out [][]Value
	for _, t := range r.tuples {
		match := true
		for i, p := range pattern {
			if !p.isVar() && Value(p) != t[i] {
				match = false
				break
			}
		}
		if match {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}
