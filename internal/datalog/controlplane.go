package datalog

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/ip4"
	"repro/internal/routing"
	"repro/internal/topo"
)

// ControlPlane encodes a network's control plane as Datalog facts and
// rules, reproducing the original Batfish's Stage 2 (paper §2): the
// configuration becomes facts like OspfCost(node, iface, cost), and
// recursive rules derive routes until fixed point. It models the IGP
// portion (connected, static, OSPF shortest paths) plus forwarding facts,
// which is the workload the Figure 3 baseline measures.
//
// MaxCost caps derived path costs; like the original engine, every
// intermediate (sub-optimal) path fact up to the cap is derived and
// retained — the performance and memory pathology of Lesson 1.
type ControlPlane struct {
	E       *Engine
	MaxCost int
	net     *config.Network
}

// NewControlPlane builds the program for a network.
func NewControlPlane(net *config.Network, maxCost int) *ControlPlane {
	cp := &ControlPlane{E: NewEngine(), MaxCost: maxCost, net: net}
	cp.loadFacts()
	cp.addRules()
	return cp
}

func (cp *ControlPlane) prefixSym(p ip4.Prefix) Term {
	return cp.E.Sym(p.String())
}

// loadFacts converts configuration and topology into Datalog facts
// (Stage 1's output in the original architecture).
func (cp *ControlPlane) loadFacts() {
	e := cp.E
	t := topo.Infer(cp.net)
	for _, name := range cp.net.DeviceNames() {
		d := cp.net.Devices[name]
		node := e.Sym(name)
		for _, in := range d.InterfaceNames() {
			i := d.Interfaces[in]
			if !i.Active {
				continue
			}
			for _, p := range i.Addresses {
				if p.Len < 32 {
					e.Fact("ConnectedRoute", node, cp.prefixSym(p.Canonical()))
				}
			}
			if i.OSPF != nil {
				cost := i.OSPF.Cost
				if cost == 0 {
					cost = 1
				}
				e.Fact("OspfCost", node, e.Sym(in), Num(int(cost)))
				for _, p := range i.Addresses {
					if p.Len < 32 {
						e.Fact("OspfNetwork", node, cp.prefixSym(p.Canonical()), Num(int(cost)))
					}
				}
			}
		}
		for _, sr := range d.VRFs[config.DefaultVRF].StaticRoutes {
			if sr.Drop {
				e.Fact("StaticDrop", node, cp.prefixSym(sr.Prefix.Canonical()))
			} else {
				e.Fact("StaticRoute", node, cp.prefixSym(sr.Prefix.Canonical()))
			}
		}
	}
	// OSPF adjacencies with sender-side cost.
	for _, ed := range t.Edges {
		du := cp.net.Devices[ed.Node1]
		iu := du.Interfaces[ed.Iface1]
		dv := cp.net.Devices[ed.Node2]
		iv := dv.Interfaces[ed.Iface2]
		if iu == nil || iv == nil || iu.OSPF == nil || iv.OSPF == nil {
			continue
		}
		if iu.OSPF.Passive || iv.OSPF.Passive || iu.OSPF.Area != iv.OSPF.Area {
			continue
		}
		cost := iu.OSPF.Cost
		if cost == 0 {
			cost = 1
		}
		e.Fact("OspfEdge", e.Sym(ed.Node1), e.Sym(ed.Node2), Num(int(cost)))
	}
}

// addRules installs the recursive route-derivation rules.
func (cp *ControlPlane) addRules() {
	e := cp.E
	n, m, p := V(0), V(1), V(2)
	c, c1, c2 := V(3), V(4), V(5)

	// Stratum 1: all OSPF path costs up to the cap. The declarative engine
	// cannot be told "IGP first, then better paths": it derives every cost.
	e.Stratum(
		// Base: own networks.
		Rule{
			Head: A("OspfPath", n, p, c),
			Body: []Atom{A("OspfNetwork", n, p, c)},
		},
		// Recursive: a neighbor's path extends to us.
		Rule{
			Head:     A("OspfPath", n, p, c),
			Body:     []Atom{A("OspfEdge", n, m, c1), A("OspfPath", m, p, c2)},
			Builtins: []Builtin{Sum(c1, c2, c), Le(c, Num(cp.MaxCost))},
		},
	)
	// Stratum 2: mark non-optimal path facts.
	e.Stratum(
		Rule{
			Head:     A("HasBetter", n, p, c),
			Body:     []Atom{A("OspfPath", n, p, c), A("OspfPath", n, p, c2)},
			Builtins: []Builtin{Lt(c2, c)},
		},
	)
	// Stratum 3: best OSPF routes = paths with no better alternative.
	e.Stratum(
		Rule{
			Head:    A("BestOspf", n, p, c),
			Body:    []Atom{A("OspfPath", n, p, c)},
			Negated: []Atom{A("HasBetter", n, p, c)},
		},
	)
	// Stratum 4: the main RIB by administrative preference:
	// connected > static > ospf.
	e.Stratum(
		Rule{Head: A("Route", n, p, Num(0)), Body: []Atom{A("ConnectedRoute", n, p)}},
		Rule{Head: A("Route", n, p, Num(1)), Body: []Atom{A("StaticRoute", n, p)}},
		Rule{Head: A("Route", n, p, Num(1)), Body: []Atom{A("StaticDrop", n, p)}},
	)
	e.Stratum(
		Rule{
			Head:    A("Route", n, p, Num(110)),
			Body:    []Atom{A("BestOspf", n, p, c)},
			Negated: []Atom{A("ConnectedRoute", n, p)},
		},
	)
	// Stratum 5: forwarding facts — Fib(node, prefix, nextHopNode).
	e.Stratum(
		Rule{
			Head:     A("FibHop", n, p, m),
			Body:     []Atom{A("BestOspf", n, p, c), A("OspfEdge", n, m, c1), A("OspfPath", m, p, c2)},
			Builtins: []Builtin{Sum(c1, c2, c)},
			Negated:  []Atom{A("ConnectedRoute", n, p)},
		},
	)
}

// Run evaluates the program, reporting the first program error (if any).
func (cp *ControlPlane) Run() error { return cp.E.Run() }

// BestOspfRoutes extracts the computed best OSPF routes per node.
func (cp *ControlPlane) BestOspfRoutes(node string) map[ip4.Prefix]uint32 {
	e := cp.E
	out := make(map[ip4.Prefix]uint32)
	for _, t := range e.Query("BestOspf", e.Sym(node), V(0), V(1)) {
		pre, err := ip4.ParsePrefix(e.SymName(t[1]))
		if err != nil {
			continue
		}
		out[pre] = uint32(NumVal(t[2]))
	}
	return out
}

// FibHops extracts forwarding next-hop nodes for a node and prefix.
func (cp *ControlPlane) FibHops(node string, prefix ip4.Prefix) []string {
	e := cp.E
	var out []string
	for _, t := range e.Query("FibHop", e.Sym(node), cp.prefixSym(prefix), V(0)) {
		out = append(out, e.SymName(t[2]))
	}
	return out
}

// CompareWithImperative checks that the Datalog-derived best OSPF costs
// equal the imperative engine's, returning a list of discrepancies. Used
// by the differential test between the original and current architectures.
func (cp *ControlPlane) CompareWithImperative(get func(node string) []routing.Route) []string {
	var diffs []string
	for _, name := range cp.net.DeviceNames() {
		want := make(map[ip4.Prefix]uint32)
		for _, rt := range get(name) {
			if rt.Protocol == routing.OSPF {
				want[rt.Prefix] = rt.Metric
			}
		}
		got := cp.BestOspfRoutes(name)
		for pre, c := range want {
			if gc, ok := got[pre]; !ok || gc != c {
				diffs = append(diffs, fmt.Sprintf("%s %s: imperative %d, datalog %v", name, pre, c, got[pre]))
			}
		}
		for pre, c := range got {
			if _, ok := want[pre]; !ok {
				diffs = append(diffs, fmt.Sprintf("%s %s: datalog-only cost %d", name, pre, c))
			}
		}
	}
	return diffs
}
