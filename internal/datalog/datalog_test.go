package datalog

import (
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/dataplane"
	"repro/internal/ip4"
	"repro/internal/routing"
	"repro/internal/testnet"
)

func TestTransitiveClosure(t *testing.T) {
	e := NewEngine()
	a, b, c, d := e.Sym("a"), e.Sym("b"), e.Sym("c"), e.Sym("d")
	e.Fact("edge", a, b)
	e.Fact("edge", b, c)
	e.Fact("edge", c, d)
	x, y, z := V(0), V(1), V(2)
	e.Stratum(
		Rule{Head: A("path", x, y), Body: []Atom{A("edge", x, y)}},
		Rule{Head: A("path", x, z), Body: []Atom{A("edge", x, y), A("path", y, z)}},
	)
	e.Run()
	if got := len(e.Query("path", V(0), V(1))); got != 6 {
		t.Errorf("path count = %d, want 6", got)
	}
	if len(e.Query("path", a, d)) != 1 {
		t.Error("a->d missing")
	}
	if len(e.Query("path", d, a)) != 0 {
		t.Error("d->a should not exist")
	}
}

func TestCycleTerminates(t *testing.T) {
	e := NewEngine()
	a, b := e.Sym("a"), e.Sym("b")
	e.Fact("edge", a, b)
	e.Fact("edge", b, a)
	x, y, z := V(0), V(1), V(2)
	e.Stratum(
		Rule{Head: A("path", x, y), Body: []Atom{A("edge", x, y)}},
		Rule{Head: A("path", x, z), Body: []Atom{A("edge", x, y), A("path", y, z)}},
	)
	e.Run()
	if got := len(e.Query("path", V(0), V(1))); got != 4 {
		t.Errorf("cyclic closure = %d, want 4", got)
	}
}

func TestBuiltins(t *testing.T) {
	e := NewEngine()
	e.Fact("n", Num(3))
	e.Fact("n", Num(5))
	x, y, s := V(0), V(1), V(2)
	e.Stratum(
		Rule{Head: A("sum", x, y, s), Body: []Atom{A("n", x), A("n", y)},
			Builtins: []Builtin{Sum(x, y, s), Le(s, Num(8)), Neq(x, y)}},
	)
	e.Run()
	got := e.Query("sum", V(0), V(1), V(2))
	// 3+5=8 and 5+3=8 allowed; 3+3 and 5+5 excluded by Neq; 5+5 also by Le.
	if len(got) != 2 {
		t.Fatalf("sum tuples = %v", got)
	}
	for _, tu := range got {
		if NumVal(tu[2]) != 8 {
			t.Errorf("bad sum %v", tu)
		}
	}
}

func TestStratifiedNegation(t *testing.T) {
	e := NewEngine()
	a, b, c := e.Sym("a"), e.Sym("b"), e.Sym("c")
	e.Fact("node", a)
	e.Fact("node", b)
	e.Fact("node", c)
	e.Fact("bad", b)
	x := V(0)
	e.Stratum(
		Rule{Head: A("good", x), Body: []Atom{A("node", x)}, Negated: []Atom{A("bad", x)}},
	)
	e.Run()
	got := e.Query("good", V(0))
	if len(got) != 2 {
		t.Fatalf("good = %v", got)
	}
	for _, tu := range got {
		if tu[0] == Value(b) {
			t.Error("b should be excluded")
		}
	}
}

func TestMinViaNegation(t *testing.T) {
	// The shortest-path idiom: derive all costs, then negate away
	// non-minimal ones.
	e := NewEngine()
	n := e.Sym("n")
	for _, c := range []int{5, 3, 9} {
		e.Fact("cost", n, Num(c))
	}
	x, c, c2 := V(0), V(1), V(2)
	e.Stratum(
		Rule{Head: A("hasBetter", x, c), Body: []Atom{A("cost", x, c), A("cost", x, c2)},
			Builtins: []Builtin{Lt(c2, c)}},
	)
	e.Stratum(
		Rule{Head: A("best", x, c), Body: []Atom{A("cost", x, c)}, Negated: []Atom{A("hasBetter", x, c)}},
	)
	e.Run()
	got := e.Query("best", V(0), V(1))
	if len(got) != 1 || NumVal(got[0][1]) != 3 {
		t.Errorf("best = %v", got)
	}
}

func TestFactDeduplication(t *testing.T) {
	e := NewEngine()
	a := e.Sym("a")
	e.Fact("p", a)
	e.Fact("p", a)
	if len(e.Query("p", V(0))) != 1 {
		t.Error("duplicate fact stored")
	}
}

func TestSymInterning(t *testing.T) {
	e := NewEngine()
	if e.Sym("x") != e.Sym("x") {
		t.Error("symbols not interned")
	}
	if e.SymName(Value(e.Sym("x"))) != "x" {
		t.Error("SymName wrong")
	}
	if NumVal(Value(Num(42))) != 42 {
		t.Error("Num round trip wrong")
	}
}

// TestControlPlaneMatchesImperative is the architectural differential test:
// the Datalog model of the control plane (original Batfish) must compute
// the same best OSPF routes as the imperative engine (current Batfish).
func TestControlPlaneMatchesImperative(t *testing.T) {
	for name, net := range map[string]*config.Network{
		"line":    testnet.Line3(),
		"diamond": testnet.Diamond(),
	} {
		t.Run(name, func(t *testing.T) {
			dp := dataplane.Run(net, dataplane.Options{})
			if !dp.Converged {
				t.Fatalf("imperative engine did not converge")
			}
			cp := NewControlPlane(net, 64)
			cp.Run()
			diffs := cp.CompareWithImperative(func(node string) []routing.Route {
				return dp.Nodes[node].DefaultVRF().OSPFRIB.AllBest()
			})
			for _, d := range diffs {
				t.Error(d)
			}
		})
	}
}

func TestControlPlaneFibHops(t *testing.T) {
	net := testnet.Diamond()
	cp := NewControlPlane(net, 64)
	cp.Run()
	hops := cp.FibHops("r1", ip4.MustParsePrefix("192.168.4.0/24"))
	if len(hops) != 2 {
		t.Fatalf("ECMP hops = %v, want both ra and rb", hops)
	}
}

// TestIntermediateFactRetention demonstrates the Lesson 1 pathology the
// engine intentionally reproduces: the Datalog evaluation retains far more
// facts (all sub-optimal path costs) than there are final best routes.
func TestIntermediateFactRetention(t *testing.T) {
	net := testnet.Diamond()
	cp := NewControlPlane(net, 64)
	cp.Run()
	paths := len(cp.E.Query("OspfPath", V(0), V(1), V(2)))
	best := len(cp.E.Query("BestOspf", V(0), V(1), V(2)))
	if paths <= best {
		t.Errorf("expected intermediate facts > best facts: %d vs %d", paths, best)
	}
}

func TestUnboundHeadVarReturnsError(t *testing.T) {
	e := NewEngine()
	e.Fact("p", e.Sym("a"))
	e.Stratum(Rule{Head: A("q", V(0), V(1)), Body: []Atom{A("p", V(0))}})
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "unbound head variable") {
		t.Errorf("expected unbound-head-variable error, got %v", err)
	}
	// The malformed derivation is dropped, not derived with garbage.
	if got := len(e.Query("q", V(0), V(1))); got != 0 {
		t.Errorf("malformed rule derived %d tuples", got)
	}
}

func TestArityMismatchReturnsError(t *testing.T) {
	e := NewEngine()
	e.Fact("p", e.Sym("a"))
	e.Fact("p", e.Sym("a"), e.Sym("b"))
	if err := e.Run(); err == nil || !strings.Contains(err.Error(), "arity") {
		t.Errorf("expected arity error, got %v", err)
	}
	// The original relation keeps its arity and content.
	if got := len(e.Query("p", V(0))); got != 1 {
		t.Errorf("original relation disturbed: %d tuples", got)
	}
}

func TestFactWithVariableReturnsError(t *testing.T) {
	e := NewEngine()
	e.Fact("p", V(0))
	if err := e.Run(); err == nil || !strings.Contains(err.Error(), "variable") {
		t.Errorf("expected variable-fact error, got %v", err)
	}
	if got := len(e.Query("p", V(0))); got != 0 {
		t.Errorf("variable fact stored: %d tuples", got)
	}
}

func TestUnknownBuiltinReturnsError(t *testing.T) {
	e := NewEngine()
	e.Fact("p", Num(1))
	e.Stratum(Rule{Head: A("q", V(0)), Body: []Atom{A("p", V(0))},
		Builtins: []Builtin{{Name: "frobnicate", Args: []Term{V(0)}}}})
	if err := e.Run(); err == nil || !strings.Contains(err.Error(), "unknown builtin") {
		t.Errorf("expected unknown-builtin error, got %v", err)
	}
}
