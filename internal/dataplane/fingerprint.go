package dataplane

const (
	fnvFPOffset uint64 = 14695981039346656037
	fnvFPPrime  uint64 = 1099511628211
)

type fpHash struct{ h uint64 }

func (f *fpHash) mix(x uint64) {
	f.h ^= x
	f.h *= fnvFPPrime
}

func (f *fpHash) mixStr(s string) {
	for i := 0; i < len(s); i++ {
		f.mix(uint64(s[i]))
	}
	f.mix(0xff) // terminator so "ab","c" != "a","bc"
}

// NodeFingerprint returns a deterministic hash of one device's computed
// control- and forwarding-plane state: every VRF's per-protocol RIB state
// plus the resolved FIB entries, in sorted VRF order. Unknown devices hash
// to a fixed value, so two data planes agree on a device exactly when its
// state is identical. The incremental CompareWith in internal/core diffs
// these per-node hashes to find devices whose forwarding changed.
func (r *Result) NodeFingerprint(name string) uint64 {
	f := fpHash{h: fnvFPOffset}
	ns := r.Nodes[name]
	if ns == nil {
		return f.h
	}
	f.mixStr(name)
	for _, vn := range sortedVRFNames(ns) {
		vs := ns.VRFs[vn]
		f.mixStr(vn)
		f.mix(vs.ConnRIB.StateHash())
		f.mix(vs.StatRIB.StateHash())
		f.mix(vs.OSPFRIB.StateHash())
		f.mix(vs.BGPRIB.StateHash())
		f.mix(vs.Main.StateHash())
		if vs.FIB == nil {
			continue
		}
		for _, ent := range vs.FIB.Entries() {
			f.mix(uint64(ent.Prefix.Addr)<<8 | uint64(ent.Prefix.Len))
			for _, nh := range ent.NextHops {
				f.mixStr(nh.Iface)
				f.mixStr(nh.Node)
				f.mix(uint64(nh.IP))
				if nh.Drop {
					f.mix(1)
				}
			}
		}
	}
	return f.h
}

// Fingerprint returns a deterministic hash of the full computed control-
// and forwarding-plane state: the per-node fingerprints folded in sorted
// device order. Two runs over the same network must produce equal
// fingerprints regardless of Options.Parallelism — logical clocks are
// scheduling artifacts and are excluded (RIB state hashes cover route
// identity only). This is what TestParallelDeterminism compares across
// worker counts.
func (r *Result) Fingerprint() uint64 {
	f := fpHash{h: fnvFPOffset}
	for _, name := range r.Network.DeviceNames() {
		if r.Nodes[name] == nil {
			continue
		}
		f.mix(r.NodeFingerprint(name))
	}
	return f.h
}
