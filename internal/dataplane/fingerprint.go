package dataplane

// Fingerprint returns a deterministic hash of the computed control- and
// forwarding-plane state: every VRF's per-protocol RIB state plus the
// resolved FIB entries, folded in sorted device/VRF order. Two runs over
// the same network must produce equal fingerprints regardless of
// Options.Parallelism — logical clocks are scheduling artifacts and are
// excluded (RIB state hashes cover route identity only). This is what
// TestParallelDeterminism compares across worker counts.
func (r *Result) Fingerprint() uint64 {
	var h uint64 = 14695981039346656037
	mix := func(x uint64) {
		h ^= x
		h *= 1099511628211
	}
	mixStr := func(s string) {
		for i := 0; i < len(s); i++ {
			mix(uint64(s[i]))
		}
		mix(0xff) // terminator so "ab","c" != "a","bc"
	}
	for _, name := range r.Network.DeviceNames() {
		ns := r.Nodes[name]
		if ns == nil {
			continue
		}
		mixStr(name)
		for _, vn := range sortedVRFNames(ns) {
			vs := ns.VRFs[vn]
			mixStr(vn)
			mix(vs.ConnRIB.StateHash())
			mix(vs.StatRIB.StateHash())
			mix(vs.OSPFRIB.StateHash())
			mix(vs.BGPRIB.StateHash())
			mix(vs.Main.StateHash())
			if vs.FIB == nil {
				continue
			}
			for _, ent := range vs.FIB.Entries() {
				mix(uint64(ent.Prefix.Addr)<<8 | uint64(ent.Prefix.Len))
				for _, nh := range ent.NextHops {
					mixStr(nh.Iface)
					mixStr(nh.Node)
					mix(uint64(nh.IP))
					if nh.Drop {
						mix(1)
					}
				}
			}
		}
	}
	return h
}
