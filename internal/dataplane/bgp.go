package dataplane

import (
	"sort"

	"repro/internal/config"
	"repro/internal/ip4"
	"repro/internal/policy"
	"repro/internal/routing"
)

const (
	defaultLocalPref  = 100
	localOriginWeight = 32768 // Cisco weight for locally originated routes
	unreachableIGP    = 1 << 30
)

var zeroAttrs = routing.BGPAttrs{}

func attrsOf(r routing.Route) *routing.BGPAttrs {
	if r.Attrs != nil {
		return r.Attrs
	}
	return &zeroAttrs
}

// bgpCmp builds the BGP decision process comparator for one VRF
// (paper §4.1.2: logical clocks "tie break routing advertisements based on
// arrival time, like routers do").
func (e *Engine) bgpCmp(vs *VRFState) routing.Comparator {
	return func(a, b routing.Route) int {
		aa, ab := attrsOf(a), attrsOf(b)
		// 1. Highest weight.
		if aa.Weight != ab.Weight {
			return int(int64(aa.Weight) - int64(ab.Weight))
		}
		// 2. Highest local preference.
		if aa.LocalPref != ab.LocalPref {
			return int(int64(aa.LocalPref) - int64(ab.LocalPref))
		}
		// 3. Locally originated.
		aLocal, bLocal := a.NextHopNode == "", b.NextHopNode == ""
		if aLocal != bLocal {
			if aLocal {
				return 1
			}
			return -1
		}
		// 4. Shortest AS path.
		if la, lb := aa.ASPath.Len(), ab.ASPath.Len(); la != lb {
			return lb - la
		}
		// 5. Lowest origin.
		if aa.Origin != ab.Origin {
			return int(ab.Origin) - int(aa.Origin)
		}
		// 6. Lowest MED (deterministic-MED: always compared, the
		// order-independent variant).
		if aa.MED != ab.MED {
			return int(int64(ab.MED) - int64(aa.MED))
		}
		// 7. eBGP over iBGP.
		if a.Protocol != b.Protocol {
			if a.Protocol == routing.EBGP {
				return 1
			}
			return -1
		}
		// 8. Lowest IGP metric to next hop.
		if aa.IGPMetric != ab.IGPMetric {
			return int(int64(ab.IGPMetric) - int64(aa.IGPMetric))
		}
		// 9. Multipath: everything above equal => ECMP when enabled.
		if a.Protocol == routing.EBGP && vs.multipathEBGP {
			return 0
		}
		if a.Protocol == routing.IBGP && vs.multipathIBGP {
			return 0
		}
		// 10. Oldest path (logical clock) for eBGP.
		if !e.opts.DisableClocks && a.Protocol == routing.EBGP && a.Clock != b.Clock {
			if a.Clock < b.Clock {
				return 1
			}
			return -1
		}
		// 11. Lowest originator/neighbor router id, then neighbor IP.
		if aa.OriginatorID != ab.OriginatorID {
			if aa.OriginatorID < ab.OriginatorID {
				return 1
			}
			return -1
		}
		if aa.ReceivedFrom != ab.ReceivedFrom {
			if aa.ReceivedFrom < ab.ReceivedFrom {
				return 1
			}
			return -1
		}
		return 0
	}
}

// sourceIPFor picks the local session IP for a configured neighbor:
// the update-source interface's address if set, else the address of the
// interface whose subnet contains the peer.
func (e *Engine) sourceIPFor(node string, d *config.Device, vrfName string, n *config.BGPNeighbor) ip4.Addr {
	if n.UpdateSource != "" {
		if i, ok := d.Interfaces[n.UpdateSource]; ok && i.Active {
			if p, ok := i.Primary(); ok {
				return p.Addr
			}
		}
		return 0
	}
	if iface, ok := e.connIface(node, vrfName, n.PeerIP); ok {
		if p, ok := d.Interfaces[iface].Primary(); ok {
			return p.Addr
		}
	}
	return 0
}

// establishSessions recomputes all BGP sessions from configuration and the
// current data plane. Both compatibility (mirrored neighbor statements,
// matching AS numbers — the BGP session compatibility analysis of Lesson 5)
// and viability (TCP reachability through ACLs) gate the Up state.
func (e *Engine) establishSessions() {
	e.res.Sessions = nil
	e.forEachVRF(func(node string, d *config.Device, cv *config.VRF, vs *VRFState) {
		vs.Sessions = nil
		if cv.BGP == nil {
			return
		}
		vs.multipathEBGP = cv.BGP.MultipathEBGP
		vs.multipathIBGP = cv.BGP.MultipathIBGP
	})
	// Session construction is per-device independent: it reads only
	// immutable config, the IP-ownership index, and the already-built FIBs
	// (for TCP viability walks), and writes only the local VRF's session
	// list — so devices fan out over the worker pool.
	e.runPhase("sessions", e.names, func(node string) {
		d := e.net.Devices[node]
		ns := e.nodes[node]
		for _, vn := range sortedVRFNames(ns) {
			cv := d.VRFs[vn]
			vs := ns.VRFs[vn]
			if cv == nil || cv.BGP == nil {
				continue
			}
			for _, n := range cv.BGP.Neighbors {
				s := &Session{
					LocalNode: node, LocalVRF: cv.Name, LocalAS: cv.BGP.ASN,
					PeerIP: n.PeerIP, PeerAS: n.RemoteAS, Neighbor: n,
				}
				s.LocalIP = e.sourceIPFor(node, d, cv.Name, n)
				s.EBGP = n.RemoteAS != cv.BGP.ASN
				if s.LocalIP == 0 {
					s.DownReason = "no local source IP"
					vs.Sessions = append(vs.Sessions, s)
					continue
				}
				// Find the compatible remote end.
				peerNode, peerVRF, why := e.findPeer(s)
				if peerNode == "" {
					s.DownReason = why
					vs.Sessions = append(vs.Sessions, s)
					continue
				}
				s.PeerNode, s.PeerVRF = peerNode, peerVRF
				// Scenario hold-down dominates viability: a session the
				// failure overlay removes stays down no matter what the
				// data plane says.
				if e.sessDown[s.Key()] {
					s.DownReason = ScenarioDownReason
					vs.Sessions = append(vs.Sessions, s)
					continue
				}
				// Single-hop eBGP requires the peer on a connected subnet.
				if s.EBGP && !n.EBGPMultihop {
					if _, ok := e.connIface(node, cv.Name, n.PeerIP); !ok {
						s.DownReason = "eBGP peer not connected (no multihop)"
						vs.Sessions = append(vs.Sessions, s)
						continue
					}
				}
				if ok, why := e.sessionViable(s); !ok {
					s.DownReason = why
					vs.Sessions = append(vs.Sessions, s)
					continue
				}
				s.Up = true
				vs.Sessions = append(vs.Sessions, s)
			}
		}
	})
	// Collect the global session list (each direction once).
	e.forEachVRF(func(node string, d *config.Device, cv *config.VRF, vs *VRFState) {
		e.res.Sessions = append(e.res.Sessions, vs.Sessions...)
	})
}

// findPeer locates a device owning the peer IP whose BGP config mirrors
// this session. Returns a reason when incompatible.
func (e *Engine) findPeer(s *Session) (node, vrf, why string) {
	refs := e.ownerOf(s.PeerIP)
	if len(refs) == 0 {
		return "", "", "peer IP not owned by any device"
	}
	why = "peer has no mirrored neighbor statement"
	for _, ref := range refs {
		rd := e.net.Devices[ref.node]
		rv := rd.VRFs[ref.vrf]
		if rv == nil || rv.BGP == nil {
			why = "peer device has no BGP process"
			continue
		}
		if rv.BGP.ASN != s.PeerAS {
			why = "remote-as mismatch"
			continue
		}
		for _, rn := range rv.BGP.Neighbors {
			if rn.PeerIP != s.LocalIP {
				continue
			}
			if rn.RemoteAS != s.LocalAS {
				why = "peer's remote-as does not match local AS"
				continue
			}
			return ref.node, ref.vrf, ""
		}
	}
	return "", "", why
}

// recheckSessions re-evaluates viability of every session against the
// final data plane; returns true if any session's state would flip.
func (e *Engine) recheckSessions() bool {
	changed := false
	for _, s := range e.res.Sessions {
		if s.PeerNode == "" {
			continue // incompatible sessions never flip from viability
		}
		if s.DownReason == ScenarioDownReason {
			// Scenario-suppressed sessions are viable but deliberately
			// down; re-checking viability would flip them every round and
			// burn the outer loop without converging.
			continue
		}
		viable := true
		if s.EBGP && !s.Neighbor.EBGPMultihop {
			if _, ok := e.connIface(s.LocalNode, s.LocalVRF, s.PeerIP); !ok {
				viable = false
			}
		}
		if viable {
			viable, _ = e.sessionViable(s)
		}
		if viable != s.Up {
			changed = true
		}
	}
	return changed
}

// seedBGPOriginations installs locally originated routes (network
// statements and redistribution) into the BGP RIB. Nodes seed in
// parallel: each reads and writes only its own RIBs (the intern pool is
// concurrency-safe), stamping from its own clock.
func (e *Engine) seedBGPOriginations() {
	e.runPhase("bgp/seed", e.names, func(node string) {
		e.forEachVRFOf(node, e.seedBGPNode)
	})
}

func (e *Engine) seedBGPNode(node string, d *config.Device, cv *config.VRF, vs *VRFState) {
	{
		if cv.BGP == nil {
			return
		}
		env := policy.Env{Device: d, Pool: e.pool}
		routerID := cv.BGP.RouterID
		if routerID == 0 {
			routerID = e.autoRouterID(d)
		}
		originate := func(src routing.Route, origin routing.Origin, rm string, med uint32) {
			v := policy.ViewOf(src)
			v.MED = med
			if res := env.Eval(rm, &v); !res.Permit {
				return
			}
			attrs := e.pool.Attrs(routing.BGPAttrs{
				AdminDistance: routing.IBGP.DefaultAdminDistance(),
				LocalPref:     defaultLocalPref,
				Weight:        localOriginWeight,
				Origin:        origin,
				MED:           v.MED,
				ASPath:        e.pool.ASPath(),
				Communities:   v.Communities,
				OriginatorID:  routerID,
				SrcProtocol:   src.Protocol,
				Tag:           v.Tag,
			})
			vs.BGPRIB.Merge(routing.Route{
				Prefix:   src.Prefix,
				Protocol: routing.IBGP, // locally originated; not exported to main
				Metric:   v.MED,
				AD:       routing.IBGP.DefaultAdminDistance(),
				Attrs:    attrs,
			})
		}
		for _, p := range cv.BGP.Networks {
			// Network statements require a matching main-RIB route.
			for _, rt := range vs.Main.Best(p) {
				originate(rt, routing.OriginIGP, "", 0)
				break
			}
		}
		for _, rd := range cv.BGP.Redistribute {
			var sources []routing.Route
			switch rd.From {
			case config.RedistConnected:
				sources = vs.ConnRIB.AllBest()
			case config.RedistStatic:
				sources = vs.StatRIB.AllBest()
			case config.RedistOSPF:
				sources = vs.OSPFRIB.AllBest()
			default:
				continue
			}
			for _, src := range sources {
				if src.Protocol == routing.Local {
					continue
				}
				originate(src, routing.OriginIncomplete, rd.RouteMap, rd.Metric)
			}
		}
	}
}

// autoRouterID picks the highest interface IP, mirroring IOS behavior.
func (e *Engine) autoRouterID(d *config.Device) ip4.Addr {
	var best ip4.Addr
	for _, i := range d.Interfaces {
		if !i.Active {
			continue
		}
		for _, p := range i.Addresses {
			if p.Addr > best {
				best = p.Addr
			}
		}
	}
	return best
}

// exportRoute applies sender-side processing of route r over session s
// (s.LocalNode is the *sender*). Deterministic: withdrawal handling
// re-derives the same route.
func (e *Engine) exportRoute(s *Session, senderVS *VRFState, r routing.Route) (routing.Route, bool) {
	senderDev := e.net.Devices[s.LocalNode]
	a := attrsOf(r)
	// iBGP-learned routes are not re-advertised to iBGP peers (no route
	// reflection in the model; full iBGP meshes are required and the BGP
	// compatibility analysis flags incomplete ones).
	learnedIBGP := r.Protocol == routing.IBGP && r.NextHopNode != ""
	if learnedIBGP && !s.EBGP {
		return routing.Route{}, false
	}
	// Sender-side loop prevention.
	if s.EBGP && a.ASPath.Contains(s.PeerAS) {
		return routing.Route{}, false
	}
	v := policy.ViewOf(r)
	env := policy.Env{Device: senderDev, Pool: e.pool}
	if res := env.Eval(s.Neighbor.ExportPolicy, &v); !res.Permit {
		return routing.Route{}, false
	}
	out := routing.Route{Prefix: r.Prefix}
	outAttrs := routing.BGPAttrs{
		Origin:      v.Origin,
		MED:         v.MED,
		Communities: v.Communities,
	}
	if !s.Neighbor.SendCommunity {
		outAttrs.Communities = e.pool.CommunitySet()
	}
	if s.EBGP {
		outAttrs.ASPath = e.pool.Prepend(v.ASPath, s.LocalAS, 1)
		out.NextHop = s.LocalIP
		// LocalPref is not carried over eBGP.
		outAttrs.LocalPref = 0
	} else {
		outAttrs.ASPath = v.ASPath
		outAttrs.LocalPref = v.LocalPref
		out.NextHop = v.NextHop
		if out.NextHop == 0 || s.Neighbor.NextHopSelf {
			out.NextHop = s.LocalIP
		}
	}
	out.Attrs = e.pool.Attrs(outAttrs)
	return out, true
}

// importRoute applies receiver-side processing at the session's *peer* end
// (u receives what s.LocalNode exported). s here is u's own session object.
func (e *Engine) importRoute(s *Session, recvVS *VRFState, r routing.Route) (routing.Route, bool) {
	recvDev := e.net.Devices[s.LocalNode]
	a := attrsOf(r)
	// Receiver-side loop prevention.
	if s.EBGP && a.ASPath.Contains(s.LocalAS) {
		return routing.Route{}, false
	}
	v := policy.ViewOf(r)
	v.LocalPref = a.LocalPref
	if s.EBGP || v.LocalPref == 0 {
		v.LocalPref = defaultLocalPref
	}
	v.Weight = 0
	env := policy.Env{Device: recvDev, Pool: e.pool}
	if res := env.Eval(s.Neighbor.ImportPolicy, &v); !res.Permit {
		return routing.Route{}, false
	}
	proto := routing.IBGP
	if s.EBGP {
		proto = routing.EBGP
	}
	nh := v.NextHop
	if nh == 0 {
		nh = r.NextHop
	}
	igp, reachable := e.igpMetricTo(s.LocalNode, recvVS, nh)
	if !reachable {
		return routing.Route{}, false
	}
	attrs := e.pool.Attrs(routing.BGPAttrs{
		AdminDistance: proto.DefaultAdminDistance(),
		LocalPref:     v.LocalPref,
		MED:           v.MED,
		Weight:        v.Weight,
		Origin:        v.Origin,
		ASPath:        v.ASPath,
		Communities:   v.Communities,
		ReceivedFrom:  s.PeerIP,
		OriginatorID:  s.PeerIP,
		FromAS:        s.PeerAS,
		IGPMetric:     igp,
	})
	return routing.Route{
		Prefix:      r.Prefix,
		Protocol:    proto,
		NextHop:     nh,
		NextHopNode: s.PeerNode,
		Metric:      v.MED,
		AD:          proto.DefaultAdminDistance(),
		Attrs:       attrs,
	}, true
}

// igpMetricTo resolves the IGP cost to a BGP next hop using only
// IGP/connected/static state (stable during the BGP phase, so withdrawal
// re-derivation stays deterministic).
func (e *Engine) igpMetricTo(node string, vs *VRFState, nh ip4.Addr) (uint32, bool) {
	if nh == 0 {
		return 0, true
	}
	if _, ok := e.connIface(node, vs.Name, nh); ok {
		return 0, true
	}
	if rts := vs.OSPFRIB.LongestMatch(nh); len(rts) > 0 {
		return rts[0].Metric, true
	}
	if rts := vs.StatRIB.LongestMatch(nh); len(rts) > 0 {
		return 0, true
	}
	return unreachableIGP, false
}

// runBGP resets BGP state and runs the exchange to convergence. Returns
// false on non-convergence.
func (e *Engine) runBGP() bool {
	// Reset from any previous outer round. Per-node independent: each node
	// rebuilds its own BGP RIB (on its own clock) and strips BGP routes
	// from its own main RIB.
	e.runPhase("bgp/reset", e.names, func(node string) {
		clock := &e.nodes[node].clock
		e.forEachVRFOf(node, func(node string, d *config.Device, cv *config.VRF, vs *VRFState) {
			vs.BGPRIB = routing.NewRIB(e.bgpCmp(vs), clock)
			vs.bgpPublished = routing.Delta{}
			for _, p := range vs.Main.Prefixes() {
				vs.Main.RemoveWhere(p, func(rt routing.Route) bool { return rt.Protocol.IsBGP() })
			}
		})
	})
	e.seedBGPOriginations()

	// Build the session graph for scheduling.
	type sessEnd struct {
		vs *VRFState
		s  *Session
	}
	byNode := make(map[string][]sessEnd)
	nodeSet := make(map[string]bool)
	var edges [][2]string
	e.forEachVRF(func(node string, d *config.Device, cv *config.VRF, vs *VRFState) {
		if cv.BGP != nil {
			nodeSet[node] = true
		}
		for _, s := range vs.Sessions {
			if !s.Up {
				continue
			}
			byNode[node] = append(byNode[node], sessEnd{vs: vs, s: s})
			nodeSet[node] = true
			nodeSet[s.PeerNode] = true
			edges = append(edges, [2]string{node, s.PeerNode})
		}
	})
	nodes := make([]string, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	if len(nodes) == 0 {
		return true
	}

	process := func(u string) bool {
		changed := false
		for _, se := range byNode[u] {
			peerVS := e.vrf(se.s.PeerNode, se.s.PeerVRF)
			d := peerVS.bgpPublished
			// The peer's session object mirrors ours; exports run with the
			// peer as sender.
			peerSess := e.mirrorSession(se.s)
			if peerSess == nil {
				continue
			}
			for _, r := range d.Removed {
				if exp, ok := e.exportRoute(peerSess, peerVS, r); ok {
					if imp, ok := e.importRoute(se.s, se.vs, exp); ok {
						if se.vs.BGPRIB.Withdraw(imp) {
							changed = true
						}
					}
				}
			}
			for _, r := range d.Added {
				if exp, ok := e.exportRoute(peerSess, peerVS, r); ok {
					if imp, ok := e.importRoute(se.s, se.vs, exp); ok {
						if se.vs.BGPRIB.Merge(imp) {
							changed = true
						}
					}
				}
			}
		}
		return changed
	}
	publish := func(u string) bool {
		any := false
		// Sorted VRF order: applyBGPToMain draws logical clocks from the
		// shared engine clock, and map order would interleave draws across
		// VRFs differently run to run (clocks persist in artifacts).
		for _, vn := range sortedVRFNames(e.nodes[u]) {
			vs := e.nodes[u].VRFs[vn]
			d := vs.BGPRIB.TakeDelta()
			vs.bgpPublished = d
			e.applyBGPToMain(vs, d)
			if !d.Empty() {
				any = true
			}
		}
		return any
	}

	converged := e.exchangeLoop("bgp", nodes, edges, process, publish, func() uint64 {
		return e.ribStateHash("bgp/hash", func(vs *VRFState) *routing.RIB { return vs.BGPRIB })
	}, &e.res.BGPIterations)
	// Flush pending deltas of nodes that never ran (no up sessions).
	e.runPhase("bgp/flush", e.names, func(node string) {
		e.forEachVRFOf(node, func(node string, d *config.Device, cv *config.VRF, vs *VRFState) {
			if vs.BGPRIB.PendingDelta() {
				dd := vs.BGPRIB.TakeDelta()
				vs.bgpPublished = dd
				e.applyBGPToMain(vs, dd)
			}
		})
	})
	return converged
}

// mirrorSession finds the peer's session object corresponding to s.
func (e *Engine) mirrorSession(s *Session) *Session {
	peerVS := e.vrf(s.PeerNode, s.PeerVRF)
	for _, ps := range peerVS.Sessions {
		if ps.PeerNode == s.LocalNode && ps.PeerIP == s.LocalIP && ps.LocalIP == s.PeerIP {
			return ps
		}
	}
	return nil
}

// applyBGPToMain merges BGP best-set changes into the main RIB, skipping
// locally originated entries (their prefixes are already covered by the
// source protocol's route).
func (e *Engine) applyBGPToMain(vs *VRFState, d routing.Delta) {
	for _, r := range d.Removed {
		if r.NextHopNode == "" {
			continue
		}
		vs.Main.Withdraw(r)
	}
	for _, r := range d.Added {
		if r.NextHopNode == "" {
			continue
		}
		vs.Main.Merge(r)
	}
}
