package dataplane

// Failure-scenario suppression: the simulation-level half of the typed
// scenario overlay. A Suppression removes elements from the simulated
// network without touching configuration text — masked links disappear
// from the inferred topology (killing IGP adjacencies, BGP session
// viability walks, and forwarding-graph delivery edges in one place),
// downed nodes are excluded from every phase as if powered off, and held
// sessions are forced down during establishment. Because the parsed model
// is untouched, derived snapshots share parse artifacts with their
// baseline and only the simulation (and everything downstream) reruns.

import (
	"sort"
	"strings"

	"repro/internal/ip4"
	"repro/internal/topo"
)

// ScenarioDownReason marks a BGP session forced down by a failure
// scenario rather than by compatibility or viability. recheckSessions
// skips such sessions: their viability against the data plane is
// irrelevant while the scenario holds them down.
const ScenarioDownReason = "held down by scenario"

// SessionKey canonically identifies one BGP session by its two
// (node, session IP) endpoints, lower endpoint first. Both directions of
// a session map to the same key.
type SessionKey struct {
	Node1 string
	IP1   ip4.Addr
	Node2 string
	IP2   ip4.Addr
}

// MakeSessionKey canonicalizes the endpoint order.
func MakeSessionKey(node1 string, ip1 ip4.Addr, node2 string, ip2 ip4.Addr) SessionKey {
	if node2 < node1 || (node2 == node1 && ip2 < ip1) {
		node1, ip1, node2, ip2 = node2, ip2, node1, ip1
	}
	return SessionKey{Node1: node1, IP1: ip1, Node2: node2, IP2: ip2}
}

// String renders the canonical "node1:ip1<->node2:ip2" form.
func (k SessionKey) String() string {
	return k.Node1 + ":" + k.IP1.String() + "<->" + k.Node2 + ":" + k.IP2.String()
}

// LessSessionKey is the canonical ordering over session keys.
func LessSessionKey(a, b SessionKey) bool {
	if a.Node1 != b.Node1 {
		return a.Node1 < b.Node1
	}
	if a.IP1 != b.IP1 {
		return a.IP1 < b.IP1
	}
	if a.Node2 != b.Node2 {
		return a.Node2 < b.Node2
	}
	return a.IP2 < b.IP2
}

// Key returns the session's canonical identity. Sessions whose peer was
// never resolved key with an empty peer node; scenario suppression only
// matches fully resolved sessions.
func (s *Session) Key() SessionKey {
	return MakeSessionKey(s.LocalNode, s.LocalIP, s.PeerNode, s.PeerIP)
}

// Suppression is the failure overlay applied to one simulation run:
// links masked from the topology, nodes excluded entirely, and BGP
// sessions held down. It participates in content-addressed cache keys
// (see CacheKey), so suppressed runs cache and persist like any other.
type Suppression struct {
	Links    []topo.Link
	Nodes    []string
	Sessions []SessionKey
}

// Empty reports whether the suppression removes nothing.
func (s Suppression) Empty() bool {
	return len(s.Links) == 0 && len(s.Nodes) == 0 && len(s.Sessions) == 0
}

// Canonical returns a sorted, deduplicated copy. Scenario identity and
// cache keys are defined over the canonical form.
func (s Suppression) Canonical() Suppression {
	var out Suppression
	if len(s.Links) > 0 {
		out.Links = make([]topo.Link, len(s.Links))
		for i, l := range s.Links {
			out.Links[i] = l.Canonical()
		}
		sort.Slice(out.Links, func(i, j int) bool { return topo.LessLink(out.Links[i], out.Links[j]) })
		out.Links = dedupSlice(out.Links)
	}
	if len(s.Nodes) > 0 {
		out.Nodes = append([]string(nil), s.Nodes...)
		sort.Strings(out.Nodes)
		out.Nodes = dedupSlice(out.Nodes)
	}
	if len(s.Sessions) > 0 {
		out.Sessions = make([]SessionKey, len(s.Sessions))
		for i, k := range s.Sessions {
			out.Sessions[i] = MakeSessionKey(k.Node1, k.IP1, k.Node2, k.IP2)
		}
		sort.Slice(out.Sessions, func(i, j int) bool { return LessSessionKey(out.Sessions[i], out.Sessions[j]) })
		out.Sessions = dedupSlice(out.Sessions)
	}
	return out
}

func dedupSlice[T comparable](in []T) []T {
	out := in[:0]
	for i, v := range in {
		if i == 0 || v != in[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// Merge unions two suppressions into a canonical result.
func (s Suppression) Merge(o Suppression) Suppression {
	return Suppression{
		Links:    append(append([]topo.Link(nil), s.Links...), o.Links...),
		Nodes:    append(append([]string(nil), s.Nodes...), o.Nodes...),
		Sessions: append(append([]SessionKey(nil), s.Sessions...), o.Sessions...),
	}.Canonical()
}

// CacheKey serializes the canonical suppression for content-addressed
// artifact keys; the empty suppression yields "" so pre-scenario cache
// keys are unchanged byte for byte.
func (s Suppression) CacheKey() string {
	if s.Empty() {
		return ""
	}
	c := s.Canonical()
	var b strings.Builder
	if len(c.Links) > 0 {
		b.WriteString("links=")
		for i, l := range c.Links {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.String())
		}
	}
	if len(c.Nodes) > 0 {
		if b.Len() > 0 {
			b.WriteByte('|')
		}
		b.WriteString("nodes=")
		b.WriteString(strings.Join(c.Nodes, ","))
	}
	if len(c.Sessions) > 0 {
		if b.Len() > 0 {
			b.WriteByte('|')
		}
		b.WriteString("sessions=")
		for i, k := range c.Sessions {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(k.String())
		}
	}
	return b.String()
}

// DownSet returns the suppression's downed nodes as a lookup set.
func (s Suppression) DownSet() map[string]bool {
	if len(s.Nodes) == 0 {
		return nil
	}
	m := make(map[string]bool, len(s.Nodes))
	for _, n := range s.Nodes {
		m[n] = true
	}
	return m
}
