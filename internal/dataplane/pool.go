package dataplane

import (
	"sync"
	"sync/atomic"
)

// workerPool is a persistent set of goroutines owned by the Engine for the
// lifetime of one Run. The colored schedule (§4.1.2) dispatches hundreds of
// short phases on large fabrics — one process and one publish phase per
// color per iteration — so spawning a goroutine (plus a semaphore acquire)
// per node per phase dominates phase cost. With a persistent pool a phase
// costs one channel send per participating worker instead.
type workerPool struct {
	jobs chan func()
	n    int
}

// newWorkerPool starts n workers.
func newWorkerPool(n int) *workerPool {
	p := &workerPool{jobs: make(chan func()), n: n}
	for i := 0; i < n; i++ {
		go func() {
			for job := range p.jobs {
				job()
			}
		}()
	}
	return p
}

// run executes fn over nodes on the pool and blocks until every call has
// returned. Workers pull indices from a shared atomic cursor, so unequal
// per-node costs (hub routers vs leaves) self-balance without any
// pre-partitioning. Only one run may be active at a time (the engine's
// phases are sequential), which guarantees the sends below never block on
// a busy pool.
func (p *workerPool) run(nodes []string, fn func(node string)) {
	var cursor atomic.Int64
	var wg sync.WaitGroup
	k := p.n
	if k > len(nodes) {
		k = len(nodes)
	}
	wg.Add(k)
	body := func() {
		defer wg.Done()
		for {
			i := int(cursor.Add(1)) - 1
			if i >= len(nodes) {
				return
			}
			fn(nodes[i])
		}
	}
	for i := 0; i < k; i++ {
		p.jobs <- body
	}
	wg.Wait()
}

// close releases the workers. The pool must be idle.
func (p *workerPool) close() { close(p.jobs) }
