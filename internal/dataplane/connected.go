package dataplane

import (
	"repro/internal/config"
	"repro/internal/ip4"
	"repro/internal/routing"
)

// initConnected installs connected subnets and local host routes for every
// active interface, and seeds each VRF's main RIB. Per-node independent,
// so nodes fan out over the worker pool.
func (e *Engine) initConnected() {
	e.runPhase("connected", e.names, func(node string) {
		e.forEachVRFOf(node, e.initConnectedNode)
	})
}

func (e *Engine) initConnectedNode(node string, d *config.Device, cv *config.VRF, vs *VRFState) {
	{
		for _, in := range d.InterfaceNames() {
			i := d.Interfaces[in]
			if !i.Active || i.VRFOrDefault() != cv.Name {
				continue
			}
			for _, p := range i.Addresses {
				if p.Len < 32 {
					vs.ConnRIB.Merge(routing.Route{
						Prefix:       p.Canonical(),
						Protocol:     routing.Connected,
						NextHopIface: in,
						AD:           0,
					})
				}
				vs.ConnRIB.Merge(routing.Route{
					Prefix:       ip4.HostPrefix(p.Addr),
					Protocol:     routing.Local,
					NextHopIface: in,
					AD:           0,
				})
			}
		}
		for _, rt := range vs.ConnRIB.AllBest() {
			vs.Main.Merge(rt)
		}
	}
}

// installStatics installs static routes whose next hops are viable,
// iterating because statics can resolve through other statics
// (recursive static routes). Each pass fans nodes out over the worker
// pool: static resolution only reads the node's own RIBs and immutable
// config, so passes are per-node independent.
func (e *Engine) installStatics() {
	for pass := 0; pass < 8; pass++ {
		var changed chanBool
		e.runPhase("statics", e.names, func(node string) {
			e.forEachVRFOf(node, func(node string, d *config.Device, cv *config.VRF, vs *VRFState) {
				for _, sr := range cv.StaticRoutes {
					rt := routing.Route{
						Prefix:       sr.Prefix.Canonical(),
						Protocol:     routing.Static,
						NextHop:      sr.NextHop,
						NextHopIface: sr.Iface,
						Drop:         sr.Drop,
						Tag:          sr.Tag,
						AD:           staticAD(sr),
					}
					if !e.staticViable(node, d, cv.Name, sr, vs) {
						continue
					}
					if vs.StatRIB.Merge(rt) {
						changed.set()
					}
					if vs.Main.Merge(rt) {
						changed.set()
					}
				}
			})
		})
		if !changed.get() {
			return
		}
	}
}

func staticAD(sr config.StaticRoute) uint8 {
	if sr.AD != 0 {
		return sr.AD
	}
	return routing.Static.DefaultAdminDistance()
}

// staticViable reports whether the static route can be installed: discard
// routes always; interface routes when the interface is up; next-hop routes
// when the next hop resolves in the main RIB or a connected subnet.
func (e *Engine) staticViable(node string, d *config.Device, vrfName string, sr config.StaticRoute, vs *VRFState) bool {
	if sr.Drop {
		return true
	}
	if sr.Iface != "" {
		i, ok := d.Interfaces[sr.Iface]
		return ok && i.Active && i.VRFOrDefault() == vrfName
	}
	if sr.NextHop == 0 {
		return false
	}
	if _, ok := e.connIface(node, vrfName, sr.NextHop); ok {
		return true
	}
	// Recursive: resolvable via main RIB (but not via the route itself).
	for _, via := range vs.Main.LongestMatch(sr.NextHop) {
		if via.Prefix == sr.Prefix.Canonical() && via.Protocol == routing.Static {
			continue
		}
		return true
	}
	return false
}
