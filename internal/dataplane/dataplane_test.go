package dataplane

import (
	"strings"
	"testing"

	"repro/internal/acl"
	"repro/internal/config"
	"repro/internal/hdr"
	"repro/internal/ip4"
	"repro/internal/routing"
	"repro/internal/testnet"
)

// --- test network construction helpers ---

func dev(net *config.Network, name string) *config.Device {
	d := config.NewDevice(name, "vi")
	net.Devices[name] = d
	return d
}

func addIface(d *config.Device, name, addr string) *config.Interface {
	i := &config.Interface{Name: name, Active: true}
	if addr != "" {
		i.Addresses = []ip4.Prefix{ip4.MustParsePrefix(addr)}
	}
	d.Interfaces[name] = i
	return i
}

func enableOSPF(i *config.Interface, area uint32, cost uint32) {
	i.OSPF = &config.OSPFInterface{Area: area, Cost: cost}
}

func ospfProc(d *config.Device) *config.OSPFConfig {
	p := &config.OSPFConfig{ProcessID: 1}
	d.VRFs[config.DefaultVRF].OSPF = p
	return p
}

func bgpProc(d *config.Device, asn uint32) *config.BGPConfig {
	p := &config.BGPConfig{ASN: asn}
	d.VRFs[config.DefaultVRF].BGP = p
	return p
}

func neighbor(p *config.BGPConfig, peer string, remoteAS uint32) *config.BGPNeighbor {
	n := &config.BGPNeighbor{PeerIP: ip4.MustParseAddr(peer), RemoteAS: remoteAS, SendCommunity: true}
	p.Neighbors = append(p.Neighbors, n)
	return n
}

func mainRoutes(r *Result, node string) []routing.Route {
	return r.Nodes[node].DefaultVRF().Main.AllBest()
}

func findRoute(rs []routing.Route, prefix string) *routing.Route {
	p := ip4.MustParsePrefix(prefix)
	for i := range rs {
		if rs[i].Prefix == p.Canonical() {
			return &rs[i]
		}
	}
	return nil
}

// twoRouterNet: r1(eth0 10.0.0.1/30) -- (10.0.0.2/30 eth0)r2, plus a LAN on
// each side.
func twoRouterNet() *config.Network {
	net := config.NewNetwork()
	r1 := dev(net, "r1")
	addIface(r1, "eth0", "10.0.0.1/30")
	addIface(r1, "lan0", "192.168.1.1/24")
	r2 := dev(net, "r2")
	addIface(r2, "eth0", "10.0.0.2/30")
	addIface(r2, "lan0", "192.168.2.1/24")
	return net
}

func TestConnectedRoutes(t *testing.T) {
	net := twoRouterNet()
	r := Run(net, Options{})
	if !r.Converged {
		t.Fatalf("should converge: %v", r.Warnings)
	}
	rts := mainRoutes(r, "r1")
	if rt := findRoute(rts, "10.0.0.0/30"); rt == nil || rt.Protocol != routing.Connected {
		t.Errorf("missing connected route: %v", rts)
	}
	if rt := findRoute(rts, "10.0.0.1/32"); rt == nil || rt.Protocol != routing.Local {
		t.Errorf("missing local route: %v", rts)
	}
	if findRoute(rts, "192.168.2.0/24") != nil {
		t.Error("r1 should not know r2's LAN without a protocol")
	}
}

func TestStaticRoutes(t *testing.T) {
	net := twoRouterNet()
	net.Devices["r1"].VRFs[config.DefaultVRF].StaticRoutes = []config.StaticRoute{
		{Prefix: ip4.MustParsePrefix("192.168.2.0/24"), NextHop: ip4.MustParseAddr("10.0.0.2")},
		{Prefix: ip4.MustParsePrefix("203.0.113.0/24"), NextHop: ip4.MustParseAddr("198.51.100.1")}, // unresolvable
		{Prefix: ip4.MustParsePrefix("10.99.0.0/16"), Drop: true},
	}
	r := Run(net, Options{})
	rts := mainRoutes(r, "r1")
	if rt := findRoute(rts, "192.168.2.0/24"); rt == nil || rt.Protocol != routing.Static {
		t.Errorf("static route missing: %v", rts)
	}
	if findRoute(rts, "203.0.113.0/24") != nil {
		t.Error("static with unreachable next hop must not install")
	}
	if rt := findRoute(rts, "10.99.0.0/16"); rt == nil || !rt.Drop {
		t.Error("discard route missing")
	}
	// FIB must reflect the static route.
	f := r.Nodes["r1"].DefaultVRF().FIB
	e := f.Lookup(ip4.MustParseAddr("192.168.2.77"))
	if e == nil || e.NextHops[0].Iface != "eth0" || e.NextHops[0].Node != "r2" {
		t.Errorf("FIB resolution wrong: %v", e)
	}
}

func TestRecursiveStatic(t *testing.T) {
	net := twoRouterNet()
	net.Devices["r1"].VRFs[config.DefaultVRF].StaticRoutes = []config.StaticRoute{
		// 2nd route resolves through the 1st.
		{Prefix: ip4.MustParsePrefix("172.16.0.0/16"), NextHop: ip4.MustParseAddr("10.0.0.2")},
		{Prefix: ip4.MustParsePrefix("172.17.0.0/16"), NextHop: ip4.MustParseAddr("172.16.0.1")},
	}
	r := Run(net, Options{})
	if findRoute(mainRoutes(r, "r1"), "172.17.0.0/16") == nil {
		t.Error("recursive static not installed")
	}
}

// ospfTriangle builds r1--r2--r3--r1 with LANs; cost r1-r3 is expensive.
func ospfTriangle() *config.Network {
	net := config.NewNetwork()
	r1, r2, r3 := dev(net, "r1"), dev(net, "r2"), dev(net, "r3")
	link := func(a *config.Device, ai, aaddr string, cost uint32) {
		i := addIface(a, ai, aaddr)
		enableOSPF(i, 0, cost)
	}
	link(r1, "eth12", "10.0.12.1/30", 10)
	link(r2, "eth12", "10.0.12.2/30", 10)
	link(r2, "eth23", "10.0.23.2/30", 10)
	link(r3, "eth23", "10.0.23.3/30", 10)
	link(r1, "eth13", "10.0.13.1/30", 100)
	link(r3, "eth13", "10.0.13.3/30", 100)
	for n, d := range map[string]*config.Device{"r1": r1, "r2": r2, "r3": r3} {
		lan := addIface(d, "lan0", "192.168."+n[1:]+".1/24")
		enableOSPF(lan, 0, 1)
		lan.OSPF.Passive = true
		ospfProc(d)
	}
	return net
}

func TestOSPFShortestPath(t *testing.T) {
	r := Run(ospfTriangle(), Options{})
	if !r.Converged {
		t.Fatalf("no convergence: %v", r.Warnings)
	}
	// r1 -> r3's LAN: via r2 (10+10+1=21) beats direct (100+1=101).
	rt := findRoute(mainRoutes(r, "r1"), "192.168.3.0/24")
	if rt == nil {
		t.Fatal("r1 missing route to r3 LAN")
	}
	if rt.Protocol != routing.OSPF || rt.Metric != 21 || rt.NextHopNode != "r2" {
		t.Errorf("wrong path: %+v", rt)
	}
}

func TestOSPFECMP(t *testing.T) {
	// Make both paths equal cost: direct r1-r3 cost 20 vs via r2 cost 20.
	net := ospfTriangle()
	net.Devices["r1"].Interfaces["eth13"].OSPF.Cost = 20
	net.Devices["r3"].Interfaces["eth13"].OSPF.Cost = 20
	r := Run(net, Options{})
	vrf := r.Nodes["r1"].DefaultVRF()
	best := vrf.OSPFRIB.Best(ip4.MustParsePrefix("192.168.3.0/24"))
	if len(best) != 2 {
		t.Fatalf("expected 2 ECMP paths, got %v", best)
	}
	e := vrf.FIB.Lookup(ip4.MustParseAddr("192.168.3.9"))
	if e == nil || len(e.NextHops) != 2 {
		t.Errorf("FIB should carry both next hops: %v", e)
	}
}

func TestOSPFAreas(t *testing.T) {
	// r1 (area 1) -- abr (areas 1,0) -- r3 (area 0)
	net := config.NewNetwork()
	r1, abr, r3 := dev(net, "r1"), dev(net, "r2abr"), dev(net, "r3")
	enableOSPF(addIface(r1, "eth0", "10.1.0.1/30"), 1, 10)
	enableOSPF(addIface(abr, "eth1", "10.1.0.2/30"), 1, 10)
	enableOSPF(addIface(abr, "eth0", "10.0.0.1/30"), 0, 10)
	enableOSPF(addIface(r3, "eth0", "10.0.0.2/30"), 0, 10)
	lan1 := addIface(r1, "lan0", "192.168.1.1/24")
	enableOSPF(lan1, 1, 1)
	lan1.OSPF.Passive = true
	lan3 := addIface(r3, "lan0", "192.168.3.1/24")
	enableOSPF(lan3, 0, 1)
	lan3.OSPF.Passive = true
	ospfProc(r1)
	ospfProc(abr)
	ospfProc(r3)
	r := Run(net, Options{})
	if !r.Converged {
		t.Fatalf("no convergence: %v", r.Warnings)
	}
	// r1 sees r3's LAN as inter-area.
	rt := findRoute(mainRoutes(r, "r1"), "192.168.3.0/24")
	if rt == nil {
		t.Fatal("r1 missing inter-area route")
	}
	if rt.Protocol != routing.OSPFIA {
		t.Errorf("expected OSPFIA, got %v", rt.Protocol)
	}
	// And vice versa.
	rt3 := findRoute(mainRoutes(r, "r3"), "192.168.1.0/24")
	if rt3 == nil || rt3.Protocol != routing.OSPFIA {
		t.Errorf("r3 missing inter-area route: %v", rt3)
	}
}

func TestOSPFRedistributeStatic(t *testing.T) {
	net := ospfTriangle()
	vrf := net.Devices["r1"].VRFs[config.DefaultVRF]
	vrf.StaticRoutes = []config.StaticRoute{
		{Prefix: ip4.MustParsePrefix("203.0.113.0/24"), Drop: true},
	}
	vrf.OSPF.Redistribute = []config.Redistribution{{From: config.RedistStatic}}
	r := Run(net, Options{})
	rt := findRoute(mainRoutes(r, "r3"), "203.0.113.0/24")
	if rt == nil {
		t.Fatal("external route not propagated")
	}
	if rt.Protocol != routing.OSPFE2 || rt.Metric != 20 {
		t.Errorf("expected E2 metric 20, got %+v", rt)
	}
}

func TestOSPFE2MetricDoesNotAccumulate(t *testing.T) {
	net := ospfTriangle()
	vrf := net.Devices["r3"].VRFs[config.DefaultVRF]
	vrf.StaticRoutes = []config.StaticRoute{{Prefix: ip4.MustParsePrefix("203.0.113.0/24"), Drop: true}}
	vrf.OSPF.Redistribute = []config.Redistribution{{From: config.RedistStatic, Metric: 50}}
	r := Run(net, Options{})
	// r1 reaches the external via r2 (2 hops) but E2 metric stays 50.
	rt := findRoute(mainRoutes(r, "r1"), "203.0.113.0/24")
	if rt == nil || rt.Metric != 50 {
		t.Errorf("E2 metric should not accumulate: %+v", rt)
	}
}

// ebgpChain builds AS65001(r1) -- AS65002(r2) -- AS65003(r3); r1 originates
// 203.0.113.0/24.
func ebgpChain() *config.Network {
	net := config.NewNetwork()
	r1, r2, r3 := dev(net, "r1"), dev(net, "r2"), dev(net, "r3")
	addIface(r1, "eth0", "10.0.12.1/30")
	addIface(r2, "eth0", "10.0.12.2/30")
	addIface(r2, "eth1", "10.0.23.2/30")
	addIface(r3, "eth0", "10.0.23.3/30")
	b1 := bgpProc(r1, 65001)
	neighbor(b1, "10.0.12.2", 65002)
	b1.Networks = []ip4.Prefix{ip4.MustParsePrefix("203.0.113.0/24")}
	r1.VRFs[config.DefaultVRF].StaticRoutes = []config.StaticRoute{
		{Prefix: ip4.MustParsePrefix("203.0.113.0/24"), Drop: true},
	}
	b2 := bgpProc(r2, 65002)
	neighbor(b2, "10.0.12.1", 65001)
	neighbor(b2, "10.0.23.3", 65003)
	b3 := bgpProc(r3, 65003)
	neighbor(b3, "10.0.23.2", 65002)
	return net
}

func TestEBGPChainPropagation(t *testing.T) {
	r := Run(ebgpChain(), Options{})
	if !r.Converged {
		t.Fatalf("no convergence: %v", r.Warnings)
	}
	// All sessions up.
	for _, s := range r.Sessions {
		if !s.Up {
			t.Errorf("session down: %v", s)
		}
	}
	rt2 := findRoute(mainRoutes(r, "r2"), "203.0.113.0/24")
	if rt2 == nil || rt2.Protocol != routing.EBGP {
		t.Fatalf("r2 missing eBGP route: %v", rt2)
	}
	if rt2.Attrs.ASPath.String() != "65001" {
		t.Errorf("r2 AS path = %q, want 65001", rt2.Attrs.ASPath)
	}
	if rt2.NextHop != ip4.MustParseAddr("10.0.12.1") {
		t.Errorf("r2 next hop = %v", rt2.NextHop)
	}
	rt3 := findRoute(mainRoutes(r, "r3"), "203.0.113.0/24")
	if rt3 == nil {
		t.Fatal("r3 missing route")
	}
	if rt3.Attrs.ASPath.String() != "65002 65001" {
		t.Errorf("r3 AS path = %q, want '65002 65001'", rt3.Attrs.ASPath)
	}
	// FIB end-to-end.
	e := r.Nodes["r3"].DefaultVRF().FIB.Lookup(ip4.MustParseAddr("203.0.113.50"))
	if e == nil || e.NextHops[0].Node != "r2" {
		t.Errorf("r3 FIB wrong: %v", e)
	}
}

func TestBGPLoopPrevention(t *testing.T) {
	// Ring: r1-r2-r3-r1; route must not loop back to r1.
	net := ebgpChain()
	r1, r3 := net.Devices["r1"], net.Devices["r3"]
	addIface(r1, "eth1", "10.0.13.1/30")
	addIface(r3, "eth1", "10.0.13.3/30")
	neighbor(r1.VRFs[config.DefaultVRF].BGP, "10.0.13.3", 65003)
	neighbor(r3.VRFs[config.DefaultVRF].BGP, "10.0.13.1", 65001)
	r := Run(net, Options{})
	if !r.Converged {
		t.Fatalf("no convergence: %v", r.Warnings)
	}
	// r1's own prefix candidates must not include one via r3.
	cands := r.Nodes["r1"].DefaultVRF().BGPRIB.Candidates(ip4.MustParsePrefix("203.0.113.0/24"))
	for _, c := range cands {
		if c.NextHopNode == "r3" {
			t.Errorf("looped route installed: %v", c)
		}
	}
	// r3 should now prefer the direct path (shorter AS path).
	rt := findRoute(mainRoutes(r, "r3"), "203.0.113.0/24")
	if rt == nil || rt.Attrs.ASPath.String() != "65001" {
		t.Errorf("r3 should use direct path: %v", rt)
	}
}

func TestBGPSessionCompatibility(t *testing.T) {
	net := ebgpChain()
	// Break r2's remote-as for r3.
	net.Devices["r2"].VRFs[config.DefaultVRF].BGP.Neighbors[1].RemoteAS = 64999
	r := Run(net, Options{})
	var down *Session
	for _, s := range r.Sessions {
		if !s.Up {
			down = s
		}
	}
	if down == nil {
		t.Fatal("mismatched session should be down")
	}
	if findRoute(mainRoutes(r, "r3"), "203.0.113.0/24") != nil {
		t.Error("routes must not flow over a down session")
	}
}

func TestBGPSessionBlockedByACL(t *testing.T) {
	net := ebgpChain()
	r2 := net.Devices["r2"]
	// Block TCP/179 inbound on r2's interface to r3.
	blockBGP := acl.NewLine(acl.Deny, "deny bgp")
	blockBGP.Protocol = hdr.ProtoTCP
	blockBGP.DstPorts = []acl.PortRange{{Lo: 179, Hi: 179}}
	permit := acl.NewLine(acl.Permit, "permit all")
	r2.ACLs["BLOCK_BGP"] = &acl.ACL{Name: "BLOCK_BGP", Lines: []acl.Line{blockBGP, permit}}
	r2.Interfaces["eth1"].InACL = "BLOCK_BGP"
	r := Run(net, Options{})
	var blocked *Session
	for _, s := range r.Sessions {
		if s.LocalNode == "r3" || (s.LocalNode == "r2" && s.PeerNode == "r3") {
			if !s.Up {
				blocked = s
			}
		}
	}
	if blocked == nil {
		t.Fatalf("ACL-blocked session should be down: %v", r.Sessions)
	}
	if !strings.Contains(blocked.DownReason, "BLOCK_BGP") && !strings.Contains(blocked.DownReason, "denied") {
		t.Errorf("down reason should mention the ACL: %q", blocked.DownReason)
	}
	if findRoute(mainRoutes(r, "r3"), "203.0.113.0/24") != nil {
		t.Error("route must not propagate over ACL-blocked session")
	}
}

func TestIBGPWithNextHopSelf(t *testing.T) {
	// x1 (AS64500) --eBGP-- r1 --iBGP-- r2 (AS65000), next-hop-self on r1.
	net := config.NewNetwork()
	x1, r1, r2 := dev(net, "x1"), dev(net, "r1"), dev(net, "r2")
	addIface(x1, "eth0", "198.51.100.1/30")
	addIface(r1, "ext0", "198.51.100.2/30")
	addIface(r1, "eth0", "10.0.0.1/30")
	addIface(r2, "eth0", "10.0.0.2/30")
	bx := bgpProc(x1, 64500)
	neighbor(bx, "198.51.100.2", 65000)
	bx.Networks = []ip4.Prefix{ip4.MustParsePrefix("203.0.113.0/24")}
	x1.VRFs[config.DefaultVRF].StaticRoutes = []config.StaticRoute{
		{Prefix: ip4.MustParsePrefix("203.0.113.0/24"), Drop: true}}
	b1 := bgpProc(r1, 65000)
	neighbor(b1, "198.51.100.1", 64500)
	n12 := neighbor(b1, "10.0.0.2", 65000)
	n12.NextHopSelf = true
	b2 := bgpProc(r2, 65000)
	neighbor(b2, "10.0.0.1", 65000)
	r := Run(net, Options{})
	if !r.Converged {
		t.Fatalf("no convergence: %v", r.Warnings)
	}
	rt := findRoute(mainRoutes(r, "r2"), "203.0.113.0/24")
	if rt == nil {
		t.Fatal("iBGP route missing at r2")
	}
	if rt.Protocol != routing.IBGP {
		t.Errorf("protocol = %v, want ibgp", rt.Protocol)
	}
	if rt.NextHop != ip4.MustParseAddr("10.0.0.1") {
		t.Errorf("next-hop-self not applied: %v", rt.NextHop)
	}
	if rt.Attrs.LocalPref != 100 {
		t.Errorf("local pref = %d, want 100 (carried over iBGP)", rt.Attrs.LocalPref)
	}
}

func TestImportPolicySetsLocalPref(t *testing.T) {
	net := ebgpChain()
	r2 := net.Devices["r2"]
	r2.RouteMaps["LP200"] = &config.RouteMap{Name: "LP200", Clauses: []config.RouteMapClause{
		{Seq: 10, Action: config.Permit, Sets: []config.Set{{Kind: config.SetLocalPref, Value: 200}}},
	}}
	r2.VRFs[config.DefaultVRF].BGP.Neighbors[0].ImportPolicy = "LP200"
	r := Run(net, Options{})
	rt := findRoute(mainRoutes(r, "r2"), "203.0.113.0/24")
	if rt == nil || rt.Attrs.LocalPref != 200 {
		t.Errorf("import policy not applied: %v", rt)
	}
}

func TestExportPolicyFiltersPrefix(t *testing.T) {
	net := ebgpChain()
	r2 := net.Devices["r2"]
	r2.PrefixLists["NONE"] = &config.PrefixList{Name: "NONE", Entries: []config.PrefixListEntry{
		{Seq: 10, Action: config.Deny, Prefix: ip4.MustParsePrefix("0.0.0.0/0"), Le: 32},
	}}
	r2.RouteMaps["DENY_ALL"] = &config.RouteMap{Name: "DENY_ALL", Clauses: []config.RouteMapClause{
		{Seq: 10, Action: config.Permit, Matches: []config.Match{{Kind: config.MatchPrefixList, Name: "NONE"}}},
	}}
	r2.VRFs[config.DefaultVRF].BGP.Neighbors[1].ExportPolicy = "DENY_ALL"
	r := Run(net, Options{})
	if findRoute(mainRoutes(r, "r3"), "203.0.113.0/24") != nil {
		t.Error("export policy should have filtered the route")
	}
}

// figure1b builds the paper's Figure 1b: two border routers of AS 65000,
// each with an external peer advertising 10.0.0.0/8, iBGP between them with
// an import policy that prefers internal paths (LP 200).
func figure1b() *config.Network {
	net := config.NewNetwork()
	b1, b2 := dev(net, "border1"), dev(net, "border2")
	x1, x2 := dev(net, "ext1"), dev(net, "ext2")
	addIface(x1, "eth0", "198.51.100.1/30")
	addIface(b1, "ext0", "198.51.100.2/30")
	addIface(x2, "eth0", "198.51.101.1/30")
	addIface(b2, "ext0", "198.51.101.2/30")
	addIface(b1, "core0", "10.255.0.1/30")
	addIface(b2, "core0", "10.255.0.2/30")
	for _, x := range []*config.Device{x1, x2} {
		x.VRFs[config.DefaultVRF].StaticRoutes = []config.StaticRoute{
			{Prefix: ip4.MustParsePrefix("10.0.0.0/8"), Drop: true}}
	}
	bx1 := bgpProc(x1, 64501)
	neighbor(bx1, "198.51.100.2", 65000)
	bx1.Networks = []ip4.Prefix{ip4.MustParsePrefix("10.0.0.0/8")}
	bx2 := bgpProc(x2, 64502)
	neighbor(bx2, "198.51.101.2", 65000)
	bx2.Networks = []ip4.Prefix{ip4.MustParsePrefix("10.0.0.0/8")}
	for i, b := range []*config.Device{b1, b2} {
		b.RouteMaps["PREFER_INTERNAL"] = &config.RouteMap{Name: "PREFER_INTERNAL",
			Clauses: []config.RouteMapClause{{Seq: 10, Action: config.Permit,
				Sets: []config.Set{{Kind: config.SetLocalPref, Value: 200}}}}}
		bp := bgpProc(b, 65000)
		if i == 0 {
			neighbor(bp, "198.51.100.1", 64501)
			n := neighbor(bp, "10.255.0.2", 65000)
			n.ImportPolicy = "PREFER_INTERNAL"
			n.NextHopSelf = true
		} else {
			neighbor(bp, "198.51.101.1", 64502)
			n := neighbor(bp, "10.255.0.1", 65000)
			n.ImportPolicy = "PREFER_INTERNAL"
			n.NextHopSelf = true
		}
	}
	return net
}

// TestFigure1bLockstepOscillates reproduces the paper's Figure 1b: with
// uncontrolled parallelism (lockstep) the two border routers re-advertise
// in a cycle and never converge.
func TestFigure1bLockstepOscillates(t *testing.T) {
	r := Run(figure1b(), Options{Schedule: ScheduleLockstep, MaxIterations: 100})
	if r.Converged {
		t.Fatal("lockstep should NOT converge on Figure 1b")
	}
	if !r.Oscillation {
		t.Errorf("expected oscillation detection; warnings: %v", r.Warnings)
	}
}

// TestFigure1bColoredConverges shows the production schedule converging
// deterministically on the same network.
func TestFigure1bColoredConverges(t *testing.T) {
	r := Run(figure1b(), Options{Schedule: ScheduleColored})
	if !r.Converged {
		t.Fatalf("colored schedule should converge: %v", r.Warnings)
	}
	// Exactly one border router should use its external path and the other
	// the internal path through it.
	rt1 := findRoute(mainRoutes(r, "border1"), "10.0.0.0/8")
	rt2 := findRoute(mainRoutes(r, "border2"), "10.0.0.0/8")
	if rt1 == nil || rt2 == nil {
		t.Fatal("border routers missing 10/8")
	}
	ibgpCount := 0
	for _, rt := range []*routing.Route{rt1, rt2} {
		if rt.Protocol == routing.IBGP {
			ibgpCount++
		}
	}
	if ibgpCount != 1 {
		t.Errorf("expected exactly one internal path, got %d (r1=%v r2=%v)", ibgpCount, rt1, rt2)
	}
}

// TestDeterminism runs the same simulation several times and requires
// identical RIB state (paper §4.1.2: "consistent results across
// simulations to aid in debugging").
func TestDeterminism(t *testing.T) {
	baseline := uint64(0)
	for i := 0; i < 3; i++ {
		r := Run(figure1b(), Options{Schedule: ScheduleColored, Parallelism: 4})
		e := &Engine{net: r.Network, nodes: r.Nodes}
		h := e.ribStateHash("test/hash", func(vs *VRFState) *routing.RIB { return vs.Main })
		if i == 0 {
			baseline = h
		} else if h != baseline {
			t.Fatalf("run %d produced different state", i)
		}
	}
}

func TestClockTieBreakPrefersOldest(t *testing.T) {
	// r2 hears the same prefix from two eBGP peers with identical
	// attributes; the logical clock must keep the first-learned route.
	net := config.NewNetwork()
	a, b, r2 := dev(net, "a"), dev(net, "b"), dev(net, "r2")
	addIface(a, "eth0", "10.0.1.1/30")
	addIface(b, "eth0", "10.0.2.1/30")
	addIface(r2, "eth1", "10.0.1.2/30")
	addIface(r2, "eth2", "10.0.2.2/30")
	for _, x := range []*config.Device{a, b} {
		x.VRFs[config.DefaultVRF].StaticRoutes = []config.StaticRoute{
			{Prefix: ip4.MustParsePrefix("203.0.113.0/24"), Drop: true}}
	}
	// Same AS on both advertisers => identical AS path length.
	ba := bgpProc(a, 64500)
	neighbor(ba, "10.0.1.2", 65000)
	ba.Networks = []ip4.Prefix{ip4.MustParsePrefix("203.0.113.0/24")}
	bb := bgpProc(b, 64500)
	neighbor(bb, "10.0.2.2", 65000)
	bb.Networks = []ip4.Prefix{ip4.MustParsePrefix("203.0.113.0/24")}
	b2 := bgpProc(r2, 65000)
	neighbor(b2, "10.0.1.1", 64500)
	neighbor(b2, "10.0.2.1", 64500)
	r := Run(net, Options{})
	if !r.Converged {
		t.Fatalf("no convergence: %v", r.Warnings)
	}
	best := r.Nodes["r2"].DefaultVRF().BGPRIB.Best(ip4.MustParsePrefix("203.0.113.0/24"))
	if len(best) != 1 {
		t.Fatalf("expected single best, got %v", best)
	}
	cands := r.Nodes["r2"].DefaultVRF().BGPRIB.Candidates(ip4.MustParsePrefix("203.0.113.0/24"))
	if len(cands) != 2 {
		t.Fatalf("expected 2 candidates, got %d", len(cands))
	}
	oldest := cands[0]
	for _, c := range cands[1:] {
		if c.Clock < oldest.Clock {
			oldest = c
		}
	}
	if best[0].Key() != oldest.Key() {
		t.Errorf("best %v is not the oldest candidate %v", best[0], oldest)
	}
}

func TestBGPMultipath(t *testing.T) {
	// Same topology as clock test but with multipath: both paths in FIB.
	net := config.NewNetwork()
	a, b, r2 := dev(net, "a"), dev(net, "b"), dev(net, "r2")
	addIface(a, "eth0", "10.0.1.1/30")
	addIface(b, "eth0", "10.0.2.1/30")
	addIface(r2, "eth1", "10.0.1.2/30")
	addIface(r2, "eth2", "10.0.2.2/30")
	for _, x := range []*config.Device{a, b} {
		x.VRFs[config.DefaultVRF].StaticRoutes = []config.StaticRoute{
			{Prefix: ip4.MustParsePrefix("203.0.113.0/24"), Drop: true}}
	}
	ba := bgpProc(a, 64500)
	neighbor(ba, "10.0.1.2", 65000)
	ba.Networks = []ip4.Prefix{ip4.MustParsePrefix("203.0.113.0/24")}
	bb := bgpProc(b, 64500)
	neighbor(bb, "10.0.2.2", 65000)
	bb.Networks = []ip4.Prefix{ip4.MustParsePrefix("203.0.113.0/24")}
	b2 := bgpProc(r2, 65000)
	b2.MultipathEBGP = true
	neighbor(b2, "10.0.1.1", 64500)
	neighbor(b2, "10.0.2.1", 64500)
	r := Run(net, Options{})
	best := r.Nodes["r2"].DefaultVRF().BGPRIB.Best(ip4.MustParsePrefix("203.0.113.0/24"))
	if len(best) != 2 {
		t.Fatalf("multipath should keep 2 best, got %v", best)
	}
	e := r.Nodes["r2"].DefaultVRF().FIB.Lookup(ip4.MustParseAddr("203.0.113.1"))
	if e == nil || len(e.NextHops) != 2 {
		t.Errorf("FIB should have 2 ECMP next hops: %v", e)
	}
}

func TestParallelismMatchesSerial(t *testing.T) {
	// -1 forces serial; 0 is the GOMAXPROCS default; 8 is explicit
	// parallelism. All must produce identical state.
	h := func(par int) uint64 {
		r := Run(ospfTriangle(), Options{Parallelism: par})
		e := &Engine{net: r.Network, nodes: r.Nodes}
		return e.ribStateHash("test/hash", func(vs *VRFState) *routing.RIB { return vs.Main })
	}
	serial := h(-1)
	if serial != h(0) {
		t.Error("default-parallel simulation diverged from serial")
	}
	if serial != h(8) {
		t.Error("8-worker simulation diverged from serial")
	}
}

func TestInterningSharesAttrs(t *testing.T) {
	r := Run(ebgpChain(), Options{})
	st := r.Pool.Stats()
	if st.UniqueAttrs == 0 {
		t.Error("no attrs interned")
	}
	// r2 and r3 hold routes; attribute objects must be shared per unique
	// combination (hits > 0 implies reuse happened).
	if st.AttrMisses == 0 {
		t.Error("stats not tracking")
	}
}

func TestNonBGPNetworkHasNoSessions(t *testing.T) {
	r := Run(ospfTriangle(), Options{})
	if len(r.Sessions) != 0 {
		t.Errorf("unexpected sessions: %v", r.Sessions)
	}
}

func TestFullStateConvergenceAblation(t *testing.T) {
	r := Run(ospfTriangle(), Options{FullStateConvergence: true})
	if !r.Converged {
		t.Fatalf("full-state convergence should also converge: %v", r.Warnings)
	}
	rt := findRoute(mainRoutes(r, "r1"), "192.168.3.0/24")
	if rt == nil || rt.Metric != 21 {
		t.Errorf("ablation changed results: %v", rt)
	}
}

func TestShutdownInterfaceExcluded(t *testing.T) {
	net := twoRouterNet()
	net.Devices["r2"].Interfaces["eth0"].Active = false
	r := Run(net, Options{})
	if len(r.Topology.Edges) != 0 {
		t.Errorf("shutdown interface should not form edges: %v", r.Topology.Edges)
	}
	if findRoute(mainRoutes(r, "r2"), "10.0.0.0/30") != nil {
		t.Error("shutdown interface should not produce connected routes")
	}
}

func TestVRFIsolation(t *testing.T) {
	// Two parallel customer networks over the same routers, isolated in
	// separate VRFs: routes must not leak between them.
	net := config.NewNetwork()
	r1, r2 := dev(net, "r1"), dev(net, "r2")
	mkVRF := func(d *config.Device, vrf, iface, addr string) {
		i := addIface(d, iface, addr)
		i.VRFName = vrf
		d.VRF(vrf)
	}
	mkVRF(r1, "red", "red0", "10.1.0.1/30")
	mkVRF(r2, "red", "red0", "10.1.0.2/30")
	mkVRF(r1, "blue", "blue0", "10.2.0.1/30")
	mkVRF(r2, "blue", "blue0", "10.2.0.2/30")
	mkVRF(r1, "red", "redlan", "192.168.1.1/24")
	mkVRF(r2, "blue", "bluelan", "192.168.1.1/24") // same LAN prefix, different VRF
	// Static routes within each VRF.
	r1.VRFs["blue"].StaticRoutes = []config.StaticRoute{
		{Prefix: ip4.MustParsePrefix("192.168.1.0/24"), NextHop: ip4.MustParseAddr("10.2.0.2")},
	}
	r2.VRFs["red"].StaticRoutes = []config.StaticRoute{
		{Prefix: ip4.MustParsePrefix("192.168.1.0/24"), NextHop: ip4.MustParseAddr("10.1.0.1")},
	}
	r := Run(net, Options{})
	if !r.Converged {
		t.Fatalf("no convergence: %v", r.Warnings)
	}
	redR1 := r.Nodes["r1"].VRFs["red"]
	blueR1 := r.Nodes["r1"].VRFs["blue"]
	if redR1 == nil || blueR1 == nil {
		t.Fatal("VRF states missing")
	}
	// red on r1 owns 192.168.1.0/24 as connected; blue reaches it via the
	// static route — each in its own table.
	redRt := redR1.Main.Best(ip4.MustParsePrefix("192.168.1.0/24"))
	if len(redRt) != 1 || redRt[0].Protocol != routing.Connected {
		t.Errorf("red should have connected LAN: %v", redRt)
	}
	blueRt := blueR1.Main.Best(ip4.MustParsePrefix("192.168.1.0/24"))
	if len(blueRt) != 1 || blueRt[0].Protocol != routing.Static {
		t.Errorf("blue should have static LAN route: %v", blueRt)
	}
	// No leakage: blue must not see red's p2p subnet.
	if got := blueR1.Main.Best(ip4.MustParsePrefix("10.1.0.0/30")); len(got) != 0 {
		t.Errorf("blue sees red's subnet: %v", got)
	}
	// FIBs exist for every VRF.
	if redR1.FIB == nil || blueR1.FIB == nil {
		t.Error("per-VRF FIBs missing")
	}
}

func TestOSPFRequiresMatchingVRF(t *testing.T) {
	// OSPF interfaces in different VRFs on the same subnet must not form
	// an adjacency.
	net := twoRouterNet()
	ospfProc(net.Devices["r1"])
	ospfProc(net.Devices["r2"])
	enableOSPF(net.Devices["r1"].Interfaces["eth0"], 0, 10)
	enableOSPF(net.Devices["r2"].Interfaces["eth0"], 0, 10)
	enableOSPF(net.Devices["r1"].Interfaces["lan0"], 0, 1)
	net.Devices["r1"].Interfaces["lan0"].OSPF.Passive = true
	enableOSPF(net.Devices["r2"].Interfaces["lan0"], 0, 1)
	net.Devices["r2"].Interfaces["lan0"].OSPF.Passive = true
	// Sanity: with matching VRFs routes flow.
	r := Run(net, Options{})
	if findRoute(mainRoutes(r, "r1"), "192.168.2.0/24") == nil {
		t.Fatal("baseline OSPF should work")
	}
	// Now put r2's side in a VRF.
	net2 := twoRouterNet()
	ospfProc(net2.Devices["r1"])
	enableOSPF(net2.Devices["r1"].Interfaces["eth0"], 0, 10)
	enableOSPF(net2.Devices["r2"].Interfaces["eth0"], 0, 10)
	net2.Devices["r2"].Interfaces["eth0"].VRFName = "CUST"
	cv := net2.Devices["r2"].VRF("CUST")
	cv.OSPF = &config.OSPFConfig{ProcessID: 2}
	r2res := Run(net2, Options{})
	if findRoute(mainRoutes(r2res, "r1"), "192.168.2.0/24") != nil {
		t.Error("cross-VRF adjacency must not form")
	}
}

func TestNonConvergenceReported(t *testing.T) {
	// Exceeding MaxIterations without a cycle is reported as
	// non-convergence, not papered over.
	r := Run(figure1b(), Options{Schedule: ScheduleLockstep, MaxIterations: 3})
	if r.Converged {
		t.Error("3 iterations cannot converge figure 1b under lockstep")
	}
	if len(r.Warnings) == 0 {
		t.Error("non-convergence must warn")
	}
}

// TestBadGadgetReportedNotForced: a network with no stable BGP solution
// must be reported as non-convergent even under the production schedule
// (paper §4.1.2: the convergence techniques do not force convergence on
// networks that do not converge in reality).
func TestBadGadgetReportedNotForced(t *testing.T) {
	r := Run(testnet.BadGadget(), Options{MaxIterations: 200})
	if r.Converged {
		t.Fatal("bad gadget has no stable solution; convergence is a bug")
	}
	if len(r.Warnings) == 0 {
		t.Error("non-convergence must be reported")
	}
}
