package dataplane_test

import (
	"fmt"
	"testing"

	"repro/internal/config"
	"repro/internal/dataplane"
	"repro/internal/testnet"
)

// roundTrip marshals a clean result and rebuilds it, failing the test on
// any codec error.
func roundTrip(t *testing.T, r *dataplane.Result) *dataplane.Result {
	t.Helper()
	b, err := dataplane.MarshalResult(r)
	if err != nil {
		t.Fatalf("MarshalResult: %v", err)
	}
	got, err := dataplane.UnmarshalResult(b)
	if err != nil {
		t.Fatalf("UnmarshalResult: %v", err)
	}
	return got
}

// TestPersistRoundTripFingerprints asserts the rebuilt result is
// indistinguishable from the original through every post-convergence
// consumer surface: per-node fingerprints (covering all RIB best sets and
// FIB entries), session renderings, route listings, and convergence
// metadata.
func TestPersistRoundTripFingerprints(t *testing.T) {
	for name, net := range map[string]func() *config.Network{
		"figure2":   testnet.Figure2,
		"diamond":   testnet.Diamond,
		"ebgpchain": testnet.EBGPChain,
		"ecmp":      testnet.ECMPWithBrokenBranch,
	} {
		t.Run(name, func(t *testing.T) {
			r := dataplane.Run(net(), dataplane.Options{})
			if r.Degraded() {
				t.Fatalf("%s: baseline run degraded: %v", name, r.Diags)
			}
			got := roundTrip(t, r)

			if got.Converged != r.Converged || got.BGPIterations != r.BGPIterations ||
				got.IGPIterations != r.IGPIterations || got.OuterRounds != r.OuterRounds {
				t.Errorf("convergence metadata changed: got %+v", got)
			}
			if len(got.Nodes) != len(r.Nodes) {
				t.Fatalf("node count: got %d want %d", len(got.Nodes), len(r.Nodes))
			}
			for n := range r.Nodes {
				if gf, wf := got.NodeFingerprint(n), r.NodeFingerprint(n); gf != wf {
					t.Errorf("node %s fingerprint mismatch: %x != %x", n, gf, wf)
				}
			}
			if len(got.Sessions) != len(r.Sessions) {
				t.Fatalf("session count: got %d want %d", len(got.Sessions), len(r.Sessions))
			}
			for i := range r.Sessions {
				if got.Sessions[i].String() != r.Sessions[i].String() {
					t.Errorf("session %d: %s != %s", i, got.Sessions[i], r.Sessions[i])
				}
			}
			// Route listings (the user-visible "routes" question) must render
			// identically.
			for n, ns := range r.Nodes {
				want := fmt.Sprint(ns.DefaultVRF().Main.AllBest())
				have := fmt.Sprint(got.Nodes[n].DefaultVRF().Main.AllBest())
				if have != want {
					t.Errorf("node %s routes:\n got %s\nwant %s", n, have, want)
				}
			}
			// Topology must be re-inferred identically.
			if len(got.Topology.Edges) != len(r.Topology.Edges) {
				t.Errorf("topology edges: got %d want %d", len(got.Topology.Edges), len(r.Topology.Edges))
			}
			// Device pointers must be re-linked into the decoded network.
			for n, ns := range got.Nodes {
				if ns.Device != got.Network.Devices[n] {
					t.Errorf("node %s device pointer not linked to decoded network", n)
				}
			}
		})
	}
}

// TestPersistRefusesDegraded asserts degraded results cannot be persisted.
func TestPersistRefusesDegraded(t *testing.T) {
	r := dataplane.Run(testnet.BadGadget(), dataplane.Options{MaxIterations: 50})
	if !r.Degraded() {
		t.Fatal("bad gadget run should be degraded")
	}
	if _, err := dataplane.MarshalResult(r); err == nil {
		t.Fatal("MarshalResult accepted a degraded result")
	}
}
