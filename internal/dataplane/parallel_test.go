package dataplane

import (
	"bytes"
	"encoding/gob"
	"runtime"
	"testing"

	"repro/internal/netgen"
)

// TestParallelDeterminism asserts byte-identical RIB/FIB state (via
// Result.Fingerprint) across worker counts on generated topologies: a
// ≥200-device eBGP fat-tree and a seeded random OSPF mesh. This is the
// §4.1.2 guarantee — the colored schedule plus logical clocks make the
// simulation "deterministic and parallel at the same time".
func TestParallelDeterminism(t *testing.T) {
	fabric := netgen.FabricParams{Name: "det", Spines: 4, Pods: 10,
		AggPerPod: 2, TorPerPod: 18, HostNetsPerTor: 1, Multipath: true}
	random := netgen.RandomParams{Name: "detr", Nodes: 60, Degree: 4,
		LansPerNode: 2, Seed: 7}
	if testing.Short() {
		fabric.Pods, fabric.TorPerPod = 3, 4
		random.Nodes = 24
	}
	if n := fabric.Devices(); !testing.Short() && n < 200 {
		t.Fatalf("fabric must have >= 200 devices, got %d", n)
	}

	levels := []int{1, 2, 4, 8, runtime.GOMAXPROCS(0)}
	snapshots := []*netgen.Snapshot{netgen.Fabric(fabric), netgen.Random(random)}
	for _, snap := range snapshots {
		net, warns := snap.Parse()
		if len(warns) > 0 {
			t.Fatalf("%s: parse warnings: %v", snap.Name, warns[:min(3, len(warns))])
		}
		var want uint64
		for i, par := range levels {
			// The fused colored schedule is the default; spell it out since
			// this test is the fusion-safety gate.
			r := Run(net, Options{Parallelism: par, Schedule: ScheduleColored})
			if !r.Converged {
				t.Fatalf("%s: no convergence at parallelism %d", snap.Name, par)
			}
			fp := r.Fingerprint()
			if i == 0 {
				want = fp
				continue
			}
			if fp != want {
				t.Errorf("%s: fingerprint at parallelism %d = %x, serial = %x",
					snap.Name, par, fp, want)
			}
		}
	}
}

// TestArtifactStateBytesIdenticalAcrossWorkers is a stricter determinism
// check than Fingerprint: the persisted *computed state* — every route
// including its logical-clock draw, FIB entries, sessions, warnings, and
// iteration counts — must be byte-identical whatever the worker count.
// Per-node clocks make clock values a function of each node's own merge
// sequence, not of cross-node scheduling, which is what lets the fused
// parallel schedule reproduce the serial state exactly. The input
// Network is excluded from the comparison: it is identical by
// construction but gob serializes its maps in random iteration order.
func TestArtifactStateBytesIdenticalAcrossWorkers(t *testing.T) {
	snap := netgen.Random(netgen.RandomParams{Name: "artr", Nodes: 24, Degree: 4,
		LansPerNode: 2, Seed: 11})
	net, warns := snap.Parse()
	if len(warns) > 0 {
		t.Fatalf("parse warnings: %v", warns[:min(3, len(warns))])
	}
	stateBytes := func(par int) []byte {
		r := Run(net, Options{Parallelism: par, Schedule: ScheduleColored})
		if !r.Converged {
			t.Fatalf("no convergence at parallelism %d", par)
		}
		b, err := MarshalResult(r)
		if err != nil {
			t.Fatalf("marshal at parallelism %d: %v", par, err)
		}
		var p persistResult
		if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&p); err != nil {
			t.Fatalf("decode at parallelism %d: %v", par, err)
		}
		p.Network = nil // input, not computed state; gob maps are unordered
		var out bytes.Buffer
		if err := gob.NewEncoder(&out).Encode(&p); err != nil {
			t.Fatalf("re-encode at parallelism %d: %v", par, err)
		}
		return out.Bytes()
	}
	want := stateBytes(1)
	for _, par := range []int{2, 4, 8} {
		if got := stateBytes(par); !bytes.Equal(got, want) {
			t.Errorf("state bytes at parallelism %d differ from serial (%d vs %d bytes)",
				par, len(got), len(want))
		}
	}
}
