package dataplane

import (
	"runtime"
	"testing"

	"repro/internal/netgen"
)

// TestParallelDeterminism asserts byte-identical RIB/FIB state (via
// Result.Fingerprint) across worker counts on generated topologies: a
// ≥200-device eBGP fat-tree and a seeded random OSPF mesh. This is the
// §4.1.2 guarantee — the colored schedule plus logical clocks make the
// simulation "deterministic and parallel at the same time".
func TestParallelDeterminism(t *testing.T) {
	fabric := netgen.FabricParams{Name: "det", Spines: 4, Pods: 10,
		AggPerPod: 2, TorPerPod: 18, HostNetsPerTor: 1, Multipath: true}
	random := netgen.RandomParams{Name: "detr", Nodes: 60, Degree: 4,
		LansPerNode: 2, Seed: 7}
	if testing.Short() {
		fabric.Pods, fabric.TorPerPod = 3, 4
		random.Nodes = 24
	}
	if n := fabric.Devices(); !testing.Short() && n < 200 {
		t.Fatalf("fabric must have >= 200 devices, got %d", n)
	}

	levels := []int{1, 2, 8, runtime.GOMAXPROCS(0)}
	snapshots := []*netgen.Snapshot{netgen.Fabric(fabric), netgen.Random(random)}
	for _, snap := range snapshots {
		net, warns := snap.Parse()
		if len(warns) > 0 {
			t.Fatalf("%s: parse warnings: %v", snap.Name, warns[:min(3, len(warns))])
		}
		var want uint64
		for i, par := range levels {
			r := Run(net, Options{Parallelism: par})
			if !r.Converged {
				t.Fatalf("%s: no convergence at parallelism %d", snap.Name, par)
			}
			fp := r.Fingerprint()
			if i == 0 {
				want = fp
				continue
			}
			if fp != want {
				t.Errorf("%s: fingerprint at parallelism %d = %x, serial = %x",
					snap.Name, par, fp, want)
			}
		}
	}
}
