package dataplane

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/config"
	"repro/internal/diag"
	"repro/internal/faults"
	"repro/internal/ip4"
	"repro/internal/policy"
	"repro/internal/routing"
	"repro/internal/topo"
)

// ospfAdj is one OSPF adjacency: node u's interface iu toward node v's
// interface iv, within one area and VRF.
type ospfAdj struct {
	u, iu string
	v, iv string
	vrf   string
	area  uint32
	cost  uint32   // cost of u's interface iu
	nhIP  ip4.Addr // v's interface IP (u's next hop)
}

const defaultRefBandwidth = 100_000_000 // 100 Mbps, the classic default

// ospfCost returns the cost of an interface for a process.
func ospfCost(proc *config.OSPFConfig, i *config.Interface) uint32 {
	if i.OSPF != nil && i.OSPF.Cost > 0 {
		return i.OSPF.Cost
	}
	ref := uint64(defaultRefBandwidth)
	if proc != nil && proc.RefBandwidth > 0 {
		ref = proc.RefBandwidth
	}
	bw := i.Bandwidth
	if bw == 0 {
		bw = 1_000_000_000 // assume 1G when unspecified
	}
	c := ref / bw
	if c < 1 {
		c = 1
	}
	if c > 65535 {
		c = 65535
	}
	return uint32(c)
}

// ospfAdjacencies computes all OSPF adjacencies (both directions).
func (e *Engine) ospfAdjacencies() []ospfAdj {
	var out []ospfAdj
	for _, ed := range e.topo.Edges {
		du, dv := e.net.Devices[ed.Node1], e.net.Devices[ed.Node2]
		iu, iv := du.Interfaces[ed.Iface1], dv.Interfaces[ed.Iface2]
		if iu == nil || iv == nil || iu.OSPF == nil || iv.OSPF == nil {
			continue
		}
		if iu.OSPF.Passive || iv.OSPF.Passive {
			continue
		}
		if iu.OSPF.Area != iv.OSPF.Area {
			continue
		}
		if iu.VRFOrDefault() != iv.VRFOrDefault() {
			continue
		}
		vrfName := iu.VRFOrDefault()
		vu, vv := du.VRFs[vrfName], dv.VRFs[vrfName]
		if vu == nil || vv == nil || vu.OSPF == nil || vv.OSPF == nil {
			continue
		}
		procU := vu.OSPF
		nh, ok := iv.Primary()
		if !ok {
			continue
		}
		out = append(out, ospfAdj{
			u: ed.Node1, iu: ed.Iface1, v: ed.Node2, iv: ed.Iface2,
			vrf: vrfName, area: iu.OSPF.Area,
			cost: ospfCost(procU, iu), nhIP: nh.Addr,
		})
	}
	return out
}

// isABR reports whether the device has OSPF interfaces in more than one
// area (one of them the backbone).
func isABR(d *config.Device, vrfName string) bool {
	areas := make(map[uint32]bool)
	for _, i := range d.Interfaces {
		if i.Active && i.OSPF != nil && i.VRFOrDefault() == vrfName {
			areas[i.OSPF.Area] = true
		}
	}
	return len(areas) > 1 && areas[0]
}

// seedOSPF installs each node's own OSPF networks (stub routes for enabled
// interfaces) and redistributes externals into the OSPF RIB. Nodes seed in
// parallel: each writes only its own RIBs, stamping from its own clock.
func (e *Engine) seedOSPF() {
	e.runPhase("ospf/seed", e.names, func(node string) {
		e.forEachVRFOf(node, e.seedOSPFNode)
	})
}

func (e *Engine) seedOSPFNode(node string, d *config.Device, cv *config.VRF, vs *VRFState) {
	if cv.OSPF == nil {
		return
	}
	for _, in := range d.InterfaceNames() {
		i := d.Interfaces[in]
		if !i.Active || i.OSPF == nil || i.VRFOrDefault() != cv.Name {
			continue
		}
		for _, p := range i.Addresses {
			prefix := p.Canonical()
			if p.Len == 32 {
				prefix = ip4.HostPrefix(p.Addr)
			}
			vs.OSPFRIB.Merge(routing.Route{
				Prefix:       prefix,
				Protocol:     routing.OSPF,
				Metric:       ospfCost(cv.OSPF, i),
				AD:           routing.OSPF.DefaultAdminDistance(),
				Area:         i.OSPF.Area,
				NextHopIface: in,
			})
		}
	}
	e.redistributeIntoOSPF(node, d, cv, vs)
}

// redistributeIntoOSPF originates external routes per the VRF's
// redistribution statements, running any attached route map.
func (e *Engine) redistributeIntoOSPF(node string, d *config.Device, cv *config.VRF, vs *VRFState) {
	if cv.OSPF == nil {
		return
	}
	env := policy.Env{Device: d, Pool: e.pool}
	seen := make(map[routing.Key]bool)
	for _, rd := range cv.OSPF.Redistribute {
		var sources []routing.Route
		switch rd.From {
		case config.RedistConnected:
			sources = vs.ConnRIB.AllBest()
		case config.RedistStatic:
			sources = vs.StatRIB.AllBest()
		case config.RedistBGP:
			sources = vs.BGPRIB.AllBest()
		default:
			continue
		}
		proto := routing.OSPFE2
		if rd.MetricType == 1 {
			proto = routing.OSPFE1
		}
		metric := rd.Metric
		if metric == 0 {
			metric = 20 // OSPF default external metric
		}
		for _, src := range sources {
			if src.Protocol.IsOSPF() {
				continue
			}
			v := policy.ViewOf(src)
			v.Metric = metric
			if res := env.Eval(rd.RouteMap, &v); !res.Permit {
				continue
			}
			rt := routing.Route{
				Prefix:   src.Prefix,
				Protocol: proto,
				Metric:   v.Metric,
				AD:       proto.DefaultAdminDistance(),
				Tag:      v.Tag,
				// Externals forward via the redistributing router's own
				// resolution of the source route.
				NextHop:      src.NextHop,
				NextHopIface: src.NextHopIface,
			}
			seen[rt.Key()] = true
			vs.OSPFRIB.Merge(rt)
		}
	}
	// Withdraw externals that are no longer sourced (e.g. the underlying
	// BGP route went away between outer rounds).
	withdrawStaleExternals(vs, seen)
	vs.ospfExternal = seen
}

// withdrawStaleExternals withdraws every previously originated external
// whose key is absent from seen, in sorted key order: Withdraw
// accumulates the RIB's published delta in call order, so iterating the
// map directly would leak map iteration order into the deltas peers
// import — and from there into logical-clock draws and persisted
// artifact bytes.
func withdrawStaleExternals(vs *VRFState, seen map[routing.Key]bool) {
	stale := make([]routing.Key, 0, len(vs.ospfExternal))
	for k := range vs.ospfExternal {
		if !seen[k] {
			stale = append(stale, k)
		}
	}
	sort.Slice(stale, func(i, j int) bool { return lessKey(stale[i], stale[j]) })
	for _, k := range stale {
		vs.OSPFRIB.Withdraw(routing.Route{
			Prefix: k.Prefix, Protocol: k.Protocol, Metric: k.Metric,
			AD: k.AD, Tag: k.Tag, Area: k.Area, NextHop: k.NextHop,
			NextHopIface: k.NextHopIface, NextHopNode: k.NextHopNode,
			Drop: k.Drop, Attrs: k.Attrs,
		})
	}
}

// lessKey orders route keys for deterministic withdrawal. Attrs is
// deliberately ignored: OSPF externals never carry BGP attributes
// (Route.Attrs is nil unless Protocol.IsBGP()).
func lessKey(a, b routing.Key) bool {
	if c := a.Prefix.Compare(b.Prefix); c != 0 {
		return c < 0
	}
	if a.Protocol != b.Protocol {
		return a.Protocol < b.Protocol
	}
	if a.NextHop != b.NextHop {
		return a.NextHop < b.NextHop
	}
	if a.NextHopIface != b.NextHopIface {
		return a.NextHopIface < b.NextHopIface
	}
	if a.NextHopNode != b.NextHopNode {
		return a.NextHopNode < b.NextHopNode
	}
	if a.Metric != b.Metric {
		return a.Metric < b.Metric
	}
	if a.AD != b.AD {
		return a.AD < b.AD
	}
	if a.Tag != b.Tag {
		return a.Tag < b.Tag
	}
	if a.Area != b.Area {
		return a.Area < b.Area
	}
	return !a.Drop && b.Drop
}

// deriveOSPF computes the route node u installs when neighbor v (over
// adjacency a) advertises r, or ok=false when the route does not propagate
// over this adjacency.
func deriveOSPF(r routing.Route, a ospfAdj, vIsABR bool) (routing.Route, bool) {
	out := routing.Route{
		Prefix:       r.Prefix,
		AD:           routing.OSPF.DefaultAdminDistance(),
		Tag:          r.Tag,
		NextHop:      a.nhIP,
		NextHopIface: a.iu,
		NextHopNode:  a.v,
	}
	switch r.Protocol {
	case routing.OSPF:
		switch {
		case r.Area == a.area:
			out.Protocol = routing.OSPF
			out.Area = a.area
			out.Metric = r.Metric + a.cost
		case vIsABR:
			// ABR summarizes intra-area routes into other areas.
			out.Protocol = routing.OSPFIA
			out.Area = a.area
			out.Metric = r.Metric + a.cost
		default:
			return routing.Route{}, false
		}
	case routing.OSPFIA:
		switch {
		case r.Area == a.area:
			out.Protocol = routing.OSPFIA
			out.Area = a.area
			out.Metric = r.Metric + a.cost
		case vIsABR && r.Area == 0 && a.area != 0:
			// Backbone summaries re-advertised into leaf areas.
			out.Protocol = routing.OSPFIA
			out.Area = a.area
			out.Metric = r.Metric + a.cost
		default:
			return routing.Route{}, false
		}
	case routing.OSPFE1:
		out.Protocol = routing.OSPFE1
		out.Area = 0
		out.Metric = r.Metric + a.cost
	case routing.OSPFE2:
		out.Protocol = routing.OSPFE2
		out.Area = 0
		out.Metric = r.Metric // E2 metric does not accumulate
	default:
		return routing.Route{}, false
	}
	return out, true
}

// runOSPF runs the OSPF exchange to convergence. Returns false on
// non-convergence.
func (e *Engine) runOSPF() bool {
	e.seedOSPF()
	adjs := e.ospfAdjacencies()
	if len(adjs) == 0 {
		// Still flush seed routes into main RIBs.
		e.runPhase("ospf/flush", e.names, func(node string) {
			e.forEachVRFOf(node, func(node string, d *config.Device, cv *config.VRF, vs *VRFState) {
				e.flushOSPFDelta(vs)
			})
		})
		return true
	}

	// Group adjacencies by receiving node, deterministic order.
	byNode := make(map[string][]ospfAdj)
	nodeSet := make(map[string]bool)
	var edges [][2]string
	for _, a := range adjs {
		byNode[a.u] = append(byNode[a.u], a)
		nodeSet[a.u] = true
		nodeSet[a.v] = true
		edges = append(edges, [2]string{a.u, a.v})
	}
	nodes := make([]string, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	process := func(u string) bool {
		changed := false
		abrCache := make(map[string]bool)
		for _, a := range byNode[u] {
			vs := e.vrf(a.u, a.vrf)
			nvs := e.vrf(a.v, a.vrf)
			d := nvs.ospfPublished
			vIsABR, ok := abrCache[a.v+"/"+a.vrf]
			if !ok {
				vIsABR = isABR(e.net.Devices[a.v], a.vrf)
				abrCache[a.v+"/"+a.vrf] = vIsABR
			}
			for _, r := range d.Removed {
				if der, ok := deriveOSPF(r, a, vIsABR); ok {
					if vs.OSPFRIB.Withdraw(der) {
						changed = true
					}
				}
			}
			for _, r := range d.Added {
				if der, ok := deriveOSPF(r, a, vIsABR); ok {
					// Split-horizon-lite: never install a route whose next
					// hop is ourselves.
					if der.NextHopNode == u {
						continue
					}
					if vs.OSPFRIB.Merge(der) {
						changed = true
					}
				}
			}
		}
		return changed
	}

	publish := func(u string) bool {
		any := false
		// Sorted VRF order: applyOSPFToMain draws logical clocks from the
		// shared engine clock, and map order would interleave draws across
		// VRFs differently run to run (clocks persist in artifacts).
		for _, vn := range sortedVRFNames(e.nodes[u]) {
			vs := e.nodes[u].VRFs[vn]
			vs.ospfPublished = vs.OSPFRIB.TakeDelta()
			e.applyOSPFToMain(vs, vs.ospfPublished)
			if !vs.ospfPublished.Empty() {
				any = true
			}
		}
		return any
	}

	converged := e.exchangeLoop("ospf", nodes, edges, process, publish, func() uint64 {
		return e.ribStateHash("ospf/hash", func(vs *VRFState) *routing.RIB { return vs.OSPFRIB })
	}, &e.res.IGPIterations)
	// Nodes without adjacencies never run publish; flush their seeds.
	e.runPhase("ospf/flush", e.names, func(node string) {
		e.forEachVRFOf(node, func(node string, d *config.Device, cv *config.VRF, vs *VRFState) {
			if vs.OSPFRIB.PendingDelta() {
				e.flushOSPFDelta(vs)
			}
		})
	})
	return converged
}

// flushOSPFDelta pushes pending OSPF RIB changes into the main RIB.
func (e *Engine) flushOSPFDelta(vs *VRFState) {
	d := vs.OSPFRIB.TakeDelta()
	vs.ospfPublished = d
	e.applyOSPFToMain(vs, d)
}

func (e *Engine) applyOSPFToMain(vs *VRFState, d routing.Delta) {
	for _, r := range d.Removed {
		vs.Main.Withdraw(r)
	}
	for _, r := range d.Added {
		vs.Main.Merge(r)
	}
}

// ribStateHash hashes the selected RIB across all nodes/VRFs. Per-node
// hashes are computed in parallel (each reads only its own RIBs) and
// scattered into per-node slots; the cross-node combine is a serial fold
// in device order, so the result is independent of scheduling. Works on
// shell engines built around an existing node map (names index absent):
// those derive a sorted name list locally and hash serially.
func (e *Engine) ribStateHash(phase string, sel func(*VRFState) *routing.RIB) uint64 {
	names, idx := e.names, e.nameIdx
	if len(names) != len(e.nodes) {
		names = make([]string, 0, len(e.nodes))
		for n := range e.nodes {
			names = append(names, n)
		}
		sort.Strings(names)
		idx = make(map[string]int, len(names))
		for i, n := range names {
			idx[n] = i
		}
	}
	hs := make([]uint64, len(names))
	e.runPhase(phase, names, func(node string) {
		ns := e.nodes[node]
		var h uint64 = 14695981039346656037
		for _, vn := range sortedVRFNames(ns) {
			h ^= sel(ns.VRFs[vn]).StateHash()
			h *= 1099511628211
		}
		hs[idx[node]] = h
	})
	var h uint64 = 14695981039346656037
	for _, x := range hs {
		h ^= x
		h *= 1099511628211
	}
	return h
}

// sortedVRFNames returns the node's VRF names in sorted order (cached at
// engine construction; the VRF set is immutable after New).
func sortedVRFNames(ns *NodeState) []string {
	if len(ns.vrfNames) == len(ns.VRFs) {
		return ns.vrfNames
	}
	// Cache absent (NodeStates rebuilt outside New, e.g. artifact
	// rehydration) or stale: derive from the map.
	names := make([]string, 0, len(ns.VRFs))
	for n := range ns.VRFs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// exchangeLoop drives a route-exchange fixed point under the configured
// schedule. process(u) consumes neighbors' published deltas and returns
// whether u's RIB changed; publish(u) rotates u's delta and reports whether
// it was non-empty. Seed state is intentionally NOT pre-published: it flows
// out with each node's first publish, so every published delta is consumed
// exactly once by each neighbor. Returns false if the loop hit the
// iteration bound or an oscillation was detected.
//
// Under the colored schedule, process and publish are FUSED into one task
// per node: same-color nodes share no adjacency, so no node in the class
// reads another class member's published delta — u may publish before w
// finishes processing without w ever observing it, and the per-node
// process-then-publish order is preserved. Fusion halves the number of
// barriers per iteration (hundreds of phases on a large fabric) and
// doubles the work per dispatched task. The lockstep schedule keeps the
// two-phase barrier: with every node in one class, publishing only after
// the full process phase is exactly the synchronous semantics that
// exhibits Figure 1's oscillations.
func (e *Engine) exchangeLoop(proto string, nodes []string, edges [][2]string,
	process func(string) bool, publish func(string) bool, hash func() uint64, iterOut *int) bool {

	fused := e.opts.Schedule == ScheduleColored
	var classes [][]string
	if e.opts.Schedule == ScheduleColored {
		coloring := topo.ColorGraph(nodes, edges)
		classes = coloring.Order
	} else {
		classes = [][]string{nodes}
	}
	phase := proto + "/exchange"

	seen := make(map[uint64]int)
	maxIters := e.opts.maxIters()
	var fullPrev map[string][]routing.Route
	if e.opts.FullStateConvergence {
		fullPrev = e.snapshotState()
	}

	for iter := 1; iter <= maxIters; iter++ {
		*iterOut = iter
		anyChange := false
		for _, class := range classes {
			// Cancellation is checked once per color-class round: classes
			// are short (one pull+merge per node), so a deadline stops the
			// loop promptly with a clean partial state between phases.
			if e.cancelled() {
				return false
			}
			var mu chanBool
			if fused {
				e.runPhase(phase, class, func(u string) {
					faults.Fire("dataplane", u)
					changed := process(u)
					if publish(u) || changed {
						mu.set()
					}
				})
			} else {
				e.runPhase(phase, class, func(u string) {
					faults.Fire("dataplane", u)
					if process(u) {
						mu.set()
					}
				})
				e.runPhase(phase, class, func(u string) {
					if publish(u) {
						mu.set()
					}
				})
			}
			if mu.get() {
				anyChange = true
			}
		}
		if e.opts.FullStateConvergence {
			// The classic fixed-point method (§4.1.3): keep complete RIB
			// state for the previous and current iteration and compare —
			// "proved too expensive"; kept as the memory ablation.
			cur := e.snapshotState()
			if statesEqual(fullPrev, cur) {
				return true
			}
			fullPrev = cur
			continue
		}
		if !anyChange {
			return true
		}
		h := hash()
		if prev, ok := seen[h]; ok && prev < iter {
			// State cycle: the routing oscillates (Figure 1 pathology).
			// The cycle report plus the current (partial but coherent) RIB
			// state is the answer — non-convergence is reported, never
			// papered over, and never a hang.
			e.res.Oscillation = true
			if e.res.Cycle == nil {
				e.res.Cycle = &CycleInfo{
					Protocol: proto, FirstIteration: prev, RepeatIteration: iter, StateHash: h,
				}
			}
			e.warnf("%s: oscillation detected (state at iteration %d repeats iteration %d)", proto, iter, prev)
			e.res.Diags = append(e.res.Diags, diag.Diagnostic{
				Stage: diag.StageDataPlane, Kind: diag.KindNonConvergence,
				Message: fmt.Sprintf("%s oscillation: state at iteration %d repeats iteration %d", proto, iter, prev),
			})
			return false
		}
		seen[h] = iter
	}
	e.warnf("%s: no convergence within %d iterations", proto, maxIters)
	e.res.Diags = append(e.res.Diags, diag.Diagnostic{
		Stage: diag.StageDataPlane, Kind: diag.KindBudget,
		Message: fmt.Sprintf("Budget exceeded: %s exchange loop hit its %d-iteration budget", proto, maxIters),
	})
	return false
}

// snapshotState deep-copies every main-RIB best route — the per-iteration
// cost of the classic convergence method.
func (e *Engine) snapshotState() map[string][]routing.Route {
	out := make(map[string][]routing.Route, len(e.nodes))
	for _, name := range e.net.DeviceNames() {
		for _, vn := range sortedVRFNames(e.nodes[name]) {
			vs := e.nodes[name].VRFs[vn]
			key := name + "/" + vn
			out[key] = append(append([]routing.Route(nil), vs.Main.AllBest()...), vs.OSPFRIB.AllBest()...)
			out[key] = append(out[key], vs.BGPRIB.AllBest()...)
		}
	}
	return out
}

func statesEqual(a, b map[string][]routing.Route) bool {
	if len(a) != len(b) {
		return false
	}
	for k, ra := range a {
		rb, ok := b[k]
		if !ok || len(ra) != len(rb) {
			return false
		}
		for i := range ra {
			if ra[i].Key() != rb[i].Key() {
				return false
			}
		}
	}
	return true
}

// chanBool is a tiny concurrent-safe flag.
type chanBool struct {
	v atomic.Bool
}

func (c *chanBool) set()      { c.v.Store(true) }
func (c *chanBool) get() bool { return c.v.Load() }
