package dataplane

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/ip4"
	"repro/internal/routing"
)

// TestWithdrawStaleExternalsSortedDeltas is the regression test for the
// gblint determinism finding in redistributeIntoOSPF: withdrawing stale
// externals by ranging over the ospfExternal map directly accumulated
// the RIB's published delta — and the logical-clock draws behind it —
// in map iteration order. The fix withdraws in sorted key order, so the
// delta peers import must come out sorted on every trial.
func TestWithdrawStaleExternalsSortedDeltas(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		vs := &VRFState{
			OSPFRIB:      routing.NewRIB(routing.OSPFComparator, &routing.Clock{}),
			ospfExternal: make(map[routing.Key]bool),
		}
		for i := 0; i < 16; i++ {
			rt := routing.Route{
				Prefix:   ip4.MustParsePrefix(fmt.Sprintf("10.%d.0.0/16", i)),
				Protocol: routing.OSPFE2,
				Metric:   20,
				AD:       routing.OSPFE2.DefaultAdminDistance(),
			}
			vs.OSPFRIB.Merge(rt)
			vs.ospfExternal[rt.Key()] = true
		}
		vs.OSPFRIB.TakeDelta() // clear origination noise

		withdrawStaleExternals(vs, map[routing.Key]bool{})

		d := vs.OSPFRIB.TakeDelta()
		if len(d.Removed) != 16 {
			t.Fatalf("trial %d: %d removals, want 16", trial, len(d.Removed))
		}
		for i := 1; i < len(d.Removed); i++ {
			if !lessKey(d.Removed[i-1].Key(), d.Removed[i].Key()) {
				t.Fatalf("trial %d: removal order not sorted at index %d: %v before %v",
					trial, i, d.Removed[i-1].Prefix, d.Removed[i].Prefix)
			}
		}
	}
}

// TestMultiVRFClockAssignmentStable is the regression test for the
// VRF-publish nondeterminism: the per-round publish closures iterated
// each node's VRF map in map order, so VRFs drew logical clocks from
// the shared engine clock in a random order — and Route.Clock is
// gob-encoded into persisted artifacts (it breaks eBGP age tie-breaks
// too). With four VRFs originating BGP routes, every route's Clock
// must come out identical run after run. (Raw artifact bytes cannot be
// compared: gob encodes the network's maps in iteration order.)
func TestMultiVRFClockAssignmentStable(t *testing.T) {
	// Two routers, one eBGP session per VRF. r2 originates a distinct
	// prefix in each VRF, so r1 learns routes over every session and the
	// publish step merges them into each VRF's main RIB — the clock
	// draws whose order the bug scrambled. Locally originated routes
	// would not do: applyBGPToMain skips them (NextHopNode == "").
	build := func() *config.Network {
		net := config.NewNetwork()
		r1 := dev(net, "r1")
		r2 := dev(net, "r2")
		for i, vrf := range []string{config.DefaultVRF, "red", "blue", "green"} {
			link := fmt.Sprintf("10.%d.0", i)
			addIface(r1, fmt.Sprintf("eth%d", i), link+".1/24").VRFName = vrf
			addIface(r2, fmt.Sprintf("eth%d", i), link+".2/24").VRFName = vrf
			lan := fmt.Sprintf("192.168.%d.0/24", i)
			addIface(r2, fmt.Sprintf("lan%d", i), fmt.Sprintf("192.168.%d.1/24", i)).VRFName = vrf
			r1.VRF(vrf).BGP = &config.BGPConfig{ASN: 65001, Neighbors: []*config.BGPNeighbor{
				{PeerIP: ip4.MustParseAddr(link + ".2"), RemoteAS: 65002},
			}}
			r2.VRF(vrf).BGP = &config.BGPConfig{
				ASN:      65002,
				Networks: []ip4.Prefix{ip4.MustParsePrefix(lan)},
				Neighbors: []*config.BGPNeighbor{
					{PeerIP: ip4.MustParseAddr(link + ".1"), RemoteAS: 65001},
				},
			}
		}
		return net
	}

	// clockTrace renders every persisted route of every VRF, including
	// its logical clock, in deterministic (sorted) traversal order.
	clockTrace := func(t *testing.T, r *Result) string {
		t.Helper()
		var b strings.Builder
		learned := 0
		for _, node := range []string{"r1", "r2"} {
			ns := r.Nodes[node]
			for _, vn := range sortedVRFNames(ns) {
				vs := ns.VRFs[vn]
				for _, rib := range []*routing.RIB{vs.ConnRIB, vs.StatRIB, vs.OSPFRIB, vs.BGPRIB, vs.Main} {
					for _, rt := range rib.AllBest() {
						fmt.Fprintf(&b, "%s/%s %s %v %v clk=%d\n", node, vn, rt.Prefix, rt.Protocol, rt.NextHop, rt.Clock)
						if rt.NextHopNode != "" {
							learned++
						}
					}
				}
			}
		}
		if learned < 4 {
			t.Fatalf("only %d learned routes; the eBGP sessions did not form:\n%s", learned, b.String())
		}
		return b.String()
	}

	var want string
	for trial := 0; trial < 8; trial++ {
		r := Run(build(), Options{})
		if len(r.Diags) != 0 {
			t.Fatalf("trial %d: unexpected diagnostics: %+v", trial, r.Diags)
		}
		if _, err := MarshalResult(r); err != nil {
			t.Fatalf("trial %d: MarshalResult: %v", trial, err)
		}
		got := clockTrace(t, r)
		if trial == 0 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("trial %d: clock assignment differs from trial 0:\n--- trial 0:\n%s--- trial %d:\n%s",
				trial, want, trial, got)
		}
	}
}
