package dataplane

import "sync"

// SchedTrace records the per-task durations of every parallelizable phase
// of one simulation run, for the scheduling model used by the parallelism
// study (EXPERIMENTS.md).
//
// The simulator's unit of parallelism is the node task: one fused
// process+publish per node per color class, one FIB build per device, and
// so on. A trace collected from a serial run therefore carries the exact
// task-duration profile a p-worker run would schedule, and
// ModelSpeedup replays that profile through the same greedy list
// scheduling the worker pool performs (workers pull tasks from a shared
// cursor) to compute the speedup the schedule itself permits — the
// schedule's parallel efficiency independent of how many hardware threads
// the host happens to expose.
//
// Tracing is opt-in (Options.Trace + Options.NowNanos) and never alters
// simulation results; the time source is injected because the simulator
// itself must not read the wall clock (determinism, §4.1.2).
type SchedTrace struct {
	mu     sync.Mutex
	phases []PhaseTrace
}

// PhaseTrace is the recorded timing of one parallel phase: the durations
// of its node tasks (in completion order) and the phase's wall time.
type PhaseTrace struct {
	Name   string
	TaskNs []int64
	WallNs int64
}

// add appends one phase record. Safe for concurrent use (phases are
// sequential today, but the trace makes no such assumption).
func (t *SchedTrace) add(name string, taskNs []int64, wallNs int64) {
	t.mu.Lock()
	t.phases = append(t.phases, PhaseTrace{Name: name, TaskNs: taskNs, WallNs: wallNs})
	t.mu.Unlock()
}

// Phases returns the recorded phases.
func (t *SchedTrace) Phases() []PhaseTrace {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]PhaseTrace(nil), t.phases...)
}

// TaskTotalNs returns the summed duration of all recorded tasks — the
// parallelizable portion of the run.
func (t *SchedTrace) TaskTotalNs() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var total int64
	for _, ph := range t.phases {
		for _, d := range ph.TaskNs {
			total += d
		}
	}
	return total
}

// ModelSpeedup predicts the speedup of running the traced workload on
// `workers` workers. runNs is the measured wall time of the traced run
// (it must come from a serial run so task durations are undiluted).
// Each phase's tasks are replayed through greedy list scheduling — tasks
// assigned in order to the earliest-available worker, exactly the
// worker pool's shared-cursor discipline — giving the phase's makespan;
// time outside traced phases is carried over as the serial fraction
// (Amdahl's law with the real task-size distribution instead of a
// uniform split).
func (t *SchedTrace) ModelSpeedup(runNs int64, workers int) float64 {
	if workers <= 1 || runNs <= 0 {
		return 1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var taskSum, makespans int64
	for _, ph := range t.phases {
		for _, d := range ph.TaskNs {
			taskSum += d
		}
		makespans += listScheduleMakespan(ph.TaskNs, workers)
	}
	serial := runNs - taskSum
	if serial < 0 {
		serial = 0
	}
	modeled := serial + makespans
	if modeled <= 0 {
		return 1
	}
	return float64(runNs) / float64(modeled)
}

// listScheduleMakespan replays tasks (in recorded order) onto p workers,
// each task going to the worker that frees up first, and returns the
// finish time of the last task.
func listScheduleMakespan(tasks []int64, p int) int64 {
	if len(tasks) == 0 {
		return 0
	}
	if p > len(tasks) {
		p = len(tasks)
	}
	free := make([]int64, p)
	for _, d := range tasks {
		// Earliest-available worker; p is small (worker counts), so a
		// linear scan beats a heap.
		minI := 0
		for i := 1; i < p; i++ {
			if free[i] < free[minI] {
				minI = i
			}
		}
		free[minI] += d
	}
	var max int64
	for _, f := range free {
		if f > max {
			max = f
		}
	}
	return max
}

// runPhase executes fn over nodes like runParallel, recording per-task
// durations into the run's SchedTrace when tracing is enabled.
func (e *Engine) runPhase(name string, nodes []string, fn func(node string)) {
	tr, now := e.opts.Trace, e.opts.NowNanos
	if tr == nil || now == nil {
		e.runParallel(nodes, fn)
		return
	}
	start := now()
	durs := make([]int64, 0, len(nodes))
	var mu sync.Mutex
	e.runParallel(nodes, func(u string) {
		t0 := now()
		fn(u)
		d := now() - t0
		mu.Lock()
		durs = append(durs, d)
		mu.Unlock()
	})
	tr.add(name, durs, now()-start)
}
