// Package dataplane generates the data plane from a parsed network: it is
// the imperative, fixed-point control-plane simulation of paper §4.1 that
// replaced the original Datalog model (Lesson 1).
//
// The engine implements the paper's three key mechanisms:
//
//   - Imperative evaluation (§4.1.1): protocols run as ordinary code in
//     explicitly ordered phases — connected/static, then IGP to convergence,
//     then BGP — with BGP session viability re-evaluated against the partial
//     data plane (TCP reachability through ACLs).
//   - Optimized, deterministic convergence (§4.1.2): per-protocol adjacency
//     graphs are colored and only nodes of one color exchange routes at a
//     time, and logical clocks break ties toward the oldest path. A naive
//     lockstep schedule is retained (ScheduleLockstep) to reproduce the
//     non-convergence patterns of Figure 1. Non-convergence is detected by
//     hashing RIB state and reported, never papered over.
//   - Optimized memory (§4.1.3): RIBs keep only current and previous
//     deltas; receivers pull a neighbor's delta and run the neighbor's
//     export policy, their own import policy, and the RIB merge in one
//     step, with no per-session queues. Route attributes are interned.
package dataplane

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/config"
	"repro/internal/diag"
	"repro/internal/fib"
	"repro/internal/ip4"
	"repro/internal/routing"
	"repro/internal/topo"
)

// Schedule selects the route-exchange schedule.
type Schedule int

// Schedules.
const (
	// ScheduleColored is the production schedule: graph-colored phases
	// plus logical-clock tie-breaking (§4.1.2).
	ScheduleColored Schedule = iota
	// ScheduleLockstep is the naive schedule where every node exchanges
	// with every neighbor in the same iteration — the one that oscillates
	// on Figure 1's patterns. Kept as the ablation baseline.
	ScheduleLockstep
)

// Options configure a simulation run.
type Options struct {
	Schedule Schedule
	// MaxIterations bounds each protocol's exchange loop; exceeding it
	// (without a detected cycle) reports non-convergence. 0 = default.
	MaxIterations int
	// DisableClocks turns off the logical-clock tie-break (ablation; with
	// ScheduleLockstep this reproduces the original unstable behavior).
	DisableClocks bool
	// FullStateConvergence checks convergence by comparing complete RIB
	// snapshots instead of delta emptiness (the memory-hungry classic
	// method, §4.1.3; ablation only).
	FullStateConvergence bool
	// Parallelism is the number of workers used within a color class and
	// for the per-node FIB/session stages. 0 (the default) means
	// runtime.GOMAXPROCS(0): parallel execution is the production default.
	// Pass 1 (or any negative value) to force serial execution.
	// Determinism holds for any value because same-color nodes share no
	// adjacency.
	Parallelism int
	// NowNanos supplies monotonic timestamps for schedule tracing. The
	// simulator itself never reads the wall clock (determinism, §4.1.2),
	// so tracing requires the caller to inject a time source — typically
	// func() int64 { return time.Since(base).Nanoseconds() }.
	NowNanos func() int64
	// Trace, when non-nil (and NowNanos is set), collects per-phase task
	// durations for the scheduling model (see SchedTrace.ModelSpeedup).
	// Tracing never alters simulation results.
	Trace *SchedTrace
	// Suppress is the failure-scenario overlay: links masked from the
	// inferred topology, nodes excluded from the run entirely, and BGP
	// sessions held down. Unlike the fields above it changes simulation
	// output, so it participates in the pipeline's content-addressed keys.
	Suppress Suppression
}

func (o Options) maxIters() int {
	if o.MaxIterations > 0 {
		return o.MaxIterations
	}
	return 500
}

// workers resolves Parallelism to a concrete worker count.
func (o Options) workers() int {
	switch {
	case o.Parallelism == 0:
		return runtime.GOMAXPROCS(0)
	case o.Parallelism < 1:
		return 1
	default:
		return o.Parallelism
	}
}

// NodeState is the computed state of one device.
type NodeState struct {
	Device *config.Device
	VRFs   map[string]*VRFState

	// clock is the node's logical clock (§4.1.2). Clocks are per node, not
	// engine-global: the BGP comparator only ever compares arrival times of
	// routes within one node's own RIBs, so node-local counters preserve
	// tie-breaking exactly while making the drawn values — which are gob-
	// encoded into persisted artifacts — deterministic for every worker
	// count and schedule interleaving (and keeping a hot shared cache line
	// out of every parallel merge).
	clock routing.Clock

	// vrfNames caches the sorted VRF names (VRF materialization is
	// complete after New), so per-iteration phases don't re-sort.
	vrfNames []string
}

// DefaultVRF returns the default VRF state.
func (n *NodeState) DefaultVRF() *VRFState { return n.VRFs[config.DefaultVRF] }

// VRFState holds per-VRF RIBs and the FIB.
type VRFState struct {
	Name    string
	ConnRIB *routing.RIB // connected + local
	StatRIB *routing.RIB
	OSPFRIB *routing.RIB
	BGPRIB  *routing.RIB
	Main    *routing.RIB
	FIB     *fib.FIB

	// published deltas, per protocol, read by neighbors (pull model).
	ospfPublished routing.Delta
	bgpPublished  routing.Delta

	// origination bookkeeping
	bgpOriginated map[routing.Key]bool
	ospfExternal  map[routing.Key]bool

	multipathEBGP bool
	multipathIBGP bool

	Sessions []*Session // BGP sessions with this VRF as local end
}

// Session is an established (or attempted) BGP session.
type Session struct {
	LocalNode  string
	LocalVRF   string
	LocalIP    ip4.Addr
	LocalAS    uint32
	PeerNode   string
	PeerVRF    string
	PeerIP     ip4.Addr
	PeerAS     uint32
	EBGP       bool
	Up         bool
	DownReason string
	// Config of the local end.
	Neighbor *config.BGPNeighbor
}

func (s *Session) String() string {
	state := "up"
	if !s.Up {
		state = "down(" + s.DownReason + ")"
	}
	return fmt.Sprintf("%s:%s <-> %s:%s [%s]", s.LocalNode, s.LocalIP, s.PeerNode, s.PeerIP, state)
}

// CycleInfo reports a detected routing oscillation: the protocol whose
// RIB state cycled and the iterations at which the repeat was observed
// (the partial result holds one state of the cycle).
type CycleInfo struct {
	Protocol        string
	FirstIteration  int // iteration whose state was seen again
	RepeatIteration int // iteration at which the repeat was detected
	StateHash       uint64
}

// Result is the computed data plane.
type Result struct {
	Network  *config.Network
	Topology *topo.Topology
	Nodes    map[string]*NodeState
	Pool     *routing.Pool

	Converged     bool
	Oscillation   bool       // a state cycle was detected (Figure 1 pathology)
	Cycle         *CycleInfo // populated when Oscillation is true
	Cancelled     bool       // the run's context was cancelled; state is partial
	IGPIterations int
	BGPIterations int
	OuterRounds   int
	Sessions      []*Session
	Warnings      []string
	// Suppress is the canonical failure overlay this result was computed
	// under (persisted, so cache hits re-apply the same mask).
	Suppress Suppression
	// Diags are the run's structured failure-containment records:
	// recovered per-device panics (with the device quarantined from
	// later phases), iteration-budget trips, oscillations, cancellation.
	Diags []diag.Diagnostic
	// Quarantined lists devices whose simulation failed fatally; their
	// state is partial and they were excluded from later phases.
	Quarantined []string
}

// Degraded reports whether the result is partial or carries failure
// diagnostics; degraded results are never cached by the pipeline.
func (r *Result) Degraded() bool {
	return r.Cancelled || len(r.Diags) > 0
}

// DownNodes returns the sorted device names excluded from this run by the
// scenario overlay (suppressed nodes actually present in the network).
func (r *Result) DownNodes() []string {
	var out []string
	for _, n := range r.Suppress.Nodes {
		if _, ok := r.Network.Devices[n]; ok {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// DownSet returns DownNodes as a lookup set (nil when nothing is down).
func (r *Result) DownSet() map[string]bool {
	down := r.DownNodes()
	if len(down) == 0 {
		return nil
	}
	m := make(map[string]bool, len(down))
	for _, n := range down {
		m[n] = true
	}
	return m
}

// Engine runs the simulation.
type Engine struct {
	net     *config.Network
	topo    *topo.Topology
	opts    Options
	pool    *routing.Pool
	nodes   map[string]*NodeState
	res     *Result
	workers *workerPool // nil when running serially
	ctx     context.Context

	// names/nameIdx cache net.DeviceNames() (which sorts on every call)
	// plus each name's position, for phases that scatter into per-node
	// slots without locking.
	names   []string
	nameIdx map[string]int

	// connIdx precomputes, per node and VRF, the active sub-/32 interface
	// prefixes in sorted interface order: connIface is on the next-hop
	// resolution hot path and previously re-sorted interface names per
	// call.
	connIdx map[string]map[string][]connEntry

	// curStage labels the phase for diagnostics; set between phases
	// (never concurrently with a running phase).
	curStage diag.Stage

	// failMu guards failed and the result's Diags/Quarantined during
	// parallel phases. A device that panics is quarantined: recorded
	// here and excluded from every later phase.
	failMu sync.Mutex
	failed map[string]bool

	// ipOwner maps an interface IP to its owner, for session matching and
	// next-hop resolution.
	ipOwner map[ip4.Addr][]ifaceRef

	// sup is the canonical failure overlay for this run. Downed nodes are
	// excluded from e.names (and so from every phase, the IP-ownership
	// index, and the connected-prefix index); masked links and downed
	// nodes are removed from e.topo; sessDown holds the session keys
	// establishSessions forces down.
	sup      Suppression
	sessDown map[SessionKey]bool
}

type ifaceRef struct {
	node, iface, vrf string
}

// connEntry is one active interface prefix, in sorted interface order.
type connEntry struct {
	iface  string
	prefix ip4.Prefix
}

// New creates an engine over the parsed network.
func New(net *config.Network, opts Options) *Engine {
	sup := opts.Suppress.Canonical()
	e := &Engine{
		net:    net,
		topo:   topo.Infer(net).Mask(sup.Links, sup.Nodes),
		opts:   opts,
		pool:   routing.NewPool(),
		nodes:  make(map[string]*NodeState),
		ctx:    context.Background(),
		failed: make(map[string]bool),
		sup:    sup,
	}
	if len(sup.Sessions) > 0 {
		e.sessDown = make(map[SessionKey]bool, len(sup.Sessions))
		for _, k := range sup.Sessions {
			e.sessDown[k] = true
		}
	}
	e.names = net.DeviceNames()
	if down := sup.DownSet(); down != nil {
		kept := e.names[:0]
		for _, n := range e.names {
			if !down[n] {
				kept = append(kept, n)
			}
		}
		e.names = kept
	}
	e.nameIdx = make(map[string]int, len(e.names))
	for i, n := range e.names {
		e.nameIdx[n] = i
	}
	e.ipOwner = make(map[ip4.Addr][]ifaceRef)
	e.connIdx = make(map[string]map[string][]connEntry, len(e.names))
	for _, name := range e.names {
		d := net.Devices[name]
		ns := &NodeState{Device: d, VRFs: make(map[string]*VRFState)}
		e.nodes[name] = ns
		byVRF := make(map[string][]connEntry)
		e.connIdx[name] = byVRF
		for _, in := range d.InterfaceNames() {
			i := d.Interfaces[in]
			if !i.Active {
				continue
			}
			vrf := i.VRFOrDefault()
			for _, p := range i.Addresses {
				e.ipOwner[p.Addr] = append(e.ipOwner[p.Addr], ifaceRef{node: name, iface: in, vrf: vrf})
				if p.Len < 32 {
					byVRF[vrf] = append(byVRF[vrf], connEntry{iface: in, prefix: p})
				}
			}
		}
	}
	// Materialize every VRF state up front (configured VRFs plus any VRF an
	// interface references), so e.vrf is a pure map read during parallel
	// phases instead of a create-on-miss that would race.
	for _, name := range e.names {
		d := net.Devices[name]
		for vn := range d.VRFs {
			e.vrf(name, vn)
		}
		for _, in := range d.InterfaceNames() {
			if i := d.Interfaces[in]; i.Active {
				e.vrf(name, i.VRFOrDefault())
			}
		}
	}
	for _, name := range e.names {
		ns := e.nodes[name]
		names := make([]string, 0, len(ns.VRFs))
		for vn := range ns.VRFs {
			names = append(names, vn)
		}
		sort.Strings(names)
		ns.vrfNames = names
	}
	return e
}

func (e *Engine) newVRFState(name string, clock *routing.Clock) *VRFState {
	vs := &VRFState{
		Name:          name,
		ConnRIB:       routing.NewRIB(routing.ConnectedComparator, clock),
		StatRIB:       routing.NewRIB(routing.MainComparator, clock),
		OSPFRIB:       routing.NewRIB(routing.OSPFComparator, clock),
		Main:          routing.NewRIB(routing.MainComparator, clock),
		bgpOriginated: make(map[routing.Key]bool),
		ospfExternal:  make(map[routing.Key]bool),
	}
	vs.BGPRIB = routing.NewRIB(e.bgpCmp(vs), clock)
	return vs
}

// vrf returns (creating) the VRF state for node/vrfName. All creation
// happens during New; afterwards this is a pure map read.
func (e *Engine) vrf(node, vrfName string) *VRFState {
	ns := e.nodes[node]
	if v, ok := ns.VRFs[vrfName]; ok {
		return v
	}
	v := e.newVRFState(vrfName, &ns.clock)
	ns.VRFs[vrfName] = v
	return v
}

// Run executes the full simulation and returns the data plane.
func Run(net *config.Network, opts Options) *Result {
	return New(net, opts).Run()
}

// RunContext executes the full simulation under a context: cancellation
// (or a deadline) is checked between phases and once per color-class
// round of the exchange loops, so large runs stop promptly with a
// partial, diagnosed result instead of running to completion.
func RunContext(ctx context.Context, net *config.Network, opts Options) *Result {
	e := New(net, opts)
	if ctx != nil {
		e.ctx = ctx
	}
	return e.Run()
}

// cancelled checks the run's context; the first observation records the
// cancellation diagnostic and marks the result partial.
func (e *Engine) cancelled() bool {
	if e.ctx.Err() == nil {
		return false
	}
	if !e.res.Cancelled {
		e.res.Cancelled = true
		e.res.Diags = append(e.res.Diags, diag.Diagnostic{
			Stage: diag.StageDataPlane, Kind: diag.KindCancelled,
			Message: fmt.Sprintf("run cancelled during %s: %v", e.curStage, e.ctx.Err()),
		})
	}
	return true
}

// Run executes the simulation. A panic in a parallel per-device phase
// quarantines that device and the run continues; a panic anywhere else is
// recovered here and the partial result returned with a diagnostic —
// the process-level "always produce some answer" guarantee.
func (e *Engine) Run() (result *Result) {
	r := &Result{
		Network:  e.net,
		Topology: e.topo,
		Nodes:    e.nodes,
		Pool:     e.pool,
		Suppress: e.sup,
	}
	e.res = r

	if w := e.opts.workers(); w > 1 {
		e.workers = newWorkerPool(w)
		defer func() {
			e.workers.close()
			e.workers = nil
		}()
	}
	defer func() {
		if v := recover(); v != nil {
			r.Diags = append(r.Diags, diag.FromPanic(e.curStage, "", v))
			r.Converged = false
			result = r
		}
	}()

	e.curStage = diag.StageDataPlane
	e.initConnected()
	e.installStatics()

	const maxOuter = 8
	converged := true
	for round := 1; round <= maxOuter; round++ {
		r.OuterRounds = round
		if e.cancelled() {
			converged = false
			break
		}
		igpOK := e.runOSPF()
		e.buildFIBs()
		if e.cancelled() {
			converged = false
			break
		}
		e.curStage = diag.StageDataPlane
		e.establishSessions()
		bgpOK := e.runBGP()
		e.buildFIBs()
		e.curStage = diag.StageDataPlane
		converged = igpOK && bgpOK
		if e.cancelled() {
			converged = false
			break
		}
		// Re-check session viability against the new data plane; if any
		// session flips, the next round re-establishes sessions and
		// resimulates BGP (paper §4.1.1: "re-evaluate the viability of
		// such sessions at key points ... using partial data plane state").
		if !e.recheckSessions() {
			break
		}
		if round == maxOuter {
			e.warnf("session viability did not stabilize after %d rounds", maxOuter)
			converged = false
		}
	}
	sort.Strings(r.Quarantined) // parallel panics surface in arbitrary order
	r.Converged = converged && !r.Oscillation && len(r.Quarantined) == 0
	return r
}

// forEachVRF visits every configured VRF state in deterministic order.
func (e *Engine) forEachVRF(fn func(node string, d *config.Device, cv *config.VRF, vs *VRFState)) {
	for _, name := range e.names {
		e.forEachVRFOf(name, fn)
	}
}

// forEachVRFOf visits node's configured VRF states in sorted order. It is
// the per-node unit of the seed/reset phases, which fan whole nodes out
// over the worker pool (each node's VRF states are node-local).
func (e *Engine) forEachVRFOf(name string, fn func(node string, d *config.Device, cv *config.VRF, vs *VRFState)) {
	d := e.net.Devices[name]
	for _, vn := range e.nodes[name].vrfNames {
		if cv, ok := d.VRFs[vn]; ok {
			fn(name, d, cv, e.vrf(name, vn))
		}
	}
}

// runParallel executes fn over the given node names on the engine's
// persistent worker pool (serially when the pool is absent or the batch is
// trivial). Callers guarantee the nodes are independent (same color class,
// or a stage that only writes node-local state).
//
// Quarantined devices are excluded up front, and a panic in fn(node)
// quarantines that device — it is recorded as a diagnostic and skipped by
// every later phase — instead of killing the worker (and with it the
// process). The device's own state is partial; every other device's state
// is untouched because same-phase nodes share no mutable state.
func (e *Engine) runParallel(nodes []string, fn func(node string)) {
	if len(e.failed) > 0 {
		e.failMu.Lock()
		kept := make([]string, 0, len(nodes))
		for _, n := range nodes {
			if !e.failed[n] {
				kept = append(kept, n)
			}
		}
		e.failMu.Unlock()
		nodes = kept
	}
	guarded := func(node string) {
		defer func() {
			if v := recover(); v != nil {
				d := diag.FromPanic(e.curStage, node, v)
				e.failMu.Lock()
				e.failed[node] = true
				e.res.Quarantined = append(e.res.Quarantined, node)
				e.res.Diags = append(e.res.Diags, d)
				e.failMu.Unlock()
			}
		}()
		fn(node)
	}
	if e.workers == nil || len(nodes) <= 1 {
		for _, n := range nodes {
			guarded(n)
		}
		return
	}
	e.workers.run(nodes, guarded)
}

// warnf records a simulation warning. Phases are sequential, so the
// append needs no lock; parallel phases buffer their own warnings.
func (e *Engine) warnf(format string, args ...any) {
	e.res.Warnings = append(e.res.Warnings, fmt.Sprintf(format, args...))
}

// ownerOf returns the devices owning an IP within a VRF.
func (e *Engine) ownerOf(a ip4.Addr) []ifaceRef { return e.ipOwner[a] }

// connIface returns the active interface on node whose subnet contains a,
// restricted to the given VRF. Scans the precomputed per-VRF prefix index
// (sorted interface order, so longest-match ties keep their historical
// first-interface winner).
func (e *Engine) connIface(node, vrfName string, a ip4.Addr) (string, bool) {
	best := ""
	bestLen := -1
	for _, en := range e.connIdx[node][vrfName] {
		if en.prefix.Contains(a) && int(en.prefix.Len) > bestLen {
			best, bestLen = en.iface, int(en.prefix.Len)
		}
	}
	return best, bestLen >= 0
}

// neighborFor returns the device at the far end of (node, iface) that owns
// the next-hop IP nh (or the unique far end when nh is zero).
func (e *Engine) neighborFor(node, iface string, nh ip4.Addr) string {
	edges := e.topo.EdgesFrom(node, iface)
	if nh == 0 {
		if len(edges) == 1 {
			return edges[0].Node2
		}
		return ""
	}
	for _, ed := range edges {
		rd := e.net.Devices[ed.Node2]
		ri := rd.Interfaces[ed.Iface2]
		if ri == nil {
			continue
		}
		for _, p := range ri.Addresses {
			if p.Addr == nh {
				return ed.Node2
			}
		}
	}
	return ""
}
