package dataplane

// Persistence for clean data-plane results: the disk-cache tier of the
// staged pipeline stores converged simulations across process restarts,
// so a warm-restarted service skips the most expensive stage entirely.
//
// The format dumps exactly the post-convergence state the rest of the
// engine observes — per-VRF best-route sets (which NodeFingerprint and
// StateHash are defined over), resolved FIB entries, BGP sessions, and
// convergence metadata — and rebuilds live structures on load: RIBs are
// re-merged under the same comparators, FIBs re-inserted, the topology
// re-inferred from the (deterministic) network model, and NodeState
// device pointers re-linked into the decoded network. Degraded results
// (cancelled, quarantined, diagnostics) are rejected at marshal time:
// the disk tier must never let a transient failure impersonate a
// converged truth after a restart.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"repro/internal/config"
	"repro/internal/fib"
	"repro/internal/routing"
	"repro/internal/topo"
)

// persistVersion guards the gob schema; bump on any layout change so
// stale disk entries decode-fail (and get recomputed) instead of
// misloading. v2 added the failure-scenario Suppression (the unmarshal
// path must re-apply the topology mask, not re-infer the full topology).
const persistVersion = 2

type persistVRF struct {
	Name          string
	MultipathEBGP bool
	MultipathIBGP bool
	Conn          []routing.Route
	Stat          []routing.Route
	OSPF          []routing.Route
	BGP           []routing.Route
	Main          []routing.Route
	FIB           []fib.Entry
	HasFIB        bool
}

type persistNode struct {
	Name string
	VRFs []persistVRF
}

type persistSession struct {
	Session Session
}

type persistResult struct {
	Version       int
	Network       *config.Network
	Nodes         []persistNode
	Sessions      []persistSession
	Converged     bool
	Oscillation   bool
	Cycle         *CycleInfo
	IGPIterations int
	BGPIterations int
	OuterRounds   int
	Warnings      []string
	Suppress      Suppression
}

// MarshalResult encodes a clean result for the persistent cache tier.
// Degraded results (the same set the in-memory tier refuses to cache)
// return an error.
func MarshalResult(r *Result) ([]byte, error) {
	if r == nil {
		return nil, fmt.Errorf("dataplane: marshal of nil result")
	}
	if r.Degraded() || len(r.Quarantined) > 0 {
		return nil, fmt.Errorf("dataplane: refusing to persist a degraded result")
	}
	p := persistResult{
		Version:       persistVersion,
		Network:       r.Network,
		Converged:     r.Converged,
		Oscillation:   r.Oscillation,
		Cycle:         r.Cycle,
		IGPIterations: r.IGPIterations,
		BGPIterations: r.BGPIterations,
		OuterRounds:   r.OuterRounds,
		Warnings:      r.Warnings,
		Suppress:      r.Suppress,
	}
	names := make([]string, 0, len(r.Nodes))
	for n := range r.Nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		ns := r.Nodes[name]
		pn := persistNode{Name: name}
		for _, vn := range sortedVRFNames(ns) {
			vs := ns.VRFs[vn]
			pv := persistVRF{
				Name:          vn,
				MultipathEBGP: vs.multipathEBGP,
				MultipathIBGP: vs.multipathIBGP,
				Conn:          vs.ConnRIB.AllBest(),
				Stat:          vs.StatRIB.AllBest(),
				OSPF:          vs.OSPFRIB.AllBest(),
				BGP:           vs.BGPRIB.AllBest(),
				Main:          vs.Main.AllBest(),
			}
			if vs.FIB != nil {
				pv.FIB = vs.FIB.Entries()
				pv.HasFIB = true
			}
			pn.VRFs = append(pn.VRFs, pv)
		}
		p.Nodes = append(p.Nodes, pn)
	}
	for _, s := range r.Sessions {
		p.Sessions = append(p.Sessions, persistSession{Session: *s})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&p); err != nil {
		return nil, fmt.Errorf("dataplane: marshal: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalResult rebuilds a live Result from MarshalResult bytes. The
// rebuilt result answers every post-convergence consumer identically:
// best-route sets, FIB lookups, node fingerprints, session status, and
// the inferred topology all match the originally computed result.
func UnmarshalResult(b []byte) (*Result, error) {
	var p persistResult
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&p); err != nil {
		return nil, fmt.Errorf("dataplane: unmarshal: %w", err)
	}
	if p.Version != persistVersion {
		return nil, fmt.Errorf("dataplane: artifact version %d, want %d", p.Version, persistVersion)
	}
	if p.Network == nil {
		return nil, fmt.Errorf("dataplane: artifact has no network")
	}
	clock := &routing.Clock{}
	r := &Result{
		Network:       p.Network,
		Topology:      topo.Infer(p.Network).Mask(p.Suppress.Links, p.Suppress.Nodes),
		Suppress:      p.Suppress,
		Nodes:         make(map[string]*NodeState, len(p.Nodes)),
		Pool:          routing.NewPool(),
		Converged:     p.Converged,
		Oscillation:   p.Oscillation,
		Cycle:         p.Cycle,
		IGPIterations: p.IGPIterations,
		BGPIterations: p.BGPIterations,
		OuterRounds:   p.OuterRounds,
		Warnings:      p.Warnings,
	}
	for _, pn := range p.Nodes {
		ns := &NodeState{Device: p.Network.Devices[pn.Name], VRFs: make(map[string]*VRFState)}
		for _, pv := range pn.VRFs {
			vs := &VRFState{
				Name:          pv.Name,
				ConnRIB:       routing.NewRIB(routing.ConnectedComparator, clock),
				StatRIB:       routing.NewRIB(routing.MainComparator, clock),
				OSPFRIB:       routing.NewRIB(routing.OSPFComparator, clock),
				Main:          routing.NewRIB(routing.MainComparator, clock),
				bgpOriginated: make(map[routing.Key]bool),
				ospfExternal:  make(map[routing.Key]bool),
				multipathEBGP: pv.MultipathEBGP,
				multipathIBGP: pv.MultipathIBGP,
			}
			// The BGP decision process needs the engine's comparator; a
			// zero-options engine shell supplies it (clocks enabled, the
			// persisted default — clean results only exist post-convergence,
			// where the comparator is only consulted to re-rank the already
			// winning routes being re-merged here).
			vs.BGPRIB = routing.NewRIB((&Engine{}).bgpCmp(vs), clock)
			mergeAll := func(rib *routing.RIB, routes []routing.Route) {
				for _, rt := range routes {
					rib.Merge(rt)
				}
				rib.TakeDelta() // rebuild deltas are not announcements
			}
			mergeAll(vs.ConnRIB, pv.Conn)
			mergeAll(vs.StatRIB, pv.Stat)
			mergeAll(vs.OSPFRIB, pv.OSPF)
			mergeAll(vs.BGPRIB, pv.BGP)
			mergeAll(vs.Main, pv.Main)
			if pv.HasFIB {
				f := fib.New()
				for _, e := range pv.FIB {
					f.Add(e)
				}
				vs.FIB = f
			}
			ns.VRFs[pv.Name] = vs
		}
		r.Nodes[pn.Name] = ns
	}
	for i := range p.Sessions {
		s := p.Sessions[i].Session
		r.Sessions = append(r.Sessions, &s)
		if ns := r.Nodes[s.LocalNode]; ns != nil {
			if vs := ns.VRFs[s.LocalVRF]; vs != nil {
				vs.Sessions = append(vs.Sessions, &s)
			}
		}
	}
	return r, nil
}
