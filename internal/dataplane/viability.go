package dataplane

import (
	"repro/internal/acl"
	"repro/internal/config"
	"repro/internal/hdr"
	"repro/internal/ip4"
)

// reachResult is the outcome of a lightweight forwarding walk.
type reachResult struct {
	delivered bool
	reason    string // when not delivered
}

// walkPacket pushes a concrete packet from (node, vrf) through FIBs and
// interface ACLs until it is delivered to a device owning the destination
// IP, dropped, denied, or it exits the modeled network. It is the
// data-plane-state probe used for BGP session viability (paper §4.1.1: a
// session "depends on a successful TCP connection, which can be prevented
// by misconfigured ACLs") — a restricted sibling of the full traceroute
// engine.
func (e *Engine) walkPacket(node, vrfName string, p hdr.Packet) reachResult {
	const maxHops = 64
	cur, curVRF := node, vrfName
	for hop := 0; hop < maxHops; hop++ {
		d := e.net.Devices[cur]
		vs := e.vrf(cur, curVRF)
		// Delivered if this device owns the destination IP in this VRF.
		if ref := e.ownerAt(cur, curVRF, p.DstIP); ref != "" {
			return reachResult{delivered: true}
		}
		if vs.FIB == nil {
			return reachResult{reason: "no FIB at " + cur}
		}
		entry := vs.FIB.Lookup(p.DstIP)
		if entry == nil {
			return reachResult{reason: "no route at " + cur}
		}
		// Deterministically take the first next hop (viability only needs
		// one live path; ECMP branches share fate for session traffic in
		// our model).
		nh := entry.NextHops[0]
		if nh.Drop {
			return reachResult{reason: "null-routed at " + cur}
		}
		// Egress ACL.
		oi := d.Interfaces[nh.Iface]
		if oi == nil {
			return reachResult{reason: "missing out-interface at " + cur}
		}
		if denied, name := e.aclDenies(d, oi.OutACL, p); denied {
			return reachResult{reason: "denied by egress " + name + " at " + cur}
		}
		if nh.Node == "" {
			// Find neighbor by destination IP on the connected subnet.
			next := e.neighborFor(cur, nh.Iface, firstNonZero(nh.IP, p.DstIP))
			if next == "" {
				return reachResult{reason: "exits network at " + cur}
			}
			nh.Node = next
		}
		// Ingress ACL at the neighbor.
		nd := e.net.Devices[nh.Node]
		inIface := e.ingressIface(cur, nh.Iface, nh.Node)
		if inIface != "" {
			ii := nd.Interfaces[inIface]
			if ii != nil {
				if denied, name := e.aclDenies(nd, ii.InACL, p); denied {
					return reachResult{reason: "denied by ingress " + name + " at " + nh.Node}
				}
				curVRF = ii.VRFOrDefault()
			}
		}
		cur = nh.Node
	}
	return reachResult{reason: "hop limit (loop?)"}
}

func firstNonZero(a, b ip4.Addr) ip4.Addr {
	if a != 0 {
		return a
	}
	return b
}

// ownerAt returns the interface name if (node, vrf) owns addr.
func (e *Engine) ownerAt(node, vrfName string, addr ip4.Addr) string {
	for _, ref := range e.ipOwner[addr] {
		if ref.node == node && ref.vrf == vrfName {
			return ref.iface
		}
	}
	return ""
}

// ingressIface returns the interface on toNode at the far end of
// (fromNode, fromIface).
func (e *Engine) ingressIface(fromNode, fromIface, toNode string) string {
	for _, ed := range e.topo.EdgesFrom(fromNode, fromIface) {
		if ed.Node2 == toNode {
			return ed.Iface2
		}
	}
	return ""
}

// aclDenies evaluates the named ACL against the packet; an undefined ACL
// reference permits (the common IOS behavior) and is separately reported by
// the undefined-reference analysis.
func (e *Engine) aclDenies(d *config.Device, name string, p hdr.Packet) (bool, string) {
	if name == "" {
		return false, ""
	}
	a, ok := d.ACLs[name]
	if !ok {
		return false, name
	}
	if a.Eval(p).Action == acl.Deny {
		return true, name
	}
	return false, name
}

// sessionViable checks TCP/179 reachability in both directions between the
// session endpoints over the current partial data plane.
func (e *Engine) sessionViable(s *Session) (bool, string) {
	fwd := e.walkPacket(s.LocalNode, s.LocalVRF, hdr.Packet{
		SrcIP: s.LocalIP, DstIP: s.PeerIP,
		Protocol: hdr.ProtoTCP, DstPort: 179, SrcPort: 41000,
	})
	if !fwd.delivered {
		return false, "forward: " + fwd.reason
	}
	rev := e.walkPacket(s.PeerNode, s.PeerVRF, hdr.Packet{
		SrcIP: s.PeerIP, DstIP: s.LocalIP,
		Protocol: hdr.ProtoTCP, SrcPort: 179, DstPort: 41000,
		TCPFlags: hdr.FlagSYN | hdr.FlagACK,
	})
	if !rev.delivered {
		return false, "reverse: " + rev.reason
	}
	return true, ""
}
