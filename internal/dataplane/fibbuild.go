package dataplane

import (
	"repro/internal/config"
	"repro/internal/fib"
	"repro/internal/ip4"
)

// buildFIBs converts every VRF's main RIB into a FIB, resolving recursive
// next hops against connected interfaces and the topology.
func (e *Engine) buildFIBs() {
	e.forEachVRF(func(node string, d *config.Device, cv *config.VRF, vs *VRFState) {
		res := fib.Resolver{
			IfaceForConnected: func(a ip4.Addr) (string, bool) {
				return e.connIface(node, cv.Name, a)
			},
			NodeForNextHop: func(iface string, nh ip4.Addr) string {
				return e.neighborFor(node, iface, nh)
			},
		}
		f, unresolved := fib.BuildFromRIB(vs.Main, res)
		for _, rt := range unresolved {
			e.warnf("%s/%s: route %v has unresolvable next hop", node, cv.Name, rt)
		}
		vs.FIB = f
	})
}
