package dataplane

import (
	"fmt"

	"repro/internal/diag"
	"repro/internal/faults"
	"repro/internal/fib"
	"repro/internal/ip4"
)

// buildFIBs converts every VRF's main RIB into a FIB, resolving recursive
// next hops against connected interfaces and the topology. Devices build
// in parallel on the engine's worker pool — each build reads only the
// device's own RIB plus immutable config/topology, and writes only its own
// VRF states. Warnings are buffered per device and appended in device
// order so the report is deterministic.
func (e *Engine) buildFIBs() {
	e.curStage = diag.StageFIB
	names := e.names
	warnings := make([][]string, len(names))
	idx := e.nameIdx
	e.runPhase("fib", names, func(node string) {
		faults.Fire("fib", node)
		ns := e.nodes[node]
		var warns []string
		for _, vn := range sortedVRFNames(ns) {
			vs := ns.VRFs[vn]
			res := fib.Resolver{
				IfaceForConnected: func(a ip4.Addr) (string, bool) {
					return e.connIface(node, vn, a)
				},
				NodeForNextHop: func(iface string, nh ip4.Addr) string {
					return e.neighborFor(node, iface, nh)
				},
			}
			f, unresolved := fib.BuildFromRIB(vs.Main, res)
			for _, rt := range unresolved {
				warns = append(warns, fmt.Sprintf("%s/%s: route %v has unresolvable next hop", node, vn, rt))
			}
			vs.FIB = f
		}
		warnings[idx[node]] = warns
	})
	for _, ws := range warnings {
		e.res.Warnings = append(e.res.Warnings, ws...)
	}
}
