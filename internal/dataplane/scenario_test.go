package dataplane

import (
	"testing"

	"repro/internal/ip4"
	"repro/internal/topo"
)

// chainLink23 is the r2<->r3 link of ebgpChain, deliberately written in
// the non-canonical orientation to exercise canonicalization.
func chainLink23() topo.Link {
	return topo.Link{Node1: "r3", Iface1: "eth0", Node2: "r2", Iface2: "eth1"}
}

func chainSession23() SessionKey {
	return MakeSessionKey("r3", ip4.MustParseAddr("10.0.23.3"), "r2", ip4.MustParseAddr("10.0.23.2"))
}

func TestSuppressLinkDown(t *testing.T) {
	r := Run(ebgpChain(), Options{Suppress: Suppression{Links: []topo.Link{chainLink23()}}})
	if !r.Converged {
		t.Fatalf("no convergence: %v", r.Warnings)
	}
	// The adjacency is gone from the inferred topology...
	if _, ok := r.Topology.EdgeFrom("r2", "eth1"); ok {
		t.Error("masked link still present in topology")
	}
	if _, ok := r.Topology.EdgeFrom("r1", "eth0"); !ok {
		t.Error("unrelated link was masked")
	}
	// ...so the r2<->r3 session cannot establish and the route stops at r2.
	for _, s := range r.Sessions {
		involved := (s.LocalNode == "r2" && s.PeerNode == "r3") ||
			(s.LocalNode == "r3" && s.PeerNode == "r2") || s.LocalNode == "r3"
		if involved && s.Up {
			t.Errorf("session over masked link is up: %v", s)
		}
	}
	if findRoute(mainRoutes(r, "r2"), "203.0.113.0/24") == nil {
		t.Error("r2 lost the route; only the r2-r3 edge should be down")
	}
	if findRoute(mainRoutes(r, "r3"), "203.0.113.0/24") != nil {
		t.Error("route crossed a masked link")
	}
}

func TestSuppressNodeDown(t *testing.T) {
	r := Run(ebgpChain(), Options{Suppress: Suppression{Nodes: []string{"r2"}}})
	if !r.Converged {
		t.Fatalf("no convergence: %v", r.Warnings)
	}
	if _, ok := r.Nodes["r2"]; ok {
		t.Error("downed node still has simulation state")
	}
	if len(r.DownNodes()) != 1 || r.DownNodes()[0] != "r2" {
		t.Errorf("DownNodes = %v, want [r2]", r.DownNodes())
	}
	if !r.DownSet()["r2"] {
		t.Error("DownSet missing r2")
	}
	for _, s := range r.Sessions {
		if s.LocalNode == "r2" {
			t.Errorf("downed node formed a session: %v", s)
		}
		if s.Up {
			t.Errorf("session through downed transit node is up: %v", s)
		}
	}
	if findRoute(mainRoutes(r, "r3"), "203.0.113.0/24") != nil {
		t.Error("route crossed a downed node")
	}
	// The survivors still compute their own state.
	if _, ok := r.Nodes["r1"]; !ok {
		t.Error("r1 missing from the run")
	}
}

func TestSuppressSessionDown(t *testing.T) {
	r := Run(ebgpChain(), Options{Suppress: Suppression{Sessions: []SessionKey{chainSession23()}}})
	if !r.Converged {
		t.Fatalf("no convergence: %v", r.Warnings)
	}
	// The underlying link is untouched...
	if _, ok := r.Topology.EdgeFrom("r2", "eth1"); !ok {
		t.Error("session suppression must not mask the link")
	}
	// ...but both directions of the session are held down with the
	// scenario reason, and the r1<->r2 session is unaffected.
	held, up := 0, 0
	for _, s := range r.Sessions {
		if s.Key() == chainSession23() {
			if s.Up || s.DownReason != ScenarioDownReason {
				t.Errorf("session not held down by scenario: %v (reason %q)", s, s.DownReason)
			}
			held++
		} else if s.Up {
			up++
		}
	}
	if held == 0 {
		t.Fatal("suppressed session never materialized")
	}
	if up == 0 {
		t.Error("unrelated r1-r2 session should stay up")
	}
	if findRoute(mainRoutes(r, "r3"), "203.0.113.0/24") != nil {
		t.Error("route crossed a held-down session")
	}
	if findRoute(mainRoutes(r, "r2"), "203.0.113.0/24") == nil {
		t.Error("r2 should still learn the route from r1")
	}
}

func TestSuppressionCanonicalAndCacheKey(t *testing.T) {
	var empty Suppression
	if got := empty.CacheKey(); got != "" {
		t.Errorf("empty suppression key = %q, want \"\"", got)
	}
	a := Suppression{
		Links:    []topo.Link{chainLink23(), chainLink23()},
		Nodes:    []string{"r2", "r2"},
		Sessions: []SessionKey{chainSession23()},
	}
	b := Suppression{
		Links:    []topo.Link{{Node1: "r2", Iface1: "eth1", Node2: "r3", Iface2: "eth0"}},
		Nodes:    []string{"r2"},
		Sessions: []SessionKey{{Node1: "r3", IP1: ip4.MustParseAddr("10.0.23.3"), Node2: "r2", IP2: ip4.MustParseAddr("10.0.23.2")}},
	}
	if a.CacheKey() != b.CacheKey() {
		t.Errorf("orientation/duplicates changed the key:\n a=%s\n b=%s", a.CacheKey(), b.CacheKey())
	}
	c := a.Canonical()
	if len(c.Links) != 1 || len(c.Nodes) != 1 || len(c.Sessions) != 1 {
		t.Errorf("canonical did not dedup: %+v", c)
	}
	if c.Links[0].Node1 != "r2" {
		t.Errorf("link not reoriented: %v", c.Links[0])
	}
	if c.Sessions[0].Node1 != "r2" {
		t.Errorf("session key not reoriented: %v", c.Sessions[0])
	}
	// Merge unions canonically.
	m := Suppression{Nodes: []string{"r1"}}.Merge(a)
	if len(m.Nodes) != 2 || m.Nodes[0] != "r1" || m.Nodes[1] != "r2" {
		t.Errorf("merge wrong: %+v", m.Nodes)
	}
}

func TestSuppressionPersistRoundTrip(t *testing.T) {
	sup := Suppression{Links: []topo.Link{chainLink23()}}
	r := Run(ebgpChain(), Options{Suppress: sup})
	if r.Degraded() {
		t.Fatalf("suppressed run degraded: %v", r.Diags)
	}
	b, err := MarshalResult(r)
	if err != nil {
		t.Fatalf("MarshalResult: %v", err)
	}
	got, err := UnmarshalResult(b)
	if err != nil {
		t.Fatalf("UnmarshalResult: %v", err)
	}
	// The decoded result must re-apply the mask: a raw re-Infer would
	// resurrect the failed adjacency.
	if _, ok := got.Topology.EdgeFrom("r2", "eth1"); ok {
		t.Error("decode resurrected the masked link")
	}
	if got.Suppress.CacheKey() != r.Suppress.CacheKey() {
		t.Errorf("suppression not persisted: %q != %q", got.Suppress.CacheKey(), r.Suppress.CacheKey())
	}
	for n := range r.Nodes {
		if got.NodeFingerprint(n) != r.NodeFingerprint(n) {
			t.Errorf("node %s fingerprint changed across round trip", n)
		}
	}
}
