package config

import (
	"fmt"
	"regexp"
	"strings"
	"sync"

	"repro/internal/ip4"
)

// Action is permit or deny in policy structures.
type Action uint8

// Policy actions.
const (
	Permit Action = iota
	Deny
)

func (a Action) String() string {
	if a == Permit {
		return "permit"
	}
	return "deny"
}

// RouteMap is an ordered list of clauses evaluated first-match. Route maps
// are the paper's example of constructs that defeated Datalog (Lesson 1:
// "route maps can use regular expressions and arithmetic").
type RouteMap struct {
	Name    string
	Clauses []RouteMapClause
}

// RouteMapClause is one sequence entry.
type RouteMapClause struct {
	Seq     int
	Action  Action
	Matches []Match
	Sets    []Set
}

// MatchKind enumerates route-map match conditions.
type MatchKind uint8

// Match kinds.
const (
	MatchPrefixList MatchKind = iota
	MatchCommunityList
	MatchASPathList
	MatchMetric
	MatchTag
	MatchSourceProtocol // used by redistribution policies
)

// Match is one match condition; semantics depend on Kind.
type Match struct {
	Kind  MatchKind
	Name  string // list name for *List kinds
	Value uint32 // metric/tag value
	Proto string // source protocol name for MatchSourceProtocol
}

// SetKind enumerates route-map set actions.
type SetKind uint8

// Set kinds.
const (
	SetLocalPref SetKind = iota
	SetMetric
	SetMetricAdd // "set metric +N": the arithmetic case from Lesson 1
	SetCommunity // replace communities
	SetCommunityAdditive
	SetASPathPrepend
	SetNextHop
	SetWeight
	SetTag
	SetOriginIGP
	SetOriginIncomplete
)

// Set is one set action; semantics depend on Kind.
type Set struct {
	Kind        SetKind
	Value       uint32   // numeric argument
	Communities []uint32 // for community sets
	PrependASN  uint32
	PrependN    int
	NextHop     ip4.Addr
}

// PrefixList filters prefixes with optional ge/le length bounds.
type PrefixList struct {
	Name    string
	Entries []PrefixListEntry
}

// PrefixListEntry is one prefix-list line.
type PrefixListEntry struct {
	Seq    int
	Action Action
	Prefix ip4.Prefix
	// Ge/Le bound the matched prefix length; 0 means unset. With both
	// unset the entry matches exactly Prefix.Len.
	Ge, Le uint8
}

// Matches reports whether the entry matches prefix p, per standard
// ip prefix-list semantics.
func (e PrefixListEntry) Matches(p ip4.Prefix) bool {
	if !e.Prefix.ContainsPrefix(p) {
		return false
	}
	lo, hi := e.Prefix.Len, e.Prefix.Len
	if e.Ge != 0 {
		lo = e.Ge
		hi = 32
	}
	if e.Le != 0 {
		hi = e.Le
		if e.Ge == 0 {
			lo = e.Prefix.Len
		}
	}
	return p.Len >= lo && p.Len <= hi
}

// Permits evaluates the prefix list against p, first-match with implicit
// deny.
func (pl *PrefixList) Permits(p ip4.Prefix) bool {
	for _, e := range pl.Entries {
		if e.Matches(p) {
			return e.Action == Permit
		}
	}
	return false
}

// CommunityList matches community sets by regular expression over the
// "asn:value" rendering (Cisco expanded community-list semantics).
type CommunityList struct {
	Name    string
	Entries []RegexEntry
}

// ASPathList matches AS paths by regular expression over the
// space-separated ASN rendering.
type ASPathList struct {
	Name    string
	Entries []RegexEntry
}

// RegexEntry is one permit/deny regex line.
type RegexEntry struct {
	Action Action
	Regex  string
	once   sync.Once
	re     *regexp.Regexp
	reErr  error
}

// Compile translates the vendor-style regex to a Go regexp. The Cisco "_"
// metacharacter matches a delimiter (start, end, or space). Compilation is
// cached under a sync.Once: policy evaluation runs concurrently across
// same-color nodes that can share a device's lists.
func (e *RegexEntry) Compile() (*regexp.Regexp, error) {
	e.once.Do(func() {
		translated := strings.ReplaceAll(e.Regex, "_", "(^| |$)")
		e.re, e.reErr = regexp.Compile(translated)
	})
	return e.re, e.reErr
}

// Matches reports whether s matches any permit entry before a deny entry
// matches (first-match, implicit deny). Malformed regexes never match
// (with the parse layer having already warned).
func matchRegexList(entries []RegexEntry, s string) bool {
	for i := range entries {
		re, err := entries[i].Compile()
		if err != nil {
			continue
		}
		if re.MatchString(s) {
			return entries[i].Action == Permit
		}
	}
	return false
}

// MatchesPath evaluates the AS-path list against a rendered path.
func (l *ASPathList) MatchesPath(rendered string) bool {
	return matchRegexList(l.Entries, rendered)
}

// MatchesCommunities evaluates the community list: it permits if any
// community's rendering matches a permit entry (standard Cisco "any
// community matches" semantics for expanded lists).
func (l *CommunityList) MatchesCommunities(rendered []string) bool {
	for _, s := range rendered {
		if matchRegexList(l.Entries, s) {
			return true
		}
	}
	return false
}

func (m Match) String() string {
	switch m.Kind {
	case MatchPrefixList:
		return "match ip address prefix-list " + m.Name
	case MatchCommunityList:
		return "match community " + m.Name
	case MatchASPathList:
		return "match as-path " + m.Name
	case MatchMetric:
		return fmt.Sprintf("match metric %d", m.Value)
	case MatchTag:
		return fmt.Sprintf("match tag %d", m.Value)
	case MatchSourceProtocol:
		return "match source-protocol " + m.Proto
	}
	return "match ?"
}
