// Package config defines the vendor-independent (VI) configuration model —
// the normalized representation that Stage 1 of the pipeline produces from
// vendor configuration text (paper §2, Lesson 1: originally Datalog facts,
// now a native data structure).
//
// The model captures everything that affects the data plane (interfaces,
// VRFs, static routes, OSPF, BGP, routing policies, ACLs, NAT, firewall
// zones) plus the management-plane settings (NTP, DNS, syslog) that
// Lesson 5's configuration-property analyses need. It also tracks every
// reference from one structure to another, so undefined-reference and
// unused-structure analyses fall out directly.
package config

import (
	"fmt"
	"sort"

	"repro/internal/acl"
	"repro/internal/ip4"
)

// DefaultVRF is the name of the default routing instance.
const DefaultVRF = "default"

// Network is a set of parsed devices — one snapshot.
type Network struct {
	Devices  map[string]*Device
	Warnings []Warning
}

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{Devices: make(map[string]*Device)}
}

// DeviceNames returns device hostnames in sorted order.
func (n *Network) DeviceNames() []string {
	out := make([]string, 0, len(n.Devices))
	for name := range n.Devices {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Warning records a parse or conversion issue — the "long tail" of
// configuration constructs (Lesson 3) must degrade into warnings, never
// into silently wrong models.
type Warning struct {
	Device string
	Line   int
	Text   string
}

func (w Warning) String() string {
	return fmt.Sprintf("%s:%d: %s", w.Device, w.Line, w.Text)
}

// Device is one router/switch/firewall in the VI model.
type Device struct {
	Hostname string
	Vendor   string // source dialect: "ios", "junos", "vi"
	RawLines int    // configuration LoC, for Table 1 accounting

	Interfaces map[string]*Interface
	VRFs       map[string]*VRF

	ACLs           map[string]*acl.ACL
	RouteMaps      map[string]*RouteMap
	PrefixLists    map[string]*PrefixList
	CommunityLists map[string]*CommunityList
	ASPathLists    map[string]*ASPathList

	// Zone-based firewall model (paper §4.2.3).
	Zones        map[string]*Zone
	ZonePolicies []ZonePolicy
	Stateful     bool // device tracks sessions (return traffic fast path)

	// NAT rules, applied in order on the egress/ingress path.
	NATRules []NATRule

	// Management plane.
	NTPServers    []ip4.Addr
	DNSServers    []ip4.Addr
	SyslogServers []ip4.Addr

	// References from one structure to another, for undefined/unused
	// analyses (Lesson 5).
	Refs []StructureRef
}

// NewDevice returns an empty device with the default VRF created.
func NewDevice(hostname, vendor string) *Device {
	d := &Device{
		Hostname:       hostname,
		Vendor:         vendor,
		Interfaces:     make(map[string]*Interface),
		VRFs:           make(map[string]*VRF),
		ACLs:           make(map[string]*acl.ACL),
		RouteMaps:      make(map[string]*RouteMap),
		PrefixLists:    make(map[string]*PrefixList),
		CommunityLists: make(map[string]*CommunityList),
		ASPathLists:    make(map[string]*ASPathList),
		Zones:          make(map[string]*Zone),
	}
	d.VRFs[DefaultVRF] = &VRF{Name: DefaultVRF}
	return d
}

// VRF returns the named VRF, creating it if needed.
func (d *Device) VRF(name string) *VRF {
	if v, ok := d.VRFs[name]; ok {
		return v
	}
	v := &VRF{Name: name}
	d.VRFs[name] = v
	return v
}

// InterfaceNames returns interface names sorted.
func (d *Device) InterfaceNames() []string {
	out := make([]string, 0, len(d.Interfaces))
	for n := range d.Interfaces {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Interface is a L3 interface.
type Interface struct {
	Name        string
	Description string
	VRFName     string // empty = default
	Active      bool   // false = shutdown
	Addresses   []ip4.Prefix

	InACL  string // ingress filter name ("" = none)
	OutACL string // egress filter name

	Zone string // firewall zone membership ("" = none)

	OSPF *OSPFInterface

	Bandwidth uint64 // bps, for OSPF auto-cost
}

// VRFOrDefault returns the VRF name, defaulting to DefaultVRF.
func (i *Interface) VRFOrDefault() string {
	if i.VRFName == "" {
		return DefaultVRF
	}
	return i.VRFName
}

// Primary returns the first configured address, if any.
func (i *Interface) Primary() (ip4.Prefix, bool) {
	if len(i.Addresses) == 0 {
		return ip4.Prefix{}, false
	}
	return i.Addresses[0], true
}

// OSPFInterface holds per-interface OSPF settings.
type OSPFInterface struct {
	Area    uint32
	Cost    uint32 // 0 = auto from bandwidth
	Passive bool
}

// VRF is one routing instance.
type VRF struct {
	Name         string
	StaticRoutes []StaticRoute
	OSPF         *OSPFConfig
	BGP          *BGPConfig
}

// StaticRoute is a configured static route.
type StaticRoute struct {
	Prefix  ip4.Prefix
	NextHop ip4.Addr // 0 if interface-only or discard
	Iface   string   // next-hop interface ("" if IP-only)
	Drop    bool     // Null0 / discard
	AD      uint8    // 0 = default (1)
	Tag     uint32
}

// OSPFConfig is a per-VRF OSPF process.
type OSPFConfig struct {
	ProcessID    int
	RouterID     ip4.Addr // 0 = auto (highest interface IP)
	RefBandwidth uint64   // reference bandwidth for auto-cost, bps
	// Redistribution into OSPF.
	Redistribute []Redistribution
	MaxMetric    bool // stub-router advertisement (maintenance mode)
}

// BGPConfig is a per-VRF BGP process.
type BGPConfig struct {
	ASN       uint32
	RouterID  ip4.Addr // 0 = auto
	Neighbors []*BGPNeighbor
	// Networks are prefixes originated via network statements (must be in
	// the main RIB to be announced).
	Networks     []ip4.Prefix
	Redistribute []Redistribution
	// MultipathEBGP/IBGP enable ECMP across equally good BGP paths.
	MultipathEBGP bool
	MultipathIBGP bool
}

// BGPNeighbor is one configured BGP session endpoint.
type BGPNeighbor struct {
	PeerIP       ip4.Addr
	RemoteAS     uint32
	Description  string
	ImportPolicy string // route-map applied to received routes
	ExportPolicy string // route-map applied to advertised routes
	UpdateSource string // interface whose IP sources the session
	EBGPMultihop bool
	NextHopSelf  bool
	// SendCommunity controls whether communities propagate (real-world
	// default differs by vendor; parsers set it explicitly).
	SendCommunity bool
}

// Redistribution imports routes from another protocol.
type Redistribution struct {
	From     RedistSource
	RouteMap string // optional filter/transformer
	Metric   uint32 // 0 = protocol default
	// MetricType selects OSPF external type 1 or 2 (0 = default, type 2).
	MetricType uint8
}

// RedistSource identifies the source protocol of a redistribution.
type RedistSource uint8

// Redistribution sources.
const (
	RedistConnected RedistSource = iota
	RedistStatic
	RedistOSPF
	RedistBGP
)

func (s RedistSource) String() string {
	switch s {
	case RedistConnected:
		return "connected"
	case RedistStatic:
		return "static"
	case RedistOSPF:
		return "ospf"
	case RedistBGP:
		return "bgp"
	}
	return "unknown"
}

// Zone is a named set of interfaces on a zone-based firewall.
type Zone struct {
	Name       string
	Interfaces []string
}

// ZonePolicy permits traffic between zones through a filter.
type ZonePolicy struct {
	FromZone, ToZone string
	ACL              string // filter applied to inter-zone traffic ("" = permit all)
}

// NATKind distinguishes source from destination NAT.
type NATKind uint8

// NAT kinds.
const (
	SourceNAT NATKind = iota
	DestNAT
)

// NATRule translates matching packets. Rules apply in order; the first
// match wins. Source NAT applies on egress through Iface, destination NAT
// on ingress.
type NATRule struct {
	Kind     NATKind
	Iface    string // interface the rule is attached to ("" = all)
	MatchACL string // packets matching this ACL are translated
	// Pool is the translated address range (single address when Lo==Hi).
	PoolLo, PoolHi ip4.Addr
	// PortLo/PortHi optionally translate the port (PAT); 0,0 = ports kept.
	PortLo, PortHi uint16
}

// RefType classifies a structure reference.
type RefType string

// Reference types.
const (
	RefACL           RefType = "acl"
	RefRouteMap      RefType = "route-map"
	RefPrefixList    RefType = "prefix-list"
	RefCommunityList RefType = "community-list"
	RefASPathList    RefType = "as-path-list"
	RefInterface     RefType = "interface"
	RefZone          RefType = "zone"
)

// StructureRef records that some context refers to a named structure.
type StructureRef struct {
	Type    RefType
	Name    string
	Context string // human-readable usage site
}

// AddRef records a structure reference.
func (d *Device) AddRef(t RefType, name, context string) {
	if name == "" {
		return
	}
	d.Refs = append(d.Refs, StructureRef{Type: t, Name: name, Context: context})
}

// IsDefined reports whether a structure of the given type and name exists.
func (d *Device) IsDefined(t RefType, name string) bool {
	switch t {
	case RefACL:
		_, ok := d.ACLs[name]
		return ok
	case RefRouteMap:
		_, ok := d.RouteMaps[name]
		return ok
	case RefPrefixList:
		_, ok := d.PrefixLists[name]
		return ok
	case RefCommunityList:
		_, ok := d.CommunityLists[name]
		return ok
	case RefASPathList:
		_, ok := d.ASPathLists[name]
		return ok
	case RefInterface:
		_, ok := d.Interfaces[name]
		return ok
	case RefZone:
		_, ok := d.Zones[name]
		return ok
	}
	return false
}

// UndefinedRefs returns references to structures that are not defined —
// the paper's canonical example of a high-value local analysis (Lesson 5)
// and of undocumented-semantics risk (Lesson 3: "a route map that is not
// defined anywhere").
func (d *Device) UndefinedRefs() []StructureRef {
	var out []StructureRef
	for _, r := range d.Refs {
		if !d.IsDefined(r.Type, r.Name) {
			out = append(out, r)
		}
	}
	return out
}

// UnusedStructures returns defined structures that nothing references.
func (d *Device) UnusedStructures() []StructureRef {
	used := make(map[RefType]map[string]bool)
	mark := func(t RefType, n string) {
		if used[t] == nil {
			used[t] = make(map[string]bool)
		}
		used[t][n] = true
	}
	for _, r := range d.Refs {
		mark(r.Type, r.Name)
	}
	var out []StructureRef
	add := func(t RefType, n string) {
		if !used[t][n] {
			out = append(out, StructureRef{Type: t, Name: n})
		}
	}
	for n := range d.ACLs {
		add(RefACL, n)
	}
	for n := range d.RouteMaps {
		add(RefRouteMap, n)
	}
	for n := range d.PrefixLists {
		add(RefPrefixList, n)
	}
	for n := range d.CommunityLists {
		add(RefCommunityList, n)
	}
	for n := range d.ASPathLists {
		add(RefASPathList, n)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Type != out[j].Type {
			return out[i].Type < out[j].Type
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// OwnedIPs returns every (interface, address) pair on active interfaces —
// input to the duplicate-IP analysis.
func (d *Device) OwnedIPs() map[ip4.Addr][]string {
	out := make(map[ip4.Addr][]string)
	for _, name := range d.InterfaceNames() {
		i := d.Interfaces[name]
		if !i.Active {
			continue
		}
		for _, a := range i.Addresses {
			out[a.Addr] = append(out[a.Addr], i.Name)
		}
	}
	return out
}

// InterfaceForIP returns the active interface owning the given address.
func (d *Device) InterfaceForIP(a ip4.Addr) (*Interface, bool) {
	for _, name := range d.InterfaceNames() {
		i := d.Interfaces[name]
		if !i.Active {
			continue
		}
		for _, p := range i.Addresses {
			if p.Addr == a {
				return i, true
			}
		}
	}
	return nil, false
}

// ZoneOf returns the zone containing the interface, or "".
func (d *Device) ZoneOf(iface string) string {
	for _, z := range d.Zones {
		for _, i := range z.Interfaces {
			if i == iface {
				return z.Name
			}
		}
	}
	return ""
}
