package config

import (
	"testing"

	"repro/internal/ip4"
)

func TestNewDeviceHasDefaultVRF(t *testing.T) {
	d := NewDevice("r1", "ios")
	if d.VRFs[DefaultVRF] == nil {
		t.Fatal("default VRF missing")
	}
	v := d.VRF("CUST")
	if v == nil || d.VRFs["CUST"] != v {
		t.Fatal("VRF creation failed")
	}
	if d.VRF("CUST") != v {
		t.Fatal("VRF lookup should be stable")
	}
}

func TestRefsAndDefinitions(t *testing.T) {
	d := NewDevice("r1", "ios")
	d.AddRef(RefACL, "A", "iface e0")
	d.AddRef(RefRouteMap, "RM", "neighbor x")
	d.AddRef(RefACL, "", "ignored") // empty names are not recorded
	if len(d.Refs) != 2 {
		t.Fatalf("refs = %v", d.Refs)
	}
	undef := d.UndefinedRefs()
	if len(undef) != 2 {
		t.Fatalf("undefined = %v", undef)
	}
	d.ACLs["A"] = nil // defined: key presence is what matters
	d.RouteMaps["RM"] = &RouteMap{Name: "RM"}
	if got := d.UndefinedRefs(); len(got) != 0 {
		t.Fatalf("after defining both: %v", got)
	}
}

func TestUnusedStructures(t *testing.T) {
	d := NewDevice("r1", "ios")
	d.RouteMaps["USED"] = &RouteMap{Name: "USED"}
	d.RouteMaps["DEAD"] = &RouteMap{Name: "DEAD"}
	d.PrefixLists["PL"] = &PrefixList{Name: "PL"}
	d.AddRef(RefRouteMap, "USED", "neighbor")
	unused := d.UnusedStructures()
	names := map[string]bool{}
	for _, u := range unused {
		names[string(u.Type)+"/"+u.Name] = true
	}
	if !names["route-map/DEAD"] || !names["prefix-list/PL"] || names["route-map/USED"] {
		t.Errorf("unused = %v", unused)
	}
}

func TestOwnedIPsAndInterfaceForIP(t *testing.T) {
	d := NewDevice("r1", "ios")
	d.Interfaces["e0"] = &Interface{Name: "e0", Active: true,
		Addresses: []ip4.Prefix{ip4.MustParsePrefix("10.0.0.1/24")}}
	d.Interfaces["e1"] = &Interface{Name: "e1", Active: false,
		Addresses: []ip4.Prefix{ip4.MustParsePrefix("10.0.1.1/24")}}
	owned := d.OwnedIPs()
	if len(owned) != 1 {
		t.Fatalf("owned = %v (inactive must be excluded)", owned)
	}
	if i, ok := d.InterfaceForIP(ip4.MustParseAddr("10.0.0.1")); !ok || i.Name != "e0" {
		t.Errorf("InterfaceForIP = %v %v", i, ok)
	}
	if _, ok := d.InterfaceForIP(ip4.MustParseAddr("10.0.1.1")); ok {
		t.Error("inactive interface should not own IPs")
	}
}

func TestZoneOf(t *testing.T) {
	d := NewDevice("fw", "ios")
	d.Zones["inside"] = &Zone{Name: "inside", Interfaces: []string{"e0", "e1"}}
	if d.ZoneOf("e1") != "inside" {
		t.Error("ZoneOf wrong")
	}
	if d.ZoneOf("e9") != "" {
		t.Error("unzoned iface should return empty")
	}
}

func TestInterfaceHelpers(t *testing.T) {
	i := &Interface{Name: "e0"}
	if i.VRFOrDefault() != DefaultVRF {
		t.Error("empty VRF should default")
	}
	i.VRFName = "X"
	if i.VRFOrDefault() != "X" {
		t.Error("explicit VRF ignored")
	}
	if _, ok := i.Primary(); ok {
		t.Error("no addresses: Primary should be false")
	}
	i.Addresses = []ip4.Prefix{ip4.MustParsePrefix("10.0.0.1/24")}
	if p, ok := i.Primary(); !ok || p.Addr != ip4.MustParseAddr("10.0.0.1") {
		t.Error("Primary wrong")
	}
}

func TestWarningString(t *testing.T) {
	w := Warning{Device: "r1", Line: 3, Text: "boom"}
	if w.String() != "r1:3: boom" {
		t.Errorf("warning = %q", w.String())
	}
}

func TestNetworkDeviceNamesSorted(t *testing.T) {
	n := NewNetwork()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		n.Devices[name] = NewDevice(name, "vi")
	}
	got := n.DeviceNames()
	if got[0] != "alpha" || got[2] != "zeta" {
		t.Errorf("names = %v", got)
	}
}

func TestRegexEntryCompileCached(t *testing.T) {
	e := RegexEntry{Action: Permit, Regex: "_65000_"}
	re1, err := e.Compile()
	if err != nil {
		t.Fatal(err)
	}
	re2, _ := e.Compile()
	if re1 != re2 {
		t.Error("compile should cache")
	}
	if !re1.MatchString("65001 65000 65002") {
		t.Error("delimiter translation wrong")
	}
	bad := RegexEntry{Regex: "("}
	if _, err := bad.Compile(); err == nil {
		t.Error("bad regex should error")
	}
	// Malformed regexes never match.
	if matchRegexList([]RegexEntry{{Regex: "("}}, "anything") {
		t.Error("malformed regex matched")
	}
}

func TestRedistSourceString(t *testing.T) {
	if RedistConnected.String() != "connected" || RedistBGP.String() != "bgp" {
		t.Error("redist names wrong")
	}
}

func TestMatchString(t *testing.T) {
	m := Match{Kind: MatchPrefixList, Name: "PL"}
	if m.String() == "" {
		t.Error("empty match string")
	}
}
