package netgen

import (
	"fmt"

	"repro/internal/ip4"
)

// FabricParams size a 3-tier eBGP Clos fabric (spine / pod-aggregation /
// top-of-rack), the dominant data-center design in the paper's Table 1
// networks.
type FabricParams struct {
	Name      string
	Spines    int
	Pods      int
	AggPerPod int
	TorPerPod int
	// HostNetsPerTor is the number of /24 server subnets per ToR.
	HostNetsPerTor int
	// Multipath enables BGP ECMP fabric-wide.
	Multipath bool
	// EdgeACLs attaches a server-protection ACL on host-facing ports.
	EdgeACLs bool
	// ASNOffset shifts every AS number; paired fabrics use distinct
	// offsets so eBGP loop prevention does not discard cross-DC routes.
	ASNOffset uint32
	// Address pool overrides (defaults cover a single fabric).
	LinkBase, HostBase, LoopBase string
}

func (p *FabricParams) defaults() {
	if p.LinkBase == "" {
		p.LinkBase = "10.128.0.0/9"
	}
	if p.HostBase == "" {
		p.HostBase = "10.0.0.0/10"
	}
	if p.LoopBase == "" {
		p.LoopBase = "172.16.0.0/12"
	}
}

// Devices returns the total device count.
func (p FabricParams) Devices() int {
	return p.Spines + p.Pods*(p.AggPerPod+p.TorPerPod)
}

// Fabric generates the fabric snapshot. AS numbering follows the standard
// design: one AS for the spine tier, one per pod for aggs, one per ToR.
func Fabric(p FabricParams) *Snapshot {
	p.defaults()
	s := &Snapshot{Name: p.Name, Type: "data center"}
	links := newAlloc(p.LinkBase, 31)
	hosts := newAlloc(p.HostBase, 24)
	loops := newAlloc(p.LoopBase, 32)

	spineAS := 65000 + p.ASNOffset
	aggAS := func(pod int) uint32 { return 65101 + p.ASNOffset + uint32(pod) }
	torAS := func(pod, tor int) uint32 { return 4200000000 + p.ASNOffset*100000 + uint32(pod*256+tor) }

	type iface struct {
		name   string
		prefix ip4.Prefix
		peerIP ip4.Addr
		peerAS uint32
		desc   string
	}
	type dev struct {
		name     string
		asn      uint32
		loopback ip4.Prefix
		fabric   []iface
		hostNets []ip4.Prefix
	}

	spines := make([]*dev, p.Spines)
	for i := range spines {
		spines[i] = &dev{name: fmt.Sprintf("%s-spine%02d", p.Name, i+1), asn: spineAS, loopback: loops.alloc()}
	}
	var aggs, tors []*dev
	for pod := 0; pod < p.Pods; pod++ {
		podAggs := make([]*dev, p.AggPerPod)
		for a := range podAggs {
			podAggs[a] = &dev{
				name: fmt.Sprintf("%s-p%02d-agg%d", p.Name, pod+1, a+1),
				asn:  aggAS(pod), loopback: loops.alloc(),
			}
			// Connect to every spine.
			for si, sp := range spines {
				link := links.alloc()
				aIP, sIP := link.First(), link.Last()
				podAggs[a].fabric = append(podAggs[a].fabric, iface{
					name:   fmt.Sprintf("up%d", si+1),
					prefix: ip4.Prefix{Addr: aIP, Len: 31},
					peerIP: sIP, peerAS: spineAS,
					desc: "to " + sp.name,
				})
				sp.fabric = append(sp.fabric, iface{
					name:   fmt.Sprintf("down%d", len(sp.fabric)+1),
					prefix: ip4.Prefix{Addr: sIP, Len: 31},
					peerIP: aIP, peerAS: podAggs[a].asn,
					desc: "to " + podAggs[a].name,
				})
			}
		}
		for t := 0; t < p.TorPerPod; t++ {
			tor := &dev{
				name: fmt.Sprintf("%s-p%02d-tor%02d", p.Name, pod+1, t+1),
				asn:  torAS(pod, t), loopback: loops.alloc(),
			}
			for a, agg := range podAggs {
				link := links.alloc()
				tIP, aIP := link.First(), link.Last()
				tor.fabric = append(tor.fabric, iface{
					name:   fmt.Sprintf("up%d", a+1),
					prefix: ip4.Prefix{Addr: tIP, Len: 31},
					peerIP: aIP, peerAS: agg.asn,
					desc: "to " + agg.name,
				})
				agg.fabric = append(agg.fabric, iface{
					name:   fmt.Sprintf("down%d", len(agg.fabric)-p.Spines+1),
					prefix: ip4.Prefix{Addr: aIP, Len: 31},
					peerIP: tIP, peerAS: tor.asn,
					desc: "to " + tor.name,
				})
			}
			for h := 0; h < p.HostNetsPerTor; h++ {
				tor.hostNets = append(tor.hostNets, hosts.alloc())
			}
			tors = append(tors, tor)
		}
		aggs = append(aggs, podAggs...)
	}

	emit := func(d *dev, isTor bool) DeviceText {
		c := &iosConfig{}
		c.line("hostname %s", d.name)
		c.bang()
		c.line("interface Loopback0")
		c.line(" ip address %s %s", d.loopback.Addr, mask(32))
		c.bang()
		for _, f := range d.fabric {
			c.line("interface %s", f.name)
			c.line(" description %s", f.desc)
			c.line(" ip address %s %s", f.prefix.Addr, mask(31))
			c.bang()
		}
		for h, hn := range d.hostNets {
			c.line("interface host%d", h+1)
			c.line(" description servers")
			gw := hn.First() + 1
			c.line(" ip address %s %s", gw, mask(24))
			if p.EdgeACLs {
				c.line(" ip access-group SERVER_PROTECT out")
			}
			c.bang()
		}
		if p.EdgeACLs && isTor {
			c.line("ip access-list extended SERVER_PROTECT")
			c.line(" deny tcp any any eq 23")
			c.line(" deny udp any any eq 161")
			c.line(" permit tcp any gt 1023 any established")
			c.line(" permit tcp any any eq 22")
			c.line(" permit tcp any any eq 80")
			c.line(" permit tcp any any eq 443")
			c.line(" permit udp any any")
			c.line(" permit icmp any any")
			c.bang()
		}
		c.line("router bgp %d", d.asn)
		c.line(" bgp router-id %s", d.loopback.Addr)
		if p.Multipath {
			c.line(" maximum-paths 16")
		}
		c.line(" network %s mask %s", d.loopback.First(), mask(32))
		for _, hn := range d.hostNets {
			c.line(" network %s mask %s", hn.First(), mask(24))
		}
		for _, f := range d.fabric {
			c.line(" neighbor %s remote-as %d", f.peerIP, f.peerAS)
			c.line(" neighbor %s description %s", f.peerIP, f.desc)
			c.line(" neighbor %s send-community", f.peerIP)
		}
		c.bang()
		// Loopback and host networks must be in the RIB for the network
		// statements; connected covers them. Host nets also get a
		// static null fallback so aggregates stay stable.
		iosMgmt(c, "192.0.2.10", "192.0.2.11")
		c.line("end")
		return DeviceText{Hostname: d.name, Dialect: IOS, Text: c.b.String()}
	}

	for _, d := range spines {
		s.Devices = append(s.Devices, emit(d, false))
	}
	for _, d := range aggs {
		s.Devices = append(s.Devices, emit(d, false))
	}
	for _, d := range tors {
		s.Devices = append(s.Devices, emit(d, true))
	}
	return s
}

// PairedDC generates two half-size fabrics joined by eBGP data-center
// interconnect links between their spines ("two nearby data centers that
// provide backup connectivity to each other", Table 1).
func PairedDC(name string, half FabricParams) *Snapshot {
	a := half
	a.Name = name + "a"
	a.LinkBase, a.HostBase, a.LoopBase = "10.128.0.0/10", "10.0.0.0/11", "172.16.0.0/13"
	b := half
	b.Name = name + "b"
	b.ASNOffset = half.ASNOffset + 500
	b.LinkBase, b.HostBase, b.LoopBase = "10.192.0.0/10", "10.32.0.0/11", "172.24.0.0/13"
	sa, sb := Fabric(a), Fabric(b)
	out := &Snapshot{Name: name, Type: "paired DCs"}
	out.Devices = append(out.Devices, sa.Devices...)
	out.Devices = append(out.Devices, sb.Devices...)
	// Join spine i of A to spine i of B with a /31 and an eBGP session.
	dci := newAlloc("192.168.240.0/20", 31)
	for i := 0; i < half.Spines; i++ {
		link := dci.alloc()
		ipA, ipB := link.First(), link.Last()
		aName := fmt.Sprintf("%s-spine%02d", a.Name, i+1)
		bName := fmt.Sprintf("%s-spine%02d", b.Name, i+1)
		appendIOS(out, aName, func(c *iosConfig) {
			c.line("interface dci%d", i+1)
			c.line(" description to %s", bName)
			c.line(" ip address %s %s", ipA, mask(31))
			c.bang()
			c.line("router bgp %d", 65000+half.ASNOffset)
			c.line(" neighbor %s remote-as %d", ipB, 65000+half.ASNOffset+500)
		})
		appendIOS(out, bName, func(c *iosConfig) {
			c.line("interface dci%d", i+1)
			c.line(" description to %s", aName)
			c.line(" ip address %s %s", ipB, mask(31))
			c.bang()
			c.line("router bgp %d", 65000+half.ASNOffset+500)
			c.line(" neighbor %s remote-as %d", ipA, 65000+half.ASNOffset)
		})
	}
	return out
}

// appendIOS appends extra IOS config to an existing device's text.
// The parser merges repeated "router bgp" blocks by process. A hostname
// that matches no device records a snapshot warning instead of panicking;
// the overlay is skipped and the rest of the snapshot stays valid.
func appendIOS(s *Snapshot, hostname string, fn func(*iosConfig)) {
	for i := range s.Devices {
		if s.Devices[i].Hostname != hostname {
			continue
		}
		c := &iosConfig{}
		fn(c)
		// Insert before the trailing "end".
		t := s.Devices[i].Text
		if idx := len(t) - len("end\n"); idx >= 0 && t[idx:] == "end\n" {
			s.Devices[i].Text = t[:idx] + c.b.String() + "end\n"
		} else {
			s.Devices[i].Text = t + c.b.String()
		}
		return
	}
	s.Warnings = append(s.Warnings, "netgen: unknown device "+hostname+"; overlay skipped")
}
