package netgen

import (
	"strings"
	"testing"

	"repro/internal/bdd"
	"repro/internal/dataplane"
	"repro/internal/fwdgraph"
	"repro/internal/reach"
	"repro/internal/routing"
)

func TestCatalogSizes(t *testing.T) {
	specs := Catalog()
	if len(specs) != 11 {
		t.Fatalf("catalog has %d networks, want 11", len(specs))
	}
	if specs[0].ExpectDevices != 75 {
		t.Errorf("NET1 must have 75 devices (Figure 3 workload), got %d", specs[0].ExpectDevices)
	}
	if specs[1].ExpectDevices != 92 {
		t.Errorf("NET2 must have 92 devices (APT comparison), got %d", specs[1].ExpectDevices)
	}
	prev := 0
	for _, sp := range specs {
		if sp.ExpectDevices < prev/2 {
			t.Errorf("%s breaks the rough size progression: %d after %d", sp.Name, sp.ExpectDevices, prev)
		}
		prev = sp.ExpectDevices
	}
	last := specs[len(specs)-1]
	if last.ExpectDevices < 2500 || last.ExpectDevices > 2800 {
		t.Errorf("NET11 should approximate the paper's 2735 devices, got %d", last.ExpectDevices)
	}
}

func TestGeneratedConfigsParseCleanly(t *testing.T) {
	for _, sp := range Catalog()[:5] {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			snap := sp.Gen()
			if got := len(snap.Devices); got != sp.ExpectDevices {
				t.Fatalf("generated %d devices, want %d", got, sp.ExpectDevices)
			}
			net, warns := snap.Parse()
			for _, w := range warns {
				t.Errorf("parse warning: %v", w)
			}
			if len(net.Devices) != sp.ExpectDevices {
				t.Fatalf("parsed %d devices", len(net.Devices))
			}
			// No undefined references in generated configs.
			for _, d := range net.Devices {
				for _, r := range d.UndefinedRefs() {
					t.Errorf("%s: undefined ref %v", d.Hostname, r)
				}
			}
			if snap.LoC() < sp.ExpectDevices*10 {
				t.Errorf("suspiciously small configs: %d LoC for %d devices", snap.LoC(), sp.ExpectDevices)
			}
		})
	}
}

func TestFabricConverges(t *testing.T) {
	snap := Fabric(FabricParams{Name: "tf", Spines: 2, Pods: 2, AggPerPod: 2, TorPerPod: 2,
		HostNetsPerTor: 1, Multipath: true, EdgeACLs: true})
	net, warns := snap.Parse()
	if len(warns) > 0 {
		t.Fatalf("warnings: %v", warns)
	}
	dp := dataplane.Run(net, dataplane.Options{Parallelism: 4})
	if !dp.Converged {
		t.Fatalf("fabric did not converge: %v", dp.Warnings)
	}
	for _, s := range dp.Sessions {
		if !s.Up {
			t.Errorf("session down: %v", s)
		}
	}
	// Every ToR must know every other ToR's host net, with ECMP across
	// both aggs.
	tor1 := dp.Nodes["tf-p01-tor01"].DefaultVRF()
	var crossPod *routing.Route
	for _, rt := range tor1.Main.AllBest() {
		if rt.Protocol == routing.EBGP && strings.HasPrefix(rt.Prefix.String(), "10.") {
			rt := rt
			crossPod = &rt
		}
	}
	if crossPod == nil {
		t.Fatal("tor1 has no eBGP host routes")
	}
	best := tor1.BGPRIB.Best(crossPod.Prefix)
	if len(best) < 2 {
		t.Errorf("expected ECMP at tor for %v, got %d paths", crossPod.Prefix, len(best))
	}
	// Symbolic check: a host behind tor p01 can reach a host behind p02.
	g := fwdgraph.New(dp)
	a := reach.New(g)
	res, ok := a.Reachability(reach.SourceLoc{Device: "tf-p01-tor01", Iface: "host1"}, bdd.True)
	if !ok {
		t.Fatal("source missing")
	}
	if res.Sinks[fwdgraph.SinkDeliveredToHost] == bdd.False {
		t.Error("no cross-fabric host delivery")
	}
}

func TestWANConverges(t *testing.T) {
	snap := WAN(WANParams{Name: "tw", Nodes: 12, CoreMesh: 4, TransitPeers: 2, Chords: 2})
	net, warns := snap.Parse()
	if len(warns) > 0 {
		t.Fatalf("warnings: %v", warns)
	}
	dp := dataplane.Run(net, dataplane.Options{})
	if !dp.Converged {
		t.Fatalf("WAN did not converge: %v", dp.Warnings)
	}
	down := 0
	for _, s := range dp.Sessions {
		if !s.Up {
			down++
			t.Logf("session down: %v", s)
		}
	}
	if down > 0 {
		t.Errorf("%d sessions down", down)
	}
	// A non-edge core router must learn the external customer prefix over
	// iBGP with next-hop-self (next hop = edge loopback or edge link IP
	// reachable via OSPF).
	r3 := dp.Nodes["tw-r003"].DefaultVRF()
	found := false
	for _, rt := range r3.Main.AllBest() {
		if rt.Protocol == routing.IBGP && strings.HasPrefix(rt.Prefix.String(), "198.18.") {
			found = true
		}
	}
	if !found {
		t.Error("core router missing iBGP customer route")
	}
}

func TestCampusConverges(t *testing.T) {
	snap := Campus(CampusParams{Name: "tc", Core: 3, Areas: 2, AccessPerArea: 2, LansPerAccess: 2})
	net, warns := snap.Parse()
	if len(warns) > 0 {
		t.Fatalf("warnings: %v", warns)
	}
	dp := dataplane.Run(net, dataplane.Options{})
	if !dp.Converged {
		t.Fatalf("campus did not converge: %v", dp.Warnings)
	}
	// An access router in area 1 must have an inter-area route to an
	// area-2 LAN and an E2 default from the edge.
	acc := dp.Nodes["tc-a01-acc01"].DefaultVRF()
	var haveIA, haveE2 bool
	for _, rt := range acc.Main.AllBest() {
		if rt.Protocol == routing.OSPFIA {
			haveIA = true
		}
		if rt.Protocol == routing.OSPFE2 && rt.Prefix.Len == 0 {
			haveE2 = true
		}
	}
	if !haveIA {
		t.Error("access router missing inter-area routes")
	}
	if !haveE2 {
		t.Error("access router missing redistributed default route")
	}
}

func TestPairedDCConverges(t *testing.T) {
	snap := PairedDC("tp", FabricParams{Spines: 2, Pods: 1, AggPerPod: 2, TorPerPod: 2, HostNetsPerTor: 1, Multipath: true})
	net, warns := snap.Parse()
	if len(warns) > 0 {
		t.Fatalf("warnings: %v", warns)
	}
	dp := dataplane.Run(net, dataplane.Options{})
	if !dp.Converged {
		t.Fatalf("paired DC did not converge: %v", dp.Warnings)
	}
	// A ToR in DC a must learn host prefixes of DC b (crossing the DCI).
	tora := dp.Nodes["tpa-p01-tor01"].DefaultVRF()
	found := false
	for _, rt := range tora.Main.AllBest() {
		if rt.Attrs != nil && strings.HasPrefix(rt.Prefix.String(), "10.32.") {
			found = true
		}
	}
	if !found {
		t.Error("cross-DC host routes missing at DC-a ToR")
	}
}

func TestLoCAccounting(t *testing.T) {
	snap := Fabric(FabricParams{Name: "x", Spines: 1, Pods: 1, AggPerPod: 1, TorPerPod: 1, HostNetsPerTor: 1})
	if snap.LoC() == 0 {
		t.Error("LoC should count lines")
	}
}
