package netgen

import (
	"fmt"
	"math/rand"

	"repro/internal/ip4"
)

// RandomParams size a seeded random OSPF network: a Hamiltonian ring (so
// the graph is always connected) plus random chords up to the requested
// average degree, with user LANs hanging off every router. The irregular
// adjacency structure is the adversarial counterpart to the regular Clos
// and campus generators — graph coloring and the parallel schedule see
// uneven degrees and long odd cycles instead of neat tiers.
type RandomParams struct {
	Name  string
	Nodes int
	// Degree is the target average adjacency degree (>= 2; the ring
	// contributes 2). Extra edges are random chords.
	Degree int
	// LansPerNode is the number of /24 user subnets per router.
	LansPerNode int
	// Seed fixes the chord selection; the same seed always yields the
	// same snapshot, so determinism tests can regenerate the topology.
	Seed int64
}

// Devices returns the device count.
func (p RandomParams) Devices() int { return p.Nodes }

// Random generates the snapshot (all IOS dialect, single OSPF area 0).
func Random(p RandomParams) *Snapshot {
	if p.Nodes < 3 {
		p.Nodes = 3
	}
	if p.Degree < 2 {
		p.Degree = 2
	}
	s := &Snapshot{Name: p.Name, Type: "random"}
	rng := rand.New(rand.NewSource(p.Seed))
	links := newAlloc("10.192.0.0/11", 31)
	lans := newAlloc("10.32.0.0/11", 24)
	loops := newAlloc("172.28.0.0/15", 32)

	type dev struct {
		c      *iosConfig
		name   string
		ifaceN int
	}
	devs := make([]*dev, p.Nodes)
	for i := range devs {
		d := &dev{c: &iosConfig{}, name: fmt.Sprintf("%s-r%03d", p.Name, i+1)}
		devs[i] = d
		lo := loops.alloc()
		d.c.line("hostname %s", d.name)
		d.c.bang()
		d.c.line("interface Loopback0")
		d.c.line(" ip address %s %s", lo.Addr, mask(32))
		d.c.line(" ip ospf area 0")
		d.c.line(" ip ospf passive")
		d.c.bang()
	}

	seen := make(map[[2]int]bool)
	addLink := func(a, b int) {
		if a == b {
			return
		}
		key := [2]int{a, b}
		if a > b {
			key = [2]int{b, a}
		}
		if seen[key] {
			return
		}
		seen[key] = true
		l := links.alloc()
		ips := [2]struct {
			d  *dev
			to string
		}{{devs[a], devs[b].name}, {devs[b], devs[a].name}}
		for i, pair := range ips {
			pair.d.ifaceN++
			pair.d.c.line("interface Gi0/%d", pair.d.ifaceN)
			pair.d.c.line(" description to %s", pair.to)
			pair.d.c.line(" ip address %s %s", l.First()+ip4.Addr(i+1), mask(31))
			pair.d.c.line(" ip ospf area 0")
			pair.d.c.bang()
		}
	}
	// Ring keeps it connected.
	for i := range devs {
		addLink(i, (i+1)%len(devs))
	}
	// Random chords up to the target degree.
	extra := (p.Degree - 2) * p.Nodes / 2
	for i := 0; i < extra; i++ {
		addLink(rng.Intn(p.Nodes), rng.Intn(p.Nodes))
	}

	for i, d := range devs {
		for k := 0; k < p.LansPerNode; k++ {
			lan := lans.alloc()
			d.c.line("interface Vlan%d", 100+k)
			d.c.line(" description user lan")
			d.c.line(" ip address %s %s", lan.First()+1, mask(24))
			d.c.line(" ip ospf area 0")
			d.c.line(" ip ospf passive")
			d.c.bang()
		}
		d.c.line("router ospf 1")
		d.c.line(" router-id %s", loopbackOf(i))
		d.c.bang()
		s.Devices = append(s.Devices, DeviceText{Hostname: d.name, Dialect: IOS, Text: d.c.b.String()})
	}
	return s
}

// loopbackOf derives the router-id from the loopback allocation order
// (172.28.0.0/15 base, /32 per router).
func loopbackOf(i int) string {
	base := ip4.MustParsePrefix("172.28.0.0/15").Addr
	return (base + ip4.Addr(i)).String()
}
