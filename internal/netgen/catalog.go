package netgen

// Spec describes one network of the benchmark suite — our synthetic
// regeneration of the paper's Table 1 inventory (the real networks are
// proprietary; sizes and types mirror the paper's spread of 75–2735
// devices across data center, paired-DC, WAN, and enterprise designs).
type Spec struct {
	Name string
	Type string
	Gen  func() *Snapshot
	// ExpectDevices is the generated device count, for Table 1.
	ExpectDevices int
}

// Catalog returns the 11-network suite. NET1 doubles as the Figure 3
// workload (it is the network the original-vs-current comparison runs on)
// and NET2 is sized at 92 devices for the §6.2 APT comparison.
func Catalog() []Spec {
	specs := []Spec{
		{Name: "NET1", Type: "enterprise", Gen: func() *Snapshot {
			return Campus(CampusParams{Name: "net1", Core: 4, Areas: 7, AccessPerArea: 9, LansPerAccess: 2})
		}},
		{Name: "NET2", Type: "data center", Gen: func() *Snapshot {
			return Fabric(FabricParams{Name: "net2", Spines: 4, Pods: 8, AggPerPod: 2, TorPerPod: 9,
				HostNetsPerTor: 2, Multipath: true, EdgeACLs: true})
		}},
		{Name: "NET3", Type: "WAN", Gen: func() *Snapshot {
			return WAN(WANParams{Name: "net3", Nodes: 140, CoreMesh: 12, TransitPeers: 8, Chords: 10})
		}},
		{Name: "NET4", Type: "paired DCs", Gen: func() *Snapshot {
			return PairedDC("net4", FabricParams{Spines: 4, Pods: 5, AggPerPod: 2, TorPerPod: 18,
				HostNetsPerTor: 1, Multipath: true})
		}},
		{Name: "NET5", Type: "enterprise", Gen: func() *Snapshot {
			return Campus(CampusParams{Name: "net5", Core: 6, Areas: 12, AccessPerArea: 20, LansPerAccess: 2})
		}},
		{Name: "NET6", Type: "data center", Gen: func() *Snapshot {
			return Fabric(FabricParams{Name: "net6", Spines: 8, Pods: 16, AggPerPod: 2, TorPerPod: 24,
				HostNetsPerTor: 1, Multipath: true, EdgeACLs: true})
		}},
		{Name: "NET7", Type: "WAN", Gen: func() *Snapshot {
			return WAN(WANParams{Name: "net7", Nodes: 500, CoreMesh: 24, TransitPeers: 16, Chords: 30})
		}},
		{Name: "NET8", Type: "enterprise", Gen: func() *Snapshot {
			return Campus(CampusParams{Name: "net8", Core: 8, Areas: 23, AccessPerArea: 29, LansPerAccess: 2})
		}},
		{Name: "NET9", Type: "data center", Gen: func() *Snapshot {
			return Fabric(FabricParams{Name: "net9", Spines: 12, Pods: 32, AggPerPod: 2, TorPerPod: 32,
				HostNetsPerTor: 1, Multipath: true})
		}},
		{Name: "NET10", Type: "paired DCs", Gen: func() *Snapshot {
			return PairedDC("net10", FabricParams{Spines: 8, Pods: 20, AggPerPod: 2, TorPerPod: 38,
				HostNetsPerTor: 1, Multipath: true})
		}},
		{Name: "NET11", Type: "data center", Gen: func() *Snapshot {
			return Fabric(FabricParams{Name: "net11", Spines: 15, Pods: 64, AggPerPod: 2, TorPerPod: 40,
				HostNetsPerTor: 1, Multipath: true})
		}},
	}
	expect := []int{
		CampusParams{Core: 4, Areas: 7, AccessPerArea: 9, LansPerAccess: 2}.Devices(),
		FabricParams{Spines: 4, Pods: 8, AggPerPod: 2, TorPerPod: 9}.Devices(),
		WANParams{Nodes: 140, TransitPeers: 8}.Devices(),
		2 * FabricParams{Spines: 4, Pods: 5, AggPerPod: 2, TorPerPod: 18}.Devices(),
		CampusParams{Core: 6, Areas: 12, AccessPerArea: 20, LansPerAccess: 2}.Devices(),
		FabricParams{Spines: 8, Pods: 16, AggPerPod: 2, TorPerPod: 24}.Devices(),
		WANParams{Nodes: 500, TransitPeers: 16}.Devices(),
		CampusParams{Core: 8, Areas: 23, AccessPerArea: 29, LansPerAccess: 2}.Devices(),
		FabricParams{Spines: 12, Pods: 32, AggPerPod: 2, TorPerPod: 32}.Devices(),
		2 * FabricParams{Spines: 8, Pods: 20, AggPerPod: 2, TorPerPod: 38}.Devices(),
		FabricParams{Spines: 15, Pods: 64, AggPerPod: 2, TorPerPod: 40}.Devices(),
	}
	for i := range specs {
		specs[i].ExpectDevices = expect[i]
	}
	return specs
}
