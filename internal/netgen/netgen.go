// Package netgen generates synthetic networks that stand in for the 11
// proprietary real networks of the paper's Table 1. Each generator emits
// genuine configuration *text* in the repository's IOS-style and
// Junos-style dialects, so benchmarks exercise the entire pipeline:
// parsing (Stage 1), data plane generation (Stage 2), and verification
// (Stage 3).
//
// The generators cover the paper's network types — data center fabrics
// (eBGP leaf/spine), paired data centers, WAN/backbone (OSPF + iBGP core,
// eBGP at the edges), and enterprise campus (multi-area OSPF, ACLs,
// statics) — across roughly the paper's size range (75–2735 devices).
package netgen

import (
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/ip4"
	"repro/internal/vendors/cisco"
	"repro/internal/vendors/juniper"
)

// Dialect selects the emitted configuration language.
type Dialect int

// Dialects.
const (
	IOS Dialect = iota
	Junos
)

// DeviceText is one device's generated configuration.
type DeviceText struct {
	Hostname string
	Dialect  Dialect
	Text     string
}

// Snapshot is a generated network: configuration files plus bookkeeping.
type Snapshot struct {
	Name    string
	Type    string
	Devices []DeviceText
	// Warnings records non-fatal generation problems (e.g. an overlay
	// targeting a device that does not exist); the snapshot is still
	// usable without the affected piece.
	Warnings []string
}

// LoC returns total configuration lines (Table 1's LoC column).
func (s *Snapshot) LoC() int {
	n := 0
	for _, d := range s.Devices {
		n += strings.Count(d.Text, "\n")
	}
	return n
}

// Parse runs Stage 1 over all device texts.
func (s *Snapshot) Parse() (*config.Network, []config.Warning) {
	net := config.NewNetwork()
	var warns []config.Warning
	for _, dt := range s.Devices {
		var d *config.Device
		var w []config.Warning
		switch dt.Dialect {
		case IOS:
			d, w = cisco.Parse(dt.Text)
		case Junos:
			d, w = juniper.Parse(dt.Text)
		}
		net.Devices[d.Hostname] = d
		warns = append(warns, w...)
	}
	return net, warns
}

// subnetAlloc hands out consecutive subnets.
type subnetAlloc struct {
	next uint32
	size uint32 // addresses per subnet
	plen uint8
}

func newAlloc(base string, plen uint8) *subnetAlloc {
	p := ip4.MustParsePrefix(base)
	return &subnetAlloc{next: uint32(p.First()), size: 1 << (32 - plen), plen: plen}
}

func (a *subnetAlloc) alloc() ip4.Prefix {
	p := ip4.Prefix{Addr: ip4.Addr(a.next), Len: a.plen}
	a.next += a.size
	return p
}

// iosConfig builds IOS-style text.
type iosConfig struct {
	b strings.Builder
}

func (c *iosConfig) line(format string, args ...any) {
	fmt.Fprintf(&c.b, format+"\n", args...)
}

func (c *iosConfig) bang() { c.b.WriteString("!\n") }

func mask(plen uint8) string {
	return ip4.Mask(plen).String()
}

// junosConfig builds Junos-style set commands.
type junosConfig struct {
	b strings.Builder
}

func (c *junosConfig) set(format string, args ...any) {
	fmt.Fprintf(&c.b, "set "+format+"\n", args...)
}

// mgmt emits standard management-plane config (NTP/syslog/DNS), shared by
// both dialects via the IOS emitter; junos devices carry it in their own
// syntax only when the generator asks.
func iosMgmt(c *iosConfig, ntp1, ntp2 string) {
	c.line("ntp server %s", ntp1)
	c.line("ntp server %s", ntp2)
	c.line("logging host 192.0.2.50")
	c.line("ip name-server 192.0.2.53")
	c.bang()
}
