package netgen

import (
	"fmt"

	"repro/internal/ip4"
)

// CampusParams size an enterprise campus: an OSPF area-0 core ring,
// distribution routers (one per non-backbone area, acting as ABRs), and
// access routers with user LANs protected by ACLs. An internet edge router
// holds a static default route redistributed into OSPF.
type CampusParams struct {
	Name string
	// Core is the number of area-0 core routers (ring).
	Core int
	// Areas is the number of non-backbone OSPF areas.
	Areas int
	// AccessPerArea is the number of access routers per area.
	AccessPerArea int
	// LansPerAccess is the number of user subnets per access router.
	LansPerAccess int
}

// Devices returns the device count (core + per-area distribution + access
// + 1 edge).
func (p CampusParams) Devices() int {
	return p.Core + p.Areas*(1+p.AccessPerArea) + 1
}

// Campus generates the campus snapshot (all IOS dialect).
func Campus(p CampusParams) *Snapshot {
	s := &Snapshot{Name: p.Name, Type: "enterprise"}
	links := newAlloc("10.64.0.0/12", 30)
	lans := newAlloc("10.0.0.0/12", 24)
	loops := newAlloc("172.30.0.0/15", 32)

	type dev struct {
		c        *iosConfig
		name     string
		ifaceN   int
		loopback ip4.Prefix
	}
	mk := func(name string, loopArea uint32) *dev {
		d := &dev{c: &iosConfig{}, name: name, loopback: loops.alloc()}
		d.c.line("hostname %s", name)
		d.c.bang()
		d.c.line("interface Loopback0")
		d.c.line(" ip address %s %s", d.loopback.Addr, mask(32))
		d.c.line(" ip ospf area %d", loopArea)
		d.c.line(" ip ospf passive")
		d.c.bang()
		return d
	}
	addLink := func(a, b *dev, area uint32, cost int) {
		l := links.alloc()
		ipA := l.First() + 1
		ipB := l.First() + 2
		for _, pair := range []struct {
			d  *dev
			ip ip4.Addr
			to string
		}{{a, ipA, b.name}, {b, ipB, a.name}} {
			pair.d.ifaceN++
			pair.d.c.line("interface Gi0/%d", pair.d.ifaceN)
			pair.d.c.line(" description to %s", pair.to)
			pair.d.c.line(" ip address %s %s", pair.ip, mask(30))
			pair.d.c.line(" ip ospf area %d", area)
			pair.d.c.line(" ip ospf cost %d", cost)
			pair.d.c.bang()
		}
	}

	cores := make([]*dev, p.Core)
	for i := range cores {
		cores[i] = mk(fmt.Sprintf("%s-core%02d", p.Name, i+1), 0)
	}
	for i := range cores {
		addLink(cores[i], cores[(i+1)%len(cores)], 0, 10)
	}

	var dists, accesses []*dev
	for a := 0; a < p.Areas; a++ {
		area := uint32(a + 1)
		dist := mk(fmt.Sprintf("%s-dist%02d", p.Name, a+1), 0)
		// Dual-home each distribution router to two core routers (ABR).
		addLink(dist, cores[a%len(cores)], 0, 10)
		addLink(dist, cores[(a+1)%len(cores)], 0, 10)
		dists = append(dists, dist)
		for j := 0; j < p.AccessPerArea; j++ {
			acc := mk(fmt.Sprintf("%s-a%02d-acc%02d", p.Name, a+1, j+1), area)
			addLink(acc, dist, area, 10)
			for k := 0; k < p.LansPerAccess; k++ {
				lan := lans.alloc()
				gw := lan.First() + 1
				acc.ifaceN++
				acc.c.line("interface Vlan%d", 100+k)
				acc.c.line(" description user lan")
				acc.c.line(" ip address %s %s", gw, mask(24))
				acc.c.line(" ip ospf area %d", area)
				acc.c.line(" ip ospf passive")
				acc.c.line(" ip access-group USER_IN in")
				acc.c.bang()
			}
			acc.c.line("ip access-list extended USER_IN")
			acc.c.line(" deny ip any 192.0.2.0 0.0.0.255")
			acc.c.line(" deny tcp any any eq 445")
			acc.c.line(" permit tcp any any established")
			acc.c.line(" permit tcp any any eq 80")
			acc.c.line(" permit tcp any any eq 443")
			acc.c.line(" permit tcp any any eq 22")
			acc.c.line(" permit udp any any eq 53")
			acc.c.line(" permit udp any gt 1023 any")
			acc.c.line(" permit icmp any any")
			acc.c.bang()
			accesses = append(accesses, acc)
		}
	}

	// Internet edge: default static redistributed into OSPF as E2.
	edge := mk(p.Name+"-edge01", 0)
	addLink(edge, cores[0], 0, 10)
	edge.ifaceN++
	edge.c.line("interface Gi0/%d", edge.ifaceN)
	edge.c.line(" description to ISP")
	edge.c.line(" ip address 203.0.113.2 255.255.255.252")
	edge.c.bang()
	edge.c.line("ip route 0.0.0.0 0.0.0.0 203.0.113.1")
	edge.c.bang()

	all := append(append(append([]*dev{}, cores...), dists...), accesses...)
	all = append(all, edge)
	for _, d := range all {
		d.c.line("router ospf 1")
		d.c.line(" router-id %s", d.loopback.Addr)
		if d == edge {
			d.c.line(" redistribute static metric 10 metric-type 2")
		}
		d.c.bang()
		iosMgmt(d.c, "192.0.2.10", "192.0.2.11")
		d.c.line("end")
		s.Devices = append(s.Devices, DeviceText{Hostname: d.name, Dialect: IOS, Text: d.c.b.String()})
	}
	return s
}
