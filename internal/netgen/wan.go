package netgen

import (
	"fmt"

	"repro/internal/ip4"
)

// WANParams size a wide-area backbone: an OSPF underlay over a ring with
// chords, an iBGP mesh among core routers (update-source loopback,
// next-hop-self), and eBGP transit peers at the edges.
type WANParams struct {
	Name string
	// Nodes is the router count; the first CoreMesh of them form the iBGP
	// full mesh and carry prefixes learned from the edges.
	Nodes    int
	CoreMesh int
	// TransitPeers is the number of external eBGP peers (extra devices),
	// attached to the first core routers.
	TransitPeers int
	// Chords adds extra OSPF links across the ring for path diversity.
	Chords int
}

// Devices returns the device count (routers + external peers).
func (p WANParams) Devices() int { return p.Nodes + p.TransitPeers }

type wanLink struct {
	peer   string
	iface  string
	prefix ip4.Prefix
}

type wanDev struct {
	name     string
	loopback ip4.Prefix
	links    []wanLink
	junos    bool
	// eBGP edge state (zero when not an edge).
	extPeerIP ip4.Addr
	extPeerAS uint32
	custNet   ip4.Prefix
}

// WAN generates the backbone snapshot. Core routers use the Junos dialect
// and the rest IOS, exercising both parsers in one network (the vendor
// diversity of Table 1).
func WAN(p WANParams) *Snapshot {
	if p.CoreMesh > p.Nodes {
		p.CoreMesh = p.Nodes
	}
	s := &Snapshot{Name: p.Name, Type: "WAN"}
	links := newAlloc("10.200.0.0/13", 31)
	loops := newAlloc("172.20.0.0/14", 32)
	custNets := newAlloc("198.18.0.0/15", 24)
	extLinks := newAlloc("192.168.128.0/18", 31)
	const localAS = uint32(64700)

	routers := make([]*wanDev, p.Nodes)
	for i := range routers {
		routers[i] = &wanDev{
			name:     fmt.Sprintf("%s-r%03d", p.Name, i+1),
			loopback: loops.alloc(),
			junos:    i < p.CoreMesh,
		}
	}
	connect := func(a, b *wanDev) {
		l := links.alloc()
		ipA, ipB := l.First(), l.Last()
		a.links = append(a.links, wanLink{peer: b.name,
			iface: fmt.Sprintf("ge-0/0/%d", len(a.links)), prefix: ip4.Prefix{Addr: ipA, Len: 31}})
		b.links = append(b.links, wanLink{peer: a.name,
			iface: fmt.Sprintf("ge-0/0/%d", len(b.links)), prefix: ip4.Prefix{Addr: ipB, Len: 31}})
	}
	for i := range routers {
		connect(routers[i], routers[(i+1)%len(routers)])
	}
	if p.Chords > 0 && p.Nodes > 4 {
		step := p.Nodes / (p.Chords + 1)
		if step < 2 {
			step = 2
		}
		for i := 0; i < p.Chords; i++ {
			a := (i * step) % p.Nodes
			b := (a + p.Nodes/2) % p.Nodes
			if a != b {
				connect(routers[a], routers[b])
			}
		}
	}

	var externals []*wanDev
	for i := 0; i < p.TransitPeers; i++ {
		edge := routers[i%p.CoreMesh]
		l := extLinks.alloc()
		edgeIP, peerIP := l.First(), l.Last()
		edge.links = append(edge.links, wanLink{peer: fmt.Sprintf("%s-ext%02d", p.Name, i+1),
			iface: fmt.Sprintf("ge-0/0/%d", len(edge.links)), prefix: ip4.Prefix{Addr: edgeIP, Len: 31}})
		edge.extPeerIP = peerIP
		edge.extPeerAS = uint32(64900 + i)
		ext := &wanDev{
			name:      fmt.Sprintf("%s-ext%02d", p.Name, i+1),
			loopback:  loops.alloc(),
			extPeerIP: edgeIP,
			extPeerAS: localAS,
			custNet:   custNets.alloc(),
		}
		ext.links = append(ext.links, wanLink{peer: edge.name, iface: "ge-0/0/0",
			prefix: ip4.Prefix{Addr: peerIP, Len: 31}})
		externals = append(externals, ext)
	}

	mesh := routers[:p.CoreMesh]
	for _, d := range routers {
		if d.junos {
			s.Devices = append(s.Devices, emitWANJunos(d, mesh, localAS))
		} else {
			s.Devices = append(s.Devices, emitWANIOS(d, mesh, localAS))
		}
	}
	for _, ext := range externals {
		s.Devices = append(s.Devices, emitWANExternal(ext))
	}
	return s
}

// emitWANJunos renders a core router: OSPF on all links and loopback,
// iBGP mesh to other cores via loopbacks, optional eBGP edge session with
// import policy (LP 120 + community) and export policy.
func emitWANJunos(d *wanDev, mesh []*wanDev, localAS uint32) DeviceText {
	c := &junosConfig{}
	c.set("system host-name %s", d.name)
	c.set("interfaces lo0 unit 0 family inet address %s/32", d.loopback.Addr)
	c.set("protocols ospf area 0 interface lo0 passive")
	for _, l := range d.links {
		c.set("interfaces %s description \"to %s\"", l.iface, l.peer)
		c.set("interfaces %s unit 0 family inet address %s/31", l.iface, l.prefix.Addr)
		c.set("protocols ospf area 0 interface %s metric 10", l.iface)
	}
	c.set("routing-options autonomous-system %d", localAS)
	c.set("routing-options router-id %s", d.loopback.Addr)
	for _, m := range mesh {
		if m.name == d.name {
			continue
		}
		c.set("protocols bgp group ibgp type internal")
		c.set("protocols bgp group ibgp neighbor %s peer-as %d", m.loopback.Addr, localAS)
	}
	c.set("protocols bgp group ibgp next-hop-self")
	c.set("protocols bgp group ibgp local-address %s", d.loopback.Addr)
	if d.extPeerIP != 0 {
		c.set("policy-options policy-statement FROM_TRANSIT term all then local-preference 120")
		c.set("policy-options policy-statement FROM_TRANSIT term all then accept")
		c.set("policy-options prefix-list LOOPS %s/32", d.loopback.Addr)
		c.set("policy-options policy-statement TO_TRANSIT term block from prefix-list LOOPS")
		c.set("policy-options policy-statement TO_TRANSIT term block then reject")
		c.set("policy-options policy-statement TO_TRANSIT term rest then accept")
		c.set("protocols bgp group transit type external")
		c.set("protocols bgp group transit import FROM_TRANSIT")
		c.set("protocols bgp group transit export TO_TRANSIT")
		c.set("protocols bgp group transit neighbor %s peer-as %d", d.extPeerIP, d.extPeerAS)
	}
	return DeviceText{Hostname: d.name, Dialect: Junos, Text: c.b.String()}
}

// emitWANIOS renders a non-core router: pure OSPF underlay.
func emitWANIOS(d *wanDev, mesh []*wanDev, localAS uint32) DeviceText {
	c := &iosConfig{}
	c.line("hostname %s", d.name)
	c.bang()
	c.line("interface Loopback0")
	c.line(" ip address %s %s", d.loopback.Addr, mask(32))
	c.line(" ip ospf area 0")
	c.line(" ip ospf passive")
	c.bang()
	for _, l := range d.links {
		c.line("interface %s", l.iface)
		c.line(" description to %s", l.peer)
		c.line(" ip address %s %s", l.prefix.Addr, mask(31))
		c.line(" ip ospf area 0")
		c.line(" ip ospf cost 10")
		c.bang()
	}
	c.line("router ospf 1")
	c.line(" router-id %s", d.loopback.Addr)
	c.bang()
	iosMgmt(c, "192.0.2.10", "192.0.2.11")
	c.line("end")
	return DeviceText{Hostname: d.name, Dialect: IOS, Text: c.b.String()}
}

// emitWANExternal renders a transit peer originating one customer prefix.
func emitWANExternal(d *wanDev) DeviceText {
	c := &iosConfig{}
	c.line("hostname %s", d.name)
	c.bang()
	c.line("interface Loopback0")
	c.line(" ip address %s %s", d.loopback.Addr, mask(32))
	c.bang()
	l := d.links[0]
	c.line("interface ext0")
	c.line(" description to %s", l.peer)
	c.line(" ip address %s %s", l.prefix.Addr, mask(31))
	c.bang()
	c.line("ip route %s %s Null0", d.custNet.First(), mask(24))
	c.bang()
	// This device's own AS is whatever the edge's remote-as says; derive
	// from the fact that it peers with localAS.
	c.line("router bgp %d", d.ownAS())
	c.line(" bgp router-id %s", d.loopback.Addr)
	c.line(" network %s mask %s", d.custNet.First(), mask(24))
	c.line(" neighbor %s remote-as %d", d.extPeerIP, d.extPeerAS)
	c.line(" neighbor %s send-community", d.extPeerIP)
	c.bang()
	c.line("end")
	return DeviceText{Hostname: d.name, Dialect: IOS, Text: c.b.String()}
}

// ownAS infers the external device's AS from its name suffix, matching the
// edge router's neighbor statement (64900 + index).
func (d *wanDev) ownAS() uint32 {
	var idx int
	fmt.Sscanf(d.name[len(d.name)-2:], "%d", &idx)
	return uint32(64900 + idx - 1)
}
