package pipeline

import (
	"fmt"
	"testing"

	"repro/internal/dataplane"
)

func TestStoreLRUAndCounters(t *testing.T) {
	s := NewStore(2)
	k1 := keyOf([]byte("a"))
	k2 := keyOf([]byte("b"))
	k3 := keyOf([]byte("c"))
	if _, ok := s.Get(k1); ok {
		t.Fatal("empty store hit")
	}
	s.Put(k1, 1)
	s.Put(k2, 2)
	if v, ok := s.Get(k1); !ok || v.(int) != 1 {
		t.Fatalf("k1 = %v, %v", v, ok)
	}
	// k2 is now least recently used; k3 evicts it.
	s.Put(k3, 3)
	if _, ok := s.Get(k2); ok {
		t.Error("k2 should have been evicted")
	}
	if _, ok := s.Get(k1); !ok {
		t.Error("k1 should have survived (recently used)")
	}
	st := s.Stats()
	if st.Hits != 2 || st.Misses != 2 || st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("stats = %+v", st)
	}
	// Refreshing an existing key must not evict.
	s.Put(k1, 10)
	if v, _ := s.Get(k1); v.(int) != 10 {
		t.Error("refresh did not update value")
	}
	if s.Stats().Entries != 2 {
		t.Errorf("refresh changed entry count: %+v", s.Stats())
	}
}

func TestKeyOfSeparatesSections(t *testing.T) {
	if keyOf([]byte("ab"), []byte("c")) == keyOf([]byte("a"), []byte("bc")) {
		t.Error("section aliasing")
	}
	if keyOf([]byte("x")).IsZero() {
		t.Error("real key reads as zero")
	}
	if !(Key{}).IsZero() {
		t.Error("zero key not detected")
	}
}

func testTexts() map[string]string {
	return map[string]string{
		"a.cfg": "hostname a\ninterface e0\n ip address 10.0.0.1 255.255.255.252\n ip ospf area 0\nrouter ospf 1\n",
		"b.cfg": "hostname b\ninterface e0\n ip address 10.0.0.2 255.255.255.252\n ip ospf area 0\nrouter ospf 1\n",
	}
}

func TestIdenticalSnapshotsDedupeAllStages(t *testing.T) {
	p := New(Config{})
	texts := testTexts()

	net1, _, keys1 := p.Parse(texts)
	dp1, dpk1 := p.DataPlane(net1, keys1, dataplane.Options{})
	g1, gk1 := p.Graph(dp1, dpk1)
	a1, _ := p.Analysis(g1, gk1)

	net2, _, keys2 := p.Parse(texts)
	dp2, dpk2 := p.DataPlane(net2, keys2, dataplane.Options{})
	g2, gk2 := p.Graph(dp2, dpk2)
	a2, _ := p.Analysis(g2, gk2)

	for name, k := range keys1 {
		if keys2[name] != k {
			t.Errorf("device %s key changed across identical loads", name)
		}
	}
	// Artifact identity, not just equality: the second run must reuse the
	// first run's parsed devices, data plane, graph, and analysis.
	for name, d := range net1.Devices {
		if net2.Devices[name] != d {
			t.Errorf("device %s re-parsed instead of reused", name)
		}
	}
	if dp1 != dp2 || dpk1 != dpk2 {
		t.Error("data plane not deduped")
	}
	if g1 != g2 || gk1 != gk2 {
		t.Error("graph not deduped")
	}
	if a1 != a2 {
		t.Error("analysis not deduped")
	}
	st := p.Stats()
	if st.Store.Hits == 0 || st.Store.Evictions != 0 {
		t.Errorf("store stats = %+v", st.Store)
	}
	if st.DataPlane.ColdRuns != 1 || st.DataPlane.WarmRuns != 1 {
		t.Errorf("dp stage times = %+v", st.DataPlane)
	}
	if st.Parse.ColdRuns != 1 || st.Parse.WarmRuns != 1 {
		t.Errorf("parse stage times = %+v", st.Parse)
	}
}

func TestSharedConfigsReuseParsedModels(t *testing.T) {
	p := New(Config{})
	texts := testTexts()
	net1, _, keys1 := p.Parse(texts)

	changed := testTexts()
	changed["b.cfg"] += "ip route 192.0.2.0 255.255.255.0 Null0\n"
	net2, _, keys2 := p.Parse(changed)

	if keys1["a"] != keys2["a"] {
		t.Error("unchanged device got a new key")
	}
	if net1.Devices["a"] != net2.Devices["a"] {
		t.Error("unchanged device was re-parsed")
	}
	if keys1["b"] == keys2["b"] {
		t.Error("edited device kept its key")
	}
	if net1.Devices["b"] == net2.Devices["b"] {
		t.Error("edited device model was reused")
	}
}

func TestParallelParseDeterminism(t *testing.T) {
	texts := make(map[string]string)
	for i := 0; i < 40; i++ {
		texts[fmt.Sprintf("r%02d.cfg", i)] = fmt.Sprintf(
			"hostname r%02d\ninterface e0\n ip address 10.0.%d.1 255.255.255.0\n", i, i)
	}
	serial := New(Config{ParseWorkers: -1})
	parallel := New(Config{ParseWorkers: 8})
	netS, warnS, keysS := serial.Parse(texts)
	netP, warnP, keysP := parallel.Parse(texts)
	if len(netS.Devices) != 40 || len(netP.Devices) != 40 {
		t.Fatalf("device counts: %d vs %d", len(netS.Devices), len(netP.Devices))
	}
	nsS, nsP := netS.DeviceNames(), netP.DeviceNames()
	for i := range nsS {
		if nsS[i] != nsP[i] {
			t.Fatalf("device order differs at %d: %s vs %s", i, nsS[i], nsP[i])
		}
	}
	if len(warnS) != len(warnP) {
		t.Errorf("warning counts differ: %d vs %d", len(warnS), len(warnP))
	}
	for n, k := range keysS {
		if keysP[n] != k {
			t.Errorf("key for %s differs across worker counts", n)
		}
	}
}

func TestDataPlaneKeyIgnoresParallelism(t *testing.T) {
	p := New(Config{})
	net, _, keys := p.Parse(testTexts())
	k1 := DataPlaneKey(net, keys, dataplane.Options{Parallelism: 1})
	k8 := DataPlaneKey(net, keys, dataplane.Options{Parallelism: 8})
	if k1 != k8 {
		t.Error("Parallelism must not affect the dp key (results are deterministic)")
	}
	kOther := DataPlaneKey(net, keys, dataplane.Options{MaxIterations: 7})
	if kOther == k1 {
		t.Error("MaxIterations must affect the dp key")
	}
	if !DataPlaneKey(net, map[string]Key{}, dataplane.Options{}).IsZero() {
		t.Error("missing device keys must disable caching (zero key)")
	}
}

func TestDisabledPipelineNeverCaches(t *testing.T) {
	p := Disabled()
	if p.Enabled() {
		t.Fatal("Disabled() reports enabled")
	}
	texts := testTexts()
	net1, _, _ := p.Parse(texts)
	net2, _, _ := p.Parse(texts)
	if net1.Devices["a"] == net2.Devices["a"] {
		t.Error("disabled pipeline reused a parsed model")
	}
	dp1, k := p.DataPlane(net1, nil, dataplane.Options{})
	if !k.IsZero() {
		t.Error("disabled pipeline issued a dp key")
	}
	g1, _ := p.Graph(dp1, k)
	g2, _ := p.Graph(dp1, k)
	if g1 == g2 {
		t.Error("disabled pipeline reused a graph")
	}
	if g1.Enc == g2.Enc {
		t.Error("disabled pipeline must give each graph a fresh encoder")
	}
}

func TestDataPlaneKeySuppression(t *testing.T) {
	p := New(Config{})
	net, _, keys := p.Parse(testTexts())
	base := DataPlaneKey(net, keys, dataplane.Options{})
	// An empty suppression must leave the key byte-identical: pre-scenario
	// caches (memory and disk) stay valid across this change.
	empty := DataPlaneKey(net, keys, dataplane.Options{Suppress: dataplane.Suppression{}})
	if empty != base {
		t.Error("empty suppression changed the dp key")
	}
	sup := dataplane.Suppression{Nodes: []string{"a"}}
	k1 := DataPlaneKey(net, keys, dataplane.Options{Suppress: sup})
	if k1 == base {
		t.Error("suppression must affect the dp key")
	}
	// Equivalent non-canonical forms key identically.
	k2 := DataPlaneKey(net, keys, dataplane.Options{Suppress: dataplane.Suppression{Nodes: []string{"a", "a"}}})
	if k2 != k1 {
		t.Error("canonically equal suppressions keyed differently")
	}
}
