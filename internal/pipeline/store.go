package pipeline

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sync"
)

// Key is a content address: the SHA-256 of a stage's declared inputs.
// Stage keys are prefixed with the stage name, so two stages can never
// collide even when fed identical bytes.
type Key [sha256.Size]byte

// zeroKey marks "no key" (uncached artifacts).
var zeroKey Key

// IsZero reports whether the key is unset.
func (k Key) IsZero() bool { return k == zeroKey }

// String renders a short hex prefix for logs and cache-stats output.
func (k Key) String() string { return hex.EncodeToString(k[:8]) }

// keyOf hashes the given byte sections with separators, so adjacent
// sections can never alias ("ab","c" != "a","bc").
func keyOf(sections ...[]byte) Key {
	h := sha256.New()
	var sep [1]byte
	for _, s := range sections {
		h.Write(s)
		sep[0] = 0xff
		h.Write(sep[:])
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// StoreStats is a snapshot of the artifact store counters.
type StoreStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Entries   int
	Capacity  int
}

// Store is a bounded, thread-safe, in-memory artifact store with LRU
// eviction. Artifacts are keyed by content hash, so a lookup hit means the
// stage's declared inputs are byte-identical to a previous run and the
// cached artifact can be reused verbatim.
//
// A Store can act as the first tier of a two-tier cache: OnEvict
// registers a callback that observes entries leaving the store (capacity
// eviction or Purge), letting the owner demote clean artifacts to a
// persistent tier instead of losing them.
type Store struct {
	mu        sync.Mutex
	max       int
	ll        *list.List // front = most recently used
	items     map[Key]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
	onEvict   func(Key, any)
}

type storeEntry struct {
	key Key
	val any
}

// DefaultCapacity bounds the default store. Artifacts are per-stage (one
// per device for parse, one per snapshot for the later stages), so this
// comfortably covers an edit-verify loop over a few large snapshots.
const DefaultCapacity = 1024

// NewStore returns an empty store holding at most max artifacts
// (DefaultCapacity when max <= 0).
func NewStore(max int) *Store {
	if max <= 0 {
		max = DefaultCapacity
	}
	return &Store{max: max, ll: list.New(), items: make(map[Key]*list.Element)}
}

// Get returns the artifact for key, marking it most recently used.
func (s *Store) Get(k Key) (any, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[k]
	if !ok {
		s.misses++
		return nil, false
	}
	s.hits++
	s.ll.MoveToFront(el)
	return el.Value.(*storeEntry).val, true
}

// OnEvict registers fn to be called for every entry that leaves the store
// through capacity eviction or Purge (not explicit overwrites). The
// callback runs after the store's lock is released, so it may safely call
// back into the store; it must tolerate concurrent invocations.
func (s *Store) OnEvict(fn func(Key, any)) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.onEvict = fn
	s.mu.Unlock()
}

// notifyEvicted invokes the eviction callback outside the lock.
func (s *Store) notifyEvicted(fn func(Key, any), evicted []*storeEntry) {
	if fn == nil {
		return
	}
	for _, e := range evicted {
		fn(e.key, e.val)
	}
}

// Put inserts (or refreshes) an artifact, evicting the least recently used
// entries beyond capacity.
func (s *Store) Put(k Key, v any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	var evicted []*storeEntry
	if el, ok := s.items[k]; ok {
		el.Value.(*storeEntry).val = v
		s.ll.MoveToFront(el)
	} else {
		s.items[k] = s.ll.PushFront(&storeEntry{key: k, val: v})
		for s.ll.Len() > s.max {
			last := s.ll.Back()
			s.ll.Remove(last)
			e := last.Value.(*storeEntry)
			delete(s.items, e.key)
			s.evictions++
			evicted = append(evicted, e)
		}
	}
	fn := s.onEvict
	s.mu.Unlock()
	s.notifyEvicted(fn, evicted)
}

// PutIfAbsent inserts the artifact only when the key is not already
// present, returning the stored value and whether this call inserted it.
// Two-tier promotion uses it so a concurrent compute and a disk-tier
// promotion of the same key cannot displace each other's (identical, but
// separately allocated) artifacts.
func (s *Store) PutIfAbsent(k Key, v any) (stored any, inserted bool) {
	if s == nil {
		return v, false
	}
	s.mu.Lock()
	if el, ok := s.items[k]; ok {
		s.ll.MoveToFront(el)
		stored = el.Value.(*storeEntry).val
		s.mu.Unlock()
		return stored, false
	}
	var evicted []*storeEntry
	s.items[k] = s.ll.PushFront(&storeEntry{key: k, val: v})
	for s.ll.Len() > s.max {
		last := s.ll.Back()
		s.ll.Remove(last)
		e := last.Value.(*storeEntry)
		delete(s.items, e.key)
		s.evictions++
		evicted = append(evicted, e)
	}
	fn := s.onEvict
	s.mu.Unlock()
	s.notifyEvicted(fn, evicted)
	return v, true
}

// Purge removes every entry the predicate selects, returning how many were
// removed. It is the memory-pressure valve: under load the owner sheds
// artifacts (the eviction callback still sees them, so clean ones demote
// to the disk tier instead of vanishing). A nil predicate purges all.
func (s *Store) Purge(pred func(Key, any) bool) int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	var evicted []*storeEntry
	for el := s.ll.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*storeEntry)
		if pred == nil || pred(e.key, e.val) {
			s.ll.Remove(el)
			delete(s.items, e.key)
			s.evictions++
			evicted = append(evicted, e)
		}
		el = next
	}
	fn := s.onEvict
	s.mu.Unlock()
	s.notifyEvicted(fn, evicted)
	return len(evicted)
}

// Stats returns the current counters.
func (s *Store) Stats() StoreStats {
	if s == nil {
		return StoreStats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		Hits:      s.hits,
		Misses:    s.misses,
		Evictions: s.evictions,
		Entries:   s.ll.Len(),
		Capacity:  s.max,
	}
}
