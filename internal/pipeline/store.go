package pipeline

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sync"
)

// Key is a content address: the SHA-256 of a stage's declared inputs.
// Stage keys are prefixed with the stage name, so two stages can never
// collide even when fed identical bytes.
type Key [sha256.Size]byte

// zeroKey marks "no key" (uncached artifacts).
var zeroKey Key

// IsZero reports whether the key is unset.
func (k Key) IsZero() bool { return k == zeroKey }

// String renders a short hex prefix for logs and cache-stats output.
func (k Key) String() string { return hex.EncodeToString(k[:8]) }

// keyOf hashes the given byte sections with separators, so adjacent
// sections can never alias ("ab","c" != "a","bc").
func keyOf(sections ...[]byte) Key {
	h := sha256.New()
	var sep [1]byte
	for _, s := range sections {
		h.Write(s)
		sep[0] = 0xff
		h.Write(sep[:])
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// StoreStats is a snapshot of the artifact store counters.
type StoreStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Entries   int
	Capacity  int
}

// Store is a bounded, thread-safe, in-memory artifact store with LRU
// eviction. Artifacts are keyed by content hash, so a lookup hit means the
// stage's declared inputs are byte-identical to a previous run and the
// cached artifact can be reused verbatim.
type Store struct {
	mu        sync.Mutex
	max       int
	ll        *list.List // front = most recently used
	items     map[Key]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

type storeEntry struct {
	key Key
	val any
}

// DefaultCapacity bounds the default store. Artifacts are per-stage (one
// per device for parse, one per snapshot for the later stages), so this
// comfortably covers an edit-verify loop over a few large snapshots.
const DefaultCapacity = 1024

// NewStore returns an empty store holding at most max artifacts
// (DefaultCapacity when max <= 0).
func NewStore(max int) *Store {
	if max <= 0 {
		max = DefaultCapacity
	}
	return &Store{max: max, ll: list.New(), items: make(map[Key]*list.Element)}
}

// Get returns the artifact for key, marking it most recently used.
func (s *Store) Get(k Key) (any, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[k]
	if !ok {
		s.misses++
		return nil, false
	}
	s.hits++
	s.ll.MoveToFront(el)
	return el.Value.(*storeEntry).val, true
}

// Put inserts (or refreshes) an artifact, evicting the least recently used
// entries beyond capacity.
func (s *Store) Put(k Key, v any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[k]; ok {
		el.Value.(*storeEntry).val = v
		s.ll.MoveToFront(el)
		return
	}
	s.items[k] = s.ll.PushFront(&storeEntry{key: k, val: v})
	for s.ll.Len() > s.max {
		last := s.ll.Back()
		s.ll.Remove(last)
		delete(s.items, last.Value.(*storeEntry).key)
		s.evictions++
	}
}

// Stats returns the current counters.
func (s *Store) Stats() StoreStats {
	if s == nil {
		return StoreStats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		Hits:      s.hits,
		Misses:    s.misses,
		Evictions: s.evictions,
		Entries:   s.ll.Len(),
		Capacity:  s.max,
	}
}
