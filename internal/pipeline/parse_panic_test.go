package pipeline

import (
	"context"
	"testing"

	"repro/internal/diag"
	"repro/internal/faults"
)

// TestParseWorkerPanicQuarantinesDevice injects a panic into the
// parallel parse worker itself (not the per-device parse closure): the
// outer diag.Capture added for the panic-safe invariant must contain
// it, quarantine just that device, and let the rest of the snapshot
// load normally.
func TestParseWorkerPanicQuarantinesDevice(t *testing.T) {
	defer faults.Activate(faults.New().
		Enable("parse-worker", "b.cfg", faults.Rule{Kind: faults.Panic}))()

	p := New(Config{StoreCapacity: 16, ParseWorkers: 4})
	texts := map[string]string{
		"a.cfg": "hostname a\n",
		"b.cfg": "hostname b\n",
		"c.cfg": "hostname c\n",
	}
	net, _, keys, diags := p.ParseCtx(context.Background(), texts)

	if len(net.Devices) != 2 {
		t.Fatalf("got %d devices, want 2 (b quarantined): %v", len(net.Devices), net.DeviceNames())
	}
	for _, name := range []string{"a", "c"} {
		if _, ok := net.Devices[name]; !ok {
			t.Errorf("device %s missing from snapshot", name)
		}
		if _, ok := keys[name]; !ok {
			t.Errorf("device %s missing from artifact keys", name)
		}
	}
	if _, ok := net.Devices["b"]; ok {
		t.Error("panicking device b was not excluded from the snapshot")
	}

	var sawPanic, sawQuarantine bool
	for _, d := range diags {
		if d.Device != "b.cfg" {
			t.Errorf("diagnostic for unexpected device %q: %+v", d.Device, d)
			continue
		}
		switch d.Kind {
		case diag.KindPanic:
			sawPanic = true
		case diag.KindQuarantine:
			sawQuarantine = true
		}
	}
	if !sawPanic || !sawQuarantine {
		t.Errorf("diagnostics missing panic/quarantine pair: %+v", diags)
	}
}
