package pipeline

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/dataplane"
	"repro/internal/diskcache"
)

func openDisk(t *testing.T, dir string) *diskcache.Cache {
	t.Helper()
	d, err := diskcache.Open(dir, diskcache.Options{})
	if err != nil {
		t.Fatalf("diskcache.Open: %v", err)
	}
	return d
}

// TestWarmRestartServesFromDisk is the core warm-restart property at the
// pipeline level: a second pipeline (fresh memory store — "new process")
// sharing only the cache directory serves parse and data-plane stages
// from disk, and the rehydrated result is indistinguishable from the
// computed one.
func TestWarmRestartServesFromDisk(t *testing.T) {
	dir := t.TempDir()
	texts := testTexts()

	p1 := New(Config{Disk: openDisk(t, dir)})
	net1, _, keys1 := p1.Parse(texts)
	dp1, dpk1 := p1.DataPlane(net1, keys1, dataplane.Options{})
	if dpk1.IsZero() {
		t.Fatal("baseline run degraded")
	}

	// "Restart": fresh pipeline and memory store, same directory.
	p2 := New(Config{Disk: openDisk(t, dir)})
	net2, _, keys2 := p2.Parse(texts)
	st := p2.Stats()
	if st.Parse.DiskHits != int64(len(texts)) {
		t.Errorf("parse disk hits = %d, want %d", st.Parse.DiskHits, len(texts))
	}
	dp2, dpk2 := p2.DataPlane(net2, keys2, dataplane.Options{})
	st = p2.Stats()
	if st.DataPlane.DiskHits != 1 {
		t.Errorf("dataplane disk hits = %d, want 1", st.DataPlane.DiskHits)
	}
	if st.DataPlane.ColdRuns != 0 {
		t.Errorf("dataplane recomputed on warm restart: %+v", st.DataPlane)
	}
	if dpk2 != dpk1 {
		t.Errorf("dataplane key changed across restart")
	}
	for name := range dp1.Nodes {
		if dp2.NodeFingerprint(name) != dp1.NodeFingerprint(name) {
			t.Errorf("node %s fingerprint differs after rehydration", name)
		}
	}
	// Second lookup hits memory, not disk (promotion worked).
	before := p2.DiskStats().Hits
	if _, ok := p2.store.Get(dpk2); !ok {
		t.Error("rehydrated artifact was not promoted to memory")
	}
	_, _ = p2.DataPlane(net2, keys2, dataplane.Options{})
	if p2.DiskStats().Hits != before {
		t.Error("memory-resident artifact read disk again")
	}
}

// TestDegradedArtifactsNeverPersist: a cancelled/quarantined run carries
// a zero key and must not land in either tier.
func TestDegradedArtifactsNeverPersist(t *testing.T) {
	dir := t.TempDir()
	p := New(Config{Disk: openDisk(t, dir)})
	// A parse key set missing one device yields the zero data-plane key.
	net, _, keys := p.Parse(testTexts())
	partial := map[string]Key{}
	for n, k := range keys {
		partial[n] = k
		break
	}
	if k := DataPlaneKey(net, partial, dataplane.Options{}); !k.IsZero() {
		t.Fatal("partial key set should map to the zero key")
	}
	st := p.DiskStats()
	// Only parse artifacts may be on disk; no data-plane entry exists.
	if st.Puts != uint64(len(keys)) {
		t.Errorf("disk puts = %d, want %d parse artifacts only", st.Puts, len(keys))
	}
}

// TestEvictionDemotesToDisk: artifacts evicted from the memory tier (or
// purged under pressure) land on disk and rehydrate on the next miss.
func TestEvictionDemotesToDisk(t *testing.T) {
	dir := t.TempDir()
	disk := openDisk(t, dir)
	// Capacity 2: parsing two devices then computing the data plane must
	// evict a parse artifact to make room.
	p := New(Config{StoreCapacity: 2, Disk: disk})
	net, _, keys := p.Parse(testTexts())
	dp, dpk := p.DataPlane(net, keys, dataplane.Options{})
	if dpk.IsZero() || dp == nil {
		t.Fatal("run degraded")
	}
	if st := p.store.Stats(); st.Evictions == 0 {
		t.Fatalf("expected memory evictions at capacity 2: %+v", st)
	}
	// Every parse artifact is still reachable: memory or disk.
	for name, k := range keys {
		_, inMem := p.store.Get(k)
		if !inMem && !disk.Has(k) {
			t.Errorf("device %s artifact lost by eviction", name)
		}
	}
	// A fresh parse of the same texts is fully warm (no cold devices).
	cold := p.Stats().Parse.ColdRuns
	p.Parse(testTexts())
	if got := p.Stats().Parse.ColdRuns; got != cold {
		t.Errorf("parse re-ran cold after demotion: %d -> %d", cold, got)
	}
}

func TestPutIfAbsent(t *testing.T) {
	s := NewStore(4)
	k := keyOf([]byte("k"))
	v, inserted := s.PutIfAbsent(k, "first")
	if !inserted || v.(string) != "first" {
		t.Fatalf("first PutIfAbsent = %v, %v", v, inserted)
	}
	v, inserted = s.PutIfAbsent(k, "second")
	if inserted || v.(string) != "first" {
		t.Fatalf("second PutIfAbsent = %v, %v; want existing value", v, inserted)
	}
}

func TestPurge(t *testing.T) {
	s := NewStore(8)
	var evicted []Key
	var mu sync.Mutex
	s.OnEvict(func(k Key, v any) {
		mu.Lock()
		evicted = append(evicted, k)
		mu.Unlock()
	})
	keys := make([]Key, 4)
	for i := range keys {
		keys[i] = keyOf([]byte(fmt.Sprint(i)))
		s.Put(keys[i], i)
	}
	n := s.Purge(func(k Key, v any) bool { return v.(int)%2 == 0 })
	if n != 2 {
		t.Fatalf("Purge removed %d, want 2", n)
	}
	if _, ok := s.Get(keys[0]); ok {
		t.Error("purged entry still present")
	}
	if _, ok := s.Get(keys[1]); !ok {
		t.Error("unmatched entry was purged")
	}
	mu.Lock()
	ne := len(evicted)
	mu.Unlock()
	if ne != 2 {
		t.Errorf("eviction callback saw %d entries, want 2", ne)
	}
	// nil predicate purges everything.
	if n := s.Purge(nil); n != 2 {
		t.Errorf("Purge(nil) removed %d, want the remaining 2", n)
	}
	if st := s.Stats(); st.Entries != 0 {
		t.Errorf("entries after full purge: %+v", st)
	}
}

// TestStoreConcurrentCounters hammers the two-tier entry points under
// -race: counters must stay consistent and no callback may deadlock.
func TestStoreConcurrentCounters(t *testing.T) {
	s := NewStore(8)
	s.OnEvict(func(k Key, v any) {
		// Re-entering the store from the callback must not deadlock.
		s.Stats()
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := keyOf([]byte(fmt.Sprint(i % 16)))
				switch i % 4 {
				case 0:
					s.Put(k, i)
				case 1:
					s.PutIfAbsent(k, i)
				case 2:
					s.Get(k)
				default:
					if i%32 == 3 {
						s.Purge(func(Key, any) bool { return true })
					}
				}
			}
		}(g)
	}
	wg.Wait()
	st := s.Stats()
	if st.Entries > 8 {
		t.Fatalf("store over capacity: %+v", st)
	}
}
