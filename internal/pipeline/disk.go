package pipeline

// Disk-tier integration: a Pipeline configured with a diskcache.Cache
// gains a persistent second tier under the in-memory Store for the two
// stages whose artifacts serialize cleanly — parse (vendor-independent
// device models) and dataplane (converged simulation results). Lookups
// fall through memory → disk → compute; computes write through to both
// tiers; entries evicted from memory demote to disk via the Store's
// eviction callback instead of vanishing. Graph and analysis artifacts
// are process-local by design (they embed references into the pipeline's
// shared BDD encoder, which is meaningless across processes) and stay
// memory-only; on a warm restart they recompute in-process from the
// disk-tier parse and dataplane hits.
//
// Degraded artifacts carry zero keys and never reach either tier, so a
// crash or fault can never persist a partial answer. Disk corruption is
// the cache's problem, not ours: a failed checksum quarantines the entry
// and reads as a miss, and the stage recomputes.

import (
	"bytes"
	"encoding/gob"

	"repro/internal/config"
	"repro/internal/dataplane"
	"repro/internal/diskcache"
)

// parseArtifact is the gob schema for one parse-stage artifact.
type parseArtifact struct {
	Dev   *config.Device
	Warns []config.Warning
}

func encodeParsed(p parsed) ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(&parseArtifact{Dev: p.dev, Warns: p.warns})
	return buf.Bytes(), err
}

func decodeParsed(b []byte) (parsed, error) {
	var a parseArtifact
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&a); err != nil {
		return parsed{}, err
	}
	if a.Dev == nil {
		return parsed{}, errNoDevice
	}
	return parsed{dev: a.Dev, warns: a.Warns}, nil
}

type noDeviceError struct{}

func (noDeviceError) Error() string { return "pipeline: parse artifact has no device" }

var errNoDevice = noDeviceError{}

// diskGetParsed reads and decodes a parse artifact from the disk tier,
// promoting it into the memory tier on success. The promoted value wins
// any race with a concurrent compute of the same key via PutIfAbsent.
func (p *Pipeline) diskGetParsed(k Key) (parsed, bool) {
	if p.disk == nil {
		return parsed{}, false
	}
	b, ok := p.disk.Get(k)
	if !ok {
		return parsed{}, false
	}
	art, err := decodeParsed(b)
	if err != nil {
		return parsed{}, false
	}
	v, _ := p.store.PutIfAbsent(k, art)
	return v.(parsed), true
}

// diskPutParsed writes a parse artifact through to the disk tier.
func (p *Pipeline) diskPutParsed(k Key, art parsed) {
	if p.disk == nil || k.IsZero() {
		return
	}
	if b, err := encodeParsed(art); err == nil {
		p.disk.Put(k, b)
	}
}

// diskGetDataPlane reads and decodes a data-plane artifact from the disk
// tier, promoting it into the memory tier on success.
func (p *Pipeline) diskGetDataPlane(k Key) (*dataplane.Result, bool) {
	if p.disk == nil {
		return nil, false
	}
	b, ok := p.disk.Get(k)
	if !ok {
		return nil, false
	}
	res, err := dataplane.UnmarshalResult(b)
	if err != nil {
		return nil, false
	}
	v, _ := p.store.PutIfAbsent(k, res)
	return v.(*dataplane.Result), true
}

// diskPutDataPlane writes a clean data-plane artifact through to the
// disk tier (MarshalResult refuses degraded results as a second line of
// defense behind the zero-key gate).
func (p *Pipeline) diskPutDataPlane(k Key, res *dataplane.Result) {
	if p.disk == nil || k.IsZero() {
		return
	}
	if b, err := dataplane.MarshalResult(res); err == nil {
		p.disk.Put(k, b)
	}
}

// demote is the Store eviction callback: artifacts leaving the memory
// tier that have a disk codec are written to the disk tier (unless
// already present), so capacity eviction and memory-pressure purges
// degrade to a slower tier instead of losing work. Unserializable
// artifacts (graphs, analyses) are process-local and simply drop.
func (p *Pipeline) demote(k Key, v any) {
	if p.disk == nil || k.IsZero() || p.disk.Has(k) {
		return
	}
	switch art := v.(type) {
	case parsed:
		p.diskPutParsed(k, art)
	case *dataplane.Result:
		p.diskPutDataPlane(k, art)
	}
}

// DiskStats reports the disk tier's counters (zero when no disk tier is
// configured).
func (p *Pipeline) DiskStats() diskcache.Stats {
	if p == nil || p.disk == nil {
		return diskcache.Stats{}
	}
	return p.disk.Stats()
}
