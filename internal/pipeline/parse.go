package pipeline

import (
	"context"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/config"
	"repro/internal/diag"
	"repro/internal/faults"
	"repro/internal/vendors/cisco"
	"repro/internal/vendors/juniper"
)

// DetectDialect guesses the configuration dialect from text: Junos
// configurations are "set ..." command lists, IOS ones are hierarchical.
func DetectDialect(text string) string {
	for _, line := range strings.Split(text, "\n") {
		t := strings.TrimSpace(line)
		if t == "" || strings.HasPrefix(t, "#") || strings.HasPrefix(t, "!") {
			continue
		}
		if strings.HasPrefix(t, "set ") {
			return "junos"
		}
		return "ios"
	}
	return "ios"
}

// parsed is the artifact of the per-device parse stage. The device model
// is shared between every snapshot whose config bytes match, so consumers
// must treat it as immutable (the simulator keeps all mutable per-run
// state in its own maps).
type parsed struct {
	dev   *config.Device
	warns []config.Warning
}

// parseOne parses a single config text, applying the historic hostname
// fallback (file basename without extension) before the artifact is
// cached, so the cached model is complete.
func parseOne(name, text string) parsed {
	faults.Fire("parse", name)
	var d *config.Device
	var w []config.Warning
	switch DetectDialect(text) {
	case "junos":
		d, w = juniper.Parse(text)
	default:
		d, w = cisco.Parse(text)
	}
	if d.Hostname == "" {
		d.Hostname = strings.TrimSuffix(filepath.Base(name), filepath.Ext(name))
	}
	return parsed{dev: d, warns: w}
}

// Parse runs the per-device parse stage over texts (filename or hostname
// → config text). Devices parse in parallel — each file is independent —
// but the network is assembled in sorted name order, so device ordering,
// same-hostname overwrite semantics, and warning order are deterministic
// and identical to a serial run. The returned map gives each device's
// parse-artifact key (hostname → Key) for downstream stage keys.
//
// A panicking parser quarantines its device instead of crashing the run:
// the device is excluded from the returned network and the failure is
// reported via ParseCtx's diagnostics. Parse keeps the historic signature
// by dropping those diagnostics; callers that need them use ParseCtx.
func (p *Pipeline) Parse(texts map[string]string) (*config.Network, []config.Warning, map[string]Key) {
	net, warns, devKeys, _ := p.ParseCtx(context.Background(), texts)
	return net, warns, devKeys
}

// ParseCtx is Parse with cooperative cancellation and failure containment.
// The context is checked before each device parse; once it expires the
// remaining devices are skipped and a single cancellation diagnostic is
// appended. A device whose parser panics is quarantined: it is excluded
// from the returned network, its artifact is never cached, and the
// returned diagnostics carry the panic (with stack) plus a quarantine
// record naming the device.
func (p *Pipeline) ParseCtx(ctx context.Context, texts map[string]string) (*config.Network, []config.Warning, map[string]Key, []diag.Diagnostic) {
	start := time.Now()
	names := make([]string, 0, len(texts))
	for n := range texts {
		names = append(names, n)
	}
	sort.Strings(names)

	keys := make([]Key, len(names))
	results := make([]parsed, len(names))
	hits := make([]bool, len(names))
	diskHits := make([]bool, len(names))
	panics := make([]*diag.Diagnostic, len(names))
	skipped := make([]bool, len(names))
	work := func(i int) {
		n := names[i]
		if ctx.Err() != nil {
			skipped[i] = true
			return
		}
		text := texts[n]
		if d := diag.Capture(diag.StageParse, n, func() {
			if p.store != nil {
				k := keyOf([]byte("parse"), []byte(n), []byte(text))
				keys[i] = k
				if v, ok := p.store.Get(k); ok {
					results[i] = v.(parsed)
					hits[i] = true
					return
				}
				if art, ok := p.diskGetParsed(k); ok {
					results[i] = art
					hits[i] = true
					diskHits[i] = true
					return
				}
				results[i] = parseOne(n, text)
				p.store.Put(k, results[i])
				p.diskPutParsed(k, results[i])
				return
			}
			results[i] = parseOne(n, text)
		}); d != nil {
			panics[i] = d
			results[i] = parsed{} // drop any half-built model
		}
	}

	workers := p.parseWorkers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(names) {
		workers = len(names)
	}
	if workers <= 1 {
		for i := range names {
			work(i)
		}
	} else {
		var cursor atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(cursor.Add(1)) - 1
					if i >= len(names) {
						return
					}
					// work() already captures parser panics per device;
					// this outer capture contains harness bugs (cache
					// type assertions, index bookkeeping) that would
					// otherwise escape the goroutine and kill the
					// process instead of quarantining one device.
					if d := diag.Capture(diag.StageParse, names[i], func() {
						faults.Fire("parse-worker", names[i])
						work(i)
					}); d != nil {
						panics[i] = d
					}
				}
			}()
		}
		wg.Wait()
	}

	net := config.NewNetwork()
	var warns []config.Warning
	var diags []diag.Diagnostic
	devKeys := make(map[string]Key, len(names))
	warm := len(names) > 0
	cancelled := false
	for i := range names {
		if skipped[i] {
			cancelled = true
			warm = false
			continue
		}
		if d := panics[i]; d != nil {
			diags = append(diags, *d, diag.Diagnostic{
				Stage:   diag.StageParse,
				Device:  names[i],
				Kind:    diag.KindQuarantine,
				Message: "device quarantined: configuration excluded from the snapshot",
			})
			warm = false
			continue
		}
		r := results[i]
		net.Devices[r.dev.Hostname] = r.dev
		devKeys[r.dev.Hostname] = keys[i]
		warns = append(warns, r.warns...)
		if !hits[i] {
			warm = false
		}
	}
	if cancelled {
		diags = append(diags, diag.Diagnostic{
			Stage:   diag.StageParse,
			Kind:    diag.KindCancelled,
			Message: "parse stage cancelled before all devices were parsed",
		})
	}
	var nDisk int64
	for i := range diskHits {
		if diskHits[i] {
			nDisk++
		}
	}
	p.recordDiskHits(&p.parse, nDisk)
	p.record(&p.parse, start, warm)
	return net, warns, devKeys, diags
}
