// Package pipeline models the four Batfish stages — Parse, DataPlane,
// FwdGraph, Analysis — as explicit stages with declared inputs. Each stage
// produces an artifact keyed by a content hash of exactly those inputs:
// per-device configuration bytes for parse, and the sorted set of
// device-model hashes plus the simulation options for everything
// downstream. Artifacts live in a bounded in-memory Store, so two
// snapshots that share N−K device configs reuse the K unchanged parsed
// models for free, and byte-identical snapshots dedupe all four stages.
//
// Correctness contract: a cached artifact is only ever reused when the
// stage inputs are byte-identical, and artifacts are treated as immutable
// by every consumer (the simulator and the analyses read, never write,
// parsed models and data-plane results). Determinism therefore holds by
// construction — caching can change how fast an answer arrives, never
// which answer.
//
// Graphs built by one enabled Pipeline share a single header-space
// encoder, so analyses from different snapshots are directly comparable
// (the incremental CompareWith in internal/core depends on this). The
// shared BDD factory is unsynchronized and append-only: queries against
// snapshots of the same Pipeline must not run concurrently with each
// other, and the factory's node table grows monotonically over the
// Pipeline's lifetime.
package pipeline

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/config"
	"repro/internal/dataplane"
	"repro/internal/diskcache"
	"repro/internal/fwdgraph"
	"repro/internal/hdr"
	"repro/internal/reach"
)

// Config tunes a Pipeline.
type Config struct {
	// StoreCapacity bounds the artifact store (DefaultCapacity when 0).
	StoreCapacity int
	// ParseWorkers is the per-device parse parallelism; 0 means
	// runtime.GOMAXPROCS(0), negative forces serial parsing.
	ParseWorkers int
	// Disk, when non-nil, adds a persistent second tier under the
	// in-memory store for the serializable stages (parse, dataplane):
	// lookups fall through memory → disk → compute, computes write
	// through to both tiers, and memory evictions demote to disk. The
	// cache may be shared by several pipelines.
	Disk *diskcache.Cache
}

// StageTimes accumulates wall time for one stage, split by whether the
// artifact came from the store (warm) or was computed (cold). A parse run
// counts as warm only when every device hit the cache. DiskHits counts
// artifacts served from the persistent tier (a subset of warm activity:
// a disk hit is decoded, promoted to memory, and reused).
type StageTimes struct {
	ColdNs   int64
	ColdRuns int64
	WarmNs   int64
	WarmRuns int64
	DiskHits int64
}

func (t *StageTimes) add(d time.Duration, warm bool) {
	if warm {
		t.WarmNs += d.Nanoseconds()
		t.WarmRuns++
	} else {
		t.ColdNs += d.Nanoseconds()
		t.ColdRuns++
	}
}

// Stats is a point-in-time view of a Pipeline's store counters and
// per-stage timings. Disk reports the persistent tier's counters (zero
// when none is configured).
type Stats struct {
	Store     StoreStats
	Disk      diskcache.Stats
	Parse     StageTimes
	DataPlane StageTimes
	Graph     StageTimes
	Analysis  StageTimes
}

// Pipeline runs the staged computation against one artifact store. The
// zero value is not usable; construct with New or Disabled.
type Pipeline struct {
	store        *Store           // nil when caching is disabled
	disk         *diskcache.Cache // nil when no persistent tier
	parseWorkers int

	encMu sync.Mutex
	enc   *hdr.Enc // lazily created, shared by all graphs of this Pipeline

	statMu sync.Mutex
	parse  StageTimes
	dp     StageTimes
	graph  StageTimes
	an     StageTimes
}

// New returns a caching Pipeline.
func New(cfg Config) *Pipeline {
	p := &Pipeline{store: NewStore(cfg.StoreCapacity), parseWorkers: cfg.ParseWorkers, disk: cfg.Disk}
	if p.disk != nil {
		p.store.OnEvict(p.demote)
	}
	return p
}

// Disabled returns a Pipeline that never caches and gives every graph its
// own fresh encoder — byte-for-byte the pre-pipeline behavior. It is the
// reference implementation the caching path is validated against.
func Disabled() *Pipeline {
	return &Pipeline{}
}

// Enabled reports whether this Pipeline caches artifacts.
func (p *Pipeline) Enabled() bool { return p.store != nil }

// Stats returns current counters and timings.
func (p *Pipeline) Stats() Stats {
	p.statMu.Lock()
	defer p.statMu.Unlock()
	return Stats{
		Store:     p.store.Stats(),
		Disk:      p.disk.Stats(),
		Parse:     p.parse,
		DataPlane: p.dp,
		Graph:     p.graph,
		Analysis:  p.an,
	}
}

func (p *Pipeline) record(stage *StageTimes, start time.Time, warm bool) {
	d := time.Since(start)
	p.statMu.Lock()
	stage.add(d, warm)
	p.statMu.Unlock()
}

// recordDiskHits counts n disk-tier hits against one stage.
func (p *Pipeline) recordDiskHits(stage *StageTimes, n int64) {
	if n == 0 {
		return
	}
	p.statMu.Lock()
	stage.DiskHits += n
	p.statMu.Unlock()
}

// sharedEnc returns the Pipeline-wide encoder, creating it on first use.
func (p *Pipeline) sharedEnc() *hdr.Enc {
	p.encMu.Lock()
	defer p.encMu.Unlock()
	if p.enc == nil {
		p.enc = hdr.NewEnc(fwdgraph.ZoneBits + fwdgraph.WaypointBits)
	}
	return p.enc
}

// dpOptionsKey serializes the options that affect simulation output.
// Parallelism is deliberately excluded: results are deterministic across
// worker counts (PR-1's schedule guarantee), so runs differing only in
// worker count share artifacts. A failure-scenario suppression is
// appended in canonical form only when non-empty, keeping every
// pre-scenario key byte-identical (warm disk caches stay valid).
func dpOptionsKey(o dataplane.Options) []byte {
	base := fmt.Sprintf("sched=%d;maxiter=%d;noclocks=%t;fullconv=%t",
		o.Schedule, o.MaxIterations, o.DisableClocks, o.FullStateConvergence)
	if sk := o.Suppress.CacheKey(); sk != "" {
		base += ";suppress=" + sk
	}
	return []byte(base)
}

// DataPlaneKey is the content address of a data-plane run: the simulation
// options plus the sorted (hostname, device-model hash) set. It returns
// the zero Key when any device lacks a model hash, which disables caching
// for that snapshot.
func DataPlaneKey(net *config.Network, devKeys map[string]Key, opts dataplane.Options) Key {
	names := net.DeviceNames()
	sections := make([][]byte, 0, 2+2*len(names))
	sections = append(sections, []byte("dp"), dpOptionsKey(opts))
	for _, n := range names {
		dk, ok := devKeys[n]
		if !ok {
			return Key{}
		}
		sections = append(sections, []byte(n), dk[:])
	}
	return keyOf(sections...)
}

// DataPlane runs (or reuses) the simulation stage.
func (p *Pipeline) DataPlane(net *config.Network, devKeys map[string]Key, opts dataplane.Options) (*dataplane.Result, Key) {
	return p.DataPlaneCtx(context.Background(), net, devKeys, opts)
}

// DataPlaneCtx is DataPlane with cooperative cancellation. Degraded
// results — cancelled, quarantined, or carrying any diagnostic — are
// returned with a zero Key and never stored: caching a partial simulation
// would let a transient failure masquerade as the truth for every later
// byte-identical snapshot.
func (p *Pipeline) DataPlaneCtx(ctx context.Context, net *config.Network, devKeys map[string]Key, opts dataplane.Options) (*dataplane.Result, Key) {
	start := time.Now()
	var k Key
	if p.store != nil {
		k = DataPlaneKey(net, devKeys, opts)
		if !k.IsZero() {
			if v, ok := p.store.Get(k); ok {
				res := v.(*dataplane.Result)
				p.record(&p.dp, start, true)
				return res, k
			}
			if res, ok := p.diskGetDataPlane(k); ok {
				p.recordDiskHits(&p.dp, 1)
				p.record(&p.dp, start, true)
				return res, k
			}
		}
	}
	res := dataplane.RunContext(ctx, net, opts)
	if res.Degraded() {
		k = Key{}
	}
	if p.store != nil && !k.IsZero() {
		p.store.Put(k, res)
		p.diskPutDataPlane(k, res)
	}
	p.record(&p.dp, start, false)
	return res, k
}

// Graph builds (or reuses) the forwarding graph for a data plane. With
// caching enabled the graph uses the Pipeline's shared encoder; disabled
// pipelines get a fresh encoder per graph, matching historic behavior.
func (p *Pipeline) Graph(dp *dataplane.Result, dpKey Key) (*fwdgraph.Graph, Key) {
	return p.GraphCtx(context.Background(), dp, dpKey)
}

// GraphCtx is Graph with cooperative cancellation. A partial graph
// (construction stopped by the context) is returned with a zero Key and
// never cached.
func (p *Pipeline) GraphCtx(ctx context.Context, dp *dataplane.Result, dpKey Key) (*fwdgraph.Graph, Key) {
	start := time.Now()
	var k Key
	if p.store != nil && !dpKey.IsZero() {
		k = keyOf([]byte("graph"), dpKey[:])
		if v, ok := p.store.Get(k); ok {
			g := v.(*fwdgraph.Graph)
			p.record(&p.graph, start, true)
			return g, k
		}
	}
	var g *fwdgraph.Graph
	if p.store != nil {
		g = fwdgraph.NewWithEncContext(ctx, dp, p.sharedEnc())
	} else {
		g = fwdgraph.NewContext(ctx, dp)
	}
	if g.Cancelled {
		k = Key{}
	}
	if p.store != nil && !k.IsZero() {
		p.store.Put(k, g)
	}
	p.record(&p.graph, start, false)
	return g, k
}

// Analysis builds (or reuses) the compressed reachability analysis.
func (p *Pipeline) Analysis(g *fwdgraph.Graph, gKey Key) (*reach.Analysis, Key) {
	start := time.Now()
	var k Key
	if p.store != nil && !gKey.IsZero() {
		k = keyOf([]byte("analysis"), gKey[:])
		if v, ok := p.store.Get(k); ok {
			a := v.(*reach.Analysis)
			p.record(&p.an, start, true)
			return a, k
		}
	}
	a := reach.New(g)
	if p.store != nil && !k.IsZero() {
		p.store.Put(k, a)
	}
	p.record(&p.an, start, false)
	return a, k
}
