package topo

import "testing"

func TestLinkCanonicalAndString(t *testing.T) {
	e := Edge{Node1: "b", Iface1: "e1", Node2: "a", Iface2: "e0"}
	l := e.Link()
	if l.Node1 != "a" || l.Iface1 != "e0" || l.Node2 != "b" || l.Iface2 != "e1" {
		t.Errorf("Edge.Link not canonical: %v", l)
	}
	if l != e.Reverse().Link() {
		t.Error("both edge directions must map to one link")
	}
	raw := Link{Node1: "b", Iface1: "e1", Node2: "a", Iface2: "e0"}
	if raw.Canonical() != l {
		t.Errorf("Canonical() = %v, want %v", raw.Canonical(), l)
	}
	if got := l.String(); got != "a:e0<->b:e1" {
		t.Errorf("String() = %q", got)
	}
}

func TestLinksEnumeration(t *testing.T) {
	net := netWith(t, [][4]string{{"a", "e0", "b", "e0"}, {"b", "e1", "c", "e0"}})
	links := Infer(net).Links()
	if len(links) != 2 {
		t.Fatalf("links = %v, want 2", links)
	}
	// Sorted canonical order, one entry per adjacency (not per edge).
	if links[0].String() != "a:e0<->b:e0" || links[1].String() != "b:e1<->c:e0" {
		t.Errorf("links = %v", links)
	}
}

func TestMask(t *testing.T) {
	net := netWith(t, [][4]string{{"a", "e0", "b", "e0"}, {"b", "e1", "c", "e0"}, {"c", "e1", "d", "e0"}})
	full := Infer(net)

	if got := full.Mask(nil, nil); got != full {
		t.Error("empty mask should return the receiver")
	}

	// Masking a link removes both directions and nothing else; the
	// non-canonical orientation must match too.
	m := full.Mask([]Link{{Node1: "b", Iface1: "e0", Node2: "a", Iface2: "e0"}}, nil)
	if len(m.Edges) != len(full.Edges)-2 {
		t.Fatalf("masked edges = %d, want %d", len(m.Edges), len(full.Edges)-2)
	}
	if _, ok := m.EdgeFrom("a", "e0"); ok {
		t.Error("a:e0 edge survived the mask")
	}
	if _, ok := m.EdgeFrom("b", "e0"); ok {
		t.Error("reverse edge survived the mask")
	}
	if _, ok := m.EdgeFrom("b", "e1"); !ok {
		t.Error("unrelated edge was dropped")
	}
	if len(full.Edges) != 6 {
		t.Errorf("receiver was modified: %d edges", len(full.Edges))
	}

	// Masking a node removes every incident edge and its index entries.
	n := full.Mask(nil, []string{"b"})
	if len(n.Edges) != 2 {
		t.Fatalf("node mask left %d edges, want 2 (c<->d)", len(n.Edges))
	}
	if got := n.Neighbors("b"); len(got) != 0 {
		t.Errorf("downed node still has neighbors: %v", got)
	}
	if got := n.Neighbors("a"); len(got) != 0 {
		t.Errorf("neighbor of downed node kept the dead edge: %v", got)
	}
	if _, ok := n.EdgeFrom("c", "e1"); !ok {
		t.Error("c<->d must survive a b-down mask")
	}
}
