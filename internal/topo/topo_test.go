package topo

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/config"
	"repro/internal/ip4"
)

func netWith(t *testing.T, links [][4]string) *config.Network {
	t.Helper()
	net := config.NewNetwork()
	dev := func(name string) *config.Device {
		if d, ok := net.Devices[name]; ok {
			return d
		}
		d := config.NewDevice(name, "vi")
		net.Devices[name] = d
		return d
	}
	for _, l := range links {
		a, ai, b, bi := l[0], l[1], l[2], l[3]
		_ = dev(a)
		_ = dev(b)
		// allocate a /30 per link
		base := uint32(0x0a000000 + len(net.Devices)*256 + len(dev(a).Interfaces)*8 + len(dev(b).Interfaces)*64)
		dev(a).Interfaces[ai] = &config.Interface{Name: ai, Active: true,
			Addresses: []ip4.Prefix{{Addr: ip4.Addr(base + 1), Len: 30}}}
		dev(b).Interfaces[bi] = &config.Interface{Name: bi, Active: true,
			Addresses: []ip4.Prefix{{Addr: ip4.Addr(base + 2), Len: 30}}}
	}
	return net
}

func TestInferPointToPoint(t *testing.T) {
	net := netWith(t, [][4]string{{"a", "e0", "b", "e0"}})
	topo := Infer(net)
	if len(topo.Edges) != 2 {
		t.Fatalf("edges = %v", topo.Edges)
	}
	e, ok := topo.EdgeFrom("a", "e0")
	if !ok || e.Node2 != "b" || e.Iface2 != "e0" {
		t.Errorf("EdgeFrom wrong: %v %v", e, ok)
	}
	if _, ok := topo.EdgeFrom("a", "missing"); ok {
		t.Error("missing iface should not resolve")
	}
}

func TestInferMultiAccess(t *testing.T) {
	net := config.NewNetwork()
	for i, name := range []string{"a", "b", "c"} {
		d := config.NewDevice(name, "vi")
		d.Interfaces["e0"] = &config.Interface{Name: "e0", Active: true,
			Addresses: []ip4.Prefix{{Addr: ip4.Addr(0x0a000001 + uint32(i)), Len: 24}}}
		net.Devices[name] = d
	}
	topo := Infer(net)
	// 3 devices pairwise both directions = 6 edges.
	if len(topo.Edges) != 6 {
		t.Fatalf("edges = %d, want 6", len(topo.Edges))
	}
	// EdgeFrom is ambiguous on multi-access links.
	if _, ok := topo.EdgeFrom("a", "e0"); ok {
		t.Error("multi-access EdgeFrom should be ambiguous")
	}
	if got := len(topo.EdgesFrom("a", "e0")); got != 2 {
		t.Errorf("EdgesFrom = %d, want 2", got)
	}
}

func TestInferIgnoresInactiveAndHost(t *testing.T) {
	net := netWith(t, [][4]string{{"a", "e0", "b", "e0"}})
	net.Devices["b"].Interfaces["e0"].Active = false
	if topo := Infer(net); len(topo.Edges) != 0 {
		t.Errorf("inactive iface formed edges: %v", topo.Edges)
	}
	// /32 addresses never form subnets.
	net2 := config.NewNetwork()
	for _, n := range []string{"x", "y"} {
		d := config.NewDevice(n, "vi")
		d.Interfaces["lo"] = &config.Interface{Name: "lo", Active: true,
			Addresses: []ip4.Prefix{{Addr: ip4.MustParseAddr("1.1.1.1"), Len: 32}}}
		net2.Devices[n] = d
	}
	if topo := Infer(net2); len(topo.Edges) != 0 {
		t.Errorf("/32 formed edges: %v", topo.Edges)
	}
}

func TestEdgeReverse(t *testing.T) {
	e := Edge{Node1: "a", Iface1: "x", Node2: "b", Iface2: "y"}
	r := e.Reverse()
	if r.Node1 != "b" || r.Iface2 != "x" {
		t.Errorf("Reverse = %v", r)
	}
	if r.Reverse() != e {
		t.Error("double reverse should be identity")
	}
}

func TestColorGraphProper(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rnd.Intn(30)
		nodes := make([]string, n)
		for i := range nodes {
			nodes[i] = string(rune('a'+i%26)) + string(rune('0'+i/26))
		}
		var edges [][2]string
		for i := 0; i < n*2; i++ {
			a, b := nodes[rnd.Intn(n)], nodes[rnd.Intn(n)]
			edges = append(edges, [2]string{a, b})
		}
		c := ColorGraph(nodes, edges)
		if !c.Valid(edges) {
			t.Fatalf("improper coloring for %v", edges)
		}
		// Every node colored; classes partition the node set.
		seen := 0
		for _, class := range c.Order {
			seen += len(class)
		}
		if seen != n {
			t.Fatalf("classes cover %d of %d nodes", seen, n)
		}
	}
}

func TestColorGraphDeterministic(t *testing.T) {
	nodes := []string{"a", "b", "c", "d"}
	edges := [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}, {"d", "a"}}
	c1 := ColorGraph(nodes, edges)
	c2 := ColorGraph(nodes, edges)
	for _, n := range nodes {
		if c1.Color[n] != c2.Color[n] {
			t.Fatal("coloring not deterministic")
		}
	}
	// Even cycle is 2-colorable.
	if c1.NumColors != 2 {
		t.Errorf("cycle of 4 should use 2 colors, got %d", c1.NumColors)
	}
}

func TestColorGraphCompleteGraph(t *testing.T) {
	// K8: every node adjacent to every other — the worst case for the
	// parallel schedule (no two nodes may run together, n colors).
	var nodes []string
	for i := 0; i < 8; i++ {
		nodes = append(nodes, fmt.Sprintf("n%d", i))
	}
	var edges [][2]string
	for i := range nodes {
		for j := i + 1; j < len(nodes); j++ {
			edges = append(edges, [2]string{nodes[i], nodes[j]})
		}
	}
	c := ColorGraph(nodes, edges)
	if !c.Valid(edges) {
		t.Fatal("improper coloring of complete graph")
	}
	if c.NumColors != len(nodes) {
		t.Errorf("complete graph needs n colors, got %d", c.NumColors)
	}
	for _, class := range c.Order {
		if len(class) != 1 {
			t.Errorf("complete-graph class should be a singleton: %v", class)
		}
	}
}

func TestColorGraphStar(t *testing.T) {
	// Star: a hub adjacent to every leaf. Exactly 2 colors, and all
	// leaves share a class — the best case for the parallel schedule.
	nodes := []string{"hub"}
	var edges [][2]string
	for i := 0; i < 12; i++ {
		leaf := fmt.Sprintf("leaf%02d", i)
		nodes = append(nodes, leaf)
		edges = append(edges, [2]string{"hub", leaf})
	}
	c := ColorGraph(nodes, edges)
	if !c.Valid(edges) {
		t.Fatal("improper coloring of star")
	}
	if c.NumColors != 2 {
		t.Fatalf("star should 2-color, got %d", c.NumColors)
	}
	if got := len(c.Order[c.Color["leaf00"]]); got != 12 {
		t.Errorf("all 12 leaves should share one class, got %d", got)
	}
	if got := len(c.Order[c.Color["hub"]]); got != 1 {
		t.Errorf("hub should be alone in its class, got %d", got)
	}
}

func TestColorGraphDisconnectedComponents(t *testing.T) {
	// Two triangles plus isolated nodes. Components share the color
	// space, so the count is bounded by the neediest component (3), not
	// the sum, and isolated nodes land in the largest class.
	nodes := []string{"a1", "a2", "a3", "b1", "b2", "b3", "x", "y"}
	edges := [][2]string{
		{"a1", "a2"}, {"a2", "a3"}, {"a3", "a1"},
		{"b1", "b2"}, {"b2", "b3"}, {"b3", "b1"},
	}
	c := ColorGraph(nodes, edges)
	if !c.Valid(edges) {
		t.Fatal("improper coloring of disconnected graph")
	}
	if c.NumColors != 3 {
		t.Errorf("two triangles need exactly 3 colors, got %d", c.NumColors)
	}
	for _, n := range []string{"x", "y"} {
		if c.Color[n] != 0 {
			t.Errorf("isolated node %s should take the first color, got %d", n, c.Color[n])
		}
	}
	seen := 0
	for _, class := range c.Order {
		seen += len(class)
	}
	if seen != len(nodes) {
		t.Errorf("classes cover %d of %d nodes", seen, len(nodes))
	}
}
