// Package topo infers the layer-3 topology from interface addressing and
// provides the protocol-graph coloring that serializes route exchange
// between adjacent nodes (paper §4.1.2: "for each routing protocol, it
// computes the adjacencies, colors the graph, and allows only nodes of the
// same color to participate in the message exchange at the same time").
package topo

import (
	"sort"

	"repro/internal/config"
	"repro/internal/ip4"
)

// Edge is one directed L3 adjacency: a packet leaving Node1 via Iface1
// arrives at Node2's Iface2. Edges come in symmetric pairs.
type Edge struct {
	Node1, Iface1 string
	Node2, Iface2 string
}

// Reverse returns the opposite direction of the edge.
func (e Edge) Reverse() Edge {
	return Edge{Node1: e.Node2, Iface1: e.Iface2, Node2: e.Node1, Iface2: e.Iface1}
}

// Link is one undirected L3 adjacency in canonical orientation: the
// lexicographically smaller (node, iface) endpoint is always first, so the
// two directed edges of a pair map to the same Link value. Links are the
// unit of failure-scenario overlays ("this link is down").
type Link struct {
	Node1, Iface1 string
	Node2, Iface2 string
}

// Link returns the edge's canonical undirected link.
func (e Edge) Link() Link {
	if e.Node2 < e.Node1 || (e.Node2 == e.Node1 && e.Iface2 < e.Iface1) {
		return Link{Node1: e.Node2, Iface1: e.Iface2, Node2: e.Node1, Iface2: e.Iface1}
	}
	return Link{Node1: e.Node1, Iface1: e.Iface1, Node2: e.Node2, Iface2: e.Iface2}
}

// String renders the canonical "node1:iface1<->node2:iface2" form used in
// scenario identifiers and cache keys.
func (l Link) String() string {
	return l.Node1 + ":" + l.Iface1 + "<->" + l.Node2 + ":" + l.Iface2
}

// Canonical reorders the endpoints into the canonical orientation (the
// lexicographically smaller endpoint first), so links built by hand in
// either orientation compare equal.
func (l Link) Canonical() Link {
	if l.Node2 < l.Node1 || (l.Node2 == l.Node1 && l.Iface2 < l.Iface1) {
		return Link{Node1: l.Node2, Iface1: l.Iface2, Node2: l.Node1, Iface2: l.Iface1}
	}
	return l
}

// LessLink is the canonical ordering over links.
func LessLink(a, b Link) bool {
	if a.Node1 != b.Node1 {
		return a.Node1 < b.Node1
	}
	if a.Iface1 != b.Iface1 {
		return a.Iface1 < b.Iface1
	}
	if a.Node2 != b.Node2 {
		return a.Node2 < b.Node2
	}
	return a.Iface2 < b.Iface2
}

// Topology is the set of inferred L3 adjacencies.
type Topology struct {
	Edges  []Edge
	byNode map[string][]Edge
	byIfx  map[endpoint][]Edge
}

type endpoint struct{ node, iface string }

// Infer derives the topology: two active interfaces are adjacent when
// their configured prefixes lie in the same subnet (identical network
// address and length) on different devices. Multi-access subnets produce
// pairwise adjacencies.
func Infer(net *config.Network) *Topology {
	type member struct {
		node, iface string
		addr        ip4.Addr
	}
	bySubnet := make(map[ip4.Prefix][]member)
	for _, name := range net.DeviceNames() {
		d := net.Devices[name]
		for _, in := range d.InterfaceNames() {
			i := d.Interfaces[in]
			if !i.Active {
				continue
			}
			for _, p := range i.Addresses {
				if p.Len == 32 {
					continue // loopbacks/host addresses form no subnet
				}
				bySubnet[ip4.Prefix{Addr: p.First(), Len: p.Len}] = append(
					bySubnet[ip4.Prefix{Addr: p.First(), Len: p.Len}],
					member{node: name, iface: in, addr: p.Addr})
			}
		}
	}
	t := &Topology{byNode: make(map[string][]Edge), byIfx: make(map[endpoint][]Edge)}
	for _, members := range bySubnet {
		for a := range members {
			for b := range members {
				if a == b || members[a].node == members[b].node {
					continue
				}
				e := Edge{
					Node1: members[a].node, Iface1: members[a].iface,
					Node2: members[b].node, Iface2: members[b].iface,
				}
				t.Edges = append(t.Edges, e)
			}
		}
	}
	sort.Slice(t.Edges, func(i, j int) bool { return lessEdge(t.Edges[i], t.Edges[j]) })
	// Deduplicate (an interface pair can share multiple subnets).
	dedup := t.Edges[:0]
	for i, e := range t.Edges {
		if i == 0 || e != t.Edges[i-1] {
			dedup = append(dedup, e)
		}
	}
	t.Edges = dedup
	for _, e := range t.Edges {
		t.byNode[e.Node1] = append(t.byNode[e.Node1], e)
		ep := endpoint{e.Node1, e.Iface1}
		t.byIfx[ep] = append(t.byIfx[ep], e)
	}
	return t
}

func lessEdge(a, b Edge) bool {
	if a.Node1 != b.Node1 {
		return a.Node1 < b.Node1
	}
	if a.Iface1 != b.Iface1 {
		return a.Iface1 < b.Iface1
	}
	if a.Node2 != b.Node2 {
		return a.Node2 < b.Node2
	}
	return a.Iface2 < b.Iface2
}

// Links returns the topology's undirected links, sorted and deduplicated.
func (t *Topology) Links() []Link {
	out := make([]Link, 0, len(t.Edges)/2)
	for _, e := range t.Edges {
		out = append(out, e.Link())
	}
	sort.Slice(out, func(i, j int) bool { return LessLink(out[i], out[j]) })
	dedup := out[:0]
	for i, l := range out {
		if i == 0 || l != out[i-1] {
			dedup = append(dedup, l)
		}
	}
	return dedup
}

// Mask returns a topology without the given links and without any edge
// touching one of the given nodes — the edge-level projection of a failure
// scenario. Indexes are rebuilt; the receiver is never modified. With
// nothing to mask the receiver is returned unchanged.
func (t *Topology) Mask(links []Link, nodes []string) *Topology {
	if len(links) == 0 && len(nodes) == 0 {
		return t
	}
	dropLink := make(map[Link]bool, len(links))
	for _, l := range links {
		dropLink[l.Canonical()] = true
	}
	dropNode := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		dropNode[n] = true
	}
	nt := &Topology{byNode: make(map[string][]Edge), byIfx: make(map[endpoint][]Edge)}
	for _, e := range t.Edges {
		if dropNode[e.Node1] || dropNode[e.Node2] || dropLink[e.Link()] {
			continue
		}
		nt.Edges = append(nt.Edges, e)
	}
	for _, e := range nt.Edges {
		nt.byNode[e.Node1] = append(nt.byNode[e.Node1], e)
		ep := endpoint{e.Node1, e.Iface1}
		nt.byIfx[ep] = append(nt.byIfx[ep], e)
	}
	return nt
}

// Neighbors returns the edges out of node, in canonical order.
func (t *Topology) Neighbors(node string) []Edge { return t.byNode[node] }

// EdgeFrom returns the edge out of (node, iface), if the interface has
// exactly one discovered neighbor. Multi-access interfaces with several
// neighbors return false; the forwarding graph resolves those by next-hop
// IP instead.
func (t *Topology) EdgeFrom(node, iface string) (Edge, bool) {
	es := t.byIfx[endpoint{node, iface}]
	if len(es) != 1 {
		return Edge{}, false
	}
	return es[0], true
}

// EdgesFrom returns all edges out of (node, iface), in canonical order.
// The returned slice is shared with the topology's index and must not be
// modified: this lookup sits on the simulator's next-hop resolution hot
// path, where a per-call copy showed up as pure allocation churn.
func (t *Topology) EdgesFrom(node, iface string) []Edge {
	return t.byIfx[endpoint{node, iface}]
}

// Coloring assigns each node a color such that no two adjacent nodes share
// one. Nodes of the same color may safely exchange routes in the same step
// without racing on partially converged state.
type Coloring struct {
	Color     map[string]int
	NumColors int
	// Order lists color classes: Order[c] = sorted nodes with color c.
	Order [][]string
}

// ColorGraph greedily colors the undirected graph (Welsh–Powell order:
// highest degree first, name-tiebroken for determinism).
func ColorGraph(nodes []string, edges [][2]string) Coloring {
	adj := make(map[string]map[string]bool, len(nodes))
	for _, n := range nodes {
		adj[n] = make(map[string]bool)
	}
	for _, e := range edges {
		if e[0] == e[1] {
			continue
		}
		if adj[e[0]] == nil || adj[e[1]] == nil {
			continue // edge mentions unknown node
		}
		adj[e[0]][e[1]] = true
		adj[e[1]][e[0]] = true
	}
	order := append([]string(nil), nodes...)
	sort.Slice(order, func(i, j int) bool {
		di, dj := len(adj[order[i]]), len(adj[order[j]])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	c := Coloring{Color: make(map[string]int, len(nodes))}
	for _, n := range order {
		used := make(map[int]bool)
		for nb := range adj[n] {
			if col, ok := c.Color[nb]; ok {
				used[col] = true
			}
		}
		col := 0
		for used[col] {
			col++
		}
		c.Color[n] = col
		if col+1 > c.NumColors {
			c.NumColors = col + 1
		}
	}
	c.Order = make([][]string, c.NumColors)
	for _, n := range nodes {
		c.Order[c.Color[n]] = append(c.Order[c.Color[n]], n)
	}
	for _, class := range c.Order {
		sort.Strings(class)
	}
	return c
}

// Valid reports whether the coloring is proper for the given edges.
func (c Coloring) Valid(edges [][2]string) bool {
	for _, e := range edges {
		if e[0] != e[1] && c.Color[e[0]] == c.Color[e[1]] {
			return false
		}
	}
	return true
}
