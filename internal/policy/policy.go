// Package policy evaluates routing policies (route maps) against routes.
// It is the imperative replacement for the Datalog encoding the paper's
// Lesson 1 describes as unmaintainable: route maps here support regular
// expressions (community/AS-path lists) and arithmetic (metric increments)
// directly.
package policy

import (
	"repro/internal/config"
	"repro/internal/ip4"
	"repro/internal/routing"
)

// View is the mutable picture of a route as a policy sees it. Protocol
// engines convert to a View, run policies, and convert back.
type View struct {
	Prefix      ip4.Prefix
	Metric      uint32
	Tag         uint32
	NextHop     ip4.Addr
	LocalPref   uint32
	MED         uint32
	Weight      uint32
	Origin      routing.Origin
	ASPath      routing.ASPath
	Communities routing.CommunitySet
	SrcProtocol routing.Protocol
}

// ViewOf builds a View from a route.
func ViewOf(r routing.Route) View {
	v := View{
		Prefix:      r.Prefix,
		Metric:      r.Metric,
		Tag:         r.Tag,
		NextHop:     r.NextHop,
		SrcProtocol: r.Protocol,
	}
	if r.Attrs != nil {
		v.LocalPref = r.Attrs.LocalPref
		v.MED = r.Attrs.MED
		v.Weight = r.Attrs.Weight
		v.Origin = r.Attrs.Origin
		v.ASPath = r.Attrs.ASPath
		v.Communities = r.Attrs.Communities
	}
	return v
}

// Result reports the outcome of a policy evaluation.
type Result struct {
	Permit bool
	// MatchedClause is the sequence number of the deciding clause, or -1
	// for the implicit deny / default action. Used to annotate examples
	// (paper §4.4.3).
	MatchedClause int
}

// Env supplies the structures a policy may reference, plus the intern pool
// for attribute rewrites.
type Env struct {
	Device *config.Device
	Pool   *routing.Pool
}

// Eval runs the named route map over the view, mutating it when permitted.
//
// Undocumented-semantics choice (Lesson 3): a reference to a route map that
// is not defined anywhere permits all routes unchanged. The model surfaces
// the situation through the undefined-reference analysis rather than
// guessing a more restrictive behavior; the fidelity labs (§4.3.1) pin this
// choice down.
func (e Env) Eval(name string, v *View) Result {
	if name == "" {
		return Result{Permit: true, MatchedClause: -1}
	}
	rm, ok := e.Device.RouteMaps[name]
	if !ok {
		return Result{Permit: true, MatchedClause: -1}
	}
	for ci := range rm.Clauses {
		c := &rm.Clauses[ci]
		if !e.clauseMatches(c, v) {
			continue
		}
		if c.Action == config.Deny {
			return Result{Permit: false, MatchedClause: c.Seq}
		}
		e.applySets(c, v)
		return Result{Permit: true, MatchedClause: c.Seq}
	}
	// No clause matched: implicit deny.
	return Result{Permit: false, MatchedClause: -1}
}

func (e Env) clauseMatches(c *config.RouteMapClause, v *View) bool {
	for _, m := range c.Matches {
		if !e.matchOne(m, v) {
			return false
		}
	}
	return true
}

func (e Env) matchOne(m config.Match, v *View) bool {
	switch m.Kind {
	case config.MatchPrefixList:
		pl, ok := e.Device.PrefixLists[m.Name]
		if !ok {
			// Undefined prefix list matches nothing (and is reported by
			// the undefined-reference analysis).
			return false
		}
		return pl.Permits(v.Prefix)
	case config.MatchCommunityList:
		cl, ok := e.Device.CommunityLists[m.Name]
		if !ok {
			return false
		}
		rendered := make([]string, v.Communities.Len())
		for i := range rendered {
			rendered[i] = routing.CommunityString(v.Communities.At(i))
		}
		return cl.MatchesCommunities(rendered)
	case config.MatchASPathList:
		al, ok := e.Device.ASPathLists[m.Name]
		if !ok {
			return false
		}
		return al.MatchesPath(v.ASPath.String())
	case config.MatchMetric:
		return v.Metric == m.Value
	case config.MatchTag:
		return v.Tag == m.Value
	case config.MatchSourceProtocol:
		switch m.Proto {
		case "connected":
			return v.SrcProtocol == routing.Connected || v.SrcProtocol == routing.Local
		case "static":
			return v.SrcProtocol == routing.Static
		case "ospf":
			return v.SrcProtocol.IsOSPF()
		case "bgp":
			return v.SrcProtocol.IsBGP()
		}
		return false
	}
	return false
}

func (e Env) applySets(c *config.RouteMapClause, v *View) {
	for _, s := range c.Sets {
		switch s.Kind {
		case config.SetLocalPref:
			v.LocalPref = s.Value
		case config.SetMetric:
			v.Metric = s.Value
			v.MED = s.Value
		case config.SetMetricAdd:
			v.Metric += s.Value
			v.MED += s.Value
		case config.SetCommunity:
			v.Communities = e.Pool.CommunitySet(s.Communities...)
		case config.SetCommunityAdditive:
			vals := append(v.Communities.Values(), s.Communities...)
			v.Communities = e.Pool.CommunitySet(vals...)
		case config.SetASPathPrepend:
			v.ASPath = e.Pool.Prepend(v.ASPath, s.PrependASN, s.PrependN)
		case config.SetNextHop:
			v.NextHop = s.NextHop
		case config.SetWeight:
			v.Weight = s.Value
		case config.SetTag:
			v.Tag = s.Value
		case config.SetOriginIGP:
			v.Origin = routing.OriginIGP
		case config.SetOriginIncomplete:
			v.Origin = routing.OriginIncomplete
		}
	}
}
