package policy

import (
	"testing"

	"repro/internal/config"
	"repro/internal/ip4"
	"repro/internal/routing"
)

func env() Env {
	return Env{Device: config.NewDevice("r1", "vi"), Pool: routing.NewPool()}
}

func TestEmptyNamePermits(t *testing.T) {
	e := env()
	v := View{Prefix: ip4.MustParsePrefix("10.0.0.0/8")}
	if r := e.Eval("", &v); !r.Permit {
		t.Error("empty policy name must permit")
	}
}

func TestUndefinedRouteMapPermitsUnchanged(t *testing.T) {
	e := env()
	v := View{Prefix: ip4.MustParsePrefix("10.0.0.0/8"), LocalPref: 100}
	r := e.Eval("nonexistent", &v)
	if !r.Permit || v.LocalPref != 100 {
		t.Error("undefined route map must permit unchanged (modeled Lesson 3 choice)")
	}
}

func TestEmptyRouteMapDenies(t *testing.T) {
	e := env()
	e.Device.RouteMaps["empty"] = &config.RouteMap{Name: "empty"}
	v := View{}
	if r := e.Eval("empty", &v); r.Permit {
		t.Error("route map with no clauses must deny (implicit deny)")
	}
}

func TestPrefixListMatchAndSet(t *testing.T) {
	e := env()
	e.Device.PrefixLists["pl"] = &config.PrefixList{Name: "pl", Entries: []config.PrefixListEntry{
		{Seq: 10, Action: config.Permit, Prefix: ip4.MustParsePrefix("10.0.0.0/8"), Ge: 24, Le: 28},
	}}
	e.Device.RouteMaps["rm"] = &config.RouteMap{Name: "rm", Clauses: []config.RouteMapClause{
		{Seq: 10, Action: config.Permit,
			Matches: []config.Match{{Kind: config.MatchPrefixList, Name: "pl"}},
			Sets:    []config.Set{{Kind: config.SetLocalPref, Value: 200}}},
	}}
	hit := View{Prefix: ip4.MustParsePrefix("10.1.2.0/24")}
	if r := e.Eval("rm", &hit); !r.Permit || hit.LocalPref != 200 || r.MatchedClause != 10 {
		t.Errorf("matching prefix not permitted/set: %+v %+v", r, hit)
	}
	missLen := View{Prefix: ip4.MustParsePrefix("10.0.0.0/8")} // len 8 < ge 24
	if r := e.Eval("rm", &missLen); r.Permit {
		t.Error("prefix outside ge/le must fall to implicit deny")
	}
	missNet := View{Prefix: ip4.MustParsePrefix("11.0.0.0/24")}
	if r := e.Eval("rm", &missNet); r.Permit {
		t.Error("prefix outside network must be denied")
	}
}

func TestPrefixListEntrySemantics(t *testing.T) {
	p8 := ip4.MustParsePrefix("10.0.0.0/8")
	cases := []struct {
		e    config.PrefixListEntry
		in   string
		want bool
	}{
		{config.PrefixListEntry{Prefix: p8}, "10.0.0.0/8", true},
		{config.PrefixListEntry{Prefix: p8}, "10.1.0.0/16", false}, // exact only
		{config.PrefixListEntry{Prefix: p8, Ge: 16}, "10.1.0.0/16", true},
		{config.PrefixListEntry{Prefix: p8, Ge: 16}, "10.1.2.3/32", true},
		{config.PrefixListEntry{Prefix: p8, Le: 16}, "10.1.0.0/16", true},
		{config.PrefixListEntry{Prefix: p8, Le: 16}, "10.1.1.0/24", false},
		{config.PrefixListEntry{Prefix: p8, Ge: 15, Le: 17}, "10.1.0.0/16", true},
		{config.PrefixListEntry{Prefix: p8, Ge: 15, Le: 17}, "10.0.0.0/8", false},
	}
	for i, c := range cases {
		if got := c.e.Matches(ip4.MustParsePrefix(c.in)); got != c.want {
			t.Errorf("case %d: Matches(%s) = %v, want %v", i, c.in, got, c.want)
		}
	}
}

func TestFirstMatchOrder(t *testing.T) {
	e := env()
	e.Device.PrefixLists["all"] = &config.PrefixList{Name: "all", Entries: []config.PrefixListEntry{
		{Action: config.Permit, Prefix: ip4.MustParsePrefix("0.0.0.0/0"), Le: 32},
	}}
	e.Device.RouteMaps["rm"] = &config.RouteMap{Name: "rm", Clauses: []config.RouteMapClause{
		{Seq: 10, Action: config.Deny, Matches: []config.Match{{Kind: config.MatchTag, Value: 7}}},
		{Seq: 20, Action: config.Permit, Matches: []config.Match{{Kind: config.MatchPrefixList, Name: "all"}}},
	}}
	tagged := View{Prefix: ip4.MustParsePrefix("10.0.0.0/8"), Tag: 7}
	if r := e.Eval("rm", &tagged); r.Permit || r.MatchedClause != 10 {
		t.Errorf("deny clause should match first: %+v", r)
	}
	untagged := View{Prefix: ip4.MustParsePrefix("10.0.0.0/8"), Tag: 1}
	if r := e.Eval("rm", &untagged); !r.Permit || r.MatchedClause != 20 {
		t.Errorf("fallthrough to permit failed: %+v", r)
	}
}

func TestASPathRegex(t *testing.T) {
	e := env()
	e.Device.ASPathLists["no-transit"] = &config.ASPathList{Name: "no-transit", Entries: []config.RegexEntry{
		{Action: config.Permit, Regex: "_65010_"},
	}}
	e.Device.RouteMaps["rm"] = &config.RouteMap{Name: "rm", Clauses: []config.RouteMapClause{
		{Seq: 10, Action: config.Deny, Matches: []config.Match{{Kind: config.MatchASPathList, Name: "no-transit"}}},
		{Seq: 20, Action: config.Permit},
	}}
	through := View{ASPath: e.Pool.ASPath(65001, 65010, 65002)}
	if r := e.Eval("rm", &through); r.Permit {
		t.Error("path through 65010 should be denied")
	}
	clean := View{ASPath: e.Pool.ASPath(65001, 65002)}
	if r := e.Eval("rm", &clean); !r.Permit {
		t.Error("clean path should be permitted")
	}
	// "_65010_" must not match 165010 or 650101.
	similar := View{ASPath: e.Pool.ASPath(165010)}
	if r := e.Eval("rm", &similar); !r.Permit {
		t.Error("regex _65010_ must not match 165010")
	}
}

func TestCommunityListRegex(t *testing.T) {
	e := env()
	e.Device.CommunityLists["cust"] = &config.CommunityList{Name: "cust", Entries: []config.RegexEntry{
		{Action: config.Deny, Regex: "^65000:66$"},
		{Action: config.Permit, Regex: "^65000:"},
	}}
	e.Device.RouteMaps["rm"] = &config.RouteMap{Name: "rm", Clauses: []config.RouteMapClause{
		{Seq: 10, Action: config.Permit, Matches: []config.Match{{Kind: config.MatchCommunityList, Name: "cust"}},
			Sets: []config.Set{{Kind: config.SetLocalPref, Value: 300}}},
		{Seq: 20, Action: config.Permit},
	}}
	v := View{Communities: e.Pool.CommunitySet(65000<<16 | 100)}
	if r := e.Eval("rm", &v); r.MatchedClause != 10 || v.LocalPref != 300 {
		t.Errorf("community match failed: %+v lp=%d", r, v.LocalPref)
	}
	blocked := View{Communities: e.Pool.CommunitySet(65000<<16 | 66)}
	if r := e.Eval("rm", &blocked); r.MatchedClause != 20 {
		t.Errorf("deny entry in list should prevent clause 10 match: %+v", r)
	}
}

func TestSetsApplyInOrder(t *testing.T) {
	e := env()
	e.Device.RouteMaps["rm"] = &config.RouteMap{Name: "rm", Clauses: []config.RouteMapClause{
		{Seq: 10, Action: config.Permit, Sets: []config.Set{
			{Kind: config.SetMetric, Value: 100},
			{Kind: config.SetMetricAdd, Value: 50}, // arithmetic (Lesson 1)
			{Kind: config.SetCommunityAdditive, Communities: []uint32{65000<<16 | 1}},
			{Kind: config.SetASPathPrepend, PrependASN: 65099, PrependN: 2},
			{Kind: config.SetWeight, Value: 40},
			{Kind: config.SetTag, Value: 9},
			{Kind: config.SetOriginIncomplete},
			{Kind: config.SetNextHop, NextHop: ip4.MustParseAddr("192.0.2.1")},
		}},
	}}
	v := View{
		ASPath:      e.Pool.ASPath(65001),
		Communities: e.Pool.CommunitySet(65000<<16 | 2),
		Origin:      routing.OriginIGP,
	}
	if r := e.Eval("rm", &v); !r.Permit {
		t.Fatal("should permit")
	}
	if v.Metric != 150 {
		t.Errorf("metric arithmetic wrong: %d", v.Metric)
	}
	if v.Communities.Len() != 2 || !v.Communities.Has(65000<<16|1) || !v.Communities.Has(65000<<16|2) {
		t.Errorf("additive community wrong: %v", v.Communities)
	}
	if v.ASPath.String() != "65099 65099 65001" {
		t.Errorf("prepend wrong: %s", v.ASPath)
	}
	if v.Weight != 40 || v.Tag != 9 || v.Origin != routing.OriginIncomplete {
		t.Errorf("misc sets wrong: %+v", v)
	}
	if v.NextHop != ip4.MustParseAddr("192.0.2.1") {
		t.Errorf("next hop not set")
	}
}

func TestSetCommunityReplace(t *testing.T) {
	e := env()
	e.Device.RouteMaps["rm"] = &config.RouteMap{Name: "rm", Clauses: []config.RouteMapClause{
		{Seq: 10, Action: config.Permit, Sets: []config.Set{
			{Kind: config.SetCommunity, Communities: []uint32{1, 2}},
		}},
	}}
	v := View{Communities: e.Pool.CommunitySet(99)}
	e.Eval("rm", &v)
	if v.Communities.Has(99) || v.Communities.Len() != 2 {
		t.Errorf("replace semantics wrong: %v", v.Communities.Values())
	}
}

func TestMatchSourceProtocol(t *testing.T) {
	e := env()
	e.Device.RouteMaps["rm"] = &config.RouteMap{Name: "rm", Clauses: []config.RouteMapClause{
		{Seq: 10, Action: config.Permit, Matches: []config.Match{{Kind: config.MatchSourceProtocol, Proto: "connected"}}},
	}}
	conn := View{SrcProtocol: routing.Connected}
	if r := e.Eval("rm", &conn); !r.Permit {
		t.Error("connected should match")
	}
	st := View{SrcProtocol: routing.Static}
	if r := e.Eval("rm", &st); r.Permit {
		t.Error("static should not match connected")
	}
}

func TestUndefinedPrefixListMatchesNothing(t *testing.T) {
	e := env()
	e.Device.RouteMaps["rm"] = &config.RouteMap{Name: "rm", Clauses: []config.RouteMapClause{
		{Seq: 10, Action: config.Permit, Matches: []config.Match{{Kind: config.MatchPrefixList, Name: "ghost"}}},
	}}
	v := View{Prefix: ip4.MustParsePrefix("10.0.0.0/8")}
	if r := e.Eval("rm", &v); r.Permit {
		t.Error("clause with undefined prefix list must not match")
	}
}

func TestViewOfRoundTrip(t *testing.T) {
	pool := routing.NewPool()
	r := routing.Route{
		Prefix: ip4.MustParsePrefix("10.0.0.0/8"), Protocol: routing.EBGP,
		Metric: 5, Tag: 3, NextHop: ip4.MustParseAddr("1.1.1.1"),
		Attrs: pool.Attrs(routing.BGPAttrs{
			LocalPref: 150, MED: 5, Weight: 7, Origin: routing.OriginEGP,
			ASPath: pool.ASPath(1, 2), Communities: pool.CommunitySet(3),
		}),
	}
	v := ViewOf(r)
	if v.LocalPref != 150 || v.MED != 5 || v.Weight != 7 || v.Origin != routing.OriginEGP ||
		v.ASPath.Len() != 2 || !v.Communities.Has(3) || v.SrcProtocol != routing.EBGP {
		t.Errorf("ViewOf dropped attributes: %+v", v)
	}
	nonBGP := routing.Route{Prefix: ip4.MustParsePrefix("10.0.0.0/8"), Protocol: routing.OSPF, Metric: 10}
	v2 := ViewOf(nonBGP)
	if v2.Metric != 10 || v2.LocalPref != 0 {
		t.Errorf("non-BGP view wrong: %+v", v2)
	}
}
