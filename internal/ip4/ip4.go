// Package ip4 provides compact IPv4 address and prefix types used
// throughout the analysis pipeline. Batfish's data-plane model is
// IPv4-centric (the 261 base BDD variables encode an IPv4 header,
// paper §4.2.2), and representing addresses as uint32 keeps tries, masks,
// and interning cheap.
package ip4

import (
	"fmt"
	"strconv"
	"strings"
)

// Addr is an IPv4 address in host byte order.
type Addr uint32

// Prefix is an IPv4 CIDR prefix. Addr may have bits set beyond Len;
// Canonical() clears them.
type Prefix struct {
	Addr Addr
	Len  uint8
}

// MustParseAddr parses a dotted-quad address and panics on error.
// For use in tests and static tables.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// ParseAddr parses a dotted-quad IPv4 address.
func ParseAddr(s string) (Addr, error) {
	var a Addr
	rest := s
	for i := 0; i < 4; i++ {
		var part string
		if i < 3 {
			dot := strings.IndexByte(rest, '.')
			if dot < 0 {
				return 0, fmt.Errorf("ip4: invalid address %q", s)
			}
			part, rest = rest[:dot], rest[dot+1:]
		} else {
			part = rest
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 0 || v > 255 || (len(part) > 1 && part[0] == '0') {
			return 0, fmt.Errorf("ip4: invalid address %q", s)
		}
		a = a<<8 | Addr(v)
	}
	return a, nil
}

// String returns the dotted-quad form.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// Octet returns the i-th octet (0 = most significant).
func (a Addr) Octet(i int) byte { return byte(a >> (24 - 8*i)) }

// MustParsePrefix parses CIDR notation and panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// ParsePrefix parses CIDR notation ("10.0.0.0/8").
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("ip4: missing / in prefix %q", s)
	}
	a, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	l, err := strconv.Atoi(s[slash+1:])
	if err != nil || l < 0 || l > 32 {
		return Prefix{}, fmt.Errorf("ip4: invalid prefix length in %q", s)
	}
	return Prefix{Addr: a, Len: uint8(l)}, nil
}

// String returns CIDR notation of the canonical prefix.
func (p Prefix) String() string {
	return fmt.Sprintf("%s/%d", p.Canonical().Addr, p.Len)
}

// Mask returns the netmask for length l.
func Mask(l uint8) Addr {
	if l == 0 {
		return 0
	}
	return Addr(^uint32(0) << (32 - l))
}

// Canonical returns p with host bits cleared.
func (p Prefix) Canonical() Prefix {
	return Prefix{Addr: p.Addr & Mask(p.Len), Len: p.Len}
}

// Contains reports whether a is inside p.
func (p Prefix) Contains(a Addr) bool {
	return a&Mask(p.Len) == p.Addr&Mask(p.Len)
}

// ContainsPrefix reports whether q is a subnet of (or equal to) p.
func (p Prefix) ContainsPrefix(q Prefix) bool {
	return q.Len >= p.Len && p.Contains(q.Addr)
}

// Overlaps reports whether p and q share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	return p.ContainsPrefix(q) || q.ContainsPrefix(p)
}

// First returns the lowest address in p.
func (p Prefix) First() Addr { return p.Addr & Mask(p.Len) }

// Last returns the highest address in p.
func (p Prefix) Last() Addr { return p.Addr&Mask(p.Len) | ^Mask(p.Len) }

// Bit returns bit i of a, where bit 0 is the most significant.
func (a Addr) Bit(i int) bool { return a&(1<<(31-i)) != 0 }

// HostPrefix returns the /32 prefix for a.
func HostPrefix(a Addr) Prefix { return Prefix{Addr: a, Len: 32} }

// Compare orders prefixes by (address, length); it defines the canonical
// RIB display order.
func (p Prefix) Compare(q Prefix) int {
	pc, qc := p.Canonical(), q.Canonical()
	switch {
	case pc.Addr < qc.Addr:
		return -1
	case pc.Addr > qc.Addr:
		return 1
	case pc.Len < qc.Len:
		return -1
	case pc.Len > qc.Len:
		return 1
	}
	return 0
}
