package ip4

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in   string
		want Addr
		err  bool
	}{
		{"0.0.0.0", 0, false},
		{"255.255.255.255", 0xffffffff, false},
		{"10.0.0.1", 0x0a000001, false},
		{"192.168.1.2", 0xc0a80102, false},
		{"1.2.3", 0, true},
		{"1.2.3.4.5", 0, true},
		{"256.0.0.1", 0, true},
		{"01.2.3.4", 0, true},
		{"a.b.c.d", 0, true},
		{"", 0, true},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParseAddr(%q) err=%v, want err=%v", c.in, err, c.err)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("ParseAddr(%q) = %x, want %x", c.in, got, c.want)
		}
	}
}

func TestAddrStringRoundTrip(t *testing.T) {
	check := func(a uint32) bool {
		addr := Addr(a)
		got, err := ParseAddr(addr.String())
		return err == nil && got == addr
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestParsePrefix(t *testing.T) {
	p := MustParsePrefix("10.1.2.3/8")
	if p.Canonical().Addr != MustParseAddr("10.0.0.0") {
		t.Errorf("canonical wrong: %v", p.Canonical())
	}
	if p.String() != "10.0.0.0/8" {
		t.Errorf("String = %q", p.String())
	}
	for _, bad := range []string{"10.0.0.0", "10.0.0.0/33", "10.0.0.0/-1", "x/8"} {
		if _, err := ParsePrefix(bad); err == nil {
			t.Errorf("ParsePrefix(%q) should fail", bad)
		}
	}
}

func TestContains(t *testing.T) {
	p := MustParsePrefix("192.168.0.0/16")
	if !p.Contains(MustParseAddr("192.168.255.1")) {
		t.Error("should contain")
	}
	if p.Contains(MustParseAddr("192.169.0.1")) {
		t.Error("should not contain")
	}
	all := MustParsePrefix("0.0.0.0/0")
	if !all.Contains(MustParseAddr("8.8.8.8")) {
		t.Error("default should contain everything")
	}
}

func TestContainsPrefixAndOverlaps(t *testing.T) {
	a := MustParsePrefix("10.0.0.0/8")
	b := MustParsePrefix("10.1.0.0/16")
	c := MustParsePrefix("11.0.0.0/8")
	if !a.ContainsPrefix(b) || b.ContainsPrefix(a) {
		t.Error("ContainsPrefix wrong")
	}
	if !a.Overlaps(b) || !b.Overlaps(a) || a.Overlaps(c) {
		t.Error("Overlaps wrong")
	}
}

func TestFirstLast(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/30")
	if p.First() != MustParseAddr("10.0.0.0") || p.Last() != MustParseAddr("10.0.0.3") {
		t.Errorf("First/Last wrong: %v %v", p.First(), p.Last())
	}
	h := HostPrefix(MustParseAddr("1.2.3.4"))
	if h.First() != h.Last() {
		t.Error("host prefix first != last")
	}
}

func TestMask(t *testing.T) {
	if Mask(0) != 0 {
		t.Error("Mask(0) != 0")
	}
	if Mask(32) != 0xffffffff {
		t.Error("Mask(32) wrong")
	}
	if Mask(24) != 0xffffff00 {
		t.Error("Mask(24) wrong")
	}
}

func TestBit(t *testing.T) {
	a := MustParseAddr("128.0.0.1")
	if !a.Bit(0) || a.Bit(1) || !a.Bit(31) {
		t.Error("Bit extraction wrong")
	}
}

func TestCompare(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		p := Prefix{Addr: Addr(rnd.Uint32()), Len: uint8(rnd.Intn(33))}
		q := Prefix{Addr: Addr(rnd.Uint32()), Len: uint8(rnd.Intn(33))}
		if p.Compare(q) != -q.Compare(p) {
			t.Fatalf("Compare not antisymmetric: %v %v", p, q)
		}
		if p.Compare(p) != 0 {
			t.Fatalf("Compare(p,p) != 0")
		}
	}
}

func TestContainsMatchesFirstLast(t *testing.T) {
	check := func(a uint32, l8 uint8) bool {
		p := Prefix{Addr: Addr(a), Len: l8 % 33}
		return p.Contains(p.First()) && p.Contains(p.Last())
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestOctet(t *testing.T) {
	a := MustParseAddr("1.2.3.4")
	for i, want := range []byte{1, 2, 3, 4} {
		if a.Octet(i) != want {
			t.Errorf("Octet(%d) = %d, want %d", i, a.Octet(i), want)
		}
	}
}
