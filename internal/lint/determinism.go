package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism enforces the paper's §4.1.2 lesson: simulation results
// must be bit-for-bit reproducible. In the deterministic packages it
// flags (a) map range loops whose bodies append to a slice that is not
// subsequently sorted, or that write directly into an output/hash
// stream, and (b) any use of time.Now/time.Since or math/rand.
// Test files are exempt (they are never loaded); the seeded harnesses
// in internal/faults and internal/netgen are outside the scope list by
// design.
type Determinism struct{}

// deterministicScope is the set of packages whose outputs feed
// fingerprints, dataplane artifacts, and user-visible diagnostics.
var deterministicScope = []string{
	"repro/internal/dataplane",
	"repro/internal/routing",
	"repro/internal/fib",
	"repro/internal/topo",
	"repro/internal/diag",
	"repro/internal/sweep",
	"repro/internal/cluster",
}

func (Determinism) Name() string { return "determinism" }

func (Determinism) Doc() string {
	return "order-dependent map iteration, time.Now, or math/rand in deterministic packages"
}

func (Determinism) Check(_ *Program, p *Package) []Finding {
	if !inScope(p.Path, deterministicScope) {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		out = append(out, checkClockAndRand(p, f)...)
		funcBodies(f, func(_ *ast.FuncDecl, body *ast.BlockStmt) {
			out = append(out, checkMapRanges(p, body)...)
		})
	}
	return out
}

// checkClockAndRand flags wall-clock reads and PRNG use.
func checkClockAndRand(p *Package, f *ast.File) []Finding {
	var out []Finding
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := p.Info.Uses[id].(*types.PkgName)
		if !ok {
			return true
		}
		switch pn.Imported().Path() {
		case "time":
			if sel.Sel.Name == "Now" || sel.Sel.Name == "Since" {
				out = append(out, finding(p, "determinism", sel.Pos(),
					"wall-clock read time.%s in deterministic package %s (use logical clocks, §4.1.2)",
					sel.Sel.Name, p.Path))
			}
		case "math/rand", "math/rand/v2":
			out = append(out, finding(p, "determinism", sel.Pos(),
				"PRNG use rand.%s in deterministic package %s", sel.Sel.Name, p.Path))
		}
		return true
	})
	return out
}

// checkMapRanges flags map iteration whose order can leak into results:
// writes to an output/hash stream inside the loop, or appends into a
// slice that is never sorted afterwards in the same function.
func checkMapRanges(p *Package, body *ast.BlockStmt) []Finding {
	var out []Finding
	walkSkippingFuncLits(body, func(n ast.Node) {
		r, ok := n.(*ast.RangeStmt)
		if !ok {
			return
		}
		if t := p.Info.TypeOf(r.X); t == nil {
			return
		} else if _, isMap := t.Underlying().(*types.Map); !isMap {
			return
		}
		// Sinks inside the loop body.
		walkSkippingFuncLits(r.Body, func(n ast.Node) {
			switch v := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range v.Rhs {
					call, ok := rhs.(*ast.CallExpr)
					if !ok || !isBuiltinAppend(p.Info, call) || i >= len(v.Lhs) {
						continue
					}
					target := types.ExprString(v.Lhs[i])
					if !sortedAfter(p, body, r, target) {
						out = append(out, finding(p, "determinism", v.Pos(),
							"%s accumulates map iteration order and is not sorted afterwards", target))
					}
				}
			case *ast.CallExpr:
				if name, ok := isOrderedSink(p, v); ok {
					out = append(out, finding(p, "determinism", v.Pos(),
						"%s inside map range emits results in map iteration order", name))
				} else if name, ok := isClockedMutation(p, v); ok {
					out = append(out, finding(p, "determinism", v.Pos(),
						"%s inside map range orders RIB deltas and logical-clock draws by map iteration (§4.1.2); iterate sorted keys instead", name))
				}
			}
		})
	})
	return out
}

// isBuiltinAppend reports whether the call is the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// isOrderedSink reports whether the call feeds an order-sensitive
// stream: a Write*-family method on an io.Writer implementation
// (covers hash.Hash, strings.Builder, bytes.Buffer, files), or an
// fmt print function.
func isOrderedSink(p *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	// fmt.Fprintf / fmt.Printf / fmt.Fprintln ... emit formatted output
	// (fmt.Sprintf and friends build values and are order-neutral).
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
			if pn.Imported().Path() == "fmt" &&
				(strings.HasPrefix(sel.Sel.Name, "Print") || strings.HasPrefix(sel.Sel.Name, "Fprint")) {
				return "fmt." + sel.Sel.Name, true
			}
			return "", false // other package-qualified calls are not write methods
		}
	}
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
	default:
		return "", false
	}
	recv := p.Info.TypeOf(sel.X)
	if recv == nil || !implementsIOWriter(recv) {
		return "", false
	}
	return types.ExprString(sel.X) + "." + sel.Sel.Name, true
}

// clockedMutators are methods whose call order is observable state: RIB
// mutations accumulate delta slices in call order and draw logical
// clocks (§4.1.2) that end up gob-encoded in persisted artifacts.
// Calling one inside a map range makes artifact bytes differ run to
// run — the VRF-map publish bug this check was written against.
var clockedMutators = map[string]map[string]bool{
	"RIB":   {"Merge": true, "Withdraw": true, "RemoveWhere": true},
	"Clock": {"Next": true},
}

// isClockedMutation reports whether the call is an order-sensitive
// mutation of a routing.RIB or routing.Clock.
func isClockedMutation(p *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if _, ok := p.Info.Selections[sel]; !ok {
		return "", false
	}
	pkgPath, name := namedType(p.Info.TypeOf(sel.X))
	if pkgPath != "repro/internal/routing" {
		return "", false
	}
	methods, ok := clockedMutators[name]
	if !ok || !methods[sel.Sel.Name] {
		return "", false
	}
	return "(routing." + name + ")." + sel.Sel.Name, true
}

// ioWriter is a structurally-built io.Writer, so the check does not
// depend on the analyzed package importing io.
var ioWriter = types.NewInterfaceType([]*types.Func{
	types.NewFunc(0, nil, "Write", types.NewSignatureType(nil, nil, nil,
		types.NewTuple(types.NewVar(0, nil, "p", types.NewSlice(types.Typ[types.Byte]))),
		types.NewTuple(
			types.NewVar(0, nil, "n", types.Typ[types.Int]),
			types.NewVar(0, nil, "err", types.Universe.Lookup("error").Type()),
		), false)),
}, nil)

func init() { ioWriter.Complete() }

func implementsIOWriter(t types.Type) bool {
	if types.Implements(t, ioWriter) {
		return true
	}
	if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), ioWriter)
	}
	return false
}

// sortedAfter reports whether, somewhere after the range loop in the
// same function body, the accumulated slice is passed to a sort/slices
// call — the idiomatic collect-keys-then-sort pattern.
func sortedAfter(p *Package, body *ast.BlockStmt, r *ast.RangeStmt, target string) bool {
	sorted := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < r.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := p.Info.Uses[id].(*types.PkgName)
		if !ok {
			return true
		}
		switch pn.Imported().Path() {
		case "sort", "slices":
			for _, arg := range call.Args {
				if types.ExprString(arg) == target || types.ExprString(arg) == "&"+target {
					sorted = true
				}
			}
		}
		return true
	})
	return sorted
}

// walkSkippingFuncLits walks the AST below root, calling fn for every
// node but not descending into function literals: nested literals are
// analyzed as function bodies in their own right.
func walkSkippingFuncLits(root ast.Node, fn func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		fn(n)
		return true
	})
}
