package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader discovers, parses, and type-checks packages by walking the
// module directory tree — no go/packages, no build cache. Standard
// library imports are satisfied by go/importer's source importer (one
// shared instance, so the stdlib is type-checked once per process);
// module-local "repro/..." imports are resolved against the module root
// and type-checked recursively with the same machinery.
type Loader struct {
	Fset   *token.FileSet
	Root   string // module root directory (holds go.mod)
	Module string // module path from go.mod, e.g. "repro"

	std     types.ImporterFrom
	cache   map[string]*types.Package // import-path → checked package (imports only)
	loading map[string]bool           // cycle guard
}

// NewLoader creates a Loader for the module rooted at dir (or the
// nearest ancestor of dir containing go.mod).
func NewLoader(dir string) (*Loader, error) {
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	// The source importer honors build.Default. Force cgo off so
	// packages like net resolve to their pure-Go fallbacks instead of
	// requiring a cgo toolchain at lint time.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	l := &Loader{
		Fset:    fset,
		Root:    root,
		Module:  mod,
		cache:   make(map[string]*types.Package),
		loading: make(map[string]bool),
	}
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer does not implement ImporterFrom")
	}
	l.std = std
	return l, nil
}

// findModuleRoot walks up from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			mod := strings.TrimSpace(rest)
			mod = strings.Trim(mod, `"`)
			if mod != "" {
				return mod, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.Root, 0)
}

// ImportFrom implements types.ImporterFrom: module-local paths are
// loaded from the repo tree, everything else goes to the source
// importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		if l.loading[path] {
			return nil, fmt.Errorf("lint: import cycle through %s", path)
		}
		l.loading[path] = true
		defer delete(l.loading, path)
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
		p, err := l.check(filepath.Join(l.Root, rel), path, nil)
		if err != nil {
			return nil, err
		}
		l.cache[path] = p.Types
		return p.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// LoadDir parses and type-checks the package in dir under the given
// import path, with full type info for analysis. The import path
// controls analyzer scoping, which is what lets the golden-file corpus
// masquerade as in-scope packages.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	return l.check(dir, importPath, info)
}

// check parses the non-test files of dir and type-checks them.
func (l *Loader) check(dir, importPath string, info *types.Info) (*Package, error) {
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	p := &Package{Path: importPath, Dir: dir, Fset: l.Fset, Files: files, Info: info}
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error:       func(err error) { p.TypeErrs = append(p.TypeErrs, err) },
	}
	tp, _ := conf.Check(importPath, l.Fset, files, info)
	p.Types = tp
	return p, nil
}

// parseDir parses every non-test .go file in dir (no recursion),
// skipping files excluded by build tags we care about — none today, so
// this is a plain suffix filter.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// Packages resolves CLI-style package patterns relative to the module
// root: "./..." and "./dir/..." walk subtrees, anything else names one
// directory. Directories named testdata or vendor, hidden directories,
// and directories without non-test Go files are skipped.
func (l *Loader) Packages(patterns []string) ([]*Package, error) {
	sorted, err := l.ResolveDirs(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, d := range sorted {
		rel, err := filepath.Rel(l.Root, d)
		if err != nil {
			return nil, err
		}
		path := l.Module
		if rel != "." {
			path = l.Module + "/" + filepath.ToSlash(rel)
		}
		p, err := l.LoadDir(d, path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// ResolveDirs expands the CLI patterns into the sorted package
// directories they name, without parsing or type-checking anything.
// The run cache uses this to compute content-hash keys cheaply.
func (l *Loader) ResolveDirs(patterns []string) ([]string, error) {
	dirs := map[string]bool{}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			if err := l.walk(l.Root, dirs); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			base := filepath.Join(l.Root, strings.TrimSuffix(pat, "/..."))
			if err := l.walk(base, dirs); err != nil {
				return nil, err
			}
		default:
			d := filepath.Join(l.Root, pat)
			if hasGoFiles(d) {
				dirs[d] = true
			} else {
				return nil, fmt.Errorf("lint: no Go files in %s", pat)
			}
		}
	}
	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)
	return sorted, nil
}

// walk collects every package directory under base.
func (l *Loader) walk(base string, dirs map[string]bool) error {
	return filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || name == "vendor" ||
				(strings.HasPrefix(name, ".") && path != base) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dirs[filepath.Dir(path)] = true
		}
		return nil
	})
}

// hasGoFiles reports whether dir contains at least one non-test Go file.
func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}
