package lint

import (
	"strings"
)

// suppressTag is the comment marker that exempts one line from one
// check: //gblint:ignore <check> <reason>. The reason is mandatory —
// a bare suppression is itself reported (check "suppression") so the
// tree can never accumulate unexplained exemptions.
const suppressTag = "gblint:ignore"

// SuppressionCheck is the pseudo-check name under which malformed
// suppressions are reported. It cannot itself be suppressed.
const SuppressionCheck = "suppression"

type suppression struct {
	check string
	file  string
	line  int // the comment's own line; covers this line and the next
}

type suppressionSet struct {
	rules     []suppression
	malformed []Finding
}

// covers reports whether the finding is exempted by a suppression on
// its own line (trailing comment) or the line immediately above
// (comment-above style). Malformed-suppression findings are never
// covered.
func (s suppressionSet) covers(f Finding) bool {
	if f.Check == SuppressionCheck {
		return false
	}
	for _, r := range s.rules {
		if r.check != f.Check || r.file != f.File {
			continue
		}
		if f.Line == r.line || f.Line == r.line+1 {
			return true
		}
	}
	return false
}

// collectSuppressions scans every comment in the package for
// suppression markers, validating that each names a known check and
// carries a non-empty reason.
func collectSuppressions(p *Package) suppressionSet {
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name()] = true
	}
	var set suppressionSet
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := cutSuppressTag(c.Text)
				if !ok {
					continue
				}
				file, line, _ := posOf(p.Fset, c.Pos())
				fields := strings.Fields(text)
				switch {
				case len(fields) == 0:
					set.malformed = append(set.malformed, Finding{
						Check: SuppressionCheck, File: file, Line: line, Col: 1,
						Message: "suppression names no check: //gblint:ignore <check> <reason>",
					})
				case !known[fields[0]]:
					set.malformed = append(set.malformed, Finding{
						Check: SuppressionCheck, File: file, Line: line, Col: 1,
						Message: "suppression names unknown check " + quoted(fields[0]),
					})
				case len(fields) < 2:
					set.malformed = append(set.malformed, Finding{
						Check: SuppressionCheck, File: file, Line: line, Col: 1,
						Message: "suppression for " + quoted(fields[0]) + " missing mandatory reason",
					})
				default:
					set.rules = append(set.rules, suppression{
						check: fields[0], file: file, line: line,
					})
				}
			}
		}
	}
	return set
}

// cutSuppressTag extracts the text after the //gblint:ignore marker
// from a comment, reporting whether the marker is present.
func cutSuppressTag(comment string) (string, bool) {
	body := strings.TrimPrefix(comment, "//")
	body = strings.TrimSpace(body)
	rest, ok := strings.CutPrefix(body, suppressTag)
	if !ok {
		return "", false
	}
	// Drop a trailing golden-corpus expectation if one shares the line.
	if i := strings.Index(rest, "// want"); i >= 0 {
		rest = rest[:i]
	}
	return strings.TrimSpace(rest), true
}

func quoted(s string) string { return `"` + s + `"` }
