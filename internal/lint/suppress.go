package lint

import (
	"strings"
)

// suppressTag is the comment marker that exempts one line from one or
// more checks: //gblint:ignore <check>[,<check>...] <reason>. The
// reason is mandatory — a bare suppression is itself reported (check
// "suppression") so the tree can never accumulate unexplained
// exemptions. Block-comment form (/*gblint:ignore ... */) is also
// accepted, which is how two independent suppressions can share one
// source line.
const suppressTag = "gblint:ignore"

// SuppressionCheck is the pseudo-check name under which malformed
// suppressions are reported. It cannot itself be suppressed.
const SuppressionCheck = "suppression"

type suppression struct {
	check string
	file  string
	line  int // the comment's own line; covers this line and the next
}

type suppressionSet struct {
	rules     []suppression
	malformed []Finding
}

// covers reports whether the finding is exempted by a suppression on
// its own line (trailing comment) or the line immediately above
// (comment-above style). Malformed-suppression findings are never
// covered.
func (s suppressionSet) covers(f Finding) bool {
	if f.Check == SuppressionCheck {
		return false
	}
	for _, r := range s.rules {
		if r.check != f.Check || r.file != f.File {
			continue
		}
		if f.Line == r.line || f.Line == r.line+1 {
			return true
		}
	}
	return false
}

// collectSuppressions scans every comment in the package for
// suppression markers, validating that each names known checks and
// carries a non-empty reason. A comma-separated check list produces
// one rule per named check; unknown or empty members are reported
// individually while valid members in the same list still take effect.
func collectSuppressions(p *Package) suppressionSet {
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name()] = true
	}
	var set suppressionSet
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := cutSuppressTag(c.Text)
				if !ok {
					continue
				}
				file, line, _ := posOf(p.Fset, c.Pos())
				malformed := func(msg string) {
					set.malformed = append(set.malformed, Finding{
						Check: SuppressionCheck, File: file, Line: line, Col: 1,
						Message: msg,
					})
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					malformed("suppression names no check: //gblint:ignore <check>[,<check>...] <reason>")
					continue
				}
				var valid []string
				for _, name := range strings.Split(fields[0], ",") {
					name = strings.TrimSpace(name)
					switch {
					case name == "":
						malformed("empty check name in suppression list " + quoted(fields[0]))
					case !known[name]:
						malformed("suppression names unknown check " + quoted(name))
					default:
						valid = append(valid, name)
					}
				}
				if len(valid) == 0 {
					continue
				}
				if len(fields) < 2 {
					malformed("suppression for " + quoted(fields[0]) + " missing mandatory reason")
					continue
				}
				for _, name := range valid {
					set.rules = append(set.rules, suppression{
						check: name, file: file, line: line,
					})
				}
			}
		}
	}
	return set
}

// cutSuppressTag extracts the text after the //gblint:ignore marker
// from a line or block comment, reporting whether the marker is
// present.
func cutSuppressTag(comment string) (string, bool) {
	var body string
	if strings.HasPrefix(comment, "/*") {
		body = strings.TrimSuffix(strings.TrimPrefix(comment, "/*"), "*/")
	} else {
		body = strings.TrimPrefix(comment, "//")
	}
	body = strings.TrimSpace(body)
	rest, ok := strings.CutPrefix(body, suppressTag)
	if !ok {
		return "", false
	}
	// Drop a trailing golden-corpus expectation if one shares the line.
	if i := strings.Index(rest, "// want"); i >= 0 {
		rest = rest[:i]
	}
	return strings.TrimSpace(rest), true
}

func quoted(s string) string { return `"` + s + `"` }
