package lint

import (
	"go/ast"
)

// CtxPlumb enforces the PR-3 robustness contract: every exported entry
// point in the pipeline/service layers that can run for an unbounded
// time — because it loops without a bound or spawns goroutines — must
// accept a context.Context so callers can cancel it. Functions taking
// an *http.Request are exempt (the request carries the context), as are
// methods on unexported types (not callable from outside the package).
type CtxPlumb struct{}

// ctxScope lists the packages whose exported surface must be
// cancellable.
var ctxScope = []string{
	"repro/internal/pipeline",
	"repro/internal/core",
	"repro/internal/dataplane",
	"repro/internal/server",
	"repro/internal/sweep",
	"repro/internal/cluster",
}

func (CtxPlumb) Name() string { return "ctx-plumb" }

func (CtxPlumb) Doc() string {
	return "exported functions that loop unboundedly or spawn goroutines without a context.Context"
}

// Check keeps its own AST walk rather than reading summary facts: its
// uncancellable test deliberately includes nested function literals
// (a goroutine spawned three closures deep still needs the exported
// entry point to take a context), while the shared per-body facts
// exclude nested literals by design.
func (CtxPlumb) Check(_ *Program, p *Package) []Finding {
	if !inScope(p.Path, ctxScope) {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if fd.Recv != nil && !exportedReceiver(fd.Recv) {
				continue
			}
			if hasParamOf(p, fd, "context", "Context") || hasParamOf(p, fd, "net/http", "Request") {
				continue
			}
			if reason, bad := uncancellable(fd.Body); bad {
				out = append(out, finding(p, "ctx-plumb", fd.Name.Pos(),
					"exported %s %s but takes no context.Context (callers cannot cancel it)",
					fd.Name.Name, reason))
			}
		}
	}
	return out
}

// exportedReceiver reports whether the method receiver's base type name
// is exported.
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch v := t.(type) {
		case *ast.StarExpr:
			t = v.X
		case *ast.IndexExpr: // generic receiver
			t = v.X
		case *ast.IndexListExpr:
			t = v.X
		case *ast.Ident:
			return v.IsExported()
		default:
			return false
		}
	}
}

// hasParamOf reports whether any parameter's type (possibly behind a
// pointer) is the named type pkgPath.name.
func hasParamOf(p *Package, fd *ast.FuncDecl, pkgPath, name string) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		t := p.Info.TypeOf(field.Type)
		gotPkg, gotName := namedType(t)
		if gotPkg == pkgPath && gotName == name {
			return true
		}
	}
	return false
}

// uncancellable reports whether the body contains an unbounded loop
// (for with no condition) or spawns a goroutine, returning a human
// description of the first trigger found.
func uncancellable(body *ast.BlockStmt) (reason string, bad bool) {
	var why string
	ast.Inspect(body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch v := n.(type) {
		case *ast.ForStmt:
			if v.Cond == nil {
				why = "contains an unbounded for-loop"
			}
		case *ast.GoStmt:
			why = "spawns goroutines"
		}
		return true
	})
	return why, why != ""
}
