package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the interprocedural layer under the concurrency checks
// (DESIGN.md §7): a module-wide call graph over the loaded packages and
// per-function summaries of the facts the checks compose — locks
// acquired (including the diskcache directory flock as a pseudo-lock),
// I/O performed, channel receives, unbounded loops, goroutines spawned.
//
// Identity across type-check universes: the loader type-checks a
// package once as a root (with full syntax and Info) and possibly again
// as a dependency of another root, so *types.Object pointers are not
// stable across packages. Functions are therefore keyed by qualified
// name (pkg.(Recv).Name) and lock objects by declaration position
// (pkg|file:line:col) — both stable because every universe parses the
// same files into the shared FileSet.
//
// Soundness caveats (documented in DESIGN.md §7): calls through
// interfaces and func values are not resolved — the summary marks the
// caller dynamic and drops the edge, so facts reachable only through a
// dynamic call are invisible. Function literals contribute their own
// facts at their own sites but never propagate into the enclosing
// function's summary (a literal usually runs later, off the caller's
// locks). Summaries exist only for functions declared in packages
// loaded as roots: when gblint runs on a subset of the tree, calls into
// unloaded module packages are conservatively treated as fact-free.

// heldLock is one lock known to be held at a program point.
type heldLock struct {
	id     string // stable identity (pkg|file:line:col of the mutex object)
	label  string // human identity, e.g. "diskcache.Cache.mu"
	expr   string // source receiver expression at the acquisition, e.g. "c.mu"
	base   string // receiver base expression ("c" for "c.mu"), for re-lock matching
	method string // Lock, RLock, or the flock method name
	excl   bool   // exclusive acquisition (Lock or flock EX)
	pseudo bool   // directory flock pseudo-lock: ordering only, exempt from lock-io
}

// site is a program point plus the locks held there.
type lockedSite struct {
	pos  token.Pos
	held []heldLock
}

// callSite is a static call to a module function.
type callSite struct {
	lockedSite
	callee   *types.Func
	recvExpr string // rendered method receiver ("c" for c.flush()), "" otherwise
}

// ioSite is a direct I/O operation (os/io/net calls, os/net method
// calls — the lock-io sets).
type ioSite struct {
	lockedSite
	name string // rendered callee, e.g. "os.ReadFile" or "(os.File).Write"
}

// acquireSite is a lock acquisition, with the locks already held there.
type acquireSite struct {
	lockedSite
	lock heldLock
}

// goSite is a goroutine spawn: a named module function or a literal.
type goSite struct {
	pos    token.Pos
	callee *types.Func  // non-nil for `go f(...)` on a module function
	lit    *ast.FuncLit // non-nil for `go func(){...}()`
}

// loopSite is an unconditional for-loop (`for { ... }`).
type loopSite struct {
	pos     token.Pos
	canExit bool          // contains return / break(this loop) / goto / panic
	recv    bool          // contains a channel receive (select case or <-)
	callees []*types.Func // module calls inside the loop body
}

// bodyFacts are the per-function (or per-literal) facts the
// interprocedural checks compose.
type bodyFacts struct {
	pkg      *Package
	acquires []acquireSite
	calls    []callSite
	ios      []ioSite
	sends    []lockedSite
	gos      []goSite
	loops    []loopSite
	recv     bool // body contains any channel receive
	dynamic  bool // body has interface/func-value calls (summary incomplete)
}

// Program is the module-wide analysis view built by Run: every loaded
// package, facts for every declared function and literal, and the
// memoized interprocedural fixpoints the checks share.
type Program struct {
	Pkgs []*Package

	funcs    map[string]*funcNode         // funcID → declared function
	litFacts map[*ast.FuncLit]*bodyFacts  // literal body → facts
	filePkg  map[string]*Package          // filename → owning package
	order    []string                     // sorted funcIDs, for deterministic fixpoints

	ioChain  map[string][]string // funcID → witness call chain ending at an I/O name
	mayRecv  map[string]bool     // funcID → body (or callee) receives from a channel
	locksAcq map[string]map[string]lockAcq
	leaky    map[string]*leakInfo

	lockFindings []Finding // lock-order findings, computed once
	lockDone     bool
}

type funcNode struct {
	id    string
	obj   *types.Func
	pkg   *Package
	decl  *ast.FuncDecl
	facts *bodyFacts
}

// lockAcq is one lock a function may (transitively) acquire.
type lockAcq struct {
	lock  heldLock
	pos   token.Pos
	pkg   *Package
	chain []string // call chain from the summarized function to the acquisition
}

// leakInfo marks a function whose execution reaches an unbounded loop
// with no exit and no channel receive.
type leakInfo struct {
	pos   token.Pos
	pkg   *Package
	chain []string
}

// funcID returns the stable cross-universe identity of a function.
func funcID(f *types.Func) string {
	if f == nil {
		return ""
	}
	name := f.Name()
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		_, rname := namedType(sig.Recv().Type())
		name = "(" + rname + ")." + name
	}
	if f.Pkg() == nil {
		return name
	}
	return f.Pkg().Path() + "." + name
}

// objID returns the stable cross-universe identity of a lock object:
// its package plus its declaration position (every universe parses the
// same file into the shared FileSet, so positions agree).
func objID(fset *token.FileSet, obj types.Object) string {
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Path()
	}
	return pkg + "|" + fset.Position(obj.Pos()).String()
}

// BuildProgram assembles the module-wide view: facts for every function
// body in every package. The interprocedural fixpoints are computed
// lazily by the checks that need them.
func BuildProgram(pkgs []*Package) *Program {
	prog := &Program{
		Pkgs:     pkgs,
		funcs:    make(map[string]*funcNode),
		litFacts: make(map[*ast.FuncLit]*bodyFacts),
		filePkg:  make(map[string]*Package),
	}
	for _, p := range pkgs {
		if p.Info == nil {
			continue
		}
		for _, f := range p.Files {
			prog.filePkg[p.Fset.Position(f.Pos()).Filename] = p
			ast.Inspect(f, func(n ast.Node) bool {
				switch v := n.(type) {
				case *ast.FuncDecl:
					if v.Body == nil {
						return true
					}
					obj, _ := p.Info.Defs[v.Name].(*types.Func)
					if obj == nil {
						return true
					}
					node := &funcNode{
						id:    funcID(obj),
						obj:   obj,
						pkg:   p,
						decl:  v,
						facts: collectFacts(p, v.Body),
					}
					prog.funcs[node.id] = node
				case *ast.FuncLit:
					prog.litFacts[v] = collectFacts(p, v.Body)
				}
				return true
			})
		}
	}
	prog.order = make([]string, 0, len(prog.funcs))
	for id := range prog.funcs {
		prog.order = append(prog.order, id)
	}
	sort.Strings(prog.order)
	return prog
}

// node returns the declared-function node for a resolved callee, or nil
// when the callee was not loaded as a root package.
func (prog *Program) node(f *types.Func) *funcNode {
	if f == nil {
		return nil
	}
	return prog.funcs[funcID(f)]
}

// displayName renders a function for chain messages: Recv.Name or Name.
func displayName(f *types.Func) string {
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		_, rname := namedType(sig.Recv().Type())
		return rname + "." + f.Name()
	}
	return f.Name()
}

// staticCallee resolves a call to its compile-time callee. dynamic is
// true for interface-method and func-value calls, which have no static
// callee.
func staticCallee(p *Package, call *ast.CallExpr) (fn *types.Func, dynamic bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch o := p.Info.Uses[fun].(type) {
		case *types.Func:
			return o, false
		case *types.Var:
			return nil, true // call through a func-typed variable
		}
		return nil, false // builtin or conversion
	case *ast.SelectorExpr:
		if s, ok := p.Info.Selections[fun]; ok {
			f, ok := s.Obj().(*types.Func)
			if !ok {
				return nil, true // func-typed field
			}
			if types.IsInterface(s.Recv()) {
				return nil, true // dynamic dispatch
			}
			return f, false
		}
		switch o := p.Info.Uses[fun.Sel].(type) {
		case *types.Func:
			return o, false // package-qualified call
		case *types.Var:
			return nil, true // package-level func variable
		}
		return nil, false // qualified type conversion
	case *ast.FuncLit:
		return nil, false // immediately-invoked literal: analyzed as its own body
	}
	return nil, true
}

// lockIdentity resolves the receiver expression of a mutex method call
// ("s.mu" in s.mu.Lock()) to a stable lock identity and label.
func lockIdentity(p *Package, x ast.Expr) (id, label, base string, ok bool) {
	switch v := ast.Unparen(x).(type) {
	case *ast.SelectorExpr:
		var obj types.Object
		if s, found := p.Info.Selections[v]; found {
			obj = s.Obj()
		} else {
			obj = p.Info.Uses[v.Sel]
		}
		if obj == nil {
			return "", "", "", false
		}
		label = obj.Name()
		if _, owner := namedType(p.Info.TypeOf(v.X)); owner != "" {
			label = owner + "." + label
		}
		if obj.Pkg() != nil {
			label = obj.Pkg().Name() + "." + label
		}
		return objID(p.Fset, obj), label, types.ExprString(v.X), true
	case *ast.Ident:
		obj := p.Info.Uses[v]
		if obj == nil {
			return "", "", "", false
		}
		label = obj.Name()
		if obj.Pkg() != nil {
			label = obj.Pkg().Name() + "." + label
		}
		return objID(p.Fset, obj), label, v.Name, true
	}
	return "", "", "", false
}

// flockMethodNames are the methods treated as acquiring the directory
// flock pseudo-lock. The match is by name on any named receiver so the
// golden corpus can model the pattern without importing diskcache; in
// the real tree only diskcache defines them.
var flockMethodNames = map[string]bool{
	"flock":          true,
	"flockShared":    true,
	"flockExclusive": true,
}

// flockCall reports whether the call acquires a directory flock, and
// resolves the pseudo-lock identity (keyed by the receiver's named
// type, since the flock guards the one directory that type owns).
func flockCall(p *Package, call *ast.CallExpr) (id, label, base, method string, excl, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || !flockMethodNames[sel.Sel.Name] {
		return "", "", "", "", false, false
	}
	s, found := p.Info.Selections[sel]
	if !found {
		return "", "", "", "", false, false
	}
	pkgPath, name := namedType(s.Recv())
	if name == "" {
		return "", "", "", "", false, false
	}
	id = pkgPath + "|" + name + ".flock"
	label = name + ".flock"
	if s.Obj().Pkg() != nil {
		label = s.Obj().Pkg().Name() + "." + label
	}
	return id, label, types.ExprString(sel.X), sel.Sel.Name, sel.Sel.Name != "flockShared", true
}

// rawLockEvent is one acquisition or release in a body, in source order.
type rawLockEvent struct {
	pos      token.Pos
	end      token.Pos // acquisitions: end of the held region
	pairKey  string    // matches acquisitions to releases
	unlockBy string    // releases: the pairKey they release; "" for acquisitions
	lock     heldLock
	deferred bool
}

// collectLockEvents finds mutex Lock/Unlock pairs and flock
// acquire/release pairs in the body (not nested literals), then
// computes each acquisition's held region: from the acquisition to the
// first matching non-deferred release, or the end of the body.
func collectLockEvents(p *Package, body *ast.BlockStmt) []rawLockEvent {
	var events []rawLockEvent
	// releaseVars maps the object of a `unlock := c.flockX()` variable to
	// the pairKey of the flock acquisition it releases.
	releaseVars := make(map[types.Object]string)

	addFlock := func(call *ast.CallExpr, deferred bool, assignTo types.Object) bool {
		id, label, base, method, excl, ok := flockCall(p, call)
		if !ok {
			return false
		}
		pairKey := "flock|" + id + "|" + base
		events = append(events, rawLockEvent{
			pos:     call.Pos(),
			pairKey: pairKey,
			lock: heldLock{id: id, label: label, expr: base, base: baseExpr(base),
				method: method, excl: excl, pseudo: true},
			deferred: deferred,
		})
		if assignTo != nil {
			releaseVars[assignTo] = pairKey
		}
		return true
	}

	walkSkippingFuncLits(body, func(n ast.Node) {
		var call *ast.CallExpr
		deferred := false
		switch v := n.(type) {
		case *ast.AssignStmt:
			// unlock := c.flockExclusive()
			if len(v.Rhs) == 1 && len(v.Lhs) == 1 {
				if c, ok := v.Rhs[0].(*ast.CallExpr); ok {
					if id, ok := v.Lhs[0].(*ast.Ident); ok {
						addFlock(c, false, identObj(p, id))
					}
				}
			}
			return
		case *ast.DeferStmt:
			call = v.Call
			deferred = true
		case *ast.ExprStmt:
			c, ok := v.X.(*ast.CallExpr)
			if !ok {
				return
			}
			call = c
		default:
			return
		}
		// Release of a flock: `unlock()` / `defer unlock()`.
		if id, ok := call.Fun.(*ast.Ident); ok {
			if key, found := releaseVars[identObj2(p, id)]; found {
				events = append(events, rawLockEvent{pos: call.Pos(), unlockBy: key, deferred: deferred})
			}
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		if addFlock(call, deferred, nil) {
			return
		}
		method := sel.Sel.Name
		switch method {
		case "Lock", "RLock", "Unlock", "RUnlock":
		default:
			return
		}
		if !isSyncMutexMethod(p, sel) {
			return
		}
		id, label, _, ok := lockIdentity(p, sel.X)
		if !ok {
			id, label = "?|"+types.ExprString(sel.X), types.ExprString(sel.X)
		}
		expr := types.ExprString(sel.X)
		pairKey := "mutex|" + expr
		if method == "Unlock" || method == "RUnlock" {
			events = append(events, rawLockEvent{pos: call.Pos(),
				unlockBy: pairKey + "|" + strings.TrimSuffix(method, "Unlock"), deferred: deferred})
			return
		}
		events = append(events, rawLockEvent{
			pos:     call.Pos(),
			pairKey: pairKey + "|" + lockSuffix(method),
			lock: heldLock{id: id, label: label, expr: expr, base: baseExpr(expr),
				method: method, excl: method == "Lock"},
			deferred: deferred,
		})
	})

	// Compute held regions: first matching non-deferred release after the
	// acquisition ends the region; a deferred or missing release holds to
	// the end of the body.
	for i := range events {
		e := &events[i]
		if e.unlockBy != "" {
			continue
		}
		e.end = body.End()
		for j := i + 1; j < len(events); j++ {
			u := events[j]
			if u.unlockBy == e.pairKey {
				if !u.deferred {
					e.end = u.pos
				}
				break
			}
		}
	}
	return events
}

// lockSuffix distinguishes Lock/RLock pair keys so an RUnlock never
// closes a Lock region.
func lockSuffix(method string) string {
	if method == "RLock" {
		return "R"
	}
	return ""
}

// baseExpr returns the receiver base of a lock expression: "c" for
// "c.mu", "s.cache" for "s.cache.mu", the whole expression otherwise.
func baseExpr(expr string) string {
	if i := strings.LastIndex(expr, "."); i >= 0 {
		return expr[:i]
	}
	return expr
}

func identObj(p *Package, id *ast.Ident) types.Object {
	if obj := p.Info.Defs[id]; obj != nil {
		return obj
	}
	return p.Info.Uses[id]
}

func identObj2(p *Package, id *ast.Ident) types.Object {
	if obj := p.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Info.Defs[id]
}

// collectFacts computes the facts for one function or literal body.
// Nested literals are excluded everywhere (they are collected as bodies
// in their own right); lock regions follow the same pairing rules the
// lock-io check always used.
func collectFacts(p *Package, body *ast.BlockStmt) *bodyFacts {
	facts := &bodyFacts{pkg: p}
	events := collectLockEvents(p, body)
	heldAt := func(pos token.Pos) []heldLock {
		var held []heldLock
		for _, e := range events {
			if e.unlockBy == "" && e.pos < pos && pos < e.end {
				held = append(held, e.lock)
			}
		}
		return held
	}
	for _, e := range events {
		if e.unlockBy == "" {
			facts.acquires = append(facts.acquires, acquireSite{
				lockedSite: lockedSite{pos: e.pos, held: heldAt(e.pos)},
				lock:       e.lock,
			})
		}
	}

	walkSkippingFuncLits(body, func(n ast.Node) {
		switch v := n.(type) {
		case *ast.SendStmt:
			facts.sends = append(facts.sends, lockedSite{pos: v.Pos(), held: heldAt(v.Pos())})
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				facts.recv = true
			}
		case *ast.RangeStmt:
			if t := p.Info.TypeOf(v.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					facts.recv = true
				}
			}
		case *ast.GoStmt:
			site := goSite{pos: v.Pos()}
			if lit, ok := v.Call.Fun.(*ast.FuncLit); ok {
				site.lit = lit
			} else if fn, _ := staticCallee(p, v.Call); fn != nil {
				site.callee = fn
			}
			facts.gos = append(facts.gos, site)
		case *ast.ForStmt:
			if v.Cond == nil {
				facts.loops = append(facts.loops, analyzeLoop(p, v))
			}
		case *ast.CallExpr:
			if name, ok := isPkgCall(p.Info, v, lockIOPkgs); ok {
				if !lockIOPure[name] {
					facts.ios = append(facts.ios, ioSite{
						lockedSite: lockedSite{pos: v.Pos(), held: heldAt(v.Pos())}, name: name})
				}
				return
			}
			if name, ok := isOSNetMethodCall(p, v); ok {
				facts.ios = append(facts.ios, ioSite{
					lockedSite: lockedSite{pos: v.Pos(), held: heldAt(v.Pos())}, name: name})
				return
			}
			fn, dynamic := staticCallee(p, v)
			if dynamic {
				facts.dynamic = true
			}
			if fn != nil && fn.Pkg() != nil {
				site := callSite{
					lockedSite: lockedSite{pos: v.Pos(), held: heldAt(v.Pos())}, callee: fn}
				if sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr); ok {
					if _, isSelection := p.Info.Selections[sel]; isSelection {
						site.recvExpr = types.ExprString(sel.X)
					}
				}
				facts.calls = append(facts.calls, site)
			}
		}
	})
	return facts
}

// analyzeLoop classifies one `for { ... }` loop: can it exit, does it
// receive from a channel, and which module functions does it call.
func analyzeLoop(p *Package, loop *ast.ForStmt) loopSite {
	site := loopSite{pos: loop.Pos()}
	var walk func(n ast.Node, depth int)
	walk = func(n ast.Node, depth int) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch v := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
				if m != n {
					// Nested break target: walk it at increased depth so a
					// plain `break` inside does not count as exiting our loop.
					walk(m, depth+1)
					return false
				}
			case *ast.ReturnStmt:
				site.canExit = true
			case *ast.BranchStmt:
				switch {
				case v.Tok == token.GOTO, v.Label != nil:
					site.canExit = true // conservative: labeled jumps can leave the loop
				case v.Tok == token.BREAK && depth == 0:
					site.canExit = true
				}
			case *ast.UnaryExpr:
				if v.Op == token.ARROW {
					site.recv = true
				}
			case *ast.CallExpr:
				if id, ok := v.Fun.(*ast.Ident); ok {
					if b, ok := p.Info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
						site.canExit = true
					}
				}
				if fn, _ := staticCallee(p, v); fn != nil {
					site.callees = append(site.callees, fn)
				}
			}
			return true
		})
	}
	// Walk each top-level statement of the loop body at depth 0. Select
	// and switch statements directly in the body still start at depth 1
	// for break purposes — handled by the m != n recursion above, since
	// the statements themselves differ from the root we pass.
	for _, stmt := range loop.Body.List {
		switch stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			walk(stmt, 1)
		default:
			walk(stmt, 0)
		}
	}
	if loop.Post != nil {
		walk(loop.Post, 0)
	}
	return site
}

// ---- interprocedural fixpoints ----

// ensureSummaries computes the shared fixpoints once per Program.
func (prog *Program) ensureSummaries() {
	if prog.ioChain != nil {
		return
	}
	prog.ioChain = make(map[string][]string)
	prog.mayRecv = make(map[string]bool)
	prog.locksAcq = make(map[string]map[string]lockAcq)
	prog.leaky = make(map[string]*leakInfo)

	// Seed direct facts.
	for _, id := range prog.order {
		n := prog.funcs[id]
		if len(n.facts.ios) > 0 {
			prog.ioChain[id] = []string{n.facts.ios[0].name}
		}
		prog.mayRecv[id] = n.facts.recv
		acq := make(map[string]lockAcq)
		for _, a := range n.facts.acquires {
			if _, ok := acq[a.lock.id]; !ok {
				acq[a.lock.id] = lockAcq{lock: a.lock, pos: a.pos, pkg: n.pkg}
			}
		}
		prog.locksAcq[id] = acq
	}

	// Propagate to a fixpoint. The call graph is small (one module), so
	// round-robin iteration over sorted IDs converges quickly and, more
	// importantly, deterministically — witness chains must not vary run
	// to run or gblint's own output would flunk the determinism ethos.
	for changed := true; changed; {
		changed = false
		for _, id := range prog.order {
			n := prog.funcs[id]
			for _, call := range n.facts.calls {
				cn := prog.node(call.callee)
				if cn == nil || cn.id == id {
					continue
				}
				if chain, ok := prog.ioChain[cn.id]; ok {
					if _, have := prog.ioChain[id]; !have {
						// Chain = callee display names ending in the I/O name.
						prog.ioChain[id] = append([]string{displayName(call.callee)}, chain...)
						changed = true
					}
				}
				if prog.mayRecv[cn.id] && !prog.mayRecv[id] {
					prog.mayRecv[id] = true
					changed = true
				}
				for lockID, a := range prog.locksAcq[cn.id] {
					if _, have := prog.locksAcq[id][lockID]; !have {
						prog.locksAcq[id][lockID] = lockAcq{
							lock: a.lock, pos: call.pos, pkg: n.pkg,
							chain: append([]string{displayName(call.callee)}, a.chain...),
						}
						changed = true
					}
				}
			}
		}
	}

	// Leaky loops: a loop with no exit, no receive, and no (transitive)
	// receive in anything it calls.
	for _, id := range prog.order {
		n := prog.funcs[id]
		for _, l := range n.facts.loops {
			if prog.loopLeaky(l) {
				prog.leaky[id] = &leakInfo{pos: l.pos, pkg: n.pkg}
				break
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, id := range prog.order {
			if prog.leaky[id] != nil {
				continue
			}
			n := prog.funcs[id]
			for _, call := range n.facts.calls {
				cn := prog.node(call.callee)
				if cn == nil || cn.id == id {
					continue
				}
				if li := prog.leaky[cn.id]; li != nil {
					prog.leaky[id] = &leakInfo{pos: li.pos, pkg: li.pkg,
						chain: append([]string{displayName(call.callee)}, li.chain...)}
					changed = true
					break
				}
			}
		}
	}
}

// ioChainOf returns the I/O witness chain for a callee, if its summary
// is known and reaches I/O.
func (prog *Program) ioChainOf(f *types.Func) ([]string, bool) {
	prog.ensureSummaries()
	n := prog.node(f)
	if n == nil {
		return nil, false
	}
	chain, ok := prog.ioChain[n.id]
	return chain, ok
}

// loopLeaky reports whether one unconditional loop can never stop: no
// exit statement, no channel receive, and no receive in any module
// function the loop body calls.
func (prog *Program) loopLeaky(l loopSite) bool {
	if l.canExit || l.recv {
		return false
	}
	for _, c := range l.callees {
		if cn := prog.node(c); cn != nil && prog.mayRecv[cn.id] {
			return false
		}
	}
	return true
}

// leakOf returns leak info for a callee's (transitive) unbounded loop.
func (prog *Program) leakOf(f *types.Func) *leakInfo {
	prog.ensureSummaries()
	n := prog.node(f)
	if n == nil {
		return nil
	}
	return prog.leaky[n.id]
}

// leakOfFacts judges a body (typically a goroutine literal) directly:
// its own unbounded loops first, then calls into (transitively) leaky
// module functions.
func (prog *Program) leakOfFacts(f *bodyFacts) *leakInfo {
	prog.ensureSummaries()
	for _, l := range f.loops {
		if prog.loopLeaky(l) {
			return &leakInfo{pos: l.pos, pkg: f.pkg}
		}
	}
	for _, c := range f.calls {
		if cn := prog.node(c.callee); cn != nil {
			if li := prog.leaky[cn.id]; li != nil {
				return &leakInfo{pos: li.pos, pkg: li.pkg,
					chain: append([]string{displayName(c.callee)}, li.chain...)}
			}
		}
	}
	return nil
}

// litFactsOf returns the collected facts for a function literal.
func (prog *Program) litFactsOf(lit *ast.FuncLit) *bodyFacts {
	return prog.litFacts[lit]
}

// factsIn calls fn for every collected body belonging to package p:
// declared functions in sorted-ID order, then literals in position
// order. Checks that only read per-body facts iterate with this.
func (prog *Program) factsIn(p *Package, fn func(*bodyFacts)) {
	for _, id := range prog.order {
		if n := prog.funcs[id]; n.pkg == p {
			fn(n.facts)
		}
	}
	lits := make([]*ast.FuncLit, 0, len(prog.litFacts))
	for lit, f := range prog.litFacts {
		if f.pkg == p {
			lits = append(lits, lit)
		}
	}
	sort.Slice(lits, func(i, j int) bool { return lits[i].Pos() < lits[j].Pos() })
	for _, lit := range lits {
		fn(prog.litFacts[lit])
	}
}

// funcsIn calls fn for every declared function in package p in
// sorted-ID order.
func (prog *Program) funcsIn(p *Package, fn func(*funcNode)) {
	for _, id := range prog.order {
		if n := prog.funcs[id]; n.pkg == p {
			fn(n)
		}
	}
}

// pkgOfFile maps a finding's file back to its package.
func (prog *Program) pkgOfFile(file string) *Package { return prog.filePkg[file] }
