package lint

import (
	"go/ast"
	"go/types"
)

// InternWrite enforces the §4.1.3 interning contract: a *BGPAttrs
// returned by routing.Pool.Attrs is the canonical shared copy — every
// route holding the same attribute combination aliases it. Writing
// through one mutates every aliased route and corrupts the pool's
// map key, so any field write or full-store through a *routing.BGPAttrs
// outside internal/routing is flagged. Building a BGPAttrs *value* and
// re-interning it (attrs := *r.Attrs; attrs.MED = 5; pool.Attrs(attrs))
// is the sanctioned mutation path and is not flagged.
//
// ASPath and CommunitySet need no analyzer: their data lives behind
// unexported string fields, so the compiler already forbids mutation
// outside internal/routing.
type InternWrite struct{}

func (InternWrite) Name() string { return "intern-write" }

func (InternWrite) Doc() string {
	return "writes through interned *routing.BGPAttrs outside internal/routing"
}

// routingPkg is the only package allowed to write through interned
// pointers (it owns the pool).
const routingPkg = "repro/internal/routing"

func (InternWrite) Check(_ *Program, p *Package) []Finding {
	if p.Path == routingPkg {
		return nil
	}
	var out []Finding
	report := func(pos ast.Node, what string) {
		out = append(out, finding(p, "intern-write", pos.Pos(),
			"%s through interned *routing.BGPAttrs; interned attrs are shared and immutable — copy, modify, re-intern via Pool.Attrs",
			what))
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range v.Lhs {
					if writesThroughAttrs(p, lhs) {
						report(v, "assignment")
					}
				}
			case *ast.IncDecStmt:
				if writesThroughAttrs(p, v.X) {
					report(v, "increment/decrement")
				}
			}
			return true
		})
	}
	return out
}

// writesThroughAttrs reports whether the lvalue expression dereferences
// a *routing.BGPAttrs: either a field selector on a pointer (a.MED) or
// an explicit dereference (*a, (*a).MED).
func writesThroughAttrs(p *Package, lhs ast.Expr) bool {
	switch v := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		x := ast.Unparen(v.X)
		if star, ok := x.(*ast.StarExpr); ok {
			return isBGPAttrsPtr(p.Info.TypeOf(star.X))
		}
		return isBGPAttrsPtr(p.Info.TypeOf(x))
	case *ast.StarExpr:
		return isBGPAttrsPtr(p.Info.TypeOf(v.X))
	}
	return false
}

// isBGPAttrsPtr reports whether t is *routing.BGPAttrs.
func isBGPAttrsPtr(t types.Type) bool {
	if t == nil {
		return false
	}
	ptr, ok := types.Unalias(t).Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	pkgPath, name := namedType(ptr.Elem())
	return pkgPath == routingPkg && name == "BGPAttrs"
}
