package lint

import (
	"go/ast"
	"go/types"
)

// PanicSafe enforces the PR-3/PR-4 containment contract in the
// long-running layers: a panic on a worker goroutine must become a
// diagnostic, never a process crash. It flags `go func(){...}()`
// literals in internal/server and internal/pipeline whose bodies
// neither call recover (typically in a deferred closure) nor route the
// work through the established isolation helper diag.Capture.
// Goroutines launched on named functions are out of scope — the named
// function's own definition site is where containment belongs.
type PanicSafe struct{}

// panicScope lists the packages that host long-lived goroutines.
var panicScope = []string{
	"repro/internal/server",
	"repro/internal/pipeline",
	"repro/internal/cluster",
	"repro/internal/sweep",
}

// isolationHelpers maps package path → function names that are known
// to contain panics on behalf of their caller.
var isolationHelpers = map[string]map[string]bool{
	"repro/internal/diag": {"Capture": true},
}

func (PanicSafe) Name() string { return "panic-safe" }

func (PanicSafe) Doc() string {
	return "goroutine literals in server/pipeline without recover or diag.Capture"
}

// Check reads goroutine-spawn sites off the shared summaries: every
// GoStmt in the package (at any nesting depth) is a goSite in some
// body's facts, so iterating all bodies covers the same set the old
// per-file walk did.
func (PanicSafe) Check(prog *Program, p *Package) []Finding {
	if !inScope(p.Path, panicScope) {
		return nil
	}
	var out []Finding
	prog.factsIn(p, func(facts *bodyFacts) {
		for _, g := range facts.gos {
			if g.lit == nil {
				continue
			}
			if !recoversOrIsolates(p, g.lit.Body) {
				out = append(out, finding(p, "panic-safe", g.pos,
					"goroutine literal has no recover and does not use diag.Capture; a panic here kills the process"))
			}
		}
	})
	return out
}

// recoversOrIsolates reports whether the goroutine body (including its
// nested literals, e.g. `defer func(){ recover() }()`) calls the
// recover builtin or an allowlisted isolation helper.
func recoversOrIsolates(p *Package, body *ast.BlockStmt) bool {
	safe := false
	ast.Inspect(body, func(n ast.Node) bool {
		if safe {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if b, ok := p.Info.Uses[fun].(*types.Builtin); ok && b.Name() == "recover" {
				safe = true
			}
		case *ast.SelectorExpr:
			if obj := p.Info.Uses[fun.Sel]; obj != nil {
				if names, ok := isolationHelpers[pkgPathOf(obj)]; ok && names[obj.Name()] {
					safe = true
				}
			}
		}
		return true
	})
	return safe
}
