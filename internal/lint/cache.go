package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The run cache memoizes a whole gblint invocation: when no file in
// the linted packages — or in their module-internal import closure —
// has changed since the last run with the same check list, the stored
// findings replay without parsing or type-checking anything. The
// common `make check` case (lint an unchanged tree) drops from a full
// module type-check to a directory walk plus content hashing.
//
// Invalidation is deliberately whole-module, not per-package. The
// interprocedural checks make per-package reuse unsound twice over:
// summaries cross package boundaries (an edit to a callee changes the
// caller's lock-io-deep findings without touching the caller's
// files), and the lock-order graph is global (an edited package can
// complete a cycle whose witness — and therefore whose finding —
// anchors in an unchanged package). Hashing the import closure covers
// the first; rerunning everything on any miss covers the second.
//
// Cache entries are JSON finding lists named by the key hash. Stale
// entries are never read again (their key no longer matches) and are
// just dead files; deleting the cache directory is always safe.

// cacheVersion invalidates every entry when the cache format or the
// analyzer suite changes shape. Bump it when findings, messages, or
// keying change incompatibly.
const cacheVersion = "gblint-cache-v1"

// RunKey computes the cache key for linting the given patterns with
// the given check list: a hash over the resolved package directories,
// the content of every non-test .go file in them and in their
// module-internal import closure, the check list, and the cache
// format version.
func (l *Loader) RunKey(patterns []string, checks string) (string, error) {
	roots, err := l.ResolveDirs(patterns)
	if err != nil {
		return "", err
	}

	// BFS over module-internal imports, hashing file contents as we go.
	// fileLines accumulates "relpath hexhash" lines, sorted at the end so
	// traversal order never leaks into the key.
	seen := make(map[string]bool, len(roots))
	queue := append([]string(nil), roots...)
	for _, d := range roots {
		seen[d] = true
	}
	var fileLines []string
	fset := token.NewFileSet() // private: import scanning must not pollute l.Fset
	for len(queue) > 0 {
		dir := queue[0]
		queue = queue[1:]
		ents, err := os.ReadDir(dir)
		if err != nil {
			return "", err
		}
		for _, e := range ents {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") ||
				strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
				continue
			}
			path := filepath.Join(dir, name)
			data, err := os.ReadFile(path)
			if err != nil {
				return "", err
			}
			rel, err := filepath.Rel(l.Root, path)
			if err != nil {
				return "", err
			}
			sum := sha256.Sum256(data)
			fileLines = append(fileLines,
				filepath.ToSlash(rel)+" "+hex.EncodeToString(sum[:]))
			// Chase module-internal imports so dependency edits (which can
			// change this package's findings through signatures and
			// summaries) invalidate the key too.
			f, err := parser.ParseFile(fset, path, data, parser.ImportsOnly)
			if err != nil {
				return "", fmt.Errorf("lint: scanning imports of %s: %w", rel, err)
			}
			for _, imp := range f.Imports {
				ipath := strings.Trim(imp.Path.Value, `"`)
				if ipath != l.Module && !strings.HasPrefix(ipath, l.Module+"/") {
					continue
				}
				idir := filepath.Join(l.Root,
					strings.TrimPrefix(strings.TrimPrefix(ipath, l.Module), "/"))
				if !seen[idir] && hasGoFiles(idir) {
					seen[idir] = true
					queue = append(queue, idir)
				}
			}
		}
	}
	sort.Strings(fileLines)

	h := sha256.New()
	fmt.Fprintf(h, "%s\nchecks=%s\n", cacheVersion, checks)
	for _, d := range roots {
		rel, err := filepath.Rel(l.Root, d)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "root %s\n", filepath.ToSlash(rel))
	}
	for _, line := range fileLines {
		fmt.Fprintf(h, "%s\n", line)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// CacheGet returns the stored findings for key, and whether a valid
// entry exists. A corrupt entry reads as a miss (the rerun rewrites
// it).
func CacheGet(cacheDir, key string) ([]Finding, bool) {
	data, err := os.ReadFile(filepath.Join(cacheDir, key+".json"))
	if err != nil {
		return nil, false
	}
	var findings []Finding
	if json.Unmarshal(data, &findings) != nil {
		return nil, false
	}
	return findings, true
}

// CachePut stores the findings of a completed run under key, via
// temp+rename so a concurrent reader never sees a torn entry.
// Best-effort: a failure means the next run recomputes.
func CachePut(cacheDir, key string, findings []Finding) error {
	if findings == nil {
		findings = []Finding{}
	}
	data, err := json.Marshal(findings)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(cacheDir, ".entry-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(cacheDir, key+".json"))
}
