package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// suppressPkg parses one source string (comments retained, no
// type-checking — suppression collection only reads comments) into a
// minimal Package.
func suppressPkg(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "sup.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return &Package{Path: "repro/internal/suptest", Fset: fset, Files: []*ast.File{f}}
}

func TestSuppressionLastLine(t *testing.T) {
	// The suppression is the final line of the file: the "next line" it
	// also covers does not exist, which must not confuse collection or
	// coverage.
	src := "package suptest\n\nfunc f() {}\n\n//gblint:ignore determinism end-of-file comment, own line only"
	p := suppressPkg(t, src)
	set := collectSuppressions(p)
	if len(set.malformed) != 0 {
		t.Fatalf("malformed findings: %v", set.malformed)
	}
	if len(set.rules) != 1 {
		t.Fatalf("rules = %d, want 1", len(set.rules))
	}
	r := set.rules[0]
	if !set.covers(Finding{Check: "determinism", File: "sup.go", Line: r.line}) {
		t.Error("suppression must cover its own (final) line")
	}
	if set.covers(Finding{Check: "determinism", File: "sup.go", Line: r.line + 2}) {
		t.Error("suppression must not cover lines past the next one")
	}
}

func TestSuppressionMultiplePerLine(t *testing.T) {
	// Two block-comment suppressions sharing one line, each with its own
	// reason, both effective for the next line.
	src := `package suptest

func f() {
	/*gblint:ignore lock-io send reason */ /*gblint:ignore err-drop drop reason */
	_ = 1
}
`
	p := suppressPkg(t, src)
	set := collectSuppressions(p)
	if len(set.malformed) != 0 {
		t.Fatalf("malformed findings: %v", set.malformed)
	}
	if len(set.rules) != 2 {
		t.Fatalf("rules = %d, want 2", len(set.rules))
	}
	for _, check := range []string{"lock-io", "err-drop"} {
		if !set.covers(Finding{Check: check, File: "sup.go", Line: 5}) {
			t.Errorf("%s finding on the next line must be covered", check)
		}
	}
	if set.covers(Finding{Check: "determinism", File: "sup.go", Line: 5}) {
		t.Error("unlisted check must not be covered")
	}
}

func TestSuppressionInsideStructLiteral(t *testing.T) {
	// A suppression attached inside a composite literal is not part of
	// any statement's comment group, but collection walks File.Comments,
	// so it is found all the same.
	src := `package suptest

type opt struct{ a, b int }

var v = opt{
	a: 1,
	//gblint:ignore intern-write corpus: field write is into a fresh copy
	b: 2,
}
`
	p := suppressPkg(t, src)
	set := collectSuppressions(p)
	if len(set.malformed) != 0 {
		t.Fatalf("malformed findings: %v", set.malformed)
	}
	if len(set.rules) != 1 || set.rules[0].check != "intern-write" {
		t.Fatalf("rules = %+v, want one intern-write rule", set.rules)
	}
	if !set.covers(Finding{Check: "intern-write", File: "sup.go", Line: 8}) {
		t.Error("suppression inside a struct literal must cover the next line")
	}
}

func TestSuppressionMalformedKinds(t *testing.T) {
	src := `package suptest

//gblint:ignore
func a() {}

//gblint:ignore determinism
func b() {}

//gblint:ignore nope some reason
func c() {}
`
	p := suppressPkg(t, src)
	set := collectSuppressions(p)
	if len(set.rules) != 0 {
		t.Fatalf("rules = %+v, want none", set.rules)
	}
	wants := []string{
		"suppression names no check",
		`suppression for "determinism" missing mandatory reason`,
		`suppression names unknown check "nope"`,
	}
	if len(set.malformed) != len(wants) {
		t.Fatalf("malformed = %d findings, want %d: %v", len(set.malformed), len(wants), set.malformed)
	}
	for i, w := range wants {
		if got := set.malformed[i].Message; !contains(got, w) {
			t.Errorf("malformed[%d] = %q, want substring %q", i, got, w)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestSortFindingsMessageTiebreak(t *testing.T) {
	// Two findings from one check at one position (e.g. two lock-order
	// edges witnessed by the same acquisition) must serialize in a
	// deterministic order: message is the final sort key.
	fs := []Finding{
		{Check: "lock-order", File: "a.go", Line: 3, Col: 2, Message: "zeta"},
		{Check: "lock-order", File: "a.go", Line: 3, Col: 2, Message: "alpha"},
		{Check: "err-drop", File: "a.go", Line: 3, Col: 2, Message: "mid"},
		{Check: "lock-order", File: "a.go", Line: 2, Col: 9, Message: "other-line"},
		{Check: "lock-order", File: "b.go", Line: 1, Col: 1, Message: "other-file"},
	}
	sortFindings(fs)
	got := make([]string, len(fs))
	for i, f := range fs {
		got[i] = f.Message
	}
	want := []string{"other-line", "mid", "alpha", "zeta", "other-file"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}
