package lint

import (
	"go/token"
	"sort"
	"strings"
)

// LockOrder builds the module-wide lock-ordering graph and reports the
// two deadlock shapes the repo has actually shipped or reviewed away:
//
//   - re-lock: a lock acquired (directly or through a call chain) while
//     the same lock is already held — the PR-4 snapshotFor bug, where a
//     method holding c.mu called a helper that locked c.mu again and
//     every non-recursive sync.Mutex self-deadlocks.
//   - inversion: two locks acquired in both orders somewhere in the
//     module (a cycle in the ordering graph), so two goroutines holding
//     one each can wait on the other forever.
//
// Nodes are lock identities: the types.Object of a mutex variable or
// field (keyed by declaration position, stable across the loader's
// type-check universes), plus the diskcache directory flock as a
// pseudo-lock keyed by the owning named type. Edges A→B are witnessed
// acquisitions of B while A is held, either in one body or through the
// call-graph summaries (the callee transitively acquires B).
//
// Instance soundness: one field object ("mu" in type Cache) stands for
// every instance's mutex, so a.mu→b.mu between two *different* Cache
// values is not a self-deadlock. Re-lock findings therefore require
// the receiver expressions to match (c.mu held, c.helper() called);
// cycle findings accept the instance blur — inconsistent ordering on
// the same fields across instances deadlocks whenever the instances
// alias, and the graph cannot prove they never do.
type LockOrder struct{}

func (LockOrder) Name() string { return "lock-order" }

func (LockOrder) Doc() string {
	return "global lock-ordering cycles and re-lock deadlock paths (the PR-4 snapshotFor class)"
}

// Check returns the globally-computed findings anchored in files this
// package owns, so a cycle spanning packages is reported exactly once.
func (LockOrder) Check(prog *Program, p *Package) []Finding {
	prog.ensureLockOrder()
	var out []Finding
	for _, f := range prog.lockFindings {
		if prog.pkgOfFile(f.File) == p {
			out = append(out, f)
		}
	}
	return out
}

// lockEdge is one witnessed ordering edge from → to.
type lockEdge struct {
	from, to heldLock
	pos      token.Pos // the witness acquisition or call site
	pkg      *Package
	viaChain string // call chain to the inner acquisition, "" for same-body
}

// ensureLockOrder computes the global lock-order findings once.
func (prog *Program) ensureLockOrder() {
	if prog.lockDone {
		return
	}
	prog.lockDone = true
	prog.ensureSummaries()

	// edges[fromID][toID] = first witness in sorted traversal order.
	edges := make(map[string]map[string]lockEdge)
	labels := make(map[string]string) // lock id → label, for cycle messages
	addEdge := func(e lockEdge) {
		labels[e.from.id], labels[e.to.id] = e.from.label, e.to.label
		m := edges[e.from.id]
		if m == nil {
			m = make(map[string]lockEdge)
			edges[e.from.id] = m
		}
		if _, ok := m[e.to.id]; !ok {
			m[e.to.id] = e
		}
	}
	reLock := func(p *Package, pos token.Pos, chain string, label string) {
		if chain == "" {
			prog.lockFindings = append(prog.lockFindings, finding(p, "lock-order", pos,
				"%s re-acquired while already held (self-deadlock: the PR-4 snapshotFor re-lock class)",
				label))
			return
		}
		prog.lockFindings = append(prog.lockFindings, finding(p, "lock-order", pos,
			"call to %s re-acquires %s already held here (self-deadlock: the PR-4 snapshotFor re-lock class)",
			chain, label))
	}

	for _, id := range prog.order {
		n := prog.funcs[id]
		// Same-body nesting: acquiring B with A held.
		for _, a := range n.facts.acquires {
			for _, h := range a.held {
				if h.id == a.lock.id {
					if h.expr == a.lock.expr && (h.excl || a.lock.excl) {
						reLock(n.pkg, a.pos, "", a.lock.label)
					}
					continue
				}
				addEdge(lockEdge{from: h, to: a.lock, pos: a.pos, pkg: n.pkg})
			}
		}
		// Call-graph nesting: calling a function that (transitively)
		// acquires B while A is held. locksAcq covers direct recursion
		// too (the callee's own acquires seed its summary), so the
		// snapshotFor shape — holding c.mu, recursively calling the
		// method that locks c.mu — lands in the h.id == lockID arm.
		for _, call := range n.facts.calls {
			if len(call.held) == 0 {
				continue
			}
			cn := prog.node(call.callee)
			if cn == nil {
				continue
			}
			inner := prog.locksAcq[cn.id]
			innerIDs := make([]string, 0, len(inner))
			for lockID := range inner {
				innerIDs = append(innerIDs, lockID)
			}
			sort.Strings(innerIDs)
			for _, lockID := range innerIDs {
				acq := inner[lockID]
				chain := strings.Join(append([]string{displayName(call.callee)}, acq.chain...), " -> ")
				for _, h := range call.held {
					if h.id == lockID {
						if reLockMatches(h, call.recvExpr) {
							reLock(n.pkg, call.pos, chain, h.label)
						}
						continue
					}
					if cn.id == id {
						continue // recursion: A→B edges already witnessed in this body
					}
					addEdge(lockEdge{from: h, to: acq.lock, pos: call.pos, pkg: n.pkg, viaChain: chain})
				}
			}
		}
	}

	prog.lockFindings = append(prog.lockFindings, lockCycles(edges, labels)...)
	sortFindings(prog.lockFindings)
}

// reLockMatches decides whether a held lock and a call receiver are
// plausibly the same instance, gating re-lock findings. Field locks
// ("c.mu") require the call receiver to be the lock's base ("c");
// pseudo-locks (flock — expr is the receiver itself) require the
// receiver to match exactly; package-level mutexes have exactly one
// instance, so any re-acquisition is real.
func reLockMatches(h heldLock, callRecv string) bool {
	if strings.Contains(h.expr, ".") {
		return callRecv == h.base
	}
	if h.pseudo {
		return callRecv == h.expr
	}
	return true
}

// lockCycles finds strongly connected components of ≥2 locks in the
// ordering graph and reports one finding per component, anchored at
// the smallest-position witness edge inside it.
func lockCycles(edges map[string]map[string]lockEdge, labels map[string]string) []Finding {
	nodes := make(map[string]bool)
	for from, m := range edges {
		nodes[from] = true
		for to := range m {
			nodes[to] = true
		}
	}
	ids := make([]string, 0, len(nodes))
	for id := range nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	// Tarjan's SCC over the sorted node list, for deterministic output.
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var sccs [][]string
	next := 0
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v], low[v] = next, next
		next++
		stack = append(stack, v)
		onStack[v] = true
		succs := make([]string, 0, len(edges[v]))
		for to := range edges[v] {
			succs = append(succs, to)
		}
		sort.Strings(succs)
		for _, w := range succs {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			if len(scc) > 1 {
				sort.Strings(scc)
				sccs = append(sccs, scc)
			}
		}
	}
	for _, id := range ids {
		if _, seen := index[id]; !seen {
			strongconnect(id)
		}
	}

	var out []Finding
	for _, scc := range sccs {
		in := make(map[string]bool, len(scc))
		for _, id := range scc {
			in[id] = true
		}
		var witness *lockEdge
		for _, from := range scc {
			for to, e := range edges[from] {
				if !in[to] {
					continue
				}
				if witness == nil || e.pos < witness.pos ||
					(e.pos == witness.pos && e.to.id < witness.to.id) {
					w := e
					witness = &w
				}
			}
		}
		if witness == nil {
			continue
		}
		names := make([]string, 0, len(scc))
		for _, id := range scc {
			names = append(names, labels[id])
		}
		sort.Strings(names)
		msg := "inconsistent lock order: " + strings.Join(names, ", ") +
			" are acquired in conflicting orders across the module (two holders can deadlock)"
		if witness.viaChain != "" {
			msg += "; witness acquires " + witness.to.label + " via " + witness.viaChain +
				" while holding " + witness.from.label
		} else {
			msg += "; witness acquires " + witness.to.label + " while holding " + witness.from.label
		}
		out = append(out, finding(witness.pkg, "lock-order", witness.pos, "%s", msg))
	}
	return out
}
