// Golden corpus for the lock-order check: re-lock deadlocks (direct
// and through the call graph — the PR-4 snapshotFor class) and
// lock-ordering cycles, including the diskcache flock pseudo-lock.
// The check has no package scope; the synthetic import path only has
// to be unique.
package lockorder

import "sync"

type cache struct {
	mu   sync.Mutex
	data map[string]int
}

// flockExclusive models the diskcache directory flock: any method with
// this name on a named receiver is the pseudo-lock acquisition, and
// the returned func is its release.
func (c *cache) flockExclusive() func() { return func() {} }

// The direct shape: one body acquires the mutex it already holds.
func (c *cache) doubleLock() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mu.Lock() // want `lockorder\.cache\.mu re-acquired while already held \(self-deadlock: the PR-4 snapshotFor re-lock class\)`
	c.mu.Unlock()
}

// The PR-4 snapshotFor shape: a method holding c.mu calls a helper
// that locks c.mu again. Reported at the call, not inside the helper.
func (c *cache) get(k string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lookup(k) // want `call to cache\.lookup re-acquires lockorder\.cache\.mu already held here \(self-deadlock`
}

func (c *cache) lookup(k string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.data[k]
}

// Instance blur negative: the same mu field on a *different* receiver
// is not a self-deadlock, so no re-lock finding here.
func (c *cache) copyFrom(d *cache, k string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return d.lookup(k)
}

type pair struct {
	a, b sync.Mutex
	n    int
}

// forward/backward acquire a and b in conflicting orders: a cycle in
// the module-wide ordering graph, reported once at the earliest
// witness edge (acquiring b with a held, below).
func (p *pair) forward() {
	p.a.Lock()
	p.b.Lock() // want `inconsistent lock order: lockorder\.pair\.a, lockorder\.pair\.b are acquired in conflicting orders across the module \(two holders can deadlock\); witness acquires lockorder\.pair\.b while holding lockorder\.pair\.a`
	p.n++
	p.b.Unlock()
	p.a.Unlock()
}

func (p *pair) backward() {
	p.b.Lock()
	p.a.Lock()
	p.n++
	p.a.Unlock()
	p.b.Unlock()
}

// The flock participates in ordering as a pseudo-lock: taking the
// directory lock and the index mutex in both orders is the same
// deadlock as two mutexes.
func (c *cache) scanThenIndex() {
	unlock := c.flockExclusive()
	defer unlock()
	c.mu.Lock() // want `inconsistent lock order: lockorder\.cache\.flock, lockorder\.cache\.mu are acquired in conflicting orders across the module \(two holders can deadlock\); witness acquires lockorder\.cache\.mu while holding lockorder\.cache\.flock`
	c.mu.Unlock()
}

func (c *cache) indexThenScan() {
	c.mu.Lock()
	defer c.mu.Unlock()
	unlock := c.flockExclusive()
	defer unlock()
}

type ordered struct {
	first, second sync.Mutex
	n             int
}

// Consistent ordering across every holder: no cycle, no finding.
func (o *ordered) one() {
	o.first.Lock()
	o.second.Lock()
	o.n++
	o.second.Unlock()
	o.first.Unlock()
}

func (o *ordered) two() {
	o.first.Lock()
	defer o.first.Unlock()
	o.second.Lock()
	defer o.second.Unlock()
	o.n++
}

// Sequential, not nested: the region of the first Lock ends at its
// Unlock before the second begins.
func (c *cache) sequentialOK(k string) {
	c.mu.Lock()
	c.data[k] = 1
	c.mu.Unlock()
	c.mu.Lock()
	c.data[k] = 2
	c.mu.Unlock()
}

func (c *cache) suppressedReLock() {
	c.mu.Lock()
	//gblint:ignore lock-order corpus: documents the suppression path for a known-recursive lock
	c.mu.Lock()
	c.mu.Unlock()
	c.mu.Unlock()
}
