// Golden corpus for the lock-io check: I/O, net calls, and channel
// sends while a sync mutex is held. The check has no package scope, so
// the synthetic import path only has to be unique.
package lockio

import (
	"net"
	"os"
	"sync"
)

type store struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	data map[string][]byte
}

func (s *store) readUnderLock(path string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return os.ReadFile(path) // want `call to os\.ReadFile while s\.mu\.Lock is held`
}

// I/O first, lock only around the map write — the PR-4 fix shape.
func (s *store) readOutsideLockOK(path string) ([]byte, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.data[path] = b
	s.mu.Unlock()
	return b, nil
}

// The diskcache false-positive regression: classifying an I/O error
// under the index lock is a pure predicate, not I/O.
func (s *store) classifyUnderLockOK(err error) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return os.IsNotExist(err)
}

func (s *store) sendUnderLock(ch chan int) {
	s.mu.Lock()
	ch <- 1 // want `channel send while s\.mu\.Lock is held`
	s.mu.Unlock()
}

func (s *store) sendAfterUnlockOK(ch chan int) {
	s.mu.Lock()
	s.data = nil
	s.mu.Unlock()
	ch <- 1
}

func (s *store) dialUnderRLock(addr string) (net.Conn, error) {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return net.Dial("tcp", addr) // want `call to net\.Dial while s\.rw\.RLock is held`
}

func (s *store) fileMethodUnderLock(f *os.File, b []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return f.Write(b) // want `call to \(os\.File\)\.Write while s\.mu\.Lock is held`
}

// A literal built under the lock runs later, off the lock; its body is
// analyzed as a function in its own right (and holds no lock there).
func (s *store) deferredWorkOK(path string) func() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return func() ([]byte, error) { return os.ReadFile(path) }
}

func (s *store) suppressedRemove(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	//gblint:ignore lock-io startup-only path; the lock is uncontended by construction
	return os.Remove(path)
}
