// Golden corpus for the err-drop check: discarded errors from the
// must-check list — diskcache lease operations, gob encoding, and
// non-deferred http response Body.Close. The check has no package
// scope; the synthetic import path only has to be unique.
package errdrop

import (
	"crypto/sha256"
	"encoding/gob"
	"net/http"
	"time"

	"repro/internal/diskcache"
)

func use(v any) {}

// Statement-form discard of a lease release: the lease file survives
// its holder and every future acquirer waits out the unused TTL.
func dropRelease(l *diskcache.Lease) {
	l.Release() // want `error from diskcache\.Lease\.Release discarded \(must-check: this failure corrupts coordination or artifact state\)`
}

// Blank-assignment discard: every error position is _.
func dropEncode(enc *gob.Encoder, v any) {
	_ = enc.Encode(v) // want `error from gob\.Encoder\.Encode discarded`
}

// The acquire error decides whether the lease exists at all.
func dropAcquire(c *diskcache.Cache) {
	lease, _ := c.AcquireLease("corpus", "me", time.Second) // want `error from diskcache\.Cache\.AcquireLease discarded`
	use(lease)
}

// go-statement discard: the spawned call's error has nowhere to go.
func dropRenewInGoroutine(l *diskcache.Lease) {
	go l.Renew(time.Second) // want `error from diskcache\.Lease\.Renew discarded`
}

// Body.Close on the write path is dynamic dispatch (io.Closer), so it
// is matched structurally, not through the call graph.
func dropBodyClose(resp *http.Response) {
	resp.Body.Close() // want `error from \(net/http\.Response\)\.Body\.Close discarded`
}

// Deferred closes are the established read-path idiom and a deferred
// call could not return its error anyway: exempt.
func deferredCloseOK(resp *http.Response) error {
	defer resp.Body.Close()
	var v int
	return gob.NewDecoder(resp.Body).Decode(&v)
}

// Checked errors are the point: no finding.
func checkedReleaseOK(l *diskcache.Lease) error {
	if err := l.Release(); err != nil {
		return err
	}
	return nil
}

func boundEncodeOK(enc *gob.Encoder, v any) error {
	err := enc.Encode(v)
	return err
}

// Put is on the list but returns no error today: the entry is
// future-proofing, so the call is vacuously clean.
func putOK(c *diskcache.Cache, payload []byte) {
	c.Put(sha256.Sum256(payload), payload)
}

func suppressedRelease(l *diskcache.Lease) {
	//gblint:ignore err-drop corpus: shutdown path, the lease dies with the process anyway
	l.Release()
}
