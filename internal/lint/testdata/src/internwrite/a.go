// Golden corpus for the intern-write check: interned *routing.BGPAttrs
// are shared and immutable outside internal/routing. Loaded under a
// synthetic path outside internal/routing.
package internwrite

import "repro/internal/routing"

func mutateField(a *routing.BGPAttrs) {
	a.MED = 5 // want `assignment through interned \*routing\.BGPAttrs`
}

func mutateViaDeref(a *routing.BGPAttrs) {
	(*a).LocalPref = 200 // want `assignment through interned \*routing\.BGPAttrs`
}

func incrementField(a *routing.BGPAttrs) {
	a.Weight++ // want `increment/decrement through interned \*routing\.BGPAttrs`
}

func storeWhole(a *routing.BGPAttrs, b routing.BGPAttrs) {
	*a = b // want `assignment through interned \*routing\.BGPAttrs`
}

// The sanctioned mutation path: copy the value, modify the copy,
// re-intern through the pool.
func copyModifyReinternOK(p *routing.Pool, a *routing.BGPAttrs) *routing.BGPAttrs {
	attrs := *a
	attrs.MED = 7
	return p.Attrs(attrs)
}

// Reassigning the pointer variable itself writes the local, not the
// interned value.
func reassignPointerOK(a, b *routing.BGPAttrs) *routing.BGPAttrs {
	a = b
	return a
}

func suppressed(a *routing.BGPAttrs) {
	//gblint:ignore intern-write corpus-only demonstration of the documented escape hatch
	a.Tag = 9
}
