// Golden corpus for the goroutine-leak check: spawned goroutines that
// loop unboundedly with no receive or exit path. The check is scoped
// to the long-running service packages, so this corpus loads under a
// synthetic cluster import path.
package goroutineleak

import (
	"context"
	"time"
)

type Node struct {
	n    int
	stop chan struct{}
	work chan int
}

// pump loops forever with no receive and no exit: leaky wherever it
// is spawned.
func (n *Node) pump() {
	for {
		n.n++
	}
}

// start only calls pump, so its leak is one call away.
func (n *Node) start() {
	n.pump()
}

// tick is pure and non-blocking: a loop that only calls it cannot stop.
func (n *Node) tick() {
	n.n++
}

// waitLoop receives from the stop channel: spawning it is fine.
func (n *Node) waitLoop() {
	for {
		select {
		case <-n.stop:
			return
		case v := <-n.work:
			n.n += v
		}
	}
}

func (n *Node) spawnLiteral() {
	go func() { // want `goroutine literal loops forever with no ctx\.Done\(\)/stop receive or exit path \(goroutine leak\)`
		for {
			n.tick()
		}
	}()
}

func (n *Node) spawnNamed() {
	go n.pump() // want `goroutine Node\.pump loops forever with no ctx\.Done\(\)/stop receive or exit path \(goroutine leak\)`
}

func (n *Node) spawnChained() {
	go n.start() // want `goroutine Node\.start -> Node\.pump loops forever with no ctx\.Done\(\)/stop receive or exit path \(goroutine leak\)`
}

func (n *Node) spawnLiteralCalling() {
	go func() { // want `goroutine literal calls Node\.pump, which loops forever with no ctx\.Done\(\)/stop receive or exit path \(goroutine leak\)`
		n.pump()
	}()
}

// A ctx.Done() select case is a receive: the canonical runLoop shape.
func (n *Node) spawnRunLoopOK(ctx context.Context) {
	go func() {
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				n.tick()
			}
		}
	}()
}

// A loop that can return is bounded by its own logic.
func (n *Node) spawnBoundedOK(limit int) {
	go func() {
		for {
			if n.n >= limit {
				return
			}
			n.tick()
		}
	}()
}

// Range over a channel blocks until the sender closes it: a receive.
func (n *Node) spawnDrainOK() {
	go func() {
		for v := range n.work {
			n.n += v
		}
	}()
}

// Spawning a receiving loop through a named function is also fine.
func (n *Node) spawnWaitOK() {
	go n.waitLoop()
}

func (n *Node) suppressedSpawn() {
	//gblint:ignore goroutine-leak corpus: process-lifetime worker, documented to die with the process
	go func() {
		for {
			n.tick()
		}
	}()
}
