// Golden corpus for suppression lists: one //gblint:ignore comment
// naming several checks, partial validity (unknown members reported,
// valid members still effective), and the block-comment form that
// lets two independent suppressions share a line. Run with both
// lock-io and err-drop selected so each list member has a finding to
// suppress.
package suppresslist

import (
	"sync"

	"repro/internal/diskcache"
)

type store struct {
	mu sync.Mutex
	ch chan int
	n  int
}

// One comma-separated list exempts findings from both checks on the
// next line.
func (s *store) commaList(l *diskcache.Lease) {
	s.mu.Lock()
	defer s.mu.Unlock()
	//gblint:ignore lock-io,err-drop corpus: one comment covers both checks on the next line
	s.ch <- 1; l.Release()
}

// An unknown member is reported, but the valid member still takes
// effect: the Release on the next line stays suppressed.
func (s *store) partialList(l *diskcache.Lease) {
	//gblint:ignore err-drop,bogus corpus: the unknown member must not void the valid one // want `suppression names unknown check "bogus"`
	l.Release()
}

// An empty member (stray comma) is reported the same way.
func (s *store) emptyMember(l *diskcache.Lease) {
	//gblint:ignore ,err-drop corpus: stray comma is called out, err-drop still applies // want `empty check name in suppression list ",err-drop"`
	l.Release()
}

// Block-comment form: two independently-reasoned suppressions on one
// line, each carrying its own why.
func (s *store) blockComments(l *diskcache.Lease) {
	s.mu.Lock()
	defer s.mu.Unlock()
	/*gblint:ignore lock-io corpus: send is to an unbuffered local drained below */ /*gblint:ignore err-drop corpus: release failure is benign here */
	s.ch <- 1; l.Release()
}

// Unsuppressed findings in this package still surface.
func (s *store) unsuppressed(l *diskcache.Lease) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- 1    // want `channel send while s\.mu\.Lock is held`
	l.Release()  // want `error from diskcache\.Lease\.Release discarded`
}
