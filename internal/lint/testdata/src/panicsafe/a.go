// Golden corpus for the panic-safe check: goroutine literals in the
// service/pipeline layers must recover or route through diag.Capture.
// Loaded under the synthetic import path repro/internal/server.
package panicsafe

import "repro/internal/diag"

type Server struct{ done chan struct{} }

func (s *Server) unprotected() {
	go func() { // want `goroutine literal has no recover`
		work()
	}()
}

func (s *Server) recoversDirectly() {
	go func() {
		defer func() {
			if r := recover(); r != nil {
				_ = r
			}
		}()
		work()
	}()
}

func (s *Server) viaCapture() {
	go func() {
		if d := diag.Capture(diag.StageParse, "dev", work); d != nil {
			_ = d
		}
	}()
}

// Goroutines on named functions are out of scope: containment belongs
// at the named function's own definition site.
func (s *Server) namedFunctionOK() {
	go work()
}

func (s *Server) suppressed() {
	//gblint:ignore panic-safe body is a close; a panic here means broken accounting and must crash loudly
	go func() {
		close(s.done)
	}()
}

func work() {}
