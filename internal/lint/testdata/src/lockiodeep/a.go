// Golden corpus for the lock-io-deep check: calls made under a held
// sync mutex whose callee (transitively) reaches file or net I/O. The
// direct-I/O-under-lock cases live in the lockio corpus; everything
// here needs the call-graph summaries to see the I/O.
package lockiodeep

import (
	"os"
	"sync"
)

type cache struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	path string
	buf  []byte
	data map[string]int
}

// flockExclusive models the diskcache directory flock pseudo-lock.
func (c *cache) flockExclusive() func() { return func() {} }

func (c *cache) flush() error {
	return os.WriteFile(c.path, c.buf, 0o644)
}

// persist reaches I/O one level deeper: persist -> flush -> WriteFile.
func (c *cache) persist() error {
	return c.flush()
}

func load(path string) ([]byte, error) {
	return os.ReadFile(path)
}

// bump is pure: no I/O anywhere in its summary.
func (c *cache) bump(k string) {
	c.data[k]++
}

// The PR-4 shape the intraprocedural lock-io check cannot see: the
// I/O is one call away.
func (c *cache) putAndFlush(k string, v int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.data[k] = v
	return c.flush() // want `call to cache\.flush while c\.mu\.Lock is held reaches I/O: os\.WriteFile \(the PR-4 bug class, one call deep\)`
}

// Two calls deep: the witness chain names every hop down to the I/O.
func (c *cache) checkpoint() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.persist() // want `call to cache\.persist while c\.mu\.Lock is held reaches I/O: cache\.flush -> os\.WriteFile`
}

// Package-level callee under a read lock.
func (c *cache) warm(path string) ([]byte, error) {
	c.rw.RLock()
	defer c.rw.RUnlock()
	return load(path) // want `call to load while c\.rw\.RLock is held reaches I/O: os\.ReadFile`
}

// Pure callee under the lock: no I/O in the summary, no finding.
func (c *cache) bumpUnderLockOK(k string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bump(k)
}

// I/O-reaching call after the unlock: the PR-4 fix shape.
func (c *cache) flushOutsideLockOK(k string, v int) error {
	c.mu.Lock()
	c.data[k] = v
	c.mu.Unlock()
	return c.flush()
}

// The flock pseudo-lock exists to serialize writers around exactly
// this I/O, so calls under it are exempt (as in lock-io).
func (c *cache) flushUnderFlockOK() error {
	unlock := c.flockExclusive()
	defer unlock()
	return c.flush()
}

func (c *cache) suppressedFlush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	//gblint:ignore lock-io-deep corpus: startup-only path, the lock is uncontended by construction
	return c.flush()
}
