package determinism

import (
	"sort"

	"repro/internal/routing"
)

// The VRF-publish bug class (DESIGN.md §7): RIB mutations inside a map
// range accumulate published deltas and draw logical clocks in map
// iteration order, which gob-encodes into persisted artifacts.
func withdrawInMapOrder(r *routing.RIB, stale map[string]routing.Route) {
	for _, rt := range stale {
		r.Withdraw(rt) // want `\(routing\.RIB\)\.Withdraw inside map range`
	}
}

func mergeInMapOrder(r *routing.RIB, add map[string]routing.Route) {
	for _, rt := range add {
		r.Merge(rt) // want `\(routing\.RIB\)\.Merge inside map range`
	}
}

func clockInMapOrder(c *routing.Clock, m map[string]bool) {
	for range m {
		_ = c.Next() // want `\(routing\.Clock\)\.Next inside map range`
	}
}

// Sorting the keys first, then mutating in sorted order, is the fix the
// check steers toward; the slice range is not a map range.
func withdrawSortedOK(r *routing.RIB, stale map[string]routing.Route) {
	names := make([]string, 0, len(stale))
	for n := range stale {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		r.Withdraw(stale[n])
	}
}

// Clock.Now is a read, not a draw; call order does not change state.
func clockReadOK(c *routing.Clock, m map[string]bool) uint64 {
	var last uint64
	for range m {
		last = c.Now()
	}
	return last
}
