// Golden corpus for the determinism check: wall-clock reads, PRNG use,
// and map ranges whose iteration order leaks into results. Loaded by
// lint_test.go under the synthetic import path repro/internal/dataplane
// so it falls inside the analyzer's scope.
package determinism

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want `wall-clock read time\.Now`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `wall-clock read time\.Since`
}

func jitter() int {
	return rand.Intn(8) // want `PRNG use rand\.Intn`
}

func unsortedAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `keys accumulates map iteration order`
	}
	return keys
}

// The idiomatic collect-then-sort pattern is clean.
func sortedAppendOK(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func writerSink(m map[string]int, b *strings.Builder) {
	for k := range m {
		b.WriteString(k) // want `b\.WriteString inside map range`
	}
}

func printSink(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want `fmt\.Println inside map range`
	}
}

// fmt.Sprintf builds a value without emitting it; order-neutral.
func sprintfOK(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k, v := range m {
		out = append(out, fmt.Sprintf("%s=%d", k, v))
	}
	sort.Strings(out)
	return out
}

// Ranging over a slice is inherently ordered; nothing to flag.
func sliceRangeOK(xs []string, b *strings.Builder) {
	for _, x := range xs {
		b.WriteString(x)
	}
}

func suppressedAbove() time.Time {
	//gblint:ignore determinism corpus: documented suppression with a reason
	return time.Now()
}

func suppressedInline() time.Time {
	return time.Now() //gblint:ignore determinism corpus: trailing suppression with a reason
}

func suppressionMissingReason() time.Time {
	//gblint:ignore determinism // want `missing mandatory reason`
	return time.Now() // want `wall-clock read time\.Now`
}

//gblint:ignore nosuchcheck the named check does not exist // want `unknown check`
func suppressionUnknownCheck() {}
