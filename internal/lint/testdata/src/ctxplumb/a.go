// Golden corpus for the ctx-plumb check: exported entry points that can
// run unboundedly must accept a context.Context. Loaded under the
// synthetic import path repro/internal/pipeline (in scope).
package ctxplumb

import (
	"context"
	"net/http"
)

type Engine struct{ n int }

func (e *Engine) RunForever() { // want `exported RunForever contains an unbounded for-loop`
	for {
		e.n++
	}
}

func (e *Engine) Spawn() { // want `exported Spawn spawns goroutines`
	go func() { e.n++ }()
}

func (e *Engine) RunCtx(ctx context.Context) {
	for {
		if ctx.Err() != nil {
			return
		}
		e.n++
	}
}

// An *http.Request parameter carries the context.
func (e *Engine) Handle(w http.ResponseWriter, r *http.Request) {
	go func() { e.n++ }()
}

func (e *Engine) Bounded() {
	for i := 0; i < 10; i++ {
		e.n++
	}
}

// Methods on unexported types are not callable from outside the package.
type engine struct{ n int }

func (e *engine) RunForever() {
	for {
		e.n++
	}
}

func helper() {
	for {
	}
}

//gblint:ignore ctx-plumb drain loop is bounded by process lifetime and documented at the call site
func Drain() {
	for {
	}
}
