// Package lint implements gblint, the repo-invariant static analyzer
// suite (DESIGN.md §7). Each analyzer mechanizes an invariant the repo
// previously enforced only by convention and after-the-fact review:
//
//   - determinism:  no iteration-order-dependent output, time.Now, or
//     math/rand in the deterministic simulation packages (§4.1.2)
//   - lock-io:      no file I/O, net calls, or channel sends while a
//     sync.Mutex/RWMutex is held (the PR-4 diskcache bug class)
//   - ctx-plumb:    exported functions that loop unboundedly or spawn
//     goroutines must accept a context.Context
//   - panic-safe:   goroutine literals in the long-running service and
//     pipeline must recover (directly or via diag.Capture)
//   - intern-write: interned *routing.BGPAttrs values are immutable
//     outside internal/routing (§4.1.3)
//
// The suite is stdlib-only: packages are discovered by walking
// directories, parsed with go/parser, and type-checked with go/types
// backed by go/importer's source importer for the standard library and
// a module-local importer for repro/... paths. It deliberately avoids
// golang.org/x/tools so the linter builds in the same hermetic
// environment as the code it gates.
//
// Findings can be suppressed with an inline or preceding-line comment:
//
//	//gblint:ignore <check> <reason>
//
// The reason is mandatory; a suppression without one is itself a
// finding (check "suppression"), so every exemption in the tree is
// self-documenting.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one reported invariant violation.
type Finding struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", f.File, f.Line, f.Col, f.Message, f.Check)
}

// Package is one loaded, parsed, and type-checked package, the unit an
// Analyzer operates on. Files holds non-test sources only: test files
// are exempt from every check (they are not part of the shipped
// invariant surface, and several legitimately use time.Now and
// math/rand for deadlines and seeded generation).
type Package struct {
	Path     string // import path, e.g. repro/internal/dataplane
	Dir      string
	Fset     *token.FileSet
	Files    []*ast.File
	Info     *types.Info
	Types    *types.Package
	TypeErrs []error
}

// Analyzer is one gblint check.
type Analyzer interface {
	// Name is the short identifier used in output, -checks, and
	// //gblint:ignore comments.
	Name() string
	// Doc is a one-line description for -list output.
	Doc() string
	// Check reports findings for one package. prog is the module-wide
	// view (call graph + per-function summaries) shared by every
	// analyzer in the run; intraprocedural checks may ignore it. Scope
	// filtering (which packages the check applies to) is the analyzer's
	// own job. Globally-computed findings (lock-order cycles) must be
	// attributed to the package owning the finding's file so each is
	// reported exactly once.
	Check(prog *Program, p *Package) []Finding
}

// All returns the full analyzer suite in stable order.
func All() []Analyzer {
	return []Analyzer{
		Determinism{},
		LockIO{},
		CtxPlumb{},
		PanicSafe{},
		InternWrite{},
		LockOrder{},
		LockIODeep{},
		GoroutineLeak{},
		ErrDrop{},
	}
}

// Select returns the analyzers whose names appear in the comma-separated
// list, or All() when the list is empty.
func Select(list string) ([]Analyzer, error) {
	if strings.TrimSpace(list) == "" {
		return All(), nil
	}
	byName := make(map[string]Analyzer)
	for _, a := range All() {
		byName[a.Name()] = a
	}
	var out []Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown check %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run builds the module-wide Program once, applies the analyzers to
// every package, filters suppressed findings, appends
// malformed-suppression findings, and returns the result sorted by
// position.
func Run(pkgs []*Package, analyzers []Analyzer) []Finding {
	prog := BuildProgram(pkgs)
	var out []Finding
	seen := make(map[Finding]bool) // nested map ranges can double-report one sink
	for _, p := range pkgs {
		sup := collectSuppressions(p)
		for _, a := range analyzers {
			for _, f := range a.Check(prog, p) {
				if !sup.covers(f) && !seen[f] {
					seen[f] = true
					out = append(out, f)
				}
			}
		}
		out = append(out, sup.malformed...)
	}
	sortFindings(out)
	return out
}

// sortFindings orders findings by (file, line, col, check, message) —
// message last, so two different findings from one check anchored at
// one position (e.g. two lock-order edges witnessed by the same
// acquisition) still serialize deterministically for CI diffs.
func sortFindings(out []Finding) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}

// inScope reports whether the package's import path is one of the given
// roots or below one of them.
func inScope(path string, roots []string) bool {
	for _, r := range roots {
		if path == r || strings.HasPrefix(path, r+"/") {
			return true
		}
	}
	return false
}

// posOf converts a token.Pos into a Finding's file/line/col triple.
func posOf(fset *token.FileSet, pos token.Pos) (string, int, int) {
	p := fset.Position(pos)
	return p.Filename, p.Line, p.Column
}

// finding builds a Finding at the given node position.
func finding(p *Package, check string, pos token.Pos, format string, args ...any) Finding {
	file, line, col := posOf(p.Fset, pos)
	return Finding{
		Check:   check,
		File:    file,
		Line:    line,
		Col:     col,
		Message: fmt.Sprintf(format, args...),
	}
}

// pkgPathOf returns the import path of the package an identifier's
// object belongs to, or "" for builtins and package-less objects.
func pkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// namedType unwraps pointers and aliases and returns the named type's
// package path and name, or ("", "") when the type is not named.
func namedType(t types.Type) (pkgPath, name string) {
	if t == nil {
		return "", ""
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := types.Unalias(t).(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			return obj.Pkg().Path(), obj.Name()
		}
		return "", obj.Name()
	}
	return "", ""
}

// isPkgCall reports whether the call is a qualified reference into one
// of the given package import paths (e.g. os.ReadFile, io.Copy), and if
// so returns the rendered selector for the finding message.
func isPkgCall(info *types.Info, call *ast.CallExpr, paths map[string]bool) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	if paths[pn.Imported().Path()] {
		return pn.Imported().Name() + "." + sel.Sel.Name, true
	}
	return "", false
}

// funcBodies calls fn once per function body in the file: every
// FuncDecl with a body and every FuncLit. The decl argument is non-nil
// only for FuncDecls.
func funcBodies(f *ast.File, fn func(decl *ast.FuncDecl, body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncDecl:
			if v.Body != nil {
				fn(v, v.Body)
			}
		case *ast.FuncLit:
			fn(nil, v.Body)
		}
		return true
	})
}
