package lint

import (
	"go/ast"
	"go/types"
)

// ErrDrop flags discarded errors from a must-check list: operations
// whose failure silently corrupts the coordination or artifact state
// the cluster depends on. The general errcheck problem is out of scope
// (and `_ =` is a legitimate idiom elsewhere in the tree); this check
// is a curated list of calls where dropping the error has already
// bitten or plausibly will:
//
//   - diskcache lease operations (AcquireLease, Renew, Release): a
//     dropped Release error leaves a lease file that every future
//     acquirer must wait out.
//   - diskcache Cache.Put: today Put returns no error (failures are
//     absorbed into cache-miss behavior), so the entry is vacuous —
//     it is on the list so that if Put ever grows an error result,
//     existing call sites get flagged instead of silently dropping it.
//   - gob Encoder.Encode: artifact serialization; a dropped encode
//     error ships a truncated artifact.
//   - http response Body.Close (non-deferred): a dropped close error
//     on the write path can mask a failed read.
//
// Discard forms: a bare ExprStmt, a GoStmt, or an assignment where
// every error-typed result position is the blank identifier. Deferred
// calls are exempt — `defer resp.Body.Close()` is the established
// idiom for read paths where close errors are uninteresting, and a
// deferred call has no way to return its error anyway.
type ErrDrop struct{}

func (ErrDrop) Name() string { return "err-drop" }

func (ErrDrop) Doc() string {
	return "discarded errors from the must-check list (lease ops, gob encode, Body.Close)"
}

// errDropRules is the must-check list, keyed by package path, then
// receiver type name ("" for package-level functions), then method
// name.
var errDropRules = map[string]map[string]map[string]bool{
	"repro/internal/diskcache": {
		"Cache": {"AcquireLease": true, "Put": true},
		"Lease": {"Renew": true, "Release": true},
	},
	"encoding/gob": {
		"Encoder": {"Encode": true},
	},
}

func (ErrDrop) Check(prog *Program, p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		funcBodies(f, func(_ *ast.FuncDecl, body *ast.BlockStmt) {
			walkSkippingFuncLits(body, func(n ast.Node) {
				switch v := n.(type) {
				case *ast.ExprStmt:
					if call, ok := v.X.(*ast.CallExpr); ok {
						out = appendErrDrop(out, p, call, nil)
					}
				case *ast.GoStmt:
					out = appendErrDrop(out, p, v.Call, nil)
				case *ast.AssignStmt:
					if len(v.Rhs) == 1 {
						if call, ok := v.Rhs[0].(*ast.CallExpr); ok {
							out = appendErrDrop(out, p, call, v.Lhs)
						}
					}
				}
			})
		})
	}
	return out
}

// appendErrDrop reports the call if it is on the must-check list and
// its error results are all discarded. lhs is nil for statement-form
// calls (everything discarded) and the assignment targets otherwise.
func appendErrDrop(out []Finding, p *Package, call *ast.CallExpr, lhs []ast.Expr) []Finding {
	name, sig, ok := mustCheckCallee(p, call)
	if !ok {
		return out
	}
	errIdx := errorResultIndexes(sig)
	if len(errIdx) == 0 {
		return out // vacuous today (e.g. Cache.Put) — future-proofing only
	}
	if lhs != nil {
		for _, i := range errIdx {
			if i >= len(lhs) {
				return out // single-value context; compiler rejects partial assigns
			}
			if id, isIdent := lhs[i].(*ast.Ident); !isIdent || id.Name != "_" {
				return out // at least one error result is bound
			}
		}
	}
	return append(out, finding(p, "err-drop", call.Pos(),
		"error from %s discarded (must-check: this failure corrupts coordination or artifact state)",
		name))
}

// mustCheckCallee resolves the call against the rule list, including
// the Body.Close special case (an interface method, so it has no
// static callee). It returns a display name and the callee signature.
func mustCheckCallee(p *Package, call *ast.CallExpr) (string, *types.Signature, bool) {
	// resp.Body.Close() on a *net/http.Response: Close is
	// io.Closer.Close through the Body field, dynamic dispatch, so it
	// must be matched structurally rather than via staticCallee.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" {
		if body, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok && body.Sel.Name == "Body" {
			if pkgPath, tname := namedType(p.Info.TypeOf(body.X)); pkgPath == "net/http" && tname == "Response" {
				if sig, ok := p.Info.TypeOf(call.Fun).(*types.Signature); ok {
					return "(net/http.Response).Body.Close", sig, true
				}
			}
		}
	}
	fn, _ := staticCallee(p, call)
	if fn == nil || fn.Pkg() == nil {
		return "", nil, false
	}
	byRecv, ok := errDropRules[fn.Pkg().Path()]
	if !ok {
		return "", nil, false
	}
	recvName := ""
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return "", nil, false
	}
	if sig.Recv() != nil {
		_, recvName = namedType(sig.Recv().Type())
	}
	names, ok := byRecv[recvName]
	if !ok || !names[fn.Name()] {
		return "", nil, false
	}
	name := fn.Pkg().Name() + "." + displayName(fn)
	return name, sig, true
}

// errorResultIndexes returns the result positions whose type is error.
func errorResultIndexes(sig *types.Signature) []int {
	var idx []int
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), types.Universe.Lookup("error").Type()) {
			idx = append(idx, i)
		}
	}
	return idx
}
