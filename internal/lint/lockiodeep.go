package lint

import "strings"

// LockIODeep is lock-io pushed through the call-graph summaries: a
// call made while a sync mutex is held, to a module function whose
// summary (transitively) reaches file or network I/O, is the same
// serialization bug lock-io catches one level up — `mu.Lock();
// c.flush()` where flush writes a file. The finding message carries
// the witness chain down to the I/O operation so the reader does not
// have to re-derive it.
//
// Pseudo-locks (the diskcache flock) are exempt, as in lock-io:
// serializing writers around I/O is the flock's purpose. Calls whose
// callee is dynamic (interface or func value) are invisible to the
// summaries — that soundness gap is documented in DESIGN.md §7.
type LockIODeep struct{}

func (LockIODeep) Name() string { return "lock-io-deep" }

func (LockIODeep) Doc() string {
	return "calls under a held sync mutex that reach file/net I/O through the call graph"
}

func (LockIODeep) Check(prog *Program, p *Package) []Finding {
	var out []Finding
	prog.factsIn(p, func(facts *bodyFacts) {
		for _, call := range facts.calls {
			if len(call.held) == 0 {
				continue
			}
			chain, ok := prog.ioChainOf(call.callee)
			if !ok {
				continue
			}
			witness := strings.Join(chain, " -> ")
			for _, h := range call.held {
				if h.pseudo {
					continue
				}
				out = append(out, finding(p, "lock-io-deep", call.pos,
					"call to %s while %s.%s is held reaches I/O: %s (the PR-4 bug class, one call deep)",
					displayName(call.callee), h.expr, h.method, witness))
			}
		}
	})
	return out
}
