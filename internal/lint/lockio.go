package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockIO enforces the lock-discipline invariant distilled from the
// PR-4 diskcache incident: disk latency must never serialize lock
// holders. Within a single function body it flags file I/O (os.*,
// io.*), network operations (net.*, net/http.*, os/exec.*), method
// calls on os/net objects (*os.File, net.Conn, ...), and channel sends
// that occur while a sync.Mutex or sync.RWMutex is held.
//
// The held region is computed conservatively: from a Lock()/RLock()
// call to the first matching Unlock()/RUnlock() on the same receiver
// expression, or to the end of the function when the unlock is
// deferred. Function literals inside the region are not scanned (they
// usually run later, off the lock); each literal's own body is analyzed
// separately. Since v2 the region computation lives in the shared
// summary layer (summary.go): this check reads each body's collected
// I/O and send sites with their held-lock sets. It stays deliberately
// intra-procedural — a helper that does I/O internally is caught one
// call deep by lock-io-deep instead. The diskcache directory flock is
// excluded here: serializing I/O is the flock's entire purpose, so
// only the lock-order check treats it as a lock.
type LockIO struct{}

func (LockIO) Name() string { return "lock-io" }

func (LockIO) Doc() string {
	return "file I/O, net calls, or channel sends while a sync mutex is held"
}

// lockIOPkgs are the packages whose direct calls count as I/O under a
// lock.
var lockIOPkgs = map[string]bool{
	"os":        true,
	"io":        true,
	"io/fs":     true,
	"io/ioutil": true,
	"net":       true,
	"net/http":  true,
	"os/exec":   true,
}

// lockIOPure are functions from the I/O packages that are pure
// predicates or parsers — no syscall, no blocking — and therefore fine
// to call under a lock (e.g. diskcache classifying a read error while
// holding its index mutex).
var lockIOPure = map[string]bool{
	"os.IsNotExist":           true,
	"os.IsExist":              true,
	"os.IsPermission":         true,
	"os.IsTimeout":            true,
	"os.Getpid":               true,
	"net.ParseIP":             true,
	"net.ParseCIDR":           true,
	"net.ParseMAC":            true,
	"net.JoinHostPort":        true,
	"net.SplitHostPort":       true,
	"net.CIDRMask":            true,
	"http.StatusText":         true,
	"http.CanonicalHeaderKey": true,
}

func (LockIO) Check(prog *Program, p *Package) []Finding {
	var out []Finding
	prog.factsIn(p, func(facts *bodyFacts) {
		for _, io := range facts.ios {
			for _, h := range io.held {
				if h.pseudo {
					continue
				}
				if strings.HasPrefix(io.name, "(") {
					out = append(out, finding(p, "lock-io", io.pos,
						"call to %s while %s.%s is held (I/O latency serializes every lock holder)",
						io.name, h.expr, h.method))
				} else {
					out = append(out, finding(p, "lock-io", io.pos,
						"call to %s while %s.%s is held (the PR-4 diskcache bug class: I/O latency serializes every lock holder)",
						io.name, h.expr, h.method))
				}
			}
		}
		for _, s := range facts.sends {
			for _, h := range s.held {
				if h.pseudo {
					continue
				}
				out = append(out, finding(p, "lock-io", s.pos,
					"channel send while %s.%s is held (can block the lock on a slow receiver)",
					h.expr, h.method))
			}
		}
	})
	return out
}

// isSyncMutexMethod reports whether the selector resolves to a method
// of sync.Mutex or sync.RWMutex (including promoted via embedding).
func isSyncMutexMethod(p *Package, sel *ast.SelectorExpr) bool {
	s, ok := p.Info.Selections[sel]
	if !ok {
		return false
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	pkgPath, name := namedType(sig.Recv().Type())
	return pkgPath == "sync" && (name == "Mutex" || name == "RWMutex")
}

// isOSNetMethodCall reports whether the call is a method call on a
// value whose named type lives in os or net (e.g. (*os.File).Write,
// net.Conn.Read).
func isOSNetMethodCall(p *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if _, ok := p.Info.Selections[sel]; !ok {
		return "", false // qualified identifier, handled by isPkgCall
	}
	recv := p.Info.TypeOf(sel.X)
	pkgPath, name := namedType(recv)
	if pkgPath == "os" || pkgPath == "net" {
		return "(" + pkgPath + "." + name + ")." + sel.Sel.Name, true
	}
	return "", false
}
