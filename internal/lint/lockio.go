package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockIO enforces the lock-discipline invariant distilled from the
// PR-4 diskcache incident: disk latency must never serialize lock
// holders. Within a single function body it flags file I/O (os.*,
// io.*), network operations (net.*, net/http.*, os/exec.*), method
// calls on os/net objects (*os.File, net.Conn, ...), and channel sends
// that occur while a sync.Mutex or sync.RWMutex is held.
//
// The held region is computed conservatively: from a Lock()/RLock()
// call to the first matching Unlock()/RUnlock() on the same receiver
// expression, or to the end of the function when the unlock is
// deferred. Function literals inside the region are not scanned (they
// usually run later, off the lock); each literal's own body is analyzed
// separately. The analysis is intra-procedural by design — a helper
// that does I/O internally is the helper's problem at its own
// definition site.
type LockIO struct{}

func (LockIO) Name() string { return "lock-io" }

func (LockIO) Doc() string {
	return "file I/O, net calls, or channel sends while a sync mutex is held"
}

// lockIOPkgs are the packages whose direct calls count as I/O under a
// lock.
var lockIOPkgs = map[string]bool{
	"os":        true,
	"io":        true,
	"io/fs":     true,
	"io/ioutil": true,
	"net":       true,
	"net/http":  true,
	"os/exec":   true,
}

// lockIOPure are functions from the I/O packages that are pure
// predicates or parsers — no syscall, no blocking — and therefore fine
// to call under a lock (e.g. diskcache classifying a read error while
// holding its index mutex).
var lockIOPure = map[string]bool{
	"os.IsNotExist":           true,
	"os.IsExist":              true,
	"os.IsPermission":         true,
	"os.IsTimeout":            true,
	"os.Getpid":               true,
	"net.ParseIP":             true,
	"net.ParseCIDR":           true,
	"net.ParseMAC":            true,
	"net.JoinHostPort":        true,
	"net.SplitHostPort":       true,
	"net.CIDRMask":            true,
	"http.StatusText":         true,
	"http.CanonicalHeaderKey": true,
}

func (LockIO) Check(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		funcBodies(f, func(_ *ast.FuncDecl, body *ast.BlockStmt) {
			out = append(out, checkLockedRegions(p, body)...)
		})
	}
	return out
}

// lockEvent is one Lock/Unlock call site on a sync mutex.
type lockEvent struct {
	pos      token.Pos
	key      string // rendered receiver expression, e.g. "s.mu"
	method   string // Lock, RLock, Unlock, RUnlock
	deferred bool
}

func checkLockedRegions(p *Package, body *ast.BlockStmt) []Finding {
	events := collectLockEvents(p, body)
	if len(events) == 0 {
		return nil
	}
	var out []Finding
	for i, e := range events {
		var unlockName string
		switch e.method {
		case "Lock":
			unlockName = "Unlock"
		case "RLock":
			unlockName = "RUnlock"
		default:
			continue
		}
		end := body.End()
		for _, u := range events[i+1:] {
			if u.key == e.key && u.method == unlockName {
				if !u.deferred {
					end = u.pos
				}
				break
			}
		}
		out = append(out, scanHeldRegion(p, body, e, end)...)
	}
	return out
}

// collectLockEvents finds mutex Lock/Unlock calls in the body (not in
// nested function literals), in source order.
func collectLockEvents(p *Package, body *ast.BlockStmt) []lockEvent {
	var events []lockEvent
	walkSkippingFuncLits(body, func(n ast.Node) {
		var call *ast.CallExpr
		deferred := false
		switch v := n.(type) {
		case *ast.DeferStmt:
			call = v.Call
			deferred = true
		case *ast.ExprStmt:
			c, ok := v.X.(*ast.CallExpr)
			if !ok {
				return
			}
			call = c
		default:
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		switch sel.Sel.Name {
		case "Lock", "RLock", "Unlock", "RUnlock":
		default:
			return
		}
		if !isSyncMutexMethod(p, sel) {
			return
		}
		events = append(events, lockEvent{
			pos:      call.Pos(),
			key:      types.ExprString(sel.X),
			method:   sel.Sel.Name,
			deferred: deferred,
		})
	})
	return events
}

// isSyncMutexMethod reports whether the selector resolves to a method
// of sync.Mutex or sync.RWMutex (including promoted via embedding).
func isSyncMutexMethod(p *Package, sel *ast.SelectorExpr) bool {
	s, ok := p.Info.Selections[sel]
	if !ok {
		return false
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	pkgPath, name := namedType(sig.Recv().Type())
	return pkgPath == "sync" && (name == "Mutex" || name == "RWMutex")
}

// scanHeldRegion reports I/O and channel sends between lock.pos and
// end, skipping nested function literals.
func scanHeldRegion(p *Package, body *ast.BlockStmt, lock lockEvent, end token.Pos) []Finding {
	var out []Finding
	walkSkippingFuncLits(body, func(n ast.Node) {
		if n.Pos() <= lock.pos || n.Pos() >= end {
			return
		}
		switch v := n.(type) {
		case *ast.SendStmt:
			out = append(out, finding(p, "lock-io", v.Pos(),
				"channel send while %s.%s is held (can block the lock on a slow receiver)",
				lock.key, lock.method))
		case *ast.CallExpr:
			if name, ok := isPkgCall(p.Info, v, lockIOPkgs); ok {
				if lockIOPure[name] {
					return
				}
				out = append(out, finding(p, "lock-io", v.Pos(),
					"call to %s while %s.%s is held (the PR-4 diskcache bug class: I/O latency serializes every lock holder)",
					name, lock.key, lock.method))
				return
			}
			if name, ok := isOSNetMethodCall(p, v); ok {
				out = append(out, finding(p, "lock-io", v.Pos(),
					"call to %s while %s.%s is held (I/O latency serializes every lock holder)",
					name, lock.key, lock.method))
			}
		}
	})
	return out
}

// isOSNetMethodCall reports whether the call is a method call on a
// value whose named type lives in os or net (e.g. (*os.File).Write,
// net.Conn.Read).
func isOSNetMethodCall(p *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if _, ok := p.Info.Selections[sel]; !ok {
		return "", false // qualified identifier, handled by isPkgCall
	}
	recv := p.Info.TypeOf(sel.X)
	pkgPath, name := namedType(recv)
	if pkgPath == "os" || pkgPath == "net" {
		return "(" + pkgPath + "." + name + ")." + sel.Sel.Name, true
	}
	return "", false
}
