package lint

import "strings"

// GoroutineLeak enforces the cluster runLoop/replicator contract: a
// spawned goroutine that loops unboundedly must have a way to stop —
// a receive on ctx.Done(), a stop channel, or at least some exit path
// out of the loop. A `for {}` with no return/break/panic and no
// channel receive (directly or in anything the loop body calls) runs
// until process death no matter what the caller cancels; every spawn
// of such a body leaks one goroutine per call.
//
// Conservatism: any channel receive counts as a stop path (the check
// cannot prove which channel is the stop channel — a ticker-only loop
// with no ctx.Done() case is a miss, not a false positive), and
// labeled branches or gotos count as exits. Leakiness propagates
// through static calls, so `go n.runLoop(ctx)` is judged by runLoop's
// own body.
type GoroutineLeak struct{}

// leakScope lists the packages whose goroutine spawns are gated: the
// long-running service layers that actually hold goroutines for the
// process lifetime.
var leakScope = []string{
	"repro/internal/server",
	"repro/internal/pipeline",
	"repro/internal/cluster",
	"repro/internal/sweep",
}

func (GoroutineLeak) Name() string { return "goroutine-leak" }

func (GoroutineLeak) Doc() string {
	return "spawned goroutines that loop unboundedly with no stop-channel receive or exit path"
}

func (GoroutineLeak) Check(prog *Program, p *Package) []Finding {
	if !inScope(p.Path, leakScope) {
		return nil
	}
	prog.ensureSummaries()
	var out []Finding
	prog.factsIn(p, func(facts *bodyFacts) {
		for _, g := range facts.gos {
			switch {
			case g.lit != nil:
				lf := prog.litFactsOf(g.lit)
				if lf == nil {
					continue
				}
				if li := prog.leakOfFacts(lf); li != nil {
					msg := "goroutine literal loops forever with no ctx.Done()/stop receive or exit path (goroutine leak)"
					if len(li.chain) > 0 {
						msg = "goroutine literal calls " + strings.Join(li.chain, " -> ") +
							", which loops forever with no ctx.Done()/stop receive or exit path (goroutine leak)"
					}
					out = append(out, finding(p, "goroutine-leak", g.pos, "%s", msg))
				}
			case g.callee != nil:
				if li := prog.leakOf(g.callee); li != nil {
					chain := append([]string{displayName(g.callee)}, li.chain...)
					out = append(out, finding(p, "goroutine-leak", g.pos,
						"goroutine %s loops forever with no ctx.Done()/stop receive or exit path (goroutine leak)",
						strings.Join(chain, " -> ")))
				}
			}
		}
	})
	return out
}
