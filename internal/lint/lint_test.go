package lint_test

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint"
)

// The golden corpus: each case loads one testdata package under a
// synthetic import path (which is what the analyzers scope on) and
// diffs the findings against `// want` expectations in the sources.
var goldenCases = []struct {
	check string // analyzer to run (suppression findings always apply)
	dir   string // directory under testdata/src
	path  string // synthetic import path controlling analyzer scope
}{
	{"determinism", "determinism", "repro/internal/dataplane"},
	{"lock-io", "lockio", "repro/internal/lockio"},
	{"ctx-plumb", "ctxplumb", "repro/internal/pipeline"},
	{"panic-safe", "panicsafe", "repro/internal/server"},
	{"intern-write", "internwrite", "repro/internal/internwrite"},
	{"lock-order", "lockorder", "repro/internal/lockorder"},
	{"lock-io-deep", "lockiodeep", "repro/internal/lockiodeep"},
	// goroutine-leak scopes on the service packages, so the corpus
	// loads under a synthetic cluster path.
	{"goroutine-leak", "goroutineleak", "repro/internal/cluster"},
	{"err-drop", "errdrop", "repro/internal/errdrop"},
	// The suppression-list corpus needs findings from two checks so a
	// comma list has members of each kind to exempt.
	{"lock-io,err-drop", "suppresslist", "repro/internal/suppresslist"},
}

// One loader for the whole test binary: the stdlib is source-imported
// and type-checked once, then shared by every corpus load.
var (
	loaderOnce sync.Once
	loader     *lint.Loader
	loaderErr  error
)

func testLoader(t *testing.T) *lint.Loader {
	t.Helper()
	loaderOnce.Do(func() { loader, loaderErr = lint.NewLoader(".") })
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return loader
}

func TestGoldenCorpus(t *testing.T) {
	l := testLoader(t)
	for _, tc := range goldenCases {
		t.Run(tc.check, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", tc.dir)
			pkg, err := l.LoadDir(dir, tc.path)
			if err != nil {
				t.Fatalf("LoadDir(%s): %v", dir, err)
			}
			for _, e := range pkg.TypeErrs {
				t.Errorf("corpus does not type-check: %v", e)
			}
			if t.Failed() {
				t.FailNow()
			}
			analyzers, err := lint.Select(tc.check)
			if err != nil {
				t.Fatalf("Select(%q): %v", tc.check, err)
			}
			got := lint.Run([]*lint.Package{pkg}, analyzers)
			wants := parseWants(t, dir)

			for _, f := range got {
				if !claimWant(wants, f) {
					t.Errorf("unexpected finding: %s", f)
				}
			}
			for _, w := range wants {
				if !w.hit {
					t.Errorf("%s:%d: expected finding matching %q, got none",
						w.file, w.line, w.re)
				}
			}
		})
	}
}

// expectation is one `// want` comment: the finding message on that
// line must match the regexp.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// claimWant marks the first unclaimed expectation matching the finding
// and reports whether one existed.
func claimWant(wants []*expectation, f lint.Finding) bool {
	for _, w := range wants {
		if w.file == f.File && w.line == f.Line && !w.hit && w.re.MatchString(f.Message) {
			w.hit = true
			return true
		}
	}
	return false
}

// wantPattern extracts backquoted regexes from the tail of a `// want`
// comment: // want `first` `second`.
var wantPattern = regexp.MustCompile("`([^`]*)`")

func parseWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir(%s): %v", dir, err)
	}
	var wants []*expectation
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			text := sc.Text()
			i := strings.Index(text, "// want")
			if i < 0 {
				continue
			}
			ms := wantPattern.FindAllStringSubmatch(text[i:], -1)
			if len(ms) == 0 {
				t.Errorf("%s:%d: malformed want comment (no backquoted regex)", path, line)
				continue
			}
			for _, m := range ms {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Errorf("%s:%d: bad want regexp %q: %v", path, line, m[1], err)
					continue
				}
				wants = append(wants, &expectation{file: path, line: line, re: re})
			}
		}
		if err := sc.Err(); err != nil {
			t.Errorf("scanning %s: %v", path, err)
		}
		f.Close()
	}
	return wants
}

// TestTreeClean runs the full suite over the real tree: the repo must
// lint clean, so any regression fails `go test ./...` as well as
// `make lint`.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree lint skipped with -short")
	}
	l := testLoader(t)
	pkgs, err := l.Packages([]string{"./..."})
	if err != nil {
		t.Fatalf("Packages(./...): %v", err)
	}
	for _, p := range pkgs {
		for _, e := range p.TypeErrs {
			t.Errorf("%s: type error: %v", p.Path, e)
		}
	}
	for _, f := range lint.Run(pkgs, lint.All()) {
		t.Errorf("tree is not lint-clean: %s", f)
	}
}

func TestSelect(t *testing.T) {
	all, err := lint.Select("")
	if err != nil || len(all) != len(lint.All()) {
		t.Fatalf("Select(\"\") = %d analyzers, err %v; want the full suite", len(all), err)
	}
	two, err := lint.Select("determinism, lock-io")
	if err != nil || len(two) != 2 {
		t.Fatalf("Select(two) = %d analyzers, err %v; want 2", len(two), err)
	}
	if _, err := lint.Select("nope"); err == nil {
		t.Fatal("Select(\"nope\") succeeded; want unknown-check error")
	}
}
