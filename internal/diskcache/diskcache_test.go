package diskcache

import (
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/faults"
)

func keyFor(s string) [sha256.Size]byte { return sha256.Sum256([]byte(s)) }

func openT(t *testing.T, dir string, opts Options) *Cache {
	t.Helper()
	c, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return c
}

func TestPutGetRoundTrip(t *testing.T) {
	c := openT(t, t.TempDir(), Options{})
	k := keyFor("a")
	payload := []byte("the artifact bytes")
	c.Put(k, payload)
	got, ok := c.Get(k)
	if !ok || string(got) != string(payload) {
		t.Fatalf("Get = %q, %v; want payload back", got, ok)
	}
	if _, ok := c.Get(keyFor("missing")); ok {
		t.Fatal("Get of unknown key hit")
	}
	st := c.Stats()
	if st.Puts != 1 || st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestZeroKeyNeverPersisted(t *testing.T) {
	c := openT(t, t.TempDir(), Options{})
	c.Put([sha256.Size]byte{}, []byte("degraded artifact"))
	if st := c.Stats(); st.Puts != 0 || st.Entries != 0 {
		t.Fatalf("zero key was persisted: %+v", st)
	}
}

// TestRecoveryKillMidWrite simulates every torn state a crash mid-write
// can leave under the temp-file + rename protocol, plus bit rot, and
// asserts the recovery scan serves none of them.
func TestRecoveryKillMidWrite(t *testing.T) {
	dir := t.TempDir()
	c := openT(t, dir, Options{})
	good1, good2 := keyFor("good1"), keyFor("good2")
	torn := keyFor("torn")
	flipped := keyFor("flipped")
	c.Put(good1, []byte("payload-1"))
	c.Put(good2, []byte("payload-2"))
	c.Put(torn, []byte("payload-torn"))
	c.Put(flipped, []byte("payload-flipped"))

	// Crash states, created directly against the directory as a kill at
	// the worst moment would leave them:
	// 1. An orphan temp file (killed before rename).
	if err := os.WriteFile(filepath.Join(dir, "put-123.tmp"), []byte("half a header"), 0o644); err != nil {
		t.Fatal(err)
	}
	// 2. A committed entry truncated mid-payload (torn write on a
	// non-atomic filesystem).
	tornPath := c.path(fmt.Sprintf("%x", torn))
	b, err := os.ReadFile(tornPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tornPath, b[:len(b)-4], 0o644); err != nil {
		t.Fatal(err)
	}
	// 3. A committed entry with a flipped payload bit (bit rot).
	flipPath := c.path(fmt.Sprintf("%x", flipped))
	b, err = os.ReadFile(flipPath)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0x40
	if err := os.WriteFile(flipPath, b, 0o644); err != nil {
		t.Fatal(err)
	}

	// "Restart": reopen the same directory.
	c2 := openT(t, dir, Options{})
	st := c2.Stats()
	if st.ScanRemoved != 1 {
		t.Errorf("ScanRemoved = %d, want 1 (the orphan temp)", st.ScanRemoved)
	}
	if st.Quarantined != 2 {
		t.Errorf("Quarantined = %d, want 2 (torn + bit-flipped)", st.Quarantined)
	}
	if st.Entries != 2 {
		t.Errorf("Entries = %d, want the 2 clean ones", st.Entries)
	}
	for _, k := range [][sha256.Size]byte{torn, flipped} {
		if _, ok := c2.Get(k); ok {
			t.Error("corrupt entry was served")
		}
	}
	if got, ok := c2.Get(good1); !ok || string(got) != "payload-1" {
		t.Errorf("clean entry 1 lost: %q %v", got, ok)
	}
	if got, ok := c2.Get(good2); !ok || string(got) != "payload-2" {
		t.Errorf("clean entry 2 lost: %q %v", got, ok)
	}
	// Quarantined files are preserved for post-mortem.
	qfiles, err := os.ReadDir(filepath.Join(dir, quarantineDir))
	if err != nil || len(qfiles) != 2 {
		t.Errorf("quarantine dir: %v files, err %v; want 2", len(qfiles), err)
	}
	// The orphan temp is gone.
	if _, err := os.Stat(filepath.Join(dir, "put-123.tmp")); !os.IsNotExist(err) {
		t.Error("orphan temp file survived the recovery scan")
	}
}

// TestCorruptionQuarantinedOnGet covers detection at read time (no
// restart): the entry reads as a miss and moves to quarantine, so the
// caller recomputes.
func TestCorruptionQuarantinedOnGet(t *testing.T) {
	dir := t.TempDir()
	c := openT(t, dir, Options{})
	k := keyFor("x")
	c.Put(k, []byte("payload"))
	path := c.path(fmt.Sprintf("%x", k))
	b, _ := os.ReadFile(path)
	b[len(b)-1] ^= 1
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(k); ok {
		t.Fatal("corrupt entry served")
	}
	st := c.Stats()
	if st.Quarantined != 1 || st.Entries != 0 {
		t.Fatalf("stats after corrupt Get: %+v", st)
	}
	// A fresh Put re-commits cleanly.
	c.Put(k, []byte("recomputed"))
	if got, ok := c.Get(k); !ok || string(got) != "recomputed" {
		t.Fatalf("recomputed entry: %q %v", got, ok)
	}
}

// TestInjectedKillMidWrite uses the fault injector to kill the write
// between header and payload; the entry must not commit and no temp file
// may leak.
func TestInjectedKillMidWrite(t *testing.T) {
	dir := t.TempDir()
	c := openT(t, dir, Options{})
	inj := faults.New().Enable("diskcache", "write", faults.Rule{Kind: faults.Panic, Count: 1})
	defer faults.Activate(inj)()
	k := keyFor("doomed")
	c.Put(k, []byte("never lands"))
	if _, ok := c.Get(k); ok {
		t.Fatal("interrupted write was served")
	}
	st := c.Stats()
	if st.PutErrors != 1 {
		t.Fatalf("PutErrors = %d, want 1", st.PutErrors)
	}
	// Second attempt (rule count exhausted) commits.
	c.Put(k, []byte("lands"))
	if got, ok := c.Get(k); !ok || string(got) != "lands" {
		t.Fatalf("retry write: %q %v", got, ok)
	}
	// No temp files left behind.
	matches, _ := filepath.Glob(filepath.Join(dir, "put-*.tmp"))
	if len(matches) != 0 {
		t.Fatalf("leaked temp files: %v", matches)
	}
}

func TestEvictionLRU(t *testing.T) {
	entrySize := int64(headerSize + 8)
	c := openT(t, t.TempDir(), Options{MaxBytes: 3 * entrySize})
	ks := [][sha256.Size]byte{keyFor("0"), keyFor("1"), keyFor("2"), keyFor("3")}
	for _, k := range ks[:3] {
		c.Put(k, []byte("12345678"))
	}
	// Touch ks[0] so ks[1] is the LRU victim.
	if _, ok := c.Get(ks[0]); !ok {
		t.Fatal("warm get missed")
	}
	c.Put(ks[3], []byte("12345678"))
	if c.Has(ks[1]) {
		t.Error("LRU victim survived")
	}
	for _, k := range [][sha256.Size]byte{ks[0], ks[2], ks[3]} {
		if !c.Has(k) {
			t.Error("recently used entry evicted")
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestRecoveryRespectsBound: reopening a directory holding more bytes
// than the bound evicts down to it (oldest first).
func TestRecoveryRespectsBound(t *testing.T) {
	dir := t.TempDir()
	c := openT(t, dir, Options{})
	for i := 0; i < 6; i++ {
		c.Put(keyFor(fmt.Sprint(i)), []byte("12345678"))
	}
	entrySize := int64(headerSize + 8)
	c2 := openT(t, dir, Options{MaxBytes: 2 * entrySize})
	if st := c2.Stats(); st.Entries != 2 || st.Bytes != 2*entrySize {
		t.Fatalf("bounded reopen: %+v", st)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := openT(t, t.TempDir(), Options{MaxBytes: -1})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := keyFor(fmt.Sprint(i % 10))
				if i%3 == 0 {
					c.Put(k, []byte(fmt.Sprintf("payload-%d", i%10)))
				} else {
					c.Get(k)
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Puts == 0 {
		t.Fatal("no puts landed")
	}
}
