package diskcache

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock is a mutable time source shared by several Cache handles so
// lease-expiry scenarios run deterministically, without real sleeps.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

// TestLeaseOrphanRaceSingleWinner: two live processes race to reclaim a
// crash-orphaned lease. The exclusive directory flock serializes the
// read-then-write, so exactly one racer wins; the other must observe the
// winner's fresh grant and back off with ErrLeaseHeld.
func TestLeaseOrphanRaceSingleWinner(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	dead := openT(t, dir, Options{})
	dead.SetClock(clk.Now)
	if _, err := dead.AcquireLease("cluster/coordinator", "coord-0", time.Second); err != nil {
		t.Fatal(err)
	}
	// The holder "crashes": never renews, never releases. Its grant
	// expires once the clock passes the ttl.
	clk.Advance(2 * time.Second)

	racers := []*Cache{openT(t, dir, Options{}), openT(t, dir, Options{})}
	owners := []string{"member-b", "member-c"}
	for _, c := range racers {
		c.SetClock(clk.Now)
	}
	errs := make([]error, len(racers))
	var wg sync.WaitGroup
	for i := range racers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = racers[i].AcquireLease("cluster/coordinator", owners[i], time.Minute)
		}(i)
	}
	wg.Wait()

	wins := 0
	for i, err := range errs {
		switch {
		case err == nil:
			wins++
		case errors.Is(err, ErrLeaseHeld):
		default:
			t.Fatalf("racer %d: unexpected error %v", i, err)
		}
	}
	if wins != 1 {
		t.Fatalf("orphan race produced %d winners, want exactly 1 (errs=%v)", wins, errs)
	}
}

// TestLeaseRenewalAcrossRecoveryScan: another process Opening the shared
// directory runs the lease recovery sweep; an unexpired lease must
// survive it, stay renewable by its holder, and keep excluding others.
func TestLeaseRenewalAcrossRecoveryScan(t *testing.T) {
	dir := t.TempDir()
	a := openT(t, dir, Options{})
	l, err := a.AcquireLease("cluster/coordinator", "coord-a", time.Hour)
	if err != nil {
		t.Fatal(err)
	}

	// A second process starts up mid-lease: its Open sweeps only expired
	// and torn lease files.
	b := openT(t, dir, Options{})
	if st := b.Stats(); st.LeaseOrphans != 0 {
		t.Fatalf("recovery scan swept a live lease: %+v", st)
	}
	if err := l.Renew(time.Hour); err != nil {
		t.Fatalf("renew after recovery scan: %v", err)
	}
	if _, err := b.AcquireLease("cluster/coordinator", "coord-b", time.Hour); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("lease not held after scan+renew: %v", err)
	}
}

// TestLeaseStealWhileHolderAlive: stealing from a live, renewing holder
// must fail for as long as the grant is unexpired — and only once the
// holder truly lapses does the steal go through, at which point the old
// holder learns it via ErrLeaseLost.
func TestLeaseStealWhileHolderAlive(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	a := openT(t, dir, Options{})
	b := openT(t, dir, Options{})
	a.SetClock(clk.Now)
	b.SetClock(clk.Now)

	l, err := a.AcquireLease("cluster/coordinator", "coord-a", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// The holder is alive and renewing: every steal attempt inside the
	// ttl must fail, including ones right after a renewal.
	for i := 0; i < 3; i++ {
		clk.Advance(500 * time.Millisecond)
		if err := l.Renew(time.Second); err != nil {
			t.Fatalf("renew %d: %v", i, err)
		}
		if _, err := b.AcquireLease("cluster/coordinator", "coord-b", time.Second); !errors.Is(err, ErrLeaseHeld) {
			t.Fatalf("steal from live holder succeeded at step %d: %v", i, err)
		}
	}
	// The holder stops renewing; after the ttl the steal succeeds and the
	// ex-holder's next Renew reports the loss.
	clk.Advance(2 * time.Second)
	if _, err := b.AcquireLease("cluster/coordinator", "coord-b", time.Second); err != nil {
		t.Fatalf("steal after expiry: %v", err)
	}
	if err := l.Renew(time.Second); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("ex-holder renew: want ErrLeaseLost, got %v", err)
	}
}
