// Named leases over the shared cache directory. A lease is advisory
// mutual exclusion between processes sharing one cache dir — the cluster
// uses it so exactly one member rehydrates or rewrites a snapshot
// manifest at a time. Leases carry an owner and an expiry: a holder that
// crashes simply stops renewing, and the lease becomes a crash orphan
// that the next Acquire (or the next Open's recovery scan) reclaims.
//
// Lease files live under leases/ at the cache root, named by the
// hex-encoded lease name, written with temp + atomic rename under the
// exclusive directory flock so two processes can never both conclude
// they won the same lease.
package diskcache

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

const (
	leasesDir   = "leases"
	leaseSuffix = ".lease"
)

// ErrLeaseHeld is returned by AcquireLease when another live owner holds
// the lease; the caller should back off and retry or defer to the holder.
var ErrLeaseHeld = errors.New("diskcache: lease held by another owner")

// ErrLeaseLost is returned by Renew when the lease expired and another
// owner reclaimed it; the holder must stop relying on its exclusion.
var ErrLeaseLost = errors.New("diskcache: lease lost")

// Lease is a held named lease. Release or let it expire.
type Lease struct {
	c     *Cache
	name  string
	owner string
}

// leaseRecord is the on-disk lease file payload.
type leaseRecord struct {
	Owner   string `json:"owner"`
	Expires int64  `json:"expires_unix_nano"`
}

func (c *Cache) leasePath(name string) string {
	return filepath.Join(c.dir, leasesDir, hex.EncodeToString([]byte(name))+leaseSuffix)
}

// readLease parses a lease file; any read or decode failure reports the
// lease as absent (a torn lease file is an orphan, not a holder).
func readLease(path string) (leaseRecord, bool) {
	b, err := os.ReadFile(path)
	if err != nil {
		return leaseRecord{}, false
	}
	var rec leaseRecord
	if json.Unmarshal(b, &rec) != nil || rec.Owner == "" {
		return leaseRecord{}, false
	}
	return rec, true
}

// writeLease commits a lease record with temp + atomic rename. The caller
// holds the exclusive directory flock.
func writeLease(path string, rec leaseRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(dir, "lease-*.tmp")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(b); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// AcquireLease takes the named lease for owner with the given ttl. It
// returns ErrLeaseHeld while another owner's unexpired lease exists; an
// expired or unreadable lease file is a crash orphan and is reclaimed.
// Re-acquiring a lease the same owner already holds refreshes its expiry.
func (c *Cache) AcquireLease(name, owner string, ttl time.Duration) (*Lease, error) {
	if c == nil {
		return nil, errors.New("diskcache: no cache")
	}
	if owner == "" || name == "" {
		return nil, fmt.Errorf("diskcache: lease needs a name and an owner")
	}
	unlock := c.flockExclusive()
	defer unlock()
	path := c.leasePath(name)
	now := c.now()
	if rec, ok := readLease(path); ok && rec.Owner != owner {
		if now.UnixNano() < rec.Expires {
			c.mu.Lock()
			c.stats.LeasesContended++
			c.mu.Unlock()
			return nil, fmt.Errorf("%w: %s until %s", ErrLeaseHeld, rec.Owner,
				time.Unix(0, rec.Expires).UTC().Format(time.RFC3339))
		}
		c.mu.Lock()
		c.stats.LeaseOrphans++
		c.mu.Unlock()
	}
	rec := leaseRecord{Owner: owner, Expires: now.Add(ttl).UnixNano()}
	if err := writeLease(path, rec); err != nil {
		return nil, fmt.Errorf("diskcache: lease write: %w", err)
	}
	c.mu.Lock()
	c.stats.LeasesAcquired++
	c.mu.Unlock()
	return &Lease{c: c, name: name, owner: owner}, nil
}

// Renew extends the lease's expiry, failing with ErrLeaseLost if the
// lease expired and another owner reclaimed it in the meantime.
func (l *Lease) Renew(ttl time.Duration) error {
	unlock := l.c.flockExclusive()
	defer unlock()
	path := l.c.leasePath(l.name)
	if rec, ok := readLease(path); ok && rec.Owner != l.owner && l.c.now().UnixNano() < rec.Expires {
		return fmt.Errorf("%w: now held by %s", ErrLeaseLost, rec.Owner)
	} else if ok && rec.Owner != l.owner {
		return fmt.Errorf("%w: expired and reclaimed by %s", ErrLeaseLost, rec.Owner)
	}
	return writeLease(path, leaseRecord{Owner: l.owner, Expires: l.c.now().Add(ttl).UnixNano()})
}

// Release drops the lease if this owner still holds it. Releasing a lost
// or expired-and-stolen lease is a no-op — never remove another owner's
// grant. A removal failure is returned rather than swallowed: the lease
// file then survives until its expiry, and every future acquirer of the
// name waits out a TTL that nobody is using, so callers should at least
// log it.
func (l *Lease) Release() error {
	unlock := l.c.flockExclusive()
	defer unlock()
	path := l.c.leasePath(l.name)
	if rec, ok := readLease(path); ok && rec.Owner == l.owner {
		if err := os.Remove(path); err != nil {
			return fmt.Errorf("diskcache: lease release: %w", err)
		}
	}
	return nil
}

// recoverLeases sweeps expired and unreadable lease files at Open. The
// caller (recoverScan) holds the exclusive directory flock, so a sweep
// can never race another process's acquire.
func (c *Cache) recoverLeases() {
	dir := filepath.Join(c.dir, leasesDir)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return // no leases dir yet
	}
	now := c.now().UnixNano()
	for _, e := range entries {
		name := e.Name()
		path := filepath.Join(dir, name)
		if e.IsDir() {
			continue
		}
		if !strings.HasSuffix(name, leaseSuffix) {
			// Torn lease temp from a crashed writer.
			if strings.HasSuffix(name, ".tmp") {
				os.Remove(path)
				c.stats.LeaseOrphans++
			}
			continue
		}
		if rec, ok := readLease(path); !ok || now >= rec.Expires {
			os.Remove(path)
			c.stats.LeaseOrphans++
		}
	}
}
