package diskcache

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestTwoOpensShareOneDir is the multi-process regression test (two Cache
// values over one directory stand in for two batfishd processes): entries
// committed through one handle must be servable through the other, and a
// Put interleaved with the other handle's evictions of the same key must
// never corrupt, quarantine, or tear anything.
func TestTwoOpensShareOneDir(t *testing.T) {
	dir := t.TempDir()
	a := openT(t, dir, Options{MaxBytes: -1})
	b := openT(t, dir, Options{MaxBytes: -1})

	// Cross-handle visibility: b adopts a's entry on Get fall-through.
	k := keyFor("shared")
	a.Put(k, []byte("written by a"))
	if got, ok := b.Get(k); !ok || string(got) != "written by a" {
		t.Fatalf("b.Get of a's entry = %q, %v", got, ok)
	}
	if st := b.Stats(); st.Adopted != 1 || st.Hits != 1 {
		t.Fatalf("b stats after adoption: %+v", st)
	}

	// Interleaved Put (a) and eviction pressure (tiny bound on c) over the
	// same keys: every Get through any handle must return either a verified
	// payload or a clean miss — never a quarantine.
	entry := func(i int) ([32]byte, []byte) {
		return keyFor(fmt.Sprint(i % 7)), []byte(fmt.Sprintf("payload-%d", i%7))
	}
	small, err := Open(dir, Options{MaxBytes: int64(3 * (headerSize + 16))})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				k, payload := entry(i)
				switch (i + g) % 3 {
				case 0:
					a.Put(k, payload)
				case 1:
					small.Put(k, payload) // drives evictions of the same keys
				default:
					if got, ok := b.Get(k); ok && string(got) != string(payload) {
						t.Errorf("torn read through b: %q", got)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for _, c := range []*Cache{a, b, small} {
		if st := c.Stats(); st.Quarantined != 0 {
			t.Errorf("interleaved put/evict quarantined %d entries: %+v", st.Quarantined, st)
		}
	}
	if st := small.Stats(); st.Evictions == 0 {
		t.Error("eviction pressure never evicted; test exercised nothing")
	}

	// A fresh Open during the churn's aftermath must see no orphans to
	// misclassify: live commits hold the shared flock.
	c2 := openT(t, dir, Options{MaxBytes: -1})
	if st := c2.Stats(); st.Quarantined != 0 {
		t.Errorf("reopen quarantined %d entries", st.Quarantined)
	}
}

func TestLeaseAcquireContendRelease(t *testing.T) {
	dir := t.TempDir()
	a := openT(t, dir, Options{})
	b := openT(t, dir, Options{})

	la, err := a.AcquireLease("manifest/prod", "member-a", time.Minute)
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if _, err := b.AcquireLease("manifest/prod", "member-b", time.Minute); err == nil {
		t.Fatal("contended acquire succeeded")
	}
	if st := b.Stats(); st.LeasesContended != 1 {
		t.Fatalf("b stats: %+v", st)
	}
	// Same owner re-acquire refreshes rather than contending.
	if _, err := a.AcquireLease("manifest/prod", "member-a", time.Minute); err != nil {
		t.Fatalf("self re-acquire: %v", err)
	}
	if err := la.Renew(time.Minute); err != nil {
		t.Fatalf("renew: %v", err)
	}
	la.Release()
	if _, err := b.AcquireLease("manifest/prod", "member-b", time.Minute); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
}

func TestLeaseCrashOrphanRecovery(t *testing.T) {
	dir := t.TempDir()
	a := openT(t, dir, Options{})

	// A "crashed" holder: lease taken with a tiny ttl and never renewed.
	if _, err := a.AcquireLease("manifest/prod", "dead-member", time.Millisecond); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)

	// Path 1: a live Acquire steals the expired lease.
	l, err := a.AcquireLease("manifest/prod", "heir", time.Minute)
	if err != nil {
		t.Fatalf("expired lease not reclaimed: %v", err)
	}
	if st := a.Stats(); st.LeaseOrphans != 1 {
		t.Fatalf("orphan not counted: %+v", st)
	}
	l.Release()

	// Path 2: the recovery scan sweeps expired and torn lease files.
	if _, err := a.AcquireLease("manifest/other", "dead-member", time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, leasesDir, "torn.lease"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	c2 := openT(t, dir, Options{})
	if st := c2.Stats(); st.LeaseOrphans != 2 {
		t.Fatalf("scan reclaimed %d orphans, want 2 (expired + torn): %+v", st.LeaseOrphans, st)
	}
	if _, err := c2.AcquireLease("manifest/other", "heir", time.Minute); err != nil {
		t.Fatalf("acquire after scan recovery: %v", err)
	}
}

// TestLeaseLostAfterExpiry: a holder that let its lease lapse and lose to
// another owner must learn that from Renew.
func TestLeaseLostAfterExpiry(t *testing.T) {
	dir := t.TempDir()
	a := openT(t, dir, Options{})
	l, err := a.AcquireLease("m", "first", time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	if _, err := a.AcquireLease("m", "second", time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := l.Renew(time.Minute); err == nil {
		t.Fatal("renew of a stolen lease succeeded")
	}
	// Release of the lost lease must not remove the new owner's grant.
	l.Release()
	if _, err := a.AcquireLease("m", "third", time.Minute); err == nil {
		t.Fatal("second's lease vanished after first's stale Release")
	}
}
