// Package diskcache is a crash-safe persistent byte store: the second
// tier under the pipeline's in-memory artifact Store. Entries are keyed
// by the pipeline's content hashes and written with a checksummed header
// via temp-file + atomic rename, so a process killed mid-write can never
// publish a torn entry — at worst it leaves a temp file that the next
// startup's recovery scan removes. Corrupt or truncated entries (torn
// writes on non-atomic filesystems, bit rot) are detected by the SHA-256
// payload checksum and quarantined instead of served.
//
// The cache degrades, never fails: every disk error — unwritable
// directory, checksum mismatch, injected fault — turns into a miss (Get)
// or a dropped write (Put) plus a counter, so analysis correctness is
// independent of disk health. Capacity is bounded by bytes with LRU
// eviction (recency seeded from file mtimes across restarts).
//
// A directory may be shared by several processes (the cluster's shared
// artifact store): commits, eviction removals, and the recovery scan
// coordinate through a directory flock (lock.go), a Get that misses the
// in-memory index falls through to the directory and adopts entries
// committed by other processes, and named leases (lease.go) give callers
// advisory cross-process mutual exclusion with crash-orphan recovery.
package diskcache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/faults"
)

// magic identifies entry files; bump the version byte when the on-disk
// format changes so old caches are quarantined wholesale, not misread.
var magic = [4]byte{'B', 'F', 'C', '1'}

// headerSize is magic + 8-byte payload length + 32-byte SHA-256.
const headerSize = 4 + 8 + sha256.Size

// entrySuffix names committed entries; temp files use tmpPattern and are
// removed by the recovery scan (a temp file is, by construction, a write
// the process did not survive).
const (
	entrySuffix   = ".art"
	tmpPattern    = "put-*.tmp"
	quarantineDir = "quarantine"
)

// DefaultMaxBytes bounds the cache when Options.MaxBytes is 0 (256 MiB).
const DefaultMaxBytes = 256 << 20

// Options tune an opened cache.
type Options struct {
	// MaxBytes bounds the total committed entry payload+header bytes;
	// DefaultMaxBytes when 0, unbounded when negative.
	MaxBytes int64
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits        uint64 // Get served a verified entry
	Misses      uint64 // Get found nothing (or only corruption)
	Puts        uint64 // committed writes
	PutErrors   uint64 // writes dropped by IO errors or injected faults
	Evictions   uint64 // entries removed by the byte bound
	Quarantined uint64 // corrupt/truncated entries moved aside (Get + scan)
	ScanRemoved uint64 // orphan temp files removed by the recovery scan

	// Multi-process sharing (cluster artifact store).
	Adopted         uint64 // entries another process committed, indexed on Get
	Removed         uint64 // entries deleted via Remove
	LeasesAcquired  uint64 // AcquireLease grants (including refreshes)
	LeasesContended uint64 // AcquireLease refusals: live lease held elsewhere
	LeaseOrphans    uint64 // expired/torn leases reclaimed (acquire + scan)

	Entries  int   // committed entries currently indexed
	Bytes    int64 // committed bytes currently indexed
	MaxBytes int64
}

// Cache is a directory-backed artifact store. All methods are safe for
// concurrent use; a Cache may be shared by many pipelines.
type Cache struct {
	dir string
	max int64
	now func() time.Time // lease-expiry time source; wall clock by default

	mu    sync.Mutex
	index map[string]*entryState // key hex → state
	order []string               // LRU order, front = least recently used
	bytes int64
	qseq  uint64
	stats Stats
}

type entryState struct {
	size int64
}

// Open opens (creating if needed) a cache rooted at dir and runs the
// recovery scan: orphan temp files are deleted, committed entries are
// length- and checksum-verified, and anything invalid is moved to the
// quarantine/ subdirectory for post-mortem instead of being served.
func Open(dir string, opts Options) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	max := opts.MaxBytes
	if max == 0 {
		max = DefaultMaxBytes
	}
	c := &Cache{dir: dir, max: max, now: time.Now, index: make(map[string]*entryState)}
	c.stats.MaxBytes = max
	// The scan holds the directory lock exclusively: a concurrent writer in
	// another process (shared lock) finishes its commit first, so its live
	// temp file can never be mistaken for a crash orphan.
	unlock := c.flockExclusive()
	err := c.recoverScan()
	c.recoverLeases()
	unlock()
	if err != nil {
		return nil, err
	}
	return c, nil
}

// recoverScan validates every file in the cache directory. It runs before
// the cache is visible to any caller (under the exclusive directory
// flock), so it needs no in-process locking.
func (c *Cache) recoverScan() error {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return fmt.Errorf("diskcache: %w", err)
	}
	type found struct {
		hexKey string
		size   int64
		mtime  int64
	}
	var committed []found
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		path := filepath.Join(c.dir, name)
		if strings.HasSuffix(name, ".tmp") {
			// An in-flight write the process did not survive. The entry it
			// was meant to publish simply does not exist; remove the orphan.
			os.Remove(path)
			c.stats.ScanRemoved++
			continue
		}
		if !strings.HasSuffix(name, entrySuffix) {
			continue // foreign file; leave it alone
		}
		hexKey := strings.TrimSuffix(name, entrySuffix)
		info, err := e.Info()
		if err != nil {
			c.quarantine(path, hexKey)
			continue
		}
		if _, err := c.readVerified(path); err != nil {
			c.quarantine(path, hexKey)
			continue
		}
		committed = append(committed, found{hexKey: hexKey, size: info.Size(), mtime: info.ModTime().UnixNano()})
	}
	// Seed recency from mtimes so eviction order survives restarts.
	sort.Slice(committed, func(i, j int) bool {
		if committed[i].mtime != committed[j].mtime {
			return committed[i].mtime < committed[j].mtime
		}
		return committed[i].hexKey < committed[j].hexKey
	})
	for _, f := range committed {
		c.index[f.hexKey] = &entryState{size: f.size}
		c.order = append(c.order, f.hexKey)
		c.bytes += f.size
	}
	// The exclusive flock is already held; remove over-bound files inline.
	for _, hexKey := range c.evictPlanLocked() {
		os.Remove(c.path(hexKey))
	}
	return nil
}

// readVerified reads an entry file and returns its payload after
// validating the magic, the declared length, and the SHA-256 checksum.
func (c *Cache) readVerified(path string) ([]byte, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(b) < headerSize {
		return nil, fmt.Errorf("truncated header: %d bytes", len(b))
	}
	if [4]byte(b[:4]) != magic {
		return nil, fmt.Errorf("bad magic %q", b[:4])
	}
	n := binary.BigEndian.Uint64(b[4:12])
	payload := b[headerSize:]
	if uint64(len(payload)) != n {
		return nil, fmt.Errorf("truncated payload: have %d bytes, header says %d", len(payload), n)
	}
	sum := sha256.Sum256(payload)
	if [sha256.Size]byte(b[12:headerSize]) != sum {
		return nil, fmt.Errorf("checksum mismatch")
	}
	return payload, nil
}

// quarantineLocked reserves a quarantine destination and counts the
// event under c.mu (which the caller must hold), returning the file
// move to run after the mutex is released — the move is disk I/O and
// must never serialize other lock holders (the PR-4 bug class).
func (c *Cache) quarantineLocked(path, hexKey string) (move func()) {
	qdir := filepath.Join(c.dir, quarantineDir)
	c.qseq++
	dst := filepath.Join(qdir, fmt.Sprintf("%s-%d.bad", hexKey, c.qseq))
	c.stats.Quarantined++
	return func() {
		// Removing on any failure: a corrupt entry must never stay
		// servable.
		if os.MkdirAll(qdir, 0o755) != nil || os.Rename(path, dst) != nil {
			os.Remove(path)
		}
	}
}

// quarantine moves a bad entry into quarantine/. Callers must not hold
// c.mu; it is taken briefly to reserve the destination sequence number.
func (c *Cache) quarantine(path, hexKey string) {
	c.mu.Lock()
	move := c.quarantineLocked(path, hexKey)
	c.mu.Unlock()
	move()
}

func (c *Cache) path(hexKey string) string {
	return filepath.Join(c.dir, hexKey+entrySuffix)
}

// touch moves hexKey to the most-recently-used end of the order.
func (c *Cache) touch(hexKey string) {
	for i, k := range c.order {
		if k == hexKey {
			c.order = append(append(c.order[:i:i], c.order[i+1:]...), hexKey)
			return
		}
	}
	c.order = append(c.order, hexKey)
}

// Get returns the verified payload for key. A corrupt entry is
// quarantined and reported as a miss; the caller recomputes, and the
// recompute's Put replaces the entry. A key absent from the in-memory
// index falls through to a directory probe: in a shared directory another
// process may have committed the entry after this cache's recovery scan,
// and a verified probe adopts it (index + LRU) so the cluster's shared
// artifact tier behaves as one store.
func (c *Cache) Get(key [sha256.Size]byte) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	faults.Fire("diskcache", "get")
	hexKey := hex.EncodeToString(key[:])
	// Read and verify outside the lock so disk latency never serializes
	// the cache's callers. The entry may be evicted or replaced while we
	// read: rename-based commits mean we always see a complete old or new
	// file, and an eviction surfaces as file-not-found, a plain miss.
	payload, err := c.readVerified(c.path(hexKey))
	c.mu.Lock()
	_, indexed := c.index[hexKey]
	if err != nil {
		if indexed {
			c.dropLocked(hexKey)
		}
		move := func() {}
		if !os.IsNotExist(err) {
			// Corrupt on disk, whether ours or another process's: never
			// leave it servable. The file move runs after Unlock.
			move = c.quarantineLocked(c.path(hexKey), hexKey)
		}
		c.stats.Misses++
		c.mu.Unlock()
		move()
		return nil, false
	}
	var victims []string
	c.touch(hexKey)
	if !indexed {
		size := int64(headerSize + len(payload))
		c.index[hexKey] = &entryState{size: size}
		c.bytes += size
		c.stats.Adopted++
		victims = c.evictPlanLocked()
	}
	c.stats.Hits++
	c.mu.Unlock()
	c.removeFiles(victims)
	return payload, true
}

// Put commits a payload for key via temp file + fsync + atomic rename.
// The zero key (degraded artifacts) is never persisted. Failures —
// including injected diskcache faults — drop the write and count it;
// they never propagate to the analysis.
func (c *Cache) Put(key [sha256.Size]byte, payload []byte) {
	if c == nil || key == [sha256.Size]byte{} {
		return
	}
	size := int64(headerSize + len(payload))
	if c.max > 0 && size > c.max {
		c.mu.Lock()
		c.stats.PutErrors++
		c.mu.Unlock()
		return
	}
	// Write, fsync, and rename outside the mutex: each Put uses its own
	// temp file and the rename is atomic, so concurrent Puts of the same
	// key just race benignly (last committed file wins; the index update
	// below is serialized). The write holds the directory flock shared, so
	// another process's recovery scan or eviction (exclusive) can never
	// interleave with the commit.
	if err := c.writeEntry(key, payload); err != nil {
		c.mu.Lock()
		c.stats.PutErrors++
		c.mu.Unlock()
		return
	}
	hexKey := hex.EncodeToString(key[:])
	c.mu.Lock()
	if old, ok := c.index[hexKey]; ok {
		c.bytes -= old.size
	}
	c.index[hexKey] = &entryState{size: size}
	c.bytes += size
	c.touch(hexKey)
	c.stats.Puts++
	victims := c.evictPlanLocked()
	c.mu.Unlock()
	c.removeFiles(victims)
}

// writeEntry performs the crash-safe write. A panic between the partial
// write and the rename (the injected kill-mid-write) leaves only a temp
// file behind, exactly like a real crash, and is converted to an error.
func (c *Cache) writeEntry(key [sha256.Size]byte, payload []byte) (err error) {
	unlock := c.flockShared()
	defer unlock()
	f, err := os.CreateTemp(c.dir, tmpPattern)
	if err != nil {
		return err
	}
	tmp := f.Name()
	committed := false
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("diskcache: write interrupted: %v", v)
		}
		if !committed {
			f.Close()
			os.Remove(tmp)
		}
	}()
	var hdrBuf [headerSize]byte
	copy(hdrBuf[:4], magic[:])
	binary.BigEndian.PutUint64(hdrBuf[4:12], uint64(len(payload)))
	sum := sha256.Sum256(payload)
	copy(hdrBuf[12:], sum[:])
	if _, err := f.Write(hdrBuf[:]); err != nil {
		return err
	}
	// The injection point sits between the header and payload writes, so a
	// "kill" here leaves a torn temp file — the worst case a real crash
	// can produce under the rename protocol.
	faults.Fire("diskcache", "write")
	if _, err := f.Write(payload); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, c.path(hex.EncodeToString(key[:]))); err != nil {
		os.Remove(tmp)
		return err
	}
	committed = true
	return nil
}

// Has reports whether key is committed (without reading or touching it).
func (c *Cache) Has(key [sha256.Size]byte) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.index[hex.EncodeToString(key[:])]
	return ok
}

// dropLocked removes hexKey from the index and order without touching
// the file.
func (c *Cache) dropLocked(hexKey string) {
	st, ok := c.index[hexKey]
	if !ok {
		return
	}
	delete(c.index, hexKey)
	c.bytes -= st.size
	for i, k := range c.order {
		if k == hexKey {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
}

// evictPlanLocked drops least-recently-used entries from the index until
// under the byte bound and returns their keys. The caller removes the
// files after releasing c.mu (removeFiles), so cross-process lock waits
// never happen under the in-process mutex.
func (c *Cache) evictPlanLocked() []string {
	if c.max <= 0 {
		return nil
	}
	var victims []string
	for c.bytes > c.max && len(c.order) > 0 {
		hexKey := c.order[0]
		c.dropLocked(hexKey)
		c.stats.Evictions++
		victims = append(victims, hexKey)
	}
	return victims
}

// Remove deletes a committed entry (index and file). Unknown keys are a
// no-op. The cluster uses this to drop snapshot manifests on DELETE.
func (c *Cache) Remove(key [sha256.Size]byte) {
	if c == nil {
		return
	}
	hexKey := hex.EncodeToString(key[:])
	c.mu.Lock()
	if _, ok := c.index[hexKey]; ok {
		c.dropLocked(hexKey)
	}
	c.stats.Removed++
	c.mu.Unlock()
	c.removeFiles([]string{hexKey})
}

// Stats returns the current counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Entries = len(c.index)
	st.Bytes = c.bytes
	return st
}

// SetClock replaces the cache's time source for lease-expiry decisions
// (AcquireLease, Renew, and the recovery sweep of later Opens). Chaos and
// unit tests use it to drive lease expiry deterministically without real
// sleeps; a nil fn restores the wall clock. Call before sharing the cache
// across goroutines — it is not synchronized against in-flight leases.
func (c *Cache) SetClock(fn func() time.Time) {
	if fn == nil {
		fn = time.Now
	}
	c.now = fn
}

// Dir returns the cache root directory.
func (c *Cache) Dir() string {
	if c == nil {
		return ""
	}
	return c.dir
}
