// Multi-process safety for a shared cache directory. The cluster uses one
// diskcache directory as its shared content-addressed artifact store, so
// several batfishd processes Open the same dir concurrently. Coordination
// is a single flock(2) file at the directory root:
//
//   - entry writers hold it SHARED for the temp-write + rename commit, so
//     any number of processes can commit concurrently (renames to distinct
//     keys are independent; same-key renames are atomic last-wins over
//     byte-identical content — keys are content hashes);
//   - the recovery scan and eviction removals hold it EXCLUSIVE, so a scan
//     can never reap another process's live temp file (the writer's SHARED
//     lock makes the scan wait; a crashed writer's lock died with it, and
//     its orphan temp is fair game), and an eviction's os.Remove can never
//     interleave with a commit of the same key.
//
// Every acquisition opens a fresh file descriptor: flock locks belong to
// the open file description, so reusing one fd across goroutines would
// silently convert lock modes instead of excluding. c.mu is never held
// while a flock is being acquired, so lock ordering stays acyclic.
package diskcache

import (
	"os"
	"path/filepath"
	"syscall"
)

// lockFileName lives at the cache root; it has neither the entry nor the
// temp suffix, so the recovery scan leaves it alone.
const lockFileName = "lock"

// flockShared and flockExclusive acquire the directory lock, blocking
// until compatible. They return a release func; on any error the lock is
// skipped and release is a no-op — the cache degrades to single-process
// semantics rather than failing the operation.
func (c *Cache) flockShared() func()    { return c.flock(syscall.LOCK_SH) }
func (c *Cache) flockExclusive() func() { return c.flock(syscall.LOCK_EX) }

func (c *Cache) flock(how int) func() {
	f, err := os.OpenFile(filepath.Join(c.dir, lockFileName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return func() {}
	}
	if err := syscall.Flock(int(f.Fd()), how); err != nil {
		f.Close()
		return func() {}
	}
	// Close releases the flock along with the descriptor.
	return func() { f.Close() }
}

// removeFiles unlinks evicted entries under the exclusive directory lock,
// serializing against concurrent commits of the same keys from other
// processes. Callers must not hold c.mu.
func (c *Cache) removeFiles(hexKeys []string) {
	if len(hexKeys) == 0 {
		return
	}
	unlock := c.flockExclusive()
	defer unlock()
	for _, k := range hexKeys {
		os.Remove(c.path(k))
	}
}
