// Chaos suite for the failure-containment layer: each test injects one
// fault class (parser panic, truncated config, routing oscillation,
// budget exhaustion, deadline expiry) into a realistic snapshot and
// asserts the engine degrades — structured diagnostic naming stage and
// device, healthy devices still answering questions — instead of dying.
//
// The suite lives in package faults_test so it can drive the full stack
// (core, pipeline, dataplane) without an import cycle; the injector is
// process-global, so these tests must not run in parallel.
package faults_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataplane"
	"repro/internal/diag"
	"repro/internal/diskcache"
	"repro/internal/faults"
	"repro/internal/netgen"
	"repro/internal/pipeline"
	"repro/internal/server"
	"repro/internal/testnet"
)

// iosConfig emits a minimal IOS-style device with one LAN interface.
func iosConfig(host, addr string) string {
	return "hostname " + host + "\n" +
		"interface Ethernet1\n" +
		" ip address " + addr + " 255.255.255.0\n" +
		"!\nend\n"
}

// TestChaosParserPanicQuarantine injects a panic into one device's parse
// and asserts the device is quarantined with a panic diagnostic while the
// rest of the snapshot still builds a data plane and answers questions.
func TestChaosParserPanicQuarantine(t *testing.T) {
	inj := faults.New().Enable("parse", "r2", faults.Rule{Kind: faults.Panic})
	defer faults.Activate(inj)()

	snap := core.LoadTextWith(pipeline.New(pipeline.Config{}), map[string]string{
		"r1": iosConfig("r1", "10.0.1.1"),
		"r2": iosConfig("r2", "10.0.2.1"),
		"r3": iosConfig("r3", "10.0.3.1"),
	})

	if hits := inj.Hits()["parse/r2"]; hits == 0 {
		t.Fatal("injected parse fault never fired")
	}
	if _, ok := snap.Net.Devices["r2"]; ok {
		t.Error("panicking device r2 should be excluded from the network")
	}
	if q := snap.Quarantined(); len(q) != 1 || q[0] != "r2" {
		t.Errorf("Quarantined() = %v, want [r2]", q)
	}
	ds := snap.Diags()
	var sawPanic, sawQuarantine bool
	for _, d := range ds {
		if d.Stage != diag.StageParse || d.Device != "r2" {
			continue
		}
		switch d.Kind {
		case diag.KindPanic:
			sawPanic = true
			if d.Stack == "" {
				t.Error("panic diagnostic is missing its stack")
			}
		case diag.KindQuarantine:
			sawQuarantine = true
		}
	}
	if !sawPanic || !sawQuarantine {
		t.Errorf("want parse/r2 panic + quarantine diagnostics, got %s", diag.Summary(ds))
	}
	if !snap.Degraded() {
		t.Error("snapshot with a quarantined device should report Degraded")
	}

	// Healthy devices remain queryable end to end.
	if rts := snap.Routes("r1"); len(rts) == 0 {
		t.Error("healthy device r1 has no routes after quarantine of r2")
	}
	if got := len(snap.Net.Devices); got != 2 {
		t.Errorf("want 2 healthy devices, got %d", got)
	}
}

// TestChaosTruncatedConfig models a half-written configuration file: a
// generated fabric config cut off mid-statement must still parse into a
// usable device (warnings, never a crash), honoring the paper's
// "always produce some answer" contract.
func TestChaosTruncatedConfig(t *testing.T) {
	fab := netgen.Fabric(netgen.FabricParams{
		Name: "tr", Spines: 1, Pods: 1, AggPerPod: 1, TorPerPod: 1, HostNetsPerTor: 1})
	texts := make(map[string]string, len(fab.Devices))
	for _, d := range fab.Devices {
		texts[d.Hostname] = d.Text
	}
	// Truncate the ToR's config in the middle of a line.
	tor := fab.Devices[len(fab.Devices)-1].Hostname
	texts[tor] = texts[tor][:2*len(texts[tor])/3]

	snap := core.LoadTextWith(pipeline.New(pipeline.Config{}), texts)
	if _, ok := snap.Net.Devices[tor]; !ok {
		t.Fatalf("truncated device %s should still produce a model", tor)
	}
	if got := len(snap.Net.Devices); got != len(fab.Devices) {
		t.Errorf("want all %d devices parsed, got %d", len(fab.Devices), got)
	}
	// The degraded fabric still runs the whole pipeline.
	dp := snap.DataPlane()
	if dp == nil || len(dp.Nodes) != len(fab.Devices) {
		t.Fatal("truncated snapshot failed to build a data plane")
	}
	snap.UndefinedReferences() // must not panic on the partial model
}

// TestChaosOscillationPartialResult covers the non-convergence path: the
// paper's Figure 1b network under the lockstep schedule oscillates, and
// the run must stop with Converged=false, a populated cycle report, a
// non-convergence diagnostic, and a usable partial data plane.
func TestChaosOscillationPartialResult(t *testing.T) {
	r := dataplane.RunContext(context.Background(), testnet.Figure1b(),
		dataplane.Options{Schedule: dataplane.ScheduleLockstep, MaxIterations: 100})
	if r.Converged {
		t.Fatal("lockstep on Figure 1b should not converge")
	}
	if !r.Oscillation || r.Cycle == nil {
		t.Fatalf("want a detected oscillation with cycle report; warnings: %v", r.Warnings)
	}
	if r.Cycle.Protocol == "" || r.Cycle.RepeatIteration <= r.Cycle.FirstIteration {
		t.Errorf("cycle report not populated: %+v", r.Cycle)
	}
	if !diag.Has(r.Diags, diag.KindNonConvergence) {
		t.Errorf("want a non-convergence diagnostic, got %s", diag.Summary(r.Diags))
	}
	// The partial result holds one state of the cycle and stays usable.
	for _, name := range []string{"border1", "border2", "ext1", "ext2"} {
		ns := r.Nodes[name]
		if ns == nil || ns.DefaultVRF() == nil || ns.DefaultVRF().Main == nil {
			t.Fatalf("partial result unusable: node %s has no RIB", name)
		}
	}
}

// TestChaosBudgetExhaustion sets a BDD node budget far below what the
// analysis needs and asserts the question aborts with a "Budget exceeded"
// diagnostic instead of growing without bound — and that non-symbolic
// questions on the same snapshot keep working.
func TestChaosBudgetExhaustion(t *testing.T) {
	fab := netgen.Fabric(netgen.FabricParams{
		Name: "bx", Spines: 2, Pods: 1, AggPerPod: 2, TorPerPod: 2, HostNetsPerTor: 1, Multipath: true})
	snap := core.LoadGeneratedWith(pipeline.Disabled(), fab)
	snap.SetBDDNodeBudget(64)

	if vs := snap.MultipathConsistency(); len(vs) != 0 {
		t.Errorf("budget-tripped question should return no violations, got %d", len(vs))
	}
	ds := diag.Filter(snap.Diags(), diag.KindBudget)
	if len(ds) == 0 {
		t.Fatalf("want a budget diagnostic, got %s", diag.Summary(snap.Diags()))
	}
	if !strings.Contains(ds[0].Message, "Budget exceeded") {
		t.Errorf("budget diagnostic message = %q, want it to say Budget exceeded", ds[0].Message)
	}
	if ds[0].Stage != diag.StageQuestion {
		t.Errorf("budget trip attributed to stage %s, want %s", ds[0].Stage, diag.StageQuestion)
	}
	// Concrete-domain questions are not budget-bound and still answer.
	if len(snap.BGPSessionStatus()) == 0 {
		t.Error("non-symbolic questions should survive a BDD budget trip")
	}
}

// TestCancelFabricDeadline is the acceptance check for cancellation
// promptness: a 204-device fabric run under a short deadline — slowed
// further by injected per-device sleeps so the deadline always lands
// mid-simulation — must return within 1s of the deadline, report
// cancellation, and leak no goroutines.
func TestCancelFabricDeadline(t *testing.T) {
	inj := faults.New().Enable("dataplane", "*", faults.Rule{Kind: faults.Sleep, Sleep: 2 * time.Millisecond})
	defer faults.Activate(inj)()

	fab := netgen.Fabric(netgen.FabricParams{
		Name: "cx", Spines: 4, Pods: 10, AggPerPod: 2, TorPerPod: 18, HostNetsPerTor: 1, Multipath: true})
	if got := len(fab.Devices); got != 204 {
		t.Fatalf("fabric has %d devices, want 204", got)
	}

	before := runtime.NumGoroutine()
	const deadline = 150 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()

	start := time.Now()
	snap := core.LoadGeneratedWithContext(ctx, pipeline.New(pipeline.Config{}), fab)
	dp := snap.DataPlane()
	elapsed := time.Since(start)

	t.Logf("cancelled 204-device run returned in %v (deadline %v)", elapsed, deadline)
	if elapsed > deadline+time.Second {
		t.Fatalf("run took %v, want within 1s of the %v deadline", elapsed, deadline)
	}
	if dp == nil {
		t.Fatal("cancelled run should still return a partial result")
	}
	if !snap.Cancelled() {
		t.Errorf("snapshot should report cancellation; diags: %s", diag.Summary(snap.Diags()))
	}
	if !diag.Has(snap.Diags(), diag.KindCancelled) {
		t.Errorf("want a cancelled diagnostic, got %s", diag.Summary(snap.Diags()))
	}

	// Worker pools must wind down: allow the schedulers a moment to retire
	// in-flight goroutines, then compare against the pre-run count.
	settle := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(settle) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// chaosFabricTexts renders a small Clos fabric for the service-level
// chaos tests.
func chaosFabricTexts(name string) map[string]string {
	fab := netgen.Fabric(netgen.FabricParams{Name: name, Spines: 2, Pods: 2,
		AggPerPod: 2, TorPerPod: 2, HostNetsPerTor: 1, Multipath: true})
	texts := make(map[string]string, len(fab.Devices))
	for _, d := range fab.Devices {
		texts[d.Hostname] = d.Text
	}
	return texts
}

// chaosServer starts an analysis service over httptest, returning the
// server and a tiny client closure: GET/PUT a path, return status and the
// CLI-equivalent exit code header.
func chaosServer(t *testing.T, cfg server.Config) (*server.Server, func(method, path string, body any) (int, string)) {
	t.Helper()
	cfg.Seed = 1
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	do := func(method, path string, body any) (int, string) {
		t.Helper()
		var rd io.Reader
		if body != nil {
			b, err := json.Marshal(body)
			if err != nil {
				t.Fatal(err)
			}
			rd = bytes.NewReader(b)
		}
		req, err := http.NewRequest(method, ts.URL+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", method, path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, resp.Header.Get(server.ExitCodeHeader)
	}
	return srv, do
}

// TestChaosKillMidWriteCacheRecovery kills a persistent-cache write
// mid-flight (injected panic between header and payload), leaves an
// orphan temp file as a crash would, and asserts the reopened cache
// recovers: the torn temp is swept, nothing corrupt is served, and a warm
// restart recomputes only the lost artifact.
func TestChaosKillMidWriteCacheRecovery(t *testing.T) {
	dir := t.TempDir()
	texts := chaosFabricTexts("kw")

	inj := faults.New().Enable("diskcache", "write", faults.Rule{Kind: faults.Panic, Count: 1})
	restore := faults.Activate(inj)
	d1, err := diskcache.Open(dir, diskcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p1 := pipeline.New(pipeline.Config{Disk: d1})
	snap1 := core.LoadTextWith(p1, texts)
	dp1 := snap1.DataPlane()
	if snap1.Degraded() || dp1 == nil {
		t.Fatalf("killed cache write degraded the analysis: %s", diag.Summary(snap1.Diags()))
	}
	if st := d1.Stats(); st.PutErrors != 1 {
		t.Fatalf("PutErrors = %d, want exactly the injected kill", st.PutErrors)
	}
	restore()
	// A second crash legacy: an orphan temp file (killed before rename).
	if err := os.WriteFile(filepath.Join(dir, "put-1.tmp"), []byte("torn header"), 0o644); err != nil {
		t.Fatal(err)
	}

	// "Restart": reopen the directory and rerun on a fresh memory tier.
	d2, err := diskcache.Open(dir, diskcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := d2.Stats()
	if st.ScanRemoved != 1 {
		t.Errorf("recovery swept %d temp files, want 1", st.ScanRemoved)
	}
	if st.Quarantined != 0 {
		t.Errorf("a clean kill-mid-write must not quarantine entries: %+v", st)
	}
	p2 := pipeline.New(pipeline.Config{Disk: d2})
	snap2 := core.LoadTextWith(p2, texts)
	dp2 := snap2.DataPlane()
	if snap2.Degraded() || dp2 == nil {
		t.Fatalf("warm restart degraded: %s", diag.Summary(snap2.Diags()))
	}
	// Only the killed artifact recomputes; everything else is a disk hit.
	ps := p2.Stats()
	if got := ps.Parse.DiskHits + ps.DataPlane.DiskHits; got != int64(len(texts)) {
		t.Errorf("disk hits = %d, want %d (all but the killed write)", got, len(texts))
	}
	if ps.Parse.ColdRuns != 1 {
		t.Errorf("parse cold runs = %d, want 1 (the killed artifact)", ps.Parse.ColdRuns)
	}
	for name := range dp1.Nodes {
		if dp2.NodeFingerprint(name) != dp1.NodeFingerprint(name) {
			t.Errorf("node %s fingerprint differs after recovery", name)
		}
	}
}

// TestChaosBreakerTripHalfOpenReset drives a snapshot's circuit breaker
// through its full cycle over the service API: persistent injected panics
// trip it (closed → open), the cooldown half-opens it, and a healthy
// probe closes it again.
func TestChaosBreakerTripHalfOpenReset(t *testing.T) {
	restore := faults.Activate(faults.New().
		Enable("server", "reachability", faults.Rule{Kind: faults.Panic}))
	defer restore()

	_, do := chaosServer(t, server.Config{Retries: -1, BreakerThreshold: 2,
		BreakerCooldown: 100 * time.Millisecond})
	if st, _ := do(http.MethodPut, "/snapshots/s", map[string]any{"configs": chaosFabricTexts("br")}); st != http.StatusOK {
		t.Fatalf("load: %d", st)
	}
	for i := 0; i < 2; i++ {
		if st, exit := do(http.MethodGet, "/snapshots/s/reachability", nil); st != http.StatusOK || exit != "4" {
			t.Fatalf("failing question %d: status %d exit %s", i, st, exit)
		}
	}
	if st, _ := do(http.MethodGet, "/snapshots/s/reachability", nil); st != http.StatusServiceUnavailable {
		t.Fatalf("open breaker admitted a request: %d", st)
	}
	restore() // heal the fault
	time.Sleep(120 * time.Millisecond)
	if st, exit := do(http.MethodGet, "/snapshots/s/reachability", nil); st != http.StatusOK || exit != "0" {
		t.Fatalf("half-open probe: status %d exit %s", st, exit)
	}
	if st, exit := do(http.MethodGet, "/snapshots/s/reachability", nil); st != http.StatusOK || exit != "0" {
		t.Fatalf("breaker did not close after probe: status %d exit %s", st, exit)
	}
}

// TestChaosDrainUnderLoad drains the service while slowed requests are in
// flight: every admitted request completes (exit 0), new arrivals shed
// 503, and no goroutines leak.
func TestChaosDrainUnderLoad(t *testing.T) {
	defer faults.Activate(faults.New().
		Enable("server", "reachability", faults.Rule{Kind: faults.Sleep, Sleep: 100 * time.Millisecond}))()

	srv, do := chaosServer(t, server.Config{MaxConcurrent: 4})
	if st, _ := do(http.MethodPut, "/snapshots/s", map[string]any{"configs": chaosFabricTexts("dr")}); st != http.StatusOK {
		t.Fatalf("load failed: %d", st)
	}
	do(http.MethodGet, "/snapshots/s/reachability", nil) // warm the snapshot

	before := runtime.NumGoroutine()
	const n = 3
	type result struct {
		status int
		exit   string
	}
	results := make(chan result, n)
	for i := 0; i < n; i++ {
		go func() {
			st, exit := do(http.MethodGet, "/snapshots/s/reachability", nil)
			results <- result{st, exit}
		}()
	}
	time.Sleep(30 * time.Millisecond) // let them pass admission
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if st, _ := do(http.MethodGet, "/snapshots/s/reachability", nil); st != http.StatusServiceUnavailable {
		t.Errorf("new request after drain: %d, want 503", st)
	}
	for i := 0; i < n; i++ {
		r := <-results
		if r.status != http.StatusOK || r.exit != "0" {
			t.Errorf("in-flight request dropped during drain: status %d exit %s", r.status, r.exit)
		}
	}
	// Goroutines settle back (slack for the HTTP stack's idle conns).
	settle := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+8 {
			break
		}
		if time.Now().After(settle) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(25 * time.Millisecond)
	}
}
